#ifndef EQUITENSOR_MODELS_ADVERSARY_H_
#define EQUITENSOR_MODELS_ADVERSARY_H_

#include <memory>

#include "nn/layers.h"

namespace equitensor {
namespace models {

/// The adversarial model A of §3.4 (also reused as the separately
/// trained evaluation probe F of §3.5 and as the Fair-CDAE prediction
/// head): three 3D-conv layers with 16, 32 and 1 filters that predict
/// the tiled sensitive map from a latent representation
/// [N, K, W, H, window].
class AdversaryNet : public nn::Module {
 public:
  AdversaryNet(int64_t latent_channels, Rng& rng, int64_t kernel = 3,
               std::vector<int64_t> filters = {16, 32, 1});

  /// Predicts S: [N, K, W, H, T] -> [N, 1, W, H, T].
  Variable Forward(const Variable& z) const;

  /// L_A (Eq. 4): MAE between the prediction from z and the tiled
  /// sensitive target.
  Variable Loss(const Variable& z, const Tensor& s_tiled) const;

  std::vector<Variable> Parameters() const override {
    return stack_->Parameters();
  }
  std::vector<nn::NamedParameter> NamedParameters() const override {
    return stack_->NamedParameters();
  }

 private:
  std::unique_ptr<nn::ConvStack> stack_;
};

}  // namespace models
}  // namespace equitensor

#endif  // EQUITENSOR_MODELS_ADVERSARY_H_
