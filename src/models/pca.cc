#include "models/pca.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace equitensor {
namespace models {

void SymmetricEigen(const Tensor& matrix, Tensor* eigenvalues,
                    Tensor* eigenvectors) {
  ET_CHECK_EQ(matrix.rank(), 2);
  const int64_t f = matrix.dim(0);
  ET_CHECK_EQ(matrix.dim(1), f);

  // Work in double for numerical stability.
  std::vector<double> a(static_cast<size_t>(f * f));
  for (int64_t i = 0; i < f * f; ++i) a[static_cast<size_t>(i)] = matrix[i];
  std::vector<double> v(static_cast<size_t>(f * f), 0.0);
  for (int64_t i = 0; i < f; ++i) v[static_cast<size_t>(i * f + i)] = 1.0;

  // Cyclic Jacobi sweeps.
  const int max_sweeps = 100;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (int64_t p = 0; p < f; ++p) {
      for (int64_t q = p + 1; q < f; ++q) {
        off += a[static_cast<size_t>(p * f + q)] * a[static_cast<size_t>(p * f + q)];
      }
    }
    if (off < 1e-20) break;
    for (int64_t p = 0; p < f; ++p) {
      for (int64_t q = p + 1; q < f; ++q) {
        const double apq = a[static_cast<size_t>(p * f + q)];
        if (std::fabs(apq) < 1e-15) continue;
        const double app = a[static_cast<size_t>(p * f + p)];
        const double aqq = a[static_cast<size_t>(q * f + q)];
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Rotate rows/cols p and q of A.
        for (int64_t i = 0; i < f; ++i) {
          const double aip = a[static_cast<size_t>(i * f + p)];
          const double aiq = a[static_cast<size_t>(i * f + q)];
          a[static_cast<size_t>(i * f + p)] = c * aip - s * aiq;
          a[static_cast<size_t>(i * f + q)] = s * aip + c * aiq;
        }
        for (int64_t i = 0; i < f; ++i) {
          const double api = a[static_cast<size_t>(p * f + i)];
          const double aqi = a[static_cast<size_t>(q * f + i)];
          a[static_cast<size_t>(p * f + i)] = c * api - s * aqi;
          a[static_cast<size_t>(q * f + i)] = s * api + c * aqi;
        }
        // Accumulate eigenvectors.
        for (int64_t i = 0; i < f; ++i) {
          const double vip = v[static_cast<size_t>(i * f + p)];
          const double viq = v[static_cast<size_t>(i * f + q)];
          v[static_cast<size_t>(i * f + p)] = c * vip - s * viq;
          v[static_cast<size_t>(i * f + q)] = s * vip + c * viq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<int64_t> order(static_cast<size_t>(f));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int64_t x, int64_t y) {
    return a[static_cast<size_t>(x * f + x)] > a[static_cast<size_t>(y * f + y)];
  });

  *eigenvalues = Tensor({f});
  *eigenvectors = Tensor({f, f});
  for (int64_t k = 0; k < f; ++k) {
    const int64_t src = order[static_cast<size_t>(k)];
    (*eigenvalues)[k] = static_cast<float>(a[static_cast<size_t>(src * f + src)]);
    for (int64_t i = 0; i < f; ++i) {
      (*eigenvectors)[i * f + k] =
          static_cast<float>(v[static_cast<size_t>(i * f + src)]);
    }
  }
}

PcaResult FitPca(const Tensor& observations, int64_t k) {
  ET_CHECK_EQ(observations.rank(), 2);
  const int64_t m = observations.dim(0);
  const int64_t f = observations.dim(1);
  ET_CHECK_GT(m, 1);
  ET_CHECK(k >= 1 && k <= f);

  PcaResult result;
  result.mean = Tensor({f});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < f; ++j) result.mean[j] += observations[i * f + j];
  }
  for (int64_t j = 0; j < f; ++j) result.mean[j] /= static_cast<float>(m);

  // Covariance matrix in double precision.
  std::vector<double> cov(static_cast<size_t>(f * f), 0.0);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t p = 0; p < f; ++p) {
      const double dp = observations[i * f + p] - result.mean[p];
      for (int64_t q = p; q < f; ++q) {
        const double dq = observations[i * f + q] - result.mean[q];
        cov[static_cast<size_t>(p * f + q)] += dp * dq;
      }
    }
  }
  Tensor cov_t({f, f});
  for (int64_t p = 0; p < f; ++p) {
    for (int64_t q = p; q < f; ++q) {
      const float value =
          static_cast<float>(cov[static_cast<size_t>(p * f + q)] / (m - 1));
      cov_t[p * f + q] = value;
      cov_t[q * f + p] = value;
    }
  }

  Tensor all_values, all_vectors;
  SymmetricEigen(cov_t, &all_values, &all_vectors);

  result.eigenvalues = Tensor({k});
  result.components = Tensor({f, k});
  for (int64_t c = 0; c < k; ++c) {
    result.eigenvalues[c] = all_values[c];
    for (int64_t i = 0; i < f; ++i) {
      result.components[i * k + c] = all_vectors[i * f + c];
    }
  }
  return result;
}

Tensor PcaProject(const PcaResult& pca, const Tensor& observations) {
  ET_CHECK_EQ(observations.rank(), 2);
  const int64_t m = observations.dim(0);
  const int64_t f = observations.dim(1);
  ET_CHECK_EQ(f, pca.mean.dim(0));
  const int64_t k = pca.components.dim(1);
  Tensor out({m, k});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t c = 0; c < k; ++c) {
      double dot = 0.0;
      for (int64_t j = 0; j < f; ++j) {
        dot += (observations[i * f + j] - pca.mean[j]) *
               pca.components[j * k + c];
      }
      out[i * k + c] = static_cast<float>(dot);
    }
  }
  return out;
}

Tensor DatasetObservationMatrix(
    const std::vector<data::AlignedDataset>& datasets, int64_t w, int64_t h,
    int64_t hours) {
  int64_t f = 0;
  for (const auto& ds : datasets) f += ds.channels();
  const int64_t m = w * h * hours;
  Tensor out({m, f});
  int64_t feature = 0;
  for (const auto& ds : datasets) {
    const Tensor& t = ds.tensor;
    const int64_t c = ds.channels();
    for (int64_t ch = 0; ch < c; ++ch, ++feature) {
      for (int64_t x = 0; x < w; ++x) {
        for (int64_t y = 0; y < h; ++y) {
          for (int64_t tt = 0; tt < hours; ++tt) {
            const int64_t row = (x * h + y) * hours + tt;
            float value = 0.0f;
            switch (ds.kind) {
              case data::DatasetKind::kTemporal:
                value = t[ch * hours + tt];
                break;
              case data::DatasetKind::kSpatial:
                value = t[(ch * w + x) * h + y];
                break;
              case data::DatasetKind::kSpatioTemporal:
                value = t[((ch * w + x) * h + y) * hours + tt];
                break;
            }
            out[row * f + feature] = value;
          }
        }
      }
    }
  }
  return out;
}

Tensor PcaRepresentation(const std::vector<data::AlignedDataset>& datasets,
                         int64_t w, int64_t h, int64_t hours, int64_t k) {
  const Tensor obs = DatasetObservationMatrix(datasets, w, h, hours);
  const PcaResult pca = FitPca(obs, k);
  const Tensor projected = PcaProject(pca, obs);  // [W*H*T, K]
  // Re-layout to [K, W, H, T].
  Tensor z({k, w, h, hours});
  for (int64_t x = 0; x < w; ++x) {
    for (int64_t y = 0; y < h; ++y) {
      for (int64_t tt = 0; tt < hours; ++tt) {
        const int64_t row = (x * h + y) * hours + tt;
        for (int64_t c = 0; c < k; ++c) {
          z[((c * w + x) * h + y) * hours + tt] = projected[row * k + c];
        }
      }
    }
  }
  return z;
}

}  // namespace models
}  // namespace equitensor
