#ifndef EQUITENSOR_MODELS_EARLY_FUSION_H_
#define EQUITENSOR_MODELS_EARLY_FUSION_H_

#include <memory>
#include <vector>

#include "models/cdae.h"

namespace equitensor {
namespace models {

/// The early-fusion CDAE baseline (§4.2): instead of encoding each
/// dataset separately, all datasets are tiled to the common 3D shape
/// and concatenated *at the input*; a single 3D-conv encoder maps the
/// stack to Z and a single decoder reconstructs the whole stack.
class EarlyFusionCdae : public nn::Module {
 public:
  EarlyFusionCdae(CdaeConfig config, std::vector<DatasetSpec> specs, Rng& rng);
  ~EarlyFusionCdae();  // out of line: nn::GraphIr is incomplete here

  int64_t total_channels() const { return total_channels_; }
  const CdaeConfig& config() const { return config_; }

  /// Tiles + concatenates per-dataset batches into [N, ΣC, W, H, T].
  /// Stays eager on purpose: the training loop needs the fused stack
  /// as a materialized reconstruction target.
  Variable FuseInputs(const std::vector<Variable>& inputs) const;

  /// [N, ΣC, W, H, T] -> Z [N, K, W, H, T].
  Variable Encode(const Variable& fused) const;

  /// Encode straight from per-dataset batches. Under a fused-graph
  /// backend this runs the sealed tiles→concat→encoder schedule, where
  /// the input concat folds into the encoder's first conv; otherwise
  /// it is exactly Encode(FuseInputs(inputs)).
  Variable EncodeParts(const std::vector<Variable>& inputs) const;

  /// The sealed parts→Z graph (for tests and diagnostics).
  const nn::GraphIr& parts_ir() const { return *parts_ir_; }

  /// Z -> reconstruction of the fused stack.
  Variable Decode(const Variable& z) const;

  std::vector<Variable> Parameters() const override;

 private:
  CdaeConfig config_;
  std::vector<DatasetSpec> specs_;
  int64_t total_channels_ = 0;
  std::unique_ptr<nn::ConvStack> encoder_;
  std::unique_ptr<nn::ConvStack> decoder_;
  /// Static graph: dataset inputs -> tiles -> concat -> encoder.
  std::unique_ptr<nn::GraphIr> parts_ir_;
};

}  // namespace models
}  // namespace equitensor

#endif  // EQUITENSOR_MODELS_EARLY_FUSION_H_
