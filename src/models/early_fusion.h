#ifndef EQUITENSOR_MODELS_EARLY_FUSION_H_
#define EQUITENSOR_MODELS_EARLY_FUSION_H_

#include <memory>
#include <vector>

#include "models/cdae.h"

namespace equitensor {
namespace models {

/// The early-fusion CDAE baseline (§4.2): instead of encoding each
/// dataset separately, all datasets are tiled to the common 3D shape
/// and concatenated *at the input*; a single 3D-conv encoder maps the
/// stack to Z and a single decoder reconstructs the whole stack.
class EarlyFusionCdae : public nn::Module {
 public:
  EarlyFusionCdae(CdaeConfig config, std::vector<DatasetSpec> specs, Rng& rng);

  int64_t total_channels() const { return total_channels_; }
  const CdaeConfig& config() const { return config_; }

  /// Tiles + concatenates per-dataset batches into [N, ΣC, W, H, T].
  Variable FuseInputs(const std::vector<Variable>& inputs) const;

  /// [N, ΣC, W, H, T] -> Z [N, K, W, H, T].
  Variable Encode(const Variable& fused) const;

  /// Z -> reconstruction of the fused stack.
  Variable Decode(const Variable& z) const;

  std::vector<Variable> Parameters() const override;

 private:
  CdaeConfig config_;
  std::vector<DatasetSpec> specs_;
  int64_t total_channels_ = 0;
  std::unique_ptr<nn::ConvStack> encoder_;
  std::unique_ptr<nn::ConvStack> decoder_;
};

}  // namespace models
}  // namespace equitensor

#endif  // EQUITENSOR_MODELS_EARLY_FUSION_H_
