#include "models/predictor.h"

#include "autograd/ops.h"
#include "util/check.h"

namespace equitensor {
namespace models {

GridPredictor::GridPredictor(GridPredictorConfig config, int64_t exo_channels,
                             Rng& rng)
    : config_(std::move(config)), exo_channels_(exo_channels) {
  ET_CHECK_GE(exo_channels_, 0);
  ET_CHECK_EQ(config_.head_filters.back(), 1)
      << "predictor emits a single demand channel";
  history_stack_ = std::make_unique<nn::ConvStack>(
      3, 1, config_.history_filters, config_.kernel, rng,
      nn::Activation::kRelu);
  int64_t head_in = config_.history_filters.back();
  if (exo_channels_ > 0) {
    exo_stack_ = std::make_unique<nn::ConvStack>(
        2, exo_channels_, config_.exo_filters, config_.kernel, rng,
        nn::Activation::kRelu);
    // The head sees both the processed exo features and the raw exo
    // channels (skip connection) — with few training steps the raw
    // path lets a single informative channel reach the output without
    // first surviving a randomly initialized ReLU stack.
    head_in += config_.exo_filters.back() + exo_channels_;
  }
  head_ = std::make_unique<nn::ConvStack>(2, head_in, config_.head_filters,
                                          config_.kernel, rng,
                                          nn::Activation::kLinear);
}

Variable GridPredictor::Forward(const Variable& history,
                                const Variable& exo) const {
  ET_CHECK_EQ(history.rank(), 5);
  // 3D convolutions over the history, then collapse time.
  Variable h = history_stack_->Forward(history);
  h = ag::MeanAxis(h, /*axis=*/4);  // [N, C, W, H]

  Variable fused = h;
  if (exo_channels_ > 0) {
    ET_CHECK(exo.defined()) << "predictor built with exogenous channels";
    ET_CHECK_EQ(exo.value().dim(1), exo_channels_);
    Variable e = exo_stack_->Forward(exo);
    fused = ag::Concat({h, e, exo}, /*axis=*/1);
  } else {
    ET_CHECK(!exo.defined()) << "no-exo predictor got exogenous features";
  }
  return head_->Forward(fused);
}

std::vector<Variable> GridPredictor::Parameters() const {
  std::vector<Variable> params = history_stack_->Parameters();
  if (exo_stack_) {
    for (const Variable& p : exo_stack_->Parameters()) params.push_back(p);
  }
  for (const Variable& p : head_->Parameters()) params.push_back(p);
  return params;
}

Seq2SeqForecaster::Seq2SeqForecaster(int64_t input_features, int64_t hidden,
                                     int64_t horizon, Rng& rng)
    : input_features_(input_features), horizon_(horizon) {
  ET_CHECK_GE(input_features, 1);
  ET_CHECK_GE(horizon, 1);
  encoder_ = std::make_unique<nn::LstmCell>(input_features, hidden, rng);
  encoder_->SetObserveName("seq2seq.encoder");
  decoder_ = std::make_unique<nn::LstmCell>(1, hidden, rng);
  decoder_->SetObserveName("seq2seq.decoder");
  head_ = std::make_unique<nn::Linear>(hidden, 1, rng);
  head_->SetObserveName("seq2seq.head");
}

Variable Seq2SeqForecaster::Forward(const Variable& history) const {
  ET_CHECK_EQ(history.rank(), 3);
  const int64_t n = history.value().dim(0);
  const int64_t steps = history.value().dim(1);
  ET_CHECK_EQ(history.value().dim(2), input_features_);

  // Encode the history.
  nn::LstmState state = encoder_->InitialState(n);
  for (int64_t t = 0; t < steps; ++t) {
    Variable x = ag::Reshape(
        ag::Slice(history, {0, t, 0}, {n, 1, input_features_}),
        {n, input_features_});
    state = encoder_->Step(x, state);
  }

  // Decode autoregressively; the first decoder input is the last
  // observed target value.
  Variable prev = ag::Reshape(
      ag::Slice(history, {0, steps - 1, 0}, {n, 1, 1}), {n, 1});
  nn::LstmState dec_state = state;
  std::vector<Variable> outputs;
  outputs.reserve(static_cast<size_t>(horizon_));
  for (int64_t t = 0; t < horizon_; ++t) {
    dec_state = decoder_->Step(prev, dec_state);
    Variable y = head_->Forward(dec_state.h);  // [N, 1]
    outputs.push_back(y);
    prev = y;
  }
  return ag::Concat(outputs, /*axis=*/1);  // [N, horizon]
}

std::vector<Variable> Seq2SeqForecaster::Parameters() const {
  return nn::JoinParameters({encoder_.get(), decoder_.get(), head_.get()});
}

}  // namespace models
}  // namespace equitensor
