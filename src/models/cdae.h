#ifndef EQUITENSOR_MODELS_CDAE_H_
#define EQUITENSOR_MODELS_CDAE_H_

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "nn/layers.h"

namespace equitensor {
namespace models {

/// Shape/architecture description of one input dataset as seen by the
/// CDAE (kind + channel count; the tensors come from WindowSampler).
struct DatasetSpec {
  std::string name;
  data::DatasetKind kind = data::DatasetKind::kTemporal;
  int64_t channels = 1;
};

/// Hyper-parameters of the core integrative model (§3.2). Defaults
/// follow the paper: 3-layer per-dataset encoders (16/32/1 filters),
/// 3 shared encoding layers, 3-layer decoders, kernel 3, stride 1,
/// latent K = 5 channels, 24-hour windows, 15 % corruption.
struct CdaeConfig {
  int64_t grid_w = 12;
  int64_t grid_h = 10;
  int64_t window = 24;
  int64_t latent_channels = 5;
  std::vector<int64_t> encoder_filters = {16, 32, 1};
  std::vector<int64_t> shared_filters = {16, 32};  // latent K appended
  std::vector<int64_t> decoder_filters = {16, 32};  // C_i appended
  int64_t kernel = 3;
  double corruption = 0.15;
  /// When true the decoder receives the sensitive map S as an extra
  /// channel (the disentangling module, §3.4).
  bool disentangle = false;
};

/// The core integrative model: per-dataset encoders -> expand to the
/// common [W, H, window] shape -> concat -> shared 3D-conv encoder ->
/// latent Z [N, K, W, H, window]; per-dataset decoders reconstruct
/// every input from Z (Figure 2). With config.disentangle, Decode()
/// additionally consumes the tiled sensitive attribute (Figure 3).
class CoreCdae : public nn::Module {
 public:
  CoreCdae(CdaeConfig config, std::vector<DatasetSpec> specs, Rng& rng);
  ~CoreCdae();  // out of line: nn::GraphIr is incomplete here

  const CdaeConfig& config() const { return config_; }
  const std::vector<DatasetSpec>& specs() const { return specs_; }
  int64_t dataset_count() const {
    return static_cast<int64_t>(specs_.size());
  }

  /// Encodes one batch. `inputs[i]` must hold dataset i in NN layout
  /// ([N,C,window] / [N,C,W,H] / [N,C,W,H,window]). Returns Z.
  ///
  /// Under a fused-graph backend (backend::FusedGraphActive) with no
  /// hooks registered, this runs the model's sealed static schedule
  /// (nn/graph_ir.h): every conv+bias+activation is one fused dispatch
  /// and the encoder concat is folded into the shared encoder's first
  /// conv, so the [N, D, W, H, T] merged tensor never exists.
  Variable Encode(const std::vector<Variable>& inputs) const;

  /// The sealed whole-encoder graph (for tests and diagnostics).
  const nn::GraphIr& encode_ir() const { return *encode_ir_; }

  /// Gradient-free convenience over Encode for audit/serving paths
  /// (the trainer's live fairness audit, DESIGN.md §12): wraps clean
  /// tensors in non-grad Variables and returns the latent value
  /// [N, K, W, H, window] without growing an autograd graph rooted in
  /// the parameters' gradient state.
  Tensor EncodeValue(const std::vector<Tensor>& inputs) const;

  /// Decodes every dataset from Z. `s_tiled` ([N,1,W,H,window]) is
  /// required iff config.disentangle; pass an undefined Variable
  /// otherwise.
  std::vector<Variable> Decode(const Variable& z,
                               const Variable& s_tiled) const;

  /// Per-dataset MAE between reconstructions and clean targets.
  std::vector<Variable> ReconstructionLosses(
      const std::vector<Variable>& recons,
      const std::vector<Tensor>& clean_targets) const;

  std::vector<Variable> Parameters() const override;
  /// Names follow the architecture: "enc<i>.conv<j>.weight",
  /// "shared.conv<j>.bias", "dec<i>.conv<j>.weight", ...
  std::vector<nn::NamedParameter> NamedParameters() const override;

 private:
  /// Expands a per-dataset encoding to [N, 1, W, H, window].
  Variable ExpandTo3d(const Variable& encoded, data::DatasetKind kind) const;

  CdaeConfig config_;
  std::vector<DatasetSpec> specs_;
  std::vector<std::unique_ptr<nn::ConvStack>> encoders_;
  std::unique_ptr<nn::ConvStack> shared_encoder_;
  std::vector<std::unique_ptr<nn::ConvStack>> decoders_;
  /// Whole-encoder static graph: dataset inputs -> per-dataset
  /// encoders -> tiles -> concat -> shared encoder, fused.
  std::unique_ptr<nn::GraphIr> encode_ir_;
};

/// Tiles a [W, H] sensitive map into the decoder/adversary target
/// layout [N, 1, W, H, window] (the paper duplicates S along time).
Tensor TileSensitiveMap(const Tensor& s_map, int64_t batch, int64_t window);

}  // namespace models
}  // namespace equitensor

#endif  // EQUITENSOR_MODELS_CDAE_H_
