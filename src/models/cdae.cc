#include "models/cdae.h"

#include "autograd/hooks.h"
#include "autograd/ops.h"
#include "nn/backend_registry.h"
#include "nn/graph_ir.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"

namespace equitensor {
namespace models {
namespace {

int SpatialRank(data::DatasetKind kind) {
  switch (kind) {
    case data::DatasetKind::kTemporal:
      return 1;
    case data::DatasetKind::kSpatial:
      return 2;
    case data::DatasetKind::kSpatioTemporal:
      return 3;
  }
  return 0;
}

}  // namespace

CoreCdae::CoreCdae(CdaeConfig config, std::vector<DatasetSpec> specs, Rng& rng)
    : config_(std::move(config)), specs_(std::move(specs)) {
  ET_CHECK(!specs_.empty());
  ET_CHECK(!config_.encoder_filters.empty());
  ET_CHECK_EQ(config_.encoder_filters.back(), 1)
      << "per-dataset encoders must collapse to one feature (§3.2)";

  // Per-dataset encoder stacks (conv dimensionality matches the data).
  // Observation names mirror the NamedParameters tree so a sentinel
  // trip at "cdae.enc0.conv1" points at the "enc0.conv1.*" parameters.
  for (size_t i = 0; i < specs_.size(); ++i) {
    const DatasetSpec& spec = specs_[i];
    encoders_.push_back(std::make_unique<nn::ConvStack>(
        SpatialRank(spec.kind), spec.channels, config_.encoder_filters,
        config_.kernel, rng, nn::Activation::kRelu));
    encoders_.back()->SetObserveName("cdae.enc" + std::to_string(i));
  }

  // Shared 3D encoder producing Z with K channels.
  std::vector<int64_t> shared = config_.shared_filters;
  shared.push_back(config_.latent_channels);
  shared_encoder_ = std::make_unique<nn::ConvStack>(
      3, dataset_count(), shared, config_.kernel, rng,
      nn::Activation::kLinear);
  shared_encoder_->SetObserveName("cdae.shared");

  // Per-dataset decoder stacks from Z (+S when disentangling).
  const int64_t decoder_in =
      config_.latent_channels + (config_.disentangle ? 1 : 0);
  for (size_t i = 0; i < specs_.size(); ++i) {
    const DatasetSpec& spec = specs_[i];
    std::vector<int64_t> filters = config_.decoder_filters;
    filters.push_back(spec.channels);
    decoders_.push_back(std::make_unique<nn::ConvStack>(
        SpatialRank(spec.kind), decoder_in, filters, config_.kernel, rng,
        nn::Activation::kLinear));
    decoders_.back()->SetObserveName("cdae.dec" + std::to_string(i));
  }

  // Whole-encoder static graph (DESIGN.md §15), built once over the
  // construction-time shapes. Sealing fuses every conv→bias→act chain
  // and folds the dataset concat into the shared encoder's first conv.
  encode_ir_ = std::make_unique<nn::GraphIr>();
  std::vector<int> expanded_ids;
  expanded_ids.reserve(specs_.size());
  for (size_t i = 0; i < specs_.size(); ++i) {
    int id = encode_ir_->AddInput(specs_[i].channels);
    id = encoders_[i]->AppendToIr(encode_ir_.get(), id);
    switch (specs_[i].kind) {
      case data::DatasetKind::kTemporal:
        id = encode_ir_->AddTile(id, 2, config_.grid_w);
        id = encode_ir_->AddTile(id, 3, config_.grid_h);
        break;
      case data::DatasetKind::kSpatial:
        id = encode_ir_->AddTile(id, 4, config_.window);
        break;
      case data::DatasetKind::kSpatioTemporal:
        break;
    }
    expanded_ids.push_back(id);
  }
  const int merged = encode_ir_->AddConcat(std::move(expanded_ids));
  encode_ir_->MarkOutput(shared_encoder_->AppendToIr(encode_ir_.get(), merged));
  encode_ir_->Seal();
}

CoreCdae::~CoreCdae() = default;

Variable CoreCdae::ExpandTo3d(const Variable& encoded,
                              data::DatasetKind kind) const {
  switch (kind) {
    case data::DatasetKind::kTemporal:
      // [N, 1, T] -> [N, 1, W, T] -> [N, 1, W, H, T].
      return ag::TileAt(ag::TileAt(encoded, 2, config_.grid_w), 3,
                        config_.grid_h);
    case data::DatasetKind::kSpatial:
      // [N, 1, W, H] -> [N, 1, W, H, T].
      return ag::TileAt(encoded, 4, config_.window);
    case data::DatasetKind::kSpatioTemporal:
      return encoded;
  }
  ET_CHECK(false);
  return encoded;
}

Variable CoreCdae::Encode(const std::vector<Variable>& inputs) const {
  ET_CHECK_EQ(static_cast<int64_t>(inputs.size()), dataset_count());
  // Fused schedule, unless hooks need the eager chain's intermediates
  // (the encoders carry observe names, so hook runs must stay eager).
  if (!ag::HooksActive() && backend::FusedGraphActive()) {
    return encode_ir_->Run(inputs)[0];
  }
  std::vector<Variable> expanded;
  expanded.reserve(inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    Variable encoded = encoders_[i]->Forward(inputs[i]);
    expanded.push_back(ExpandTo3d(encoded, specs_[i].kind));
  }
  Variable merged = ag::Concat(expanded, /*axis=*/1);
  return shared_encoder_->Forward(merged);
}

Tensor CoreCdae::EncodeValue(const std::vector<Tensor>& inputs) const {
  std::vector<Variable> vars;
  vars.reserve(inputs.size());
  for (const Tensor& tensor : inputs) {
    vars.emplace_back(tensor, /*requires_grad=*/false);
  }
  return Encode(vars).value();
}

std::vector<Variable> CoreCdae::Decode(const Variable& z,
                                       const Variable& s_tiled) const {
  Variable decoder_input = z;
  if (config_.disentangle) {
    ET_CHECK(s_tiled.defined())
        << "disentangling decoder requires the sensitive attribute";
    decoder_input = ag::Concat({z, s_tiled}, /*axis=*/1);
  } else {
    ET_CHECK(!s_tiled.defined())
        << "sensitive attribute passed to a non-disentangling decoder";
  }

  std::vector<Variable> recons;
  recons.reserve(decoders_.size());
  for (size_t i = 0; i < decoders_.size(); ++i) {
    switch (specs_[i].kind) {
      case data::DatasetKind::kTemporal: {
        // Average-pool space (§3.2), then 1D deconvolution stack.
        Variable pooled = ag::MeanAxis(ag::MeanAxis(decoder_input, 2), 2);
        recons.push_back(decoders_[i]->Forward(pooled));
        break;
      }
      case data::DatasetKind::kSpatial: {
        // Average-pool time, then 2D stack.
        Variable pooled = ag::MeanAxis(decoder_input, 4);
        recons.push_back(decoders_[i]->Forward(pooled));
        break;
      }
      case data::DatasetKind::kSpatioTemporal: {
        recons.push_back(decoders_[i]->Forward(decoder_input));
        break;
      }
    }
  }
  return recons;
}

std::vector<Variable> CoreCdae::ReconstructionLosses(
    const std::vector<Variable>& recons,
    const std::vector<Tensor>& clean_targets) const {
  ET_CHECK_EQ(recons.size(), clean_targets.size());
  std::vector<Variable> losses;
  losses.reserve(recons.size());
  for (size_t i = 0; i < recons.size(); ++i) {
    losses.push_back(ag::MaeAgainst(recons[i], clean_targets[i]));
  }
  return losses;
}

std::vector<Variable> CoreCdae::Parameters() const {
  std::vector<Variable> params;
  for (const auto& enc : encoders_) {
    for (const Variable& p : enc->Parameters()) params.push_back(p);
  }
  for (const Variable& p : shared_encoder_->Parameters()) params.push_back(p);
  for (const auto& dec : decoders_) {
    for (const Variable& p : dec->Parameters()) params.push_back(p);
  }
  return params;
}

std::vector<nn::NamedParameter> CoreCdae::NamedParameters() const {
  // Same order as Parameters() so optimizer slot indices line up.
  std::vector<nn::NamedParameter> named;
  for (size_t i = 0; i < encoders_.size(); ++i) {
    nn::AppendNamedParameters("enc" + std::to_string(i) + ".", *encoders_[i],
                              &named);
  }
  nn::AppendNamedParameters("shared.", *shared_encoder_, &named);
  for (size_t i = 0; i < decoders_.size(); ++i) {
    nn::AppendNamedParameters("dec" + std::to_string(i) + ".", *decoders_[i],
                              &named);
  }
  return named;
}

Tensor TileSensitiveMap(const Tensor& s_map, int64_t batch, int64_t window) {
  ET_CHECK_EQ(s_map.rank(), 2);
  // [W, H] -> [W, H, window] -> [1, W, H, window] -> [N, 1, W, H, window].
  Tensor tiled = TileTrailing(s_map, window);
  tiled = tiled.Reshape({1, s_map.dim(0), s_map.dim(1), window});
  return TileAt(tiled, 0, batch);
}

}  // namespace models
}  // namespace equitensor
