#ifndef EQUITENSOR_MODELS_PCA_H_
#define EQUITENSOR_MODELS_PCA_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "tensor/tensor.h"

namespace equitensor {
namespace models {

/// Principal component analysis, the paper's classical baseline
/// (§4.2): every (cell, hour) pair contributes one observation whose
/// features are the values of all datasets at that cell/hour (1D
/// datasets contribute their hour value, 2D their cell value, 3D
/// both-indexed values). The K leading components form a latent
/// representation with the same [K, W, H, T] shape as an EquiTensor.

/// Fitted PCA model.
struct PcaResult {
  Tensor mean;         // [F]
  Tensor components;   // [F, K], columns are eigenvectors
  Tensor eigenvalues;  // [K], descending
};

/// Jacobi eigendecomposition of a symmetric matrix [F, F]. Outputs all
/// eigenvalues (descending) and the matching eigenvectors as columns.
void SymmetricEigen(const Tensor& matrix, Tensor* eigenvalues,
                    Tensor* eigenvectors);

/// Fits PCA on observations [M, F], keeping the top `k` components.
PcaResult FitPca(const Tensor& observations, int64_t k);

/// Projects observations [M, F] to [M, K].
Tensor PcaProject(const PcaResult& pca, const Tensor& observations);

/// Builds the [W*H*T, F] observation matrix described above.
Tensor DatasetObservationMatrix(const std::vector<data::AlignedDataset>& datasets,
                                int64_t w, int64_t h, int64_t hours);

/// Full pipeline: datasets -> fitted PCA -> latent [K, W, H, T].
Tensor PcaRepresentation(const std::vector<data::AlignedDataset>& datasets,
                         int64_t w, int64_t h, int64_t hours, int64_t k);

}  // namespace models
}  // namespace equitensor

#endif  // EQUITENSOR_MODELS_PCA_H_
