#include "models/early_fusion.h"

#include "autograd/hooks.h"
#include "autograd/ops.h"
#include "nn/backend_registry.h"
#include "nn/graph_ir.h"
#include "util/check.h"

namespace equitensor {
namespace models {

EarlyFusionCdae::EarlyFusionCdae(CdaeConfig config,
                                 std::vector<DatasetSpec> specs, Rng& rng)
    : config_(std::move(config)), specs_(std::move(specs)) {
  ET_CHECK(!specs_.empty());
  for (const DatasetSpec& spec : specs_) total_channels_ += spec.channels;

  std::vector<int64_t> enc = config_.shared_filters;
  enc.push_back(config_.latent_channels);
  encoder_ = std::make_unique<nn::ConvStack>(3, total_channels_, std::move(enc),
                                             config_.kernel, rng,
                                             nn::Activation::kLinear);
  std::vector<int64_t> dec = config_.decoder_filters;
  dec.push_back(total_channels_);
  decoder_ = std::make_unique<nn::ConvStack>(3, config_.latent_channels,
                                             std::move(dec), config_.kernel,
                                             rng, nn::Activation::kLinear);

  // Static parts→Z graph: the input concat folds into the encoder's
  // first conv on a fused backend (DESIGN.md §15).
  parts_ir_ = std::make_unique<nn::GraphIr>();
  std::vector<int> expanded_ids;
  expanded_ids.reserve(specs_.size());
  for (const DatasetSpec& spec : specs_) {
    int id = parts_ir_->AddInput(spec.channels);
    switch (spec.kind) {
      case data::DatasetKind::kTemporal:
        id = parts_ir_->AddTile(id, 2, config_.grid_w);
        id = parts_ir_->AddTile(id, 3, config_.grid_h);
        break;
      case data::DatasetKind::kSpatial:
        id = parts_ir_->AddTile(id, 4, config_.window);
        break;
      case data::DatasetKind::kSpatioTemporal:
        break;
    }
    expanded_ids.push_back(id);
  }
  const int merged = parts_ir_->AddConcat(std::move(expanded_ids));
  parts_ir_->MarkOutput(encoder_->AppendToIr(parts_ir_.get(), merged));
  parts_ir_->Seal();
}

EarlyFusionCdae::~EarlyFusionCdae() = default;

Variable EarlyFusionCdae::FuseInputs(const std::vector<Variable>& inputs) const {
  ET_CHECK_EQ(inputs.size(), specs_.size());
  std::vector<Variable> expanded;
  expanded.reserve(inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    switch (specs_[i].kind) {
      case data::DatasetKind::kTemporal:
        expanded.push_back(ag::TileAt(
            ag::TileAt(inputs[i], 2, config_.grid_w), 3, config_.grid_h));
        break;
      case data::DatasetKind::kSpatial:
        expanded.push_back(ag::TileAt(inputs[i], 4, config_.window));
        break;
      case data::DatasetKind::kSpatioTemporal:
        expanded.push_back(inputs[i]);
        break;
    }
  }
  return ag::Concat(expanded, /*axis=*/1);
}

Variable EarlyFusionCdae::Encode(const Variable& fused) const {
  ET_CHECK_EQ(fused.value().dim(1), total_channels_);
  return encoder_->Forward(fused);
}

Variable EarlyFusionCdae::EncodeParts(
    const std::vector<Variable>& inputs) const {
  ET_CHECK_EQ(inputs.size(), specs_.size());
  if (!ag::HooksActive() && backend::FusedGraphActive()) {
    return parts_ir_->Run(inputs)[0];
  }
  return Encode(FuseInputs(inputs));
}

Variable EarlyFusionCdae::Decode(const Variable& z) const {
  return decoder_->Forward(z);
}

std::vector<Variable> EarlyFusionCdae::Parameters() const {
  return nn::JoinParameters({encoder_.get(), decoder_.get()});
}

}  // namespace models
}  // namespace equitensor
