#ifndef EQUITENSOR_MODELS_PREDICTOR_H_
#define EQUITENSOR_MODELS_PREDICTOR_H_

#include <memory>
#include <vector>

#include "nn/layers.h"
#include "nn/lstm.h"

namespace equitensor {
namespace models {

/// Hyper-parameters of the 3D-CNN downstream predictor used for the
/// spatio-temporal tasks (the [58]-style network of §4.2: historical
/// demand through 3D convolutions, exogenous features through 2D
/// convolutions, fused per cell).
struct GridPredictorConfig {
  int64_t history = 24;  // length of the demand history window
  std::vector<int64_t> history_filters = {8, 16};
  std::vector<int64_t> exo_filters = {8};
  std::vector<int64_t> head_filters = {16, 1};
  int64_t kernel = 3;
};

/// Predicts the next-step demand grid [N, 1, W, H] from the historical
/// target grid [N, 1, W, H, history] and optional per-cell exogenous
/// feature channels [N, E, W, H]. With E = 0 this is the paper's
/// "No exogenous data" baseline; with hand-picked channels it is the
/// oracle; with EquiTensor/PCA/early-fusion channels it evaluates the
/// learned representations.
class GridPredictor : public nn::Module {
 public:
  GridPredictor(GridPredictorConfig config, int64_t exo_channels, Rng& rng);

  /// `exo` must be defined iff exo_channels > 0.
  Variable Forward(const Variable& history, const Variable& exo) const;

  int64_t exo_channels() const { return exo_channels_; }
  std::vector<Variable> Parameters() const override;

 private:
  GridPredictorConfig config_;
  int64_t exo_channels_;
  std::unique_ptr<nn::ConvStack> history_stack_;  // 3D
  std::unique_ptr<nn::ConvStack> exo_stack_;      // 2D (optional)
  std::unique_ptr<nn::ConvStack> head_;           // 2D
};

/// Seq-to-seq LSTM forecaster for the 1D bike-count task ([48]-style,
/// §4.2): an encoder LSTM consumes the history sequence, a decoder
/// LSTM unrolls `horizon` steps feeding back its own predictions.
class Seq2SeqForecaster : public nn::Module {
 public:
  /// `input_features` = 1 (the target) + number of exogenous series.
  Seq2SeqForecaster(int64_t input_features, int64_t hidden, int64_t horizon,
                    Rng& rng);

  /// history: [N, Th, F]; returns predictions [N, horizon].
  Variable Forward(const Variable& history) const;

  int64_t horizon() const { return horizon_; }
  std::vector<Variable> Parameters() const override;

 private:
  int64_t input_features_;
  int64_t horizon_;
  std::unique_ptr<nn::LstmCell> encoder_;
  std::unique_ptr<nn::LstmCell> decoder_;
  std::unique_ptr<nn::Linear> head_;
};

}  // namespace models
}  // namespace equitensor

#endif  // EQUITENSOR_MODELS_PREDICTOR_H_
