#include "models/adversary.h"

#include "autograd/ops.h"
#include "util/check.h"

namespace equitensor {
namespace models {

AdversaryNet::AdversaryNet(int64_t latent_channels, Rng& rng, int64_t kernel,
                           std::vector<int64_t> filters) {
  ET_CHECK(!filters.empty());
  ET_CHECK_EQ(filters.back(), 1) << "adversary predicts a single channel";
  stack_ = std::make_unique<nn::ConvStack>(3, latent_channels,
                                           std::move(filters), kernel, rng,
                                           nn::Activation::kLinear);
  stack_->SetObserveName("adversary");
}

Variable AdversaryNet::Forward(const Variable& z) const {
  return stack_->Forward(z);
}

Variable AdversaryNet::Loss(const Variable& z, const Tensor& s_tiled) const {
  return ag::MaeAgainst(Forward(z), s_tiled);
}

}  // namespace models
}  // namespace equitensor
