#ifndef EQUITENSOR_AUTOGRAD_OPS_H_
#define EQUITENSOR_AUTOGRAD_OPS_H_

#include <vector>

#include "autograd/variable.h"

namespace equitensor {
namespace ag {

/// Differentiable op set. All ops are eager: they compute the forward
/// value immediately and record a backward closure on the tape.

/// Elementwise a + b (same shape).
Variable Add(const Variable& a, const Variable& b);
/// Elementwise a - b.
Variable Sub(const Variable& a, const Variable& b);
/// Elementwise a * b.
Variable Mul(const Variable& a, const Variable& b);
/// a + s for a scalar constant s.
Variable AddScalar(const Variable& a, float s);
/// a * s for a scalar constant s.
Variable MulScalar(const Variable& a, float s);
/// Elementwise negation.
Variable Neg(const Variable& a);

/// Activations.
Variable Relu(const Variable& a);
Variable Sigmoid(const Variable& a);
Variable Tanh(const Variable& a);

/// Elementwise exponential.
Variable Exp(const Variable& a);

/// Matrix product [m,k] x [k,n] -> [m,n].
Variable MatMul(const Variable& a, const Variable& b);

/// Adds a length-C bias vector along `channel_axis` of x.
Variable AddBias(const Variable& x, const Variable& bias, int channel_axis);

/// Concatenation along `axis`.
Variable Concat(const std::vector<Variable>& parts, int axis);

/// Sub-tensor extraction; backward scatters into the source region.
Variable Slice(const Variable& x, const std::vector<int64_t>& offsets,
               const std::vector<int64_t>& sizes);

/// Inserts a new axis of length `repeat` at `axis` by duplication;
/// backward sums over the repeats.
Variable TileAt(const Variable& x, int axis, int64_t repeat);

/// Same data, new shape of equal volume; gradients reshape back.
Variable Reshape(const Variable& x, std::vector<int64_t> new_shape);

/// Mean over one axis (axis removed); backward spreads evenly.
Variable MeanAxis(const Variable& x, int axis);

/// Rank-0 mean over all elements.
Variable MeanAll(const Variable& x);
/// Rank-0 sum over all elements.
Variable SumAll(const Variable& x);

/// Mean absolute error against a constant target: mean |x - target|.
/// d/dx = sign(x - target)/n (0 where equal).
Variable MaeAgainst(const Variable& x, const Tensor& target);

/// Mean absolute error between two Variables (grads flow to both).
Variable Mae(const Variable& x, const Variable& y);

/// Gradient reversal (Ganin & Lempitsky): identity forward,
/// multiplies the gradient by -lambda on the way back. Used by the
/// Fair-CDAE baseline's prediction head.
Variable GradReverse(const Variable& x, float lambda);

/// Detaches x from the tape: same value, no gradient flow.
Variable Detach(const Variable& x);

}  // namespace ag
}  // namespace equitensor

#endif  // EQUITENSOR_AUTOGRAD_OPS_H_
