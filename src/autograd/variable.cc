#include "autograd/variable.h"

#include <unordered_map>
#include <unordered_set>

#include "util/check.h"

namespace equitensor {

void AutogradNode::AccumulateGrad(const Tensor& delta) {
  ET_CHECK(delta.SameShape(value))
      << "gradient shape " << delta.ShapeString() << " != value shape "
      << value.ShapeString() << " in op " << op_name;
  if (!grad_ready) {
    grad = delta;
    grad_ready = true;
    return;
  }
  for (int64_t i = 0; i < grad.size(); ++i) grad[i] += delta[i];
}

Variable::Variable(Tensor value, bool requires_grad)
    : node_(std::make_shared<AutogradNode>()) {
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
  node_->is_leaf = true;
}

const Tensor& Variable::value() const {
  ET_CHECK(defined());
  return node_->value;
}

Tensor& Variable::mutable_value() {
  ET_CHECK(defined());
  return node_->value;
}

const Tensor& Variable::grad() const {
  ET_CHECK(defined());
  ET_CHECK(node_->grad_ready) << "gradient not computed for " << node_->op_name;
  return node_->grad;
}

bool Variable::grad_ready() const { return defined() && node_->grad_ready; }

void Variable::ZeroGrad() {
  ET_CHECK(defined());
  node_->grad_ready = false;
  node_->grad = Tensor();
}

bool Variable::requires_grad() const {
  ET_CHECK(defined());
  return node_->requires_grad;
}

const std::string& Variable::op_name() const {
  ET_CHECK(defined());
  return node_->op_name;
}

float Variable::scalar() const {
  ET_CHECK_EQ(value().size(), 1) << "scalar() on non-scalar variable";
  return value()[0];
}

Variable Variable::MakeOp(
    std::string op_name, Tensor value, std::vector<Variable> inputs,
    std::function<void(const AutogradNode&)> backward_fn) {
  bool requires_grad = false;
  for (const Variable& in : inputs) {
    ET_CHECK(in.defined()) << "undefined input to op " << op_name;
    requires_grad = requires_grad || in.requires_grad();
  }
  Variable out;
  out.node_ = std::make_shared<AutogradNode>();
  out.node_->value = std::move(value);
  out.node_->op_name = std::move(op_name);
  out.node_->is_leaf = false;
  out.node_->requires_grad = requires_grad;
  if (requires_grad) {
    out.node_->parents.reserve(inputs.size());
    for (const Variable& in : inputs) out.node_->parents.push_back(in.node());
    out.node_->backward_fn = std::move(backward_fn);
  }
  return out;
}

void Backward(const Variable& root) {
  ET_CHECK(root.defined());
  ET_CHECK(root.requires_grad())
      << "Backward() on a graph with no trainable inputs";

  // Iterative post-order topological sort over parent edges.
  std::vector<AutogradNode*> order;
  std::unordered_set<AutogradNode*> visited;
  struct Frame {
    AutogradNode* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({root.node().get(), 0});
  visited.insert(root.node().get());
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_parent < frame.node->parents.size()) {
      AutogradNode* parent =
          frame.node->parents[frame.next_parent++].get();
      if (parent->requires_grad && !visited.count(parent)) {
        visited.insert(parent);
        stack.push_back({parent, 0});
      }
    } else {
      order.push_back(frame.node);
      stack.pop_back();
    }
  }

  // Seed the root with d(root)/d(root) = 1.
  Tensor seed(root.value().shape());
  seed.Fill(1.0f);
  root.node()->AccumulateGrad(seed);

  // Reverse topological order: every node's grad is complete before its
  // backward_fn pushes into parents.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    AutogradNode* node = *it;
    if (!node->grad_ready || !node->backward_fn) continue;
    node->backward_fn(*node);
  }
}

}  // namespace equitensor
