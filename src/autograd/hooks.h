#ifndef EQUITENSOR_AUTOGRAD_HOOKS_H_
#define EQUITENSOR_AUTOGRAD_HOOKS_H_

#include <atomic>
#include <functional>
#include <string>

#include "autograd/variable.h"

namespace equitensor {
namespace ag {

/// Model-introspection hooks (DESIGN.md §11). Named observation points
/// are threaded through the NN layers (ConvStack, Linear, LstmCell)
/// and the models built from them; when at least one hook is
/// registered, every point reports its forward activation — and, once
/// Backward() reaches it, its gradient — to the registry. With no
/// hooks registered the whole layer is inert: an observation point
/// costs one relaxed atomic load and adds nothing to the graph, so the
/// kernels and their benchmarks are untouched.

/// Which side of an observation point fired.
enum class HookPhase { kForward, kBackward };

const char* HookPhaseName(HookPhase phase);

/// One observation event. The tensor reference is only valid for the
/// duration of the callback — copy it if you need to keep it.
struct HookContext {
  const std::string& point;  // e.g. "cdae.enc0.conv1"
  HookPhase phase;
  const Tensor& tensor;      // activation (forward) or gradient (backward)
};

using HookFn = std::function<void(const HookContext&)>;

/// Process-wide hook registry. Registration is mutex-protected (rare);
/// the active() fast path is a single relaxed atomic load, which is
/// all a disabled observation point ever executes.
class HookRegistry {
 public:
  static HookRegistry& Global();

  HookRegistry(const HookRegistry&) = delete;
  HookRegistry& operator=(const HookRegistry&) = delete;

  /// Registers `fn` for every observation event (both phases). Returns
  /// a handle for Remove(). The callback runs synchronously on the
  /// thread executing the observed op and must not re-enter the
  /// registry.
  int Add(HookFn fn);
  void Remove(int id);

  /// True when at least one hook is registered.
  bool active() const {
    return active_count_.load(std::memory_order_relaxed) > 0;
  }

  void Notify(const HookContext& context);

 private:
  HookRegistry() = default;
  std::atomic<int> active_count_{0};
  struct Impl;
  Impl& impl() const;
};

/// RAII hook registration.
class ScopedHook {
 public:
  explicit ScopedHook(HookFn fn) : id_(HookRegistry::Global().Add(std::move(fn))) {}
  ~ScopedHook() { HookRegistry::Global().Remove(id_); }

  ScopedHook(const ScopedHook&) = delete;
  ScopedHook& operator=(const ScopedHook&) = delete;

 private:
  int id_;
};

/// Cheap check used by call sites to skip building point names.
inline bool HooksActive() { return HookRegistry::Global().active(); }

/// Identity op that reports x under `name`: its forward value
/// immediately, its gradient when Backward() reaches it. When no hooks
/// are registered, returns x itself (same node, zero cost). When x
/// does not require grad only the forward event fires and no graph
/// node is created.
Variable Observe(const std::string& name, const Variable& x);

}  // namespace ag
}  // namespace equitensor

#endif  // EQUITENSOR_AUTOGRAD_HOOKS_H_
