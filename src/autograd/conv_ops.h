#ifndef EQUITENSOR_AUTOGRAD_CONV_OPS_H_
#define EQUITENSOR_AUTOGRAD_CONV_OPS_H_

#include <vector>

#include "autograd/variable.h"
#include "nn/backend_registry.h"

namespace equitensor {
namespace ag {

/// Convolutions with stride 1 and "same" zero padding (odd kernels),
/// matching the paper's layers (kernel size 3, stride 1, §3.2).
///
/// Layout conventions:
///   1D (time-only)      x: [N, C, T]        w: [Cout, Cin, K]
///   2D (space-only)     x: [N, C, W, H]     w: [Cout, Cin, K, K]
///   3D (space + time)   x: [N, C, W, H, T]  w: [Cout, Cin, K, K, K]
///
/// Bias is applied separately via ag::AddBias so layers can opt out.

/// Temporal convolution over [N, Cin, T] -> [N, Cout, T].
Variable Conv1d(const Variable& x, const Variable& w);

/// Spatial convolution over [N, Cin, W, H] -> [N, Cout, W, H].
Variable Conv2d(const Variable& x, const Variable& w);

/// Spatio-temporal convolution over [N, Cin, W, H, T] -> [N, Cout, W, H, T].
Variable Conv3d(const Variable& x, const Variable& w);

/// Fused conv → +bias → activation as ONE autograd node and ONE
/// backend dispatch (DESIGN.md §15). The spatial rank follows x.rank()
/// (3 → 1D, 4 → 2D, 5 → 3D); `b` is the length-Cout bias. Equal to the
/// eager Conv/AddBias/Activate chain — bitwise on a fixed backend —
/// while never materializing the pre-activation tensor.
Variable ConvBiasAct(const Variable& x, const Variable& w, const Variable& b,
                     backend::Act act);

/// The same fused op whose input is the axis-1 concat of `parts` (all
/// rank 5, matching batch and spatial extents). The concat is folded
/// into the conv's input gather, so neither the concatenated tensor
/// nor its gradient ever exists; per-part gradients scatter straight
/// from the conv backward.
Variable ConcatConvBiasAct(const std::vector<Variable>& parts,
                           const Variable& w, const Variable& b,
                           backend::Act act);

}  // namespace ag
}  // namespace equitensor

#endif  // EQUITENSOR_AUTOGRAD_CONV_OPS_H_
