#ifndef EQUITENSOR_AUTOGRAD_CONV_OPS_H_
#define EQUITENSOR_AUTOGRAD_CONV_OPS_H_

#include "autograd/variable.h"

namespace equitensor {
namespace ag {

/// Convolutions with stride 1 and "same" zero padding (odd kernels),
/// matching the paper's layers (kernel size 3, stride 1, §3.2).
///
/// Layout conventions:
///   1D (time-only)      x: [N, C, T]        w: [Cout, Cin, K]
///   2D (space-only)     x: [N, C, W, H]     w: [Cout, Cin, K, K]
///   3D (space + time)   x: [N, C, W, H, T]  w: [Cout, Cin, K, K, K]
///
/// Bias is applied separately via ag::AddBias so layers can opt out.

/// Temporal convolution over [N, Cin, T] -> [N, Cout, T].
Variable Conv1d(const Variable& x, const Variable& w);

/// Spatial convolution over [N, Cin, W, H] -> [N, Cout, W, H].
Variable Conv2d(const Variable& x, const Variable& w);

/// Spatio-temporal convolution over [N, Cin, W, H, T] -> [N, Cout, W, H, T].
Variable Conv3d(const Variable& x, const Variable& w);

}  // namespace ag
}  // namespace equitensor

#endif  // EQUITENSOR_AUTOGRAD_CONV_OPS_H_
