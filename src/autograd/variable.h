#ifndef EQUITENSOR_AUTOGRAD_VARIABLE_H_
#define EQUITENSOR_AUTOGRAD_VARIABLE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace equitensor {

/// One node of the dynamic computation graph. Owns the forward value
/// and (once backward runs) the accumulated gradient. Nodes are shared
/// between Variable handles; the graph is defined by `parents` edges
/// plus a `backward_fn` closure created by the op that produced the
/// node.
struct AutogradNode {
  Tensor value;
  Tensor grad;             // Valid only when grad_ready is true.
  bool grad_ready = false; // Whether `grad` has been allocated/accumulated.
  bool requires_grad = false;
  bool is_leaf = true;
  std::string op_name = "leaf";
  std::vector<std::shared_ptr<AutogradNode>> parents;
  /// Propagates this node's `grad` into the parents' grads.
  std::function<void(const AutogradNode&)> backward_fn;

  /// Adds `delta` into `grad`, allocating it on first use.
  void AccumulateGrad(const Tensor& delta);
};

/// Handle to a computation-graph node. Cheap to copy (shared_ptr).
/// Leaf Variables with requires_grad=true are trainable parameters;
/// ops combine Variables into new interior nodes that remember how to
/// backpropagate.
class Variable {
 public:
  /// Null handle; most APIs reject it (defined()).
  Variable() = default;

  /// Leaf node wrapping `value`.
  explicit Variable(Tensor value, bool requires_grad = false);

  /// Whether this handle points at a node.
  bool defined() const { return node_ != nullptr; }

  /// Forward value (must be defined).
  const Tensor& value() const;
  /// Mutable forward value — used by optimizers to update parameters
  /// in place between graph constructions.
  Tensor& mutable_value();

  /// Accumulated gradient; only valid after Backward() has reached this
  /// node. Check grad_ready() first.
  const Tensor& grad() const;
  bool grad_ready() const;

  /// Clears the accumulated gradient (before a new backward pass).
  void ZeroGrad();

  bool requires_grad() const;
  const std::string& op_name() const;

  /// Shape helpers forwarded to the value tensor.
  const std::vector<int64_t>& shape() const { return value().shape(); }
  int rank() const { return value().rank(); }
  int64_t size() const { return value().size(); }

  /// Scalar read for rank-0 results (losses).
  float scalar() const;

  std::shared_ptr<AutogradNode>& node() { return node_; }
  const std::shared_ptr<AutogradNode>& node() const { return node_; }

  /// Constructs an interior node produced by an op. `backward_fn`
  /// receives the finished node (with `grad` populated) and must
  /// AccumulateGrad into each parent that requires grad.
  static Variable MakeOp(std::string op_name, Tensor value,
                         std::vector<Variable> inputs,
                         std::function<void(const AutogradNode&)> backward_fn);

 private:
  std::shared_ptr<AutogradNode> node_;
};

/// Runs reverse-mode differentiation from `root` (typically a rank-0
/// loss), seeding d(root)/d(root) = 1 and accumulating gradients into
/// every reachable node with requires_grad. Interior activations also
/// receive grads (needed by op closures); leaves keep them for the
/// optimizer.
void Backward(const Variable& root);

}  // namespace equitensor

#endif  // EQUITENSOR_AUTOGRAD_VARIABLE_H_
