#include "autograd/grad_check.h"

#include <cmath>
#include <sstream>

#include "util/check.h"

namespace equitensor {

GradCheckResult CheckGradients(
    const std::function<Variable(std::vector<Variable>&)>& fn,
    std::vector<Tensor> inputs, const std::vector<bool>& requires_grad,
    double epsilon, double abs_tol, double rel_tol) {
  ET_CHECK_EQ(inputs.size(), requires_grad.size());

  // Analytic pass.
  std::vector<Variable> vars;
  vars.reserve(inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    vars.emplace_back(inputs[i], requires_grad[i]);
  }
  Variable loss = fn(vars);
  ET_CHECK_EQ(loss.size(), 1) << "grad check requires a scalar loss";
  Backward(loss);

  GradCheckResult result;
  result.ok = true;

  for (size_t i = 0; i < inputs.size(); ++i) {
    if (!requires_grad[i]) continue;
    ET_CHECK(vars[i].grad_ready())
        << "no gradient reached input " << i << " — op graph disconnected?";
    const Tensor& analytic = vars[i].grad();
    for (int64_t j = 0; j < inputs[i].size(); ++j) {
      const float saved = inputs[i][j];
      // f(x + eps).
      inputs[i][j] = saved + static_cast<float>(epsilon);
      std::vector<Variable> plus_vars;
      for (size_t k = 0; k < inputs.size(); ++k) {
        plus_vars.emplace_back(inputs[k], false);
      }
      const double f_plus = static_cast<double>(fn(plus_vars).scalar());
      // f(x - eps).
      inputs[i][j] = saved - static_cast<float>(epsilon);
      std::vector<Variable> minus_vars;
      for (size_t k = 0; k < inputs.size(); ++k) {
        minus_vars.emplace_back(inputs[k], false);
      }
      const double f_minus = static_cast<double>(fn(minus_vars).scalar());
      inputs[i][j] = saved;

      const double numeric = (f_plus - f_minus) / (2.0 * epsilon);
      const double got = static_cast<double>(analytic[j]);
      const double abs_err = std::fabs(got - numeric);
      const double rel_err =
          abs_err / std::max(1e-12, std::fabs(numeric));
      result.max_abs_error = std::max(result.max_abs_error, abs_err);
      if (std::fabs(numeric) > 1e-6) {
        result.max_rel_error = std::max(result.max_rel_error, rel_err);
      }
      if (abs_err > abs_tol + rel_tol * std::fabs(numeric)) {
        result.ok = false;
        if (result.detail.empty()) {
          std::ostringstream os;
          os << "input " << i << " element " << j << ": analytic=" << got
             << " numeric=" << numeric << " abs_err=" << abs_err;
          result.detail = os.str();
        }
      }
    }
  }
  return result;
}

}  // namespace equitensor
