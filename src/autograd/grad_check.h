#ifndef EQUITENSOR_AUTOGRAD_GRAD_CHECK_H_
#define EQUITENSOR_AUTOGRAD_GRAD_CHECK_H_

#include <functional>
#include <string>
#include <vector>

#include "autograd/variable.h"

namespace equitensor {

/// Result of a finite-difference gradient check.
struct GradCheckResult {
  bool ok = false;
  double max_abs_error = 0.0;
  double max_rel_error = 0.0;
  std::string detail;  // Human-readable description of the worst entry.
};

/// Verifies the analytic gradient of `fn` with central finite
/// differences. `fn` must build a fresh graph from the given leaf
/// inputs and return a rank-0 loss. Every input with requires_grad is
/// perturbed element by element. Tolerance is on
/// |analytic - numeric| <= abs_tol + rel_tol * |numeric|.
GradCheckResult CheckGradients(
    const std::function<Variable(std::vector<Variable>&)>& fn,
    std::vector<Tensor> inputs, const std::vector<bool>& requires_grad,
    double epsilon = 1e-3, double abs_tol = 2e-2, double rel_tol = 5e-2);

}  // namespace equitensor

#endif  // EQUITENSOR_AUTOGRAD_GRAD_CHECK_H_
