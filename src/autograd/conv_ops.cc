#include "autograd/conv_ops.h"

#include <utility>

#include "nn/backend_registry.h"
#include "util/check.h"

namespace equitensor {
namespace ag {
namespace {

// The conv kernels themselves live behind the runtime backend
// registry (nn/backend_registry.h): reference scalar loops, the
// ParallelFor owner-computes path, and the im2col + blocked-GEMM simd
// path, selected by --backend / ET_BACKEND. This layer validates
// shapes exactly once per op — the dims structs below are the
// pre-checked contract every backend kernel trusts — and wires the
// dispatch into the autograd graph.

backend::Conv1dDims Check1d(const Tensor& x, const Tensor& w) {
  ET_CHECK_EQ(x.rank(), 3) << "Conv1d input must be [N, C, T]";
  ET_CHECK_EQ(w.rank(), 3) << "Conv1d weight must be [Cout, Cin, K]";
  ET_CHECK_EQ(x.dim(1), w.dim(1)) << "Cin mismatch";
  ET_CHECK_EQ(w.dim(2) % 2, 1) << "same padding requires odd kernel";
  return {x.dim(0), x.dim(1), x.dim(2), w.dim(0), w.dim(2), w.dim(2) / 2};
}

backend::Conv2dDims Check2d(const Tensor& x, const Tensor& wt) {
  ET_CHECK_EQ(x.rank(), 4) << "Conv2d input must be [N, C, W, H]";
  ET_CHECK_EQ(wt.rank(), 4) << "Conv2d weight must be [Cout, Cin, K, K]";
  ET_CHECK_EQ(x.dim(1), wt.dim(1)) << "Cin mismatch";
  ET_CHECK_EQ(wt.dim(2), wt.dim(3)) << "square kernels only";
  ET_CHECK_EQ(wt.dim(2) % 2, 1) << "same padding requires odd kernel";
  return {x.dim(0), x.dim(1), x.dim(2), x.dim(3),
          wt.dim(0), wt.dim(2), wt.dim(2) / 2};
}

backend::Conv3dDims Check3d(const Tensor& x, const Tensor& wt) {
  ET_CHECK_EQ(x.rank(), 5) << "Conv3d input must be [N, C, W, H, T]";
  ET_CHECK_EQ(wt.rank(), 5) << "Conv3d weight must be [Cout, Cin, K, K, K]";
  ET_CHECK_EQ(x.dim(1), wt.dim(1)) << "Cin mismatch";
  ET_CHECK(wt.dim(2) == wt.dim(3) && wt.dim(3) == wt.dim(4))
      << "cubic kernels only";
  ET_CHECK_EQ(wt.dim(2) % 2, 1) << "same padding requires odd kernel";
  return {x.dim(0), x.dim(1), x.dim(2), x.dim(3), x.dim(4),
          wt.dim(0), wt.dim(2), wt.dim(2) / 2};
}

// Builds the Variable wrapper shared by the three convolutions. The
// callables receive pre-validated inputs; dims are computed once by
// the caller and captured.
template <typename ForwardFn, typename BackwardFn>
Variable MakeConv(const char* name, const Variable& x, const Variable& w,
                  std::vector<int64_t> out_shape, ForwardFn forward,
                  BackwardFn backward) {
  Tensor out(std::move(out_shape));
  forward(x.value(), w.value(), &out);
  auto x_node = x.node();
  auto w_node = w.node();
  return Variable::MakeOp(
      name, std::move(out), {x, w},
      [x_node, w_node, backward](const AutogradNode& n) {
        Tensor gx_storage, gw_storage;
        Tensor* gx = nullptr;
        Tensor* gw = nullptr;
        if (x_node->requires_grad) {
          gx_storage = Tensor(x_node->value.shape());
          gx = &gx_storage;
        }
        if (w_node->requires_grad) {
          gw_storage = Tensor(w_node->value.shape());
          gw = &gw_storage;
        }
        backward(x_node->value, w_node->value, n.grad, gx, gw);
        if (gx) x_node->AccumulateGrad(gx_storage);
        if (gw) w_node->AccumulateGrad(gw_storage);
      });
}

// Unified fused-dispatch geometry from the per-rank validators (rank 1:
// w = h = 1, t is time; rank 2: t = 1 — the same unification the simd
// lowering uses).
backend::ConvBiasActDims CheckCba(const Tensor& x, const Tensor& w,
                                  const Tensor& b, backend::Act act) {
  backend::ConvBiasActDims d{};
  switch (x.rank()) {
    case 3: {
      const backend::Conv1dDims c = Check1d(x, w);
      d = {1, c.batch, c.cin, c.cout, c.k, c.pad, 1, 1, c.t, act};
      break;
    }
    case 4: {
      const backend::Conv2dDims c = Check2d(x, w);
      d = {2, c.batch, c.cin, c.cout, c.k, c.pad, c.w, c.h, 1, act};
      break;
    }
    case 5: {
      const backend::Conv3dDims c = Check3d(x, w);
      d = {3, c.batch, c.cin, c.cout, c.k, c.pad, c.w, c.h, c.t, act};
      break;
    }
    default:
      ET_CHECK(false) << "ConvBiasAct input must be rank 3, 4, or 5, got "
                      << x.rank();
  }
  ET_CHECK_EQ(b.rank(), 1) << "bias must be a vector";
  ET_CHECK_EQ(b.dim(0), d.cout) << "bias length must match Cout";
  return d;
}

std::vector<int64_t> CbaOutShape(const backend::ConvBiasActDims& d) {
  switch (d.rank) {
    case 1:
      return {d.batch, d.cout, d.t};
    case 2:
      return {d.batch, d.cout, d.w, d.h};
    default:
      return {d.batch, d.cout, d.w, d.h, d.t};
  }
}

}  // namespace

Variable Conv1d(const Variable& x, const Variable& w) {
  const backend::Conv1dDims d = Check1d(x.value(), w.value());
  return MakeConv(
      "conv1d", x, w, {d.batch, d.cout, d.t},
      [d](const Tensor& xv, const Tensor& wv, Tensor* out) {
        backend::Conv1dForward(d, xv, wv, out);
      },
      [d](const Tensor& xv, const Tensor& wv, const Tensor& gout, Tensor* gx,
          Tensor* gw) { backend::Conv1dBackward(d, xv, wv, gout, gx, gw); });
}

Variable Conv2d(const Variable& x, const Variable& w) {
  const backend::Conv2dDims d = Check2d(x.value(), w.value());
  return MakeConv(
      "conv2d", x, w, {d.batch, d.cout, d.w, d.h},
      [d](const Tensor& xv, const Tensor& wv, Tensor* out) {
        backend::Conv2dForward(d, xv, wv, out);
      },
      [d](const Tensor& xv, const Tensor& wv, const Tensor& gout, Tensor* gx,
          Tensor* gw) { backend::Conv2dBackward(d, xv, wv, gout, gx, gw); });
}

Variable Conv3d(const Variable& x, const Variable& w) {
  const backend::Conv3dDims d = Check3d(x.value(), w.value());
  return MakeConv(
      "conv3d", x, w, {d.batch, d.cout, d.w, d.h, d.t},
      [d](const Tensor& xv, const Tensor& wv, Tensor* out) {
        backend::Conv3dForward(d, xv, wv, out);
      },
      [d](const Tensor& xv, const Tensor& wv, const Tensor& gout, Tensor* gx,
          Tensor* gw) { backend::Conv3dBackward(d, xv, wv, gout, gx, gw); });
}

Variable ConvBiasAct(const Variable& x, const Variable& w, const Variable& b,
                     backend::Act act) {
  const backend::ConvBiasActDims d =
      CheckCba(x.value(), w.value(), b.value(), act);
  Tensor out(CbaOutShape(d));
  backend::ConvBiasActForward(d, x.value(), w.value(), b.value(), &out);
  auto x_node = x.node();
  auto w_node = w.node();
  auto b_node = b.node();
  return Variable::MakeOp(
      "conv_bias_act", std::move(out), {x, w, b},
      [d, x_node, w_node, b_node](const AutogradNode& n) {
        Tensor gx_storage, gw_storage, gb_storage;
        Tensor* gx = nullptr;
        Tensor* gw = nullptr;
        Tensor* gb = nullptr;
        if (x_node->requires_grad) {
          gx_storage = Tensor(x_node->value.shape());
          gx = &gx_storage;
        }
        if (w_node->requires_grad) {
          gw_storage = Tensor(w_node->value.shape());
          gw = &gw_storage;
        }
        if (b_node->requires_grad) {
          gb_storage = Tensor(b_node->value.shape());
          gb = &gb_storage;
        }
        backend::ConvBiasActBackward(d, x_node->value, w_node->value, n.value,
                                     n.grad, gx, gw, gb);
        if (gx) x_node->AccumulateGrad(gx_storage);
        if (gw) w_node->AccumulateGrad(gw_storage);
        if (gb) b_node->AccumulateGrad(gb_storage);
      });
}

Variable ConcatConvBiasAct(const std::vector<Variable>& parts,
                           const Variable& w, const Variable& b,
                           backend::Act act) {
  ET_CHECK(!parts.empty()) << "ConcatConvBiasAct needs at least one part";
  const Tensor& first = parts[0].value();
  ET_CHECK_EQ(first.rank(), 5)
      << "ConcatConvBiasAct parts must be [N, C, W, H, T]";
  int64_t cin = 0;
  for (const Variable& part : parts) {
    const Tensor& pv = part.value();
    ET_CHECK_EQ(pv.rank(), 5);
    ET_CHECK_EQ(pv.dim(0), first.dim(0)) << "batch mismatch across parts";
    ET_CHECK_EQ(pv.dim(2), first.dim(2)) << "width mismatch across parts";
    ET_CHECK_EQ(pv.dim(3), first.dim(3)) << "height mismatch across parts";
    ET_CHECK_EQ(pv.dim(4), first.dim(4)) << "time mismatch across parts";
    cin += pv.dim(1);
  }
  const Tensor& wt = w.value();
  ET_CHECK_EQ(wt.rank(), 5);
  ET_CHECK_EQ(wt.dim(1), cin) << "weight Cin must equal summed part channels";
  ET_CHECK(wt.dim(2) == wt.dim(3) && wt.dim(3) == wt.dim(4))
      << "cubic kernels only";
  ET_CHECK_EQ(wt.dim(2) % 2, 1) << "same padding requires odd kernel";
  ET_CHECK_EQ(b.value().rank(), 1);
  ET_CHECK_EQ(b.value().dim(0), wt.dim(0));
  const backend::ConvBiasActDims d = {3,          first.dim(0), cin,
                                      wt.dim(0),  wt.dim(2),    wt.dim(2) / 2,
                                      first.dim(2), first.dim(3), first.dim(4),
                                      act};

  std::vector<std::shared_ptr<AutogradNode>> part_nodes;
  std::vector<const Tensor*> part_values;
  part_nodes.reserve(parts.size());
  part_values.reserve(parts.size());
  for (const Variable& part : parts) {
    part_nodes.push_back(part.node());
    part_values.push_back(&part.value());
  }
  Tensor out(CbaOutShape(d));
  backend::ConcatConvBiasActForward(d, part_values, w.value(), b.value(),
                                    &out);

  auto w_node = w.node();
  auto b_node = b.node();
  std::vector<Variable> inputs = parts;
  inputs.push_back(w);
  inputs.push_back(b);
  return Variable::MakeOp(
      "concat_conv_bias_act", std::move(out), std::move(inputs),
      [d, part_nodes, w_node, b_node](const AutogradNode& n) {
        std::vector<const Tensor*> values(part_nodes.size());
        std::vector<Tensor> gp_storage(part_nodes.size());
        std::vector<Tensor*> gparts(part_nodes.size(), nullptr);
        for (size_t i = 0; i < part_nodes.size(); ++i) {
          values[i] = &part_nodes[i]->value;
          if (part_nodes[i]->requires_grad) {
            gp_storage[i] = Tensor(part_nodes[i]->value.shape());
            gparts[i] = &gp_storage[i];
          }
        }
        Tensor gw_storage, gb_storage;
        Tensor* gw = nullptr;
        Tensor* gb = nullptr;
        if (w_node->requires_grad) {
          gw_storage = Tensor(w_node->value.shape());
          gw = &gw_storage;
        }
        if (b_node->requires_grad) {
          gb_storage = Tensor(b_node->value.shape());
          gb = &gb_storage;
        }
        backend::ConcatConvBiasActBackward(d, values, w_node->value, n.value,
                                           n.grad, gparts, gw, gb);
        for (size_t i = 0; i < part_nodes.size(); ++i) {
          if (gparts[i]) part_nodes[i]->AccumulateGrad(gp_storage[i]);
        }
        if (gw) w_node->AccumulateGrad(gw_storage);
        if (gb) b_node->AccumulateGrad(gb_storage);
      });
}

}  // namespace ag
}  // namespace equitensor
