#include "autograd/conv_ops.h"

#include <utility>

#include "nn/backend_registry.h"
#include "util/check.h"

namespace equitensor {
namespace ag {
namespace {

// The conv kernels themselves live behind the runtime backend
// registry (nn/backend_registry.h): reference scalar loops, the
// ParallelFor owner-computes path, and the im2col + blocked-GEMM simd
// path, selected by --backend / ET_BACKEND. This layer validates
// shapes exactly once per op — the dims structs below are the
// pre-checked contract every backend kernel trusts — and wires the
// dispatch into the autograd graph.

backend::Conv1dDims Check1d(const Tensor& x, const Tensor& w) {
  ET_CHECK_EQ(x.rank(), 3) << "Conv1d input must be [N, C, T]";
  ET_CHECK_EQ(w.rank(), 3) << "Conv1d weight must be [Cout, Cin, K]";
  ET_CHECK_EQ(x.dim(1), w.dim(1)) << "Cin mismatch";
  ET_CHECK_EQ(w.dim(2) % 2, 1) << "same padding requires odd kernel";
  return {x.dim(0), x.dim(1), x.dim(2), w.dim(0), w.dim(2), w.dim(2) / 2};
}

backend::Conv2dDims Check2d(const Tensor& x, const Tensor& wt) {
  ET_CHECK_EQ(x.rank(), 4) << "Conv2d input must be [N, C, W, H]";
  ET_CHECK_EQ(wt.rank(), 4) << "Conv2d weight must be [Cout, Cin, K, K]";
  ET_CHECK_EQ(x.dim(1), wt.dim(1)) << "Cin mismatch";
  ET_CHECK_EQ(wt.dim(2), wt.dim(3)) << "square kernels only";
  ET_CHECK_EQ(wt.dim(2) % 2, 1) << "same padding requires odd kernel";
  return {x.dim(0), x.dim(1), x.dim(2), x.dim(3),
          wt.dim(0), wt.dim(2), wt.dim(2) / 2};
}

backend::Conv3dDims Check3d(const Tensor& x, const Tensor& wt) {
  ET_CHECK_EQ(x.rank(), 5) << "Conv3d input must be [N, C, W, H, T]";
  ET_CHECK_EQ(wt.rank(), 5) << "Conv3d weight must be [Cout, Cin, K, K, K]";
  ET_CHECK_EQ(x.dim(1), wt.dim(1)) << "Cin mismatch";
  ET_CHECK(wt.dim(2) == wt.dim(3) && wt.dim(3) == wt.dim(4))
      << "cubic kernels only";
  ET_CHECK_EQ(wt.dim(2) % 2, 1) << "same padding requires odd kernel";
  return {x.dim(0), x.dim(1), x.dim(2), x.dim(3), x.dim(4),
          wt.dim(0), wt.dim(2), wt.dim(2) / 2};
}

// Builds the Variable wrapper shared by the three convolutions. The
// callables receive pre-validated inputs; dims are computed once by
// the caller and captured.
template <typename ForwardFn, typename BackwardFn>
Variable MakeConv(const char* name, const Variable& x, const Variable& w,
                  std::vector<int64_t> out_shape, ForwardFn forward,
                  BackwardFn backward) {
  Tensor out(std::move(out_shape));
  forward(x.value(), w.value(), &out);
  auto x_node = x.node();
  auto w_node = w.node();
  return Variable::MakeOp(
      name, std::move(out), {x, w},
      [x_node, w_node, backward](const AutogradNode& n) {
        Tensor gx_storage, gw_storage;
        Tensor* gx = nullptr;
        Tensor* gw = nullptr;
        if (x_node->requires_grad) {
          gx_storage = Tensor(x_node->value.shape());
          gx = &gx_storage;
        }
        if (w_node->requires_grad) {
          gw_storage = Tensor(w_node->value.shape());
          gw = &gw_storage;
        }
        backward(x_node->value, w_node->value, n.grad, gx, gw);
        if (gx) x_node->AccumulateGrad(gx_storage);
        if (gw) w_node->AccumulateGrad(gw_storage);
      });
}

}  // namespace

Variable Conv1d(const Variable& x, const Variable& w) {
  const backend::Conv1dDims d = Check1d(x.value(), w.value());
  return MakeConv(
      "conv1d", x, w, {d.batch, d.cout, d.t},
      [d](const Tensor& xv, const Tensor& wv, Tensor* out) {
        backend::Conv1dForward(d, xv, wv, out);
      },
      [d](const Tensor& xv, const Tensor& wv, const Tensor& gout, Tensor* gx,
          Tensor* gw) { backend::Conv1dBackward(d, xv, wv, gout, gx, gw); });
}

Variable Conv2d(const Variable& x, const Variable& w) {
  const backend::Conv2dDims d = Check2d(x.value(), w.value());
  return MakeConv(
      "conv2d", x, w, {d.batch, d.cout, d.w, d.h},
      [d](const Tensor& xv, const Tensor& wv, Tensor* out) {
        backend::Conv2dForward(d, xv, wv, out);
      },
      [d](const Tensor& xv, const Tensor& wv, const Tensor& gout, Tensor* gx,
          Tensor* gw) { backend::Conv2dBackward(d, xv, wv, gout, gx, gw); });
}

Variable Conv3d(const Variable& x, const Variable& w) {
  const backend::Conv3dDims d = Check3d(x.value(), w.value());
  return MakeConv(
      "conv3d", x, w, {d.batch, d.cout, d.w, d.h, d.t},
      [d](const Tensor& xv, const Tensor& wv, Tensor* out) {
        backend::Conv3dForward(d, xv, wv, out);
      },
      [d](const Tensor& xv, const Tensor& wv, const Tensor& gout, Tensor* gx,
          Tensor* gw) { backend::Conv3dBackward(d, xv, wv, gout, gx, gw); });
}

}  // namespace ag
}  // namespace equitensor
