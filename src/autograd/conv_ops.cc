#include "autograd/conv_ops.h"

#include <algorithm>

#include "util/check.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace equitensor {
namespace ag {
namespace {

// All three convolutions share the same skeleton: for each
// (n, co, ci, kernel offset) pair we stream over the overlapping
// region with contiguous inner loops over the last axis, which keeps
// the hot loops vectorizable.
//
// Parallel decomposition (see DESIGN.md §8): every pass partitions an
// index space in which each index *owns* a disjoint slab of the output
// — forward over (n, co) output planes, input gradients over (n, ci)
// planes, weight gradients over (co, ci) kernel rows. All reductions
// for an owned element run inside its chunk in the exact order of the
// serial reference, so results are bitwise-identical for any thread
// count. Dimensions are validated once in the public Conv* wrappers;
// the kernels below receive the pre-checked dims struct.

struct Conv1dDims {
  int64_t batch, cin, t, cout, k, pad;
};

Conv1dDims Check1d(const Tensor& x, const Tensor& w) {
  ET_CHECK_EQ(x.rank(), 3) << "Conv1d input must be [N, C, T]";
  ET_CHECK_EQ(w.rank(), 3) << "Conv1d weight must be [Cout, Cin, K]";
  ET_CHECK_EQ(x.dim(1), w.dim(1)) << "Cin mismatch";
  ET_CHECK_EQ(w.dim(2) % 2, 1) << "same padding requires odd kernel";
  return {x.dim(0), x.dim(1), x.dim(2), w.dim(0), w.dim(2), w.dim(2) / 2};
}

void Conv1dForward(const Conv1dDims& d, const Tensor& x, const Tensor& w,
                   Tensor* out) {
  ET_TRACE_SPAN("conv1d.fwd");
  ParallelFor(
      0, d.batch * d.cout, GrainForCost(d.cin * d.k * d.t),
      [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
          const int64_t n = i / d.cout;
          const int64_t co = i % d.cout;
          float* dst = out->data() + (n * d.cout + co) * d.t;
          for (int64_t ci = 0; ci < d.cin; ++ci) {
            const float* src = x.data() + (n * d.cin + ci) * d.t;
            const float* wrow = w.data() + (co * d.cin + ci) * d.k;
            for (int64_t kk = 0; kk < d.k; ++kk) {
              const float wv = wrow[kk];
              const int64_t dt = kk - d.pad;
              const int64_t t0 = std::max<int64_t>(0, -dt);
              const int64_t t1 = std::min<int64_t>(d.t, d.t - dt);
              for (int64_t t = t0; t < t1; ++t) dst[t] += wv * src[t + dt];
            }
          }
        }
      });
}

void Conv1dBackward(const Conv1dDims& d, const Tensor& x, const Tensor& w,
                    const Tensor& gout, Tensor* gx, Tensor* gw) {
  ET_TRACE_SPAN("conv1d.bwd");
  if (gx) {
    ParallelFor(
        0, d.batch * d.cin, GrainForCost(d.cout * d.k * d.t),
        [&](int64_t i0, int64_t i1) {
          for (int64_t i = i0; i < i1; ++i) {
            const int64_t n = i / d.cin;
            const int64_t ci = i % d.cin;
            float* gsrc = gx->data() + (n * d.cin + ci) * d.t;
            for (int64_t co = 0; co < d.cout; ++co) {
              const float* g = gout.data() + (n * d.cout + co) * d.t;
              const float* wrow = w.data() + (co * d.cin + ci) * d.k;
              for (int64_t kk = 0; kk < d.k; ++kk) {
                const float wv = wrow[kk];
                const int64_t dt = kk - d.pad;
                const int64_t t0 = std::max<int64_t>(0, -dt);
                const int64_t t1 = std::min<int64_t>(d.t, d.t - dt);
                for (int64_t t = t0; t < t1; ++t) gsrc[t + dt] += wv * g[t];
              }
            }
          }
        });
  }
  if (gw) {
    ParallelFor(
        0, d.cout * d.cin, GrainForCost(d.batch * d.k * d.t),
        [&](int64_t i0, int64_t i1) {
          for (int64_t i = i0; i < i1; ++i) {
            const int64_t co = i / d.cin;
            const int64_t ci = i % d.cin;
            float* gwrow = gw->data() + (co * d.cin + ci) * d.k;
            for (int64_t n = 0; n < d.batch; ++n) {
              const float* g = gout.data() + (n * d.cout + co) * d.t;
              const float* src = x.data() + (n * d.cin + ci) * d.t;
              for (int64_t kk = 0; kk < d.k; ++kk) {
                const int64_t dt = kk - d.pad;
                const int64_t t0 = std::max<int64_t>(0, -dt);
                const int64_t t1 = std::min<int64_t>(d.t, d.t - dt);
                double acc = 0.0;
                for (int64_t t = t0; t < t1; ++t) acc += g[t] * src[t + dt];
                gwrow[kk] += static_cast<float>(acc);
              }
            }
          }
        });
  }
}

struct Conv2dDims {
  int64_t batch, cin, w, h, cout, k, pad;
};

Conv2dDims Check2d(const Tensor& x, const Tensor& wt) {
  ET_CHECK_EQ(x.rank(), 4) << "Conv2d input must be [N, C, W, H]";
  ET_CHECK_EQ(wt.rank(), 4) << "Conv2d weight must be [Cout, Cin, K, K]";
  ET_CHECK_EQ(x.dim(1), wt.dim(1)) << "Cin mismatch";
  ET_CHECK_EQ(wt.dim(2), wt.dim(3)) << "square kernels only";
  ET_CHECK_EQ(wt.dim(2) % 2, 1) << "same padding requires odd kernel";
  return {x.dim(0), x.dim(1), x.dim(2), x.dim(3),
          wt.dim(0), wt.dim(2), wt.dim(2) / 2};
}

void Conv2dForward(const Conv2dDims& d, const Tensor& x, const Tensor& wt,
                   Tensor* out) {
  ET_TRACE_SPAN("conv2d.fwd");
  const int64_t plane = d.w * d.h;
  ParallelFor(
      0, d.batch * d.cout, GrainForCost(d.cin * d.k * d.k * plane),
      [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
          const int64_t n = i / d.cout;
          const int64_t co = i % d.cout;
          float* dst = out->data() + (n * d.cout + co) * plane;
          for (int64_t ci = 0; ci < d.cin; ++ci) {
            const float* src = x.data() + (n * d.cin + ci) * plane;
            const float* wmat = wt.data() + (co * d.cin + ci) * d.k * d.k;
            for (int64_t kx = 0; kx < d.k; ++kx) {
              const int64_t dxo = kx - d.pad;
              const int64_t x0 = std::max<int64_t>(0, -dxo);
              const int64_t x1 = std::min<int64_t>(d.w, d.w - dxo);
              for (int64_t ky = 0; ky < d.k; ++ky) {
                const float wv = wmat[kx * d.k + ky];
                const int64_t dyo = ky - d.pad;
                const int64_t y0 = std::max<int64_t>(0, -dyo);
                const int64_t y1 = std::min<int64_t>(d.h, d.h - dyo);
                for (int64_t xx = x0; xx < x1; ++xx) {
                  const float* srow = src + (xx + dxo) * d.h + dyo;
                  float* drow = dst + xx * d.h;
                  for (int64_t yy = y0; yy < y1; ++yy) {
                    drow[yy] += wv * srow[yy];
                  }
                }
              }
            }
          }
        }
      });
}

void Conv2dBackward(const Conv2dDims& d, const Tensor& x, const Tensor& wt,
                    const Tensor& gout, Tensor* gx, Tensor* gw) {
  ET_TRACE_SPAN("conv2d.bwd");
  const int64_t plane = d.w * d.h;
  if (gx) {
    ParallelFor(
        0, d.batch * d.cin, GrainForCost(d.cout * d.k * d.k * plane),
        [&](int64_t i0, int64_t i1) {
          for (int64_t i = i0; i < i1; ++i) {
            const int64_t n = i / d.cin;
            const int64_t ci = i % d.cin;
            float* gsrc = gx->data() + (n * d.cin + ci) * plane;
            for (int64_t co = 0; co < d.cout; ++co) {
              const float* g = gout.data() + (n * d.cout + co) * plane;
              const float* wmat = wt.data() + (co * d.cin + ci) * d.k * d.k;
              for (int64_t kx = 0; kx < d.k; ++kx) {
                const int64_t dxo = kx - d.pad;
                const int64_t x0 = std::max<int64_t>(0, -dxo);
                const int64_t x1 = std::min<int64_t>(d.w, d.w - dxo);
                for (int64_t ky = 0; ky < d.k; ++ky) {
                  const int64_t dyo = ky - d.pad;
                  const int64_t y0 = std::max<int64_t>(0, -dyo);
                  const int64_t y1 = std::min<int64_t>(d.h, d.h - dyo);
                  const float wv = wmat[kx * d.k + ky];
                  for (int64_t xx = x0; xx < x1; ++xx) {
                    const float* grow = g + xx * d.h;
                    float* gsrow = gsrc + (xx + dxo) * d.h + dyo;
                    for (int64_t yy = y0; yy < y1; ++yy) {
                      gsrow[yy] += wv * grow[yy];
                    }
                  }
                }
              }
            }
          }
        });
  }
  if (gw) {
    ParallelFor(
        0, d.cout * d.cin, GrainForCost(d.batch * d.k * d.k * plane),
        [&](int64_t i0, int64_t i1) {
          for (int64_t i = i0; i < i1; ++i) {
            const int64_t co = i / d.cin;
            const int64_t ci = i % d.cin;
            float* gwmat = gw->data() + (co * d.cin + ci) * d.k * d.k;
            for (int64_t n = 0; n < d.batch; ++n) {
              const float* g = gout.data() + (n * d.cout + co) * plane;
              const float* src = x.data() + (n * d.cin + ci) * plane;
              for (int64_t kx = 0; kx < d.k; ++kx) {
                const int64_t dxo = kx - d.pad;
                const int64_t x0 = std::max<int64_t>(0, -dxo);
                const int64_t x1 = std::min<int64_t>(d.w, d.w - dxo);
                for (int64_t ky = 0; ky < d.k; ++ky) {
                  const int64_t dyo = ky - d.pad;
                  const int64_t y0 = std::max<int64_t>(0, -dyo);
                  const int64_t y1 = std::min<int64_t>(d.h, d.h - dyo);
                  double acc = 0.0;
                  for (int64_t xx = x0; xx < x1; ++xx) {
                    const float* grow = g + xx * d.h;
                    const float* srow = src + (xx + dxo) * d.h + dyo;
                    for (int64_t yy = y0; yy < y1; ++yy) {
                      acc += grow[yy] * srow[yy];
                    }
                  }
                  gwmat[kx * d.k + ky] += static_cast<float>(acc);
                }
              }
            }
          }
        });
  }
}

struct Conv3dDims {
  int64_t batch, cin, w, h, t, cout, k, pad;
};

Conv3dDims Check3d(const Tensor& x, const Tensor& wt) {
  ET_CHECK_EQ(x.rank(), 5) << "Conv3d input must be [N, C, W, H, T]";
  ET_CHECK_EQ(wt.rank(), 5) << "Conv3d weight must be [Cout, Cin, K, K, K]";
  ET_CHECK_EQ(x.dim(1), wt.dim(1)) << "Cin mismatch";
  ET_CHECK(wt.dim(2) == wt.dim(3) && wt.dim(3) == wt.dim(4))
      << "cubic kernels only";
  ET_CHECK_EQ(wt.dim(2) % 2, 1) << "same padding requires odd kernel";
  return {x.dim(0), x.dim(1), x.dim(2), x.dim(3), x.dim(4),
          wt.dim(0), wt.dim(2), wt.dim(2) / 2};
}

void Conv3dForward(const Conv3dDims& d, const Tensor& x, const Tensor& wt,
                   Tensor* out) {
  ET_TRACE_SPAN("conv3d.fwd");
  const int64_t vol = d.w * d.h * d.t;
  const int64_t k3 = d.k * d.k * d.k;
  ParallelFor(
      0, d.batch * d.cout, GrainForCost(d.cin * k3 * vol),
      [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
          const int64_t n = i / d.cout;
          const int64_t co = i % d.cout;
          float* dst = out->data() + (n * d.cout + co) * vol;
          for (int64_t ci = 0; ci < d.cin; ++ci) {
            const float* src = x.data() + (n * d.cin + ci) * vol;
            const float* wcube = wt.data() + (co * d.cin + ci) * k3;
            for (int64_t kx = 0; kx < d.k; ++kx) {
              const int64_t dxo = kx - d.pad;
              const int64_t x0 = std::max<int64_t>(0, -dxo);
              const int64_t x1 = std::min<int64_t>(d.w, d.w - dxo);
              for (int64_t ky = 0; ky < d.k; ++ky) {
                const int64_t dyo = ky - d.pad;
                const int64_t y0 = std::max<int64_t>(0, -dyo);
                const int64_t y1 = std::min<int64_t>(d.h, d.h - dyo);
                for (int64_t kt = 0; kt < d.k; ++kt) {
                  const float wv = wcube[(kx * d.k + ky) * d.k + kt];
                  const int64_t dto = kt - d.pad;
                  const int64_t t0 = std::max<int64_t>(0, -dto);
                  const int64_t t1 = std::min<int64_t>(d.t, d.t - dto);
                  for (int64_t xx = x0; xx < x1; ++xx) {
                    for (int64_t yy = y0; yy < y1; ++yy) {
                      const float* srow =
                          src + ((xx + dxo) * d.h + (yy + dyo)) * d.t + dto;
                      float* drow = dst + (xx * d.h + yy) * d.t;
                      for (int64_t tt = t0; tt < t1; ++tt) {
                        drow[tt] += wv * srow[tt];
                      }
                    }
                  }
                }
              }
            }
          }
        }
      });
}

void Conv3dBackward(const Conv3dDims& d, const Tensor& x, const Tensor& wt,
                    const Tensor& gout, Tensor* gx, Tensor* gw) {
  ET_TRACE_SPAN("conv3d.bwd");
  const int64_t vol = d.w * d.h * d.t;
  const int64_t k3 = d.k * d.k * d.k;
  if (gx) {
    ParallelFor(
        0, d.batch * d.cin, GrainForCost(d.cout * k3 * vol),
        [&](int64_t i0, int64_t i1) {
          for (int64_t i = i0; i < i1; ++i) {
            const int64_t n = i / d.cin;
            const int64_t ci = i % d.cin;
            float* gsrc = gx->data() + (n * d.cin + ci) * vol;
            for (int64_t co = 0; co < d.cout; ++co) {
              const float* g = gout.data() + (n * d.cout + co) * vol;
              const float* wcube = wt.data() + (co * d.cin + ci) * k3;
              for (int64_t kx = 0; kx < d.k; ++kx) {
                const int64_t dxo = kx - d.pad;
                const int64_t x0 = std::max<int64_t>(0, -dxo);
                const int64_t x1 = std::min<int64_t>(d.w, d.w - dxo);
                for (int64_t ky = 0; ky < d.k; ++ky) {
                  const int64_t dyo = ky - d.pad;
                  const int64_t y0 = std::max<int64_t>(0, -dyo);
                  const int64_t y1 = std::min<int64_t>(d.h, d.h - dyo);
                  for (int64_t kt = 0; kt < d.k; ++kt) {
                    const int64_t dto = kt - d.pad;
                    const int64_t t0 = std::max<int64_t>(0, -dto);
                    const int64_t t1 = std::min<int64_t>(d.t, d.t - dto);
                    const float wv = wcube[(kx * d.k + ky) * d.k + kt];
                    for (int64_t xx = x0; xx < x1; ++xx) {
                      for (int64_t yy = y0; yy < y1; ++yy) {
                        float* gsrow =
                            gsrc + ((xx + dxo) * d.h + (yy + dyo)) * d.t + dto;
                        const float* grow = g + (xx * d.h + yy) * d.t;
                        for (int64_t tt = t0; tt < t1; ++tt) {
                          gsrow[tt] += wv * grow[tt];
                        }
                      }
                    }
                  }
                }
              }
            }
          }
        });
  }
  if (gw) {
    ParallelFor(
        0, d.cout * d.cin, GrainForCost(d.batch * k3 * vol),
        [&](int64_t i0, int64_t i1) {
          for (int64_t i = i0; i < i1; ++i) {
            const int64_t co = i / d.cin;
            const int64_t ci = i % d.cin;
            float* gwcube = gw->data() + (co * d.cin + ci) * k3;
            for (int64_t n = 0; n < d.batch; ++n) {
              const float* g = gout.data() + (n * d.cout + co) * vol;
              const float* src = x.data() + (n * d.cin + ci) * vol;
              for (int64_t kx = 0; kx < d.k; ++kx) {
                const int64_t dxo = kx - d.pad;
                const int64_t x0 = std::max<int64_t>(0, -dxo);
                const int64_t x1 = std::min<int64_t>(d.w, d.w - dxo);
                for (int64_t ky = 0; ky < d.k; ++ky) {
                  const int64_t dyo = ky - d.pad;
                  const int64_t y0 = std::max<int64_t>(0, -dyo);
                  const int64_t y1 = std::min<int64_t>(d.h, d.h - dyo);
                  for (int64_t kt = 0; kt < d.k; ++kt) {
                    const int64_t dto = kt - d.pad;
                    const int64_t t0 = std::max<int64_t>(0, -dto);
                    const int64_t t1 = std::min<int64_t>(d.t, d.t - dto);
                    double acc = 0.0;
                    for (int64_t xx = x0; xx < x1; ++xx) {
                      for (int64_t yy = y0; yy < y1; ++yy) {
                        const float* srow =
                            src + ((xx + dxo) * d.h + (yy + dyo)) * d.t + dto;
                        const float* grow = g + (xx * d.h + yy) * d.t;
                        for (int64_t tt = t0; tt < t1; ++tt) {
                          acc += grow[tt] * srow[tt];
                        }
                      }
                    }
                    gwcube[(kx * d.k + ky) * d.k + kt] +=
                        static_cast<float>(acc);
                  }
                }
              }
            }
          }
        });
  }
}

// Builds the Variable wrapper shared by the three convolutions. The
// callables receive pre-validated inputs; dims are computed once by
// the caller and captured.
template <typename ForwardFn, typename BackwardFn>
Variable MakeConv(const char* name, const Variable& x, const Variable& w,
                  std::vector<int64_t> out_shape, ForwardFn forward,
                  BackwardFn backward) {
  Tensor out(std::move(out_shape));
  forward(x.value(), w.value(), &out);
  auto x_node = x.node();
  auto w_node = w.node();
  return Variable::MakeOp(
      name, std::move(out), {x, w},
      [x_node, w_node, backward](const AutogradNode& n) {
        Tensor gx_storage, gw_storage;
        Tensor* gx = nullptr;
        Tensor* gw = nullptr;
        if (x_node->requires_grad) {
          gx_storage = Tensor(x_node->value.shape());
          gx = &gx_storage;
        }
        if (w_node->requires_grad) {
          gw_storage = Tensor(w_node->value.shape());
          gw = &gw_storage;
        }
        backward(x_node->value, w_node->value, n.grad, gx, gw);
        if (gx) x_node->AccumulateGrad(gx_storage);
        if (gw) w_node->AccumulateGrad(gw_storage);
      });
}

}  // namespace

Variable Conv1d(const Variable& x, const Variable& w) {
  const Conv1dDims d = Check1d(x.value(), w.value());
  return MakeConv(
      "conv1d", x, w, {d.batch, d.cout, d.t},
      [d](const Tensor& xv, const Tensor& wv, Tensor* out) {
        Conv1dForward(d, xv, wv, out);
      },
      [d](const Tensor& xv, const Tensor& wv, const Tensor& gout, Tensor* gx,
          Tensor* gw) { Conv1dBackward(d, xv, wv, gout, gx, gw); });
}

Variable Conv2d(const Variable& x, const Variable& w) {
  const Conv2dDims d = Check2d(x.value(), w.value());
  return MakeConv(
      "conv2d", x, w, {d.batch, d.cout, d.w, d.h},
      [d](const Tensor& xv, const Tensor& wv, Tensor* out) {
        Conv2dForward(d, xv, wv, out);
      },
      [d](const Tensor& xv, const Tensor& wv, const Tensor& gout, Tensor* gx,
          Tensor* gw) { Conv2dBackward(d, xv, wv, gout, gx, gw); });
}

Variable Conv3d(const Variable& x, const Variable& w) {
  const Conv3dDims d = Check3d(x.value(), w.value());
  return MakeConv(
      "conv3d", x, w, {d.batch, d.cout, d.w, d.h, d.t},
      [d](const Tensor& xv, const Tensor& wv, Tensor* out) {
        Conv3dForward(d, xv, wv, out);
      },
      [d](const Tensor& xv, const Tensor& wv, const Tensor& gout, Tensor* gx,
          Tensor* gw) { Conv3dBackward(d, xv, wv, gout, gx, gw); });
}

}  // namespace ag
}  // namespace equitensor
