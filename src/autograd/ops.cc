#include "autograd/ops.h"

#include <cmath>

#include "nn/backend_registry.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace equitensor {
namespace ag {
namespace {

// Elementwise forward/backward loops run chunked on the global pool;
// every element is owned by one chunk so results match the serial
// loops exactly (DESIGN.md §8). Scalar reductions (MeanAll, SumAll,
// MAE losses) keep their serial double accumulators so loss values
// stay bitwise-stable regardless of thread count.

// Shared plumbing for elementwise binary ops with same-shape inputs.
Variable Binary(const char* name, const Variable& a, const Variable& b,
                float (*fwd)(float, float),
                void (*bwd)(float a, float b, float g, float* da, float* db)) {
  ET_CHECK(a.value().SameShape(b.value()))
      << name << ": " << a.value().ShapeString() << " vs "
      << b.value().ShapeString();
  Tensor out(a.shape());
  ParallelFor(0, out.size(), GrainForCost(1), [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      out[i] = fwd(a.value()[i], b.value()[i]);
    }
  });
  auto a_node = a.node();
  auto b_node = b.node();
  return Variable::MakeOp(
      name, std::move(out), {a, b}, [a_node, b_node, bwd](const AutogradNode& n) {
        Tensor da(a_node->value.shape());
        Tensor db(b_node->value.shape());
        ParallelFor(0, n.grad.size(), GrainForCost(1),
                    [&](int64_t i0, int64_t i1) {
                      for (int64_t i = i0; i < i1; ++i) {
                        float ga = 0.0f, gb = 0.0f;
                        bwd(a_node->value[i], b_node->value[i], n.grad[i], &ga,
                            &gb);
                        da[i] = ga;
                        db[i] = gb;
                      }
                    });
        if (a_node->requires_grad) a_node->AccumulateGrad(da);
        if (b_node->requires_grad) b_node->AccumulateGrad(db);
      });
}

// Unary op where the local derivative depends only on the output value.
Variable UnaryFromOutput(const char* name, const Variable& a,
                         float (*fwd)(float), float (*dout)(float out)) {
  Tensor out(a.shape());
  ParallelFor(0, out.size(), GrainForCost(4), [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) out[i] = fwd(a.value()[i]);
  });
  auto a_node = a.node();
  return Variable::MakeOp(
      name, std::move(out), {a}, [a_node, dout](const AutogradNode& n) {
        if (!a_node->requires_grad) return;
        Tensor da(a_node->value.shape());
        ParallelFor(0, n.grad.size(), GrainForCost(1),
                    [&](int64_t i0, int64_t i1) {
                      for (int64_t i = i0; i < i1; ++i) {
                        da[i] = n.grad[i] * dout(n.value[i]);
                      }
                    });
        a_node->AccumulateGrad(da);
      });
}

}  // namespace

Variable Add(const Variable& a, const Variable& b) {
  return Binary(
      "add", a, b, [](float x, float y) { return x + y; },
      [](float, float, float g, float* da, float* db) {
        *da = g;
        *db = g;
      });
}

Variable Sub(const Variable& a, const Variable& b) {
  return Binary(
      "sub", a, b, [](float x, float y) { return x - y; },
      [](float, float, float g, float* da, float* db) {
        *da = g;
        *db = -g;
      });
}

Variable Mul(const Variable& a, const Variable& b) {
  return Binary(
      "mul", a, b, [](float x, float y) { return x * y; },
      [](float x, float y, float g, float* da, float* db) {
        *da = g * y;
        *db = g * x;
      });
}

Variable AddScalar(const Variable& a, float s) {
  Tensor out = equitensor::AddScalar(a.value(), s);
  auto a_node = a.node();
  return Variable::MakeOp("add_scalar", std::move(out), {a},
                          [a_node](const AutogradNode& n) {
                            if (a_node->requires_grad) {
                              a_node->AccumulateGrad(n.grad);
                            }
                          });
}

Variable MulScalar(const Variable& a, float s) {
  Tensor out = equitensor::MulScalar(a.value(), s);
  auto a_node = a.node();
  return Variable::MakeOp("mul_scalar", std::move(out), {a},
                          [a_node, s](const AutogradNode& n) {
                            if (!a_node->requires_grad) return;
                            a_node->AccumulateGrad(
                                equitensor::MulScalar(n.grad, s));
                          });
}

Variable Neg(const Variable& a) { return MulScalar(a, -1.0f); }

Variable Relu(const Variable& a) {
  return UnaryFromOutput(
      "relu", a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float out) { return out > 0.0f ? 1.0f : 0.0f; });
}

Variable Sigmoid(const Variable& a) {
  return UnaryFromOutput(
      "sigmoid", a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float out) { return out * (1.0f - out); });
}

Variable Tanh(const Variable& a) {
  return UnaryFromOutput(
      "tanh", a, [](float x) { return std::tanh(x); },
      [](float out) { return 1.0f - out * out; });
}

Variable Exp(const Variable& a) {
  return UnaryFromOutput(
      "exp", a, [](float x) { return std::exp(x); },
      [](float out) { return out; });
}

Variable MatMul(const Variable& a, const Variable& b) {
  const Tensor& av = a.value();
  const Tensor& bv = b.value();
  ET_CHECK_EQ(av.rank(), 2) << "MatMul lhs must be rank 2";
  ET_CHECK_EQ(bv.rank(), 2) << "MatMul rhs must be rank 2";
  ET_CHECK_EQ(av.dim(1), bv.dim(0))
      << "MatMul shape mismatch: " << av.ShapeString() << " x "
      << bv.ShapeString();
  const int64_t m = av.dim(0);
  const int64_t k = av.dim(1);
  const int64_t n = bv.dim(1);
  Tensor out({m, n});
  backend::MatMul({m, k, n}, av.data(), bv.data(), out.data());
  auto a_node = a.node();
  auto b_node = b.node();
  return Variable::MakeOp(
      "matmul", std::move(out), {a, b},
      [a_node, b_node, m, k, n](const AutogradNode& n_) {
        // dA = G · Bᵀ ; dB = Aᵀ · G. The trans flags make the backend
        // pack the transposed operand from the stored layout — no
        // materialized Transpose2d temporaries.
        if (a_node->requires_grad) {
          Tensor da({m, k});
          backend::MatMul({m, n, k, /*trans_a=*/false, /*trans_b=*/true},
                          n_.grad.data(), b_node->value.data(), da.data());
          a_node->AccumulateGrad(da);
        }
        if (b_node->requires_grad) {
          Tensor db({k, n});
          backend::MatMul({k, m, n, /*trans_a=*/true, /*trans_b=*/false},
                          a_node->value.data(), n_.grad.data(), db.data());
          b_node->AccumulateGrad(db);
        }
      });
}

Variable AddBias(const Variable& x, const Variable& bias, int channel_axis) {
  const Tensor& xv = x.value();
  const int rank = xv.rank();
  if (channel_axis < 0) channel_axis += rank;
  ET_CHECK(channel_axis >= 0 && channel_axis < rank);
  ET_CHECK_EQ(bias.rank(), 1);
  const int64_t channels = xv.dim(channel_axis);
  ET_CHECK_EQ(bias.value().dim(0), channels);

  int64_t outer = 1, inner = 1;
  for (int d = 0; d < channel_axis; ++d) outer *= xv.dim(d);
  for (int d = channel_axis + 1; d < rank; ++d) inner *= xv.dim(d);

  Tensor out(xv.shape());
  ParallelFor(0, outer * channels, GrainForCost(inner),
              [&](int64_t b0, int64_t b1) {
                for (int64_t b = b0; b < b1; ++b) {
                  const float bv = bias.value()[b % channels];
                  const float* src = xv.data() + b * inner;
                  float* dst = out.data() + b * inner;
                  for (int64_t i = 0; i < inner; ++i) dst[i] = src[i] + bv;
                }
              });
  auto x_node = x.node();
  auto b_node = bias.node();
  return Variable::MakeOp(
      "add_bias", std::move(out), {x, bias},
      [x_node, b_node, outer, channels, inner](const AutogradNode& n) {
        if (x_node->requires_grad) x_node->AccumulateGrad(n.grad);
        if (b_node->requires_grad) {
          Tensor db({channels});
          // Each channel's sum is owned by one chunk and accumulated
          // over `o` in serial order.
          ParallelFor(0, channels, GrainForCost(outer * inner),
                      [&](int64_t c0, int64_t c1) {
                        for (int64_t c = c0; c < c1; ++c) {
                          for (int64_t o = 0; o < outer; ++o) {
                            const float* g =
                                n.grad.data() + (o * channels + c) * inner;
                            double sum = 0.0;
                            for (int64_t i = 0; i < inner; ++i) sum += g[i];
                            db[c] += static_cast<float>(sum);
                          }
                        }
                      });
          b_node->AccumulateGrad(db);
        }
      });
}

Variable Concat(const std::vector<Variable>& parts, int axis) {
  ET_CHECK(!parts.empty());
  std::vector<Tensor> values;
  values.reserve(parts.size());
  for (const Variable& p : parts) values.push_back(p.value());
  Tensor out = equitensor::Concat(values, axis);

  const int rank = parts[0].rank();
  if (axis < 0) axis += rank;
  int64_t outer = 1, inner = 1;
  for (int d = 0; d < axis; ++d) outer *= out.dim(d);
  for (int d = axis + 1; d < rank; ++d) inner *= out.dim(d);
  const int64_t concat_dim = out.dim(axis);

  std::vector<std::shared_ptr<AutogradNode>> nodes;
  std::vector<int64_t> axis_dims;
  nodes.reserve(parts.size());
  for (const Variable& p : parts) {
    nodes.push_back(p.node());
    axis_dims.push_back(p.value().dim(axis));
  }
  return Variable::MakeOp(
      "concat", std::move(out), parts,
      [nodes, axis_dims, outer, inner, concat_dim](const AutogradNode& n) {
        int64_t axis_offset = 0;
        for (size_t p = 0; p < nodes.size(); ++p) {
          const int64_t p_axis = axis_dims[p];
          if (nodes[p]->requires_grad) {
            Tensor dp(nodes[p]->value.shape());
            for (int64_t o = 0; o < outer; ++o) {
              const float* src =
                  n.grad.data() + (o * concat_dim + axis_offset) * inner;
              float* dst = dp.data() + o * p_axis * inner;
              std::copy(src, src + p_axis * inner, dst);
            }
            nodes[p]->AccumulateGrad(dp);
          }
          axis_offset += p_axis;
        }
      });
}

Variable Slice(const Variable& x, const std::vector<int64_t>& offsets,
               const std::vector<int64_t>& sizes) {
  Tensor out = equitensor::Slice(x.value(), offsets, sizes);
  auto x_node = x.node();
  return Variable::MakeOp(
      "slice", std::move(out), {x},
      [x_node, offsets, sizes](const AutogradNode& n) {
        if (!x_node->requires_grad) return;
        Tensor dx(x_node->value.shape());
        const int rank = dx.rank();
        std::vector<int64_t> index(static_cast<size_t>(rank), 0);
        for (int64_t i = 0; i < n.grad.size(); ++i) {
          int64_t rem = i;
          for (int d = rank - 1; d >= 0; --d) {
            index[static_cast<size_t>(d)] =
                offsets[static_cast<size_t>(d)] +
                rem % sizes[static_cast<size_t>(d)];
            rem /= sizes[static_cast<size_t>(d)];
          }
          dx[dx.Offset(index)] += n.grad[i];
        }
        x_node->AccumulateGrad(dx);
      });
}

Variable TileAt(const Variable& x, int axis, int64_t repeat) {
  Tensor out = equitensor::TileAt(x.value(), axis, repeat);
  const int rank = x.rank();
  if (axis < 0) axis += rank + 1;
  int64_t outer = 1, inner = 1;
  for (int d = 0; d < axis; ++d) outer *= x.value().dim(d);
  for (int d = axis; d < rank; ++d) inner *= x.value().dim(d);

  auto x_node = x.node();
  return Variable::MakeOp(
      "tile_at", std::move(out), {x},
      [x_node, outer, inner, repeat](const AutogradNode& n) {
        if (!x_node->requires_grad) return;
        Tensor dx(x_node->value.shape());
        ParallelFor(0, outer, GrainForCost(repeat * inner),
                    [&](int64_t o0, int64_t o1) {
                      for (int64_t o = o0; o < o1; ++o) {
                        float* dst = dx.data() + o * inner;
                        for (int64_t r = 0; r < repeat; ++r) {
                          const float* src =
                              n.grad.data() + (o * repeat + r) * inner;
                          for (int64_t i = 0; i < inner; ++i) dst[i] += src[i];
                        }
                      }
                    });
        x_node->AccumulateGrad(dx);
      });
}

Variable Reshape(const Variable& x, std::vector<int64_t> new_shape) {
  Tensor out = x.value().Reshape(std::move(new_shape));
  auto x_node = x.node();
  return Variable::MakeOp("reshape", std::move(out), {x},
                          [x_node](const AutogradNode& n) {
                            if (!x_node->requires_grad) return;
                            x_node->AccumulateGrad(
                                n.grad.Reshape(x_node->value.shape()));
                          });
}

Variable MeanAxis(const Variable& x, int axis) {
  const int rank = x.rank();
  if (axis < 0) axis += rank;
  ET_CHECK(axis >= 0 && axis < rank);
  ET_CHECK_GT(rank, 1) << "MeanAxis on rank-1: use MeanAll";
  Tensor out = equitensor::MeanAxis(x.value(), axis);
  int64_t outer = 1, inner = 1;
  const int64_t axis_dim = x.value().dim(axis);
  for (int d = 0; d < axis; ++d) outer *= x.value().dim(d);
  for (int d = axis + 1; d < rank; ++d) inner *= x.value().dim(d);

  auto x_node = x.node();
  return Variable::MakeOp(
      "mean_axis", std::move(out), {x},
      [x_node, outer, inner, axis_dim](const AutogradNode& n) {
        if (!x_node->requires_grad) return;
        Tensor dx(x_node->value.shape());
        const float scale = 1.0f / static_cast<float>(axis_dim);
        ParallelFor(0, outer, GrainForCost(axis_dim * inner),
                    [&](int64_t o0, int64_t o1) {
                      for (int64_t o = o0; o < o1; ++o) {
                        const float* g = n.grad.data() + o * inner;
                        for (int64_t a = 0; a < axis_dim; ++a) {
                          float* dst = dx.data() + (o * axis_dim + a) * inner;
                          for (int64_t i = 0; i < inner; ++i) {
                            dst[i] = g[i] * scale;
                          }
                        }
                      }
                    });
        x_node->AccumulateGrad(dx);
      });
}

Variable MeanAll(const Variable& x) {
  Tensor out = Tensor::Scalar(static_cast<float>(x.value().Mean()));
  auto x_node = x.node();
  const int64_t n_elems = x.size();
  return Variable::MakeOp("mean_all", std::move(out), {x},
                          [x_node, n_elems](const AutogradNode& n) {
                            if (!x_node->requires_grad) return;
                            Tensor dx(x_node->value.shape());
                            const float g =
                                n.grad[0] / static_cast<float>(n_elems);
                            dx.Fill(g);
                            x_node->AccumulateGrad(dx);
                          });
}

Variable SumAll(const Variable& x) {
  Tensor out = Tensor::Scalar(static_cast<float>(x.value().Sum()));
  auto x_node = x.node();
  return Variable::MakeOp("sum_all", std::move(out), {x},
                          [x_node](const AutogradNode& n) {
                            if (!x_node->requires_grad) return;
                            Tensor dx(x_node->value.shape());
                            dx.Fill(n.grad[0]);
                            x_node->AccumulateGrad(dx);
                          });
}

Variable MaeAgainst(const Variable& x, const Tensor& target) {
  ET_CHECK(x.value().SameShape(target));
  double sum = 0.0;
  for (int64_t i = 0; i < target.size(); ++i) {
    sum += std::fabs(x.value()[i] - target[i]);
  }
  Tensor out =
      Tensor::Scalar(static_cast<float>(sum / static_cast<double>(target.size())));
  auto x_node = x.node();
  // Capture target by value: the caller may mutate/destroy it.
  return Variable::MakeOp(
      "mae_against", std::move(out), {x}, [x_node, target](const AutogradNode& n) {
        if (!x_node->requires_grad) return;
        Tensor dx(x_node->value.shape());
        const float g = n.grad[0] / static_cast<float>(target.size());
        for (int64_t i = 0; i < dx.size(); ++i) {
          const float d = x_node->value[i] - target[i];
          dx[i] = d > 0.0f ? g : (d < 0.0f ? -g : 0.0f);
        }
        x_node->AccumulateGrad(dx);
      });
}

Variable Mae(const Variable& x, const Variable& y) {
  ET_CHECK(x.value().SameShape(y.value()));
  double sum = 0.0;
  for (int64_t i = 0; i < x.size(); ++i) {
    sum += std::fabs(x.value()[i] - y.value()[i]);
  }
  Tensor out =
      Tensor::Scalar(static_cast<float>(sum / static_cast<double>(x.size())));
  auto x_node = x.node();
  auto y_node = y.node();
  return Variable::MakeOp(
      "mae", std::move(out), {x, y}, [x_node, y_node](const AutogradNode& n) {
        const float g = n.grad[0] / static_cast<float>(x_node->value.size());
        Tensor dx(x_node->value.shape());
        for (int64_t i = 0; i < dx.size(); ++i) {
          const float d = x_node->value[i] - y_node->value[i];
          dx[i] = d > 0.0f ? g : (d < 0.0f ? -g : 0.0f);
        }
        if (x_node->requires_grad) x_node->AccumulateGrad(dx);
        if (y_node->requires_grad) {
          x_node->requires_grad ? (void)0 : (void)0;
          Tensor dy = equitensor::MulScalar(dx, -1.0f);
          y_node->AccumulateGrad(dy);
        }
      });
}

Variable GradReverse(const Variable& x, float lambda) {
  Tensor out = x.value();
  auto x_node = x.node();
  return Variable::MakeOp("grad_reverse", std::move(out), {x},
                          [x_node, lambda](const AutogradNode& n) {
                            if (!x_node->requires_grad) return;
                            x_node->AccumulateGrad(
                                equitensor::MulScalar(n.grad, -lambda));
                          });
}

Variable Detach(const Variable& x) { return Variable(x.value(), false); }

}  // namespace ag
}  // namespace equitensor
