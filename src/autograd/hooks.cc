#include "autograd/hooks.h"

#include <mutex>
#include <utility>
#include <vector>

namespace equitensor {
namespace ag {

const char* HookPhaseName(HookPhase phase) {
  switch (phase) {
    case HookPhase::kForward:
      return "forward";
    case HookPhase::kBackward:
      return "backward";
  }
  return "?";
}

struct HookRegistry::Impl {
  std::mutex mu;
  std::vector<std::pair<int, HookFn>> hooks;
  int next_id = 1;
};

HookRegistry::Impl& HookRegistry::impl() const {
  // Leaked: observation points may fire from pool threads that outlive
  // main (same lifetime scheme as the metrics registry).
  static Impl* impl = new Impl();
  return *impl;
}

HookRegistry& HookRegistry::Global() {
  static HookRegistry* registry = new HookRegistry();
  return *registry;
}

int HookRegistry::Add(HookFn fn) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  const int id = state.next_id++;
  state.hooks.emplace_back(id, std::move(fn));
  active_count_.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void HookRegistry::Remove(int id) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  for (auto it = state.hooks.begin(); it != state.hooks.end(); ++it) {
    if (it->first == id) {
      state.hooks.erase(it);
      active_count_.fetch_sub(1, std::memory_order_relaxed);
      return;
    }
  }
}

void HookRegistry::Notify(const HookContext& context) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  for (const auto& [id, fn] : state.hooks) fn(context);
}

Variable Observe(const std::string& name, const Variable& x) {
  HookRegistry& registry = HookRegistry::Global();
  if (!registry.active()) return x;
  registry.Notify({name, HookPhase::kForward, x.value()});
  if (!x.requires_grad()) return x;
  // Pass-through node: same value, and a backward closure that reports
  // the gradient before forwarding it unchanged to the source.
  std::string point = name;
  return Variable::MakeOp(
      "observe", x.value(), {x},
      [point = std::move(point)](const AutogradNode& node) {
        HookRegistry::Global().Notify(
            {point, HookPhase::kBackward, node.grad});
        node.parents[0]->AccumulateGrad(node.grad);
      });
}

}  // namespace ag
}  // namespace equitensor
