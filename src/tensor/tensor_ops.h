#ifndef EQUITENSOR_TENSOR_TENSOR_OPS_H_
#define EQUITENSOR_TENSOR_TENSOR_OPS_H_

#include <functional>
#include <vector>

#include "tensor/tensor.h"

namespace equitensor {

/// Eager, allocation-returning tensor math. These are used by the data
/// pipeline, PCA, metrics, and tests; the autograd engine has its own
/// differentiable op set layered on the same storage type.

/// Elementwise a + b (shapes must match).
Tensor Add(const Tensor& a, const Tensor& b);
/// Elementwise a - b.
Tensor Sub(const Tensor& a, const Tensor& b);
/// Elementwise a * b (Hadamard).
Tensor Mul(const Tensor& a, const Tensor& b);
/// Elementwise a / b; checks |b| > 0.
Tensor Div(const Tensor& a, const Tensor& b);

/// Elementwise tensor-scalar variants.
Tensor AddScalar(const Tensor& a, float s);
Tensor MulScalar(const Tensor& a, float s);

/// Elementwise unary map.
Tensor Map(const Tensor& a, const std::function<float(float)>& fn);

/// Mean absolute difference between two same-shape tensors.
double MeanAbsoluteError(const Tensor& a, const Tensor& b);
/// Mean squared difference between two same-shape tensors.
double MeanSquaredError(const Tensor& a, const Tensor& b);

/// Dense matrix product of [m, k] x [k, n] -> [m, n].
Tensor MatMul(const Tensor& a, const Tensor& b);
/// Transpose of a rank-2 tensor.
Tensor Transpose2d(const Tensor& a);

/// Concatenates tensors along `axis`; all other dims must match.
Tensor Concat(const std::vector<Tensor>& parts, int axis);

/// Extracts the sub-tensor starting at `offsets` with extents `sizes`.
Tensor Slice(const Tensor& t, const std::vector<int64_t>& offsets,
             const std::vector<int64_t>& sizes);

/// Mean over one axis, removing it from the shape.
Tensor MeanAxis(const Tensor& t, int axis);

/// Repeats the tensor `repeat` times along a new trailing axis.
/// [d0, ..., dk] -> [d0, ..., dk, repeat].
Tensor TileTrailing(const Tensor& t, int64_t repeat);

/// Repeats the tensor `repeat` times along a new axis at `axis`.
Tensor TileAt(const Tensor& t, int axis, int64_t repeat);

}  // namespace equitensor

#endif  // EQUITENSOR_TENSOR_TENSOR_OPS_H_
