#include "tensor/tensor_ops.h"

#include <cmath>

#include "util/check.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace equitensor {
namespace {

// Elementwise loops are chunked over the flat index space; each output
// element is written by exactly one chunk, so results are identical to
// the serial loops for any thread count (DESIGN.md §8).

Tensor Zip(const Tensor& a, const Tensor& b, float (*fn)(float, float)) {
  ET_CHECK(a.SameShape(b)) << "shape mismatch " << a.ShapeString() << " vs "
                           << b.ShapeString();
  Tensor out(a.shape());
  ParallelFor(0, a.size(), GrainForCost(1), [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) out[i] = fn(a[i], b[i]);
  });
  return out;
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  return Zip(a, b, [](float x, float y) { return x + y; });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return Zip(a, b, [](float x, float y) { return x - y; });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return Zip(a, b, [](float x, float y) { return x * y; });
}

Tensor Div(const Tensor& a, const Tensor& b) {
  ET_CHECK(a.SameShape(b));
  Tensor out(a.shape());
  for (int64_t i = 0; i < a.size(); ++i) {
    ET_CHECK(b[i] != 0.0f) << "division by zero at linear index " << i;
    out[i] = a[i] / b[i];
  }
  return out;
}

Tensor AddScalar(const Tensor& a, float s) {
  Tensor out(a.shape());
  ParallelFor(0, a.size(), GrainForCost(1), [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) out[i] = a[i] + s;
  });
  return out;
}

Tensor MulScalar(const Tensor& a, float s) {
  Tensor out(a.shape());
  ParallelFor(0, a.size(), GrainForCost(1), [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) out[i] = a[i] * s;
  });
  return out;
}

Tensor Map(const Tensor& a, const std::function<float(float)>& fn) {
  Tensor out(a.shape());
  ParallelFor(0, a.size(), GrainForCost(4), [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) out[i] = fn(a[i]);
  });
  return out;
}

double MeanAbsoluteError(const Tensor& a, const Tensor& b) {
  ET_CHECK(a.SameShape(b));
  double sum = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) sum += std::fabs(a[i] - b[i]);
  return sum / static_cast<double>(a.size());
}

double MeanSquaredError(const Tensor& a, const Tensor& b) {
  ET_CHECK(a.SameShape(b));
  double sum = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum / static_cast<double>(a.size());
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  ET_TRACE_SPAN("matmul");
  ET_CHECK_EQ(a.rank(), 2);
  ET_CHECK_EQ(b.rank(), 2);
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  ET_CHECK_EQ(k, b.dim(0));
  Tensor out({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  // Each output row is owned by one chunk; the k-loop runs in serial
  // order inside it, so the sum order matches the serial kernel.
  ParallelFor(0, m, GrainForCost(k * n), [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      for (int64_t kk = 0; kk < k; ++kk) {
        const float av = pa[i * k + kk];
        if (av == 0.0f) continue;
        const float* brow = pb + kk * n;
        float* orow = po + i * n;
        for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
      }
    }
  });
  return out;
}

Tensor Transpose2d(const Tensor& a) {
  ET_CHECK_EQ(a.rank(), 2);
  const int64_t m = a.dim(0), n = a.dim(1);
  Tensor out({n, m});
  ParallelFor(0, m, GrainForCost(n), [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      for (int64_t j = 0; j < n; ++j) out[j * m + i] = a[i * n + j];
    }
  });
  return out;
}

Tensor Concat(const std::vector<Tensor>& parts, int axis) {
  ET_CHECK(!parts.empty());
  const int rank = parts[0].rank();
  if (axis < 0) axis += rank;
  ET_CHECK(axis >= 0 && axis < rank);
  std::vector<int64_t> shape = parts[0].shape();
  int64_t concat_dim = 0;
  for (const Tensor& p : parts) {
    ET_CHECK_EQ(p.rank(), rank);
    for (int d = 0; d < rank; ++d) {
      if (d != axis) {
        ET_CHECK_EQ(p.dim(d), shape[static_cast<size_t>(d)]);
      }
    }
    concat_dim += p.dim(axis);
  }
  shape[static_cast<size_t>(axis)] = concat_dim;
  Tensor out(shape);

  // Treat each tensor as [outer, axis_dim, inner] blocks.
  int64_t outer = 1, inner = 1;
  for (int d = 0; d < axis; ++d) outer *= shape[static_cast<size_t>(d)];
  for (int d = axis + 1; d < rank; ++d) inner *= shape[static_cast<size_t>(d)];

  int64_t axis_offset = 0;
  for (const Tensor& p : parts) {
    const int64_t p_axis = p.dim(axis);
    for (int64_t o = 0; o < outer; ++o) {
      const float* src = p.data() + o * p_axis * inner;
      float* dst = out.data() + (o * concat_dim + axis_offset) * inner;
      std::copy(src, src + p_axis * inner, dst);
    }
    axis_offset += p_axis;
  }
  return out;
}

Tensor Slice(const Tensor& t, const std::vector<int64_t>& offsets,
             const std::vector<int64_t>& sizes) {
  ET_CHECK_EQ(static_cast<int>(offsets.size()), t.rank());
  ET_CHECK_EQ(static_cast<int>(sizes.size()), t.rank());
  for (int d = 0; d < t.rank(); ++d) {
    ET_CHECK_GE(offsets[static_cast<size_t>(d)], 0);
    ET_CHECK_GT(sizes[static_cast<size_t>(d)], 0);
    ET_CHECK_LE(offsets[static_cast<size_t>(d)] + sizes[static_cast<size_t>(d)],
                t.dim(d));
  }
  Tensor out(sizes);
  std::vector<int64_t> index(static_cast<size_t>(t.rank()), 0);
  for (int64_t i = 0; i < out.size(); ++i) {
    // Decode output index, translate by offsets, read from source.
    int64_t rem = i;
    for (int d = t.rank() - 1; d >= 0; --d) {
      index[static_cast<size_t>(d)] =
          offsets[static_cast<size_t>(d)] + rem % sizes[static_cast<size_t>(d)];
      rem /= sizes[static_cast<size_t>(d)];
    }
    out[i] = t[t.Offset(index)];
  }
  return out;
}

Tensor MeanAxis(const Tensor& t, int axis) {
  const int rank = t.rank();
  if (axis < 0) axis += rank;
  ET_CHECK(axis >= 0 && axis < rank);
  std::vector<int64_t> out_shape;
  for (int d = 0; d < rank; ++d) {
    if (d != axis) out_shape.push_back(t.dim(d));
  }
  if (out_shape.empty()) return Tensor::Scalar(static_cast<float>(t.Mean()));

  int64_t outer = 1, inner = 1;
  const int64_t axis_dim = t.dim(axis);
  for (int d = 0; d < axis; ++d) outer *= t.dim(d);
  for (int d = axis + 1; d < rank; ++d) inner *= t.dim(d);

  Tensor out(out_shape);
  ParallelFor(0, outer, GrainForCost(inner * axis_dim),
              [&](int64_t o0, int64_t o1) {
                for (int64_t o = o0; o < o1; ++o) {
                  for (int64_t in = 0; in < inner; ++in) {
                    double sum = 0.0;
                    for (int64_t a = 0; a < axis_dim; ++a) {
                      sum += t[(o * axis_dim + a) * inner + in];
                    }
                    out[o * inner + in] = static_cast<float>(sum / axis_dim);
                  }
                }
              });
  return out;
}

Tensor TileTrailing(const Tensor& t, int64_t repeat) {
  return TileAt(t, t.rank(), repeat);
}

Tensor TileAt(const Tensor& t, int axis, int64_t repeat) {
  const int rank = t.rank();
  if (axis < 0) axis += rank + 1;
  ET_CHECK(axis >= 0 && axis <= rank);
  ET_CHECK_GT(repeat, 0);
  std::vector<int64_t> out_shape = t.shape();
  out_shape.insert(out_shape.begin() + axis, repeat);

  int64_t outer = 1, inner = 1;
  for (int d = 0; d < axis; ++d) outer *= t.dim(d);
  for (int d = axis; d < rank; ++d) inner *= t.dim(d);

  Tensor out(out_shape);
  for (int64_t o = 0; o < outer; ++o) {
    const float* src = t.data() + o * inner;
    for (int64_t r = 0; r < repeat; ++r) {
      float* dst = out.data() + (o * repeat + r) * inner;
      std::copy(src, src + inner, dst);
    }
  }
  return out;
}

}  // namespace equitensor
