#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"

namespace equitensor {

int64_t Tensor::Volume(const std::vector<int64_t>& shape) {
  int64_t volume = 1;
  for (int64_t d : shape) {
    ET_CHECK_GT(d, 0) << "tensor dims must be positive";
    volume *= d;
  }
  return volume;
}

Tensor::Tensor() : shape_(), data_(1, 0.0f) {}

Tensor::Tensor(std::vector<int64_t> shape)
    : shape_(std::move(shape)),
      data_(static_cast<size_t>(Volume(shape_)), 0.0f) {}

Tensor::Tensor(std::vector<int64_t> shape, float value)
    : shape_(std::move(shape)),
      data_(static_cast<size_t>(Volume(shape_)), value) {}

Tensor Tensor::FromData(std::vector<int64_t> shape, std::vector<float> data) {
  ET_CHECK_EQ(Volume(shape), static_cast<int64_t>(data.size()));
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = std::move(data);
  return t;
}

Tensor Tensor::Scalar(float value) {
  Tensor t;
  t.data_[0] = value;
  return t;
}

Tensor Tensor::RandomUniform(std::vector<int64_t> shape, Rng& rng, float lo,
                             float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.Uniform(lo, hi));
  return t;
}

Tensor Tensor::RandomNormal(std::vector<int64_t> shape, Rng& rng, float mean,
                            float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.Normal(mean, stddev));
  return t;
}

int64_t Tensor::dim(int axis) const {
  const int r = rank();
  if (axis < 0) axis += r;
  ET_CHECK(axis >= 0 && axis < r) << "axis out of range for rank " << r;
  return shape_[static_cast<size_t>(axis)];
}

int64_t Tensor::Offset(const std::vector<int64_t>& index) const {
  ET_CHECK_EQ(static_cast<int>(index.size()), rank());
  int64_t offset = 0;
  for (size_t i = 0; i < index.size(); ++i) {
    ET_CHECK(index[i] >= 0 && index[i] < shape_[i])
        << "index " << index[i] << " out of bounds for dim " << shape_[i];
    offset = offset * shape_[i] + index[i];
  }
  return offset;
}

float& Tensor::at(std::initializer_list<int64_t> index) {
  return data_[static_cast<size_t>(
      Offset(std::vector<int64_t>(index.begin(), index.end())))];
}

float Tensor::at(std::initializer_list<int64_t> index) const {
  return data_[static_cast<size_t>(
      Offset(std::vector<int64_t>(index.begin(), index.end())))];
}

void Tensor::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

Tensor Tensor::Reshape(std::vector<int64_t> new_shape) const {
  ET_CHECK_EQ(Volume(new_shape), size()) << "reshape must preserve volume";
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  return t;
}

double Tensor::Sum() const {
  double sum = 0.0;
  for (float v : data_) sum += v;
  return sum;
}

double Tensor::Mean() const { return Sum() / static_cast<double>(size()); }

float Tensor::Min() const {
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::Max() const {
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::AbsMax() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

std::string Tensor::ShapeString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ", ";
    os << shape_[i];
  }
  os << "]";
  return os.str();
}

bool AllClose(const Tensor& a, const Tensor& b, float tol) {
  if (!a.SameShape(b)) return false;
  for (int64_t i = 0; i < a.size(); ++i) {
    if (std::fabs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

}  // namespace equitensor
