#ifndef EQUITENSOR_TENSOR_TENSOR_H_
#define EQUITENSOR_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/rng.h"

namespace equitensor {

/// Dense, row-major, float32 N-dimensional tensor. This is the storage
/// type used by the autograd engine, the NN layers, and the data
/// pipeline. Copyable (deep copy) and movable. Rank-0 tensors represent
/// scalars and hold exactly one element.
class Tensor {
 public:
  /// Empty rank-0 scalar initialized to 0.
  Tensor();

  /// Zero-filled tensor of the given shape. All dims must be positive.
  explicit Tensor(std::vector<int64_t> shape);

  /// Tensor of the given shape with every element set to `value`.
  Tensor(std::vector<int64_t> shape, float value);

  /// Wraps existing data; `data.size()` must equal the shape's volume.
  static Tensor FromData(std::vector<int64_t> shape, std::vector<float> data);

  /// Rank-0 scalar tensor.
  static Tensor Scalar(float value);

  /// I.i.d. uniform samples in [lo, hi).
  static Tensor RandomUniform(std::vector<int64_t> shape, Rng& rng,
                              float lo = 0.0f, float hi = 1.0f);

  /// I.i.d. normal samples.
  static Tensor RandomNormal(std::vector<int64_t> shape, Rng& rng,
                             float mean = 0.0f, float stddev = 1.0f);

  /// Shape accessors.
  const std::vector<int64_t>& shape() const { return shape_; }
  int rank() const { return static_cast<int>(shape_.size()); }
  /// Size of dimension `axis`; negative axes count from the back.
  int64_t dim(int axis) const;
  /// Total number of elements.
  int64_t size() const { return static_cast<int64_t>(data_.size()); }

  /// Raw storage access (row-major).
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& storage() { return data_; }
  const std::vector<float>& storage() const { return data_; }

  /// Linear element access without bounds translation.
  float& operator[](int64_t i) { return data_[static_cast<size_t>(i)]; }
  float operator[](int64_t i) const { return data_[static_cast<size_t>(i)]; }

  /// Multi-index element access with full bounds checking.
  float& at(std::initializer_list<int64_t> index);
  float at(std::initializer_list<int64_t> index) const;

  /// Row-major linear offset of a multi-index (bounds-checked).
  int64_t Offset(const std::vector<int64_t>& index) const;

  /// True when shapes are identical (same rank and dims).
  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

  /// Sets every element to `value`.
  void Fill(float value);

  /// Returns a copy with a new shape of equal volume.
  Tensor Reshape(std::vector<int64_t> new_shape) const;

  /// Sum of all elements (double accumulator).
  double Sum() const;
  /// Mean of all elements; 0 for empty tensors cannot occur (size >= 1).
  double Mean() const;
  /// Smallest / largest element.
  float Min() const;
  float Max() const;
  /// Maximum |x| over all elements.
  float AbsMax() const;

  /// "[2, 3, 4]"-style shape string for diagnostics.
  std::string ShapeString() const;

  /// Volume (product of dims) of a shape vector.
  static int64_t Volume(const std::vector<int64_t>& shape);

 private:
  std::vector<int64_t> shape_;
  std::vector<float> data_;
};

/// True when every pair of elements differs by at most `tol`.
bool AllClose(const Tensor& a, const Tensor& b, float tol = 1e-5f);

}  // namespace equitensor

#endif  // EQUITENSOR_TENSOR_TENSOR_H_
