#ifndef EQUITENSOR_DATA_WINDOWS_H_
#define EQUITENSOR_DATA_WINDOWS_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace equitensor {
namespace data {

/// Produces the paper's overlapping 24-hour training samples (§3.1):
/// each sample is a window [start, start+window) holding a slice of
/// every 1D/3D dataset plus every (time-invariant) 2D dataset. Batches
/// are stacked into NN layouts with a leading batch dimension:
///   kTemporal:       [N, C, window]
///   kSpatial:        [N, C, W, H]
///   kSpatioTemporal: [N, C, W, H, window]
class WindowSampler {
 public:
  /// The datasets must outlive the sampler and share one time horizon.
  /// `hours_hint` supplies the horizon when *no* dataset is
  /// time-varying (e.g. a single-2D-dataset CDAE used for L(opt)
  /// estimation); it is ignored otherwise.
  WindowSampler(const std::vector<AlignedDataset>* datasets,
                int64_t window = 24, int64_t hours_hint = -1);

  int64_t window() const { return window_; }
  int64_t hours() const { return hours_; }
  /// Number of overlapping windows: T - window + 1.
  int64_t NumWindows() const { return hours_ - window_ + 1; }
  int64_t dataset_count() const {
    return static_cast<int64_t>(datasets_->size());
  }

  /// Stacks the given window starts into one batch tensor per dataset.
  std::vector<Tensor> MakeBatch(const std::vector<int64_t>& starts) const;

  /// Batch tensor for a single dataset only.
  Tensor MakeBatchFor(int dataset_index,
                      const std::vector<int64_t>& starts) const;

  /// Uniform random window starts.
  std::vector<int64_t> SampleStarts(int64_t batch_size, Rng& rng) const;

  /// Consecutive non-overlapping starts 0, window, 2*window, ...
  /// (used to materialize the EquiTensor over the full horizon, §4.4).
  std::vector<int64_t> NonOverlappingStarts() const;

 private:
  const std::vector<AlignedDataset>* datasets_;
  int64_t window_;
  int64_t hours_;
};

}  // namespace data
}  // namespace equitensor

#endif  // EQUITENSOR_DATA_WINDOWS_H_
