#include "data/csv_loader.h"

#include <cmath>
#include <cstdlib>
#include <fstream>

#include "util/check.h"
#include "util/logging.h"

namespace equitensor {
namespace data {
namespace {

bool ParseDouble(const std::string& field, double* value) {
  if (field.empty()) return false;
  char* end = nullptr;
  *value = std::strtod(field.c_str(), &end);
  return end == field.c_str() + field.size();
}

}  // namespace

bool ParseCsvLine(const std::string& line, char delimiter,
                  std::vector<std::string>* fields) {
  fields->clear();
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;  // Doubled quote.
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"' && current.empty()) {
      in_quotes = true;
    } else if (c == delimiter) {
      fields->push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current += c;
    }
  }
  if (in_quotes) return false;  // Unterminated quote.
  fields->push_back(std::move(current));
  return true;
}

bool ParseCsv(std::istream& input, const CsvOptions& options,
              std::vector<std::vector<std::string>>* rows) {
  rows->clear();
  std::string line;
  bool first = true;
  while (std::getline(input, line)) {
    if (first && options.has_header) {
      first = false;
      continue;
    }
    first = false;
    if (line.empty()) continue;
    std::vector<std::string> fields;
    if (!ParseCsvLine(line, options.delimiter, &fields)) return false;
    rows->push_back(std::move(fields));
  }
  return true;
}

bool LoadEventsCsv(const std::string& path, int x_column, int y_column,
                   int hour_column, std::vector<Event>* events,
                   int64_t* skipped, const CsvOptions& options) {
  ET_CHECK(events != nullptr);
  std::ifstream file(path);
  if (!file) {
    ET_LOG(Warning) << "cannot open " << path;
    return false;
  }
  std::vector<std::vector<std::string>> rows;
  if (!ParseCsv(file, options, &rows)) return false;

  const int max_column = std::max({x_column, y_column, hour_column});
  int64_t skipped_count = 0;
  events->clear();
  events->reserve(rows.size());
  for (const auto& row : rows) {
    double x = 0.0, y = 0.0, hour = 0.0;
    if (static_cast<int>(row.size()) <= max_column ||
        !ParseDouble(row[static_cast<size_t>(x_column)], &x) ||
        !ParseDouble(row[static_cast<size_t>(y_column)], &y) ||
        !ParseDouble(row[static_cast<size_t>(hour_column)], &hour)) {
      ++skipped_count;
      continue;
    }
    events->push_back({{x, y}, static_cast<int64_t>(hour)});
  }
  if (skipped != nullptr) *skipped = skipped_count;
  return true;
}

bool LoadSeriesCsv(const std::string& path, int hour_column, int value_column,
                   int64_t hours, Tensor* series, const CsvOptions& options) {
  ET_CHECK(series != nullptr);
  ET_CHECK_GT(hours, 0);
  std::ifstream file(path);
  if (!file) {
    ET_LOG(Warning) << "cannot open " << path;
    return false;
  }
  std::vector<std::vector<std::string>> rows;
  if (!ParseCsv(file, options, &rows)) return false;

  *series = Tensor({hours}, std::nanf(""));
  const int max_column = std::max(hour_column, value_column);
  for (const auto& row : rows) {
    double hour = 0.0, value = 0.0;
    if (static_cast<int>(row.size()) <= max_column ||
        !ParseDouble(row[static_cast<size_t>(hour_column)], &hour) ||
        !ParseDouble(row[static_cast<size_t>(value_column)], &value)) {
      continue;
    }
    const int64_t h = static_cast<int64_t>(hour);
    if (h < 0 || h >= hours) continue;
    if (std::isnan((*series)[h])) {
      (*series)[h] = static_cast<float>(value);
    } else {
      (*series)[h] += static_cast<float>(value);  // Duplicate hours sum.
    }
  }
  return true;
}

bool WriteFieldCsv(const std::string& path, const Tensor& field) {
  ET_CHECK_EQ(field.rank(), 2);
  std::ofstream file(path);
  if (!file) return false;
  file << "x,y,value\n";
  for (int64_t x = 0; x < field.dim(0); ++x) {
    for (int64_t y = 0; y < field.dim(1); ++y) {
      file << x << "," << y << "," << field[x * field.dim(1) + y] << "\n";
    }
  }
  return static_cast<bool>(file);
}

}  // namespace data
}  // namespace equitensor
