#include "data/generators.h"

#include <algorithm>
#include <cmath>

#include "data/events.h"
#include "data/preprocess.h"
#include "geo/rasterize.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"

namespace equitensor {
namespace data {
namespace {

double Clamp(double v, double lo, double hi) {
  return std::max(lo, std::min(hi, v));
}

// Weather response factors shared by the outdoor-activity processes.
// Rain sharply suppresses outdoor demand, which is what makes a
// target-hour precipitation feature (oracle / EquiTensor) genuinely
// more informative than extrapolating the demand history.
double RainPenalty(float precipitation) {
  return 1.0 / (1.0 + 1.10 * static_cast<double>(precipitation));
}

double TempComfort(float temperature) {
  return Clamp(0.30 + (static_cast<double>(temperature) - 4.0) / 18.0, 0.30,
               1.25);
}

AlignedDataset Make1d(std::string name, const Tensor& series) {
  ET_CHECK_EQ(series.rank(), 1);
  AlignedDataset ds;
  ds.name = std::move(name);
  ds.kind = DatasetKind::kTemporal;
  ds.tensor = series.Reshape({1, series.dim(0)});
  return ds;
}

AlignedDataset Make2d(std::string name, const Tensor& field) {
  ET_CHECK_EQ(field.rank(), 2);
  AlignedDataset ds;
  ds.name = std::move(name);
  ds.kind = DatasetKind::kSpatial;
  ds.tensor = field.Reshape({1, field.dim(0), field.dim(1)});
  return ds;
}

AlignedDataset Make3d(std::string name, const Tensor& grid3d) {
  ET_CHECK_EQ(grid3d.rank(), 3);
  AlignedDataset ds;
  ds.name = std::move(name);
  ds.kind = DatasetKind::kSpatioTemporal;
  ds.tensor = grid3d.Reshape({1, grid3d.dim(0), grid3d.dim(1), grid3d.dim(2)});
  return ds;
}

// Samples points along each polyline at roughly `spacing` intervals
// (transit stops along routes, signals along streets).
std::vector<geo::Point> PointsAlong(const std::vector<geo::Polyline>& lines,
                                    double spacing, Rng& rng) {
  std::vector<geo::Point> points;
  for (const geo::Polyline& line : lines) {
    for (size_t i = 1; i < line.size(); ++i) {
      const geo::Point& a = line[i - 1];
      const geo::Point& b = line[i];
      const double dx = b.x - a.x, dy = b.y - a.y;
      const double len = std::sqrt(dx * dx + dy * dy);
      const int n = std::max(1, static_cast<int>(len / spacing));
      for (int k = 0; k <= n; ++k) {
        const double t =
            Clamp(static_cast<double>(k) / n + rng.Uniform(-0.2, 0.2) / n, 0.0,
                  1.0);
        points.push_back({a.x + t * dx, a.y + t * dy});
      }
    }
  }
  return points;
}

}  // namespace

const char* TaskName(Task task) {
  switch (task) {
    case Task::kBikeshare:
      return "bikeshare";
    case Task::kCrime:
      return "crime";
    case Task::kFire:
      return "fire";
    case Task::kBikeCount:
      return "bike_count";
  }
  return "?";
}

int UrbanDataBundle::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < datasets.size(); ++i) {
    if (datasets[i].name == name) return static_cast<int>(i);
  }
  ET_CHECK(false) << "no dataset named " << name;
  return -1;
}

std::vector<int> UrbanDataBundle::OracleIndices(Task task) const {
  // Table 1: "known predictive oracle features".
  std::vector<std::string> names;
  switch (task) {
    case Task::kBikeshare:
      names = {"precipitation", "pressure", "temperature", "steep_slopes",
               "bikelanes"};
      break;
    case Task::kCrime:
      names = {"precipitation", "pressure",     "temperature",
               "house_price",   "poi_business", "poi_food",
               "seattle_streets", "seattle_911_calls"};
      break;
    case Task::kFire:
      names = {"precipitation",   "pressure",     "temperature",
               "house_price",     "poi_business", "poi_food",
               "seattle_streets", "total_flow_count", "steep_slopes"};
      break;
    case Task::kBikeCount:
      names = {"precipitation", "pressure", "temperature"};
      break;
  }
  std::vector<int> indices;
  indices.reserve(names.size());
  for (const std::string& n : names) indices.push_back(IndexOf(n));
  return indices;
}

const Tensor& UrbanDataBundle::Target3d(Task task) const {
  switch (task) {
    case Task::kBikeshare:
      return bikeshare;
    case Task::kCrime:
      return crime;
    case Task::kFire:
      return fire;
    default:
      ET_CHECK(false) << "Target3d on 1D task";
  }
  return bikeshare;
}

UrbanDataBundle BuildSeattleAnalog(const CityConfig& config) {
  UrbanDataBundle bundle;
  bundle.config = config;
  bundle.city = std::make_shared<SyntheticCity>(config);
  const SyntheticCity& city = *bundle.city;
  const geo::GridSpec& grid = city.grid();
  const int64_t w = config.width, h = config.height, t_max = config.hours;
  const double bias = config.bias_strength;

  // --- Sensitive attributes from block groups (area-weighted). ---
  bundle.race_map = geo::RasterizeRegionsAverage(city.race_block_groups(), grid);
  bundle.income_map =
      geo::RasterizeRegionsAverage(city.income_block_groups(), grid);

  // Convenience handles to latent fields.
  const Tensor& density = city.density();
  const Tensor& slope = city.slope();
  const Tensor& downtown = city.downtown();
  const Tensor& streets_d = city.street_density();
  const Tensor& lanes_d = city.bikelane_density();
  const Tensor& race = bundle.race_map;
  const Tensor& income = bundle.income_map;
  auto cell = [h](const Tensor& f, int64_t cx, int64_t cy) {
    return static_cast<double>(f[cx * h + cy]);
  };

  std::vector<AlignedDataset>& out = bundle.datasets;
  out.reserve(23);

  // === 1D datasets (Table 2: Temperature..Air quality, NCEI / PSCAA) ===
  out.push_back(Make1d("temperature", city.temperature()));
  out.push_back(Make1d("precipitation", city.precipitation()));
  out.push_back(Make1d("pressure", city.pressure()));
  {
    AlignedDataset aq = Make1d("air_quality", city.air_quality());
    Rng rng = city.MakeRng(10);
    InjectMissing(&aq.tensor, 0.03, rng);  // Sensor outages.
    out.push_back(std::move(aq));
  }

  // === 2D datasets ===
  // House price (Zillow ZHVI analog): block-group regions,
  // proportional-area allocation of an intensive index -> average.
  out.push_back(Make2d("house_price", geo::RasterizeRegionsAverage(
                                          city.house_price_regions(), grid)));

  // Eight POI categories (King County GIS analog): weighted point sets.
  {
    Rng rng = city.MakeRng(11);
    struct PoiSpec {
      const char* name;
      Tensor weight;
      int64_t count;
    };
    auto blend = [&](double a, const Tensor& fa, double b, const Tensor& fb) {
      Tensor t({w, h});
      for (int64_t i = 0; i < t.size(); ++i) {
        t[i] = static_cast<float>(
            std::max(0.0, a * fa[i] + b * fb[i] + 0.02));
      }
      return t;
    };
    const int64_t cells = w * h;
    std::vector<PoiSpec> specs;
    specs.push_back({"poi_business", blend(0.7, density, 0.6, downtown), 8 * cells});
    specs.push_back({"poi_food", blend(1.0, density, 0.2, downtown), 6 * cells});
    specs.push_back({"poi_government", blend(0.1, density, 1.0, downtown), cells});
    specs.push_back({"poi_hospitals", blend(0.5, density, 0.3, downtown), cells / 2});
    specs.push_back({"poi_public_services", blend(0.6, density, 0.2, income), 2 * cells});
    // Recreation areas skew away from the dense core.
    {
      Tensor rec({w, h});
      for (int64_t i = 0; i < rec.size(); ++i) {
        rec[i] = static_cast<float>(
            std::max(0.02, 0.8 - 0.6 * density[i] + 0.3 * slope[i]));
      }
      specs.push_back({"poi_recreation", std::move(rec), 2 * cells});
    }
    specs.push_back({"poi_schools", blend(0.8, density, -0.2, downtown), 2 * cells});
    specs.push_back({"poi_transportation", blend(0.5, streets_d, 0.5, downtown), 2 * cells});
    for (auto& spec : specs) {
      const auto points =
          SampleWeightedPoints(spec.weight, grid, spec.count, rng);
      out.push_back(Make2d(spec.name, geo::RasterizePoints(points, grid)));
    }
  }

  // Transit network (King County GIS analog).
  {
    Rng rng = city.MakeRng(12);
    out.push_back(
        Make2d("transit_routes", geo::RasterizeLines(city.transit_routes(), grid)));
    const auto signals = PointsAlong(city.streets(), 1.3, rng);
    out.push_back(Make2d("transit_signals", geo::RasterizePoints(signals, grid)));
    const auto stops = PointsAlong(city.transit_routes(), 0.6, rng);
    out.push_back(Make2d("transit_stops", geo::RasterizePoints(stops, grid)));
  }

  // Street network, flow counts, slopes, bikelanes (Seattle open data /
  // UW GIS analogs).
  out.push_back(Make2d("seattle_streets", geo::RasterizeLines(city.streets(), grid)));
  {
    // Average daily traffic flow: street density scaled by centrality.
    Tensor flow({w, h});
    Rng rng = city.MakeRng(13);
    for (int64_t cx = 0; cx < w; ++cx) {
      for (int64_t cy = 0; cy < h; ++cy) {
        const int64_t i = cx * h + cy;
        flow[i] = static_cast<float>(std::max(
            0.0, 1200.0 * cell(streets_d, cx, cy) *
                         (0.4 + 0.6 * cell(downtown, cx, cy)) +
                     60.0 * rng.Normal()));
      }
    }
    AlignedDataset flow_ds = Make2d("total_flow_count", flow);
    InjectMissing(&flow_ds.tensor, 0.08, rng);  // Counter outages.
    out.push_back(std::move(flow_ds));
  }
  {
    // Steep-slope polygons: block rectangles carrying the slope field.
    std::vector<geo::ValuedRegion> slope_blocks;
    for (const geo::ValuedRegion& block : city.race_block_groups()) {
      geo::ValuedRegion sb = block;
      // Evaluate slope at the block centroid.
      double sx = 0.0, sy = 0.0;
      for (const geo::Point& p : sb.polygon) {
        sx += p.x;
        sy += p.y;
      }
      sx /= sb.polygon.size();
      sy /= sb.polygon.size();
      const auto c = grid.CellOf({sx, sy});
      sb.value = c ? cell(slope, c->first, c->second) : 0.0;
      slope_blocks.push_back(std::move(sb));
    }
    out.push_back(Make2d("steep_slopes",
                         geo::RasterizeRegionsAverage(slope_blocks, grid)));
  }
  out.push_back(Make2d("bikelanes", geo::RasterizeLines(city.bikelanes(), grid)));

  // === 3D datasets (event processes) ===
  const Tensor& precip = city.precipitation();
  {
    Rng rng = city.MakeRng(14);
    // Building permits: investment follows income, weekday daytime.
    const auto intensity = [&](int64_t cx, int64_t cy, int64_t t) {
      const bool weekend = SyntheticCity::IsWeekend(t);
      return 0.02 + 0.30 * cell(density, cx, cy) * cell(income, cx, cy) *
                        SyntheticCity::DaytimeFactor(t) * (weekend ? 0.25 : 1.0);
    };
    const auto events = SimulateEvents(grid, t_max, intensity, rng);
    out.push_back(Make3d("building_permits", EventsToGrid(events, grid, t_max)));
  }
  {
    Rng rng = city.MakeRng(15);
    // Traffic collisions: streets x commute x rain.
    const auto intensity = [&](int64_t cx, int64_t cy, int64_t t) {
      return 0.03 + 0.55 * cell(streets_d, cx, cy) *
                        SyntheticCity::CommuteFactor(t) *
                        (1.0 + 0.35 * precip[t]);
    };
    const auto events = SimulateEvents(grid, t_max, intensity, rng);
    out.push_back(Make3d("traffic_collisions", EventsToGrid(events, grid, t_max)));
  }

  // === Downstream targets + the 911-call input that correlates with
  //     them (the reason call data is an oracle feature for crime). ===

  // Latent incident-hotspot process: sporadic multi-hour bursts per
  // cell with AR(1) decay. The 911-call feed observes it in near-real
  // time; the crime/fire processes respond to the *same realization*,
  // so call data carries predictive signal the target's own history
  // cannot provide.
  bundle.hotspot = Tensor({w, h, t_max});
  {
    Rng hrng = city.MakeRng(21);
    for (int64_t cx = 0; cx < w; ++cx) {
      for (int64_t cy = 0; cy < h; ++cy) {
        double level = 0.0;
        for (int64_t t = 0; t < t_max; ++t) {
          if (hrng.Bernoulli(0.012)) level += hrng.Uniform(2.0, 6.0);
          bundle.hotspot[(cx * h + cy) * t_max + t] =
              static_cast<float>(level);
          level *= 0.85;
        }
      }
    }
  }
  const auto hs = [&](int64_t cx, int64_t cy, int64_t t) {
    return static_cast<double>(bundle.hotspot[(cx * h + cy) * t_max + t]);
  };

  // Reported crime: ground-truth incidence modulated by *policing
  // practice* that over-reports in non-white neighborhoods (§1/[43]).
  const Tensor& temp_series = city.temperature();
  const auto crime_intensity = [&](int64_t cx, int64_t cy, int64_t t) {
    const double policing = 0.35 + 0.90 * bias * (1.0 - cell(race, cx, cy));
    // Street crime drops in the rain — next-hour precipitation (an
    // oracle feature) therefore predicts beyond the crime history.
    const double weather = 0.55 + 0.45 * RainPenalty(precip[t]);
    return 0.15 + policing * weather *
                      (4.0 * cell(density, cx, cy) *
                           SyntheticCity::NightFactor(t) *
                           (SyntheticCity::IsWeekend(t) ? 1.20 : 1.0) +
                       2.2 * hs(cx, cy, t));
  };
  // Fire/EMS 911: density + older/poorer housing stock + hotspots.
  const auto fire_intensity = [&](int64_t cx, int64_t cy, int64_t t) {
    // Heat waves raise the fire/EMS load (temperature is an oracle
    // feature for this task).
    const double heat = 0.75 + 0.35 * TempComfort(temp_series[t]);
    return 0.12 + 2.6 * heat * cell(density, cx, cy) *
                      (0.50 + 0.70 * bias * (1.0 - cell(income, cx, cy))) *
                      (0.4 + 0.6 * SyntheticCity::DaytimeFactor(t)) +
           1.2 * hs(cx, cy, t);
  };
  {
    Rng rng = city.MakeRng(16);
    // Seattle call data: a mixture of the crime and fire processes
    // observed through its own noise — an input dataset that embodies
    // the same biases as the targets.
    const auto intensity = [&](int64_t cx, int64_t cy, int64_t t) {
      return 0.05 + 0.55 * crime_intensity(cx, cy, t) +
             0.45 * fire_intensity(cx, cy, t);
    };
    const auto events = SimulateEvents(grid, t_max, intensity, rng);
    out.push_back(Make3d("seattle_911_calls", EventsToGrid(events, grid, t_max)));
  }
  ET_CHECK_EQ(out.size(), 23u) << "Table 2 inventory must have 23 datasets";

  // Finalize all 23 inputs: impute + max-abs scale.
  for (AlignedDataset& ds : out) FinalizeDataset(&ds);

  // --- Targets ---
  {
    Rng rng = city.MakeRng(17);
    const auto events = SimulateEvents(grid, t_max, crime_intensity, rng);
    bundle.crime = EventsToGrid(events, grid, t_max);
    bundle.crime_scale = QuantileClipScale(&bundle.crime);
  }
  {
    Rng rng = city.MakeRng(18);
    const auto events = SimulateEvents(grid, t_max, fire_intensity, rng);
    bundle.fire = EventsToGrid(events, grid, t_max);
    bundle.fire_scale = QuantileClipScale(&bundle.fire);
  }
  {
    Rng rng = city.MakeRng(19);
    // Dockless bikeshare demand: commute-driven, weather-sensitive,
    // skewed toward high-income areas with bikelane investment (§1).
    const Tensor& temp = city.temperature();
    const auto intensity = [&](int64_t cx, int64_t cy, int64_t t) {
      const bool weekend = SyntheticCity::IsWeekend(t);
      const double daily = weekend
                               ? 0.7 * SyntheticCity::DaytimeFactor(t)
                               : SyntheticCity::CommuteFactor(t);
      return 0.12 + 6.0 * cell(density, cx, cy) * daily * RainPenalty(precip[t]) *
                        TempComfort(temp[t]) *
                        (0.25 + 0.75 * bias * cell(income, cx, cy)) *
                        (1.0 + 0.50 * cell(lanes_d, cx, cy)) *
                        (1.0 - 0.35 * cell(slope, cx, cy));
    };
    const auto events = SimulateEvents(grid, t_max, intensity, rng);
    bundle.bikeshare = EventsToGrid(events, grid, t_max);
    bundle.bikeshare_scale = QuantileClipScale(&bundle.bikeshare);
  }
  {
    Rng rng = city.MakeRng(20);
    // Fremont-bridge analog: a single bridge cell near downtown.
    bundle.bridge_cx = std::max<int64_t>(0, static_cast<int64_t>(0.45 * w) - 1);
    bundle.bridge_cy = static_cast<int64_t>(0.40 * config.height) + 1;
    ET_CHECK_LT(bundle.bridge_cy, config.height);
    const Tensor& temp = city.temperature();
    bundle.bike_count = Tensor({t_max});
    for (int64_t t = 0; t < t_max; ++t) {
      const bool weekend = SyntheticCity::IsWeekend(t);
      const double daily = weekend
                               ? 0.55 * SyntheticCity::DaytimeFactor(t)
                               : SyntheticCity::CommuteFactor(t);
      const double lambda =
          2.0 + 85.0 * daily * RainPenalty(precip[t]) * TempComfort(temp[t]);
      bundle.bike_count[t] = static_cast<float>(rng.Poisson(lambda));
    }
  }
  return bundle;
}

}  // namespace data
}  // namespace equitensor
