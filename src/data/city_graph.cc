#include "data/city_graph.h"

#include "util/check.h"

namespace equitensor {
namespace data {

Tensor BuildCellAdjacency(const SyntheticCity& city, double base_weight,
                          double street_scale) {
  const int64_t w = city.config().width;
  const int64_t h = city.config().height;
  const int64_t n = w * h;
  const Tensor& streets = city.street_density();
  Tensor adjacency({n, n});
  auto node = [h](int64_t cx, int64_t cy) { return cx * h + cy; };
  for (int64_t cx = 0; cx < w; ++cx) {
    for (int64_t cy = 0; cy < h; ++cy) {
      const int64_t i = node(cx, cy);
      const int64_t neighbors[4][2] = {
          {cx + 1, cy}, {cx - 1, cy}, {cx, cy + 1}, {cx, cy - 1}};
      for (const auto& nb : neighbors) {
        if (nb[0] < 0 || nb[0] >= w || nb[1] < 0 || nb[1] >= h) continue;
        const int64_t j = node(nb[0], nb[1]);
        const double street = 0.5 * (streets[i] + streets[j]);
        adjacency[i * n + j] =
            static_cast<float>(base_weight + street_scale * street);
      }
    }
  }
  return adjacency;
}

Tensor FieldToNodeFeatures(const Tensor& field) {
  if (field.rank() == 2) {
    // [W, H] -> [W*H, 1]; row-major cell order matches BuildCellAdjacency.
    return field.Reshape({field.size(), 1});
  }
  ET_CHECK_EQ(field.rank(), 3) << "expected [C, W, H] or [W, H]";
  const int64_t c = field.dim(0), w = field.dim(1), h = field.dim(2);
  Tensor features({w * h, c});
  for (int64_t ch = 0; ch < c; ++ch) {
    for (int64_t cell = 0; cell < w * h; ++cell) {
      features[cell * c + ch] = field[ch * w * h + cell];
    }
  }
  return features;
}

Tensor NodeValuesToField(const Tensor& node_values, int64_t w, int64_t h) {
  ET_CHECK(node_values.rank() == 1 ||
           (node_values.rank() == 2 && node_values.dim(1) == 1));
  ET_CHECK_EQ(node_values.size(), w * h);
  Tensor field({w, h});
  for (int64_t i = 0; i < w * h; ++i) field[i] = node_values[i];
  return field;
}

}  // namespace data
}  // namespace equitensor
