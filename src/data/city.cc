#include "data/city.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace equitensor {
namespace data {
namespace {

double Clamp01(double v) { return std::max(0.0, std::min(1.0, v)); }

}  // namespace

SyntheticCity::SyntheticCity(const CityConfig& config) : config_(config) {
  ET_CHECK_GE(config.width, 4);
  ET_CHECK_GE(config.height, 4);
  ET_CHECK_GE(config.hours, 48);
  grid_ = {config.width, config.height, 0.0, 0.0, config.cell_km};
  BuildSpatialFields();
  BuildBlockGroups();
  BuildStreets();
  BuildWeather();
}

Rng SyntheticCity::MakeRng(uint64_t stream) const {
  // Mix the stream id into the seed so each consumer gets an
  // independent but reproducible generator.
  return Rng(config_.seed * 0x9E3779B97F4A7C15ULL + stream * 0xD2B74407B1CE6E93ULL + 1);
}

void SyntheticCity::BuildSpatialFields() {
  const int64_t w = config_.width;
  const int64_t h = config_.height;
  Rng rng = MakeRng(1);

  race_white_ = Tensor({w, h});
  income_high_ = Tensor({w, h});
  density_ = Tensor({w, h});
  slope_ = Tensor({w, h});
  downtown_ = Tensor({w, h});

  // Downtown sits off-center; a secondary hub sits in the north-east.
  const double cx = 0.45 * w, cy = 0.40 * h;
  const double hx = 0.80 * w, hy = 0.80 * h;
  // A historically disadvantaged corridor runs along the south edge:
  // lower white fraction, lower income, higher density.
  for (int64_t x = 0; x < w; ++x) {
    for (int64_t y = 0; y < h; ++y) {
      const int64_t i = x * h + y;
      const double dx = (x + 0.5 - cx) / w, dy = (y + 0.5 - cy) / h;
      const double d_downtown = std::sqrt(dx * dx + dy * dy);
      const double dhx = (x + 0.5 - hx) / w, dhy = (y + 0.5 - hy) / h;
      const double d_hub = std::sqrt(dhx * dhx + dhy * dhy);

      downtown_[i] = static_cast<float>(std::exp(-6.0 * d_downtown));
      const double hub = 0.5 * std::exp(-8.0 * d_hub);
      density_[i] = static_cast<float>(
          Clamp01(0.15 + 0.75 * downtown_[i] + hub + 0.08 * rng.Normal()));

      // South corridor: y small -> disadvantaged.
      const double south = 1.0 - static_cast<double>(y) / (h - 1);
      race_white_[i] = static_cast<float>(
          Clamp01(0.85 - 0.55 * south + 0.06 * rng.Normal()));
      income_high_[i] = static_cast<float>(
          Clamp01(0.70 - 0.45 * south + 0.25 * downtown_[i] * (1.0 - south) +
                  0.06 * rng.Normal()));

      // Hills rise toward the west edge and the north-east hub.
      const double west = 1.0 - static_cast<double>(x) / (w - 1);
      slope_[i] = static_cast<float>(
          Clamp01(0.55 * west * west + 0.35 * std::exp(-10.0 * d_hub) +
                  0.05 * rng.Normal()));
    }
  }
}

void SyntheticCity::BuildBlockGroups() {
  // Census-style block groups: 2x2-cell rectangles with jittered
  // corners, each carrying the average of the latent field inside it.
  // The alignment pipeline will rasterize these with proportional-area
  // allocation — the same treatment the paper gives SimplyAnalytics
  // block-group data.
  Rng rng = MakeRng(2);
  const int64_t w = config_.width, h = config_.height;
  const double cs = config_.cell_km;
  const int64_t bw = 2, bh = 2;
  for (int64_t bx = 0; bx < w; bx += bw) {
    for (int64_t by = 0; by < h; by += bh) {
      const int64_t x1 = std::min(bx + bw, w);
      const int64_t y1 = std::min(by + bh, h);
      // Average latent values over the block's cells.
      double race = 0.0, income = 0.0, downtown = 0.0;
      int64_t count = 0;
      for (int64_t x = bx; x < x1; ++x) {
        for (int64_t y = by; y < y1; ++y) {
          race += race_white_[x * h + y];
          income += income_high_[x * h + y];
          downtown += downtown_[x * h + y];
          ++count;
        }
      }
      race /= count;
      income /= count;
      downtown /= count;

      const double jitter = 0.15 * cs;
      auto jx = [&] { return rng.Uniform(-jitter, jitter); };
      geo::Polygon poly = {
          {bx * cs + jx(), by * cs + jx()},
          {x1 * cs + jx(), by * cs + jx()},
          {x1 * cs + jx(), y1 * cs + jx()},
          {bx * cs + jx(), y1 * cs + jx()},
      };
      race_blocks_.push_back({poly, race});
      income_blocks_.push_back({poly, income});
      // House prices mirror historical discrimination: high where
      // income and white fraction are high (paper §1, citing [3]).
      const double bias = config_.bias_strength;
      const double price =
          Clamp01(0.2 + 0.4 * income + 0.25 * bias * race + 0.2 * downtown +
                  0.05 * rng.Normal());
      house_price_blocks_.push_back({poly, price});
    }
  }
}

void SyntheticCity::BuildStreets() {
  Rng rng = MakeRng(3);
  const int64_t w = config_.width, h = config_.height;
  const double cs = config_.cell_km;
  const double city_w = w * cs, city_h = h * cs;

  // Arterial grid: avenues every ~2 cells plus diagonals to downtown.
  for (double x = 0.5 * cs; x < city_w; x += 2.0 * cs) {
    streets_.push_back({{x, 0.0}, {x + rng.Uniform(-0.3, 0.3), city_h}});
  }
  for (double y = 0.5 * cs; y < city_h; y += 2.0 * cs) {
    streets_.push_back({{0.0, y}, {city_w, y + rng.Uniform(-0.3, 0.3)}});
  }
  const geo::Point center{0.45 * city_w, 0.40 * city_h};
  for (int i = 0; i < 6; ++i) {
    const geo::Point edge{rng.Uniform(0.0, city_w), rng.Uniform(0.0, city_h)};
    streets_.push_back({edge, center});
  }

  // Transit follows the densest streets (every other arterial).
  for (size_t i = 0; i < streets_.size(); i += 2) {
    transit_routes_.push_back(streets_[i]);
  }

  // Bikelane investment concentrates in high-income areas (paper §1:
  // transportation data reflects biased policy toward wealthy
  // neighborhoods [40]). Lanes run along northern avenues.
  const double bias = config_.bias_strength;
  for (double x = 1.0 * cs; x < city_w; x += 2.0 * cs) {
    const double y_start = city_h * Clamp01(0.45 * bias + rng.Uniform(-0.1, 0.1));
    bikelanes_.push_back({{x, y_start}, {x, city_h}});
  }
  bikelanes_.push_back(
      {{0.0, 0.75 * city_h}, {city_w, 0.75 * city_h}});

  // Cache densities for the event simulators.
  street_density_ = geo::RasterizeLines(streets_, grid_);
  const float street_max = std::max(1.0f, street_density_.AbsMax());
  for (int64_t i = 0; i < street_density_.size(); ++i) {
    street_density_[i] /= street_max;
  }
  bikelane_density_ = geo::RasterizeLines(bikelanes_, grid_);
  const float lane_max = std::max(1.0f, bikelane_density_.AbsMax());
  for (int64_t i = 0; i < bikelane_density_.size(); ++i) {
    bikelane_density_[i] /= lane_max;
  }
}

void SyntheticCity::BuildWeather() {
  Rng rng = MakeRng(4);
  const int64_t t_max = config_.hours;
  temperature_ = Tensor({t_max});
  precipitation_ = Tensor({t_max});
  pressure_ = Tensor({t_max});
  air_quality_ = Tensor({t_max});

  double pressure_walk = 0.0;
  double rain_state = 0.0;  // Markov wet/dry intensity.
  for (int64_t t = 0; t < t_max; ++t) {
    const double day = static_cast<double>(t) / 24.0;
    const double hour = static_cast<double>(t % 24);
    // Seasonal + diurnal temperature (degrees C mapped later to [0,1]
    // by the pipeline's max-abs scaling; keep raw units here).
    const double seasonal = 12.0 + 8.0 * std::sin(2.0 * M_PI * day / 365.0);
    const double diurnal = 4.0 * std::sin(2.0 * M_PI * (hour - 9.0) / 24.0);
    temperature_[t] =
        static_cast<float>(seasonal + diurnal + rng.Normal(0.0, 0.8));

    // Rain: two-state Markov process with exponential intensity.
    if (rain_state <= 0.0) {
      if (rng.Bernoulli(0.04)) rain_state = rng.Uniform(0.5, 3.0);
    } else {
      rain_state = rng.Bernoulli(0.25) ? 0.0 : rain_state * rng.Uniform(0.6, 1.1);
    }
    precipitation_[t] = static_cast<float>(std::max(0.0, rain_state));

    // Pressure: mean-reverting random walk around 1013 hPa.
    pressure_walk = 0.98 * pressure_walk + rng.Normal(0.0, 0.6);
    pressure_[t] = static_cast<float>(1013.0 + pressure_walk -
                                      0.8 * precipitation_[t]);

    // Air quality index: worse in summer and during calm (high
    // pressure) periods, better when raining.
    air_quality_[t] = static_cast<float>(std::max(
        1.0, 28.0 + 10.0 * std::sin(2.0 * M_PI * day / 365.0) +
                 0.5 * pressure_walk - 3.0 * precipitation_[t] +
                 rng.Normal(0.0, 2.0)));
  }
}

double SyntheticCity::CommuteFactor(int64_t hour) {
  const double h = static_cast<double>(hour % 24);
  const double am = std::exp(-0.5 * (h - 8.0) * (h - 8.0) / (1.5 * 1.5));
  const double pm = std::exp(-0.5 * (h - 17.0) * (h - 17.0) / (2.0 * 2.0));
  return Clamp01(0.1 + 0.9 * std::max(am, pm));
}

double SyntheticCity::NightFactor(int64_t hour) {
  const double h = static_cast<double>(hour % 24);
  // Peak around 22h-2h, wrapping midnight.
  const double d = std::min(std::fabs(h - 23.0), std::fabs(h + 1.0));
  return Clamp01(0.15 + 0.85 * std::exp(-0.5 * d * d / (2.5 * 2.5)));
}

double SyntheticCity::DaytimeFactor(int64_t hour) {
  const double h = static_cast<double>(hour % 24);
  return Clamp01(0.2 + 0.8 * std::exp(-0.5 * (h - 13.0) * (h - 13.0) /
                                      (4.0 * 4.0)));
}

bool SyntheticCity::IsWeekend(int64_t hour) {
  const int64_t day_of_week = (hour / 24) % 7;  // 0 = Monday.
  return day_of_week >= 5;
}

}  // namespace data
}  // namespace equitensor
