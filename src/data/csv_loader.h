#ifndef EQUITENSOR_DATA_CSV_LOADER_H_
#define EQUITENSOR_DATA_CSV_LOADER_H_

#include <istream>
#include <string>
#include <vector>

#include "data/events.h"
#include "tensor/tensor.h"

namespace equitensor {
namespace data {

/// CSV ingestion for real open-data feeds (City of Seattle portal
/// exports and the like), so the alignment pipeline can run on actual
/// data instead of the simulator. RFC-4180-style: quoted fields,
/// doubled quotes, configurable delimiter.
struct CsvOptions {
  char delimiter = ',';
  bool has_header = true;
};

/// Parses an entire stream into rows of fields. Returns false on a
/// malformed quoted field (unterminated quote).
bool ParseCsv(std::istream& input, const CsvOptions& options,
              std::vector<std::vector<std::string>>* rows);

/// Parses one CSV line (no trailing newline) into fields.
bool ParseCsvLine(const std::string& line, char delimiter,
                  std::vector<std::string>* fields);

/// Loads geocoded events from a CSV file with numeric columns for x
/// (km), y (km) and hour index. Rows with non-numeric values in those
/// columns are skipped and counted in `skipped` (may be null).
bool LoadEventsCsv(const std::string& path, int x_column, int y_column,
                   int hour_column, std::vector<Event>* events,
                   int64_t* skipped = nullptr,
                   const CsvOptions& options = {});

/// Loads an hourly scalar series of length `hours` from (hour, value)
/// columns; missing hours become NaN (for the imputation stage),
/// duplicate hours are summed.
bool LoadSeriesCsv(const std::string& path, int hour_column, int value_column,
                   int64_t hours, Tensor* series,
                   const CsvOptions& options = {});

/// Writes a [W, H] field as CSV (`x,y,value` rows) — the export format
/// used to hand EquiTensor slices to GIS tools.
bool WriteFieldCsv(const std::string& path, const Tensor& field);

}  // namespace data
}  // namespace equitensor

#endif  // EQUITENSOR_DATA_CSV_LOADER_H_
