#include "data/preprocess.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.h"

namespace equitensor {
namespace data {

const char* DatasetKindName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kTemporal:
      return "temporal";
    case DatasetKind::kSpatial:
      return "spatial";
    case DatasetKind::kSpatioTemporal:
      return "spatio-temporal";
  }
  return "?";
}

void InjectMissing(Tensor* tensor, double fraction, Rng& rng) {
  ET_CHECK(fraction >= 0.0 && fraction <= 1.0);
  const float nan = std::nanf("");
  for (int64_t i = 0; i < tensor->size(); ++i) {
    if (rng.Bernoulli(fraction)) (*tensor)[i] = nan;
  }
}

int64_t CountMissing(const Tensor& tensor) {
  int64_t count = 0;
  for (int64_t i = 0; i < tensor.size(); ++i) {
    if (std::isnan(tensor[i])) ++count;
  }
  return count;
}

int64_t ImputeLocalAverage(Tensor* tensor) {
  const int rank = tensor->rank();
  ET_CHECK_GE(rank, 2) << "expected channel-first layout [C, ...]";
  const int64_t channels = tensor->dim(0);
  const int64_t per_channel = tensor->size() / channels;

  // Strides of the non-channel axes within one channel block.
  std::vector<int64_t> dims, strides;
  for (int d = 1; d < rank; ++d) dims.push_back(tensor->dim(d));
  strides.assign(dims.size(), 1);
  for (int d = static_cast<int>(dims.size()) - 2; d >= 0; --d) {
    strides[static_cast<size_t>(d)] =
        strides[static_cast<size_t>(d) + 1] * dims[static_cast<size_t>(d) + 1];
  }

  int64_t total_imputed = 0;
  for (int64_t c = 0; c < channels; ++c) {
    float* block = tensor->data() + c * per_channel;
    // Channel mean over valid entries (fallback fill value).
    double valid_sum = 0.0;
    int64_t valid_count = 0;
    for (int64_t i = 0; i < per_channel; ++i) {
      if (!std::isnan(block[i])) {
        valid_sum += block[i];
        ++valid_count;
      }
    }
    const float channel_mean =
        valid_count > 0
            ? static_cast<float>(valid_sum / static_cast<double>(valid_count))
            : 0.0f;

    // Sweep until no progress: each missing cell takes the mean of its
    // valid ±1 neighbors along every non-channel axis.
    bool progressed = true;
    while (progressed) {
      progressed = false;
      std::vector<std::pair<int64_t, float>> fills;
      for (int64_t i = 0; i < per_channel; ++i) {
        if (!std::isnan(block[i])) continue;
        double sum = 0.0;
        int64_t count = 0;
        int64_t rem = i;
        for (size_t d = 0; d < dims.size(); ++d) {
          const int64_t coord = rem / strides[d];
          rem %= strides[d];
          if (coord > 0 && !std::isnan(block[i - strides[d]])) {
            sum += block[i - strides[d]];
            ++count;
          }
          if (coord + 1 < dims[d] && !std::isnan(block[i + strides[d]])) {
            sum += block[i + strides[d]];
            ++count;
          }
        }
        if (count > 0) {
          fills.emplace_back(i, static_cast<float>(sum / count));
        }
      }
      for (const auto& [index, value] : fills) {
        block[index] = value;
        ++total_imputed;
        progressed = true;
      }
    }
    // Anything left (fully disconnected gaps) gets the channel mean.
    for (int64_t i = 0; i < per_channel; ++i) {
      if (std::isnan(block[i])) {
        block[i] = channel_mean;
        ++total_imputed;
      }
    }
  }
  return total_imputed;
}

float MaxAbsScale(Tensor* tensor) {
  const float max_abs = tensor->AbsMax();
  if (max_abs <= 0.0f) return 1.0f;
  for (int64_t i = 0; i < tensor->size(); ++i) (*tensor)[i] /= max_abs;
  return max_abs;
}

float QuantileClipScale(Tensor* tensor, double quantile) {
  ET_CHECK(quantile > 0.0 && quantile <= 1.0);
  std::vector<float> sorted(tensor->data(), tensor->data() + tensor->size());
  std::sort(sorted.begin(), sorted.end());
  const size_t index = std::min(
      sorted.size() - 1,
      static_cast<size_t>(quantile * static_cast<double>(sorted.size())));
  const float q = sorted[index];
  if (q <= 0.0f) return 1.0f;
  for (int64_t i = 0; i < tensor->size(); ++i) {
    const float scaled = (*tensor)[i] / q;
    (*tensor)[i] = scaled > 1.0f ? 1.0f : scaled;
  }
  return q;
}

Tensor Corrupt(const Tensor& tensor, double fraction, Rng& rng,
               float corrupt_value) {
  ET_CHECK(fraction >= 0.0 && fraction <= 1.0);
  Tensor out = tensor;
  for (int64_t i = 0; i < out.size(); ++i) {
    if (rng.Bernoulli(fraction)) out[i] = corrupt_value;
  }
  return out;
}

void FinalizeDataset(AlignedDataset* dataset) {
  ImputeLocalAverage(&dataset->tensor);
  dataset->scale = MaxAbsScale(&dataset->tensor);
}

}  // namespace data
}  // namespace equitensor
