#ifndef EQUITENSOR_DATA_EVENTS_H_
#define EQUITENSOR_DATA_EVENTS_H_

#include <functional>
#include <vector>

#include "geo/grid.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace equitensor {
namespace data {

/// A geocoded, timestamped incident (crime report, 911 dispatch,
/// collision, permit, bikeshare trip start, ...).
struct Event {
  geo::Point location;
  int64_t hour = 0;
};

/// Per-cell per-hour Poisson intensity, indexed by (cx, cy, hour).
using IntensityFn = std::function<double(int64_t cx, int64_t cy, int64_t t)>;

/// Samples a spatio-temporal Poisson process: for every cell and hour,
/// draws Poisson(intensity) events placed uniformly inside the cell.
std::vector<Event> SimulateEvents(const geo::GridSpec& grid, int64_t hours,
                                  const IntensityFn& intensity, Rng& rng);

/// Aggregates events into hourly per-cell counts [W, H, T] (§3.1's 3D
/// alignment: rasterize in space, 1-hour bins in time). Events outside
/// the grid or horizon are dropped.
Tensor EventsToGrid(const std::vector<Event>& events, const geo::GridSpec& grid,
                    int64_t hours);

/// Aggregates events into an hourly count time series [T].
Tensor EventsToSeries(const std::vector<Event>& events, int64_t hours);

/// Spatial density of events irrespective of time: [W, H] counts.
Tensor EventsToDensity(const std::vector<Event>& events,
                       const geo::GridSpec& grid);

/// Draws `count` points with probability proportional to `weight`
/// ([W, H], non-negative), uniform within each chosen cell. Used for
/// POI placement.
std::vector<geo::Point> SampleWeightedPoints(const Tensor& weight,
                                             const geo::GridSpec& grid,
                                             int64_t count, Rng& rng);

}  // namespace data
}  // namespace equitensor

#endif  // EQUITENSOR_DATA_EVENTS_H_
