#ifndef EQUITENSOR_DATA_DATASET_H_
#define EQUITENSOR_DATA_DATASET_H_

#include <string>

#include "tensor/tensor.h"

namespace equitensor {
namespace data {

/// Dimensionality classes of urban datasets (§3.1 of the paper).
enum class DatasetKind {
  kTemporal,        // 1D: varies in time only (weather, air quality)
  kSpatial,         // 2D: varies in space only (road network, POIs)
  kSpatioTemporal,  // 3D: varies in both (collisions, 911 calls)
};

/// Human-readable kind name.
const char* DatasetKindName(DatasetKind kind);

/// A dataset after alignment to the common grid, imputation, and
/// max-abs scaling. Channel-first layouts (the NN convention):
///   kTemporal:        [C, T]
///   kSpatial:         [C, W, H]
///   kSpatioTemporal:  [C, W, H, T]
struct AlignedDataset {
  std::string name;
  DatasetKind kind = DatasetKind::kTemporal;
  Tensor tensor;
  /// Factor the raw values were divided by during max-abs scaling
  /// (multiply back to recover original units).
  float scale = 1.0f;

  int64_t channels() const { return tensor.dim(0); }
};

}  // namespace data
}  // namespace equitensor

#endif  // EQUITENSOR_DATA_DATASET_H_
