#ifndef EQUITENSOR_DATA_CITY_H_
#define EQUITENSOR_DATA_CITY_H_

#include <cstdint>
#include <vector>

#include "geo/grid.h"
#include "geo/rasterize.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace equitensor {
namespace data {

/// Configuration of the synthetic city that stands in for the paper's
/// Seattle study area (see DESIGN.md §2 for the substitution rationale).
struct CityConfig {
  int64_t width = 12;      // grid cells along x
  int64_t height = 10;     // grid cells along y
  double cell_km = 1.0;    // cell edge length
  int64_t hours = 24 * 60; // simulated horizon (default 60 days)
  uint64_t seed = 42;
  /// Strength of the discriminatory couplings injected into the data
  /// (policing bias vs. race, bikeshare investment vs. income, ...).
  double bias_strength = 1.0;
};

/// Latent ground-truth model of the synthetic city. All spatial fields
/// are [W, H] tensors; temporal drivers are [T] tensors. The sensitive
/// attributes (race, income) are organized as block-group polygons so
/// the alignment pipeline exercises proportional-area rasterization
/// exactly as the paper's census data does.
class SyntheticCity {
 public:
  explicit SyntheticCity(const CityConfig& config);

  const CityConfig& config() const { return config_; }
  const geo::GridSpec& grid() const { return grid_; }

  // --- Spatial latent fields ([W, H], values in [0, 1]) ---

  /// Fraction of white residents per cell (sensitive attribute #1).
  const Tensor& race_white_fraction() const { return race_white_; }
  /// Fraction of high-income households per cell (sensitive #2).
  const Tensor& income_high_fraction() const { return income_high_; }
  /// Population / business density.
  const Tensor& density() const { return density_; }
  /// Terrain steepness.
  const Tensor& slope() const { return slope_; }
  /// Proximity to the downtown core (1 at center, decaying outward).
  const Tensor& downtown() const { return downtown_; }
  /// Street-network density (derived from the street polylines).
  const Tensor& street_density() const { return street_density_; }
  /// Bikelane presence (derived from the bikelane polylines).
  const Tensor& bikelane_density() const { return bikelane_density_; }

  // --- Block groups (census-style polygons carrying the sensitive
  //     attributes; used by the alignment pipeline) ---
  const std::vector<geo::ValuedRegion>& race_block_groups() const {
    return race_blocks_;
  }
  const std::vector<geo::ValuedRegion>& income_block_groups() const {
    return income_blocks_;
  }
  const std::vector<geo::ValuedRegion>& house_price_regions() const {
    return house_price_blocks_;
  }

  // --- Street-network geometry ---
  const std::vector<geo::Polyline>& streets() const { return streets_; }
  const std::vector<geo::Polyline>& transit_routes() const {
    return transit_routes_;
  }
  const std::vector<geo::Polyline>& bikelanes() const { return bikelanes_; }

  // --- Temporal drivers ([T]) ---
  const Tensor& temperature() const { return temperature_; }
  const Tensor& precipitation() const { return precipitation_; }
  const Tensor& pressure() const { return pressure_; }
  const Tensor& air_quality() const { return air_quality_; }

  /// Commute-shaped diurnal factor in [0, 1]: peaks at 8h and 17h.
  static double CommuteFactor(int64_t hour);
  /// Nightlife-shaped diurnal factor in [0, 1]: peaks late evening.
  static double NightFactor(int64_t hour);
  /// Daytime activity factor in [0, 1]: broad midday peak.
  static double DaytimeFactor(int64_t hour);
  /// Weekend indicator given the simulation hour (week starts Monday).
  static bool IsWeekend(int64_t hour);

  /// Deterministic per-purpose RNG forked from the city seed.
  Rng MakeRng(uint64_t stream) const;

 private:
  void BuildSpatialFields();
  void BuildBlockGroups();
  void BuildStreets();
  void BuildWeather();

  CityConfig config_;
  geo::GridSpec grid_;

  Tensor race_white_;
  Tensor income_high_;
  Tensor density_;
  Tensor slope_;
  Tensor downtown_;
  Tensor street_density_;
  Tensor bikelane_density_;

  std::vector<geo::ValuedRegion> race_blocks_;
  std::vector<geo::ValuedRegion> income_blocks_;
  std::vector<geo::ValuedRegion> house_price_blocks_;

  std::vector<geo::Polyline> streets_;
  std::vector<geo::Polyline> transit_routes_;
  std::vector<geo::Polyline> bikelanes_;

  Tensor temperature_;
  Tensor precipitation_;
  Tensor pressure_;
  Tensor air_quality_;
};

}  // namespace data
}  // namespace equitensor

#endif  // EQUITENSOR_DATA_CITY_H_
