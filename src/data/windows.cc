#include "data/windows.h"

#include "tensor/tensor_ops.h"
#include "util/check.h"

namespace equitensor {
namespace data {

WindowSampler::WindowSampler(const std::vector<AlignedDataset>* datasets,
                             int64_t window, int64_t hours_hint)
    : datasets_(datasets), window_(window), hours_(-1) {
  ET_CHECK(datasets != nullptr);
  ET_CHECK(!datasets->empty());
  ET_CHECK_GT(window, 0);
  for (const AlignedDataset& ds : *datasets) {
    const int64_t t = ds.kind == DatasetKind::kTemporal ? ds.tensor.dim(1)
                      : ds.kind == DatasetKind::kSpatioTemporal
                          ? ds.tensor.dim(3)
                          : -1;
    if (t >= 0) {
      if (hours_ < 0) {
        hours_ = t;
      } else {
        ET_CHECK_EQ(hours_, t) << "datasets disagree on horizon";
      }
    }
  }
  if (hours_ < 0) hours_ = hours_hint;
  ET_CHECK_GT(hours_, 0)
      << "need a time-varying dataset or an explicit hours_hint";
  ET_CHECK_GE(hours_, window_);
}

Tensor WindowSampler::MakeBatchFor(int dataset_index,
                                   const std::vector<int64_t>& starts) const {
  ET_CHECK(dataset_index >= 0 &&
           dataset_index < static_cast<int>(datasets_->size()));
  ET_CHECK(!starts.empty());
  const AlignedDataset& ds = (*datasets_)[static_cast<size_t>(dataset_index)];
  const int64_t n = static_cast<int64_t>(starts.size());
  const Tensor& t = ds.tensor;

  switch (ds.kind) {
    case DatasetKind::kTemporal: {
      const int64_t c = t.dim(0);
      Tensor out({n, c, window_});
      for (int64_t b = 0; b < n; ++b) {
        const int64_t start = starts[static_cast<size_t>(b)];
        ET_CHECK(start >= 0 && start + window_ <= hours_);
        for (int64_t ch = 0; ch < c; ++ch) {
          const float* src = t.data() + ch * hours_ + start;
          float* dst = out.data() + (b * c + ch) * window_;
          std::copy(src, src + window_, dst);
        }
      }
      return out;
    }
    case DatasetKind::kSpatial: {
      // Time-invariant: replicate across the batch.
      std::vector<int64_t> shape = {n};
      for (int d = 0; d < t.rank(); ++d) shape.push_back(t.dim(d));
      Tensor out(shape);
      for (int64_t b = 0; b < n; ++b) {
        std::copy(t.data(), t.data() + t.size(), out.data() + b * t.size());
      }
      return out;
    }
    case DatasetKind::kSpatioTemporal: {
      const int64_t c = t.dim(0), w = t.dim(1), h = t.dim(2);
      Tensor out({n, c, w, h, window_});
      for (int64_t b = 0; b < n; ++b) {
        const int64_t start = starts[static_cast<size_t>(b)];
        ET_CHECK(start >= 0 && start + window_ <= hours_);
        for (int64_t row = 0; row < c * w * h; ++row) {
          const float* src = t.data() + row * hours_ + start;
          float* dst = out.data() + (b * c * w * h + row) * window_;
          std::copy(src, src + window_, dst);
        }
      }
      return out;
    }
  }
  ET_CHECK(false);
  return Tensor();
}

std::vector<Tensor> WindowSampler::MakeBatch(
    const std::vector<int64_t>& starts) const {
  std::vector<Tensor> batch;
  batch.reserve(datasets_->size());
  for (int i = 0; i < static_cast<int>(datasets_->size()); ++i) {
    batch.push_back(MakeBatchFor(i, starts));
  }
  return batch;
}

std::vector<int64_t> WindowSampler::SampleStarts(int64_t batch_size,
                                                 Rng& rng) const {
  std::vector<int64_t> starts;
  starts.reserve(static_cast<size_t>(batch_size));
  for (int64_t i = 0; i < batch_size; ++i) {
    starts.push_back(static_cast<int64_t>(
        rng.UniformInt(static_cast<uint64_t>(NumWindows()))));
  }
  return starts;
}

std::vector<int64_t> WindowSampler::NonOverlappingStarts() const {
  std::vector<int64_t> starts;
  for (int64_t start = 0; start + window_ <= hours_; start += window_) {
    starts.push_back(start);
  }
  return starts;
}

}  // namespace data
}  // namespace equitensor
