#include "data/events.h"

#include "util/check.h"

namespace equitensor {
namespace data {

std::vector<Event> SimulateEvents(const geo::GridSpec& grid, int64_t hours,
                                  const IntensityFn& intensity, Rng& rng) {
  std::vector<Event> events;
  for (int64_t t = 0; t < hours; ++t) {
    for (int64_t cx = 0; cx < grid.width; ++cx) {
      for (int64_t cy = 0; cy < grid.height; ++cy) {
        const double lambda = intensity(cx, cy, t);
        if (lambda <= 0.0) continue;
        const int count = rng.Poisson(lambda);
        const geo::Rect bounds = grid.CellBounds(cx, cy);
        for (int e = 0; e < count; ++e) {
          events.push_back({{rng.Uniform(bounds.min_x, bounds.max_x),
                             rng.Uniform(bounds.min_y, bounds.max_y)},
                            t});
        }
      }
    }
  }
  return events;
}

Tensor EventsToGrid(const std::vector<Event>& events, const geo::GridSpec& grid,
                    int64_t hours) {
  ET_CHECK_GT(hours, 0);
  Tensor out({grid.width, grid.height, hours});
  for (const Event& event : events) {
    if (event.hour < 0 || event.hour >= hours) continue;
    const auto cell = grid.CellOf(event.location);
    if (!cell) continue;
    out[(cell->first * grid.height + cell->second) * hours + event.hour] +=
        1.0f;
  }
  return out;
}

Tensor EventsToSeries(const std::vector<Event>& events, int64_t hours) {
  ET_CHECK_GT(hours, 0);
  Tensor out({hours});
  for (const Event& event : events) {
    if (event.hour < 0 || event.hour >= hours) continue;
    out[event.hour] += 1.0f;
  }
  return out;
}

Tensor EventsToDensity(const std::vector<Event>& events,
                       const geo::GridSpec& grid) {
  Tensor out({grid.width, grid.height});
  for (const Event& event : events) {
    const auto cell = grid.CellOf(event.location);
    if (!cell) continue;
    out[cell->first * grid.height + cell->second] += 1.0f;
  }
  return out;
}

std::vector<geo::Point> SampleWeightedPoints(const Tensor& weight,
                                             const geo::GridSpec& grid,
                                             int64_t count, Rng& rng) {
  ET_CHECK_EQ(weight.rank(), 2);
  ET_CHECK_EQ(weight.dim(0), grid.width);
  ET_CHECK_EQ(weight.dim(1), grid.height);
  // Build the cumulative distribution over cells.
  std::vector<double> cdf(static_cast<size_t>(weight.size()));
  double total = 0.0;
  for (int64_t i = 0; i < weight.size(); ++i) {
    ET_CHECK_GE(weight[i], 0.0f) << "weights must be non-negative";
    total += weight[i];
    cdf[static_cast<size_t>(i)] = total;
  }
  std::vector<geo::Point> points;
  if (total <= 0.0) return points;
  points.reserve(static_cast<size_t>(count));
  for (int64_t n = 0; n < count; ++n) {
    const double u = rng.Uniform() * total;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    const int64_t idx = static_cast<int64_t>(it - cdf.begin());
    const int64_t cx = idx / grid.height;
    const int64_t cy = idx % grid.height;
    const geo::Rect bounds = grid.CellBounds(cx, cy);
    points.push_back({rng.Uniform(bounds.min_x, bounds.max_x),
                      rng.Uniform(bounds.min_y, bounds.max_y)});
  }
  return points;
}

}  // namespace data
}  // namespace equitensor
