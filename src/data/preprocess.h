#ifndef EQUITENSOR_DATA_PREPROCESS_H_
#define EQUITENSOR_DATA_PREPROCESS_H_

#include <cstdint>

#include "data/dataset.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace equitensor {
namespace data {

/// Marks a random fraction of elements as missing (NaN). Used by the
/// simulator to mimic the gaps in real open-data feeds.
void InjectMissing(Tensor* tensor, double fraction, Rng& rng);

/// Number of NaN elements in a tensor.
int64_t CountMissing(const Tensor& tensor);

/// Replaces missing (NaN) values with the local average of their
/// axis-neighbors (§3.1: "impute missing values with local average").
/// The first axis is treated as the channel axis and is not a
/// neighbor direction. Repeated sweeps fill connected gaps; any cell
/// still missing afterwards receives the channel's global mean (or 0
/// for an all-missing channel). Returns the number of imputed values.
int64_t ImputeLocalAverage(Tensor* tensor);

/// Max-absolute scaling to [-1, 1] (and [0, 1] for the non-negative
/// urban counts, §3.1). Divides in place by max|x| and returns that
/// factor; all-zero tensors are left unchanged with factor 1.
float MaxAbsScale(Tensor* tensor);

/// Scales by the q-th quantile (0 < q <= 1) of the values and clips to
/// [0, 1]. Used for the sparse Poisson *targets*, where max-abs
/// scaling would be dominated by a single outlier count and squash the
/// distribution toward 0; the paper's target MAE magnitudes (~0.1-0.4)
/// imply this denser normalization. Returns the divisor.
float QuantileClipScale(Tensor* tensor, double quantile = 0.995);

/// Denoising-autoencoder corruption (§3.2): returns a copy with
/// `fraction` of the values set to `corrupt_value` (-1 in the paper)
/// at uniformly random positions.
Tensor Corrupt(const Tensor& tensor, double fraction, Rng& rng,
               float corrupt_value = -1.0f);

/// Full per-dataset pipeline: impute then scale, recording the factor.
void FinalizeDataset(AlignedDataset* dataset);

}  // namespace data
}  // namespace equitensor

#endif  // EQUITENSOR_DATA_PREPROCESS_H_
