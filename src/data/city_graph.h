#ifndef EQUITENSOR_DATA_CITY_GRAPH_H_
#define EQUITENSOR_DATA_CITY_GRAPH_H_

#include "data/city.h"
#include "tensor/tensor.h"

namespace equitensor {
namespace data {

/// Builds the city's cell graph for graph-convolutional models (the
/// paper's §6 future-work direction): nodes are grid cells in
/// row-major [cx][cy] order; 4-neighbor edges are weighted by the
/// street connectivity between the two cells, so propagation follows
/// the road network rather than the raw raster.
///
/// Edge weight = base_weight + street_scale * mean(street density of
/// the two endpoints). Returns a dense symmetric adjacency
/// [W*H, W*H] with zero diagonal.
Tensor BuildCellAdjacency(const SyntheticCity& city, double base_weight = 0.2,
                          double street_scale = 1.0);

/// Flattens a [C, W, H] (or [W, H] -> C=1) spatial tensor into GCN
/// node features [W*H, C].
Tensor FieldToNodeFeatures(const Tensor& field);

/// Inverse of FieldToNodeFeatures for single-channel outputs:
/// [W*H, 1] or [W*H] -> [W, H].
Tensor NodeValuesToField(const Tensor& node_values, int64_t w, int64_t h);

}  // namespace data
}  // namespace equitensor

#endif  // EQUITENSOR_DATA_CITY_GRAPH_H_
