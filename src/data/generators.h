#ifndef EQUITENSOR_DATA_GENERATORS_H_
#define EQUITENSOR_DATA_GENERATORS_H_

#include <memory>
#include <string>
#include <vector>

#include "data/city.h"
#include "data/dataset.h"

namespace equitensor {
namespace data {

/// Downstream prediction tasks evaluated in the paper (Table 1).
enum class Task { kBikeshare, kCrime, kFire, kBikeCount };

const char* TaskName(Task task);

/// Everything the experiments need: the 23 aligned input datasets of
/// Table 2, the sensitive-attribute maps, and the four downstream task
/// targets of Table 1 — all generated from one SyntheticCity.
struct UrbanDataBundle {
  CityConfig config;
  std::shared_ptr<SyntheticCity> city;

  /// The 23 exogenous input datasets (aligned, imputed, scaled).
  std::vector<AlignedDataset> datasets;

  /// Latent incident-hotspot intensity [W, H, T]: a bursty process
  /// that both the 911-call input and the crime/fire targets observe.
  /// It is what makes real-time exogenous feeds (call data) predictive
  /// beyond the target's own history. Exposed for tests.
  Tensor hotspot;

  /// Sensitive attribute maps [W, H] in [0, 1]: fraction of white
  /// residents / fraction of high-income households per cell
  /// (rasterized from block groups by area-weighted averaging).
  Tensor race_map;
  Tensor income_map;

  /// Task targets. 3D targets are [W, H, T] max-abs scaled to [0, 1]
  /// with the divisor kept alongside; bike_count is a raw hourly count
  /// series [T] at the bridge cell.
  Tensor bikeshare;
  float bikeshare_scale = 1.0f;
  Tensor crime;
  float crime_scale = 1.0f;
  Tensor fire;
  float fire_scale = 1.0f;
  Tensor bike_count;
  int64_t bridge_cx = 0;
  int64_t bridge_cy = 0;

  /// Index of a dataset by name; aborts if absent.
  int IndexOf(const std::string& name) const;

  /// Indices of the hand-selected "oracle" features for a task
  /// (Table 1's "known predictive features" column).
  std::vector<int> OracleIndices(Task task) const;

  /// The scaled target tensor for a 3D task.
  const Tensor& Target3d(Task task) const;
};

/// Builds the full synthetic-Seattle bundle. Deterministic in
/// config.seed. See DESIGN.md §2 for how each generated dataset maps
/// to the paper's Table 2 source.
UrbanDataBundle BuildSeattleAnalog(const CityConfig& config);

}  // namespace data
}  // namespace equitensor

#endif  // EQUITENSOR_DATA_GENERATORS_H_
