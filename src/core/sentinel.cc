#include "core/sentinel.h"

#include <cmath>
#include <sstream>

#include "nn/serialize.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace equitensor {
namespace core {

const char kDiagnosticBundleKind[] = "equitensor.diagnostic_bundle";

const char* NanCheckModeName(NanCheckMode mode) {
  switch (mode) {
    case NanCheckMode::kOff:
      return "off";
    case NanCheckMode::kEpoch:
      return "epoch";
    case NanCheckMode::kStep:
      return "step";
  }
  return "?";
}

bool ParseNanCheckMode(const std::string& text, NanCheckMode* mode) {
  if (text == "off") {
    *mode = NanCheckMode::kOff;
  } else if (text == "epoch") {
    *mode = NanCheckMode::kEpoch;
  } else if (text == "step") {
    *mode = NanCheckMode::kStep;
  } else {
    return false;
  }
  return true;
}

TensorSummary SummarizeTensor(const Tensor& tensor) {
  TensorSummary summary;
  summary.size = tensor.size();
  double sum = 0.0;
  int64_t finite = 0;
  for (int64_t i = 0; i < tensor.size(); ++i) {
    const float v = tensor[i];
    if (!std::isfinite(v)) {
      ++summary.nonfinite;
      continue;
    }
    if (finite == 0 || v < summary.min) summary.min = v;
    if (finite == 0 || v > summary.max) summary.max = v;
    sum += v;
    ++finite;
  }
  if (finite > 0) summary.mean = sum / static_cast<double>(finite);
  return summary;
}

std::string TensorSummary::ToString() const {
  std::ostringstream os;
  os << "min=" << min << " max=" << max << " mean=" << mean
     << " nonfinite=" << nonfinite << "/" << size;
  return os.str();
}

namespace {

bool HasNonfinite(const Tensor& tensor) {
  for (int64_t i = 0; i < tensor.size(); ++i) {
    if (!std::isfinite(tensor[i])) return true;
  }
  return false;
}

}  // namespace

NumericsSentinel::NumericsSentinel(NanCheckMode mode) : mode_(mode) {}

NumericsSentinel::~NumericsSentinel() {
  if (armed_) ag::HookRegistry::Global().Remove(hook_id_);
}

void NumericsSentinel::Arm() {
  if (mode_ != NanCheckMode::kStep || armed_) return;
  hook_id_ = ag::HookRegistry::Global().Add([this](const ag::HookContext& ctx) {
    if (tripped_) return;
    if (!HasNonfinite(ctx.tensor)) return;
    Record(ctx.point, ag::HookPhaseName(ctx.phase), ctx.tensor);
  });
  armed_ = true;
}

void NumericsSentinel::SetPosition(int64_t epoch, int64_t step) {
  epoch_ = epoch;
  step_ = step;
}

void NumericsSentinel::Record(const std::string& point, const char* phase,
                              const Tensor& tensor) {
  tripped_ = true;
  trip_.point = point;
  trip_.phase = phase;
  trip_.summary = SummarizeTensor(tensor);
  trip_.snapshot = tensor;
  trip_.epoch = epoch_;
  trip_.step = step_;
  ET_METRIC_COUNTER_ADD("sentinel.trips", 1);
}

bool NumericsSentinel::CheckParameters(
    const std::string& prefix, const std::vector<nn::NamedParameter>& params) {
  if (tripped_) return false;
  for (const nn::NamedParameter& named : params) {
    if (!HasNonfinite(named.param.value())) continue;
    Record(prefix + named.name, "parameter", named.param.value());
    return true;
  }
  return false;
}

bool NumericsSentinel::CheckScalar(const std::string& name, double value) {
  if (tripped_ || std::isfinite(value)) return false;
  Record(name, "loss", Tensor::Scalar(static_cast<float>(value)));
  return true;
}

const SentinelTrip& NumericsSentinel::trip() const {
  ET_CHECK(tripped_) << "sentinel has not tripped";
  return trip_;
}

std::string NumericsSentinel::TripMessage() const {
  if (!tripped_) return "";
  std::ostringstream os;
  os << "non-finite values in " << trip_.phase << " at '" << trip_.point
     << "' (epoch " << trip_.epoch << ", step " << trip_.step << "): "
     << trip_.summary.ToString();
  return os.str();
}

bool NumericsSentinel::WriteBundle(
    const std::string& path,
    const std::vector<std::string>& telemetry_tail) const {
  if (!tripped_) return false;
  nn::Checkpoint bundle;
  bundle.metadata.emplace_back("diag.kind", kDiagnosticBundleKind);
  bundle.metadata.emplace_back("diag.point", trip_.point);
  bundle.metadata.emplace_back("diag.phase", trip_.phase);
  bundle.metadata.emplace_back("diag.epoch", nn::EncodeI64(trip_.epoch));
  bundle.metadata.emplace_back("diag.step", nn::EncodeI64(trip_.step));
  bundle.metadata.emplace_back("diag.summary", trip_.summary.ToString());
  std::string tail;
  for (const std::string& line : telemetry_tail) {
    tail += line;
    tail += '\n';
  }
  bundle.metadata.emplace_back("diag.telemetry_tail", tail);
  bundle.tensors.emplace_back("offending", trip_.snapshot);
  if (!nn::SaveCheckpoint(path, bundle)) {
    ET_LOG(Warning) << "failed to write diagnostic bundle to " << path;
    return false;
  }
  ET_LOG(Info) << "wrote diagnostic bundle to " << path;
  return true;
}

}  // namespace core
}  // namespace equitensor
