#ifndef EQUITENSOR_CORE_TELEMETRY_H_
#define EQUITENSOR_CORE_TELEMETRY_H_

#include <cstdint>
#include <fstream>
#include <ostream>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/metrics.h"
#include "util/table.h"
#include "util/trace.h"

namespace equitensor {
namespace core {

struct EpochLog;
class TelemetryServer;

/// JSONL schema version stamped into every epoch record and the run
/// summary. v2 added per-layer stats, adv_recon_balance, and the epoch
/// records' own schema_version field (DESIGN.md §10/§11).
inline constexpr int64_t kTelemetrySchemaVersion = 2;

/// Immutable facts about a training run, stamped into every telemetry
/// record. Filled by EquiTensorTrainer::SetTelemetry from its config.
struct RunContext {
  std::string fairness = "none";
  std::string weighting = "none";
  double lambda = 0.0;
  double alpha = 0.0;
  int threads = 1;
  int64_t epochs_total = 0;
  std::vector<std::string> dataset_names;
};

/// Training observability sinks (DESIGN.md §10): a machine-readable
/// JSONL stream (one object per epoch plus a final run summary) and a
/// human progress table built on util/table. Either sink is optional;
/// with neither enabled every hook is a cheap no-op.
///
/// The JSONL field names are a STABILITY CONTRACT consumed by
/// tools/plot_csv --jsonl and the BENCH_*.json tooling — extend the
/// schema by adding fields, never by renaming or removing them.
class TrainTelemetry {
 public:
  TrainTelemetry() = default;
  ~TrainTelemetry();

  TrainTelemetry(const TrainTelemetry&) = delete;
  TrainTelemetry& operator=(const TrainTelemetry&) = delete;

  /// Opens (truncates) the JSONL sink. Returns false on I/O failure.
  bool OpenJsonl(const std::string& path);

  /// Streams one human progress line per epoch to `os` (and the full
  /// boxed table at Finish). `os` must outlive this object.
  void EnableProgress(std::ostream* os);

  /// Mirrors every epoch into a live TelemetryServer (DESIGN.md §12):
  /// OnEpoch publishes a /status snapshot and, when the epoch carried a
  /// fairness audit, the bounded /fairness history. The server must
  /// outlive this object; pass nullptr to detach.
  void AttachServer(TelemetryServer* server);

  /// Marks the run unhealthy (numerics-sentinel trip): flips the
  /// attached server's /healthz to 503 with `detail`, and flushes a
  /// final health record to the JSONL sink so the state survives the
  /// imminent abort. The run summary's "health" field reports the
  /// detail instead of "ok".
  void NoteUnhealthy(const std::string& detail);

  void set_context(RunContext context) { context_ = std::move(context); }
  const RunContext& context() const { return context_; }

  /// Appends one epoch record to every enabled sink; flushes the
  /// JSONL stream so a killed run keeps its completed epochs.
  void OnEpoch(const EpochLog& log);

  /// Writes the final run-summary record (git revision, thread count,
  /// kernel timings from the trace layer, merged metrics) and the
  /// boxed progress table. Call once, after training.
  void Finish(double total_seconds, int64_t epochs_completed);

  /// The most recent serialized JSONL records (oldest first, capped at
  /// kRecentRecordCap) — the numerics sentinel folds them into its
  /// post-mortem diagnostic bundle. Maintained even when no JSONL sink
  /// is open.
  std::vector<std::string> RecentRecords() const;

  static constexpr size_t kRecentRecordCap = 32;

  /// Schema builders, exposed for the round-trip tests.
  static JsonValue EpochToJson(const EpochLog& log, const RunContext& context);
  static JsonValue RunSummaryToJson(const RunContext& context,
                                    double total_seconds,
                                    int64_t epochs_completed,
                                    const std::vector<TraceStats>& kernels,
                                    const MetricsSnapshot& metrics);

 private:
  /// Appends one serialized record to the bounded recency ring.
  void RememberRecord(std::string line);

  RunContext context_;
  TelemetryServer* server_ = nullptr;
  bool healthy_ = true;
  std::string health_detail_;
  /// Per-epoch fairness entries for the /fairness endpoint, bounded at
  /// kFairnessHistoryCap (oldest dropped first).
  std::vector<JsonValue> fairness_history_;
  static constexpr size_t kFairnessHistoryCap = 512;
  std::vector<std::string> recent_records_;
  std::ofstream jsonl_;
  bool jsonl_open_ = false;
  std::ostream* progress_ = nullptr;
  bool progress_header_printed_ = false;
  std::vector<std::vector<std::string>> progress_rows_;
};

}  // namespace core
}  // namespace equitensor

#endif  // EQUITENSOR_CORE_TELEMETRY_H_
