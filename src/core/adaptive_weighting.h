#ifndef EQUITENSOR_CORE_ADAPTIVE_WEIGHTING_H_
#define EQUITENSOR_CORE_ADAPTIVE_WEIGHTING_H_

#include <cstdint>
#include <vector>

namespace equitensor {
namespace core {

/// Which per-dataset loss-weighting scheme the trainer applies (§3.3).
enum class WeightingMode {
  kNone,         // Equal weights (the plain core model, Eq. 1).
  kOurs,         // Progress relative to per-dataset optimal loss (Eq. 2-3).
  kDwa,          // Dynamic Weight Average of Liu et al. [27] (comparator).
  kUncertainty,  // Learned homoscedastic-uncertainty weights of Kendall
                 // et al. [25]: L = Σ exp(-s_i)·L_i + s_i with trainable
                 // s_i. Handled inside the trainer (the weights are
                 // parameters, not a rule); AdaptiveWeighter only
                 // mirrors them for logging.
};

const char* WeightingModeName(WeightingMode mode);

/// Complete serializable state of an AdaptiveWeighter, captured for
/// training-state checkpoints. Restoring it resumes the weight
/// trajectory exactly where it left off.
struct WeighterState {
  std::vector<double> weights;
  std::vector<double> optimal_losses;  // kOurs; empty otherwise
  std::vector<double> prev_losses;     // kDwa ring: epoch t-1
  std::vector<double> prev2_losses;    // kDwa ring: epoch t-2
  int64_t epochs_seen = 0;
};

/// Maintains the per-dataset loss weights w_i(t). Weights start at 1,
/// always sum to n (softmax times n), and are updated once per epoch
/// from that epoch's early-step mean losses (§3.3: the mean loss of
/// the first 50 steps of each epoch).
class AdaptiveWeighter {
 public:
  AdaptiveWeighter(WeightingMode mode, int64_t dataset_count, double alpha);

  /// Required before the first Update() in kOurs mode: L(opt)_i, the
  /// reconstruction error of a CDAE trained on dataset i alone.
  void SetOptimalLosses(std::vector<double> optimal_losses);

  /// Feeds one epoch's mean per-dataset losses and recomputes weights.
  void Update(const std::vector<double>& epoch_losses);

  const std::vector<double>& weights() const { return weights_; }
  WeightingMode mode() const { return mode_; }
  double alpha() const { return alpha_; }

  /// Snapshots the full weighter state for checkpointing.
  WeighterState GetState() const;

  /// Restores a GetState() snapshot. Returns false (state unchanged)
  /// when the vectors don't match this weighter's dataset count.
  bool SetState(const WeighterState& state);

 private:
  void SoftmaxWeights(const std::vector<double>& scores);

  WeightingMode mode_;
  int64_t dataset_count_;
  double alpha_;
  std::vector<double> weights_;
  std::vector<double> optimal_losses_;  // kOurs
  // kDwa reads only the previous two epochs, so the history is a
  // two-deep ring (an append-forever vector grew without bound on
  // long runs).
  std::vector<double> prev_losses_;
  std::vector<double> prev2_losses_;
  int64_t epochs_seen_ = 0;
};

}  // namespace core
}  // namespace equitensor

#endif  // EQUITENSOR_CORE_ADAPTIVE_WEIGHTING_H_
