#ifndef EQUITENSOR_CORE_EQUITENSOR_H_
#define EQUITENSOR_CORE_EQUITENSOR_H_

#include <memory>
#include <string>
#include <vector>

#include "core/adaptive_weighting.h"
#include "core/sentinel.h"
#include "data/windows.h"
#include "models/adversary.h"
#include "models/cdae.h"
#include "nn/optimizer.h"

namespace equitensor {
namespace core {

/// How (and whether) sensitive information is removed during training.
enum class FairnessMode {
  kNone,          // Plain core integrative model (§3.2).
  kAdversarial,   // Alternating adversary, Eq. 4/5 (§3.4). Combine with
                  // CdaeConfig::disentangle for the full EquiTensor.
  kGradReversal,  // Fair-CDAE baseline [17, 50]: joint prediction head
                  // behind a gradient-reversal layer (§4.3).
};

const char* FairnessModeName(FairnessMode mode);

/// End-to-end training configuration for an EquiTensor (or one of its
/// ablations/baselines — the core model is FairnessMode::kNone with
/// WeightingMode::kNone).
struct EquiTensorConfig {
  models::CdaeConfig cdae;

  WeightingMode weighting = WeightingMode::kNone;
  double alpha = 3.0;  // Eq. 2 temperature.
  /// Epochs/steps for the single-dataset CDAEs that estimate L(opt)_i
  /// in WeightingMode::kOurs.
  int64_t opt_loss_epochs = 2;
  int64_t opt_loss_steps_per_epoch = 10;
  /// When non-empty (size = dataset count), skips L(opt) estimation and
  /// uses these values directly — lets an alpha sweep share one
  /// estimation pass.
  std::vector<double> precomputed_optimal_losses;

  FairnessMode fairness = FairnessMode::kNone;
  double lambda = 1.0;  // Eq. 5 tradeoff.

  int64_t epochs = 6;
  int64_t steps_per_epoch = 20;
  int64_t batch_size = 4;
  /// Steps per epoch whose mean loss feeds adaptive weighting (the
  /// paper uses the first 50 steps; clipped to steps_per_epoch).
  int64_t weighting_probe_steps = 50;
  nn::AdamOptions optimizer;
  uint64_t seed = 7;
};

/// Per-parameter health statistics (DESIGN.md §11), collected on the
/// last step of an epoch when layer-stats streaming is enabled — the
/// signals behind the paper's Fig. 5 weight curves and Table 4
/// adversary results, per named parameter instead of per run.
struct LayerStat {
  std::string name;           // e.g. "model.enc0.conv0.weight"
  double grad_norm = 0.0;     // L2 of the gradient before the update
  double weight_norm = 0.0;   // L2 of the parameter before the update
  double update_ratio = 0.0;  // ||applied update|| / (||weight|| + eps)
};

/// Per-epoch training telemetry (drives Figures 4 and 5, and the
/// JSONL epoch records of core/telemetry).
struct EpochLog {
  int64_t epoch = 0;
  std::vector<double> dataset_losses;  // mean early-step MAE per dataset
  std::vector<double> weights;         // w_i(t) used during this epoch
  double total_loss = 0.0;             // unweighted sum of dataset losses
  double adversary_loss = 0.0;         // L_A (0 when fairness is off)
  double wall_seconds = 0.0;           // wall time of this epoch
  int64_t peak_rss_bytes = 0;          // process peak RSS after the epoch
  /// adversary_loss / max(total_loss, eps): the adversary-vs-
  /// reconstruction balance adversarial training must hold (§3.4).
  double adv_recon_balance = 0.0;
  std::vector<LayerStat> layer_stats;  // empty unless streaming enabled
  /// Live fairness audit (DESIGN.md §12, streamed to /fairness and
  /// the JSONL sink): Pearson correlation of cell-mean Z with the
  /// sensitive map, and the demographic-parity gap of cell-mean Z.
  /// Only filled when the trainer holds a sensitive map.
  bool fairness_audited = false;
  double fairness_correlation = 0.0;
  double parity_gap = 0.0;
};

class TrainTelemetry;

/// Trains the EquiTensor model on a set of aligned datasets and
/// materializes the integrated representation Z.
class EquiTensorTrainer {
 public:
  /// `datasets` must outlive the trainer. `sensitive_map` ([W, H]) is
  /// required when fairness or disentangling is enabled.
  EquiTensorTrainer(EquiTensorConfig config,
                    const std::vector<data::AlignedDataset>* datasets,
                    const Tensor* sensitive_map);

  /// Runs the full training loop (including L(opt) estimation when
  /// adaptive weighting is on). Idempotent per instance: call once.
  /// After LoadTrainingState() it continues from the stored epoch and
  /// the remaining epochs are bitwise-identical to an uninterrupted
  /// run with the same config (the resume determinism contract,
  /// DESIGN.md §9).
  void Train();

  /// Attaches an observability sink (core/telemetry.h): fills its
  /// RunContext from this trainer's config and streams one record per
  /// epoch during Train(). The sink must outlive the trainer; pass
  /// nullptr to detach. Call Finish() on the sink yourself after
  /// Train() returns.
  void SetTelemetry(TrainTelemetry* telemetry);

  /// Enables periodic checkpointing: after every `every` completed
  /// epochs (and after the final one) Train() atomically writes the
  /// full training state to `path`. `every` <= 0 disables.
  void SetCheckpointing(std::string path, int64_t every);

  /// Streams per-parameter health statistics (grad norm, weight norm,
  /// update/weight ratio) into EpochLog::layer_stats, collected on the
  /// last step of every epoch. Off by default: collection walks every
  /// parameter tensor, so it is not free.
  void SetLayerStatsEnabled(bool enabled);

  /// Installs the numerics sentinel (--nan_check). On the first
  /// NaN/Inf Train() writes a post-mortem diagnostic bundle to
  /// `bundle_path` (offending tensor + context + recent telemetry)
  /// and aborts with the offending point name. kOff uninstalls.
  void SetNumericsChecking(NanCheckMode mode, std::string bundle_path);

  /// Atomically serializes the complete training state — model and
  /// adversary parameters, Adam moments and step counts, RNG stream,
  /// epoch counter, adaptive-weighting state, uncertainty weights —
  /// so LoadTrainingState can resume exactly. Returns false on I/O
  /// failure (the previous checkpoint at `path`, if any, survives).
  bool SaveTrainingState(const std::string& path) const;

  /// Restores state written by SaveTrainingState into a trainer built
  /// with the same configuration and datasets. Must be called before
  /// Train(). Returns false on any mismatch (wrong mode, missing or
  /// shape-mismatched tensors, corrupt file), logging the reason; a
  /// trainer that failed to load should be discarded, not trained.
  bool LoadTrainingState(const std::string& path);

  /// Epochs already completed (nonzero after a successful resume).
  int64_t completed_epochs() const { return next_epoch_; }

  /// Evaluates the mean total reconstruction error (sum of per-dataset
  /// MAE) on `batches` freshly sampled corrupted batches.
  double EvaluateReconstructionError(int64_t batches = 4);

  /// Encodes the full horizon with non-overlapping windows and
  /// concatenates along time: returns Z as [K, W, H, T'] where
  /// T' = floor(T / window) * window (§4.4). Inputs are not corrupted.
  Tensor Materialize();

  /// Materializes the trained encoder on a *different* dataset vector
  /// (same inventory: kinds/channels must match, grid dims must equal
  /// the training grid). This is the transfer setting the paper lists
  /// as future work — reusing integrated features for another city.
  Tensor MaterializeOn(const std::vector<data::AlignedDataset>* datasets);

  const std::vector<EpochLog>& log() const { return log_; }
  const models::CoreCdae& model() const { return *model_; }
  const std::vector<double>& optimal_losses() const { return optimal_losses_; }

  /// The per-dataset weights currently in effect: the AdaptiveWeighter
  /// state for rule-based modes, exp(-s_i) for kUncertainty.
  std::vector<double> CurrentWeights() const;

  /// Builds DatasetSpecs from aligned datasets (shared with baselines).
  static std::vector<models::DatasetSpec> MakeSpecs(
      const std::vector<data::AlignedDataset>& datasets);

  /// Estimates L(opt)_i by training a single-dataset CDAE per dataset
  /// (§3.3). Called automatically by Train() in WeightingMode::kOurs;
  /// public so sweeps can estimate once and share the result via
  /// EquiTensorConfig::precomputed_optimal_losses.
  std::vector<double> EstimateOptimalLosses();

 private:
  /// One optimization step on one minibatch; returns per-dataset losses
  /// and (via out-param) the adversary loss. When `layer_stats` is
  /// non-null, appends one LayerStat per optimized parameter.
  std::vector<double> TrainStep(const std::vector<int64_t>& starts,
                                double* adversary_loss,
                                std::vector<LayerStat>* layer_stats = nullptr);

  /// Lazily builds the named-parameter lists mirroring the optimizers'
  /// parameter order (for layer stats and sentinel scans).
  void BuildStatParamLists();

  /// Per-epoch live fairness audit: encodes one clean probe batch
  /// (drawn from its own RNG stream so the resume-determinism
  /// contract of DESIGN.md §9 is untouched) and fills the fairness
  /// fields of `entry`. No-op without a sensitive map.
  void AuditFairness(EpochLog* entry);

  /// Runs the sentinel over every trainable parameter tensor.
  void CheckAllParameters();

  /// Writes the diagnostic bundle for the recorded trip and aborts.
  void HandleSentinelTrip();

  EquiTensorConfig config_;
  const std::vector<data::AlignedDataset>* datasets_;
  const Tensor* sensitive_map_;
  data::WindowSampler sampler_;
  Rng rng_;

  std::unique_ptr<models::CoreCdae> model_;
  std::unique_ptr<models::AdversaryNet> adversary_;
  std::unique_ptr<nn::Adam> cdae_optimizer_;
  std::unique_ptr<nn::Adam> adversary_optimizer_;
  AdaptiveWeighter weighter_;
  Variable uncertainty_log_vars_;  // kUncertainty: trainable s_i [n].
  std::vector<double> optimal_losses_;
  std::vector<EpochLog> log_;
  bool trained_ = false;

  bool layer_stats_enabled_ = false;
  std::unique_ptr<NumericsSentinel> sentinel_;
  std::string sentinel_bundle_path_;
  /// Parameter-name lists parallel to cdae_optimizer_ /
  /// adversary_optimizer_ parameter order (built on first use).
  std::vector<nn::NamedParameter> cdae_stat_params_;
  std::vector<nn::NamedParameter> adv_stat_params_;
  bool stat_params_built_ = false;

  TrainTelemetry* telemetry_ = nullptr;
  std::string checkpoint_path_;
  int64_t checkpoint_every_ = 0;
  int64_t next_epoch_ = 0;  // First epoch Train() will run.
  bool resumed_ = false;
};

}  // namespace core
}  // namespace equitensor

#endif  // EQUITENSOR_CORE_EQUITENSOR_H_
