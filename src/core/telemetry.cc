#include "core/telemetry.h"

#include <utility>

#include "core/equitensor.h"
#include "core/telemetry_server.h"
#include "util/system_info.h"
#include "util/thread_pool.h"

namespace equitensor {
namespace core {

namespace {

JsonValue DoubleArray(const std::vector<double>& values) {
  JsonValue array = JsonValue::Array();
  for (double v : values) array.Append(JsonValue::Number(v));
  return array;
}

std::string JoinNumbers(const std::vector<double>& values, int decimals) {
  std::string joined;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) joined += " ";
    joined += TextTable::Num(values[i], decimals);
  }
  return joined;
}

}  // namespace

TrainTelemetry::~TrainTelemetry() {
  if (jsonl_open_) jsonl_.close();
}

bool TrainTelemetry::OpenJsonl(const std::string& path) {
  jsonl_.open(path, std::ios::out | std::ios::trunc);
  jsonl_open_ = jsonl_.is_open();
  return jsonl_open_;
}

void TrainTelemetry::EnableProgress(std::ostream* os) { progress_ = os; }

JsonValue TrainTelemetry::EpochToJson(const EpochLog& log,
                                      const RunContext& context) {
  JsonValue record = JsonValue::Object();
  record.Set("type", JsonValue::Str("epoch"));
  record.Set("epoch", JsonValue::Int(log.epoch));
  record.Set("epochs_total", JsonValue::Int(context.epochs_total));
  record.Set("dataset_loss", DoubleArray(log.dataset_losses));
  record.Set("weights", DoubleArray(log.weights));
  record.Set("total_loss", JsonValue::Number(log.total_loss));
  record.Set("adversary_loss", JsonValue::Number(log.adversary_loss));
  record.Set("lambda", JsonValue::Number(context.lambda));
  record.Set("wall_seconds", JsonValue::Number(log.wall_seconds));
  record.Set("peak_rss_bytes", JsonValue::Int(log.peak_rss_bytes));
  // Schema v2 additions go strictly after the v1 fields so v1 consumers
  // relying on the field prefix keep working (stability contract above).
  record.Set("schema_version", JsonValue::Int(kTelemetrySchemaVersion));
  record.Set("adv_recon_balance", JsonValue::Number(log.adv_recon_balance));
  JsonValue stats = JsonValue::Array();
  for (const LayerStat& stat : log.layer_stats) {
    JsonValue entry = JsonValue::Object();
    entry.Set("name", JsonValue::Str(stat.name));
    entry.Set("grad_norm", JsonValue::Number(stat.grad_norm));
    entry.Set("weight_norm", JsonValue::Number(stat.weight_norm));
    entry.Set("update_ratio", JsonValue::Number(stat.update_ratio));
    stats.Append(std::move(entry));
  }
  record.Set("layer_stats", std::move(stats));
  // Live fairness audit (additive, still schema v2): present only on
  // epochs that carried an audit, so runs without a sensitive map emit
  // byte-identical records to pre-audit builds.
  if (log.fairness_audited) {
    record.Set("fairness_correlation",
               JsonValue::Number(log.fairness_correlation));
    record.Set("parity_gap", JsonValue::Number(log.parity_gap));
  }
  return record;
}

JsonValue TrainTelemetry::RunSummaryToJson(
    const RunContext& context, double total_seconds, int64_t epochs_completed,
    const std::vector<TraceStats>& kernels, const MetricsSnapshot& metrics) {
  JsonValue record = JsonValue::Object();
  record.Set("type", JsonValue::Str("run_summary"));
  record.Set("schema_version", JsonValue::Int(kTelemetrySchemaVersion));
  record.Set("git", JsonValue::Str(GitDescribe()));
  record.Set("threads", JsonValue::Int(context.threads));
  record.Set("fairness", JsonValue::Str(context.fairness));
  record.Set("weighting", JsonValue::Str(context.weighting));
  record.Set("alpha", JsonValue::Number(context.alpha));
  record.Set("lambda", JsonValue::Number(context.lambda));
  JsonValue names = JsonValue::Array();
  for (const std::string& name : context.dataset_names) {
    names.Append(JsonValue::Str(name));
  }
  record.Set("datasets", std::move(names));
  record.Set("epochs_completed", JsonValue::Int(epochs_completed));
  record.Set("total_seconds", JsonValue::Number(total_seconds));
  record.Set("peak_rss_bytes", JsonValue::Int(PeakRssBytes()));
  JsonValue timings = JsonValue::Array();
  for (const TraceStats& s : kernels) {
    JsonValue entry = JsonValue::Object();
    entry.Set("name", JsonValue::Str(s.name));
    entry.Set("count", JsonValue::Int(static_cast<int64_t>(s.count)));
    entry.Set("total_seconds", JsonValue::Number(s.total_seconds));
    entry.Set("self_seconds", JsonValue::Number(s.self_seconds));
    entry.Set("max_seconds", JsonValue::Number(s.max_seconds));
    timings.Append(std::move(entry));
  }
  record.Set("kernel_timings", std::move(timings));
  record.Set("metrics", MetricsToJson(metrics));
  return record;
}

void TrainTelemetry::RememberRecord(std::string line) {
  if (recent_records_.size() >= kRecentRecordCap) {
    recent_records_.erase(recent_records_.begin());
  }
  recent_records_.push_back(std::move(line));
}

std::vector<std::string> TrainTelemetry::RecentRecords() const {
  return recent_records_;
}

void TrainTelemetry::AttachServer(TelemetryServer* server) {
  server_ = server;
  if (server_ != nullptr) {
    server_->SetHealth(healthy_, health_detail_);
  }
}

void TrainTelemetry::NoteUnhealthy(const std::string& detail) {
  healthy_ = false;
  health_detail_ = detail;
  JsonValue record = JsonValue::Object();
  record.Set("type", JsonValue::Str("health"));
  record.Set("schema_version", JsonValue::Int(kTelemetrySchemaVersion));
  record.Set("healthy", JsonValue::Bool(false));
  record.Set("detail", JsonValue::Str(detail));
  std::string line = record.Dump();
  if (jsonl_open_) {
    jsonl_ << line << "\n";
    jsonl_.flush();
  }
  RememberRecord(std::move(line));
  if (server_ != nullptr) server_->SetHealth(false, detail);
}

void TrainTelemetry::OnEpoch(const EpochLog& log) {
  std::string line = EpochToJson(log, context_).Dump();
  if (jsonl_open_) {
    jsonl_ << line << "\n";
    jsonl_.flush();
  }
  RememberRecord(std::move(line));
  if (server_ != nullptr) {
    // /status mirrors the JSONL epoch record (same builder, so the
    // values match byte for byte) plus run-level context a scraper
    // cannot recover from a single record.
    JsonValue status = EpochToJson(log, context_);
    status.Set("type", JsonValue::Str("status"));
    status.Set("git", JsonValue::Str(GitDescribe()));
    status.Set("healthy", JsonValue::Bool(healthy_));
    server_->PublishStatus(status);

    if (log.fairness_audited) {
      JsonValue point = JsonValue::Object();
      point.Set("epoch", JsonValue::Int(log.epoch));
      point.Set("fairness_correlation",
                JsonValue::Number(log.fairness_correlation));
      point.Set("parity_gap", JsonValue::Number(log.parity_gap));
      point.Set("total_loss", JsonValue::Number(log.total_loss));
      point.Set("adversary_loss", JsonValue::Number(log.adversary_loss));
      if (fairness_history_.size() >= kFairnessHistoryCap) {
        fairness_history_.erase(fairness_history_.begin());
      }
      fairness_history_.push_back(std::move(point));

      JsonValue doc = JsonValue::Object();
      doc.Set("type", JsonValue::Str("fairness"));
      doc.Set("fairness", JsonValue::Str(context_.fairness));
      doc.Set("lambda", JsonValue::Number(context_.lambda));
      JsonValue epochs = JsonValue::Array();
      for (const JsonValue& p : fairness_history_) epochs.Append(p);
      doc.Set("epochs", std::move(epochs));
      server_->PublishFairness(doc);
    }
  }
  if (progress_ != nullptr) {
    if (!progress_header_printed_) {
      *progress_ << "epoch  total_loss  adv_loss  wall_s  weights\n";
      progress_header_printed_ = true;
    }
    *progress_ << log.epoch + 1 << "/" << context_.epochs_total << "  "
               << TextTable::Num(log.total_loss, 4) << "  "
               << TextTable::Num(log.adversary_loss, 4) << "  "
               << TextTable::Num(log.wall_seconds, 2) << "  ["
               << JoinNumbers(log.weights, 3) << "]\n";
    progress_->flush();
  }
  progress_rows_.push_back({std::to_string(log.epoch + 1),
                            JoinNumbers(log.dataset_losses, 4),
                            JoinNumbers(log.weights, 3),
                            TextTable::Num(log.total_loss, 4),
                            TextTable::Num(log.adversary_loss, 4),
                            TextTable::Num(log.wall_seconds, 2)});
}

void TrainTelemetry::Finish(double total_seconds, int64_t epochs_completed) {
  const std::vector<TraceStats> kernels = CollectTraceStats();
  const MetricsSnapshot metrics = MetricsRegistry::Global().Snapshot();
  if (jsonl_open_) {
    JsonValue summary = RunSummaryToJson(context_, total_seconds,
                                         epochs_completed, kernels, metrics);
    // Final health verdict: "ok", or the sentinel detail captured by
    // NoteUnhealthy (flushed here even when the trip aborts the run,
    // since NoteUnhealthy also wrote its own record).
    summary.Set("health",
                JsonValue::Str(healthy_ ? std::string("ok") : health_detail_));
    jsonl_ << summary.Dump() << "\n";
    jsonl_.flush();
  }
  if (progress_ != nullptr) {
    TextTable table({"epoch", "dataset_loss", "weights", "total", "adv",
                     "wall_s"});
    for (const auto& row : progress_rows_) table.AddRow(row);
    *progress_ << table;
    *progress_ << "run: " << epochs_completed << " epochs in "
               << TextTable::Num(total_seconds, 2) << "s, peak rss "
               << TextTable::Num(static_cast<double>(PeakRssBytes()) /
                                     (1024.0 * 1024.0),
                                 1)
               << " MiB, git " << GitDescribe() << ", threads "
               << context_.threads << "\n";
    const std::string trace_table = TraceReportTable();
    if (!trace_table.empty()) *progress_ << trace_table;
    progress_->flush();
  }
}

}  // namespace core
}  // namespace equitensor
