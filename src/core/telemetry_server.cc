#include "core/telemetry_server.h"

#include <cstring>

#include "core/debug_endpoints.h"
#include "util/metrics.h"
#include "util/prom.h"
#include "util/system_info.h"
#include "util/trace.h"

namespace equitensor {
namespace core {

SnapshotCell::SnapshotCell(size_t capacity) : capacity_(capacity) {
  for (Slot& slot : slots_) slot.data.resize(capacity_);
}

void SnapshotCell::Publish(const std::string& doc) {
  const char* src = doc.data();
  size_t n = doc.size();
  static const char kOversize[] = "{\"error\":\"snapshot too large\"}";
  if (n > capacity_) {
    src = kOversize;
    n = sizeof(kOversize) - 1;
  }
  const int cur = active_.load(std::memory_order_relaxed);
  const int next = cur == 0 ? 1 : 0;  // covers the initial -1 too
  Slot& slot = slots_[next];
  // Odd sequence marks the slot dirty. Readers of the *other* slot are
  // unaffected; a reader that raced a previous publish into this slot
  // sees the odd value (or a changed one after copying) and retries.
  slot.seq.fetch_add(1, std::memory_order_acq_rel);
  // Benign-by-protocol race: the memcpy may overlap a straggling
  // reader's copy of this slot, which the seq recheck then discards.
  std::memcpy(slot.data.data(), src, n);
  slot.len.store(n, std::memory_order_release);
  slot.seq.fetch_add(1, std::memory_order_release);
  active_.store(next, std::memory_order_release);
}

bool SnapshotCell::Read(std::string* out) const {
  for (int attempt = 0; attempt < 1024; ++attempt) {
    const int idx = active_.load(std::memory_order_acquire);
    if (idx < 0) return false;
    const Slot& slot = slots_[idx];
    const uint64_t seq_before = slot.seq.load(std::memory_order_acquire);
    if (seq_before & 1) continue;  // writer inside; the swap is imminent
    const size_t len = slot.len.load(std::memory_order_acquire);
    std::string copy(slot.data.data(), std::min(len, capacity_));
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) == seq_before) {
      *out = std::move(copy);
      return true;
    }
  }
  return false;  // theoretical: 1024 publishes raced one read
}

TelemetryServer::TelemetryServer()
    : observability_([] {
        RequestObservability::Options options;
        options.metric_prefix = "telemetry";
        options.ring_capacity = 32;
        // Scrapes are sparse; the ring and histograms are plenty — no
        // access log for the telemetry port.
        options.sample_every = 0;
        return options;
      }()) {
  http_.set_observer([this](const RequestTimeline& timeline) {
    observability_.Observe(timeline);
  });
  http_.Handle("/debug/requests", [this](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/json; charset=utf-8";
    response.body = observability_.RequestsJson().Dump() + "\n";
    return response;
  });
  http_.Handle("/metrics", [](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = RenderPrometheusText(MetricsRegistry::Global().Snapshot(),
                                         CollectTraceStats());
    return response;
  });
  http_.Handle("/healthz", [this](const HttpRequest&) {
    HttpResponse response;
    if (healthy()) {
      response.body = "ok\n";
    } else {
      response.status = 503;
      std::string detail;
      health_detail_.Read(&detail);
      response.body = "unhealthy: " + detail + "\n";
    }
    return response;
  });
  const auto json_endpoint = [](const SnapshotCell* cell,
                                const char* fallback) {
    return [cell, fallback](const HttpRequest&) {
      HttpResponse response;
      response.content_type = "application/json";
      if (!cell->Read(&response.body)) response.body = fallback;
      response.body += "\n";
      return response;
    };
  };
  http_.Handle("/status",
               json_endpoint(&status_,
                             "{\"type\":\"status\",\"state\":\"waiting\"}"));
  http_.Handle("/fairness",
               json_endpoint(&fairness_,
                             "{\"type\":\"fairness\",\"epochs\":[]}"));
  // /debug/profile (on-demand CPU capture) + /debug/counters (hardware
  // counters, arena heat) — DESIGN.md §17. The profile capture parks
  // one of the two HTTP workers for its duration; scrapes keep flowing
  // on the other.
  RegisterProfilingEndpoints(&http_);
}

TelemetryServer::~TelemetryServer() { Stop(); }

bool TelemetryServer::Start(int port, std::string* error) {
  return http_.Start(port, error);
}

void TelemetryServer::Stop() { http_.Stop(); }

void TelemetryServer::PublishStatus(const JsonValue& doc) {
  status_.Publish(doc.Dump());
}

void TelemetryServer::PublishFairness(const JsonValue& doc) {
  fairness_.Publish(doc.Dump());
}

void TelemetryServer::SetHealth(bool healthy, const std::string& detail) {
  health_detail_.Publish(detail);
  healthy_.store(healthy, std::memory_order_release);
}

}  // namespace core
}  // namespace equitensor
