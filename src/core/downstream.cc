#include "core/downstream.h"

#include <algorithm>

#include "autograd/ops.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"

namespace equitensor {
namespace core {
namespace {

// Mean of target[..., t0+1 .. t0+horizon] as [N, 1, W, H].
Tensor StackLabels(const Tensor& target, const std::vector<int64_t>& t0s,
                   int64_t horizon) {
  const int64_t w = target.dim(0), h = target.dim(1), t = target.dim(2);
  const int64_t n = static_cast<int64_t>(t0s.size());
  Tensor out({n, 1, w, h});
  for (int64_t b = 0; b < n; ++b) {
    const int64_t t0 = t0s[static_cast<size_t>(b)];
    ET_CHECK(t0 + horizon <= t);
    for (int64_t row = 0; row < w * h; ++row) {
      double sum = 0.0;
      for (int64_t d = 1; d <= horizon; ++d) {
        sum += target[row * t + t0 + d];
      }
      out[b * w * h + row] = static_cast<float>(sum / horizon);
    }
  }
  return out;
}

}  // namespace

Tensor StackTargetHistory(const Tensor& target,
                          const std::vector<int64_t>& t0s, int64_t history) {
  const int64_t w = target.dim(0), h = target.dim(1), t = target.dim(2);
  const int64_t n = static_cast<int64_t>(t0s.size());
  Tensor out({n, 1, w, h, history});
  for (int64_t b = 0; b < n; ++b) {
    const int64_t t0 = t0s[static_cast<size_t>(b)];
    ET_CHECK(t0 - history >= 0 && t0 <= t);
    for (int64_t row = 0; row < w * h; ++row) {
      const float* src = target.data() + row * t + (t0 - history);
      float* dst = out.data() + (b * w * h + row) * history;
      std::copy(src, src + history, dst);
    }
  }
  return out;
}

Tensor StackExoSnapshots(const ExoProvider& exo,
                         const std::vector<int64_t>& t0s, int64_t w,
                         int64_t h) {
  const int64_t n = static_cast<int64_t>(t0s.size());
  const int64_t e = exo.channels();
  Tensor out({n, e, w, h});
  Tensor snapshot({e, w, h});
  for (int64_t b = 0; b < n; ++b) {
    exo.Snapshot(t0s[static_cast<size_t>(b)] + 1, &snapshot);
    std::copy(snapshot.data(), snapshot.data() + snapshot.size(),
              out.data() + b * snapshot.size());
  }
  return out;
}

ChannelNorm ComputeChannelNorm(const float* values, int64_t count) {
  double sum = 0.0, sq = 0.0;
  for (int64_t i = 0; i < count; ++i) {
    sum += values[i];
    sq += static_cast<double>(values[i]) * values[i];
  }
  const double mean = sum / static_cast<double>(count);
  const double var = std::max(1e-12, sq / static_cast<double>(count) - mean * mean);
  ChannelNorm norm;
  norm.mean = static_cast<float>(mean);
  norm.inv_std = static_cast<float>(1.0 / std::max(1e-6, std::sqrt(var)));
  return norm;
}

OracleExoProvider::OracleExoProvider(const data::UrbanDataBundle* bundle,
                                     data::Task task)
    : bundle_(bundle), indices_(bundle->OracleIndices(task)) {
  for (int idx : indices_) {
    const data::AlignedDataset& ds = bundle_->datasets[static_cast<size_t>(idx)];
    const int64_t per_channel = ds.tensor.size() / ds.channels();
    for (int64_t ch = 0; ch < ds.channels(); ++ch) {
      norms_.push_back(
          ComputeChannelNorm(ds.tensor.data() + ch * per_channel, per_channel));
    }
  }
}

int64_t OracleExoProvider::channels() const {
  int64_t total = 0;
  for (int idx : indices_) {
    total += bundle_->datasets[static_cast<size_t>(idx)].channels();
  }
  return total;
}

int64_t OracleExoProvider::horizon() const { return bundle_->config.hours; }

void OracleExoProvider::Snapshot(int64_t t, Tensor* out) const {
  const int64_t w = bundle_->config.width, h = bundle_->config.height;
  ET_CHECK(t >= 0 && t < horizon());
  int64_t channel = 0;
  for (int idx : indices_) {
    const data::AlignedDataset& ds = bundle_->datasets[static_cast<size_t>(idx)];
    const int64_t c = ds.channels();
    for (int64_t ch = 0; ch < c; ++ch, ++channel) {
      float* dst = out->data() + channel * w * h;
      switch (ds.kind) {
        case data::DatasetKind::kTemporal: {
          const float value = ds.tensor[ch * bundle_->config.hours + t];
          std::fill(dst, dst + w * h, value);
          break;
        }
        case data::DatasetKind::kSpatial: {
          const float* src = ds.tensor.data() + ch * w * h;
          std::copy(src, src + w * h, dst);
          break;
        }
        case data::DatasetKind::kSpatioTemporal: {
          const int64_t hours = bundle_->config.hours;
          for (int64_t row = 0; row < w * h; ++row) {
            dst[row] = ds.tensor[(ch * w * h + row) * hours + t];
          }
          break;
        }
      }
      const ChannelNorm& norm = norms_[static_cast<size_t>(channel)];
      for (int64_t row = 0; row < w * h; ++row) {
        dst[row] = (dst[row] - norm.mean) * norm.inv_std;
      }
    }
  }
}

RepresentationExoProvider::RepresentationExoProvider(
    const Tensor* representation)
    : representation_(representation) {
  ET_CHECK_EQ(representation_->rank(), 4);
  const int64_t per_channel = representation_->size() / representation_->dim(0);
  for (int64_t c = 0; c < representation_->dim(0); ++c) {
    norms_.push_back(ComputeChannelNorm(
        representation_->data() + c * per_channel, per_channel));
  }
}

int64_t RepresentationExoProvider::channels() const {
  return representation_->dim(0);
}

int64_t RepresentationExoProvider::horizon() const {
  return representation_->dim(3);
}

void RepresentationExoProvider::Snapshot(int64_t t, Tensor* out) const {
  const int64_t k = representation_->dim(0);
  const int64_t w = representation_->dim(1);
  const int64_t h = representation_->dim(2);
  const int64_t horizon = representation_->dim(3);
  ET_CHECK(t >= 0 && t < horizon);
  for (int64_t c = 0; c < k; ++c) {
    const ChannelNorm& norm = norms_[static_cast<size_t>(c)];
    for (int64_t row = 0; row < w * h; ++row) {
      (*out)[c * w * h + row] =
          ((*representation_)[(c * w * h + row) * horizon + t] - norm.mean) *
          norm.inv_std;
    }
  }
}

TrainedGridPredictor TrainGridPredictor(const Tensor& target,
                                        const ExoProvider* exo,
                                        const GridTaskConfig& config) {
  ET_CHECK_EQ(target.rank(), 3);
  const int64_t w = target.dim(0), h = target.dim(1), t = target.dim(2);

  // Usable last-observed hours: history available before, horizon
  // after, and exo features must cover the target hour.
  TrainedGridPredictor out;
  out.t_limit = t - config.horizon;
  if (exo != nullptr) out.t_limit = std::min(out.t_limit, exo->horizon() - 1);
  out.t_min = config.history;
  ET_CHECK_GT(out.t_limit, out.t_min) << "horizon too short for the task setup";
  out.train_end = out.t_min +
                  static_cast<int64_t>(config.train_fraction *
                                       static_cast<double>(out.t_limit -
                                                           out.t_min));

  Rng rng(config.seed);
  out.model = std::make_unique<models::GridPredictor>(
      config.predictor, exo ? exo->channels() : 0, rng);
  nn::Adam optimizer(out.model->Parameters(), config.optimizer);

  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    for (int64_t step = 0; step < config.steps_per_epoch; ++step) {
      std::vector<int64_t> t0s;
      for (int64_t b = 0; b < config.batch_size; ++b) {
        t0s.push_back(out.t_min +
                      static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(
                          out.train_end - out.t_min))));
      }
      Variable history(StackTargetHistory(target, t0s, config.history), false);
      Variable exo_batch;
      if (exo != nullptr) {
        exo_batch = Variable(StackExoSnapshots(*exo, t0s, w, h), false);
      }
      const Tensor labels = StackLabels(target, t0s, config.horizon);
      Variable pred = out.model->Forward(history, exo_batch);
      Variable loss = ag::MaeAgainst(pred, labels);
      Backward(loss);
      optimizer.Step();
    }
  }
  return out;
}

GridTaskResult RunGridTask(const Tensor& target, float scale,
                           const Tensor& sensitive_map,
                           const ExoProvider* exo,
                           const GridTaskConfig& config) {
  const int64_t w = target.dim(0), h = target.dim(1);
  TrainedGridPredictor trained = TrainGridPredictor(target, exo, config);
  const models::GridPredictor& model = *trained.model;
  const int64_t train_end = trained.train_end;
  const int64_t t_limit = trained.t_limit;

  // Held-out evaluation over the tail, stride-sampled.
  GridTaskResult result;
  ResidualAccumulator residuals(ThresholdGroups(sensitive_map));
  double total_mae = 0.0;
  for (int64_t t0 = train_end; t0 < t_limit; t0 += config.eval_stride) {
    const std::vector<int64_t> t0s = {t0};
    Variable history(StackTargetHistory(target, t0s, config.history), false);
    Variable exo_batch;
    if (exo != nullptr) {
      exo_batch = Variable(StackExoSnapshots(*exo, t0s, w, h), false);
    }
    const Tensor labels = StackLabels(target, t0s, config.horizon);
    Variable pred = model.Forward(history, exo_batch);
    total_mae += MeanAbsoluteError(pred.value(), labels);

    // Fairness in raw counts: per-cell prediction/truth of the
    // aggregated window (mean * horizon * scale).
    Tensor pred_raw({w, h}), truth_raw({w, h});
    const float to_raw = scale * static_cast<float>(config.horizon);
    for (int64_t i = 0; i < w * h; ++i) {
      pred_raw[i] = pred.value()[i] * to_raw;
      truth_raw[i] = labels[i] * to_raw;
    }
    residuals.Add(pred_raw, truth_raw);
    ++result.eval_samples;
  }
  ET_CHECK_GT(result.eval_samples, 0);
  result.mae = total_mae / static_cast<double>(result.eval_samples);
  result.fairness = residuals.Metrics();
  return result;
}

OracleSeriesProvider::OracleSeriesProvider(const data::UrbanDataBundle* bundle,
                                           data::Task task)
    : bundle_(bundle), indices_(bundle->OracleIndices(task)) {
  for (int idx : indices_) {
    const data::AlignedDataset& ds = bundle_->datasets[static_cast<size_t>(idx)];
    ET_CHECK(ds.kind == data::DatasetKind::kTemporal)
        << "series oracle features must be 1D";
    const int64_t per_channel = ds.tensor.size() / ds.channels();
    for (int64_t ch = 0; ch < ds.channels(); ++ch) {
      norms_.push_back(ComputeChannelNorm(
          ds.tensor.data() + ch * per_channel, per_channel));
    }
  }
}

int64_t OracleSeriesProvider::channels() const {
  int64_t total = 0;
  for (int idx : indices_) {
    total += bundle_->datasets[static_cast<size_t>(idx)].channels();
  }
  return total;
}

int64_t OracleSeriesProvider::horizon() const { return bundle_->config.hours; }

void OracleSeriesProvider::At(int64_t t, float* out) const {
  ET_CHECK(t >= 0 && t < horizon());
  int64_t channel = 0;
  for (int idx : indices_) {
    const data::AlignedDataset& ds = bundle_->datasets[static_cast<size_t>(idx)];
    for (int64_t ch = 0; ch < ds.channels(); ++ch, ++channel) {
      const ChannelNorm& norm = norms_[static_cast<size_t>(channel)];
      out[channel] =
          (ds.tensor[ch * bundle_->config.hours + t] - norm.mean) *
          norm.inv_std;
    }
  }
}

CellSeriesProvider::CellSeriesProvider(const Tensor* representation,
                                       int64_t cx, int64_t cy)
    : representation_(representation), cx_(cx), cy_(cy) {
  ET_CHECK_EQ(representation_->rank(), 4);
  ET_CHECK(cx >= 0 && cx < representation_->dim(1));
  ET_CHECK(cy >= 0 && cy < representation_->dim(2));
  const int64_t w = representation_->dim(1);
  const int64_t h = representation_->dim(2);
  const int64_t horizon_t = representation_->dim(3);
  for (int64_t c = 0; c < representation_->dim(0); ++c) {
    norms_.push_back(ComputeChannelNorm(
        representation_->data() + ((c * w + cx_) * h + cy_) * horizon_t,
        horizon_t));
  }
}

int64_t CellSeriesProvider::channels() const {
  return representation_->dim(0);
}

int64_t CellSeriesProvider::horizon() const { return representation_->dim(3); }

void CellSeriesProvider::At(int64_t t, float* out) const {
  ET_CHECK(t >= 0 && t < horizon());
  const int64_t w = representation_->dim(1);
  const int64_t h = representation_->dim(2);
  const int64_t horizon_t = representation_->dim(3);
  for (int64_t c = 0; c < representation_->dim(0); ++c) {
    out[c] =
        ((*representation_)[((c * w + cx_) * h + cy_) * horizon_t + t] -
         norms_[static_cast<size_t>(c)].mean) *
        norms_[static_cast<size_t>(c)].inv_std;
  }
}

SeriesTaskResult RunSeriesTask(const Tensor& series,
                               const SeriesExoProvider* exo,
                               const SeriesTaskConfig& config) {
  ET_CHECK_EQ(series.rank(), 1);
  const int64_t t = series.dim(0);
  const int64_t exo_channels = exo ? exo->channels() : 0;
  const int64_t features = 1 + exo_channels;

  // Scale the target internally; report raw-unit MAE.
  Tensor scaled = series;
  float scale = 1.0f;
  {
    const float max_abs = scaled.AbsMax();
    if (max_abs > 0.0f) {
      scale = max_abs;
      for (int64_t i = 0; i < scaled.size(); ++i) scaled[i] /= max_abs;
    }
  }

  int64_t t_limit = t - config.horizon;
  if (exo != nullptr) t_limit = std::min(t_limit, exo->horizon());
  const int64_t t_min = config.history;
  ET_CHECK_GT(t_limit, t_min);
  const int64_t train_end =
      t_min + static_cast<int64_t>(config.train_fraction *
                                   static_cast<double>(t_limit - t_min));

  Rng rng(config.seed);
  models::Seq2SeqForecaster model(features, config.hidden, config.horizon, rng);
  nn::Adam optimizer(model.Parameters(), config.optimizer);

  auto make_history = [&](const std::vector<int64_t>& t0s) {
    const int64_t n = static_cast<int64_t>(t0s.size());
    Tensor out({n, config.history, features});
    std::vector<float> exo_row(static_cast<size_t>(exo_channels));
    for (int64_t b = 0; b < n; ++b) {
      const int64_t t0 = t0s[static_cast<size_t>(b)];
      for (int64_t step = 0; step < config.history; ++step) {
        const int64_t hour = t0 - config.history + step;
        float* dst = out.data() + (b * config.history + step) * features;
        dst[0] = scaled[hour];
        if (exo != nullptr) {
          exo->At(hour, exo_row.data());
          for (int64_t e = 0; e < exo_channels; ++e) dst[1 + e] = exo_row[e];
        }
      }
    }
    return out;
  };
  auto make_labels = [&](const std::vector<int64_t>& t0s) {
    const int64_t n = static_cast<int64_t>(t0s.size());
    Tensor out({n, config.horizon});
    for (int64_t b = 0; b < n; ++b) {
      const int64_t t0 = t0s[static_cast<size_t>(b)];
      for (int64_t d = 0; d < config.horizon; ++d) {
        out[b * config.horizon + d] = scaled[t0 + d];
      }
    }
    return out;
  };

  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    for (int64_t step = 0; step < config.steps_per_epoch; ++step) {
      std::vector<int64_t> t0s;
      for (int64_t b = 0; b < config.batch_size; ++b) {
        t0s.push_back(t_min + static_cast<int64_t>(rng.UniformInt(
                                  static_cast<uint64_t>(train_end - t_min))));
      }
      Variable history(make_history(t0s), false);
      const Tensor labels = make_labels(t0s);
      Variable pred = model.Forward(history);
      Variable loss = ag::MaeAgainst(pred, labels);
      Backward(loss);
      optimizer.Step();
    }
  }

  SeriesTaskResult result;
  double total = 0.0;
  for (int64_t t0 = train_end; t0 < t_limit; t0 += config.eval_stride) {
    const std::vector<int64_t> t0s = {t0};
    Variable history(make_history(t0s), false);
    const Tensor labels = make_labels(t0s);
    Variable pred = model.Forward(history);
    total += MeanAbsoluteError(pred.value(), labels) * scale;
    ++result.eval_samples;
  }
  ET_CHECK_GT(result.eval_samples, 0);
  result.mae = total / static_cast<double>(result.eval_samples);
  return result;
}

}  // namespace core
}  // namespace equitensor
