#include "core/baselines.h"

#include "autograd/ops.h"
#include "data/preprocess.h"
#include "models/early_fusion.h"
#include "util/check.h"

namespace equitensor {
namespace core {

EarlyFusionResult TrainEarlyFusion(
    const EquiTensorConfig& config,
    const std::vector<data::AlignedDataset>* datasets) {
  ET_CHECK(datasets != nullptr && !datasets->empty());
  data::WindowSampler sampler(datasets, config.cdae.window);
  Rng rng(config.seed);
  Rng init_rng = rng.Split();
  models::EarlyFusionCdae model(config.cdae,
                                EquiTensorTrainer::MakeSpecs(*datasets),
                                init_rng);
  nn::Adam optimizer(model.Parameters(), config.optimizer);

  EarlyFusionResult result;
  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    double epoch_loss = 0.0;
    for (int64_t step = 0; step < config.steps_per_epoch; ++step) {
      const auto starts = sampler.SampleStarts(config.batch_size, rng);
      const auto clean = sampler.MakeBatch(starts);
      std::vector<Variable> corrupted;
      std::vector<Variable> clean_vars;
      corrupted.reserve(clean.size());
      for (const Tensor& tensor : clean) {
        corrupted.emplace_back(
            data::Corrupt(tensor, config.cdae.corruption, rng), false);
        clean_vars.emplace_back(tensor, false);
      }
      // Target: the *clean* fused stack; input: the corrupted stack.
      const Tensor target = model.FuseInputs(clean_vars).value();
      Variable fused = model.FuseInputs(corrupted);
      Variable z = model.Encode(fused);
      Variable recon = model.Decode(z);
      Variable loss = ag::MaeAgainst(recon, target);
      epoch_loss += loss.scalar();
      Backward(loss);
      optimizer.Step();
    }
    result.epoch_losses.push_back(epoch_loss /
                                  static_cast<double>(config.steps_per_epoch));
  }

  // Materialize with non-overlapping, uncorrupted windows.
  const auto starts = sampler.NonOverlappingStarts();
  const int64_t window = config.cdae.window;
  const int64_t k = config.cdae.latent_channels;
  const int64_t w = config.cdae.grid_w;
  const int64_t h = config.cdae.grid_h;
  const int64_t t_total = static_cast<int64_t>(starts.size()) * window;
  result.representation = Tensor({k, w, h, t_total});
  const size_t batch = static_cast<size_t>(std::max<int64_t>(1, config.batch_size));
  for (size_t begin = 0; begin < starts.size(); begin += batch) {
    const size_t end = std::min(starts.size(), begin + batch);
    const std::vector<int64_t> chunk(starts.begin() + begin,
                                     starts.begin() + end);
    const auto tensors = sampler.MakeBatch(chunk);
    std::vector<Variable> inputs;
    for (const Tensor& tensor : tensors) inputs.emplace_back(tensor, false);
    const Variable z = model.EncodeParts(inputs);
    const Tensor& zv = z.value();
    for (size_t b = begin; b < end; ++b) {
      const int64_t start = starts[b];
      const int64_t local = static_cast<int64_t>(b - begin);
      for (int64_t row = 0; row < k * w * h; ++row) {
        const float* src = zv.data() + (local * k * w * h + row) * window;
        float* dst = result.representation.data() + row * t_total + start;
        std::copy(src, src + window, dst);
      }
    }
  }
  return result;
}

}  // namespace core
}  // namespace equitensor
