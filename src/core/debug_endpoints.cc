#include "core/debug_endpoints.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>

#include "util/arena.h"
#include "util/perf_counters.h"
#include "util/profiler.h"
#include "util/trace.h"

namespace equitensor {
namespace {

// Finds `key=value` in a raw query string; false when absent or not a
// plain integer.
bool QueryInt(const std::string& query, const std::string& key,
              int64_t* out) {
  size_t pos = 0;
  while (pos < query.size()) {
    const size_t amp = query.find('&', pos);
    const std::string pair =
        query.substr(pos, amp == std::string::npos ? std::string::npos
                                                   : amp - pos);
    pos = amp == std::string::npos ? query.size() : amp + 1;
    const size_t eq = pair.find('=');
    if (eq == std::string::npos || pair.substr(0, eq) != key) continue;
    const std::string value = pair.substr(eq + 1);
    if (value.empty()) return false;
    char* end = nullptr;
    const long long parsed = std::strtoll(value.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') return false;
    *out = parsed;
    return true;
  }
  return false;
}

JsonValue FiniteNumber(double value) {
  return JsonValue::Number(std::isfinite(value) ? value : 0.0);
}

HttpResponse HandleProfile(const HttpRequest& request) {
  HttpResponse response;
  int64_t seconds = 2;
  QueryInt(request.query, "seconds", &seconds);
  seconds = std::max<int64_t>(1, std::min<int64_t>(seconds, 30));
  CpuProfileOptions options;
  int64_t hz = options.hz;
  QueryInt(request.query, "hz", &hz);
  options.hz = static_cast<int>(std::max<int64_t>(1, std::min<int64_t>(
                                                         hz, 1000)));
  // Size rings for the requested window: each sample costs 1 + depth
  // slots (~16 on these stacks) and ITIMER_PROF delivers hz signals
  // per second of process CPU time, unevenly across threads — so each
  // ring is sized for the whole window and the thread pool is kept
  // small enough that the preallocation stays in the tens of MiB.
  const int64_t slots = static_cast<int64_t>(options.hz) * seconds * 16;
  options.ring_capacity = static_cast<int>(std::max<int64_t>(
      1 << 14, std::min<int64_t>(slots, 1 << 21)));
  options.max_threads = 16;
  CpuProfile profile;
  std::string error;
  if (!CaptureCpuProfile(static_cast<double>(seconds), options, &profile,
                         &error)) {
    response.status = CpuProfileActive() ? 409 : 500;
    response.body = error + "\n";
    return response;
  }
  // Pure folded stacks — flamegraph.pl input — so tooling can consume
  // the body verbatim; the capture summary rides in headers-free
  // comment-less form via /debug/counters and logs instead.
  response.body = profile.folded;
  return response;
}

HttpResponse HandleCounters(const HttpRequest&) {
  HttpResponse response;
  response.content_type = "application/json";
  response.body = CountersDebugJson().Dump() + "\n";
  return response;
}

}  // namespace

JsonValue CountersDebugJson() {
  JsonValue doc = JsonValue::Object();
  doc.Set("type", JsonValue::Str("debug_counters"));

  JsonValue perf = JsonValue::Object();
  perf.Set("enabled", JsonValue::Bool(PerfCountersEnabled()));
  perf.Set("available", JsonValue::Bool(PerfCountersAvailable()));
  perf.Set("status", JsonValue::Str(PerfCountersStatus()));
  JsonValue kernels = JsonValue::Array();
  for (const TraceStats& k : CollectTraceStats()) {
    JsonValue entry = JsonValue::Object();
    entry.Set("name", JsonValue::Str(k.name));
    entry.Set("spans", JsonValue::Int(static_cast<int64_t>(k.count)));
    entry.Set("counter_samples",
              JsonValue::Int(static_cast<int64_t>(k.counter_samples)));
    if (k.counter_samples > 0) {
      for (int c = 0; c < kNumPerfCounters; ++c) {
        entry.Set(PerfCounterName(c),
                  JsonValue::Int(static_cast<int64_t>(k.counters[c])));
      }
      entry.Set("ipc", FiniteNumber(k.Ipc()));
      entry.Set("l1d_mpki", FiniteNumber(k.Mpki(PerfCounter::kL1dMisses)));
      entry.Set("llc_mpki", FiniteNumber(k.Mpki(PerfCounter::kLlcMisses)));
      entry.Set("branch_mpki",
                FiniteNumber(k.Mpki(PerfCounter::kBranchMisses)));
    }
    kernels.Append(std::move(entry));
  }
  perf.Set("kernels", std::move(kernels));
  doc.Set("perf_counters", std::move(perf));

  JsonValue arena = JsonValue::Object();
  const Arena::Stats totals = Arena::Global().stats();
  JsonValue totals_json = JsonValue::Object();
  totals_json.Set("allocations",
                  JsonValue::Int(static_cast<int64_t>(totals.allocations)));
  totals_json.Set("reuses",
                  JsonValue::Int(static_cast<int64_t>(totals.reuses)));
  totals_json.Set("bytes_reserved",
                  JsonValue::Int(static_cast<int64_t>(totals.bytes_reserved)));
  totals_json.Set("outstanding",
                  JsonValue::Int(static_cast<int64_t>(totals.outstanding)));
  arena.Set("totals", std::move(totals_json));
  JsonValue classes = JsonValue::Array();
  for (const Arena::ClassStats& heat : Arena::Global().class_stats()) {
    JsonValue entry = JsonValue::Object();
    entry.Set("size_class", JsonValue::Int(heat.size_class));
    entry.Set("bytes_reserved",
              JsonValue::Int(static_cast<int64_t>(heat.bytes_reserved)));
    entry.Set("refills", JsonValue::Int(static_cast<int64_t>(heat.refills)));
    entry.Set("reuses", JsonValue::Int(static_cast<int64_t>(heat.reuses)));
    entry.Set("reuse_rate", FiniteNumber(heat.ReuseRate()));
    entry.Set("outstanding",
              JsonValue::Int(static_cast<int64_t>(heat.outstanding)));
    entry.Set("high_watermark",
              JsonValue::Int(static_cast<int64_t>(heat.high_watermark)));
    classes.Append(std::move(entry));
  }
  arena.Set("classes", std::move(classes));
  doc.Set("arena", std::move(arena));

  JsonValue profiler = JsonValue::Object();
  profiler.Set("capture_active", JsonValue::Bool(CpuProfileActive()));
  doc.Set("profiler", std::move(profiler));
  return doc;
}

void RegisterProfilingEndpoints(HttpServer* server) {
  server->Handle("/debug/profile", &HandleProfile);
  server->Handle("/debug/counters", &HandleCounters);
}

}  // namespace equitensor
