#ifndef EQUITENSOR_CORE_DEBUG_ENDPOINTS_H_
#define EQUITENSOR_CORE_DEBUG_ENDPOINTS_H_

#include "util/http_server.h"
#include "util/json.h"

namespace equitensor {

/// Live profiling endpoints shared by the telemetry server and the
/// serving daemon (DESIGN.md §17):
///
///   GET /debug/profile?seconds=N[&hz=H]   folded stacks (text/plain)
///   GET /debug/counters                   hardware-counter + arena
///                                         heat JSON
///
/// /debug/profile runs an on-demand CPU capture: the handler arms the
/// sampling profiler, sleeps on its worker thread for N seconds
/// (clamped to [1, 30]; other workers keep serving), and returns the
/// folded stacks — pipe straight into flamegraph.pl or
/// tools/profile_report. Concurrent captures get 409: the profiler is
/// a process-wide singleton (one SIGPROF timer).
///
/// Call before HttpServer::Start(), like every Handle registration.
void RegisterProfilingEndpoints(HttpServer* server);

/// The /debug/counters document: per-kernel hardware counters (IPC,
/// miss rates) from the trace spans, perf_event availability, and the
/// arena's per-size-class heat stats. Exposed for tests.
JsonValue CountersDebugJson();

}  // namespace equitensor

#endif  // EQUITENSOR_CORE_DEBUG_ENDPOINTS_H_
