#ifndef EQUITENSOR_CORE_FAIRNESS_METRICS_H_
#define EQUITENSOR_CORE_FAIRNESS_METRICS_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace equitensor {
namespace core {

/// Partition of the grid cells into advantaged (G+) and disadvantaged
/// (G-) groups with respect to a sensitive attribute (§3.5/§4.4: cells
/// at or above the city-mean value of S are G+).
struct GroupLabels {
  std::vector<bool> advantaged;  // size W*H, row-major [cx][cy]
  int64_t advantaged_count = 0;
  int64_t disadvantaged_count = 0;
};

/// Thresholds the sensitive map at `threshold`; with NaN threshold
/// (default) the map's mean is used, matching §4.4.
GroupLabels ThresholdGroups(const Tensor& sensitive_map,
                            double threshold = std::nan(""));

/// The paper's three residual-disparity metrics (Eq. 6 and §3.5):
///   RD  — difference of summed residuals (ŷ - y) per G+ cell vs per
///         G- cell over the evaluation period,
///   PRD — same with positive residuals max(0, ŷ-y) (overestimation),
///   NRD — same with negative residuals max(0, y-ŷ) (underestimation).
/// Zero is perfectly fair; sign shows which group is favored.
struct ResidualMetrics {
  double rd = 0.0;
  double prd = 0.0;
  double nrd = 0.0;
};

/// Accumulates RD/PRD/NRD over a sequence of prediction/truth grids
/// ([W, H] each, one per evaluation timestep).
class ResidualAccumulator {
 public:
  explicit ResidualAccumulator(GroupLabels groups);

  /// Adds one timestep of predictions vs ground truth.
  void Add(const Tensor& prediction, const Tensor& truth);

  /// Current metrics (normalized by group sizes per Eq. 6).
  ResidualMetrics Metrics() const;

  int64_t timesteps() const { return timesteps_; }

 private:
  GroupLabels groups_;
  double pos_adv_ = 0.0, pos_dis_ = 0.0;
  double neg_adv_ = 0.0, neg_dis_ = 0.0;
  double res_adv_ = 0.0, res_dis_ = 0.0;
  int64_t timesteps_ = 0;
};

/// Live fairness signal of a representation during training
/// (DESIGN.md §12): how much of the sensitive map S is linearly
/// visible in Z right now. Streamed per epoch into the JSONL
/// telemetry and the /fairness endpoint, so the adversarial λ
/// trade-off can be monitored while it is being optimized instead of
/// only audited offline (§4.3).
struct FairnessSignal {
  /// Pearson correlation between the per-cell mean of Z and S over
  /// the grid cells (0 = no linear leakage).
  double correlation = 0.0;
  /// Demographic-parity gap: mean cell-mean Z over G+ minus over G-
  /// (groups from ThresholdGroups at the city-mean threshold).
  double parity_gap = 0.0;
};

/// Per-cell mean of a representation over every non-spatial dim.
/// `z` must be [K, W, H, T] or [N, K, W, H, T] with W*H matching
/// `cells`; returns a row-major [W*H] vector.
std::vector<double> CellMeans(const Tensor& z, int64_t w, int64_t h);

/// Audits `z` (shapes as CellMeans) against `sensitive_map` ([W, H]).
FairnessSignal AuditRepresentation(const Tensor& z,
                                   const Tensor& sensitive_map);

}  // namespace core
}  // namespace equitensor

#endif  // EQUITENSOR_CORE_FAIRNESS_METRICS_H_
