#ifndef EQUITENSOR_CORE_FAIRNESS_METRICS_H_
#define EQUITENSOR_CORE_FAIRNESS_METRICS_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace equitensor {
namespace core {

/// Partition of the grid cells into advantaged (G+) and disadvantaged
/// (G-) groups with respect to a sensitive attribute (§3.5/§4.4: cells
/// at or above the city-mean value of S are G+).
struct GroupLabels {
  std::vector<bool> advantaged;  // size W*H, row-major [cx][cy]
  int64_t advantaged_count = 0;
  int64_t disadvantaged_count = 0;
};

/// Thresholds the sensitive map at `threshold`; with NaN threshold
/// (default) the map's mean is used, matching §4.4.
GroupLabels ThresholdGroups(const Tensor& sensitive_map,
                            double threshold = std::nan(""));

/// The paper's three residual-disparity metrics (Eq. 6 and §3.5):
///   RD  — difference of summed residuals (ŷ - y) per G+ cell vs per
///         G- cell over the evaluation period,
///   PRD — same with positive residuals max(0, ŷ-y) (overestimation),
///   NRD — same with negative residuals max(0, y-ŷ) (underestimation).
/// Zero is perfectly fair; sign shows which group is favored.
struct ResidualMetrics {
  double rd = 0.0;
  double prd = 0.0;
  double nrd = 0.0;
};

/// Accumulates RD/PRD/NRD over a sequence of prediction/truth grids
/// ([W, H] each, one per evaluation timestep).
class ResidualAccumulator {
 public:
  explicit ResidualAccumulator(GroupLabels groups);

  /// Adds one timestep of predictions vs ground truth.
  void Add(const Tensor& prediction, const Tensor& truth);

  /// Current metrics (normalized by group sizes per Eq. 6).
  ResidualMetrics Metrics() const;

  int64_t timesteps() const { return timesteps_; }

 private:
  GroupLabels groups_;
  double pos_adv_ = 0.0, pos_dis_ = 0.0;
  double neg_adv_ = 0.0, neg_dis_ = 0.0;
  double res_adv_ = 0.0, res_dis_ = 0.0;
  int64_t timesteps_ = 0;
};

}  // namespace core
}  // namespace equitensor

#endif  // EQUITENSOR_CORE_FAIRNESS_METRICS_H_
