#ifndef EQUITENSOR_CORE_SERVING_H_
#define EQUITENSOR_CORE_SERVING_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/downstream.h"
#include "core/fairness_metrics.h"
#include "models/cdae.h"
#include "util/http_server.h"
#include "util/json.h"
#include "util/request_trace.h"

namespace equitensor {
namespace core {

/// The serving layer (DESIGN.md §14): a trained EquiTensor answers
/// queries for many downstream consumers over HTTP — the paper's reuse
/// story (Figure 1B) as a live system instead of offline benches.
///
///   equitensor_train --output_serving=s.etck   (writes the bundle)
///   equitensor_serve --checkpoint=s.etck       (answers queries)
///
/// A serving checkpoint is an ETCK v2 container holding the
/// materialized representation Z, the sensitive-attribute map S, the
/// downstream target history, and (optionally) the trained CoreCdae
/// encoder parameters with enough config metadata to rebuild the
/// module. At load time the daemon fits the downstream GridPredictor
/// head on the stored target with Z features (deterministic in the
/// task seed, so two daemons loading the same bundle serve bitwise-
/// identical predictions), audits Z against S, and starts serving.

/// What goes into a serving checkpoint.
struct ServingArtifacts {
  Tensor z;              // [K, W, H, T'] materialized representation
  Tensor sensitive_map;  // [W, H] sensitive attribute in [0, 1]
  Tensor target;         // [W, H, T] downstream target, max-abs scaled
  float target_scale = 1.0f;  // divisor mapping target back to raw counts
  std::string task_name = "bikeshare";
  /// When non-null, the encoder parameters plus config/spec metadata
  /// are stored under the "model." prefix so the daemon can rebuild
  /// and verify the module (and future raw-input paths can encode).
  const models::CoreCdae* encoder = nullptr;
};

/// Atomically writes the serving bundle (ETCK v2). False on I/O error.
bool SaveServingCheckpoint(const std::string& path,
                           const ServingArtifacts& artifacts);

/// An immutable loaded model generation. Built by LoadServingModel,
/// published behind a snapshot pointer, and kept alive by in-flight
/// requests through their shared_ptr — the hot-reload contract: a
/// reload swaps the pointer, requests already holding the old
/// generation finish on it.
class ServingModel {
 public:
  /// The bundle's tensors. `z` is [K, W, H, T'].
  const Tensor& z() const { return z_; }
  const Tensor& sensitive_map() const { return sensitive_map_; }
  const Tensor& target() const { return target_; }
  float target_scale() const { return target_scale_; }
  const std::string& task_name() const { return task_name_; }

  int64_t k() const { return z_.dim(0); }
  int64_t w() const { return z_.dim(1); }
  int64_t h() const { return z_.dim(2); }
  int64_t z_hours() const { return z_.dim(3); }

  /// Valid last-observed hours for Predict: enough target history
  /// before `t`, and Z must cover hour t+1.
  int64_t predict_t_min() const { return predict_t_min_; }
  int64_t predict_t_max() const { return predict_t_max_; }

  /// Batched downstream forward: one pass over the stacked histories
  /// and Z snapshots of every `t0s` entry. Returns [N, 1, W, H].
  /// Per-sample results are bitwise-independent of the batch
  /// composition (the conv kernels reduce each output element in a
  /// fixed serial order regardless of N — DESIGN.md §8/§13), which is
  /// what makes request coalescing transparent. Not thread-safe;
  /// serialize calls (the PredictBatcher does).
  Tensor Predict(const std::vector<int64_t>& t0s) const;

  /// The K-vector Z[:, cx, cy, t].
  std::vector<float> EmbeddingAt(int64_t cx, int64_t cy, int64_t t) const;

  /// Audit of the full Z against S, computed once at load.
  const FairnessSignal& base_audit() const { return base_audit_; }

  /// Audit of the single time slice Z[:, :, :, t] against S.
  FairnessSignal AuditSlice(int64_t t) const;

  /// Restored encoder (may be null when the bundle has no model).
  const models::CoreCdae* encoder() const { return encoder_.get(); }

  /// Trainable scalars across encoder + predictor head.
  int64_t parameter_count() const;

  /// Monotone generation number assigned by the loader (1 = initial).
  int64_t generation() const { return generation_; }

 private:
  friend std::shared_ptr<const ServingModel> LoadServingModel(
      const std::string& path, const GridTaskConfig& task,
      int64_t generation, std::string* error);

  ServingModel() = default;

  Tensor z_, sensitive_map_, target_;
  float target_scale_ = 1.0f;
  std::string task_name_;
  GridTaskConfig task_;
  int64_t predict_t_min_ = 0, predict_t_max_ = 0;
  std::unique_ptr<models::CoreCdae> encoder_;
  std::unique_ptr<RepresentationExoProvider> exo_;
  std::unique_ptr<models::GridPredictor> predictor_;
  FairnessSignal base_audit_;
  int64_t generation_ = 0;
};

/// Loads a serving checkpoint, rebuilds/restores the encoder when the
/// bundle carries one, fits the downstream predictor head (seeded by
/// `task.seed` — deterministic), and audits Z. Returns null with a
/// reason in `*error` on any validation failure; never aborts on bad
/// input.
std::shared_ptr<const ServingModel> LoadServingModel(
    const std::string& path, const GridTaskConfig& task, int64_t generation,
    std::string* error);

/// Thread-safe LRU cache for rendered embedding responses, keyed by
/// the (cx, cy, t) cell-window coordinate. Capacity 0 disables
/// caching. Cleared on hot reload (entries embed the generation).
class EmbeddingCache {
 public:
  explicit EmbeddingCache(size_t capacity);

  /// Probe; records the lookup duration as the request's cache stage
  /// when a context is attached.
  bool Get(int64_t key, std::string* out, RequestContext* context = nullptr);
  void Put(int64_t key, std::string value);
  void Clear();

  size_t capacity() const { return capacity_; }
  size_t size() const;
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<std::pair<int64_t, std::string>> lru_;  // front = most recent
  std::unordered_map<int64_t,
                     std::list<std::pair<int64_t, std::string>>::iterator>
      index_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

/// Outcome of one /predict request.
struct PredictOutcome {
  bool ok = false;
  std::string error;      // set when !ok
  int64_t generation = 0;
  Tensor grid;            // [W, H] scaled prediction
};

/// Coalesces concurrent /predict requests into one batched forward
/// pass. HTTP workers block in Predict(); a dedicated batcher thread
/// drains the queue: it takes the first request, waits up to
/// `window_ms` for the batch to fill to `max_batch`, runs ONE
/// ServingModel::Predict over the stacked hours, and distributes the
/// per-sample slices. Because per-sample results are batch-invariant
/// (see ServingModel::Predict), coalescing is bitwise-transparent:
/// max_batch = 1 produces identical responses, just slower. All model
/// execution funnels through the single batcher thread, so the
/// forward pass itself never runs concurrently.
class PredictBatcher {
 public:
  struct Options {
    int64_t max_batch = 8;
    int64_t window_ms = 2;
  };
  using ModelProvider = std::function<std::shared_ptr<const ServingModel>()>;

  PredictBatcher(Options options, ModelProvider provider);
  ~PredictBatcher();

  void Start();
  void Stop();

  /// Blocking; safe from any thread. Fails fast (without touching the
  /// model) when `t` is outside the current generation's range. With a
  /// context attached, the batcher records the request's queue-wait,
  /// batch-wait, and forward stages; the caller stays blocked on the
  /// future while the batcher thread writes, and the batcher never
  /// touches the context after fulfilling the promise, so the two
  /// threads hand the context off without overlap.
  PredictOutcome Predict(int64_t t, RequestContext* context = nullptr);

  uint64_t batches_run() const {
    return batches_run_.load(std::memory_order_relaxed);
  }
  uint64_t requests_batched() const {
    return requests_batched_.load(std::memory_order_relaxed);
  }
  uint64_t max_batch_observed() const {
    return max_batch_observed_.load(std::memory_order_relaxed);
  }

 private:
  struct Pending {
    int64_t t = 0;
    std::chrono::steady_clock::time_point enqueue;
    RequestContext* context = nullptr;  // null when unobserved
    std::promise<PredictOutcome> promise;
  };
  void Loop();
  void Execute(std::vector<Pending> batch);

  Options options_;
  ModelProvider provider_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stop_ = true;
  std::thread worker_;
  std::atomic<uint64_t> batches_run_{0};
  std::atomic<uint64_t> requests_batched_{0};
  std::atomic<uint64_t> max_batch_observed_{0};
};

/// The daemon: checkpoint lifecycle (initial load + SIGHUP hot
/// reload), the HTTP frontend, the batcher, and the embedding cache.
///
/// Endpoints:
///   GET  /healthz            200 "ok" once a model is loaded
///   GET  /metrics            Prometheus exposition (util/prom)
///   GET  /status             JSON: generation, ranges, cache/batch/
///                            reload counters
///   GET  /embed?cx=&cy=&t=   JSON: Z[:, cx, cy, t] (LRU-cached)
///   GET  /predict?t=N        JSON: scaled prediction grid for hour
///   POST /predict {"t": N}   t+1..t+horizon (batched forward)
///   GET  /fairness[?t=N]     JSON: corr(Z,S) + parity gap, full Z or
///                            one time slice
///   GET  /debug/requests     JSON: last-K request timelines (seqlock
///                            ring — DESIGN.md §16)
///   GET  /debug/slow         JSON: top-K slowest requests
///   GET  /debug/stages       JSON: per-stage / per-endpoint latency
///                            percentiles (loadgen scrapes this)
class ServingService {
 public:
  struct Options {
    std::string checkpoint_path;
    GridTaskConfig task;             // predictor fit recipe (seeded)
    PredictBatcher::Options batch;
    size_t cache_capacity = 4096;
    HttpServer::Options http;
    /// Request observability (DESIGN.md §16). With `observe` false the
    /// server attaches no observer, mounts no /debug routes, and the
    /// request path records nothing — the overhead-baseline mode that
    /// `bench_serving.sh` measures against.
    bool observe = true;
    RequestObservability::Options observability;
  };

  explicit ServingService(Options options);
  ~ServingService();

  ServingService(const ServingService&) = delete;
  ServingService& operator=(const ServingService&) = delete;

  /// Loads the initial model (fits the predictor head — takes a
  /// moment). Must succeed before Start().
  bool LoadInitial(std::string* error);

  /// Binds `port` (0 = ephemeral) and starts the batcher + frontend.
  bool Start(int port, std::string* error);
  void Stop();

  /// Hot reload: loads the checkpoint path again, atomically swaps
  /// the model pointer, clears the embedding cache. In-flight
  /// requests finish on the generation they started with. On failure
  /// the old model keeps serving and `*error` says why.
  bool Reload(std::string* error);

  int port() const { return http_.port(); }
  bool running() const { return http_.running(); }

  std::shared_ptr<const ServingModel> model() const;
  int64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }
  uint64_t reloads() const { return reloads_.load(std::memory_order_relaxed); }
  uint64_t reload_failures() const {
    return reload_failures_.load(std::memory_order_relaxed);
  }

  const HttpServer& http() const { return http_; }
  EmbeddingCache& cache() { return cache_; }
  PredictBatcher& batcher() { return batcher_; }
  /// Null when Options::observe is false.
  RequestObservability* observability() { return observability_.get(); }

 private:
  HttpResponse HandleEmbed(const HttpRequest& request);
  HttpResponse HandlePredict(const HttpRequest& request);
  HttpResponse HandleFairness(const HttpRequest& request);
  HttpResponse HandleStatus(const HttpRequest& request);
  void SetModel(std::shared_ptr<const ServingModel> model);

  Options options_;
  mutable std::mutex model_mu_;
  std::shared_ptr<const ServingModel> model_;
  std::atomic<int64_t> generation_{0};
  std::atomic<uint64_t> reloads_{0};
  std::atomic<uint64_t> reload_failures_{0};
  std::string last_reload_error_;  // guarded by model_mu_
  std::unique_ptr<RequestObservability> observability_;
  EmbeddingCache cache_;
  PredictBatcher batcher_;
  HttpServer http_;
  std::chrono::steady_clock::time_point start_time_;
};

}  // namespace core
}  // namespace equitensor

#endif  // EQUITENSOR_CORE_SERVING_H_
