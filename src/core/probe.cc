#include "core/probe.h"

#include <vector>

#include "models/adversary.h"
#include "models/cdae.h"
#include "util/check.h"

namespace equitensor {
namespace core {
namespace {

// Stacks representation windows [start, start+window) into
// [N, K, W, H, window].
Tensor StackWindows(const Tensor& rep, const std::vector<int64_t>& starts,
                    int64_t window) {
  const int64_t k = rep.dim(0), w = rep.dim(1), h = rep.dim(2), t = rep.dim(3);
  const int64_t n = static_cast<int64_t>(starts.size());
  Tensor out({n, k, w, h, window});
  for (int64_t b = 0; b < n; ++b) {
    const int64_t start = starts[static_cast<size_t>(b)];
    ET_CHECK(start >= 0 && start + window <= t);
    for (int64_t row = 0; row < k * w * h; ++row) {
      const float* src = rep.data() + row * t + start;
      float* dst = out.data() + (b * k * w * h + row) * window;
      std::copy(src, src + window, dst);
    }
  }
  return out;
}

}  // namespace

double ProbeSensitiveLeakage(const Tensor& representation,
                             const Tensor& sensitive_map,
                             const ProbeConfig& config) {
  ET_CHECK_EQ(representation.rank(), 4);
  ET_CHECK_EQ(sensitive_map.rank(), 2);
  ET_CHECK_EQ(representation.dim(1), sensitive_map.dim(0));
  ET_CHECK_EQ(representation.dim(2), sensitive_map.dim(1));
  const int64_t t = representation.dim(3);
  ET_CHECK_GE(t, 2 * config.window)
      << "horizon too short for disjoint train/eval windows";

  Rng rng(config.seed);
  models::AdversaryNet probe(representation.dim(0), rng, config.kernel);
  nn::Adam optimizer(probe.Parameters(), config.optimizer);

  // First half of the horizon trains, second half evaluates.
  const int64_t train_max = t / 2 - config.window;
  const int64_t eval_min = t / 2;
  const int64_t eval_max = t - config.window;
  ET_CHECK_GE(train_max, 0);
  ET_CHECK_GE(eval_max, eval_min);

  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    for (int64_t step = 0; step < config.steps_per_epoch; ++step) {
      std::vector<int64_t> starts;
      for (int64_t b = 0; b < config.batch_size; ++b) {
        starts.push_back(static_cast<int64_t>(
            rng.UniformInt(static_cast<uint64_t>(train_max + 1))));
      }
      Tensor batch = StackWindows(representation, starts, config.window);
      Tensor s_tiled = models::TileSensitiveMap(
          sensitive_map, config.batch_size, config.window);
      Variable z(std::move(batch), /*requires_grad=*/false);
      Variable loss = probe.Loss(z, s_tiled);
      Backward(loss);
      optimizer.Step();
    }
  }

  // Held-out evaluation.
  double total = 0.0;
  int64_t count = 0;
  for (int64_t b = 0; b < config.eval_batches; ++b) {
    std::vector<int64_t> starts;
    for (int64_t i = 0; i < config.batch_size; ++i) {
      starts.push_back(eval_min + static_cast<int64_t>(rng.UniformInt(
                                      static_cast<uint64_t>(eval_max - eval_min + 1))));
    }
    Tensor batch = StackWindows(representation, starts, config.window);
    Tensor s_tiled = models::TileSensitiveMap(sensitive_map,
                                              config.batch_size, config.window);
    Variable z(std::move(batch), /*requires_grad=*/false);
    total += probe.Loss(z, s_tiled).scalar();
    ++count;
  }
  return total / static_cast<double>(count);
}

Tensor GaussianNoiseRepresentation(int64_t k, int64_t w, int64_t h, int64_t t,
                                   uint64_t seed) {
  Rng rng(seed);
  return Tensor::RandomNormal({k, w, h, t}, rng, 0.0f, 1.0f);
}

}  // namespace core
}  // namespace equitensor
