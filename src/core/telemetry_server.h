#ifndef EQUITENSOR_CORE_TELEMETRY_SERVER_H_
#define EQUITENSOR_CORE_TELEMETRY_SERVER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/http_server.h"
#include "util/json.h"

namespace equitensor {
namespace core {

/// Lock-free single-writer snapshot cell: a seqlock over a double
/// buffer (DESIGN.md §12). The training thread Publish()es a rendered
/// document once per epoch; HTTP workers Read() it at scrape time.
/// The writer is wait-free (two atomic bumps around a memcpy into the
/// slot the readers are *not* pointed at), so publishing never blocks
/// on a slow scrape — the requirement that keeps serving off the
/// training hot path. Readers copy optimistically and retry when the
/// sequence moved underneath them; with one publish per epoch a
/// retry is already rare, a second is practically impossible.
class SnapshotCell {
 public:
  explicit SnapshotCell(size_t capacity = 256 * 1024);

  /// Publishes `doc` (single writer only). Documents larger than the
  /// capacity are replaced by a small diagnostic JSON object rather
  /// than truncated into invalid JSON.
  void Publish(const std::string& doc);

  /// Copies the latest published document; false before the first
  /// Publish. Safe from any thread.
  bool Read(std::string* out) const;

  size_t capacity() const { return capacity_; }

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};  // odd while the writer is inside
    std::atomic<size_t> len{0};
    std::vector<char> data;
  };

  const size_t capacity_;
  Slot slots_[2];
  std::atomic<int> active_{-1};  // -1 until the first Publish
};

/// The live observability endpoint of a training run (DESIGN.md §12):
/// mounts util/http_server with
///   /metrics  — Prometheus text exposition of the metrics registry
///               plus kernel-timing histograms from the trace layer,
///               rendered fresh per scrape (the registry is lock-free)
///   /healthz  — 200 "ok" until the numerics sentinel (or any caller
///               of SetHealth) reports otherwise, then 503 with the
///               offending point
///   /status   — JSON snapshot of the newest epoch (same values as
///               the JSONL telemetry record), published through a
///               SnapshotCell
///   /fairness — JSON per-epoch history of the live fairness audit
///               (Pearson corr of Z vs S, demographic-parity gap)
///   /debug/requests — JSON ring of the last scrapes' request
///               timelines (DESIGN.md §16; same layer as the serving
///               daemon's, with metric prefix "telemetry")
/// Wire a run into it via TrainTelemetry::AttachServer.
class TelemetryServer {
 public:
  TelemetryServer();
  ~TelemetryServer();

  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  /// Binds `port` (0 = ephemeral) and starts serving. Returns false
  /// with a reason when the port is taken or the server already runs.
  bool Start(int port, std::string* error);

  int port() const { return http_.port(); }
  bool running() const { return http_.running(); }

  /// Graceful stop: closes the listen socket, completes in-flight
  /// responses, joins every server thread. Idempotent.
  void Stop();

  /// Single-writer publication (the training thread).
  void PublishStatus(const JsonValue& doc);
  void PublishFairness(const JsonValue& doc);

  /// Flips /healthz; `detail` names the offending layer/point.
  void SetHealth(bool healthy, const std::string& detail);
  bool healthy() const { return healthy_.load(std::memory_order_acquire); }

  uint64_t requests_served() const { return http_.requests_served(); }

  RequestObservability& observability() { return observability_; }

 private:
  HttpServer http_;
  RequestObservability observability_;
  SnapshotCell status_;
  SnapshotCell fairness_;
  SnapshotCell health_detail_;
  std::atomic<bool> healthy_{true};
};

}  // namespace core
}  // namespace equitensor

#endif  // EQUITENSOR_CORE_TELEMETRY_SERVER_H_
