#ifndef EQUITENSOR_CORE_DOWNSTREAM_H_
#define EQUITENSOR_CORE_DOWNSTREAM_H_

#include <memory>
#include <vector>

#include "core/fairness_metrics.h"
#include "data/generators.h"
#include "models/predictor.h"
#include "nn/optimizer.h"

namespace equitensor {
namespace core {

/// Supplies the per-cell exogenous feature channels a downstream
/// predictor sees for a given target hour. Implementations exist for
/// the oracle feature sets (Table 1) and for learned representations
/// (PCA / early fusion / EquiTensors).
class ExoProvider {
 public:
  virtual ~ExoProvider() = default;

  /// Number of feature channels.
  virtual int64_t channels() const = 0;

  /// Last target hour (exclusive) for which features exist.
  virtual int64_t horizon() const = 0;

  /// Writes the [E, W, H] snapshot for target hour `t` into `out`
  /// (already sized). 1D features are tiled over space.
  virtual void Snapshot(int64_t t, Tensor* out) const = 0;
};

/// Per-channel standardization parameters applied by the providers:
/// downstream models see z-scored features. Without this, max-abs
/// scaled channels with a large constant offset (e.g. pressure ≈ 0.99
/// everywhere) drown out small-magnitude informative channels.
struct ChannelNorm {
  float mean = 0.0f;
  float inv_std = 1.0f;
};

/// Oracle features: the hand-selected datasets of Table 1, sampled at
/// the target hour (1D tiled over space, 2D as-is, 3D at the hour),
/// z-scored per channel.
class OracleExoProvider : public ExoProvider {
 public:
  OracleExoProvider(const data::UrbanDataBundle* bundle, data::Task task);
  int64_t channels() const override;
  int64_t horizon() const override;
  void Snapshot(int64_t t, Tensor* out) const override;

 private:
  const data::UrbanDataBundle* bundle_;
  std::vector<int> indices_;
  std::vector<ChannelNorm> norms_;
};

/// Learned-representation features: channels of a [K, W, H, T'] tensor
/// at the target hour, z-scored per channel.
class RepresentationExoProvider : public ExoProvider {
 public:
  /// `representation` must outlive the provider.
  explicit RepresentationExoProvider(const Tensor* representation);
  int64_t channels() const override;
  int64_t horizon() const override;
  void Snapshot(int64_t t, Tensor* out) const override;

 private:
  const Tensor* representation_;
  std::vector<ChannelNorm> norms_;
};

/// Mean / inverse-std of a contiguous value range (1e-6 floor on std).
ChannelNorm ComputeChannelNorm(const float* values, int64_t count);

/// Configuration of a spatio-temporal downstream task run.
struct GridTaskConfig {
  int64_t history = 24;   // hours of target history fed to the model
  int64_t horizon = 1;    // hours aggregated into the prediction target
  double train_fraction = 0.75;
  int64_t epochs = 4;
  int64_t steps_per_epoch = 20;
  int64_t batch_size = 8;
  int64_t eval_stride = 3;  // evaluate every k-th test hour
  models::GridPredictorConfig predictor;
  nn::AdamOptions optimizer;
  uint64_t seed = 123;
};

/// Result of one downstream run: accuracy in scaled units and the
/// §3.5 fairness metrics in raw counts.
struct GridTaskResult {
  double mae = 0.0;
  ResidualMetrics fairness;
  int64_t eval_samples = 0;
};

/// Stacks target history windows ending at (exclusive) hours `t0s`
/// into [N, 1, W, H, history]. Shared by training, evaluation, and
/// the serving daemon's batched forward path (DESIGN.md §14): a batch
/// of requests is exactly a longer `t0s`.
Tensor StackTargetHistory(const Tensor& target,
                          const std::vector<int64_t>& t0s, int64_t history);

/// Stacks exo snapshots at target hours t0+1 into [N, E, W, H].
Tensor StackExoSnapshots(const ExoProvider& exo,
                         const std::vector<int64_t>& t0s, int64_t w,
                         int64_t h);

/// A predictor trained by TrainGridPredictor, plus the hour ranges it
/// was trained under (t_min/train_end/t_limit as computed from the
/// target horizon, the task config, and the exo provider).
struct TrainedGridPredictor {
  std::unique_ptr<models::GridPredictor> model;
  int64_t t_min = 0;
  int64_t train_end = 0;
  int64_t t_limit = 0;
};

/// Trains a GridPredictor on `target` with the features of `exo`
/// (nullptr = no exogenous features), deterministically in
/// `config.seed`. This is the training half of RunGridTask, exposed so
/// the serving daemon can fit the downstream head once at
/// checkpoint-load time and then serve forward passes from it.
TrainedGridPredictor TrainGridPredictor(const Tensor& target,
                                        const ExoProvider* exo,
                                        const GridTaskConfig& config);

/// Trains a GridPredictor on `target` ([W, H, T], max-abs scaled, with
/// `scale` mapping back to raw counts) using the features of `exo`
/// (nullptr = the "No exogenous data" baseline), then evaluates MAE
/// and RD/PRD/NRD on the held-out tail of the horizon.
GridTaskResult RunGridTask(const Tensor& target, float scale,
                           const Tensor& sensitive_map,
                           const ExoProvider* exo,
                           const GridTaskConfig& config);

/// Per-hour feature series for the 1D bike-count task.
class SeriesExoProvider {
 public:
  virtual ~SeriesExoProvider() = default;
  virtual int64_t channels() const = 0;
  virtual int64_t horizon() const = 0;
  /// Feature values at hour `t` appended to `out` (size channels()).
  virtual void At(int64_t t, float* out) const = 0;
};

/// Oracle 1D features (weather series) for bike count.
class OracleSeriesProvider : public SeriesExoProvider {
 public:
  OracleSeriesProvider(const data::UrbanDataBundle* bundle, data::Task task);
  int64_t channels() const override;
  int64_t horizon() const override;
  void At(int64_t t, float* out) const override;

 private:
  const data::UrbanDataBundle* bundle_;
  std::vector<int> indices_;
  std::vector<ChannelNorm> norms_;
};

/// The representation's time series at one grid cell (§4.4: "query the
/// EquiTensor to extract the time series of the corresponding cell"),
/// z-scored per channel over that cell's series.
class CellSeriesProvider : public SeriesExoProvider {
 public:
  CellSeriesProvider(const Tensor* representation, int64_t cx, int64_t cy);
  int64_t channels() const override;
  int64_t horizon() const override;
  void At(int64_t t, float* out) const override;

 private:
  const Tensor* representation_;
  int64_t cx_, cy_;
  std::vector<ChannelNorm> norms_;
};

/// Configuration of the seq-to-seq bike-count run.
struct SeriesTaskConfig {
  int64_t history = 48;
  int64_t horizon = 6;
  int64_t hidden = 24;
  double train_fraction = 0.75;
  int64_t epochs = 4;
  int64_t steps_per_epoch = 30;
  int64_t batch_size = 8;
  int64_t eval_stride = 4;
  nn::AdamOptions optimizer;
  uint64_t seed = 321;
};

struct SeriesTaskResult {
  double mae = 0.0;  // raw counts
  int64_t eval_samples = 0;
};

/// Trains the LSTM forecaster on the raw count series (scaled
/// internally) with optional exogenous series; returns raw-unit MAE.
SeriesTaskResult RunSeriesTask(const Tensor& series,
                               const SeriesExoProvider* exo,
                               const SeriesTaskConfig& config);

}  // namespace core
}  // namespace equitensor

#endif  // EQUITENSOR_CORE_DOWNSTREAM_H_
