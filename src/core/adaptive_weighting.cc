#include "core/adaptive_weighting.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace equitensor {
namespace core {

const char* WeightingModeName(WeightingMode mode) {
  switch (mode) {
    case WeightingMode::kNone:
      return "none";
    case WeightingMode::kOurs:
      return "ours";
    case WeightingMode::kDwa:
      return "dwa";
    case WeightingMode::kUncertainty:
      return "uncertainty";
  }
  return "?";
}

AdaptiveWeighter::AdaptiveWeighter(WeightingMode mode, int64_t dataset_count,
                                   double alpha)
    : mode_(mode),
      dataset_count_(dataset_count),
      alpha_(alpha),
      weights_(static_cast<size_t>(dataset_count), 1.0) {
  ET_CHECK_GT(dataset_count, 0);
  ET_CHECK_GT(alpha, 0.0);
}

void AdaptiveWeighter::SetOptimalLosses(std::vector<double> optimal_losses) {
  ET_CHECK_EQ(static_cast<int64_t>(optimal_losses.size()), dataset_count_);
  for (double& loss : optimal_losses) loss = std::max(loss, 1e-8);
  optimal_losses_ = std::move(optimal_losses);
}

void AdaptiveWeighter::SoftmaxWeights(const std::vector<double>& scores) {
  // w_i = n * exp(r_i/alpha) / sum_j exp(r_j/alpha)  (Eq. 2).
  double max_score = scores[0];
  for (double s : scores) max_score = std::max(max_score, s);
  double denom = 0.0;
  std::vector<double> exps(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    exps[i] = std::exp((scores[i] - max_score) / alpha_);
    denom += exps[i];
  }
  for (size_t i = 0; i < scores.size(); ++i) {
    weights_[i] = static_cast<double>(dataset_count_) * exps[i] / denom;
  }
}

void AdaptiveWeighter::Update(const std::vector<double>& epoch_losses) {
  ET_CHECK_EQ(static_cast<int64_t>(epoch_losses.size()), dataset_count_);
  switch (mode_) {
    case WeightingMode::kNone:
    case WeightingMode::kUncertainty:
      return;  // Equal / externally managed weights.
    case WeightingMode::kOurs: {
      ET_CHECK(!optimal_losses_.empty())
          << "kOurs requires SetOptimalLosses() before Update()";
      // LP_i = L(t)_i / L(opt)_i, r_i = LP_i / mean(LP)  (Eq. 3).
      std::vector<double> lp(epoch_losses.size());
      double mean_lp = 0.0;
      for (size_t i = 0; i < epoch_losses.size(); ++i) {
        lp[i] = std::max(epoch_losses[i], 0.0) / optimal_losses_[i];
        mean_lp += lp[i];
      }
      mean_lp /= static_cast<double>(lp.size());
      if (mean_lp <= 0.0) return;
      for (double& r : lp) r /= mean_lp;
      SoftmaxWeights(lp);
      return;
    }
    case WeightingMode::kDwa: {
      history_.push_back(epoch_losses);
      if (history_.size() < 3) return;  // Liu et al.: w = 1 for t <= 2.
      const auto& prev = history_[history_.size() - 2];
      const auto& prev2 = history_[history_.size() - 3];
      std::vector<double> r(epoch_losses.size());
      for (size_t i = 0; i < r.size(); ++i) {
        r[i] = prev[i] / std::max(prev2[i], 1e-8);
      }
      SoftmaxWeights(r);
      return;
    }
  }
}

}  // namespace core
}  // namespace equitensor
