#include "core/adaptive_weighting.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace equitensor {
namespace core {

const char* WeightingModeName(WeightingMode mode) {
  switch (mode) {
    case WeightingMode::kNone:
      return "none";
    case WeightingMode::kOurs:
      return "ours";
    case WeightingMode::kDwa:
      return "dwa";
    case WeightingMode::kUncertainty:
      return "uncertainty";
  }
  return "?";
}

AdaptiveWeighter::AdaptiveWeighter(WeightingMode mode, int64_t dataset_count,
                                   double alpha)
    : mode_(mode),
      dataset_count_(dataset_count),
      alpha_(alpha),
      weights_(static_cast<size_t>(dataset_count), 1.0) {
  ET_CHECK_GT(dataset_count, 0);
  ET_CHECK_GT(alpha, 0.0);
}

void AdaptiveWeighter::SetOptimalLosses(std::vector<double> optimal_losses) {
  ET_CHECK_EQ(static_cast<int64_t>(optimal_losses.size()), dataset_count_);
  for (double& loss : optimal_losses) loss = std::max(loss, 1e-8);
  optimal_losses_ = std::move(optimal_losses);
}

void AdaptiveWeighter::SoftmaxWeights(const std::vector<double>& scores) {
  // w_i = n * exp(r_i/alpha) / sum_j exp(r_j/alpha)  (Eq. 2).
  double max_score = scores[0];
  for (double s : scores) max_score = std::max(max_score, s);
  double denom = 0.0;
  std::vector<double> exps(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    exps[i] = std::exp((scores[i] - max_score) / alpha_);
    denom += exps[i];
  }
  for (size_t i = 0; i < scores.size(); ++i) {
    weights_[i] = static_cast<double>(dataset_count_) * exps[i] / denom;
  }
}

void AdaptiveWeighter::Update(const std::vector<double>& epoch_losses) {
  ET_CHECK_EQ(static_cast<int64_t>(epoch_losses.size()), dataset_count_);
  switch (mode_) {
    case WeightingMode::kNone:
    case WeightingMode::kUncertainty:
      return;  // Equal / externally managed weights.
    case WeightingMode::kOurs: {
      ET_CHECK(!optimal_losses_.empty())
          << "kOurs requires SetOptimalLosses() before Update()";
      // LP_i = L(t)_i / L(opt)_i, r_i = LP_i / mean(LP)  (Eq. 3).
      std::vector<double> lp(epoch_losses.size());
      double mean_lp = 0.0;
      for (size_t i = 0; i < epoch_losses.size(); ++i) {
        lp[i] = std::max(epoch_losses[i], 0.0) / optimal_losses_[i];
        mean_lp += lp[i];
      }
      mean_lp /= static_cast<double>(lp.size());
      if (mean_lp <= 0.0) return;
      for (double& r : lp) r /= mean_lp;
      SoftmaxWeights(lp);
      return;
    }
    case WeightingMode::kDwa: {
      // Liu et al.: w = 1 for t <= 2, then ratios of the two previous
      // epochs' losses.
      if (epochs_seen_ >= 2) {
        std::vector<double> r(epoch_losses.size());
        for (size_t i = 0; i < r.size(); ++i) {
          r[i] = prev_losses_[i] / std::max(prev2_losses_[i], 1e-8);
        }
        SoftmaxWeights(r);
      }
      prev2_losses_ = std::move(prev_losses_);
      prev_losses_ = epoch_losses;
      ++epochs_seen_;
      return;
    }
  }
}

WeighterState AdaptiveWeighter::GetState() const {
  WeighterState state;
  state.weights = weights_;
  state.optimal_losses = optimal_losses_;
  state.prev_losses = prev_losses_;
  state.prev2_losses = prev2_losses_;
  state.epochs_seen = epochs_seen_;
  return state;
}

bool AdaptiveWeighter::SetState(const WeighterState& state) {
  const auto n = static_cast<size_t>(dataset_count_);
  const auto sized = [n](const std::vector<double>& v) {
    return v.empty() || v.size() == n;
  };
  if (state.weights.size() != n || !sized(state.optimal_losses) ||
      !sized(state.prev_losses) || !sized(state.prev2_losses) ||
      state.epochs_seen < 0) {
    return false;
  }
  weights_ = state.weights;
  optimal_losses_ = state.optimal_losses;
  for (double& loss : optimal_losses_) loss = std::max(loss, 1e-8);
  prev_losses_ = state.prev_losses;
  prev2_losses_ = state.prev2_losses;
  epochs_seen_ = state.epochs_seen;
  return true;
}

}  // namespace core
}  // namespace equitensor
