#include "core/equitensor.h"

#include <algorithm>
#include <cmath>

#include "autograd/ops.h"
#include "core/fairness_metrics.h"
#include "core/telemetry.h"
#include "data/preprocess.h"
#include "nn/serialize.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/shutdown.h"
#include "util/stopwatch.h"
#include "util/system_info.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace equitensor {
namespace core {

const char* FairnessModeName(FairnessMode mode) {
  switch (mode) {
    case FairnessMode::kNone:
      return "none";
    case FairnessMode::kAdversarial:
      return "adversarial";
    case FairnessMode::kGradReversal:
      return "grad_reversal";
  }
  return "?";
}

std::vector<models::DatasetSpec> EquiTensorTrainer::MakeSpecs(
    const std::vector<data::AlignedDataset>& datasets) {
  std::vector<models::DatasetSpec> specs;
  specs.reserve(datasets.size());
  for (const data::AlignedDataset& ds : datasets) {
    specs.push_back({ds.name, ds.kind, ds.channels()});
  }
  return specs;
}

EquiTensorTrainer::EquiTensorTrainer(
    EquiTensorConfig config, const std::vector<data::AlignedDataset>* datasets,
    const Tensor* sensitive_map)
    : config_(std::move(config)),
      datasets_(datasets),
      sensitive_map_(sensitive_map),
      sampler_(datasets, config_.cdae.window),
      rng_(config_.seed),
      weighter_(config_.weighting,
                static_cast<int64_t>(datasets->size()), config_.alpha) {
  ET_CHECK(datasets_ != nullptr && !datasets_->empty());
  const bool needs_s = config_.fairness != FairnessMode::kNone ||
                       config_.cdae.disentangle;
  if (needs_s) {
    ET_CHECK(sensitive_map_ != nullptr)
        << "fairness/disentangling requires a sensitive attribute map";
    ET_CHECK_EQ(sensitive_map_->rank(), 2);
    ET_CHECK_EQ(sensitive_map_->dim(0), config_.cdae.grid_w);
    ET_CHECK_EQ(sensitive_map_->dim(1), config_.cdae.grid_h);
  }

  Rng init_rng = rng_.Split();
  model_ = std::make_unique<models::CoreCdae>(config_.cdae,
                                              MakeSpecs(*datasets_), init_rng);
  std::vector<Variable> cdae_params = model_->Parameters();
  if (config_.weighting == WeightingMode::kUncertainty) {
    // Kendall et al. [25]: one trainable log-variance per dataset,
    // optimized jointly with the CDAE.
    uncertainty_log_vars_ = Variable(
        Tensor({static_cast<int64_t>(datasets_->size())}), true);
    cdae_params.push_back(uncertainty_log_vars_);
  }
  if (config_.fairness != FairnessMode::kNone) {
    adversary_ = std::make_unique<models::AdversaryNet>(
        config_.cdae.latent_channels, init_rng, config_.cdae.kernel);
    if (config_.fairness == FairnessMode::kAdversarial) {
      // Alternating training: the adversary has its own optimizer.
      adversary_optimizer_ = std::make_unique<nn::Adam>(
          adversary_->Parameters(), config_.optimizer);
    } else {
      // Gradient reversal: the head trains jointly with the CDAE under
      // a single optimizer [17, 50].
      for (const Variable& p : adversary_->Parameters()) {
        cdae_params.push_back(p);
      }
    }
  }
  cdae_optimizer_ =
      std::make_unique<nn::Adam>(cdae_params, config_.optimizer);
}

std::vector<double> EquiTensorTrainer::EstimateOptimalLosses() {
  // L(opt)_i: reconstruction error of a CDAE trained on dataset i
  // alone (§3.3). Uses reduced filter budgets implied by the same
  // CdaeConfig but a single-spec model.
  std::vector<double> optimal;
  optimal.reserve(datasets_->size());
  for (size_t i = 0; i < datasets_->size(); ++i) {
    const data::AlignedDataset& ds = (*datasets_)[i];
    models::CdaeConfig solo_cfg = config_.cdae;
    solo_cfg.disentangle = false;
    Rng solo_rng(config_.seed * 1000003ULL + i);
    models::CoreCdae solo(solo_cfg, {{ds.name, ds.kind, ds.channels()}},
                          solo_rng);
    nn::Adam opt(solo.Parameters(), config_.optimizer);

    std::vector<data::AlignedDataset> one = {ds};
    data::WindowSampler solo_sampler(&one, config_.cdae.window,
                                     sampler_.hours());
    double last_epoch_loss = 0.0;
    for (int64_t epoch = 0; epoch < config_.opt_loss_epochs; ++epoch) {
      double epoch_loss = 0.0;
      for (int64_t step = 0; step < config_.opt_loss_steps_per_epoch; ++step) {
        const auto starts =
            solo_sampler.SampleStarts(config_.batch_size, solo_rng);
        Tensor clean = solo_sampler.MakeBatchFor(0, starts);
        Tensor corrupted =
            data::Corrupt(clean, solo_cfg.corruption, solo_rng);
        Variable input(std::move(corrupted), /*requires_grad=*/false);
        Variable z = solo.Encode({input});
        const auto recons = solo.Decode(z, Variable());
        Variable loss = ag::MaeAgainst(recons[0], clean);
        epoch_loss += loss.scalar();
        Backward(loss);
        opt.Step();
      }
      last_epoch_loss =
          epoch_loss / static_cast<double>(config_.opt_loss_steps_per_epoch);
    }
    optimal.push_back(std::max(last_epoch_loss, 1e-8));
    ET_LOG(Debug) << "L(opt)[" << ds.name << "] = " << last_epoch_loss;
  }
  return optimal;
}

namespace {

double L2Norm(const Tensor& tensor) {
  double sq = 0.0;
  for (int64_t i = 0; i < tensor.size(); ++i) {
    sq += static_cast<double>(tensor[i]) * tensor[i];
  }
  return std::sqrt(sq);
}

/// Appends grad/weight norms for `params` (same order as the optimizer
/// that owns them); update_ratio is filled in after the step.
void CollectPreStepStats(const std::vector<nn::NamedParameter>& params,
                         std::vector<LayerStat>* out) {
  out->reserve(out->size() + params.size());
  for (const nn::NamedParameter& named : params) {
    LayerStat stat;
    stat.name = named.name;
    stat.grad_norm =
        named.param.grad_ready() ? L2Norm(named.param.grad()) : 0.0;
    stat.weight_norm = L2Norm(named.param.value());
    out->push_back(std::move(stat));
  }
}

void FillUpdateRatios(const std::vector<double>& update_norms, size_t offset,
                      std::vector<LayerStat>* out) {
  for (size_t k = 0; k < update_norms.size(); ++k) {
    LayerStat& stat = (*out)[offset + k];
    stat.update_ratio = update_norms[k] / (stat.weight_norm + 1e-12);
  }
}

}  // namespace

void EquiTensorTrainer::BuildStatParamLists() {
  if (stat_params_built_) return;
  stat_params_built_ = true;
  // Mirrors the cdae_params order assembled in the constructor — the
  // optimizers' update norms are indexed by that order.
  for (auto& [name, param] : model_->NamedParameters()) {
    cdae_stat_params_.push_back({"model." + name, param});
  }
  if (config_.weighting == WeightingMode::kUncertainty) {
    cdae_stat_params_.push_back({"uncertainty.log_vars",
                                 uncertainty_log_vars_});
  }
  if (adversary_) {
    std::vector<nn::NamedParameter>& into =
        config_.fairness == FairnessMode::kAdversarial ? adv_stat_params_
                                                       : cdae_stat_params_;
    for (auto& [name, param] : adversary_->NamedParameters()) {
      into.push_back({"adversary." + name, param});
    }
  }
}

std::vector<double> EquiTensorTrainer::TrainStep(
    const std::vector<int64_t>& starts, double* adversary_loss,
    std::vector<LayerStat>* layer_stats) {
  const int64_t n = static_cast<int64_t>(starts.size());
  const auto clean = sampler_.MakeBatch(starts);

  // Corrupt every input tensor (15 % of cells -> -1, §3.2).
  std::vector<Variable> inputs;
  inputs.reserve(clean.size());
  for (const Tensor& tensor : clean) {
    inputs.emplace_back(data::Corrupt(tensor, config_.cdae.corruption, rng_),
                        /*requires_grad=*/false);
  }

  Variable z = model_->Encode(inputs);

  Tensor s_tiled;
  const bool needs_s = config_.fairness != FairnessMode::kNone ||
                       config_.cdae.disentangle;
  if (needs_s) {
    s_tiled = models::TileSensitiveMap(*sensitive_map_, n,
                                       config_.cdae.window);
  }

  Variable s_for_decoder;  // undefined unless disentangling
  if (config_.cdae.disentangle) {
    s_for_decoder = Variable(s_tiled, /*requires_grad=*/false);
  }
  const auto recons = model_->Decode(z, s_for_decoder);
  const auto losses = model_->ReconstructionLosses(recons, clean);

  Variable total;
  if (config_.weighting == WeightingMode::kUncertainty) {
    // Kendall et al. [25]: sum_i exp(-s_i) * L_i + s_i with trainable
    // s_i (regularizer keeps the weights from collapsing to 0).
    Variable weights_var = ag::Exp(ag::Neg(uncertainty_log_vars_));
    Variable accum;
    for (size_t i = 0; i < losses.size(); ++i) {
      const int64_t idx = static_cast<int64_t>(i);
      Variable term = ag::Add(
          ag::Mul(ag::Slice(weights_var, {idx}, {1}),
                  ag::Reshape(losses[i], {1})),
          ag::Slice(uncertainty_log_vars_, {idx}, {1}));
      accum = i == 0 ? term : ag::Add(accum, term);
    }
    total = ag::Reshape(accum, {});
  } else {
    // Rule-based weighted reconstruction loss: sum_i w_i * L_i.
    const auto& weights = weighter_.weights();
    total = ag::MulScalar(losses[0], static_cast<float>(weights[0]));
    for (size_t i = 1; i < losses.size(); ++i) {
      total = ag::Add(
          total, ag::MulScalar(losses[i], static_cast<float>(weights[i])));
    }
  }

  *adversary_loss = 0.0;
  switch (config_.fairness) {
    case FairnessMode::kNone:
      break;
    case FairnessMode::kAdversarial: {
      // L_AE = L_rec + lambda * (1 - L_A)  (Eq. 5). The constant
      // lambda*1 does not affect gradients; we keep -lambda*L_A.
      Variable l_a = adversary_->Loss(z, s_tiled);
      *adversary_loss = l_a.scalar();
      total = ag::Add(total,
                      ag::MulScalar(l_a, -static_cast<float>(config_.lambda)));
      break;
    }
    case FairnessMode::kGradReversal: {
      // Fair CDAE: head minimizes its MAE while the reversed gradient
      // pushes the encoder to maximize it, scaled by lambda.
      Variable reversed =
          ag::GradReverse(z, static_cast<float>(config_.lambda));
      Variable l_h = adversary_->Loss(reversed, s_tiled);
      *adversary_loss = l_h.scalar();
      total = ag::Add(total, l_h);
      break;
    }
  }

  Backward(total);
  if (config_.fairness == FairnessMode::kAdversarial) {
    // Discard the gradients that leaked into the (frozen) adversary.
    adversary_optimizer_->ZeroGrad();
  }
  if (layer_stats != nullptr) {
    BuildStatParamLists();
    CollectPreStepStats(cdae_stat_params_, layer_stats);
    cdae_optimizer_->EnableUpdateNormTracking(true);
  }
  cdae_optimizer_->Step();
  if (layer_stats != nullptr) {
    FillUpdateRatios(cdae_optimizer_->last_update_norms(), 0, layer_stats);
    cdae_optimizer_->EnableUpdateNormTracking(false);
  }

  if (config_.fairness == FairnessMode::kAdversarial) {
    // Alternating phase 2 (§3.4): update the adversary against the
    // *updated* encoder — recompute Z with a fresh forward pass so the
    // adversary tracks the current representation. This is what makes
    // alternating training stronger than the joint gradient-reversal
    // head: a GRL head only ever sees the pre-update representation it
    // is co-adapted to, while this adversary chases the encoder.
    Variable z_current = ag::Detach(model_->Encode(inputs));
    Variable l_a = adversary_->Loss(z_current, s_tiled);
    Backward(l_a);
    const size_t adv_offset = layer_stats != nullptr ? layer_stats->size() : 0;
    if (layer_stats != nullptr) {
      CollectPreStepStats(adv_stat_params_, layer_stats);
      adversary_optimizer_->EnableUpdateNormTracking(true);
    }
    adversary_optimizer_->Step();
    if (layer_stats != nullptr) {
      FillUpdateRatios(adversary_optimizer_->last_update_norms(), adv_offset,
                       layer_stats);
      adversary_optimizer_->EnableUpdateNormTracking(false);
    }
  }

  std::vector<double> step_losses;
  step_losses.reserve(losses.size());
  for (const Variable& l : losses) {
    step_losses.push_back(static_cast<double>(l.scalar()));
  }
  return step_losses;
}

void EquiTensorTrainer::AuditFairness(EpochLog* entry) {
  if (sensitive_map_ == nullptr) return;
  ET_TRACE_SPAN("train.fairness_audit");
  // Clean (uncorrupted) probe batch from a dedicated RNG stream:
  // sampling from rng_ here would shift the training stream and break
  // bitwise-identical resume (checkpoint_resume_test).
  Rng audit_rng(config_.seed ^
                (0xFA1DBEEFULL + static_cast<uint64_t>(entry->epoch) *
                                     0x9E3779B97F4A7C15ULL));
  const auto starts = sampler_.SampleStarts(config_.batch_size, audit_rng);
  const Tensor z = model_->EncodeValue(sampler_.MakeBatch(starts));
  const FairnessSignal signal = AuditRepresentation(z, *sensitive_map_);
  entry->fairness_audited = true;
  entry->fairness_correlation = signal.correlation;
  entry->parity_gap = signal.parity_gap;
  ET_METRIC_GAUGE_SET("train.fairness_correlation", signal.correlation);
  ET_METRIC_GAUGE_SET("train.parity_gap", signal.parity_gap);
}

std::vector<double> EquiTensorTrainer::CurrentWeights() const {
  if (config_.weighting != WeightingMode::kUncertainty) {
    return weighter_.weights();
  }
  std::vector<double> weights;
  const Tensor& s = uncertainty_log_vars_.value();
  weights.reserve(static_cast<size_t>(s.size()));
  for (int64_t i = 0; i < s.size(); ++i) {
    weights.push_back(std::exp(-static_cast<double>(s[i])));
  }
  return weights;
}

void EquiTensorTrainer::SetCheckpointing(std::string path, int64_t every) {
  checkpoint_path_ = std::move(path);
  checkpoint_every_ = every;
}

void EquiTensorTrainer::SetLayerStatsEnabled(bool enabled) {
  layer_stats_enabled_ = enabled;
}

void EquiTensorTrainer::SetNumericsChecking(NanCheckMode mode,
                                            std::string bundle_path) {
  if (mode == NanCheckMode::kOff) {
    sentinel_.reset();
    return;
  }
  sentinel_ = std::make_unique<NumericsSentinel>(mode);
  sentinel_bundle_path_ = std::move(bundle_path);
}

void EquiTensorTrainer::CheckAllParameters() {
  sentinel_->CheckParameters("model.", model_->NamedParameters());
  if (uncertainty_log_vars_.defined()) {
    sentinel_->CheckParameters(
        "uncertainty.", {nn::NamedParameter{"log_vars", uncertainty_log_vars_}});
  }
  if (adversary_) {
    sentinel_->CheckParameters("adversary.", adversary_->NamedParameters());
  }
}

void EquiTensorTrainer::HandleSentinelTrip() {
  // Flip /healthz (and flush a final health record to the JSONL sink)
  // before aborting, so a scraper sees the unhealthy state and the
  // offending layer even though the process is about to die.
  if (telemetry_ != nullptr) {
    telemetry_->NoteUnhealthy(sentinel_->TripMessage());
  }
  std::vector<std::string> tail;
  if (telemetry_ != nullptr) tail = telemetry_->RecentRecords();
  sentinel_->WriteBundle(sentinel_bundle_path_, tail);
  ET_CHECK(false) << "numerics sentinel: " << sentinel_->TripMessage()
                  << "; diagnostic bundle: " << sentinel_bundle_path_;
}

void EquiTensorTrainer::SetTelemetry(TrainTelemetry* telemetry) {
  telemetry_ = telemetry;
  if (telemetry_ == nullptr) return;
  RunContext context;
  context.fairness = FairnessModeName(config_.fairness);
  context.weighting = WeightingModeName(config_.weighting);
  context.lambda = config_.lambda;
  context.alpha = config_.alpha;
  context.threads = NumThreads();
  context.epochs_total = config_.epochs;
  for (const data::AlignedDataset& ds : *datasets_) {
    context.dataset_names.push_back(ds.name);
  }
  telemetry_->set_context(std::move(context));
}

namespace {

/// Metadata keys of the trainer's full-state checkpoint (layout
/// documented in DESIGN.md §9).
constexpr char kStateKind[] = "equitensor.train_state";

}  // namespace

bool EquiTensorTrainer::SaveTrainingState(const std::string& path) const {
  nn::Checkpoint ckpt;
  ckpt.metadata.emplace_back("state.kind", kStateKind);
  ckpt.metadata.emplace_back("state.epoch", nn::EncodeI64(next_epoch_));
  ckpt.metadata.emplace_back("state.fairness",
                             FairnessModeName(config_.fairness));
  ckpt.metadata.emplace_back("state.weighting",
                             WeightingModeName(config_.weighting));
  ckpt.metadata.emplace_back("state.rng", nn::EncodeU64s(rng_.SerializeState()));

  const WeighterState ws = weighter_.GetState();
  ckpt.metadata.emplace_back("weighter.weights", nn::EncodeDoubles(ws.weights));
  ckpt.metadata.emplace_back("weighter.optimal_losses",
                             nn::EncodeDoubles(ws.optimal_losses));
  ckpt.metadata.emplace_back("weighter.prev_losses",
                             nn::EncodeDoubles(ws.prev_losses));
  ckpt.metadata.emplace_back("weighter.prev2_losses",
                             nn::EncodeDoubles(ws.prev2_losses));
  ckpt.metadata.emplace_back("weighter.epochs_seen",
                             nn::EncodeI64(ws.epochs_seen));

  for (auto& [name, param] : model_->NamedParameters()) {
    ckpt.tensors.emplace_back("model." + name, param.value());
  }
  if (uncertainty_log_vars_.defined()) {
    ckpt.tensors.emplace_back("uncertainty.log_vars",
                              uncertainty_log_vars_.value());
  }
  if (adversary_) {
    for (auto& [name, param] : adversary_->NamedParameters()) {
      ckpt.tensors.emplace_back("adversary." + name, param.value());
    }
  }
  cdae_optimizer_->AppendState("opt.cdae", &ckpt);
  if (adversary_optimizer_) adversary_optimizer_->AppendState("opt.adv", &ckpt);
  return nn::SaveCheckpoint(path, ckpt);
}

bool EquiTensorTrainer::LoadTrainingState(const std::string& path) {
  ET_CHECK(!trained_) << "LoadTrainingState must precede Train()";
  nn::Checkpoint ckpt;
  if (!nn::LoadCheckpoint(path, &ckpt)) return false;

  const std::string* kind = ckpt.FindMetadata("state.kind");
  if (kind == nullptr || *kind != kStateKind) {
    ET_LOG(Warning) << path << " is not a training-state checkpoint";
    return false;
  }
  const std::string* fairness = ckpt.FindMetadata("state.fairness");
  const std::string* weighting = ckpt.FindMetadata("state.weighting");
  if (fairness == nullptr || *fairness != FairnessModeName(config_.fairness) ||
      weighting == nullptr ||
      *weighting != WeightingModeName(config_.weighting)) {
    ET_LOG(Warning) << "training-state mode mismatch: checkpoint "
                    << (fairness ? *fairness : "?") << "/"
                    << (weighting ? *weighting : "?") << " vs config "
                    << FairnessModeName(config_.fairness) << "/"
                    << WeightingModeName(config_.weighting);
    return false;
  }

  const std::string* epoch_bytes = ckpt.FindMetadata("state.epoch");
  int64_t epoch = 0;
  if (epoch_bytes == nullptr || !nn::DecodeI64(*epoch_bytes, &epoch) ||
      epoch < 0) {
    ET_LOG(Warning) << "training-state: missing or invalid epoch counter";
    return false;
  }
  if (epoch >= config_.epochs) {
    ET_LOG(Warning) << "training-state already covers " << epoch
                    << " epoch(s); config asks for " << config_.epochs
                    << " — nothing left to train";
  }

  const std::string* rng_bytes = ckpt.FindMetadata("state.rng");
  std::vector<uint64_t> rng_words;
  Rng restored_rng(0);
  if (rng_bytes == nullptr || !nn::DecodeU64s(*rng_bytes, &rng_words) ||
      !restored_rng.DeserializeState(rng_words)) {
    ET_LOG(Warning) << "training-state: malformed RNG state";
    return false;
  }

  WeighterState ws;
  const auto read_doubles = [&ckpt](const char* key, std::vector<double>* out) {
    const std::string* bytes = ckpt.FindMetadata(key);
    return bytes != nullptr && nn::DecodeDoubles(*bytes, out);
  };
  const std::string* seen_bytes = ckpt.FindMetadata("weighter.epochs_seen");
  if (!read_doubles("weighter.weights", &ws.weights) ||
      !read_doubles("weighter.optimal_losses", &ws.optimal_losses) ||
      !read_doubles("weighter.prev_losses", &ws.prev_losses) ||
      !read_doubles("weighter.prev2_losses", &ws.prev2_losses) ||
      seen_bytes == nullptr ||
      !nn::DecodeI64(*seen_bytes, &ws.epochs_seen)) {
    ET_LOG(Warning) << "training-state: malformed weighter state";
    return false;
  }

  if (!nn::RestoreModuleFromCheckpoint(ckpt, "model.", model_.get())) {
    ET_LOG(Warning) << "training-state: model restore failed";
    return false;
  }
  if (config_.weighting == WeightingMode::kUncertainty) {
    const Tensor* log_vars = ckpt.FindTensor("uncertainty.log_vars");
    if (log_vars == nullptr ||
        !log_vars->SameShape(uncertainty_log_vars_.value())) {
      ET_LOG(Warning) << "training-state: missing/mismatched uncertainty "
                      << "log-variances";
      return false;
    }
    uncertainty_log_vars_.mutable_value() = *log_vars;
  }
  if (adversary_ &&
      !nn::RestoreModuleFromCheckpoint(ckpt, "adversary.", adversary_.get())) {
    ET_LOG(Warning) << "training-state: adversary restore failed";
    return false;
  }
  if (!cdae_optimizer_->RestoreState("opt.cdae", ckpt)) return false;
  if (adversary_optimizer_ &&
      !adversary_optimizer_->RestoreState("opt.adv", ckpt)) {
    return false;
  }
  if (!weighter_.SetState(ws)) {
    ET_LOG(Warning) << "training-state: weighter state size mismatch";
    return false;
  }
  optimal_losses_ = ws.optimal_losses;
  rng_ = restored_rng;
  next_epoch_ = epoch;
  resumed_ = true;
  ET_LOG(Info) << "resumed training state from " << path << " at epoch "
               << epoch;
  return true;
}

void EquiTensorTrainer::Train() {
  ET_CHECK(!trained_) << "Train() already ran on this instance";
  trained_ = true;
  if (sentinel_) sentinel_->Arm();

  if (config_.weighting == WeightingMode::kOurs) {
    if (resumed_) {
      // L(opt) estimates were persisted with the checkpoint; re-running
      // the estimation would waste work (the weighter already holds
      // them via SetState).
      ET_CHECK(!optimal_losses_.empty())
          << "resumed kOurs state lacks optimal losses";
    } else {
      optimal_losses_ = config_.precomputed_optimal_losses.empty()
                            ? EstimateOptimalLosses()
                            : config_.precomputed_optimal_losses;
      weighter_.SetOptimalLosses(optimal_losses_);
    }
  }

  const int64_t n_datasets = sampler_.dataset_count();
  for (int64_t epoch = next_epoch_; epoch < config_.epochs; ++epoch) {
    if (ShutdownRequested()) {
      // Cooperative Ctrl-C/SIGTERM (util/shutdown): stop at the epoch
      // boundary so the caller can still flush telemetry, write the
      // run summary, and exit 0 with everything completed so far.
      ET_LOG(Info) << "shutdown requested; stopping before epoch " << epoch;
      break;
    }
    ET_TRACE_SPAN("train.epoch");
    Stopwatch epoch_watch;
    EpochLog entry;
    entry.epoch = epoch;
    entry.weights = CurrentWeights();
    std::vector<double> probe_sums(static_cast<size_t>(n_datasets), 0.0);
    const int64_t probe_steps =
        std::min(config_.weighting_probe_steps, config_.steps_per_epoch);
    double adv_sum = 0.0;
    for (int64_t step = 0; step < config_.steps_per_epoch; ++step) {
      const auto starts = sampler_.SampleStarts(config_.batch_size, rng_);
      double adv_loss = 0.0;
      if (sentinel_) sentinel_->SetPosition(epoch, step);
      const bool collect_stats =
          layer_stats_enabled_ && step + 1 == config_.steps_per_epoch;
      const auto losses = TrainStep(
          starts, &adv_loss, collect_stats ? &entry.layer_stats : nullptr);
      adv_sum += adv_loss;
      if (sentinel_ && sentinel_->mode() == NanCheckMode::kStep) {
        for (size_t i = 0; i < losses.size(); ++i) {
          sentinel_->CheckScalar("loss." + (*datasets_)[i].name, losses[i]);
        }
        sentinel_->CheckScalar("loss.adversary", adv_loss);
        CheckAllParameters();
      }
      // Hooks can trip mid-TrainStep; fail fast before the next batch.
      if (sentinel_ && sentinel_->tripped()) HandleSentinelTrip();
      if (step < probe_steps) {
        for (int64_t i = 0; i < n_datasets; ++i) {
          probe_sums[static_cast<size_t>(i)] +=
              losses[static_cast<size_t>(i)];
        }
      }
    }
    for (int64_t i = 0; i < n_datasets; ++i) {
      entry.dataset_losses.push_back(probe_sums[static_cast<size_t>(i)] /
                                     static_cast<double>(probe_steps));
      entry.total_loss += entry.dataset_losses.back();
    }
    entry.adversary_loss =
        adv_sum / static_cast<double>(config_.steps_per_epoch);
    entry.adv_recon_balance =
        entry.adversary_loss / std::max(entry.total_loss, 1e-12);
    AuditFairness(&entry);
    entry.wall_seconds = epoch_watch.ElapsedSeconds();
    entry.peak_rss_bytes = PeakRssBytes();
    log_.push_back(entry);

    static Histogram* epoch_hist = MetricsRegistry::Global().GetHistogram(
        "train.epoch_seconds", Histogram::ExponentialBounds(0.01, 2.0, 12));
    epoch_hist->Observe(entry.wall_seconds);
    ET_METRIC_COUNTER_ADD("train.epochs", 1);
    ET_METRIC_COUNTER_ADD("train.steps",
                          static_cast<uint64_t>(config_.steps_per_epoch));
    ET_METRIC_GAUGE_SET("train.total_loss", entry.total_loss);
    ET_METRIC_GAUGE_SET("train.adversary_loss", entry.adversary_loss);
    if (telemetry_ != nullptr) telemetry_->OnEpoch(entry);

    if (sentinel_ && sentinel_->mode() == NanCheckMode::kEpoch) {
      sentinel_->SetPosition(epoch, config_.steps_per_epoch);
      sentinel_->CheckScalar("epoch.total_loss", entry.total_loss);
      sentinel_->CheckScalar("epoch.adversary_loss", entry.adversary_loss);
      CheckAllParameters();
      if (sentinel_->tripped()) HandleSentinelTrip();
    }

    // Weights update once per epoch from the early-step means (§3.3).
    weighter_.Update(entry.dataset_losses);
    ET_LOG(Debug) << "epoch " << epoch << " total recon loss "
                  << entry.total_loss << " adv " << entry.adversary_loss;

    next_epoch_ = epoch + 1;
    if (checkpoint_every_ > 0 && !checkpoint_path_.empty() &&
        ((epoch + 1) % checkpoint_every_ == 0 ||
         epoch + 1 == config_.epochs)) {
      if (!SaveTrainingState(checkpoint_path_)) {
        // A failed save must not kill a healthy run; the previous
        // checkpoint (if any) is still intact thanks to the atomic
        // rename.
        ET_LOG(Warning) << "failed to write training state to "
                        << checkpoint_path_;
      }
    }
  }
}

double EquiTensorTrainer::EvaluateReconstructionError(int64_t batches) {
  double total = 0.0;
  Rng eval_rng(config_.seed ^ 0xE7A1u);
  for (int64_t b = 0; b < batches; ++b) {
    const auto starts = sampler_.SampleStarts(config_.batch_size, eval_rng);
    const auto clean = sampler_.MakeBatch(starts);
    std::vector<Variable> inputs;
    for (const Tensor& tensor : clean) {
      inputs.emplace_back(
          data::Corrupt(tensor, config_.cdae.corruption, eval_rng),
          /*requires_grad=*/false);
    }
    // Frozen evaluation pass: detach parameters from grad tracking by
    // simply not calling Backward.
    Variable z = model_->Encode(inputs);
    Variable s_for_decoder;
    if (config_.cdae.disentangle) {
      s_for_decoder = Variable(
          models::TileSensitiveMap(*sensitive_map_,
                                   static_cast<int64_t>(starts.size()),
                                   config_.cdae.window),
          false);
    }
    const auto recons = model_->Decode(z, s_for_decoder);
    const auto losses = model_->ReconstructionLosses(recons, clean);
    for (const Variable& l : losses) total += l.scalar();
  }
  return total / static_cast<double>(batches);
}

Tensor EquiTensorTrainer::Materialize() { return MaterializeOn(datasets_); }

Tensor EquiTensorTrainer::MaterializeOn(
    const std::vector<data::AlignedDataset>* datasets) {
  ET_CHECK(datasets != nullptr);
  ET_CHECK_EQ(datasets->size(), datasets_->size())
      << "transfer target must provide the same dataset inventory";
  for (size_t i = 0; i < datasets->size(); ++i) {
    ET_CHECK((*datasets)[i].kind == (*datasets_)[i].kind)
        << "dataset " << i << " kind mismatch";
    ET_CHECK_EQ((*datasets)[i].channels(), (*datasets_)[i].channels());
  }
  data::WindowSampler sampler(datasets, config_.cdae.window);
  const auto starts = sampler.NonOverlappingStarts();
  ET_CHECK(!starts.empty());
  const int64_t window = config_.cdae.window;
  const int64_t k = config_.cdae.latent_channels;
  const int64_t w = config_.cdae.grid_w;
  const int64_t h = config_.cdae.grid_h;
  const int64_t t_total = static_cast<int64_t>(starts.size()) * window;

  Tensor z_full({k, w, h, t_total});
  // Encode in small batches to bound memory.
  const int64_t batch = std::max<int64_t>(1, config_.batch_size);
  for (size_t begin = 0; begin < starts.size();
       begin += static_cast<size_t>(batch)) {
    const size_t end = std::min(starts.size(), begin + static_cast<size_t>(batch));
    const std::vector<int64_t> chunk(starts.begin() + begin,
                                     starts.begin() + end);
    const auto batch_tensors = sampler.MakeBatch(chunk);
    std::vector<Variable> inputs;
    inputs.reserve(batch_tensors.size());
    for (const Tensor& tensor : batch_tensors) {
      inputs.emplace_back(tensor, /*requires_grad=*/false);
    }
    const Variable z = model_->Encode(inputs);  // [n, K, W, H, window]
    const Tensor& zv = z.value();
    for (size_t b = begin; b < end; ++b) {
      const int64_t start = starts[b];
      const int64_t local = static_cast<int64_t>(b - begin);
      for (int64_t c = 0; c < k; ++c) {
        for (int64_t x = 0; x < w; ++x) {
          for (int64_t y = 0; y < h; ++y) {
            const float* src =
                zv.data() + (((local * k + c) * w + x) * h + y) * window;
            float* dst =
                z_full.data() + ((c * w + x) * h + y) * t_total + start;
            std::copy(src, src + window, dst);
          }
        }
      }
    }
  }
  return z_full;
}

}  // namespace core
}  // namespace equitensor
