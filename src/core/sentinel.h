#ifndef EQUITENSOR_CORE_SENTINEL_H_
#define EQUITENSOR_CORE_SENTINEL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "autograd/hooks.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace equitensor {
namespace core {

/// Numerics sentinel (DESIGN.md §11): watches a training run for the
/// first NaN/Inf in activations, gradients, losses, or parameters and
/// captures everything needed for a post-mortem — the offending point
/// name, a tensor summary, the epoch/step position, and a snapshot of
/// the tensor itself. The trainer writes the captured state to an ETCK
/// diagnostic bundle and fails fast; tests exercise the trip paths
/// directly through this class.

/// How often numerical health is checked (--nan_check).
enum class NanCheckMode {
  kOff,    // No checking (the default; zero overhead).
  kEpoch,  // Parameters and epoch losses scanned once per epoch.
  kStep,   // Every observed activation/gradient (via autograd hooks)
           // plus parameters and losses, every step.
};

const char* NanCheckModeName(NanCheckMode mode);

/// Parses "off" | "epoch" | "step"; returns false on anything else.
bool ParseNanCheckMode(const std::string& text, NanCheckMode* mode);

/// Order statistics of one tensor, NaN-safe: min/max/mean are computed
/// over the finite elements only (0 when none are finite).
struct TensorSummary {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  int64_t nonfinite = 0;  // NaN or +/-Inf element count
  int64_t size = 0;

  /// "min=... max=... mean=... nonfinite=k/n" diagnostic string.
  std::string ToString() const;
};

TensorSummary SummarizeTensor(const Tensor& tensor);

/// Everything captured at the moment of the first non-finite value.
struct SentinelTrip {
  std::string point;  // observation point or parameter/loss name
  std::string phase;  // "forward" | "backward" | "parameter" | "loss"
  TensorSummary summary;
  Tensor snapshot;  // copy of the offending tensor
  int64_t epoch = 0;
  int64_t step = 0;
};

class NumericsSentinel {
 public:
  explicit NumericsSentinel(NanCheckMode mode);
  ~NumericsSentinel();

  NumericsSentinel(const NumericsSentinel&) = delete;
  NumericsSentinel& operator=(const NumericsSentinel&) = delete;

  NanCheckMode mode() const { return mode_; }

  /// In kStep mode, registers the autograd hooks that scan every
  /// observed activation and gradient. Idempotent; the destructor
  /// unregisters. kEpoch mode never registers hooks (parameter/loss
  /// scans only), keeping the training graph untouched.
  void Arm();

  /// Position stamped into the next trip (call per epoch/step).
  void SetPosition(int64_t epoch, int64_t step);

  /// Scans named parameter tensors, prefixing trip names with
  /// `prefix` (e.g. "model."). Returns true if this call tripped.
  bool CheckParameters(const std::string& prefix,
                       const std::vector<nn::NamedParameter>& params);

  /// Checks one already-computed scalar (a loss); `name` becomes the
  /// trip point. Returns true if this call tripped.
  bool CheckScalar(const std::string& name, double value);

  bool tripped() const { return tripped_; }
  const SentinelTrip& trip() const;

  /// Writes the post-mortem diagnostic bundle for the recorded trip:
  /// an ETCK v2 checkpoint holding the offending tensor snapshot plus
  /// "diag.*" metadata (point, phase, epoch/step, summary) and the
  /// last-N telemetry JSONL records. Returns false on I/O failure or
  /// if nothing tripped.
  bool WriteBundle(const std::string& path,
                   const std::vector<std::string>& telemetry_tail) const;

  /// One-line human description of the trip (empty before a trip).
  std::string TripMessage() const;

 private:
  void Record(const std::string& point, const char* phase,
              const Tensor& tensor);

  NanCheckMode mode_;
  int hook_id_ = 0;
  bool armed_ = false;
  bool tripped_ = false;
  SentinelTrip trip_;
  int64_t epoch_ = 0;
  int64_t step_ = 0;
};

/// Metadata keys of the diagnostic bundle ("diag.kind" identifies it).
extern const char kDiagnosticBundleKind[];

}  // namespace core
}  // namespace equitensor

#endif  // EQUITENSOR_CORE_SENTINEL_H_
