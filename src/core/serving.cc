#include "core/serving.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "core/debug_endpoints.h"
#include "nn/serialize.h"
#include "util/check.h"
#include "util/metrics.h"
#include "util/prom.h"
#include "util/stopwatch.h"
#include "util/trace.h"

namespace equitensor {
namespace core {
namespace {

constexpr char kServingFormat[] = "equitensor.serving.v1";

const char* KindName(data::DatasetKind kind) {
  switch (kind) {
    case data::DatasetKind::kTemporal:
      return "temporal";
    case data::DatasetKind::kSpatial:
      return "spatial";
    case data::DatasetKind::kSpatioTemporal:
      return "spatiotemporal";
  }
  return "temporal";
}

bool KindFromName(const std::string& name, data::DatasetKind* kind) {
  if (name == "temporal") {
    *kind = data::DatasetKind::kTemporal;
  } else if (name == "spatial") {
    *kind = data::DatasetKind::kSpatial;
  } else if (name == "spatiotemporal") {
    *kind = data::DatasetKind::kSpatioTemporal;
  } else {
    return false;
  }
  return true;
}

JsonValue FiltersToJson(const std::vector<int64_t>& filters) {
  JsonValue array = JsonValue::Array();
  for (int64_t f : filters) array.Append(JsonValue::Int(f));
  return array;
}

bool FiltersFromJson(const JsonValue* value, std::vector<int64_t>* filters) {
  if (value == nullptr || value->type() != JsonValue::Type::kArray) {
    return false;
  }
  filters->clear();
  for (const JsonValue& item : value->items()) {
    if (item.type() != JsonValue::Type::kNumber) return false;
    filters->push_back(item.int_value());
  }
  return true;
}

JsonValue CdaeConfigToJson(const models::CdaeConfig& config) {
  JsonValue doc = JsonValue::Object();
  doc.Set("grid_w", JsonValue::Int(config.grid_w));
  doc.Set("grid_h", JsonValue::Int(config.grid_h));
  doc.Set("window", JsonValue::Int(config.window));
  doc.Set("latent_channels", JsonValue::Int(config.latent_channels));
  doc.Set("encoder_filters", FiltersToJson(config.encoder_filters));
  doc.Set("shared_filters", FiltersToJson(config.shared_filters));
  doc.Set("decoder_filters", FiltersToJson(config.decoder_filters));
  doc.Set("kernel", JsonValue::Int(config.kernel));
  doc.Set("corruption", JsonValue::Number(config.corruption));
  doc.Set("disentangle", JsonValue::Bool(config.disentangle));
  return doc;
}

bool CdaeConfigFromJson(const std::string& text, models::CdaeConfig* config,
                        std::string* error) {
  JsonValue doc;
  if (!JsonValue::Parse(text, &doc, error)) return false;
  const auto require_int = [&doc](const char* key, int64_t* out) {
    const JsonValue* value = doc.Find(key);
    if (value == nullptr || value->type() != JsonValue::Type::kNumber) {
      return false;
    }
    *out = value->int_value();
    return true;
  };
  if (!require_int("grid_w", &config->grid_w) ||
      !require_int("grid_h", &config->grid_h) ||
      !require_int("window", &config->window) ||
      !require_int("latent_channels", &config->latent_channels) ||
      !require_int("kernel", &config->kernel) ||
      !FiltersFromJson(doc.Find("encoder_filters"),
                       &config->encoder_filters) ||
      !FiltersFromJson(doc.Find("shared_filters"), &config->shared_filters) ||
      !FiltersFromJson(doc.Find("decoder_filters"),
                       &config->decoder_filters)) {
    if (error) *error = "serving.cdae_config is missing required fields";
    return false;
  }
  if (const JsonValue* value = doc.Find("corruption");
      value != nullptr && value->type() == JsonValue::Type::kNumber) {
    config->corruption = value->number();
  }
  if (const JsonValue* value = doc.Find("disentangle");
      value != nullptr && value->type() == JsonValue::Type::kBool) {
    config->disentangle = value->bool_value();
  }
  return true;
}

JsonValue SpecsToJson(const std::vector<models::DatasetSpec>& specs) {
  JsonValue array = JsonValue::Array();
  for (const models::DatasetSpec& spec : specs) {
    JsonValue item = JsonValue::Object();
    item.Set("name", JsonValue::Str(spec.name));
    item.Set("kind", JsonValue::Str(KindName(spec.kind)));
    item.Set("channels", JsonValue::Int(spec.channels));
    array.Append(item);
  }
  return array;
}

bool SpecsFromJson(const std::string& text,
                   std::vector<models::DatasetSpec>* specs,
                   std::string* error) {
  JsonValue doc;
  if (!JsonValue::Parse(text, &doc, error)) return false;
  if (doc.type() != JsonValue::Type::kArray) {
    if (error) *error = "serving.specs is not an array";
    return false;
  }
  specs->clear();
  for (const JsonValue& item : doc.items()) {
    const JsonValue* name = item.Find("name");
    const JsonValue* kind = item.Find("kind");
    const JsonValue* channels = item.Find("channels");
    models::DatasetSpec spec;
    if (name == nullptr || name->type() != JsonValue::Type::kString ||
        kind == nullptr || kind->type() != JsonValue::Type::kString ||
        channels == nullptr ||
        channels->type() != JsonValue::Type::kNumber ||
        !KindFromName(kind->str(), &spec.kind)) {
      if (error) *error = "serving.specs entry is malformed";
      return false;
    }
    spec.name = name->str();
    spec.channels = channels->int_value();
    specs->push_back(std::move(spec));
  }
  return true;
}

bool SetError(std::string* error, const std::string& message) {
  if (error) *error = message;
  return false;
}

/// Query-string integer lookup: 0 = key absent, -1 = present but not a
/// base-10 integer, 1 = parsed into `*out`.
int QueryInt64(const std::string& query, const std::string& key,
               int64_t* out) {
  size_t pos = 0;
  while (pos <= query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string pair = query.substr(pos, amp - pos);
    const size_t eq = pair.find('=');
    if (eq != std::string::npos && pair.compare(0, eq, key) == 0) {
      const std::string value = pair.substr(eq + 1);
      if (value.empty()) return -1;
      char* end = nullptr;
      const long long parsed = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') return -1;
      *out = static_cast<int64_t>(parsed);
      return 1;
    }
    if (amp == query.size()) break;
    pos = amp + 1;
  }
  return 0;
}

HttpResponse JsonResponse(int status, const JsonValue& doc) {
  HttpResponse response;
  response.status = status;
  response.content_type = "application/json; charset=utf-8";
  response.body = doc.Dump() + "\n";
  return response;
}

HttpResponse JsonError(int status, const std::string& message) {
  JsonValue doc = JsonValue::Object();
  doc.Set("error", JsonValue::Str(message));
  return JsonResponse(status, doc);
}

}  // namespace

bool SaveServingCheckpoint(const std::string& path,
                           const ServingArtifacts& artifacts) {
  if (artifacts.z.rank() != 4 || artifacts.sensitive_map.rank() != 2 ||
      artifacts.target.rank() != 3) {
    return false;
  }
  nn::Checkpoint checkpoint;
  checkpoint.tensors.emplace_back("z", artifacts.z);
  checkpoint.tensors.emplace_back("sensitive_map", artifacts.sensitive_map);
  checkpoint.tensors.emplace_back("target", artifacts.target);
  checkpoint.metadata.emplace_back("serving.format", kServingFormat);
  checkpoint.metadata.emplace_back("serving.task", artifacts.task_name);
  checkpoint.metadata.emplace_back(
      "serving.target_scale",
      nn::EncodeDoubles({static_cast<double>(artifacts.target_scale)}));
  if (artifacts.encoder != nullptr) {
    checkpoint.metadata.emplace_back(
        "serving.cdae_config",
        CdaeConfigToJson(artifacts.encoder->config()).Dump());
    checkpoint.metadata.emplace_back(
        "serving.specs", SpecsToJson(artifacts.encoder->specs()).Dump());
    for (const nn::NamedParameter& parameter :
         artifacts.encoder->NamedParameters()) {
      checkpoint.tensors.emplace_back("model." + parameter.name,
                                      parameter.param.value());
    }
  }
  return nn::SaveCheckpoint(path, checkpoint);
}

std::shared_ptr<const ServingModel> LoadServingModel(
    const std::string& path, const GridTaskConfig& task, int64_t generation,
    std::string* error) {
  nn::Checkpoint checkpoint;
  if (!nn::LoadCheckpoint(path, &checkpoint)) {
    SetError(error, "cannot read serving checkpoint: " + path);
    return nullptr;
  }
  const std::string* format = checkpoint.FindMetadata("serving.format");
  if (format == nullptr || *format != kServingFormat) {
    SetError(error,
             "not a serving checkpoint (serving.format missing or unknown)");
    return nullptr;
  }
  const Tensor* z = checkpoint.FindTensor("z");
  const Tensor* sensitive = checkpoint.FindTensor("sensitive_map");
  const Tensor* target = checkpoint.FindTensor("target");
  if (z == nullptr || sensitive == nullptr || target == nullptr) {
    SetError(error, "serving checkpoint is missing z/sensitive_map/target");
    return nullptr;
  }
  if (z->rank() != 4) {
    SetError(error, "z must be [K, W, H, T'], got " + z->ShapeString());
    return nullptr;
  }
  const int64_t w = z->dim(1), h = z->dim(2);
  if (sensitive->rank() != 2 || sensitive->dim(0) != w ||
      sensitive->dim(1) != h) {
    SetError(error, "sensitive_map shape " + sensitive->ShapeString() +
                        " does not match z grid " + z->ShapeString());
    return nullptr;
  }
  if (target->rank() != 3 || target->dim(0) != w || target->dim(1) != h) {
    SetError(error, "target shape " + target->ShapeString() +
                        " does not match z grid " + z->ShapeString());
    return nullptr;
  }
  double scale = 1.0;
  if (const std::string* encoded =
          checkpoint.FindMetadata("serving.target_scale")) {
    std::vector<double> values;
    if (!nn::DecodeDoubles(*encoded, &values) || values.size() != 1) {
      SetError(error, "serving.target_scale is corrupt");
      return nullptr;
    }
    scale = values[0];
  }
  if (!std::isfinite(scale) || scale <= 0.0) {
    SetError(error, "serving.target_scale must be finite and positive");
    return nullptr;
  }

  std::shared_ptr<ServingModel> model(new ServingModel());
  model->z_ = *z;
  model->sensitive_map_ = *sensitive;
  model->target_ = *target;
  model->target_scale_ = static_cast<float>(scale);
  if (const std::string* name = checkpoint.FindMetadata("serving.task")) {
    model->task_name_ = *name;
  }
  model->task_ = task;
  model->generation_ = generation;

  if (const std::string* config_json =
          checkpoint.FindMetadata("serving.cdae_config")) {
    models::CdaeConfig config;
    std::vector<models::DatasetSpec> specs;
    std::string why;
    const std::string* specs_json = checkpoint.FindMetadata("serving.specs");
    if (!CdaeConfigFromJson(*config_json, &config, &why) ||
        specs_json == nullptr || !SpecsFromJson(*specs_json, &specs, &why)) {
      SetError(error, "bad encoder metadata: " +
                          (why.empty() ? std::string("missing serving.specs")
                                       : why));
      return nullptr;
    }
    if (config.grid_w != w || config.grid_h != h ||
        config.latent_channels != z->dim(0)) {
      SetError(error, "encoder config does not match z shape " +
                          z->ShapeString());
      return nullptr;
    }
    Rng rng(0);  // init values are replaced by the restore below
    model->encoder_ =
        std::make_unique<models::CoreCdae>(config, std::move(specs), rng);
    if (!nn::RestoreModuleFromCheckpoint(checkpoint, "model.",
                                         model->encoder_.get())) {
      SetError(error,
               "encoder parameters do not match serving.cdae_config");
      return nullptr;
    }
  }

  model->exo_ = std::make_unique<RepresentationExoProvider>(&model->z_);
  const int64_t target_hours = model->target_.dim(2);
  const int64_t t_limit =
      std::min(target_hours - task.horizon, model->exo_->horizon() - 1);
  if (t_limit <= task.history) {
    SetError(error, "not enough hours to fit the predictor head (history " +
                        std::to_string(task.history) + ", usable hours " +
                        std::to_string(t_limit) + ")");
    return nullptr;
  }
  TrainedGridPredictor trained =
      TrainGridPredictor(model->target_, model->exo_.get(), task);
  model->predictor_ = std::move(trained.model);
  model->predict_t_min_ = task.history;
  model->predict_t_max_ = std::min(target_hours, model->z_.dim(3) - 2);
  model->base_audit_ =
      AuditRepresentation(model->z_, model->sensitive_map_);
  return model;
}

Tensor ServingModel::Predict(const std::vector<int64_t>& t0s) const {
  ET_CHECK(!t0s.empty()) << "Predict needs at least one hour";
  Tensor history = StackTargetHistory(target_, t0s, task_.history);
  Tensor exo = StackExoSnapshots(*exo_, t0s, w(), h());
  const Variable out = predictor_->Forward(Variable(std::move(history), false),
                                           Variable(std::move(exo), false));
  return out.value();
}

std::vector<float> ServingModel::EmbeddingAt(int64_t cx, int64_t cy,
                                             int64_t t) const {
  ET_CHECK(cx >= 0 && cx < w() && cy >= 0 && cy < h() && t >= 0 &&
           t < z_hours())
      << "embedding coordinate out of range";
  std::vector<float> out(static_cast<size_t>(k()));
  for (int64_t c = 0; c < k(); ++c) {
    out[static_cast<size_t>(c)] =
        z_[((c * w() + cx) * h() + cy) * z_hours() + t];
  }
  return out;
}

FairnessSignal ServingModel::AuditSlice(int64_t t) const {
  ET_CHECK(t >= 0 && t < z_hours()) << "audit hour out of range";
  Tensor slice({k(), w(), h(), 1});
  for (int64_t c = 0; c < k(); ++c) {
    for (int64_t x = 0; x < w(); ++x) {
      for (int64_t y = 0; y < h(); ++y) {
        slice[(c * w() + x) * h() + y] =
            z_[((c * w() + x) * h() + y) * z_hours() + t];
      }
    }
  }
  return AuditRepresentation(slice, sensitive_map_);
}

int64_t ServingModel::parameter_count() const {
  int64_t count = predictor_ ? predictor_->ParameterCount() : 0;
  if (encoder_) count += encoder_->ParameterCount();
  return count;
}

EmbeddingCache::EmbeddingCache(size_t capacity) : capacity_(capacity) {}

bool EmbeddingCache::Get(int64_t key, std::string* out,
                         RequestContext* context) {
  StageScope stage(context, RequestStage::kCacheLookup);
  if (capacity_ == 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *out = it->second->second;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void EmbeddingCache::Put(int64_t key, std::string value) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(value));
  index_[key] = lru_.begin();
  while (index_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

void EmbeddingCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

size_t EmbeddingCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.size();
}

PredictBatcher::PredictBatcher(Options options, ModelProvider provider)
    : options_(options), provider_(std::move(provider)) {
  if (options_.max_batch < 1) options_.max_batch = 1;
  if (options_.window_ms < 0) options_.window_ms = 0;
}

PredictBatcher::~PredictBatcher() { Stop(); }

void PredictBatcher::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!stop_) return;
  stop_ = false;
  worker_ = std::thread(&PredictBatcher::Loop, this);
}

void PredictBatcher::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_ && !worker_.joinable()) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  std::deque<Pending> leftover;
  {
    std::lock_guard<std::mutex> lock(mu_);
    leftover.swap(queue_);
  }
  for (Pending& pending : leftover) {
    PredictOutcome outcome;
    outcome.error = "server shutting down";
    pending.promise.set_value(std::move(outcome));
  }
}

PredictOutcome PredictBatcher::Predict(int64_t t, RequestContext* context) {
  // Validate against the current generation before queueing so a
  // malformed request never occupies a batch slot (Execute re-checks
  // against whichever generation actually runs the batch).
  std::shared_ptr<const ServingModel> model = provider_();
  if (!model) {
    PredictOutcome outcome;
    outcome.error = "no model loaded";
    return outcome;
  }
  if (t < model->predict_t_min() || t > model->predict_t_max()) {
    PredictOutcome outcome;
    outcome.generation = model->generation();
    outcome.error = "t out of range [" +
                    std::to_string(model->predict_t_min()) + ", " +
                    std::to_string(model->predict_t_max()) + "]";
    return outcome;
  }
  std::future<PredictOutcome> future;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      PredictOutcome outcome;
      outcome.error = "batcher not running";
      return outcome;
    }
    queue_.emplace_back();
    queue_.back().t = t;
    queue_.back().enqueue = std::chrono::steady_clock::now();
    queue_.back().context = context;
    future = queue_.back().promise.get_future();
    ET_METRIC_GAUGE_SET("serving.queue_depth",
                        static_cast<double>(queue_.size()));
  }
  cv_.notify_all();
  return future.get();
}

void PredictBatcher::Loop() {
  SetTraceThreadName("serve.batcher");
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (stop_) return;  // leftovers are failed by Stop()
    const auto wake = std::chrono::steady_clock::now();
    if (options_.max_batch > 1 && options_.window_ms > 0 &&
        static_cast<int64_t>(queue_.size()) < options_.max_batch) {
      const auto deadline = wake +
                            std::chrono::milliseconds(options_.window_ms);
      cv_.wait_until(lock, deadline, [this] {
        return stop_ ||
               static_cast<int64_t>(queue_.size()) >= options_.max_batch;
      });
      if (stop_) return;
    }
    const auto popped = std::chrono::steady_clock::now();
    std::vector<Pending> batch;
    const int64_t take = std::min<int64_t>(
        static_cast<int64_t>(queue_.size()), options_.max_batch);
    batch.reserve(static_cast<size_t>(take));
    for (int64_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    ET_METRIC_GAUGE_SET("serving.queue_depth",
                        static_cast<double>(queue_.size()));
    // Stage attribution per request: queue-wait is enqueue -> the
    // batcher waking for this round; batch-wait is the rest of the
    // time until the batch was sealed (window fill). A request that
    // arrived mid-window has no queue-wait, only the remaining window.
    for (Pending& pending : batch) {
      if (pending.context == nullptr) continue;
      const auto start = pending.enqueue;
      const auto woke = std::max(start, wake);
      pending.context->AddStage(
          RequestStage::kQueueWait,
          std::chrono::duration<double>(woke - start).count());
      pending.context->AddStage(
          RequestStage::kBatchWait,
          std::chrono::duration<double>(popped - woke).count());
    }
    lock.unlock();
    Execute(std::move(batch));
    lock.lock();
  }
}

void PredictBatcher::Execute(std::vector<Pending> batch) {
  std::shared_ptr<const ServingModel> model = provider_();
  std::vector<int64_t> hours;
  std::vector<size_t> slots;
  // The owning HTTP worker stays blocked on the future, so writing a
  // pending's context is safe exactly until its promise is fulfilled —
  // every AddStage / generation write below precedes the set_value.
  for (size_t i = 0; i < batch.size(); ++i) {
    PredictOutcome outcome;
    if (!model) {
      outcome.error = "no model loaded";
      batch[i].promise.set_value(std::move(outcome));
      continue;
    }
    const int64_t t = batch[i].t;
    if (t < model->predict_t_min() || t > model->predict_t_max()) {
      outcome.generation = model->generation();
      outcome.error = "t out of range [" +
                      std::to_string(model->predict_t_min()) + ", " +
                      std::to_string(model->predict_t_max()) + "]";
      if (batch[i].context != nullptr) {
        batch[i].context->timeline().generation = model->generation();
      }
      batch[i].promise.set_value(std::move(outcome));
      continue;
    }
    hours.push_back(t);
    slots.push_back(i);
  }
  if (hours.empty()) return;

  Stopwatch forward_watch;
  Tensor out;
  {
    ET_TRACE_SPAN("serve.batch_forward");
    out = model->Predict(hours);  // [N, 1, W, H]
  }
  // Every coalesced request paid the full forward wall time — the pass
  // ran once for all of them, and none could finish sooner.
  const double forward_seconds = forward_watch.ElapsedSeconds();
  static Histogram* const occupancy = MetricsRegistry::Global().GetHistogram(
      "serving.batch_occupancy", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0});
  occupancy->Observe(static_cast<double>(hours.size()));
  const int64_t cells = model->w() * model->h();
  for (size_t j = 0; j < hours.size(); ++j) {
    PredictOutcome outcome;
    outcome.ok = true;
    outcome.generation = model->generation();
    outcome.grid = Tensor({model->w(), model->h()});
    std::memcpy(outcome.grid.data(), out.data() + static_cast<int64_t>(j) * cells,
                static_cast<size_t>(cells) * sizeof(float));
    RequestContext* context = batch[slots[j]].context;
    if (context != nullptr) {
      context->AddStage(RequestStage::kForward, forward_seconds);
      context->timeline().generation = model->generation();
    }
    batch[slots[j]].promise.set_value(std::move(outcome));
  }
  batches_run_.fetch_add(1, std::memory_order_relaxed);
  requests_batched_.fetch_add(hours.size(), std::memory_order_relaxed);
  uint64_t observed = max_batch_observed_.load(std::memory_order_relaxed);
  while (hours.size() > observed &&
         !max_batch_observed_.compare_exchange_weak(
             observed, hours.size(), std::memory_order_relaxed)) {
  }
  ET_METRIC_COUNTER_ADD("serving.batches", 1);
  ET_METRIC_COUNTER_ADD("serving.batched_requests",
                        static_cast<double>(hours.size()));
}

ServingService::ServingService(Options options)
    : options_(std::move(options)),
      cache_(options_.cache_capacity),
      batcher_(options_.batch, [this] { return model(); }),
      http_(options_.http),
      start_time_(std::chrono::steady_clock::now()) {
  if (options_.observe) {
    observability_ =
        std::make_unique<RequestObservability>(options_.observability);
    http_.set_observer([this](const RequestTimeline& timeline) {
      observability_->Observe(timeline);
    });
    http_.Handle("/debug/requests", [this](const HttpRequest&) {
      return JsonResponse(200, observability_->RequestsJson());
    });
    http_.Handle("/debug/slow", [this](const HttpRequest&) {
      return JsonResponse(200, observability_->SlowJson());
    });
    http_.Handle("/debug/stages", [this](const HttpRequest&) {
      return JsonResponse(200, observability_->StagesJson());
    });
  }
  http_.Handle("/healthz", [this](const HttpRequest&) {
    HttpResponse response;
    if (model()) {
      response.body = "ok\n";
    } else {
      response.status = 503;
      response.body = "no model loaded\n";
    }
    return response;
  });
  http_.Handle("/metrics", [](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = RenderPrometheusText(MetricsRegistry::Global().Snapshot(),
                                         CollectTraceStats());
    return response;
  });
  http_.Handle("/status", [this](const HttpRequest& request) {
    return HandleStatus(request);
  });
  http_.Handle("/embed", [this](const HttpRequest& request) {
    return HandleEmbed(request);
  });
  http_.Handle("/predict", {"GET", "POST"},
               [this](const HttpRequest& request) {
                 return HandlePredict(request);
               });
  http_.Handle("/fairness", [this](const HttpRequest& request) {
    return HandleFairness(request);
  });
  // Always-on profiling endpoints (DESIGN.md §17): /debug/profile and
  // /debug/counters cost nothing until hit, unlike the per-request
  // observability gated on options_.observe above, so a daemon started
  // without --observe can still be profiled live.
  RegisterProfilingEndpoints(&http_);
}

ServingService::~ServingService() { Stop(); }

bool ServingService::LoadInitial(std::string* error) {
  std::shared_ptr<const ServingModel> model =
      LoadServingModel(options_.checkpoint_path, options_.task, 1, error);
  if (!model) return false;
  SetModel(std::move(model));
  return true;
}

bool ServingService::Start(int port, std::string* error) {
  if (!model()) {
    return SetError(error, "ServingService::Start before LoadInitial");
  }
  if (observability_ != nullptr) {
    std::string why;
    if (!observability_->OpenAccessLog(&why)) return SetError(error, why);
  }
  batcher_.Start();
  if (!http_.Start(port, error)) {
    batcher_.Stop();
    return false;
  }
  return true;
}

void ServingService::Stop() {
  http_.Stop();
  batcher_.Stop();
}

bool ServingService::Reload(std::string* error) {
  std::string why;
  const int64_t next_generation = generation() + 1;
  std::shared_ptr<const ServingModel> model = LoadServingModel(
      options_.checkpoint_path, options_.task, next_generation, &why);
  if (!model) {
    reload_failures_.fetch_add(1, std::memory_order_relaxed);
    ET_METRIC_COUNTER_ADD("serving.reload_failures", 1);
    {
      std::lock_guard<std::mutex> lock(model_mu_);
      last_reload_error_ = why;
    }
    return SetError(error, why);
  }
  SetModel(std::move(model));
  // Entries carry the generation in their key, so anything a racing
  // request re-inserts from the old generation just ages out of the
  // LRU instead of being served as current.
  cache_.Clear();
  reloads_.fetch_add(1, std::memory_order_relaxed);
  ET_METRIC_COUNTER_ADD("serving.reloads", 1);
  {
    std::lock_guard<std::mutex> lock(model_mu_);
    last_reload_error_.clear();
  }
  return true;
}

std::shared_ptr<const ServingModel> ServingService::model() const {
  std::lock_guard<std::mutex> lock(model_mu_);
  return model_;
}

void ServingService::SetModel(std::shared_ptr<const ServingModel> model) {
  const int64_t generation = model->generation();
  {
    std::lock_guard<std::mutex> lock(model_mu_);
    model_ = std::move(model);
  }
  generation_.store(generation, std::memory_order_release);
  ET_METRIC_GAUGE_SET("serving.generation",
                      static_cast<double>(generation));
}

HttpResponse ServingService::HandleEmbed(const HttpRequest& request) {
  ET_TRACE_SPAN("serve.embed");
  std::shared_ptr<const ServingModel> model = this->model();
  if (!model) return JsonError(503, "no model loaded");
  if (request.context != nullptr) {
    request.context->timeline().generation = model->generation();
  }
  int64_t cx = 0, cy = 0, t = 0;
  if (QueryInt64(request.query, "cx", &cx) != 1 ||
      QueryInt64(request.query, "cy", &cy) != 1 ||
      QueryInt64(request.query, "t", &t) != 1) {
    return JsonError(400, "expected integer query parameters cx, cy, t");
  }
  if (cx < 0 || cx >= model->w() || cy < 0 || cy >= model->h() || t < 0 ||
      t >= model->z_hours()) {
    return JsonError(400, "cell (" + std::to_string(cx) + ", " +
                              std::to_string(cy) + ", " + std::to_string(t) +
                              ") outside grid [" + std::to_string(model->w()) +
                              ", " + std::to_string(model->h()) + ", " +
                              std::to_string(model->z_hours()) + "]");
  }
  ET_METRIC_COUNTER_ADD("serving.embed_requests", 1);
  // Generation is part of the key: a hot reload invalidates by
  // construction even if a racing Put lands after the Clear.
  const int64_t key =
      ((model->generation() * model->w() + cx) * model->h() + cy) *
          model->z_hours() +
      t;
  std::string payload;
  if (cache_.Get(key, &payload, request.context)) {
    ET_METRIC_COUNTER_ADD("serving.cache_hits", 1);
    HttpResponse response;
    response.content_type = "application/json; charset=utf-8";
    response.body = std::move(payload);
    return response;
  }
  ET_METRIC_COUNTER_ADD("serving.cache_misses", 1);
  StageScope serialize(request.context, RequestStage::kSerialize);
  JsonValue doc = JsonValue::Object();
  doc.Set("type", JsonValue::Str("embedding"));
  doc.Set("generation", JsonValue::Int(model->generation()));
  doc.Set("cx", JsonValue::Int(cx));
  doc.Set("cy", JsonValue::Int(cy));
  doc.Set("t", JsonValue::Int(t));
  doc.Set("k", JsonValue::Int(model->k()));
  JsonValue values = JsonValue::Array();
  for (float v : model->EmbeddingAt(cx, cy, t)) {
    values.Append(JsonValue::Number(static_cast<double>(v)));
  }
  doc.Set("embedding", std::move(values));
  HttpResponse response = JsonResponse(200, doc);
  cache_.Put(key, response.body);
  return response;
}

HttpResponse ServingService::HandlePredict(const HttpRequest& request) {
  ET_TRACE_SPAN("serve.predict");
  int64_t t = 0;
  if (request.method == "POST") {
    JsonValue doc;
    std::string why;
    if (!JsonValue::Parse(request.body, &doc, &why)) {
      return JsonError(400, "request body is not JSON: " + why);
    }
    const JsonValue* hour = doc.Find("t");
    if (hour == nullptr || hour->type() != JsonValue::Type::kNumber) {
      return JsonError(400, "request body must be {\"t\": <hour>}");
    }
    t = hour->int_value();
  } else if (QueryInt64(request.query, "t", &t) != 1) {
    return JsonError(400, "expected integer query parameter t");
  }
  ET_METRIC_COUNTER_ADD("serving.predict_requests", 1);
  PredictOutcome outcome = batcher_.Predict(t, request.context);
  if (request.context != nullptr && outcome.generation != 0) {
    request.context->timeline().generation = outcome.generation;
  }
  if (!outcome.ok) {
    // No generation means the service itself was unavailable (no model
    // or batcher stopped) rather than a bad request.
    return JsonError(outcome.generation == 0 ? 503 : 400, outcome.error);
  }
  StageScope serialize(request.context, RequestStage::kSerialize);
  JsonValue doc = JsonValue::Object();
  doc.Set("type", JsonValue::Str("prediction"));
  doc.Set("generation", JsonValue::Int(outcome.generation));
  doc.Set("t", JsonValue::Int(t));
  doc.Set("w", JsonValue::Int(outcome.grid.dim(0)));
  doc.Set("h", JsonValue::Int(outcome.grid.dim(1)));
  JsonValue values = JsonValue::Array();
  for (int64_t i = 0; i < outcome.grid.size(); ++i) {
    values.Append(JsonValue::Number(static_cast<double>(outcome.grid[i])));
  }
  doc.Set("prediction", std::move(values));
  return JsonResponse(200, doc);
}

HttpResponse ServingService::HandleFairness(const HttpRequest& request) {
  ET_TRACE_SPAN("serve.fairness");
  std::shared_ptr<const ServingModel> model = this->model();
  if (!model) return JsonError(503, "no model loaded");
  if (request.context != nullptr) {
    request.context->timeline().generation = model->generation();
  }
  ET_METRIC_COUNTER_ADD("serving.fairness_requests", 1);
  JsonValue doc = JsonValue::Object();
  doc.Set("type", JsonValue::Str("fairness"));
  doc.Set("generation", JsonValue::Int(model->generation()));
  doc.Set("task", JsonValue::Str(model->task_name()));
  int64_t t = 0;
  const int found = QueryInt64(request.query, "t", &t);
  if (found == -1) return JsonError(400, "t must be an integer");
  if (found == 1) {
    if (t < 0 || t >= model->z_hours()) {
      return JsonError(400, "t out of range [0, " +
                                std::to_string(model->z_hours()) + ")");
    }
    const FairnessSignal signal = model->AuditSlice(t);
    doc.Set("scope", JsonValue::Str("slice"));
    doc.Set("t", JsonValue::Int(t));
    doc.Set("correlation", JsonValue::Number(signal.correlation));
    doc.Set("parity_gap", JsonValue::Number(signal.parity_gap));
  } else {
    const FairnessSignal& signal = model->base_audit();
    doc.Set("scope", JsonValue::Str("full"));
    doc.Set("correlation", JsonValue::Number(signal.correlation));
    doc.Set("parity_gap", JsonValue::Number(signal.parity_gap));
  }
  return JsonResponse(200, doc);
}

HttpResponse ServingService::HandleStatus(const HttpRequest&) {
  std::shared_ptr<const ServingModel> model = this->model();
  JsonValue doc = JsonValue::Object();
  doc.Set("type", JsonValue::Str("serving_status"));
  doc.Set("checkpoint", JsonValue::Str(options_.checkpoint_path));
  doc.Set("uptime_seconds",
          JsonValue::Number(std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - start_time_)
                                .count()));
  doc.Set("generation", JsonValue::Int(generation()));
  if (model) {
    doc.Set("task", JsonValue::Str(model->task_name()));
    doc.Set("k", JsonValue::Int(model->k()));
    doc.Set("w", JsonValue::Int(model->w()));
    doc.Set("h", JsonValue::Int(model->h()));
    doc.Set("z_hours", JsonValue::Int(model->z_hours()));
    doc.Set("predict_t_min", JsonValue::Int(model->predict_t_min()));
    doc.Set("predict_t_max", JsonValue::Int(model->predict_t_max()));
    doc.Set("parameters", JsonValue::Int(model->parameter_count()));
    doc.Set("has_encoder", JsonValue::Bool(model->encoder() != nullptr));
  }
  JsonValue cache = JsonValue::Object();
  cache.Set("hits", JsonValue::Int(static_cast<int64_t>(cache_.hits())));
  cache.Set("misses", JsonValue::Int(static_cast<int64_t>(cache_.misses())));
  cache.Set("size", JsonValue::Int(static_cast<int64_t>(cache_.size())));
  cache.Set("capacity",
            JsonValue::Int(static_cast<int64_t>(cache_.capacity())));
  doc.Set("cache", std::move(cache));
  JsonValue batch = JsonValue::Object();
  batch.Set("max_batch", JsonValue::Int(options_.batch.max_batch));
  batch.Set("window_ms", JsonValue::Int(options_.batch.window_ms));
  batch.Set("batches",
            JsonValue::Int(static_cast<int64_t>(batcher_.batches_run())));
  batch.Set("requests",
            JsonValue::Int(static_cast<int64_t>(batcher_.requests_batched())));
  batch.Set(
      "max_batch_observed",
      JsonValue::Int(static_cast<int64_t>(batcher_.max_batch_observed())));
  doc.Set("batch", std::move(batch));
  doc.Set("requests_served",
          JsonValue::Int(static_cast<int64_t>(http_.requests_served())));
  doc.Set("requests_shed",
          JsonValue::Int(static_cast<int64_t>(http_.requests_shed())));
  doc.Set("reloads", JsonValue::Int(static_cast<int64_t>(reloads())));
  doc.Set("reload_failures",
          JsonValue::Int(static_cast<int64_t>(reload_failures())));
  if (observability_ != nullptr) {
    JsonValue observe = JsonValue::Object();
    observe.Set("observed", JsonValue::Int(static_cast<int64_t>(
                                observability_->observed())));
    observe.Set("access_log_lines",
                JsonValue::Int(static_cast<int64_t>(
                    observability_->access_log_lines())));
    observe.Set("ring_capacity",
                JsonValue::Int(static_cast<int64_t>(
                    observability_->options().ring_capacity)));
    doc.Set("observability", std::move(observe));
  }
  {
    std::lock_guard<std::mutex> lock(model_mu_);
    doc.Set("last_reload_error", JsonValue::Str(last_reload_error_));
  }
  return JsonResponse(200, doc);
}

}  // namespace core
}  // namespace equitensor
