#ifndef EQUITENSOR_CORE_BASELINES_H_
#define EQUITENSOR_CORE_BASELINES_H_

#include <vector>

#include "core/equitensor.h"

namespace equitensor {
namespace core {

/// Result of training the early-fusion CDAE baseline (§4.2).
struct EarlyFusionResult {
  /// Materialized latent representation [K, W, H, T'].
  Tensor representation;
  /// Mean reconstruction MAE per epoch (on the fused stack).
  std::vector<double> epoch_losses;
};

/// Trains the early-fusion CDAE on the given datasets and materializes
/// its representation with non-overlapping windows, mirroring
/// EquiTensorTrainer::Materialize(). Uses the cdae/optimizer/epoch
/// fields of `config`; weighting and fairness fields are ignored
/// (early fusion reconstructs one fused tensor, so neither applies).
EarlyFusionResult TrainEarlyFusion(
    const EquiTensorConfig& config,
    const std::vector<data::AlignedDataset>* datasets);

}  // namespace core
}  // namespace equitensor

#endif  // EQUITENSOR_CORE_BASELINES_H_
