#include "core/fairness_metrics.h"

#include <cmath>

#include "util/check.h"

namespace equitensor {
namespace core {

GroupLabels ThresholdGroups(const Tensor& sensitive_map, double threshold) {
  ET_CHECK_EQ(sensitive_map.rank(), 2);
  if (std::isnan(threshold)) threshold = sensitive_map.Mean();
  GroupLabels labels;
  labels.advantaged.resize(static_cast<size_t>(sensitive_map.size()));
  for (int64_t i = 0; i < sensitive_map.size(); ++i) {
    const bool adv = sensitive_map[i] >= threshold;
    labels.advantaged[static_cast<size_t>(i)] = adv;
    if (adv) {
      ++labels.advantaged_count;
    } else {
      ++labels.disadvantaged_count;
    }
  }
  return labels;
}

ResidualAccumulator::ResidualAccumulator(GroupLabels groups)
    : groups_(std::move(groups)) {
  ET_CHECK_GT(groups_.advantaged_count, 0) << "empty advantaged group";
  ET_CHECK_GT(groups_.disadvantaged_count, 0) << "empty disadvantaged group";
}

void ResidualAccumulator::Add(const Tensor& prediction, const Tensor& truth) {
  ET_CHECK(prediction.SameShape(truth));
  ET_CHECK_EQ(prediction.size(),
              static_cast<int64_t>(groups_.advantaged.size()));
  for (int64_t i = 0; i < prediction.size(); ++i) {
    const double residual = static_cast<double>(prediction[i]) - truth[i];
    const double pos = residual > 0.0 ? residual : 0.0;
    const double neg = residual < 0.0 ? -residual : 0.0;
    if (groups_.advantaged[static_cast<size_t>(i)]) {
      pos_adv_ += pos;
      neg_adv_ += neg;
      res_adv_ += residual;
    } else {
      pos_dis_ += pos;
      neg_dis_ += neg;
      res_dis_ += residual;
    }
  }
  ++timesteps_;
}

ResidualMetrics ResidualAccumulator::Metrics() const {
  const double n_adv = static_cast<double>(groups_.advantaged_count);
  const double n_dis = static_cast<double>(groups_.disadvantaged_count);
  ResidualMetrics metrics;
  metrics.prd = pos_adv_ / n_adv - pos_dis_ / n_dis;
  metrics.nrd = neg_adv_ / n_adv - neg_dis_ / n_dis;
  metrics.rd = res_adv_ / n_adv - res_dis_ / n_dis;
  return metrics;
}

}  // namespace core
}  // namespace equitensor
