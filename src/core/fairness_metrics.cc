#include "core/fairness_metrics.h"

#include <cmath>

#include "util/check.h"
#include "util/stats.h"

namespace equitensor {
namespace core {

GroupLabels ThresholdGroups(const Tensor& sensitive_map, double threshold) {
  ET_CHECK_EQ(sensitive_map.rank(), 2);
  if (std::isnan(threshold)) threshold = sensitive_map.Mean();
  GroupLabels labels;
  labels.advantaged.resize(static_cast<size_t>(sensitive_map.size()));
  for (int64_t i = 0; i < sensitive_map.size(); ++i) {
    const bool adv = sensitive_map[i] >= threshold;
    labels.advantaged[static_cast<size_t>(i)] = adv;
    if (adv) {
      ++labels.advantaged_count;
    } else {
      ++labels.disadvantaged_count;
    }
  }
  return labels;
}

ResidualAccumulator::ResidualAccumulator(GroupLabels groups)
    : groups_(std::move(groups)) {
  ET_CHECK_GT(groups_.advantaged_count, 0) << "empty advantaged group";
  ET_CHECK_GT(groups_.disadvantaged_count, 0) << "empty disadvantaged group";
}

void ResidualAccumulator::Add(const Tensor& prediction, const Tensor& truth) {
  ET_CHECK(prediction.SameShape(truth));
  ET_CHECK_EQ(prediction.size(),
              static_cast<int64_t>(groups_.advantaged.size()));
  for (int64_t i = 0; i < prediction.size(); ++i) {
    const double residual = static_cast<double>(prediction[i]) - truth[i];
    const double pos = residual > 0.0 ? residual : 0.0;
    const double neg = residual < 0.0 ? -residual : 0.0;
    if (groups_.advantaged[static_cast<size_t>(i)]) {
      pos_adv_ += pos;
      neg_adv_ += neg;
      res_adv_ += residual;
    } else {
      pos_dis_ += pos;
      neg_dis_ += neg;
      res_dis_ += residual;
    }
  }
  ++timesteps_;
}

ResidualMetrics ResidualAccumulator::Metrics() const {
  const double n_adv = static_cast<double>(groups_.advantaged_count);
  const double n_dis = static_cast<double>(groups_.disadvantaged_count);
  ResidualMetrics metrics;
  metrics.prd = pos_adv_ / n_adv - pos_dis_ / n_dis;
  metrics.nrd = neg_adv_ / n_adv - neg_dis_ / n_dis;
  metrics.rd = res_adv_ / n_adv - res_dis_ / n_dis;
  return metrics;
}

std::vector<double> CellMeans(const Tensor& z, int64_t w, int64_t h) {
  ET_CHECK(z.rank() == 4 || z.rank() == 5)
      << "representation must be [K,W,H,T] or [N,K,W,H,T]";
  const int64_t spatial = z.rank() == 4 ? 1 : 2;
  ET_CHECK_EQ(z.dim(spatial), w);
  ET_CHECK_EQ(z.dim(spatial + 1), h);
  const int64_t t = z.dim(spatial + 2);
  const int64_t cells = w * h;
  // Row-major layout: outer = N*K (or K), then W, H, T — so for each
  // outer block the [W*H] cell grid is contiguous with stride T.
  int64_t outer = 1;
  for (int64_t d = 0; d < spatial; ++d) outer *= z.dim(d);
  std::vector<double> means(static_cast<size_t>(cells), 0.0);
  const float* data = z.data();
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t cell = 0; cell < cells; ++cell) {
      const float* src = data + (o * cells + cell) * t;
      double sum = 0.0;
      for (int64_t i = 0; i < t; ++i) sum += src[i];
      means[static_cast<size_t>(cell)] += sum;
    }
  }
  const double denom = static_cast<double>(outer) * static_cast<double>(t);
  for (double& m : means) m /= denom;
  return means;
}

FairnessSignal AuditRepresentation(const Tensor& z,
                                   const Tensor& sensitive_map) {
  ET_CHECK_EQ(sensitive_map.rank(), 2);
  const int64_t w = sensitive_map.dim(0);
  const int64_t h = sensitive_map.dim(1);
  const std::vector<double> cell_z = CellMeans(z, w, h);
  std::vector<double> cell_s;
  cell_s.reserve(static_cast<size_t>(sensitive_map.size()));
  for (int64_t i = 0; i < sensitive_map.size(); ++i) {
    cell_s.push_back(static_cast<double>(sensitive_map[i]));
  }

  FairnessSignal signal;
  signal.correlation = PearsonCorrelation(cell_z, cell_s);

  const GroupLabels groups = ThresholdGroups(sensitive_map);
  double adv_sum = 0.0, dis_sum = 0.0;
  for (size_t i = 0; i < cell_z.size(); ++i) {
    if (groups.advantaged[i]) {
      adv_sum += cell_z[i];
    } else {
      dis_sum += cell_z[i];
    }
  }
  if (groups.advantaged_count > 0 && groups.disadvantaged_count > 0) {
    signal.parity_gap =
        adv_sum / static_cast<double>(groups.advantaged_count) -
        dis_sum / static_cast<double>(groups.disadvantaged_count);
  }
  return signal;
}

}  // namespace core
}  // namespace equitensor
