#ifndef EQUITENSOR_CORE_PROBE_H_
#define EQUITENSOR_CORE_PROBE_H_

#include <cstdint>

#include "nn/optimizer.h"
#include "tensor/tensor.h"

namespace equitensor {
namespace core {

/// Configuration of the separately trained evaluation adversary F
/// (§3.5): a fresh AdversaryNet is trained from scratch to recover the
/// sensitive map from a finished representation; its held-out MAE
/// measures how much sensitive information leaks (higher = fairer).
struct ProbeConfig {
  int64_t window = 24;
  int64_t epochs = 4;
  int64_t steps_per_epoch = 15;
  int64_t batch_size = 4;
  int64_t eval_batches = 6;
  int64_t kernel = 3;
  nn::AdamOptions optimizer;
  uint64_t seed = 99;
};

/// Trains F on `representation` ([K, W, H, T]) against the sensitive
/// map ([W, H]) and returns the held-out prediction MAE (Table 4 /
/// Figure 6). Training and evaluation windows are drawn from disjoint
/// halves of the horizon.
double ProbeSensitiveLeakage(const Tensor& representation,
                             const Tensor& sensitive_map,
                             const ProbeConfig& config);

/// Gaussian-noise representation of the given shape — the paper's
/// "best achievable" fairness reference in Figure 6.
Tensor GaussianNoiseRepresentation(int64_t k, int64_t w, int64_t h, int64_t t,
                                   uint64_t seed);

}  // namespace core
}  // namespace equitensor

#endif  // EQUITENSOR_CORE_PROBE_H_
