#include "geo/grid.h"

#include <cmath>

namespace equitensor {
namespace geo {

std::optional<std::pair<int64_t, int64_t>> GridSpec::CellOf(
    const Point& p) const {
  const double fx = (p.x - origin_x) / cell_size;
  const double fy = (p.y - origin_y) / cell_size;
  const int64_t cx = static_cast<int64_t>(std::floor(fx));
  const int64_t cy = static_cast<int64_t>(std::floor(fy));
  if (cx < 0 || cx >= width || cy < 0 || cy >= height) return std::nullopt;
  return std::make_pair(cx, cy);
}

}  // namespace geo
}  // namespace equitensor
