#include "geo/rasterize.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace equitensor {
namespace geo {
namespace {

// Liang–Barsky segment/rectangle clip. Returns false when the segment
// misses the rectangle entirely.
bool ClipSegment(const Rect& rect, Point* a, Point* b) {
  const double dx = b->x - a->x;
  const double dy = b->y - a->y;
  double t0 = 0.0, t1 = 1.0;
  const double p[4] = {-dx, dx, -dy, dy};
  const double q[4] = {a->x - rect.min_x, rect.max_x - a->x, a->y - rect.min_y,
                       rect.max_y - a->y};
  for (int i = 0; i < 4; ++i) {
    if (p[i] == 0.0) {
      if (q[i] < 0.0) return false;  // Parallel and outside.
      continue;
    }
    const double r = q[i] / p[i];
    if (p[i] < 0.0) {
      if (r > t1) return false;
      t0 = std::max(t0, r);
    } else {
      if (r < t0) return false;
      t1 = std::min(t1, r);
    }
  }
  const Point na = {a->x + t0 * dx, a->y + t0 * dy};
  const Point nb = {a->x + t1 * dx, a->y + t1 * dy};
  *a = na;
  *b = nb;
  return true;
}

int64_t Clamp(int64_t v, int64_t lo, int64_t hi) {
  return std::max(lo, std::min(hi, v));
}

}  // namespace

std::vector<std::pair<int64_t, int64_t>> CellsOnSegment(const Point& a_in,
                                                        const Point& b_in,
                                                        const GridSpec& grid) {
  std::vector<std::pair<int64_t, int64_t>> cells;
  Point a = a_in, b = b_in;
  if (!ClipSegment(grid.Bounds(), &a, &b)) return cells;

  // Amanatides–Woo voxel traversal in grid coordinates.
  const double inv = 1.0 / grid.cell_size;
  double ax = (a.x - grid.origin_x) * inv;
  double ay = (a.y - grid.origin_y) * inv;
  double bx = (b.x - grid.origin_x) * inv;
  double by = (b.y - grid.origin_y) * inv;

  int64_t cx = Clamp(static_cast<int64_t>(std::floor(ax)), 0, grid.width - 1);
  int64_t cy = Clamp(static_cast<int64_t>(std::floor(ay)), 0, grid.height - 1);
  const int64_t end_cx =
      Clamp(static_cast<int64_t>(std::floor(bx)), 0, grid.width - 1);
  const int64_t end_cy =
      Clamp(static_cast<int64_t>(std::floor(by)), 0, grid.height - 1);

  const double dx = bx - ax;
  const double dy = by - ay;
  const int64_t step_x = dx > 0.0 ? 1 : (dx < 0.0 ? -1 : 0);
  const int64_t step_y = dy > 0.0 ? 1 : (dy < 0.0 ? -1 : 0);

  // Parametric distance to the next vertical/horizontal cell boundary.
  const double inf = 1e300;
  double t_max_x = inf, t_delta_x = inf;
  if (step_x != 0) {
    const double next_x = step_x > 0 ? (cx + 1.0) : static_cast<double>(cx);
    t_max_x = (next_x - ax) / dx;
    t_delta_x = std::fabs(1.0 / dx);
  }
  double t_max_y = inf, t_delta_y = inf;
  if (step_y != 0) {
    const double next_y = step_y > 0 ? (cy + 1.0) : static_cast<double>(cy);
    t_max_y = (next_y - ay) / dy;
    t_delta_y = std::fabs(1.0 / dy);
  }

  const int64_t max_cells = (grid.width + grid.height) * 2 + 4;
  for (int64_t guard = 0; guard < max_cells; ++guard) {
    cells.emplace_back(cx, cy);
    if (cx == end_cx && cy == end_cy) break;
    if (t_max_x < t_max_y) {
      if (t_max_x > 1.0) break;
      cx += step_x;
      t_max_x += t_delta_x;
    } else {
      if (t_max_y > 1.0) break;
      cy += step_y;
      t_max_y += t_delta_y;
    }
    if (cx < 0 || cx >= grid.width || cy < 0 || cy >= grid.height) break;
  }
  return cells;
}

Tensor RasterizePoints(const std::vector<Point>& points,
                       const GridSpec& grid) {
  ET_CHECK_GT(grid.width, 0);
  ET_CHECK_GT(grid.height, 0);
  Tensor out({grid.width, grid.height});
  for (const Point& p : points) {
    const auto cell = grid.CellOf(p);
    if (!cell) continue;
    out[cell->first * grid.height + cell->second] += 1.0f;
  }
  return out;
}

Tensor RasterizeLines(const std::vector<Polyline>& lines,
                      const GridSpec& grid) {
  Tensor out({grid.width, grid.height});
  for (const Polyline& line : lines) {
    for (size_t i = 1; i < line.size(); ++i) {
      for (const auto& [cx, cy] : CellsOnSegment(line[i - 1], line[i], grid)) {
        out[cx * grid.height + cy] += 1.0f;
      }
    }
  }
  return out;
}

Tensor RasterizeRegions(const std::vector<ValuedRegion>& regions,
                        const GridSpec& grid) {
  Tensor out({grid.width, grid.height});
  for (const ValuedRegion& region : regions) {
    const double total_area = Area(region.polygon);
    if (total_area <= 0.0) continue;
    // Restrict the scan to cells overlapping the polygon's bbox.
    double min_x = 1e300, min_y = 1e300, max_x = -1e300, max_y = -1e300;
    for (const Point& p : region.polygon) {
      min_x = std::min(min_x, p.x);
      min_y = std::min(min_y, p.y);
      max_x = std::max(max_x, p.x);
      max_y = std::max(max_y, p.y);
    }
    const double inv = 1.0 / grid.cell_size;
    const int64_t cx0 = Clamp(
        static_cast<int64_t>(std::floor((min_x - grid.origin_x) * inv)), 0,
        grid.width - 1);
    const int64_t cx1 = Clamp(
        static_cast<int64_t>(std::floor((max_x - grid.origin_x) * inv)), 0,
        grid.width - 1);
    const int64_t cy0 = Clamp(
        static_cast<int64_t>(std::floor((min_y - grid.origin_y) * inv)), 0,
        grid.height - 1);
    const int64_t cy1 = Clamp(
        static_cast<int64_t>(std::floor((max_y - grid.origin_y) * inv)), 0,
        grid.height - 1);
    for (int64_t cx = cx0; cx <= cx1; ++cx) {
      for (int64_t cy = cy0; cy <= cy1; ++cy) {
        const double overlap =
            IntersectionArea(region.polygon, grid.CellBounds(cx, cy));
        if (overlap <= 0.0) continue;
        out[cx * grid.height + cy] +=
            static_cast<float>(region.value * overlap / total_area);
      }
    }
  }
  return out;
}

Tensor RasterizeRegionsAverage(const std::vector<ValuedRegion>& regions,
                               const GridSpec& grid) {
  Tensor weighted({grid.width, grid.height});
  Tensor coverage({grid.width, grid.height});
  for (const ValuedRegion& region : regions) {
    double min_x = 1e300, min_y = 1e300, max_x = -1e300, max_y = -1e300;
    for (const Point& p : region.polygon) {
      min_x = std::min(min_x, p.x);
      min_y = std::min(min_y, p.y);
      max_x = std::max(max_x, p.x);
      max_y = std::max(max_y, p.y);
    }
    const double inv = 1.0 / grid.cell_size;
    const int64_t cx0 = Clamp(
        static_cast<int64_t>(std::floor((min_x - grid.origin_x) * inv)), 0,
        grid.width - 1);
    const int64_t cx1 = Clamp(
        static_cast<int64_t>(std::floor((max_x - grid.origin_x) * inv)), 0,
        grid.width - 1);
    const int64_t cy0 = Clamp(
        static_cast<int64_t>(std::floor((min_y - grid.origin_y) * inv)), 0,
        grid.height - 1);
    const int64_t cy1 = Clamp(
        static_cast<int64_t>(std::floor((max_y - grid.origin_y) * inv)), 0,
        grid.height - 1);
    for (int64_t cx = cx0; cx <= cx1; ++cx) {
      for (int64_t cy = cy0; cy <= cy1; ++cy) {
        const double overlap =
            IntersectionArea(region.polygon, grid.CellBounds(cx, cy));
        if (overlap <= 0.0) continue;
        weighted[cx * grid.height + cy] +=
            static_cast<float>(region.value * overlap);
        coverage[cx * grid.height + cy] += static_cast<float>(overlap);
      }
    }
  }
  for (int64_t i = 0; i < weighted.size(); ++i) {
    if (coverage[i] > 0.0f) weighted[i] /= coverage[i];
  }
  return weighted;
}

}  // namespace geo
}  // namespace equitensor
