#ifndef EQUITENSOR_GEO_GEOMETRY_H_
#define EQUITENSOR_GEO_GEOMETRY_H_

#include <vector>

namespace equitensor {
namespace geo {

/// 2-D point in city coordinates (kilometers).
struct Point {
  double x = 0.0;
  double y = 0.0;
};

/// Open polygonal chain (e.g. a street or transit route).
using Polyline = std::vector<Point>;

/// Simple polygon given by its vertices in order (implicitly closed).
using Polygon = std::vector<Point>;

/// Axis-aligned rectangle.
struct Rect {
  double min_x = 0.0;
  double min_y = 0.0;
  double max_x = 0.0;
  double max_y = 0.0;

  double Width() const { return max_x - min_x; }
  double Height() const { return max_y - min_y; }
  double Area() const { return Width() * Height(); }
  bool Contains(const Point& p) const {
    return p.x >= min_x && p.x < max_x && p.y >= min_y && p.y < max_y;
  }
};

/// Signed area of a polygon (shoelace); positive for counter-clockwise
/// vertex order.
double SignedArea(const Polygon& poly);

/// Absolute polygon area.
double Area(const Polygon& poly);

/// Clips a polygon to an axis-aligned rectangle (Sutherland–Hodgman).
/// Returns the clipped polygon; empty when there is no overlap.
Polygon ClipToRect(const Polygon& poly, const Rect& rect);

/// Area of polygon ∩ rectangle.
double IntersectionArea(const Polygon& poly, const Rect& rect);

/// Axis-aligned rectangle as a polygon (CCW).
Polygon RectPolygon(const Rect& rect);

/// Total length of a polyline.
double Length(const Polyline& line);

}  // namespace geo
}  // namespace equitensor

#endif  // EQUITENSOR_GEO_GEOMETRY_H_
