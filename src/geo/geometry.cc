#include "geo/geometry.h"

#include <cmath>

namespace equitensor {
namespace geo {
namespace {

// Clips `input` against one half-plane keep(p) >= 0 with line
// intersection provided by `cross(a, b)` returning the parametric
// intersection point of segment a-b with the boundary.
template <typename KeepFn, typename CrossFn>
Polygon ClipHalfPlane(const Polygon& input, KeepFn keep, CrossFn cross) {
  Polygon output;
  const size_t n = input.size();
  if (n == 0) return output;
  for (size_t i = 0; i < n; ++i) {
    const Point& current = input[i];
    const Point& previous = input[(i + n - 1) % n];
    const bool current_in = keep(current);
    const bool previous_in = keep(previous);
    if (current_in) {
      if (!previous_in) output.push_back(cross(previous, current));
      output.push_back(current);
    } else if (previous_in) {
      output.push_back(cross(previous, current));
    }
  }
  return output;
}

Point LerpX(const Point& a, const Point& b, double x) {
  const double t = (x - a.x) / (b.x - a.x);
  return {x, a.y + t * (b.y - a.y)};
}

Point LerpY(const Point& a, const Point& b, double y) {
  const double t = (y - a.y) / (b.y - a.y);
  return {a.x + t * (b.x - a.x), y};
}

}  // namespace

double SignedArea(const Polygon& poly) {
  const size_t n = poly.size();
  if (n < 3) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const Point& a = poly[i];
    const Point& b = poly[(i + 1) % n];
    sum += a.x * b.y - b.x * a.y;
  }
  return 0.5 * sum;
}

double Area(const Polygon& poly) { return std::fabs(SignedArea(poly)); }

Polygon ClipToRect(const Polygon& poly, const Rect& rect) {
  Polygon clipped = poly;
  clipped = ClipHalfPlane(
      clipped, [&](const Point& p) { return p.x >= rect.min_x; },
      [&](const Point& a, const Point& b) { return LerpX(a, b, rect.min_x); });
  clipped = ClipHalfPlane(
      clipped, [&](const Point& p) { return p.x <= rect.max_x; },
      [&](const Point& a, const Point& b) { return LerpX(a, b, rect.max_x); });
  clipped = ClipHalfPlane(
      clipped, [&](const Point& p) { return p.y >= rect.min_y; },
      [&](const Point& a, const Point& b) { return LerpY(a, b, rect.min_y); });
  clipped = ClipHalfPlane(
      clipped, [&](const Point& p) { return p.y <= rect.max_y; },
      [&](const Point& a, const Point& b) { return LerpY(a, b, rect.max_y); });
  return clipped;
}

double IntersectionArea(const Polygon& poly, const Rect& rect) {
  return Area(ClipToRect(poly, rect));
}

Polygon RectPolygon(const Rect& rect) {
  return {{rect.min_x, rect.min_y},
          {rect.max_x, rect.min_y},
          {rect.max_x, rect.max_y},
          {rect.min_x, rect.max_y}};
}

double Length(const Polyline& line) {
  double total = 0.0;
  for (size_t i = 1; i < line.size(); ++i) {
    const double dx = line[i].x - line[i - 1].x;
    const double dy = line[i].y - line[i - 1].y;
    total += std::sqrt(dx * dx + dy * dy);
  }
  return total;
}

}  // namespace geo
}  // namespace equitensor
