#ifndef EQUITENSOR_GEO_RASTERIZE_H_
#define EQUITENSOR_GEO_RASTERIZE_H_

#include <vector>

#include "geo/grid.h"
#include "tensor/tensor.h"

namespace equitensor {
namespace geo {

/// A polygon carrying a regional value (e.g. a census block group with
/// a house-price index).
struct ValuedRegion {
  Polygon polygon;
  double value = 0.0;
};

/// §3.1 rasterizers. All outputs are [W, H] tensors indexed [cx, cy].

/// Counts events per cell; points outside the grid are dropped.
Tensor RasterizePoints(const std::vector<Point>& points, const GridSpec& grid);

/// Counts, per cell, the number of polyline segments that pass through
/// the cell (each segment counted once per cell it touches).
Tensor RasterizeLines(const std::vector<Polyline>& lines, const GridSpec& grid);

/// Proportional allocation by area: each region spreads its value over
/// the cells it overlaps, weighted by the fraction of the *region's*
/// area inside each cell. Cell values from different regions add.
Tensor RasterizeRegions(const std::vector<ValuedRegion>& regions,
                        const GridSpec& grid);

/// Area-weighted average of region values per cell: each cell's value
/// is Σ value·area(cell∩region) / Σ area(cell∩region) over the regions
/// overlapping it (0 where nothing overlaps). This is the right
/// treatment for intensive quantities such as census fractions (percent
/// white, percent high-income), as opposed to the extensive counts
/// handled by RasterizeRegions.
Tensor RasterizeRegionsAverage(const std::vector<ValuedRegion>& regions,
                               const GridSpec& grid);

/// Cells traversed by one segment (Amanatides–Woo grid traversal,
/// clamped to the grid). Exposed for testing.
std::vector<std::pair<int64_t, int64_t>> CellsOnSegment(const Point& a,
                                                        const Point& b,
                                                        const GridSpec& grid);

}  // namespace geo
}  // namespace equitensor

#endif  // EQUITENSOR_GEO_RASTERIZE_H_
