#ifndef EQUITENSOR_GEO_GRID_H_
#define EQUITENSOR_GEO_GRID_H_

#include <cstdint>
#include <optional>

#include "geo/geometry.h"

namespace equitensor {
namespace geo {

/// Rectilinear analysis grid of W×H non-overlapping square cells
/// covering the study area (§3.1). Cell (0, 0) sits at the origin
/// (lower-left); x indexes width, y indexes height.
struct GridSpec {
  int64_t width = 0;        // number of cells along x
  int64_t height = 0;       // number of cells along y
  double origin_x = 0.0;    // lower-left corner, km
  double origin_y = 0.0;
  double cell_size = 1.0;   // km per cell edge

  /// Total cell count.
  int64_t CellCount() const { return width * height; }

  /// Bounding rectangle of the whole grid.
  Rect Bounds() const {
    return {origin_x, origin_y, origin_x + width * cell_size,
            origin_y + height * cell_size};
  }

  /// Bounding rectangle of one cell.
  Rect CellBounds(int64_t cx, int64_t cy) const {
    return {origin_x + cx * cell_size, origin_y + cy * cell_size,
            origin_x + (cx + 1) * cell_size, origin_y + (cy + 1) * cell_size};
  }

  /// Center point of a cell.
  Point CellCenter(int64_t cx, int64_t cy) const {
    return {origin_x + (cx + 0.5) * cell_size,
            origin_y + (cy + 0.5) * cell_size};
  }

  /// Cell containing a point, or nullopt if outside the grid.
  std::optional<std::pair<int64_t, int64_t>> CellOf(const Point& p) const;
};

}  // namespace geo
}  // namespace equitensor

#endif  // EQUITENSOR_GEO_GRID_H_
