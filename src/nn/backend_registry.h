#ifndef EQUITENSOR_NN_BACKEND_REGISTRY_H_
#define EQUITENSOR_NN_BACKEND_REGISTRY_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace equitensor {
namespace backend {

/// Runtime kernel-backend layer (DESIGN.md §13). The numerical ops
/// that dominate training — the three convolutions and MatMul — are
/// resolved at runtime from a registry mapping (op key, backend name)
/// to an implementation:
///
///   reference — serial scalar loops; the semantics oracle.
///   parallel  — the ParallelFor owner-computes path (the previous
///               default; bitwise-identical to reference).
///   simd      — im2col + blocked AVX2/FMA GEMM with arena-planned
///               scratch (kernels_simd.cc); deterministic per thread
///               count, equal to reference within CheckTolerance.
///   fused     — the static-graph executor (nn/graph_ir.h): models
///               route their forward through a fused schedule whose
///               conv+bias+activation chains and encoder concats
///               collapse into the single-kernel dispatches below
///               (kernels_fused.cc); base ops delegate to `simd`.
///   check     — self-verifying mode: every dispatch runs the fast
///               path (`simd`, or the fused kernel for fused ops) and
///               a reference decomposition and CHECK-fails if they
///               diverge beyond CheckTolerance; the fast result is
///               kept, so the fast path is what actually executes.
///
/// Selection: `SetBackend` (wired to the tools' `--backend` flag),
/// else the `ET_BACKEND` environment variable read once at startup,
/// else `parallel`. Every future kernel optimization is an additive
/// `RegisterKernel` call instead of a rewrite; this is also the seam
/// an external-BLAS or GPU backend would plug into.

enum class Backend { kReference, kParallel, kSimd, kCheck, kFused };

/// Pre-validated convolution geometry ("same" zero padding, stride 1,
/// odd kernels — see autograd/conv_ops.h for the layout conventions).
/// Shape validation happens once in the autograd wrappers; kernels
/// never re-derive or re-check dims.
struct Conv1dDims {
  int64_t batch, cin, t, cout, k, pad;
};
struct Conv2dDims {
  int64_t batch, cin, w, h, cout, k, pad;
};
struct Conv3dDims {
  int64_t batch, cin, w, h, t, cout, k, pad;
};

/// GEMM geometry: C[m, n] = op(A) · op(B), row-major, where op is an
/// optional transpose. A is [m, k] (or [k, m] when trans_a), B is
/// [k, n] (or [n, k] when trans_b). `accumulate` adds into C instead
/// of overwriting it.
struct MatMulSpec {
  int64_t m, k, n;
  bool trans_a = false;
  bool trans_b = false;
  bool accumulate = false;
};

/// Kernel contracts shared by every backend:
///  - forward kernels require `out` zero-filled on entry and add the
///    convolution sum into it;
///  - backward kernels ACCUMULATE into gx / gw; either may be null to
///    skip that gradient;
///  - all reductions for one output element run in a fixed serial
///    order, so each backend is bitwise-deterministic for any thread
///    count (the cross-backend story is CheckTolerance, below).
using Conv1dFwdFn = void (*)(const Conv1dDims&, const Tensor& x,
                             const Tensor& w, Tensor* out);
using Conv1dBwdFn = void (*)(const Conv1dDims&, const Tensor& x,
                             const Tensor& w, const Tensor& gout, Tensor* gx,
                             Tensor* gw);
using Conv2dFwdFn = void (*)(const Conv2dDims&, const Tensor& x,
                             const Tensor& w, Tensor* out);
using Conv2dBwdFn = void (*)(const Conv2dDims&, const Tensor& x,
                             const Tensor& w, const Tensor& gout, Tensor* gx,
                             Tensor* gw);
using Conv3dFwdFn = void (*)(const Conv3dDims&, const Tensor& x,
                             const Tensor& w, Tensor* out);
using Conv3dBwdFn = void (*)(const Conv3dDims&, const Tensor& x,
                             const Tensor& w, const Tensor& gout, Tensor* gx,
                             Tensor* gw);
using MatMulFn = void (*)(const MatMulSpec&, const float* a, const float* b,
                          float* c);

/// Pointwise activation folded into a fused conv epilogue. Values
/// mirror nn::Activation; semantics are bit-for-bit the eager ops
/// (relu `x > 0 ? x : 0`, sigmoid `1/(1+exp(-x))`, tanh `std::tanh`).
enum class Act : int32_t { kLinear = 0, kRelu = 1, kSigmoid = 2, kTanh = 3 };

/// Pre-validated geometry of a fused conv+bias+activation dispatch.
/// One struct covers all three spatial ranks with the same unification
/// the simd lowering uses: rank 1 sets w = h = 1 (t is the time axis),
/// rank 2 sets t = 1. For the concat-folding variant `cin` is the SUM
/// of the part channel counts; per-part layout rides in the dispatch
/// arguments, not here.
struct ConvBiasActDims {
  int64_t rank;  // spatial rank: 1, 2, or 3
  int64_t batch, cin, cout, k, pad;
  int64_t w, h, t;  // unified extents (see above)
  Act act;
};

/// Fused-kernel contracts (kernels_fused.cc):
///  - forward OVERWRITES `out` = act(conv(x, w) + bias) — unlike the
///    base conv kernels there is no zero-fill precondition;
///  - backward ACCUMULATES into gx / gw / gb, any of which may be null
///    to skip that gradient, and receives the forward OUTPUT `y` so
///    activation derivatives are computed from the produced values
///    (matching the eager autograd ops bit for bit);
///  - the concat variant reads the virtual input from `parts` (their
///    channels stacked on axis 1, the fold described in DESIGN.md §15)
///    and scatters gx into `gparts`; null entries skip that part.
using ConvBiasActFwdFn = void (*)(const ConvBiasActDims&, const Tensor& x,
                                  const Tensor& w, const Tensor& bias,
                                  Tensor* out);
using ConvBiasActBwdFn = void (*)(const ConvBiasActDims&, const Tensor& x,
                                  const Tensor& w, const Tensor& y,
                                  const Tensor& gout, Tensor* gx, Tensor* gw,
                                  Tensor* gb);
using ConcatConvBiasActFwdFn = void (*)(const ConvBiasActDims&,
                                        const std::vector<const Tensor*>& parts,
                                        const Tensor& w, const Tensor& bias,
                                        Tensor* out);
using ConcatConvBiasActBwdFn = void (*)(const ConvBiasActDims&,
                                        const std::vector<const Tensor*>& parts,
                                        const Tensor& w, const Tensor& y,
                                        const Tensor& gout,
                                        const std::vector<Tensor*>& gparts,
                                        Tensor* gw, Tensor* gb);

/// Registers `fn` (one of the Fn types above) for (`op_key`,
/// `backend`). Op keys: conv1d_fwd, conv1d_bwd, conv2d_fwd, conv2d_bwd,
/// conv3d_fwd, conv3d_bwd, matmul. Re-registering an existing pair
/// replaces it (last wins), so tests can shim kernels.
void RegisterKernel(const std::string& op_key, const std::string& backend,
                    void (*fn)());

/// Typed registration convenience.
template <typename Fn>
void RegisterKernelFn(const std::string& op_key, const std::string& backend,
                      Fn fn) {
  RegisterKernel(op_key, backend, reinterpret_cast<void (*)()>(fn));
}

/// Resolves a registered kernel; aborts if the (op, backend) pair is
/// missing — selection validates availability up front, so a miss here
/// is a programmer error.
void* ResolveKernel(const std::string& op_key, const std::string& backend);

template <typename Fn>
Fn ResolveKernelFn(const std::string& op_key, const std::string& backend) {
  return reinterpret_cast<Fn>(
      reinterpret_cast<void (*)()>(ResolveKernel(op_key, backend)));
}

/// All registered (op_key, backend) pairs, sorted, for diagnostics.
std::vector<std::pair<std::string, std::string>> ListKernels();

/// Backend-name round trip: "reference" | "parallel" | "simd" |
/// "check" | "fused". ParseBackend returns false on unknown names.
bool ParseBackend(const std::string& name, Backend* out);
const char* BackendName(Backend b);

/// Runtime selection. CurrentBackend resolves, in priority order:
/// SetBackend, the ET_BACKEND env var (read once), kParallel.
void SetBackend(Backend b);
Backend CurrentBackend();

/// True when models should execute through their fused graph schedule
/// (nn/graph_ir.h) instead of eager op chains: the current backend is
/// `fused`, or `check` (so the self-verifying mode replays every fused
/// dispatch against its reference decomposition).
bool FusedGraphActive();

/// True when the CPU executes the AVX2/FMA micro-kernels; false means
/// the simd backend is running its portable blocked fallback.
bool SimdAcceleratorActive();

/// Documented cross-backend tolerance (DESIGN.md §13): the simd GEMM
/// accumulates in a different association than the reference loops, so
/// elementwise |simd - ref| is bounded by
///   kCheckRelTol * sqrt(reduction_length) * max(1, |ref|_max)
/// with kCheckRelTol = 1e-5 (float mantissa epsilon headroom).
/// `reduction_length` is the number of fused multiply-adds feeding one
/// output element (cin * k^d for conv, k for matmul).
float CheckTolerance(int64_t reduction_length, float ref_absmax);

/// Dispatch entry points used by the autograd layer and the eager
/// MatMul hot path. These apply CurrentBackend(), including the
/// self-verifying check mode.
void Conv1dForward(const Conv1dDims& d, const Tensor& x, const Tensor& w,
                   Tensor* out);
void Conv1dBackward(const Conv1dDims& d, const Tensor& x, const Tensor& w,
                    const Tensor& gout, Tensor* gx, Tensor* gw);
void Conv2dForward(const Conv2dDims& d, const Tensor& x, const Tensor& w,
                   Tensor* out);
void Conv2dBackward(const Conv2dDims& d, const Tensor& x, const Tensor& w,
                    const Tensor& gout, Tensor* gx, Tensor* gw);
void Conv3dForward(const Conv3dDims& d, const Tensor& x, const Tensor& w,
                   Tensor* out);
void Conv3dBackward(const Conv3dDims& d, const Tensor& x, const Tensor& w,
                    const Tensor& gout, Tensor* gx, Tensor* gw);
void MatMul(const MatMulSpec& spec, const float* a, const float* b, float* c);

/// Fused-op dispatch. Under `fused` (and `check`) these run the fused
/// kernels; under every other backend they DECOMPOSE into the
/// constituent base ops of that backend — conv via its kernel table
/// plus the eager bias/activation loops — producing values bitwise
/// equal to the eager op chain, so the fused graph schedule can run on
/// any backend. Check mode runs the fused kernel AND the reference
/// decomposition and aborts beyond CheckTolerance.
void ConvBiasActForward(const ConvBiasActDims& d, const Tensor& x,
                        const Tensor& w, const Tensor& bias, Tensor* out);
void ConvBiasActBackward(const ConvBiasActDims& d, const Tensor& x,
                         const Tensor& w, const Tensor& y, const Tensor& gout,
                         Tensor* gx, Tensor* gw, Tensor* gb);
void ConcatConvBiasActForward(const ConvBiasActDims& d,
                              const std::vector<const Tensor*>& parts,
                              const Tensor& w, const Tensor& bias, Tensor* out);
void ConcatConvBiasActBackward(const ConvBiasActDims& d,
                               const std::vector<const Tensor*>& parts,
                               const Tensor& w, const Tensor& y,
                               const Tensor& gout,
                               const std::vector<Tensor*>& gparts, Tensor* gw,
                               Tensor* gb);

}  // namespace backend
}  // namespace equitensor

#endif  // EQUITENSOR_NN_BACKEND_REGISTRY_H_
