#include "nn/backend_registry.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <map>
#include <mutex>

#include <cstring>

#include "nn/kernels_fused.h"
#include "nn/kernels_naive.h"
#include "nn/kernels_simd.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace equitensor {
namespace backend {
namespace {

// (op key -> backend name -> implementation). Guarded by a mutex; hot
// dispatch never touches the map — it goes through the cached tables
// below, rebuilt only when a registration bumps the version.
struct Registry {
  std::mutex mu;
  std::map<std::string, std::map<std::string, void (*)()>> ops;
  std::atomic<uint64_t> version{0};
};

Registry& GetRegistry() {
  static Registry* r = new Registry();  // never destroyed
  return *r;
}

// Built-in kernel sets register on first use: a static archive drops
// TUs nothing references, so self-registering global constructors
// would silently vanish — registration is an explicit, idempotent call.
void EnsureBuiltinsRegistered() {
  RegisterNaiveKernels();
  RegisterSimdKernels();
  RegisterFusedKernels();
}

std::atomic<int> g_backend{-1};  // -1 = unset, else static_cast<Backend>

Backend BackendFromEnv() {
  const char* env = std::getenv("ET_BACKEND");
  if (env == nullptr || env[0] == '\0') return Backend::kParallel;
  Backend b;
  ET_CHECK(ParseBackend(env, &b))
      << "ET_BACKEND=" << env
      << " is not a backend (reference | parallel | simd | check | fused)";
  return b;
}

Backend ActiveBackend() {
  int b = g_backend.load(std::memory_order_relaxed);
  if (b < 0) {
    b = static_cast<int>(BackendFromEnv());
    // First resolution wins; concurrent first calls agree because the
    // env var is stable.
    g_backend.store(b, std::memory_order_relaxed);
  }
  return static_cast<Backend>(b);
}

/// Fully-resolved kernel set for one executable backend. Check mode
/// resolves the reference and simd tables and compares.
struct KernelTable {
  Conv1dFwdFn conv1d_fwd;
  Conv1dBwdFn conv1d_bwd;
  Conv2dFwdFn conv2d_fwd;
  Conv2dBwdFn conv2d_bwd;
  Conv3dFwdFn conv3d_fwd;
  Conv3dBwdFn conv3d_bwd;
  MatMulFn matmul;
};

KernelTable BuildTable(const char* name) {
  KernelTable t;
  t.conv1d_fwd = ResolveKernelFn<Conv1dFwdFn>("conv1d_fwd", name);
  t.conv1d_bwd = ResolveKernelFn<Conv1dBwdFn>("conv1d_bwd", name);
  t.conv2d_fwd = ResolveKernelFn<Conv2dFwdFn>("conv2d_fwd", name);
  t.conv2d_bwd = ResolveKernelFn<Conv2dBwdFn>("conv2d_bwd", name);
  t.conv3d_fwd = ResolveKernelFn<Conv3dFwdFn>("conv3d_fwd", name);
  t.conv3d_bwd = ResolveKernelFn<Conv3dBwdFn>("conv3d_bwd", name);
  t.matmul = ResolveKernelFn<MatMulFn>("matmul", name);
  return t;
}

// Table cache: rebuilt when the registry version moves (tests shimming
// kernels via re-registration take effect on their next dispatch).
const KernelTable& TableFor(Backend b) {
  ET_CHECK(b != Backend::kCheck) << "check mode has no single table";
  static std::mutex mu;
  static uint64_t cached_version = ~uint64_t{0};
  static KernelTable tables[5];  // indexed by Backend value; kCheck unused
  EnsureBuiltinsRegistered();
  std::lock_guard<std::mutex> lock(mu);
  const uint64_t v = GetRegistry().version.load(std::memory_order_acquire);
  if (v != cached_version) {
    tables[0] = BuildTable("reference");
    tables[1] = BuildTable("parallel");
    tables[2] = BuildTable("simd");
    tables[static_cast<int>(Backend::kFused)] = BuildTable("fused");
    cached_version = v;
  }
  return tables[static_cast<int>(b)];
}

/// The fused-op kernels exist only under the "fused" backend name —
/// every other backend dispatches them through the decomposition
/// below — so they get their own cached table instead of rows in
/// KernelTable (where ResolveKernel would abort for reference/
/// parallel/simd).
struct FusedOpTable {
  ConvBiasActFwdFn cba_fwd;
  ConvBiasActBwdFn cba_bwd;
  ConcatConvBiasActFwdFn ccba_fwd;
  ConcatConvBiasActBwdFn ccba_bwd;
};

const FusedOpTable& FusedOps() {
  static std::mutex mu;
  static uint64_t cached_version = ~uint64_t{0};
  static FusedOpTable t;
  EnsureBuiltinsRegistered();
  std::lock_guard<std::mutex> lock(mu);
  const uint64_t v = GetRegistry().version.load(std::memory_order_acquire);
  if (v != cached_version) {
    t.cba_fwd = ResolveKernelFn<ConvBiasActFwdFn>("conv_bias_act_fwd", "fused");
    t.cba_bwd = ResolveKernelFn<ConvBiasActBwdFn>("conv_bias_act_bwd", "fused");
    t.ccba_fwd = ResolveKernelFn<ConcatConvBiasActFwdFn>(
        "concat_conv_bias_act_fwd", "fused");
    t.ccba_bwd = ResolveKernelFn<ConcatConvBiasActBwdFn>(
        "concat_conv_bias_act_bwd", "fused");
    cached_version = v;
  }
  return t;
}

void CompareOrDie(const char* op, const Tensor& ref, const Tensor& got,
                  int64_t reduction_length) {
  ET_CHECK(ref.SameShape(got));
  const float tol = CheckTolerance(reduction_length, ref.AbsMax());
  float max_diff = 0.0f;
  int64_t where = -1;
  for (int64_t i = 0; i < ref.size(); ++i) {
    const float diff = std::fabs(ref[i] - got[i]);
    if (diff > max_diff) {
      max_diff = diff;
      where = i;
    }
  }
  ET_CHECK(max_diff <= tol)
      << "backend check failed for " << op << ": simd diverges from "
      << "reference by " << max_diff << " (tolerance " << tol
      << ") at linear index " << where << ", shape " << ref.ShapeString();
  ET_METRIC_COUNTER_ADD("backend.check.passes", 1);
}

// Check-mode conv dispatch: run reference and simd into separate
// buffers, compare within the documented bound, keep the simd result.
// Backward kernels accumulate, so the comparison runs on zeroed temps
// which are then added into the caller's gradients. Check mode is a
// verification mode — its extra buffers are ordinary allocations, not
// arena leases, and its cost is ~2x plus a compare.
template <typename Dims, typename FwdFn>
void CheckedConvFwd(const char* op, FwdFn ref_fn, FwdFn simd_fn,
                    const Dims& d, const Tensor& x, const Tensor& w,
                    Tensor* out, int64_t reduction) {
  Tensor ref(out->shape());
  ref_fn(d, x, w, &ref);
  simd_fn(d, x, w, out);
  CompareOrDie(op, ref, *out, reduction);
}

template <typename Dims, typename BwdFn>
void CheckedConvBwd(const char* op, BwdFn ref_fn, BwdFn simd_fn,
                    const Dims& d, const Tensor& x, const Tensor& w,
                    const Tensor& gout, Tensor* gx, Tensor* gw,
                    int64_t gx_reduction, int64_t gw_reduction) {
  Tensor ref_gx, ref_gw, simd_gx, simd_gw;
  if (gx) {
    ref_gx = Tensor(x.shape());
    simd_gx = Tensor(x.shape());
  }
  if (gw) {
    ref_gw = Tensor(w.shape());
    simd_gw = Tensor(w.shape());
  }
  ref_fn(d, x, w, gout, gx ? &ref_gx : nullptr, gw ? &ref_gw : nullptr);
  simd_fn(d, x, w, gout, gx ? &simd_gx : nullptr, gw ? &simd_gw : nullptr);
  if (gx) {
    CompareOrDie(op, ref_gx, simd_gx, gx_reduction);
    for (int64_t i = 0; i < gx->size(); ++i) (*gx)[i] += simd_gx[i];
  }
  if (gw) {
    CompareOrDie(op, ref_gw, simd_gw, gw_reduction);
    for (int64_t i = 0; i < gw->size(); ++i) (*gw)[i] += simd_gw[i];
  }
}

// ---------------------------------------------------------------------------
// Fused-op decomposition. Non-fused backends execute a fused dispatch
// as its constituent ops: conv through the backend's kernel table,
// bias/activation/bias-grad through the shared eager-expression
// helpers (kernels_fused.h). The result is bitwise equal to the eager
// op chain on that backend — and the kReference instantiation doubles
// as the oracle check mode replays every fused dispatch against.

Conv1dDims To1d(const ConvBiasActDims& d) {
  return {d.batch, d.cin, d.t, d.cout, d.k, d.pad};
}
Conv2dDims To2d(const ConvBiasActDims& d) {
  return {d.batch, d.cin, d.w, d.h, d.cout, d.k, d.pad};
}
Conv3dDims To3d(const ConvBiasActDims& d) {
  return {d.batch, d.cin, d.w, d.h, d.t, d.cout, d.k, d.pad};
}

int64_t FusedSpatialVolume(const ConvBiasActDims& d) { return d.w * d.h * d.t; }

int64_t FusedKernelVolume(const ConvBiasActDims& d) {
  int64_t kv = d.k;
  for (int64_t r = 1; r < d.rank; ++r) kv *= d.k;
  return kv;
}

// Materializes the axis-1 concat of `parts` — only on the decomposed
// path; the fused kernels gather from the parts directly.
Tensor MaterializeConcat(const ConvBiasActDims& d,
                         const std::vector<const Tensor*>& parts) {
  const int64_t pvol = FusedSpatialVolume(d);
  std::vector<int64_t> shape = {d.batch, d.cin};
  if (d.rank >= 2) {
    shape.push_back(d.w);
    shape.push_back(d.h);
  }
  if (d.rank != 2) shape.push_back(d.t);
  Tensor merged(std::move(shape));
  int64_t off = 0;
  for (const Tensor* part : parts) {
    const int64_t c_part = part->dim(1);
    for (int64_t n = 0; n < d.batch; ++n) {
      std::memcpy(merged.data() + (n * d.cin + off) * pvol,
                  part->data() + n * c_part * pvol,
                  static_cast<size_t>(c_part * pvol) * sizeof(float));
    }
    off += c_part;
  }
  return merged;
}

void DecomposedConvFwd(const KernelTable& t, const ConvBiasActDims& d,
                       const Tensor& x, const Tensor& w, Tensor* out) {
  switch (d.rank) {
    case 1:
      t.conv1d_fwd(To1d(d), x, w, out);
      return;
    case 2:
      t.conv2d_fwd(To2d(d), x, w, out);
      return;
    default:
      t.conv3d_fwd(To3d(d), x, w, out);
      return;
  }
}

void DecomposedConvBwd(const KernelTable& t, const ConvBiasActDims& d,
                       const Tensor& x, const Tensor& w, const Tensor& gout,
                       Tensor* gx, Tensor* gw) {
  switch (d.rank) {
    case 1:
      t.conv1d_bwd(To1d(d), x, w, gout, gx, gw);
      return;
    case 2:
      t.conv2d_bwd(To2d(d), x, w, gout, gx, gw);
      return;
    default:
      t.conv3d_bwd(To3d(d), x, w, gout, gx, gw);
      return;
  }
}

void DecomposedCbaFwd(Backend b, const ConvBiasActDims& d, const Tensor& x,
                      const Tensor& w, const Tensor& bias, Tensor* out) {
  // The fused op overwrites `out`; the base conv kernels add into a
  // zeroed buffer, so clear first (in check mode the caller's buffer
  // already holds the fused result).
  std::memset(out->data(), 0,
              static_cast<size_t>(out->size()) * sizeof(float));
  DecomposedConvFwd(TableFor(b), d, x, w, out);
  FusedBiasActEpilogue(d.act, d.batch, d.cout, FusedSpatialVolume(d),
                       bias.data(), out->data());
}

// The decomposed backward derives act' from the PRODUCED output `y`
// (whichever kernel produced it), exactly like the eager activation
// backward — so in check mode the fused and reference paths share one
// relu mask and differences reflect conv associativity only.
void DecomposedCbaBwd(Backend b, const ConvBiasActDims& d, const Tensor& x,
                      const Tensor& w, const Tensor& y, const Tensor& gout,
                      Tensor* gx, Tensor* gw, Tensor* gb) {
  const int64_t pvol = FusedSpatialVolume(d);
  Tensor gpre_t;
  const Tensor* gpre = &gout;
  if (d.act != Act::kLinear) {
    gpre_t = Tensor(gout.shape());
    FusedGradPreAct(d.act, gout.data(), y.data(), gout.size(), gpre_t.data());
    gpre = &gpre_t;
  }
  if (gb) {
    FusedAccumulateBiasGrad(d.batch, d.cout, pvol, gpre->data(), gb->data());
  }
  if (gx || gw) DecomposedConvBwd(TableFor(b), d, x, w, *gpre, gx, gw);
}

void DecomposedCcbaFwd(Backend b, const ConvBiasActDims& d,
                       const std::vector<const Tensor*>& parts, const Tensor& w,
                       const Tensor& bias, Tensor* out) {
  const Tensor merged = MaterializeConcat(d, parts);
  DecomposedCbaFwd(b, d, merged, w, bias, out);
}

void DecomposedCcbaBwd(Backend b, const ConvBiasActDims& d,
                       const std::vector<const Tensor*>& parts, const Tensor& w,
                       const Tensor& y, const Tensor& gout,
                       const std::vector<Tensor*>& gparts, Tensor* gw,
                       Tensor* gb) {
  const int64_t pvol = FusedSpatialVolume(d);
  bool any_gx = false;
  for (Tensor* gp : gparts) any_gx |= (gp != nullptr);
  const Tensor merged = MaterializeConcat(d, parts);
  Tensor gx_merged;
  if (any_gx) gx_merged = Tensor(merged.shape());
  DecomposedCbaBwd(b, d, merged, w, y, gout, any_gx ? &gx_merged : nullptr, gw,
                   gb);
  if (!any_gx) return;
  // Eager concat backward: each part receives its channel slice of the
  // merged gradient (accumulating, per the fused-op contract).
  int64_t off = 0;
  for (size_t pi = 0; pi < parts.size(); ++pi) {
    const int64_t c_part = parts[pi]->dim(1);
    if (gparts[pi] != nullptr) {
      for (int64_t n = 0; n < d.batch; ++n) {
        const float* src = gx_merged.data() + (n * d.cin + off) * pvol;
        float* dst = gparts[pi]->data() + n * c_part * pvol;
        for (int64_t i = 0; i < c_part * pvol; ++i) dst[i] += src[i];
      }
    }
    off += c_part;
  }
}

}  // namespace

void RegisterKernel(const std::string& op_key, const std::string& backend,
                    void (*fn)()) {
  ET_CHECK(fn != nullptr) << "null kernel for " << op_key << "/" << backend;
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.ops[op_key][backend] = fn;
  r.version.fetch_add(1, std::memory_order_release);
}

void* ResolveKernel(const std::string& op_key, const std::string& backend) {
  EnsureBuiltinsRegistered();
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto op_it = r.ops.find(op_key);
  ET_CHECK(op_it != r.ops.end()) << "unknown op key " << op_key;
  auto be_it = op_it->second.find(backend);
  ET_CHECK(be_it != op_it->second.end())
      << "op " << op_key << " has no '" << backend << "' implementation";
  return reinterpret_cast<void*>(be_it->second);
}

std::vector<std::pair<std::string, std::string>> ListKernels() {
  EnsureBuiltinsRegistered();
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& [op, impls] : r.ops) {
    for (const auto& [name, fn] : impls) {
      (void)fn;
      out.emplace_back(op, name);
    }
  }
  return out;
}

bool ParseBackend(const std::string& name, Backend* out) {
  if (name == "reference") {
    *out = Backend::kReference;
  } else if (name == "parallel") {
    *out = Backend::kParallel;
  } else if (name == "simd") {
    *out = Backend::kSimd;
  } else if (name == "check") {
    *out = Backend::kCheck;
  } else if (name == "fused") {
    *out = Backend::kFused;
  } else {
    return false;
  }
  return true;
}

const char* BackendName(Backend b) {
  switch (b) {
    case Backend::kReference:
      return "reference";
    case Backend::kParallel:
      return "parallel";
    case Backend::kSimd:
      return "simd";
    case Backend::kCheck:
      return "check";
    case Backend::kFused:
      return "fused";
  }
  return "unknown";
}

void SetBackend(Backend b) {
  g_backend.store(static_cast<int>(b), std::memory_order_relaxed);
}

Backend CurrentBackend() { return ActiveBackend(); }

bool SimdAcceleratorActive() {
  EnsureBuiltinsRegistered();
  return SimdKernelsUseAvx2();
}

float CheckTolerance(int64_t reduction_length, float ref_absmax) {
  constexpr float kCheckRelTol = 1e-5f;
  const float len = static_cast<float>(reduction_length < 1 ? 1
                                                            : reduction_length);
  const float scale = ref_absmax > 1.0f ? ref_absmax : 1.0f;
  return kCheckRelTol * std::sqrt(len) * scale;
}

void Conv1dForward(const Conv1dDims& d, const Tensor& x, const Tensor& w,
                   Tensor* out) {
  const Backend b = ActiveBackend();
  if (b == Backend::kCheck) {
    CheckedConvFwd("conv1d_fwd", TableFor(Backend::kReference).conv1d_fwd,
                   TableFor(Backend::kSimd).conv1d_fwd, d, x, w, out,
                   d.cin * d.k);
    return;
  }
  TableFor(b).conv1d_fwd(d, x, w, out);
}

void Conv1dBackward(const Conv1dDims& d, const Tensor& x, const Tensor& w,
                    const Tensor& gout, Tensor* gx, Tensor* gw) {
  const Backend b = ActiveBackend();
  if (b == Backend::kCheck) {
    CheckedConvBwd("conv1d_bwd", TableFor(Backend::kReference).conv1d_bwd,
                   TableFor(Backend::kSimd).conv1d_bwd, d, x, w, gout, gx, gw,
                   d.cout * d.k, d.batch * d.t);
    return;
  }
  TableFor(b).conv1d_bwd(d, x, w, gout, gx, gw);
}

void Conv2dForward(const Conv2dDims& d, const Tensor& x, const Tensor& w,
                   Tensor* out) {
  const Backend b = ActiveBackend();
  if (b == Backend::kCheck) {
    CheckedConvFwd("conv2d_fwd", TableFor(Backend::kReference).conv2d_fwd,
                   TableFor(Backend::kSimd).conv2d_fwd, d, x, w, out,
                   d.cin * d.k * d.k);
    return;
  }
  TableFor(b).conv2d_fwd(d, x, w, out);
}

void Conv2dBackward(const Conv2dDims& d, const Tensor& x, const Tensor& w,
                    const Tensor& gout, Tensor* gx, Tensor* gw) {
  const Backend b = ActiveBackend();
  if (b == Backend::kCheck) {
    CheckedConvBwd("conv2d_bwd", TableFor(Backend::kReference).conv2d_bwd,
                   TableFor(Backend::kSimd).conv2d_bwd, d, x, w, gout, gx, gw,
                   d.cout * d.k * d.k, d.batch * d.w * d.h);
    return;
  }
  TableFor(b).conv2d_bwd(d, x, w, gout, gx, gw);
}

void Conv3dForward(const Conv3dDims& d, const Tensor& x, const Tensor& w,
                   Tensor* out) {
  const Backend b = ActiveBackend();
  if (b == Backend::kCheck) {
    CheckedConvFwd("conv3d_fwd", TableFor(Backend::kReference).conv3d_fwd,
                   TableFor(Backend::kSimd).conv3d_fwd, d, x, w, out,
                   d.cin * d.k * d.k * d.k);
    return;
  }
  TableFor(b).conv3d_fwd(d, x, w, out);
}

void Conv3dBackward(const Conv3dDims& d, const Tensor& x, const Tensor& w,
                    const Tensor& gout, Tensor* gx, Tensor* gw) {
  const Backend b = ActiveBackend();
  if (b == Backend::kCheck) {
    CheckedConvBwd("conv3d_bwd", TableFor(Backend::kReference).conv3d_bwd,
                   TableFor(Backend::kSimd).conv3d_bwd, d, x, w, gout, gx, gw,
                   d.cout * d.k * d.k * d.k, d.batch * d.w * d.h * d.t);
    return;
  }
  TableFor(b).conv3d_bwd(d, x, w, gout, gx, gw);
}

void MatMul(const MatMulSpec& spec, const float* a, const float* b, float* c) {
  const Backend be = ActiveBackend();
  if (be == Backend::kCheck) {
    MatMulSpec fresh = spec;
    fresh.accumulate = false;
    Tensor ref({spec.m, spec.n});
    Tensor simd({spec.m, spec.n});
    TableFor(Backend::kReference).matmul(fresh, a, b, ref.data());
    TableFor(Backend::kSimd).matmul(fresh, a, b, simd.data());
    CompareOrDie("matmul", ref, simd, spec.k);
    if (spec.accumulate) {
      for (int64_t i = 0; i < simd.size(); ++i) c[i] += simd[i];
    } else {
      for (int64_t i = 0; i < simd.size(); ++i) c[i] = simd[i];
    }
    return;
  }
  TableFor(be).matmul(spec, a, b, c);
}

bool FusedGraphActive() {
  const Backend b = ActiveBackend();
  return b == Backend::kFused || b == Backend::kCheck;
}

void ConvBiasActForward(const ConvBiasActDims& d, const Tensor& x,
                        const Tensor& w, const Tensor& bias, Tensor* out) {
  const Backend b = ActiveBackend();
  if (b == Backend::kFused) {
    FusedOps().cba_fwd(d, x, w, bias, out);
    return;
  }
  if (b == Backend::kCheck) {
    FusedOps().cba_fwd(d, x, w, bias, out);
    Tensor ref(out->shape());
    DecomposedCbaFwd(Backend::kReference, d, x, w, bias, &ref);
    // +1 term: the bias add on top of the cin·k^rank conv reduction.
    CompareOrDie("conv_bias_act_fwd", ref, *out,
                 d.cin * FusedKernelVolume(d) + 1);
    return;
  }
  DecomposedCbaFwd(b, d, x, w, bias, out);
}

void ConvBiasActBackward(const ConvBiasActDims& d, const Tensor& x,
                         const Tensor& w, const Tensor& y, const Tensor& gout,
                         Tensor* gx, Tensor* gw, Tensor* gb) {
  const Backend b = ActiveBackend();
  if (b == Backend::kFused) {
    FusedOps().cba_bwd(d, x, w, y, gout, gx, gw, gb);
    return;
  }
  if (b == Backend::kCheck) {
    // The fused backward accumulates, so both paths run on zeroed
    // temps; the fused results are compared then added into the
    // caller's gradients.
    Tensor f_gx, f_gw, f_gb, r_gx, r_gw, r_gb;
    if (gx) {
      f_gx = Tensor(x.shape());
      r_gx = Tensor(x.shape());
    }
    if (gw) {
      f_gw = Tensor(w.shape());
      r_gw = Tensor(w.shape());
    }
    if (gb) {
      f_gb = Tensor({d.cout});
      r_gb = Tensor({d.cout});
    }
    FusedOps().cba_bwd(d, x, w, y, gout, gx ? &f_gx : nullptr,
                       gw ? &f_gw : nullptr, gb ? &f_gb : nullptr);
    DecomposedCbaBwd(Backend::kReference, d, x, w, y, gout,
                     gx ? &r_gx : nullptr, gw ? &r_gw : nullptr,
                     gb ? &r_gb : nullptr);
    const int64_t kvol = FusedKernelVolume(d);
    const int64_t pvol = FusedSpatialVolume(d);
    if (gx) {
      CompareOrDie("conv_bias_act_bwd", r_gx, f_gx, d.cout * kvol);
      for (int64_t i = 0; i < gx->size(); ++i) (*gx)[i] += f_gx[i];
    }
    if (gw) {
      CompareOrDie("conv_bias_act_bwd", r_gw, f_gw, d.batch * pvol);
      for (int64_t i = 0; i < gw->size(); ++i) (*gw)[i] += f_gw[i];
    }
    if (gb) {
      CompareOrDie("conv_bias_act_bwd", r_gb, f_gb, d.batch * pvol);
      for (int64_t i = 0; i < gb->size(); ++i) (*gb)[i] += f_gb[i];
    }
    return;
  }
  DecomposedCbaBwd(b, d, x, w, y, gout, gx, gw, gb);
}

void ConcatConvBiasActForward(const ConvBiasActDims& d,
                              const std::vector<const Tensor*>& parts,
                              const Tensor& w, const Tensor& bias,
                              Tensor* out) {
  const Backend b = ActiveBackend();
  if (b == Backend::kFused) {
    FusedOps().ccba_fwd(d, parts, w, bias, out);
    return;
  }
  if (b == Backend::kCheck) {
    FusedOps().ccba_fwd(d, parts, w, bias, out);
    Tensor ref(out->shape());
    DecomposedCcbaFwd(Backend::kReference, d, parts, w, bias, &ref);
    CompareOrDie("concat_conv_bias_act_fwd", ref, *out,
                 d.cin * FusedKernelVolume(d) + 1);
    return;
  }
  DecomposedCcbaFwd(b, d, parts, w, bias, out);
}

void ConcatConvBiasActBackward(const ConvBiasActDims& d,
                               const std::vector<const Tensor*>& parts,
                               const Tensor& w, const Tensor& y,
                               const Tensor& gout,
                               const std::vector<Tensor*>& gparts, Tensor* gw,
                               Tensor* gb) {
  const Backend b = ActiveBackend();
  if (b == Backend::kFused) {
    FusedOps().ccba_bwd(d, parts, w, y, gout, gparts, gw, gb);
    return;
  }
  if (b == Backend::kCheck) {
    std::vector<Tensor> f_gp_store(parts.size()), r_gp_store(parts.size());
    std::vector<Tensor*> f_gp(parts.size(), nullptr),
        r_gp(parts.size(), nullptr);
    for (size_t i = 0; i < parts.size(); ++i) {
      if (gparts[i] != nullptr) {
        f_gp_store[i] = Tensor(parts[i]->shape());
        r_gp_store[i] = Tensor(parts[i]->shape());
        f_gp[i] = &f_gp_store[i];
        r_gp[i] = &r_gp_store[i];
      }
    }
    Tensor f_gw, f_gb, r_gw, r_gb;
    if (gw) {
      f_gw = Tensor(w.shape());
      r_gw = Tensor(w.shape());
    }
    if (gb) {
      f_gb = Tensor({d.cout});
      r_gb = Tensor({d.cout});
    }
    FusedOps().ccba_bwd(d, parts, w, y, gout, f_gp, gw ? &f_gw : nullptr,
                        gb ? &f_gb : nullptr);
    DecomposedCcbaBwd(Backend::kReference, d, parts, w, y, gout, r_gp,
                      gw ? &r_gw : nullptr, gb ? &r_gb : nullptr);
    const int64_t kvol = FusedKernelVolume(d);
    const int64_t pvol = FusedSpatialVolume(d);
    for (size_t i = 0; i < parts.size(); ++i) {
      if (gparts[i] == nullptr) continue;
      CompareOrDie("concat_conv_bias_act_bwd", r_gp_store[i], f_gp_store[i],
                   d.cout * kvol);
      for (int64_t j = 0; j < gparts[i]->size(); ++j) {
        (*gparts[i])[j] += f_gp_store[i][j];
      }
    }
    if (gw) {
      CompareOrDie("concat_conv_bias_act_bwd", r_gw, f_gw, d.batch * pvol);
      for (int64_t i = 0; i < gw->size(); ++i) (*gw)[i] += f_gw[i];
    }
    if (gb) {
      CompareOrDie("concat_conv_bias_act_bwd", r_gb, f_gb, d.batch * pvol);
      for (int64_t i = 0; i < gb->size(); ++i) (*gb)[i] += f_gb[i];
    }
    return;
  }
  DecomposedCcbaBwd(b, d, parts, w, y, gout, gparts, gw, gb);
}

}  // namespace backend
}  // namespace equitensor
