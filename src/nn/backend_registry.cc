#include "nn/backend_registry.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <map>
#include <mutex>

#include "nn/kernels_naive.h"
#include "nn/kernels_simd.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace equitensor {
namespace backend {
namespace {

// (op key -> backend name -> implementation). Guarded by a mutex; hot
// dispatch never touches the map — it goes through the cached tables
// below, rebuilt only when a registration bumps the version.
struct Registry {
  std::mutex mu;
  std::map<std::string, std::map<std::string, void (*)()>> ops;
  std::atomic<uint64_t> version{0};
};

Registry& GetRegistry() {
  static Registry* r = new Registry();  // never destroyed
  return *r;
}

// Built-in kernel sets register on first use: a static archive drops
// TUs nothing references, so self-registering global constructors
// would silently vanish — registration is an explicit, idempotent call.
void EnsureBuiltinsRegistered() {
  RegisterNaiveKernels();
  RegisterSimdKernels();
}

std::atomic<int> g_backend{-1};  // -1 = unset, else static_cast<Backend>

Backend BackendFromEnv() {
  const char* env = std::getenv("ET_BACKEND");
  if (env == nullptr || env[0] == '\0') return Backend::kParallel;
  Backend b;
  ET_CHECK(ParseBackend(env, &b))
      << "ET_BACKEND=" << env
      << " is not a backend (reference | parallel | simd | check)";
  return b;
}

Backend ActiveBackend() {
  int b = g_backend.load(std::memory_order_relaxed);
  if (b < 0) {
    b = static_cast<int>(BackendFromEnv());
    // First resolution wins; concurrent first calls agree because the
    // env var is stable.
    g_backend.store(b, std::memory_order_relaxed);
  }
  return static_cast<Backend>(b);
}

/// Fully-resolved kernel set for one executable backend. Check mode
/// resolves the reference and simd tables and compares.
struct KernelTable {
  Conv1dFwdFn conv1d_fwd;
  Conv1dBwdFn conv1d_bwd;
  Conv2dFwdFn conv2d_fwd;
  Conv2dBwdFn conv2d_bwd;
  Conv3dFwdFn conv3d_fwd;
  Conv3dBwdFn conv3d_bwd;
  MatMulFn matmul;
};

KernelTable BuildTable(const char* name) {
  KernelTable t;
  t.conv1d_fwd = ResolveKernelFn<Conv1dFwdFn>("conv1d_fwd", name);
  t.conv1d_bwd = ResolveKernelFn<Conv1dBwdFn>("conv1d_bwd", name);
  t.conv2d_fwd = ResolveKernelFn<Conv2dFwdFn>("conv2d_fwd", name);
  t.conv2d_bwd = ResolveKernelFn<Conv2dBwdFn>("conv2d_bwd", name);
  t.conv3d_fwd = ResolveKernelFn<Conv3dFwdFn>("conv3d_fwd", name);
  t.conv3d_bwd = ResolveKernelFn<Conv3dBwdFn>("conv3d_bwd", name);
  t.matmul = ResolveKernelFn<MatMulFn>("matmul", name);
  return t;
}

// Table cache: rebuilt when the registry version moves (tests shimming
// kernels via re-registration take effect on their next dispatch).
const KernelTable& TableFor(Backend b) {
  ET_CHECK(b != Backend::kCheck) << "check mode has no single table";
  static std::mutex mu;
  static uint64_t cached_version = ~uint64_t{0};
  static KernelTable tables[3];
  EnsureBuiltinsRegistered();
  std::lock_guard<std::mutex> lock(mu);
  const uint64_t v = GetRegistry().version.load(std::memory_order_acquire);
  if (v != cached_version) {
    tables[0] = BuildTable("reference");
    tables[1] = BuildTable("parallel");
    tables[2] = BuildTable("simd");
    cached_version = v;
  }
  return tables[static_cast<int>(b)];
}

void CompareOrDie(const char* op, const Tensor& ref, const Tensor& got,
                  int64_t reduction_length) {
  ET_CHECK(ref.SameShape(got));
  const float tol = CheckTolerance(reduction_length, ref.AbsMax());
  float max_diff = 0.0f;
  int64_t where = -1;
  for (int64_t i = 0; i < ref.size(); ++i) {
    const float diff = std::fabs(ref[i] - got[i]);
    if (diff > max_diff) {
      max_diff = diff;
      where = i;
    }
  }
  ET_CHECK(max_diff <= tol)
      << "backend check failed for " << op << ": simd diverges from "
      << "reference by " << max_diff << " (tolerance " << tol
      << ") at linear index " << where << ", shape " << ref.ShapeString();
  ET_METRIC_COUNTER_ADD("backend.check.passes", 1);
}

// Check-mode conv dispatch: run reference and simd into separate
// buffers, compare within the documented bound, keep the simd result.
// Backward kernels accumulate, so the comparison runs on zeroed temps
// which are then added into the caller's gradients. Check mode is a
// verification mode — its extra buffers are ordinary allocations, not
// arena leases, and its cost is ~2x plus a compare.
template <typename Dims, typename FwdFn>
void CheckedConvFwd(const char* op, FwdFn ref_fn, FwdFn simd_fn,
                    const Dims& d, const Tensor& x, const Tensor& w,
                    Tensor* out, int64_t reduction) {
  Tensor ref(out->shape());
  ref_fn(d, x, w, &ref);
  simd_fn(d, x, w, out);
  CompareOrDie(op, ref, *out, reduction);
}

template <typename Dims, typename BwdFn>
void CheckedConvBwd(const char* op, BwdFn ref_fn, BwdFn simd_fn,
                    const Dims& d, const Tensor& x, const Tensor& w,
                    const Tensor& gout, Tensor* gx, Tensor* gw,
                    int64_t gx_reduction, int64_t gw_reduction) {
  Tensor ref_gx, ref_gw, simd_gx, simd_gw;
  if (gx) {
    ref_gx = Tensor(x.shape());
    simd_gx = Tensor(x.shape());
  }
  if (gw) {
    ref_gw = Tensor(w.shape());
    simd_gw = Tensor(w.shape());
  }
  ref_fn(d, x, w, gout, gx ? &ref_gx : nullptr, gw ? &ref_gw : nullptr);
  simd_fn(d, x, w, gout, gx ? &simd_gx : nullptr, gw ? &simd_gw : nullptr);
  if (gx) {
    CompareOrDie(op, ref_gx, simd_gx, gx_reduction);
    for (int64_t i = 0; i < gx->size(); ++i) (*gx)[i] += simd_gx[i];
  }
  if (gw) {
    CompareOrDie(op, ref_gw, simd_gw, gw_reduction);
    for (int64_t i = 0; i < gw->size(); ++i) (*gw)[i] += simd_gw[i];
  }
}

}  // namespace

void RegisterKernel(const std::string& op_key, const std::string& backend,
                    void (*fn)()) {
  ET_CHECK(fn != nullptr) << "null kernel for " << op_key << "/" << backend;
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.ops[op_key][backend] = fn;
  r.version.fetch_add(1, std::memory_order_release);
}

void* ResolveKernel(const std::string& op_key, const std::string& backend) {
  EnsureBuiltinsRegistered();
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto op_it = r.ops.find(op_key);
  ET_CHECK(op_it != r.ops.end()) << "unknown op key " << op_key;
  auto be_it = op_it->second.find(backend);
  ET_CHECK(be_it != op_it->second.end())
      << "op " << op_key << " has no '" << backend << "' implementation";
  return reinterpret_cast<void*>(be_it->second);
}

std::vector<std::pair<std::string, std::string>> ListKernels() {
  EnsureBuiltinsRegistered();
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& [op, impls] : r.ops) {
    for (const auto& [name, fn] : impls) {
      (void)fn;
      out.emplace_back(op, name);
    }
  }
  return out;
}

bool ParseBackend(const std::string& name, Backend* out) {
  if (name == "reference") {
    *out = Backend::kReference;
  } else if (name == "parallel") {
    *out = Backend::kParallel;
  } else if (name == "simd") {
    *out = Backend::kSimd;
  } else if (name == "check") {
    *out = Backend::kCheck;
  } else {
    return false;
  }
  return true;
}

const char* BackendName(Backend b) {
  switch (b) {
    case Backend::kReference:
      return "reference";
    case Backend::kParallel:
      return "parallel";
    case Backend::kSimd:
      return "simd";
    case Backend::kCheck:
      return "check";
  }
  return "unknown";
}

void SetBackend(Backend b) {
  g_backend.store(static_cast<int>(b), std::memory_order_relaxed);
}

Backend CurrentBackend() { return ActiveBackend(); }

bool SimdAcceleratorActive() {
  EnsureBuiltinsRegistered();
  return SimdKernelsUseAvx2();
}

float CheckTolerance(int64_t reduction_length, float ref_absmax) {
  constexpr float kCheckRelTol = 1e-5f;
  const float len = static_cast<float>(reduction_length < 1 ? 1
                                                            : reduction_length);
  const float scale = ref_absmax > 1.0f ? ref_absmax : 1.0f;
  return kCheckRelTol * std::sqrt(len) * scale;
}

void Conv1dForward(const Conv1dDims& d, const Tensor& x, const Tensor& w,
                   Tensor* out) {
  const Backend b = ActiveBackend();
  if (b == Backend::kCheck) {
    CheckedConvFwd("conv1d_fwd", TableFor(Backend::kReference).conv1d_fwd,
                   TableFor(Backend::kSimd).conv1d_fwd, d, x, w, out,
                   d.cin * d.k);
    return;
  }
  TableFor(b).conv1d_fwd(d, x, w, out);
}

void Conv1dBackward(const Conv1dDims& d, const Tensor& x, const Tensor& w,
                    const Tensor& gout, Tensor* gx, Tensor* gw) {
  const Backend b = ActiveBackend();
  if (b == Backend::kCheck) {
    CheckedConvBwd("conv1d_bwd", TableFor(Backend::kReference).conv1d_bwd,
                   TableFor(Backend::kSimd).conv1d_bwd, d, x, w, gout, gx, gw,
                   d.cout * d.k, d.batch * d.t);
    return;
  }
  TableFor(b).conv1d_bwd(d, x, w, gout, gx, gw);
}

void Conv2dForward(const Conv2dDims& d, const Tensor& x, const Tensor& w,
                   Tensor* out) {
  const Backend b = ActiveBackend();
  if (b == Backend::kCheck) {
    CheckedConvFwd("conv2d_fwd", TableFor(Backend::kReference).conv2d_fwd,
                   TableFor(Backend::kSimd).conv2d_fwd, d, x, w, out,
                   d.cin * d.k * d.k);
    return;
  }
  TableFor(b).conv2d_fwd(d, x, w, out);
}

void Conv2dBackward(const Conv2dDims& d, const Tensor& x, const Tensor& w,
                    const Tensor& gout, Tensor* gx, Tensor* gw) {
  const Backend b = ActiveBackend();
  if (b == Backend::kCheck) {
    CheckedConvBwd("conv2d_bwd", TableFor(Backend::kReference).conv2d_bwd,
                   TableFor(Backend::kSimd).conv2d_bwd, d, x, w, gout, gx, gw,
                   d.cout * d.k * d.k, d.batch * d.w * d.h);
    return;
  }
  TableFor(b).conv2d_bwd(d, x, w, gout, gx, gw);
}

void Conv3dForward(const Conv3dDims& d, const Tensor& x, const Tensor& w,
                   Tensor* out) {
  const Backend b = ActiveBackend();
  if (b == Backend::kCheck) {
    CheckedConvFwd("conv3d_fwd", TableFor(Backend::kReference).conv3d_fwd,
                   TableFor(Backend::kSimd).conv3d_fwd, d, x, w, out,
                   d.cin * d.k * d.k * d.k);
    return;
  }
  TableFor(b).conv3d_fwd(d, x, w, out);
}

void Conv3dBackward(const Conv3dDims& d, const Tensor& x, const Tensor& w,
                    const Tensor& gout, Tensor* gx, Tensor* gw) {
  const Backend b = ActiveBackend();
  if (b == Backend::kCheck) {
    CheckedConvBwd("conv3d_bwd", TableFor(Backend::kReference).conv3d_bwd,
                   TableFor(Backend::kSimd).conv3d_bwd, d, x, w, gout, gx, gw,
                   d.cout * d.k * d.k * d.k, d.batch * d.w * d.h * d.t);
    return;
  }
  TableFor(b).conv3d_bwd(d, x, w, gout, gx, gw);
}

void MatMul(const MatMulSpec& spec, const float* a, const float* b, float* c) {
  const Backend be = ActiveBackend();
  if (be == Backend::kCheck) {
    MatMulSpec fresh = spec;
    fresh.accumulate = false;
    Tensor ref({spec.m, spec.n});
    Tensor simd({spec.m, spec.n});
    TableFor(Backend::kReference).matmul(fresh, a, b, ref.data());
    TableFor(Backend::kSimd).matmul(fresh, a, b, simd.data());
    CompareOrDie("matmul", ref, simd, spec.k);
    if (spec.accumulate) {
      for (int64_t i = 0; i < simd.size(); ++i) c[i] += simd[i];
    } else {
      for (int64_t i = 0; i < simd.size(); ++i) c[i] = simd[i];
    }
    return;
  }
  TableFor(be).matmul(spec, a, b, c);
}

}  // namespace backend
}  // namespace equitensor
