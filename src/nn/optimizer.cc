#include "nn/optimizer.h"

#include <cmath>

#include "nn/serialize.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/trace.h"

namespace equitensor {
namespace nn {

Adam::Adam(std::vector<Variable> params, AdamOptions options)
    : params_(std::move(params)), options_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Variable& p : params_) {
    ET_CHECK(p.defined() && p.requires_grad())
        << "Adam requires trainable parameters";
    m_.emplace_back(p.value().shape());
    v_.emplace_back(p.value().shape());
  }
}

double Adam::CurrentLearningRate() const {
  return options_.learning_rate *
         std::pow(options_.decay_rate,
                  static_cast<double>(step_) /
                      static_cast<double>(options_.decay_steps));
}

void Adam::Step() {
  ET_TRACE_SPAN("adam.step");
  const double lr = CurrentLearningRate();
  ++step_;
  const double bias1 = 1.0 - std::pow(options_.beta1, static_cast<double>(step_));
  const double bias2 = 1.0 - std::pow(options_.beta2, static_cast<double>(step_));

  // Optional global-norm clipping across all ready gradients.
  double scale = 1.0;
  if (options_.clip_norm > 0.0) {
    double sq = 0.0;
    for (Variable& p : params_) {
      if (!p.grad_ready()) continue;
      const Tensor& g = p.grad();
      for (int64_t i = 0; i < g.size(); ++i) {
        sq += static_cast<double>(g[i]) * g[i];
      }
    }
    const double norm = std::sqrt(sq);
    if (norm > options_.clip_norm) scale = options_.clip_norm / norm;
  }

  if (track_update_norms_) {
    last_update_norms_.assign(params_.size(), 0.0);
  }
  for (size_t k = 0; k < params_.size(); ++k) {
    Variable& p = params_[k];
    if (!p.grad_ready()) continue;
    const Tensor& g = p.grad();
    Tensor& value = p.mutable_value();
    Tensor& m = m_[k];
    Tensor& v = v_[k];
    double update_sq = 0.0;
    for (int64_t i = 0; i < value.size(); ++i) {
      const double gi = static_cast<double>(g[i]) * scale;
      m[i] = static_cast<float>(options_.beta1 * m[i] + (1.0 - options_.beta1) * gi);
      v[i] = static_cast<float>(options_.beta2 * v[i] +
                                (1.0 - options_.beta2) * gi * gi);
      const double m_hat = m[i] / bias1;
      const double v_hat = v[i] / bias2;
      const float delta = static_cast<float>(
          lr * m_hat / (std::sqrt(v_hat) + options_.epsilon));
      value[i] -= delta;
      if (track_update_norms_) {
        update_sq += static_cast<double>(delta) * delta;
      }
    }
    if (track_update_norms_) last_update_norms_[k] = std::sqrt(update_sq);
    p.ZeroGrad();
  }
}

void Adam::EnableUpdateNormTracking(bool enabled) {
  track_update_norms_ = enabled;
  if (!enabled) last_update_norms_.clear();
}

void Adam::ZeroGrad() {
  for (Variable& p : params_) p.ZeroGrad();
}

void Adam::AppendState(const std::string& prefix, Checkpoint* checkpoint) const {
  for (size_t k = 0; k < params_.size(); ++k) {
    checkpoint->tensors.emplace_back(prefix + ".m" + std::to_string(k), m_[k]);
    checkpoint->tensors.emplace_back(prefix + ".v" + std::to_string(k), v_[k]);
  }
  checkpoint->metadata.emplace_back(prefix + ".step", EncodeI64(step_));
}

bool Adam::RestoreState(const std::string& prefix,
                        const Checkpoint& checkpoint) {
  const std::string* step_bytes = checkpoint.FindMetadata(prefix + ".step");
  int64_t step = 0;
  if (step_bytes == nullptr || !DecodeI64(*step_bytes, &step) || step < 0) {
    ET_LOG(Warning) << "optimizer state '" << prefix
                    << "': missing or invalid step count";
    return false;
  }
  std::vector<const Tensor*> m(params_.size());
  std::vector<const Tensor*> v(params_.size());
  for (size_t k = 0; k < params_.size(); ++k) {
    m[k] = checkpoint.FindTensor(prefix + ".m" + std::to_string(k));
    v[k] = checkpoint.FindTensor(prefix + ".v" + std::to_string(k));
    if (m[k] == nullptr || v[k] == nullptr) {
      ET_LOG(Warning) << "optimizer state '" << prefix << "': missing moments "
                      << "for parameter " << k << " of " << params_.size();
      return false;
    }
    if (!m[k]->SameShape(params_[k].value()) ||
        !v[k]->SameShape(params_[k].value())) {
      ET_LOG(Warning) << "optimizer state '" << prefix << "': moment shape "
                      << m[k]->ShapeString() << " mismatches parameter " << k
                      << " " << params_[k].value().ShapeString();
      return false;
    }
  }
  for (size_t k = 0; k < params_.size(); ++k) {
    m_[k] = *m[k];
    v_[k] = *v[k];
  }
  step_ = step;
  return true;
}

Sgd::Sgd(std::vector<Variable> params, double learning_rate)
    : params_(std::move(params)), learning_rate_(learning_rate) {}

void Sgd::Step() {
  for (Variable& p : params_) {
    if (!p.grad_ready()) continue;
    const Tensor& g = p.grad();
    Tensor& value = p.mutable_value();
    for (int64_t i = 0; i < value.size(); ++i) {
      value[i] -= static_cast<float>(learning_rate_) * g[i];
    }
    p.ZeroGrad();
  }
}

void Sgd::ZeroGrad() {
  for (Variable& p : params_) p.ZeroGrad();
}

}  // namespace nn
}  // namespace equitensor
