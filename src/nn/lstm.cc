#include "nn/lstm.h"

#include "autograd/hooks.h"
#include "autograd/ops.h"
#include "nn/init.h"
#include "util/check.h"
#include "util/trace.h"

namespace equitensor {
namespace nn {

LstmCell::LstmCell(int64_t input_size, int64_t hidden_size, Rng& rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  const int64_t rows = input_size + hidden_size;
  const int64_t cols = 4 * hidden_size;
  weight_ = Variable(GlorotUniform({rows, cols}, rows, cols, rng),
                     /*requires_grad=*/true);
  Tensor bias({cols});
  // Forget-gate bias = 1 stabilizes early training.
  for (int64_t i = hidden_size; i < 2 * hidden_size; ++i) bias[i] = 1.0f;
  bias_ = Variable(std::move(bias), /*requires_grad=*/true);
}

LstmState LstmCell::InitialState(int64_t n) const {
  return {Variable(Tensor({n, hidden_size_})),
          Variable(Tensor({n, hidden_size_}))};
}

LstmState LstmCell::Step(const Variable& x, const LstmState& state) const {
  ET_TRACE_SPAN("lstm.step");
  ET_CHECK_EQ(x.rank(), 2);
  ET_CHECK_EQ(x.value().dim(1), input_size_);
  const int64_t n = x.value().dim(0);

  Variable xh = ag::Concat({x, state.h}, /*axis=*/1);
  Variable gates = ag::AddBias(ag::MatMul(xh, weight_), bias_, 1);
  const bool observing = !observe_name_.empty() && ag::HooksActive();
  if (observing) gates = ag::Observe(observe_name_ + ".gates", gates);

  const int64_t hs = hidden_size_;
  Variable i = ag::Sigmoid(ag::Slice(gates, {0, 0 * hs}, {n, hs}));
  Variable f = ag::Sigmoid(ag::Slice(gates, {0, 1 * hs}, {n, hs}));
  Variable g = ag::Tanh(ag::Slice(gates, {0, 2 * hs}, {n, hs}));
  Variable o = ag::Sigmoid(ag::Slice(gates, {0, 3 * hs}, {n, hs}));

  Variable c_next = ag::Add(ag::Mul(f, state.c), ag::Mul(i, g));
  Variable h_next = ag::Mul(o, ag::Tanh(c_next));
  if (observing) {
    c_next = ag::Observe(observe_name_ + ".c", c_next);
    h_next = ag::Observe(observe_name_ + ".h", h_next);
  }
  return {h_next, c_next};
}

}  // namespace nn
}  // namespace equitensor
