#ifndef EQUITENSOR_NN_KERNELS_SIMD_H_
#define EQUITENSOR_NN_KERNELS_SIMD_H_

#include <cstdint>

namespace equitensor {
namespace backend {

/// Registers the `simd` kernel set: conv1d/2d/3d forward and backward
/// lowered to im2col + blocked GEMM, and the GEMM itself with an
/// AVX2/FMA 6x16 micro-kernel (runtime cpu dispatch; portable blocked
/// fallback elsewhere). All scratch — im2col matrices, transpose
/// packs — is leased from util/arena, so steady-state execution does
/// no heap allocation. Idempotent; called by the registry on first
/// use.
void RegisterSimdKernels();

/// True when the AVX2/FMA micro-kernel was selected at startup; false
/// means the portable blocked fallback is in use.
bool SimdKernelsUseAvx2();

/// Blocked row-major single-precision GEMM, exposed for tests and
/// benches: C[m, n] = A[m, k] · B[k, n] (+= when `accumulate`).
/// Deterministic for any thread count: the block grid is a pure
/// function of (m, n, k) and every C element accumulates in a fixed
/// serial k order.
void GemmRowMajor(int64_t m, int64_t n, int64_t k, const float* a,
                  int64_t lda, const float* b, int64_t ldb, float* c,
                  int64_t ldc, bool accumulate);

}  // namespace backend
}  // namespace equitensor

#endif  // EQUITENSOR_NN_KERNELS_SIMD_H_
