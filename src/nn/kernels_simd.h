#ifndef EQUITENSOR_NN_KERNELS_SIMD_H_
#define EQUITENSOR_NN_KERNELS_SIMD_H_

#include <cstdint>

namespace equitensor {
namespace backend {

/// Registers the `simd` kernel set: conv1d/2d/3d forward and backward
/// lowered to im2col + blocked GEMM, and the GEMM itself with an
/// AVX2/FMA 6x16 micro-kernel (runtime cpu dispatch; portable blocked
/// fallback elsewhere). All scratch — im2col matrices, transpose
/// packs — is leased from util/arena, so steady-state execution does
/// no heap allocation. Idempotent; called by the registry on first
/// use.
void RegisterSimdKernels();

/// True when the AVX2/FMA micro-kernel was selected at startup; false
/// means the portable blocked fallback is in use.
bool SimdKernelsUseAvx2();

/// Blocked row-major single-precision GEMM, exposed for tests and
/// benches: C[m, n] = A[m, k] · B[k, n] (+= when `accumulate`).
/// Deterministic for any thread count: the block grid is a pure
/// function of (m, n, k) and every C element accumulates in a fixed
/// serial k order.
void GemmRowMajor(int64_t m, int64_t n, int64_t k, const float* a,
                  int64_t lda, const float* b, int64_t ldb, float* c,
                  int64_t ldc, bool accumulate);

/// Unified conv geometry shared by the simd lowering and the fused
/// executor: a 1d conv is a 3d conv with w = h = 1 and a temporal-only
/// kernel, a 2d conv one with t = 1.
struct SimdConvGeom {
  int64_t batch, cin, cout;
  int64_t w, h, t;     // spatial extents (1 where the rank lacks them)
  int64_t kw, kh, kt;  // kernel extents
  int64_t pw, ph, pt;  // "same" pads per axis
};

/// Gather-source conv forward: input channel ci of sample n reads the
/// plane at chan_base[ci] + n * chan_stride[ci] (spatial volume
/// w*h*t floats, dense). A single dense tensor is the special case
/// chan_base[ci] = x + ci*p, chan_stride[ci] = cin*p; a channel
/// concat folds in by pointing channels at the source parts instead —
/// the im2col matrix it produces is IDENTICAL either way, so the
/// folded conv is bitwise equal to conv-after-materialized-concat on
/// this backend. `out` ([batch, cout, p]) is overwritten.
void SimdConvForwardGather(const SimdConvGeom& g, const float* const* chan_base,
                           const int64_t* chan_stride, const float* w,
                           float* out);

/// Gather/scatter conv backward. gx scatters per input channel through
/// gx_base[ci] + n * gx_stride[ci], ACCUMULATING (pass gx_base ==
/// nullptr to skip gx entirely; individual null entries skip that
/// channel). gw ([cout, ck]) accumulates as well (nullptr skips).
/// `gout` is dense [batch, cout, p].
void SimdConvBackwardGather(const SimdConvGeom& g,
                            const float* const* chan_base,
                            const int64_t* chan_stride, const float* w,
                            const float* gout, float* const* gx_base,
                            const int64_t* gx_stride, float* gw);

}  // namespace backend
}  // namespace equitensor

#endif  // EQUITENSOR_NN_KERNELS_SIMD_H_
