#include "nn/init.h"

#include <cmath>

#include "util/check.h"

namespace equitensor {
namespace nn {

Tensor GlorotUniform(std::vector<int64_t> shape, int64_t fan_in,
                     int64_t fan_out, Rng& rng) {
  ET_CHECK_GT(fan_in + fan_out, 0);
  const float limit =
      static_cast<float>(std::sqrt(6.0 / static_cast<double>(fan_in + fan_out)));
  return Tensor::RandomUniform(std::move(shape), rng, -limit, limit);
}

Tensor ScaledNormal(std::vector<int64_t> shape, double stddev, Rng& rng) {
  return Tensor::RandomNormal(std::move(shape), rng, 0.0f,
                              static_cast<float>(stddev));
}

}  // namespace nn
}  // namespace equitensor
