#include "nn/module.h"

namespace equitensor {
namespace nn {

std::vector<Variable> JoinParameters(
    std::initializer_list<const Module*> modules) {
  std::vector<Variable> all;
  for (const Module* m : modules) {
    for (const Variable& p : m->Parameters()) all.push_back(p);
  }
  return all;
}

}  // namespace nn
}  // namespace equitensor
