#include "nn/module.h"

namespace equitensor {
namespace nn {

std::vector<NamedParameter> Module::NamedParameters() const {
  std::vector<NamedParameter> named;
  const auto params = Parameters();
  named.reserve(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    named.push_back({"param_" + std::to_string(i), params[i]});
  }
  return named;
}

std::vector<Variable> JoinParameters(
    std::initializer_list<const Module*> modules) {
  std::vector<Variable> all;
  for (const Module* m : modules) {
    for (const Variable& p : m->Parameters()) all.push_back(p);
  }
  return all;
}

void AppendNamedParameters(const std::string& prefix, const Module& module,
                           std::vector<NamedParameter>* out) {
  for (auto& [name, param] : module.NamedParameters()) {
    out->push_back({prefix + name, param});
  }
}

}  // namespace nn
}  // namespace equitensor
