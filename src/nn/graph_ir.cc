#include "nn/graph_ir.h"

#include <utility>

#include "autograd/conv_ops.h"
#include "autograd/ops.h"
#include "nn/backend_registry.h"
#include "nn/graph_fuser.h"
#include "util/check.h"

namespace equitensor {
namespace nn {
namespace {

// nn::Activation and backend::Act share values by design
// (backend_registry.h documents the mirror).
backend::Act ToBackendAct(Activation act) {
  return static_cast<backend::Act>(static_cast<int32_t>(act));
}

}  // namespace

int GraphIr::AddInput(int64_t channels) {
  ET_CHECK(!sealed_);
  IrNode n;
  n.op = IrOp::kInput;
  n.channels = channels;
  nodes_.push_back(std::move(n));
  const int id = static_cast<int>(nodes_.size()) - 1;
  input_ids_.push_back(id);
  return id;
}

int GraphIr::AddConv(int input, int spatial_rank, Variable weight) {
  ET_CHECK(!sealed_);
  ET_CHECK(input >= 0 && input < static_cast<int>(nodes_.size()));
  ET_CHECK(spatial_rank >= 1 && spatial_rank <= 3);
  IrNode n;
  n.op = IrOp::kConv;
  n.inputs = {input};
  n.spatial_rank = spatial_rank;
  n.weight = std::move(weight);
  nodes_.push_back(std::move(n));
  return static_cast<int>(nodes_.size()) - 1;
}

int GraphIr::AddBias(int input, Variable bias) {
  ET_CHECK(!sealed_);
  ET_CHECK(input >= 0 && input < static_cast<int>(nodes_.size()));
  IrNode n;
  n.op = IrOp::kBias;
  n.inputs = {input};
  n.bias = std::move(bias);
  nodes_.push_back(std::move(n));
  return static_cast<int>(nodes_.size()) - 1;
}

int GraphIr::AddAct(int input, Activation act) {
  ET_CHECK(!sealed_);
  ET_CHECK(input >= 0 && input < static_cast<int>(nodes_.size()));
  if (act == Activation::kLinear) return input;  // identity: no node
  IrNode n;
  n.op = IrOp::kAct;
  n.inputs = {input};
  n.act = act;
  nodes_.push_back(std::move(n));
  return static_cast<int>(nodes_.size()) - 1;
}

int GraphIr::AddTile(int input, int axis, int64_t repeat) {
  ET_CHECK(!sealed_);
  ET_CHECK(input >= 0 && input < static_cast<int>(nodes_.size()));
  IrNode n;
  n.op = IrOp::kTile;
  n.inputs = {input};
  n.tile_axis = axis;
  n.tile_count = repeat;
  nodes_.push_back(std::move(n));
  return static_cast<int>(nodes_.size()) - 1;
}

int GraphIr::AddConcat(std::vector<int> inputs) {
  ET_CHECK(!sealed_);
  ET_CHECK(!inputs.empty());
  for (int in : inputs) {
    ET_CHECK(in >= 0 && in < static_cast<int>(nodes_.size()));
  }
  IrNode n;
  n.op = IrOp::kConcat;
  n.inputs = std::move(inputs);
  nodes_.push_back(std::move(n));
  return static_cast<int>(nodes_.size()) - 1;
}

void GraphIr::MarkOutput(int id) {
  ET_CHECK(!sealed_);
  ET_CHECK(id >= 0 && id < static_cast<int>(nodes_.size()));
  outputs_.push_back(id);
}

void GraphIr::Seal() {
  ET_CHECK(!sealed_) << "GraphIr sealed twice";
  ET_CHECK(!outputs_.empty()) << "GraphIr has no outputs";
  stats_ = FuseGraph(&nodes_, outputs_);

  // Liveness: only nodes reachable from the outputs execute. Builders
  // append in topological order and the fuser only rewires to older
  // ids, so ascending id order IS a valid schedule of the live set.
  std::vector<bool> live(nodes_.size(), false);
  std::vector<int> stack(outputs_.begin(), outputs_.end());
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    if (live[id]) continue;
    live[id] = true;
    for (int in : nodes_[id].inputs) stack.push_back(in);
  }
  schedule_.clear();
  int live_count = 0;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (!live[i]) continue;
    ++live_count;
    if (nodes_[i].op != IrOp::kInput) schedule_.push_back(static_cast<int>(i));
  }
  for (int in : input_ids_) {
    ET_CHECK(live[in]) << "GraphIr input " << in << " is dead";
  }
  stats_.nodes_after = live_count;
  sealed_ = true;
}

int GraphIr::materialized_intermediates() const {
  ET_CHECK(sealed_);
  int n = static_cast<int>(schedule_.size());
  for (int out : outputs_) {
    if (nodes_[out].op != IrOp::kInput) --n;
  }
  return n;
}

std::vector<Variable> GraphIr::Run(const std::vector<Variable>& inputs) const {
  ET_CHECK(sealed_) << "GraphIr::Run before Seal";
  ET_CHECK_EQ(inputs.size(), input_ids_.size());
  std::vector<Variable> values(nodes_.size());
  for (size_t i = 0; i < input_ids_.size(); ++i) {
    ET_CHECK_EQ(inputs[i].value().dim(1), nodes_[input_ids_[i]].channels)
        << "input " << i << " channel mismatch";
    values[input_ids_[i]] = inputs[i];
  }
  for (const int id : schedule_) {
    const IrNode& n = nodes_[id];
    switch (n.op) {
      case IrOp::kInput:
        ET_CHECK(false);
        break;
      case IrOp::kConv: {
        const Variable& x = values[n.inputs[0]];
        switch (n.spatial_rank) {
          case 1:
            values[id] = ag::Conv1d(x, n.weight);
            break;
          case 2:
            values[id] = ag::Conv2d(x, n.weight);
            break;
          default:
            values[id] = ag::Conv3d(x, n.weight);
            break;
        }
        break;
      }
      case IrOp::kBias:
        values[id] = ag::AddBias(values[n.inputs[0]], n.bias,
                                 /*channel_axis=*/1);
        break;
      case IrOp::kAct:
        values[id] = Activate(values[n.inputs[0]], n.act);
        break;
      case IrOp::kTile:
        values[id] = ag::TileAt(values[n.inputs[0]], n.tile_axis,
                                n.tile_count);
        break;
      case IrOp::kConcat: {
        std::vector<Variable> parts;
        parts.reserve(n.inputs.size());
        for (int in : n.inputs) parts.push_back(values[in]);
        values[id] = ag::Concat(parts, /*axis=*/1);
        break;
      }
      case IrOp::kFusedConvBiasAct:
        values[id] = ag::ConvBiasAct(values[n.inputs[0]], n.weight, n.bias,
                                     ToBackendAct(n.act));
        break;
      case IrOp::kFusedConcatConvBiasAct: {
        std::vector<Variable> parts;
        parts.reserve(n.inputs.size());
        for (int in : n.inputs) parts.push_back(values[in]);
        values[id] = ag::ConcatConvBiasAct(parts, n.weight, n.bias,
                                           ToBackendAct(n.act));
        break;
      }
    }
  }
  std::vector<Variable> out;
  out.reserve(outputs_.size());
  for (int id : outputs_) out.push_back(values[id]);
  return out;
}

Variable GraphIr::Run1(const Variable& input) const {
  ET_CHECK_EQ(outputs_.size(), 1u);
  return Run({input})[0];
}

}  // namespace nn
}  // namespace equitensor
