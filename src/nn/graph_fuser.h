#ifndef EQUITENSOR_NN_GRAPH_FUSER_H_
#define EQUITENSOR_NN_GRAPH_FUSER_H_

#include <vector>

#include "nn/graph_ir.h"

namespace equitensor {
namespace nn {

/// Pattern-matching fuser over the static IR (DESIGN.md §15). Rewrites
/// `nodes` in place; orphaned producers become unreachable and are
/// dropped by GraphIr::Seal's liveness pass. Two rules, applied in
/// order:
///
///  1. conv → bias (→ act) chains where every interior edge is
///     single-use and no interior node is an output collapse into one
///     kFusedConvBiasAct (act = kLinear for a bias-terminated chain).
///  2. a kConcat whose only consumer is a rank-3 kFusedConvBiasAct (and
///     which is not an output) folds into kFusedConcatConvBiasAct: the
///     fused node adopts the concat's inputs and the concatenated
///     tensor is never built — the kernel gathers channels from the
///     parts directly.
///
/// Returns counts of what was rewritten (nodes_after is filled in by
/// Seal once liveness is known).
FusionStats FuseGraph(std::vector<IrNode>* nodes,
                      const std::vector<int>& outputs);

}  // namespace nn
}  // namespace equitensor

#endif  // EQUITENSOR_NN_GRAPH_FUSER_H_
