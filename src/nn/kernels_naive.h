#ifndef EQUITENSOR_NN_KERNELS_NAIVE_H_
#define EQUITENSOR_NN_KERNELS_NAIVE_H_

namespace equitensor {
namespace backend {

/// Registers the `reference` (serial scalar loops) and `parallel`
/// (ParallelFor owner-computes) kernel sets with the backend registry.
/// Called by the registry itself on first use — static archives drop
/// unreferenced self-registering TUs, so registration is an explicit
/// call instead of a global constructor. Idempotent.
void RegisterNaiveKernels();

}  // namespace backend
}  // namespace equitensor

#endif  // EQUITENSOR_NN_KERNELS_NAIVE_H_
