#ifndef EQUITENSOR_NN_GRAPH_IR_H_
#define EQUITENSOR_NN_GRAPH_IR_H_

#include <vector>

#include "autograd/variable.h"
#include "nn/layers.h"

namespace equitensor {
namespace nn {

/// Static graph IR for the CDAE forward (DESIGN.md §15). Models build
/// their op graph ONCE at construction over symbolic shapes — nodes
/// reference parameter Variables, never activations — then Seal() runs
/// the pattern-matching fuser (graph_fuser.h) and computes a topological
/// schedule. Per step, Run() executes that fixed schedule through the
/// autograd ops, so fused nodes become single ag::ConvBiasAct /
/// ag::ConcatConvBiasAct dispatches: the pre-activation tensors and the
/// encoder-concat intermediate (plus their gradients) are never
/// materialized. The eager Module::Forward path remains the fallback
/// whenever hooks need to observe intermediates.
enum class IrOp {
  kInput,                   // placeholder fed by Run()
  kConv,                    // ag::Conv{1,2,3}d(input, weight)
  kBias,                    // ag::AddBias(input, bias, axis 1)
  kAct,                     // nn::Activate(input, act)
  kTile,                    // ag::TileAt(input, axis, repeat)
  kConcat,                  // ag::Concat(inputs, axis 1)
  kFusedConvBiasAct,        // one dispatch: act(conv(input, w) + b)
  kFusedConcatConvBiasAct,  // same, input = virtual concat of `inputs`
};

/// One IR node. Which fields are meaningful depends on `op`; parameter
/// Variables are shared handles onto the owning layers' parameters, so
/// optimizer updates are visible to the schedule without rebuilding.
struct IrNode {
  IrOp op = IrOp::kInput;
  std::vector<int> inputs;  // producer node ids, in argument order
  int spatial_rank = 0;     // kConv and fused nodes
  Variable weight;          // kConv and fused nodes
  Variable bias;            // kBias and fused nodes
  Activation act = Activation::kLinear;  // kAct and fused nodes
  int tile_axis = 0;                     // kTile
  int64_t tile_count = 0;                // kTile
  int64_t channels = 0;                  // kInput: declared channel count
};

/// What the fuser did to a sealed graph.
struct FusionStats {
  int conv_bias_act = 0;  // conv→bias(→act) chains collapsed
  int concat_folds = 0;   // concats folded into a fused conv's gather
  int nodes_before = 0;
  int nodes_after = 0;  // live nodes in the final schedule
};

class GraphIr {
 public:
  /// Builders append nodes in construction order (which is already
  /// topological — an input id must exist before it is referenced) and
  /// return the new node's id.
  int AddInput(int64_t channels);
  int AddConv(int input, int spatial_rank, Variable weight);
  int AddBias(int input, Variable bias);
  int AddAct(int input, Activation act);
  int AddTile(int input, int axis, int64_t repeat);
  int AddConcat(std::vector<int> inputs);
  void MarkOutput(int id);

  /// Runs the fuser, drops dead nodes, and freezes the schedule. Must
  /// be called exactly once, after which the graph is immutable.
  void Seal();
  bool sealed() const { return sealed_; }

  const FusionStats& fusion_stats() const { return stats_; }
  const std::vector<IrNode>& nodes() const { return nodes_; }
  /// Live non-input node ids in execution order.
  const std::vector<int>& schedule() const { return schedule_; }
  const std::vector<int>& outputs() const { return outputs_; }
  /// Scheduled nodes minus outputs: tensors the schedule still
  /// materializes between ops (what fusion exists to minimize).
  int materialized_intermediates() const;

  /// Executes the sealed schedule. `inputs` bind to the kInput nodes in
  /// id order and must match their declared channel counts.
  std::vector<Variable> Run(const std::vector<Variable>& inputs) const;
  /// Single-input single-output convenience.
  Variable Run1(const Variable& input) const;

 private:
  std::vector<IrNode> nodes_;
  std::vector<int> input_ids_;
  std::vector<int> outputs_;
  std::vector<int> schedule_;
  FusionStats stats_;
  bool sealed_ = false;
};

}  // namespace nn
}  // namespace equitensor

#endif  // EQUITENSOR_NN_GRAPH_IR_H_
