#ifndef EQUITENSOR_NN_LAYERS_H_
#define EQUITENSOR_NN_LAYERS_H_

#include <memory>
#include <string>
#include <vector>

#include "autograd/conv_ops.h"
#include "autograd/hooks.h"
#include "autograd/ops.h"
#include "nn/module.h"
#include "util/rng.h"

namespace equitensor {
namespace nn {

class GraphIr;  // nn/graph_ir.h; layers only hold a pointer

/// Pointwise nonlinearity applied after a layer's affine transform.
enum class Activation { kLinear, kRelu, kSigmoid, kTanh };

/// Applies `act` to `x` (kLinear is the identity).
Variable Activate(const Variable& x, Activation act);

/// Fully connected layer: y = act(x W + b), x: [N, in], W: [in, out].
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng& rng,
         Activation act = Activation::kLinear);

  Variable Forward(const Variable& x) const;
  std::vector<Variable> Parameters() const override { return {weight_, bias_}; }
  std::vector<NamedParameter> NamedParameters() const override {
    return {{"weight", weight_}, {"bias", bias_}};
  }

  const Variable& weight() const { return weight_; }
  const Variable& bias() const { return bias_; }

  /// Names this layer's output as a hook observation point
  /// (autograd/hooks.h); empty (the default) disables observation.
  void SetObserveName(std::string name) { observe_name_ = std::move(name); }

 private:
  Variable weight_;
  Variable bias_;
  Activation act_;
  std::string observe_name_;
};

/// Convolutional layer with stride 1 and same padding; `spatial_rank`
/// selects Conv1d/2d/3d. Input layouts per autograd/conv_ops.h.
class Conv : public Module {
 public:
  Conv(int spatial_rank, int64_t in_channels, int64_t out_channels,
       int64_t kernel, Rng& rng, Activation act = Activation::kRelu);

  Variable Forward(const Variable& x) const;
  std::vector<Variable> Parameters() const override { return {weight_, bias_}; }
  std::vector<NamedParameter> NamedParameters() const override {
    return {{"weight", weight_}, {"bias", bias_}};
  }

  int spatial_rank() const { return spatial_rank_; }
  int64_t in_channels() const { return in_channels_; }
  int64_t out_channels() const { return out_channels_; }

  /// Parameter/config access for the static-graph builder
  /// (nn/graph_ir.h), which references the SAME Variables so optimizer
  /// steps are visible to a sealed schedule.
  const Variable& weight() const { return weight_; }
  const Variable& bias() const { return bias_; }
  Activation activation() const { return act_; }

 private:
  int spatial_rank_;
  int64_t in_channels_;
  int64_t out_channels_;
  Variable weight_;
  Variable bias_;
  Activation act_;
};

/// A stack of Conv layers with ReLU between and a configurable final
/// activation — the paper's ubiquitous "three convolutional layers with
/// 16, 32, 1 filters" building block (§3.2, §3.4).
class ConvStack : public Module {
 public:
  ConvStack(int spatial_rank, int64_t in_channels,
            std::vector<int64_t> filters, int64_t kernel, Rng& rng,
            Activation final_act = Activation::kLinear);
  ~ConvStack();  // out of line: GraphIr is incomplete here

  /// Runs the stack. Under a fused-graph backend (backend ::
  /// FusedGraphActive) and with no hooks observing, this executes the
  /// stack's sealed fused schedule instead of the eager layer loop —
  /// same values bitwise on a fixed backend, fewer intermediates.
  Variable Forward(const Variable& x) const;

  /// Appends this stack's layers to `ir` starting from node `input`;
  /// returns the stack's output node id. Used by models composing
  /// several stacks into one graph.
  int AppendToIr(GraphIr* ir, int input) const;
  std::vector<Variable> Parameters() const override;
  /// Names layers as "conv<i>.weight" / "conv<i>.bias".
  std::vector<NamedParameter> NamedParameters() const override;

  int64_t out_channels() const { return layers_.back()->out_channels(); }

  /// Names the stack's layers as hook observation points
  /// "<name>.conv<i>" (autograd/hooks.h); empty disables observation.
  void SetObserveName(std::string name) { observe_name_ = std::move(name); }
  const std::string& observe_name() const { return observe_name_; }

  /// The stack's own sealed single-input graph (what Forward runs on a
  /// fused backend); exposed for tests and diagnostics.
  const GraphIr& ir() const { return *ir_; }

 private:
  std::vector<std::unique_ptr<Conv>> layers_;
  std::unique_ptr<GraphIr> ir_;
  std::string observe_name_;
};

}  // namespace nn
}  // namespace equitensor

#endif  // EQUITENSOR_NN_LAYERS_H_
