#include "nn/graph.h"

#include <cmath>

#include "autograd/ops.h"
#include "nn/init.h"
#include "util/check.h"

namespace equitensor {
namespace nn {

Tensor NormalizeAdjacency(const Tensor& adjacency) {
  ET_CHECK_EQ(adjacency.rank(), 2);
  const int64_t n = adjacency.dim(0);
  ET_CHECK_EQ(adjacency.dim(1), n);
  // A + I, degree, then D^(-1/2) (A+I) D^(-1/2).
  Tensor with_loops = adjacency;
  for (int64_t i = 0; i < n; ++i) {
    ET_CHECK_GE(with_loops[i * n + i], 0.0f) << "adjacency must be >= 0";
    with_loops[i * n + i] += 1.0f;
  }
  std::vector<double> inv_sqrt_degree(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    double degree = 0.0;
    for (int64_t j = 0; j < n; ++j) {
      ET_CHECK_GE(with_loops[i * n + j], 0.0f);
      degree += with_loops[i * n + j];
    }
    inv_sqrt_degree[static_cast<size_t>(i)] = 1.0 / std::sqrt(degree);
  }
  Tensor normalized({n, n});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      normalized[i * n + j] = static_cast<float>(
          inv_sqrt_degree[static_cast<size_t>(i)] * with_loops[i * n + j] *
          inv_sqrt_degree[static_cast<size_t>(j)]);
    }
  }
  return normalized;
}

GraphConv::GraphConv(Tensor normalized_adjacency, int64_t in_features,
                     int64_t out_features, Rng& rng, Activation act)
    : adjacency_(std::move(normalized_adjacency)),
      weight_(GlorotUniform({in_features, out_features}, in_features,
                            out_features, rng),
              /*requires_grad=*/true),
      bias_(Tensor({out_features}), /*requires_grad=*/true),
      act_(act) {
  ET_CHECK_EQ(adjacency_.rank(), 2);
  ET_CHECK_EQ(adjacency_.dim(0), adjacency_.dim(1));
}

Variable GraphConv::Forward(const Variable& x) const {
  ET_CHECK_EQ(x.rank(), 2);
  ET_CHECK_EQ(x.value().dim(0), adjacency_.dim(0))
      << "node count mismatch";
  Variable propagated =
      ag::MatMul(Variable(adjacency_, false), x);       // Â X
  Variable transformed = ag::MatMul(propagated, weight_);  // Â X W
  transformed = ag::AddBias(transformed, bias_, 1);
  return Activate(transformed, act_);
}

GcnEncoder::GcnEncoder(const Tensor& adjacency, int64_t in_features,
                       int64_t hidden, int64_t out_features, Rng& rng) {
  const Tensor normalized = NormalizeAdjacency(adjacency);
  layer1_ = std::make_unique<GraphConv>(normalized, in_features, hidden, rng,
                                        Activation::kRelu);
  layer2_ = std::make_unique<GraphConv>(normalized, hidden, out_features, rng,
                                        Activation::kLinear);
}

Variable GcnEncoder::Forward(const Variable& x) const {
  return layer2_->Forward(layer1_->Forward(x));
}

std::vector<Variable> GcnEncoder::Parameters() const {
  return JoinParameters({layer1_.get(), layer2_.get()});
}

}  // namespace nn
}  // namespace equitensor
