#include "nn/kernels_fused.h"

#include <cmath>
#include <vector>

#include "nn/backend_registry.h"
#include "nn/kernels_simd.h"
#include "util/arena.h"
#include "util/check.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace equitensor {
namespace backend {
namespace {

// Fused conv+bias+activation kernels (DESIGN.md §15). The conv body is
// the simd lowering driven through its gather-table entry points; what
// fusion adds is (a) the bias/activation epilogue applied in place on
// the conv output — the pre-activation tensor never exists — and (b)
// the concat fold: the gather tables point input channels straight at
// the per-dataset source parts, so the concatenated input (and its
// gradient) are never materialized either.
//
// Float semantics are copied verbatim from the eager ops so fused and
// eager-simd trajectories are BITWISE equal: AddBias's `src + bv`, the
// activation expressions of autograd/ops.cc, and AddBias-backward's
// per-(channel, sample) double accumulator.

SimdConvGeom GeomFromFused(const ConvBiasActDims& d) {
  switch (d.rank) {
    case 1:
      return {d.batch, d.cin, d.cout, 1, 1, d.t, 1, 1, d.k, 0, 0, d.pad};
    case 2:
      return {d.batch, d.cin, d.cout, d.w,   d.h,   1,
              d.k,     d.k,   1,      d.pad, d.pad, 0};
    default:
      return {d.batch, d.cin,  d.cout, d.w,   d.h,   d.t,
              d.k,     d.k,    d.k,    d.pad, d.pad, d.pad};
  }
}

int64_t SpatialVolumeOf(const ConvBiasActDims& d) { return d.w * d.h * d.t; }

template <Act A>
inline float ActApply(float v) {
  if constexpr (A == Act::kRelu) return v > 0.0f ? v : 0.0f;
  if constexpr (A == Act::kSigmoid) return 1.0f / (1.0f + std::exp(-v));
  if constexpr (A == Act::kTanh) return std::tanh(v);
  return v;
}

template <Act A>
inline float ActGradFromOut(float out) {
  if constexpr (A == Act::kRelu) return out > 0.0f ? 1.0f : 0.0f;
  if constexpr (A == Act::kSigmoid) return out * (1.0f - out);
  if constexpr (A == Act::kTanh) return 1.0f - out * out;
  return 1.0f;
}

// In-place epilogue y[i] = act(y[i] + bias[channel]): the same
// per-element expressions as eager AddBias followed by Activate, so
// chunking cannot change a single bit.
template <Act A>
void BiasActEpilogueT(int64_t batch, int64_t channels, int64_t inner,
                      const float* bias, float* y) {
  ParallelFor(0, batch * channels, GrainForCost(inner),
              [&](int64_t b0, int64_t b1) {
                for (int64_t b = b0; b < b1; ++b) {
                  const float bv = bias[b % channels];
                  float* dst = y + b * inner;
                  for (int64_t i = 0; i < inner; ++i) {
                    dst[i] = ActApply<A>(dst[i] + bv);
                  }
                }
              });
}

}  // namespace

void FusedBiasActEpilogue(Act act, int64_t batch, int64_t channels,
                          int64_t inner, const float* bias, float* y) {
  switch (act) {
    case Act::kLinear:
      BiasActEpilogueT<Act::kLinear>(batch, channels, inner, bias, y);
      return;
    case Act::kRelu:
      BiasActEpilogueT<Act::kRelu>(batch, channels, inner, bias, y);
      return;
    case Act::kSigmoid:
      BiasActEpilogueT<Act::kSigmoid>(batch, channels, inner, bias, y);
      return;
    case Act::kTanh:
      BiasActEpilogueT<Act::kTanh>(batch, channels, inner, bias, y);
      return;
  }
  ET_CHECK(false) << "unknown fused activation";
}

namespace {

// g_pre[i] = gout[i] * act'(y[i]) — eager UnaryFromOutput backward.
template <Act A>
void GradPreActT(const float* gout, const float* y, int64_t size, float* gpre) {
  ParallelFor(0, size, GrainForCost(1), [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      gpre[i] = gout[i] * ActGradFromOut<A>(y[i]);
    }
  });
}

}  // namespace

void FusedGradPreAct(Act act, const float* gout, const float* y, int64_t size,
                     float* gpre) {
  switch (act) {
    case Act::kLinear:
      GradPreActT<Act::kLinear>(gout, y, size, gpre);
      return;
    case Act::kRelu:
      GradPreActT<Act::kRelu>(gout, y, size, gpre);
      return;
    case Act::kSigmoid:
      GradPreActT<Act::kSigmoid>(gout, y, size, gpre);
      return;
    case Act::kTanh:
      GradPreActT<Act::kTanh>(gout, y, size, gpre);
      return;
  }
  ET_CHECK(false) << "unknown fused activation";
}

// gb[c] += Σ_n Σ_i g_pre[n, c, i], each (c, n) slice summed in a
// serial double — the exact association of eager AddBias backward.
void FusedAccumulateBiasGrad(int64_t batch, int64_t channels, int64_t inner,
                             const float* gpre, float* gb) {
  ParallelFor(0, channels, GrainForCost(batch * inner),
              [&](int64_t c0, int64_t c1) {
                for (int64_t c = c0; c < c1; ++c) {
                  for (int64_t o = 0; o < batch; ++o) {
                    const float* g = gpre + (o * channels + c) * inner;
                    double sum = 0.0;
                    for (int64_t i = 0; i < inner; ++i) sum += g[i];
                    gb[c] += static_cast<float>(sum);
                  }
                }
              });
}

namespace {

// Gather tables addressing the virtual concat input: global channel
// ci reads part pi's local channel plane. A single tensor is the
// one-part special case.
struct GatherTables {
  std::vector<const float*> base;
  std::vector<int64_t> stride;
};

GatherTables TablesFor(const std::vector<const Tensor*>& parts, int64_t pvol) {
  GatherTables t;
  for (const Tensor* part : parts) {
    const int64_t c_part = part->dim(1);
    for (int64_t c = 0; c < c_part; ++c) {
      t.base.push_back(part->data() + c * pvol);
      t.stride.push_back(c_part * pvol);
    }
  }
  return t;
}

// ---------------------------------------------------------------------------
// Fused dispatch bodies (shared by the single-input and concat ops).

void FusedForwardImpl(const ConvBiasActDims& d,
                      const std::vector<const Tensor*>& parts, const Tensor& w,
                      const Tensor& bias, Tensor* out) {
  const int64_t pvol = SpatialVolumeOf(d);
  const GatherTables t = TablesFor(parts, pvol);
  ET_CHECK_EQ(static_cast<int64_t>(t.base.size()), d.cin);
  SimdConvForwardGather(GeomFromFused(d), t.base.data(), t.stride.data(),
                        w.data(), out->data());
  FusedBiasActEpilogue(d.act, d.batch, d.cout, pvol, bias.data(), out->data());
}

void FusedBackwardImpl(const ConvBiasActDims& d,
                       const std::vector<const Tensor*>& parts, const Tensor& w,
                       const Tensor& y, const Tensor& gout,
                       const std::vector<Tensor*>& gparts, Tensor* gw,
                       Tensor* gb) {
  const int64_t pvol = SpatialVolumeOf(d);
  // g_pre = gout · act'(y), staged once in arena scratch (for a linear
  // activation gout IS g_pre — no copy).
  ArenaBuffer gpre_buf;
  const float* gpre = gout.data();
  if (d.act != Act::kLinear) {
    gpre_buf = ArenaBuffer(Arena::Global(), gout.size());
    FusedGradPreAct(d.act, gout.data(), y.data(), gout.size(), gpre_buf.data());
    gpre = gpre_buf.data();
  }
  if (gb != nullptr) {
    FusedAccumulateBiasGrad(d.batch, d.cout, pvol, gpre, gb->data());
  }
  bool any_gx = false;
  for (const Tensor* gp : gparts) any_gx |= (gp != nullptr);
  if (!any_gx && gw == nullptr) return;

  const GatherTables t = TablesFor(parts, pvol);
  std::vector<float*> gx_base;
  std::vector<int64_t> gx_stride;
  if (any_gx) {
    for (size_t pi = 0; pi < parts.size(); ++pi) {
      const int64_t c_part = parts[pi]->dim(1);
      for (int64_t c = 0; c < c_part; ++c) {
        gx_base.push_back(gparts[pi] ? gparts[pi]->data() + c * pvol : nullptr);
        gx_stride.push_back(c_part * pvol);
      }
    }
  }
  SimdConvBackwardGather(GeomFromFused(d), t.base.data(), t.stride.data(),
                         w.data(), gpre, any_gx ? gx_base.data() : nullptr,
                         any_gx ? gx_stride.data() : nullptr,
                         gw ? gw->data() : nullptr);
}

// ---------------------------------------------------------------------------
// Registered entry points.

void FusedConvBiasActFwd(const ConvBiasActDims& d, const Tensor& x,
                         const Tensor& w, const Tensor& bias, Tensor* out) {
  ET_TRACE_SPAN("conv_bias_act.fwd.fused");
  ET_METRIC_COUNTER_ADD("kernel.conv_bias_act_fwd.fused", 1);
  FusedForwardImpl(d, {&x}, w, bias, out);
}

void FusedConvBiasActBwd(const ConvBiasActDims& d, const Tensor& x,
                         const Tensor& w, const Tensor& y, const Tensor& gout,
                         Tensor* gx, Tensor* gw, Tensor* gb) {
  ET_TRACE_SPAN("conv_bias_act.bwd.fused");
  ET_METRIC_COUNTER_ADD("kernel.conv_bias_act_bwd.fused", 1);
  FusedBackwardImpl(d, {&x}, w, y, gout, {gx}, gw, gb);
}

void FusedConcatConvBiasActFwd(const ConvBiasActDims& d,
                               const std::vector<const Tensor*>& parts,
                               const Tensor& w, const Tensor& bias,
                               Tensor* out) {
  ET_TRACE_SPAN("concat_conv_bias_act.fwd.fused");
  ET_METRIC_COUNTER_ADD("kernel.concat_conv_bias_act_fwd.fused", 1);
  FusedForwardImpl(d, parts, w, bias, out);
}

void FusedConcatConvBiasActBwd(const ConvBiasActDims& d,
                               const std::vector<const Tensor*>& parts,
                               const Tensor& w, const Tensor& y,
                               const Tensor& gout,
                               const std::vector<Tensor*>& gparts, Tensor* gw,
                               Tensor* gb) {
  ET_TRACE_SPAN("concat_conv_bias_act.bwd.fused");
  ET_METRIC_COUNTER_ADD("kernel.concat_conv_bias_act_bwd.fused", 1);
  FusedBackwardImpl(d, parts, w, y, gout, gparts, gw, gb);
}

// Base ops of the `fused` backend delegate to `simd`, resolved PER
// CALL: resolving at registration time would re-enter the registry's
// EnsureBuiltinsRegistered while this set is still registering, and
// would also pin stale pointers across test re-registrations.
template <typename Dims>
void FusedDelegateConvFwd(const char* op, const char* counter, const Dims& d,
                          const Tensor& x, const Tensor& w, Tensor* out) {
  ET_METRIC_COUNTER_ADD(counter, 1);
  using Fn = void (*)(const Dims&, const Tensor&, const Tensor&, Tensor*);
  ResolveKernelFn<Fn>(op, "simd")(d, x, w, out);
}

template <typename Dims>
void FusedDelegateConvBwd(const char* op, const char* counter, const Dims& d,
                          const Tensor& x, const Tensor& w, const Tensor& gout,
                          Tensor* gx, Tensor* gw) {
  ET_METRIC_COUNTER_ADD(counter, 1);
  using Fn = void (*)(const Dims&, const Tensor&, const Tensor&, const Tensor&,
                      Tensor*, Tensor*);
  ResolveKernelFn<Fn>(op, "simd")(d, x, w, gout, gx, gw);
}

void FusedConv1dFwd(const Conv1dDims& d, const Tensor& x, const Tensor& w,
                    Tensor* out) {
  FusedDelegateConvFwd("conv1d_fwd", "kernel.conv1d_fwd.fused", d, x, w, out);
}
void FusedConv1dBwd(const Conv1dDims& d, const Tensor& x, const Tensor& w,
                    const Tensor& gout, Tensor* gx, Tensor* gw) {
  FusedDelegateConvBwd("conv1d_bwd", "kernel.conv1d_bwd.fused", d, x, w, gout,
                       gx, gw);
}
void FusedConv2dFwd(const Conv2dDims& d, const Tensor& x, const Tensor& w,
                    Tensor* out) {
  FusedDelegateConvFwd("conv2d_fwd", "kernel.conv2d_fwd.fused", d, x, w, out);
}
void FusedConv2dBwd(const Conv2dDims& d, const Tensor& x, const Tensor& w,
                    const Tensor& gout, Tensor* gx, Tensor* gw) {
  FusedDelegateConvBwd("conv2d_bwd", "kernel.conv2d_bwd.fused", d, x, w, gout,
                       gx, gw);
}
void FusedConv3dFwd(const Conv3dDims& d, const Tensor& x, const Tensor& w,
                    Tensor* out) {
  FusedDelegateConvFwd("conv3d_fwd", "kernel.conv3d_fwd.fused", d, x, w, out);
}
void FusedConv3dBwd(const Conv3dDims& d, const Tensor& x, const Tensor& w,
                    const Tensor& gout, Tensor* gx, Tensor* gw) {
  FusedDelegateConvBwd("conv3d_bwd", "kernel.conv3d_bwd.fused", d, x, w, gout,
                       gx, gw);
}

void FusedMatMul(const MatMulSpec& s, const float* a, const float* b,
                 float* c) {
  ET_METRIC_COUNTER_ADD("kernel.matmul.fused", 1);
  ResolveKernelFn<MatMulFn>("matmul", "simd")(s, a, b, c);
}

}  // namespace

void RegisterFusedKernels() {
  static const bool registered = [] {
    RegisterKernelFn<Conv1dFwdFn>("conv1d_fwd", "fused", FusedConv1dFwd);
    RegisterKernelFn<Conv1dBwdFn>("conv1d_bwd", "fused", FusedConv1dBwd);
    RegisterKernelFn<Conv2dFwdFn>("conv2d_fwd", "fused", FusedConv2dFwd);
    RegisterKernelFn<Conv2dBwdFn>("conv2d_bwd", "fused", FusedConv2dBwd);
    RegisterKernelFn<Conv3dFwdFn>("conv3d_fwd", "fused", FusedConv3dFwd);
    RegisterKernelFn<Conv3dBwdFn>("conv3d_bwd", "fused", FusedConv3dBwd);
    RegisterKernelFn<MatMulFn>("matmul", "fused", FusedMatMul);
    RegisterKernelFn<ConvBiasActFwdFn>("conv_bias_act_fwd", "fused",
                                       FusedConvBiasActFwd);
    RegisterKernelFn<ConvBiasActBwdFn>("conv_bias_act_bwd", "fused",
                                       FusedConvBiasActBwd);
    RegisterKernelFn<ConcatConvBiasActFwdFn>("concat_conv_bias_act_fwd",
                                             "fused", FusedConcatConvBiasActFwd);
    RegisterKernelFn<ConcatConvBiasActBwdFn>("concat_conv_bias_act_bwd",
                                             "fused", FusedConcatConvBiasActBwd);
    return true;
  }();
  (void)registered;
}

}  // namespace backend
}  // namespace equitensor
