#ifndef EQUITENSOR_NN_MODULE_H_
#define EQUITENSOR_NN_MODULE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "autograd/variable.h"

namespace equitensor {
namespace nn {

/// Base class for trainable components. Parameters are Variable handles
/// (shared with the graph), so optimizers mutate them in place between
/// forward passes.
class Module {
 public:
  virtual ~Module() = default;

  /// All trainable parameter handles of this module (recursively).
  virtual std::vector<Variable> Parameters() const = 0;

  /// Total number of trainable scalars.
  int64_t ParameterCount() const {
    int64_t count = 0;
    for (const Variable& p : Parameters()) count += p.size();
    return count;
  }

  /// Clears the gradients of all parameters.
  void ZeroGrad() {
    for (Variable p : Parameters()) p.ZeroGrad();
  }
};

/// Concatenates the parameter lists of several modules.
std::vector<Variable> JoinParameters(
    std::initializer_list<const Module*> modules);

}  // namespace nn
}  // namespace equitensor

#endif  // EQUITENSOR_NN_MODULE_H_
