#ifndef EQUITENSOR_NN_MODULE_H_
#define EQUITENSOR_NN_MODULE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "autograd/variable.h"

namespace equitensor {
namespace nn {

/// A parameter handle paired with its stable, module-assigned name
/// (e.g. "enc0.conv1.weight"). Checkpoints key on these names.
struct NamedParameter {
  std::string name;
  Variable param;
};

/// Base class for trainable components. Parameters are Variable handles
/// (shared with the graph), so optimizers mutate them in place between
/// forward passes.
class Module {
 public:
  virtual ~Module() = default;

  /// All trainable parameter handles of this module (recursively).
  virtual std::vector<Variable> Parameters() const = 0;

  /// Named parameter handles in the same order as Parameters(). Names
  /// are stable across runs for a fixed architecture and unique within
  /// a module; they identify tensors in checkpoints. The default
  /// synthesizes "param_<i>" for modules that have not assigned names.
  virtual std::vector<NamedParameter> NamedParameters() const;

  /// Total number of trainable scalars.
  int64_t ParameterCount() const {
    int64_t count = 0;
    for (const Variable& p : Parameters()) count += p.size();
    return count;
  }

  /// Clears the gradients of all parameters.
  void ZeroGrad() {
    for (Variable p : Parameters()) p.ZeroGrad();
  }
};

/// Concatenates the parameter lists of several modules.
std::vector<Variable> JoinParameters(
    std::initializer_list<const Module*> modules);

/// Appends `module`'s named parameters to `out` with `prefix`
/// prepended to every name (e.g. prefix "enc0." yields
/// "enc0.conv1.weight"). Composite modules build their name trees
/// with this.
void AppendNamedParameters(const std::string& prefix, const Module& module,
                           std::vector<NamedParameter>* out);

}  // namespace nn
}  // namespace equitensor

#endif  // EQUITENSOR_NN_MODULE_H_
