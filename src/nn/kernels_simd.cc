#include "nn/kernels_simd.h"

#include <algorithm>
#include <cstring>

#include "nn/backend_registry.h"
#include "util/arena.h"
#include "util/check.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define ET_SIMD_X86 1
#include <immintrin.h>
#define ET_TARGET_AVX2 __attribute__((target("avx2,fma")))
#else
#define ET_SIMD_X86 0
#endif

namespace equitensor {
namespace backend {
namespace {

// im2col + blocked GEMM lowering (DESIGN.md §13).
//
// All three convolutions share one geometry: a 1d conv is a 3d conv
// with W = H = 1 and a temporal-only kernel, a 2d conv one with T = 1.
// Per sample n the forward pass is a single GEMM
//
//   Y[n]  (Cout x P)  =  W (Cout x CK)  ·  col (CK x P)
//
// with P = W·H·T output positions and CK = Cin·KW·KH·KT patch
// entries; `col` is the im2col matrix ("same" zero padding folded in
// as zeroed row borders). The backward pass is two more GEMMs:
//
//   gcol (CK x P)     =  Wᵀ (CK x Cout)  ·  gY[n] (Cout x P)
//   gWᵀ  (CK x Cout) +=  col (CK x P)    ·  gYᵀ  (P x Cout)
//
// followed by a col2im scatter-add for gX. Scratch (col, gcol, the
// transpose packs) is leased from the global arena, so after the first
// step of a fixed-shape training loop these kernels allocate nothing.
//
// Determinism: the GEMM block grid is a pure function of the problem
// shape, every output element accumulates in a fixed serial k order,
// and ParallelFor only distributes whole blocks — results are bitwise
// identical for any thread count on a given machine. Cross-backend
// (vs `reference`) the accumulation association differs, bounded by
// CheckTolerance.

// The geometry struct lives in the header (SimdConvGeom) so the fused
// executor can drive the same lowering; the old internal name stays as
// the local spelling.
using ConvGeom = SimdConvGeom;

int64_t SpatialVolume(const ConvGeom& g) { return g.w * g.h * g.t; }
int64_t PatchSize(const ConvGeom& g) { return g.cin * g.kw * g.kh * g.kt; }

// ---------------------------------------------------------------------------
// GEMM micro-kernels. The 6x16 tile keeps 12 accumulator registers
// live in AVX2 (6 rows x 2 ymm) with one broadcast per row per k step.
// The portable variant mirrors the same tile so the blocked driver is
// shared; GCC auto-vectorizes its inner loops at the baseline ISA.
//
// Both operands reach the kernels packed: A as [kk][kMR] groups (the
// six broadcasts per k step read 24 consecutive bytes) and B as
// [kk][kNR] lines (the two vector loads stream contiguous 64-byte
// rows). Packing happens once per cache block in the driver below.

constexpr int64_t kMR = 6;    // micro-tile rows
constexpr int64_t kNR = 16;   // micro-tile cols
constexpr int64_t kMB = 96;   // row block (16 micro-rows)
constexpr int64_t kNB = 240;  // col block (15 micro-cols)
constexpr int64_t kKC = 512;  // k block: B panel stays cache-resident

using MicroKernelFn = void (*)(int64_t kc, const float* a, const float* b,
                               float* c, int64_t ldc, bool first);

#if ET_SIMD_X86
// Variable-row-count tile (MR in 1..6), all 16 columns vectorized. MR
// is a template constant so the accumulator array unrolls into
// registers; row remainders (e.g. a Cout=16 GEMM splitting 6+6+4) stay
// on the FMA path instead of falling back to scalar edge code.
// Accumulators are NAMED variables, not a __m256 array: GCC keeps an
// array's stack image live and re-stores every accumulator each k step
// (12 stores per iteration — measured 2x slower); named locals stay
// register-only.
template <int MR>
ET_TARGET_AVX2 void MicroMx16Avx2(int64_t kc, const float* a, const float* b,
                                  float* c, int64_t ldc, bool first) {
  const __m256 z = _mm256_setzero_ps();
  __m256 l0 = z, h0 = z, l1 = z, h1 = z, l2 = z, h2 = z;
  __m256 l3 = z, h3 = z, l4 = z, h4 = z, l5 = z, h5 = z;
  for (int64_t kk = 0; kk < kc; ++kk) {
    const __m256 b0 = _mm256_loadu_ps(b + kk * kNR);
    const __m256 b1 = _mm256_loadu_ps(b + kk * kNR + 8);
    const float* arow = a + kk * kMR;
    __m256 av = _mm256_broadcast_ss(arow);
    l0 = _mm256_fmadd_ps(av, b0, l0);
    h0 = _mm256_fmadd_ps(av, b1, h0);
    if constexpr (MR > 1) {
      av = _mm256_broadcast_ss(arow + 1);
      l1 = _mm256_fmadd_ps(av, b0, l1);
      h1 = _mm256_fmadd_ps(av, b1, h1);
    }
    if constexpr (MR > 2) {
      av = _mm256_broadcast_ss(arow + 2);
      l2 = _mm256_fmadd_ps(av, b0, l2);
      h2 = _mm256_fmadd_ps(av, b1, h2);
    }
    if constexpr (MR > 3) {
      av = _mm256_broadcast_ss(arow + 3);
      l3 = _mm256_fmadd_ps(av, b0, l3);
      h3 = _mm256_fmadd_ps(av, b1, h3);
    }
    if constexpr (MR > 4) {
      av = _mm256_broadcast_ss(arow + 4);
      l4 = _mm256_fmadd_ps(av, b0, l4);
      h4 = _mm256_fmadd_ps(av, b1, h4);
    }
    if constexpr (MR > 5) {
      av = _mm256_broadcast_ss(arow + 5);
      l5 = _mm256_fmadd_ps(av, b0, l5);
      h5 = _mm256_fmadd_ps(av, b1, h5);
    }
  }
  const auto out = [&](int i, __m256 lo, __m256 hi) ET_TARGET_AVX2 {
    float* crow = c + i * ldc;
    if (first) {
      _mm256_storeu_ps(crow, lo);
      _mm256_storeu_ps(crow + 8, hi);
    } else {
      _mm256_storeu_ps(crow, _mm256_add_ps(_mm256_loadu_ps(crow), lo));
      _mm256_storeu_ps(crow + 8, _mm256_add_ps(_mm256_loadu_ps(crow + 8), hi));
    }
  };
  out(0, l0, h0);
  if constexpr (MR > 1) out(1, l1, h1);
  if constexpr (MR > 2) out(2, l2, h2);
  if constexpr (MR > 3) out(3, l3, h3);
  if constexpr (MR > 4) out(4, l4, h4);
  if constexpr (MR > 5) out(5, l5, h5);
}
#endif  // ET_SIMD_X86

template <int MR>
void MicroMx16Portable(int64_t kc, const float* a, const float* b, float* c,
                       int64_t ldc, bool first) {
  float acc[MR][kNR] = {};
  for (int64_t kk = 0; kk < kc; ++kk) {
    const float* brow = b + kk * kNR;
    for (int i = 0; i < MR; ++i) {
      const float av = a[kk * kMR + i];
      for (int64_t j = 0; j < kNR; ++j) acc[i][j] += av * brow[j];
    }
  }
  for (int i = 0; i < MR; ++i) {
    float* crow = c + i * ldc;
    if (first) {
      for (int64_t j = 0; j < kNR; ++j) crow[j] = acc[i][j];
    } else {
      for (int64_t j = 0; j < kNR; ++j) crow[j] += acc[i][j];
    }
  }
}

// Per-row-count kernel table, index mr in 1..6 (entry 0 unused). One
// runtime cpu probe picks the AVX2 or portable family for the process.
struct MicroKernelTable {
  MicroKernelFn by_rows[kMR + 1];
  bool avx2;
};

MicroKernelTable PickMicroKernels() {
  MicroKernelTable t;
#if ET_SIMD_X86
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    t.by_rows[1] = MicroMx16Avx2<1>;
    t.by_rows[2] = MicroMx16Avx2<2>;
    t.by_rows[3] = MicroMx16Avx2<3>;
    t.by_rows[4] = MicroMx16Avx2<4>;
    t.by_rows[5] = MicroMx16Avx2<5>;
    t.by_rows[6] = MicroMx16Avx2<6>;
    t.avx2 = true;
    return t;
  }
#endif
  t.by_rows[1] = MicroMx16Portable<1>;
  t.by_rows[2] = MicroMx16Portable<2>;
  t.by_rows[3] = MicroMx16Portable<3>;
  t.by_rows[4] = MicroMx16Portable<4>;
  t.by_rows[5] = MicroMx16Portable<5>;
  t.by_rows[6] = MicroMx16Portable<6>;
  t.avx2 = false;
  return t;
}

const MicroKernelTable& MicroKernels() {
  static const MicroKernelTable t = PickMicroKernels();
  return t;
}

// Partial tiles at the right block edge (nr < kNR): same packed
// operands and fixed k order, scalar accumulators over the live
// columns only.
void EdgeTile(int64_t mr, int64_t nr, int64_t kc, const float* a,
              const float* b, float* c, int64_t ldc, bool first) {
  for (int64_t i = 0; i < mr; ++i) {
    float acc[kNR] = {};
    for (int64_t kk = 0; kk < kc; ++kk) {
      const float av = a[kk * kMR + i];
      const float* brow = b + kk * kNR;
      for (int64_t j = 0; j < nr; ++j) acc[j] += av * brow[j];
    }
    float* crow = c + i * ldc;
    if (first) {
      for (int64_t j = 0; j < nr; ++j) crow[j] = acc[j];
    } else {
      for (int64_t j = 0; j < nr; ++j) crow[j] += acc[j];
    }
  }
}

// Shared blocked driver (the public GemmRowMajor wraps it; the fused
// conv forward below drives the same micro-kernels block by block).
void GemmBlocked(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda,
                 const float* b, int64_t ldb, float* c, int64_t ldc,
                 bool accumulate) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    if (!accumulate) {
      for (int64_t i = 0; i < m; ++i) {
        std::fill(c + i * ldc, c + i * ldc + n, 0.0f);
      }
    }
    return;
  }
  const MicroKernelTable& micro = MicroKernels();
  const int64_t mb_count = (m + kMB - 1) / kMB;
  const int64_t nb_count = (n + kNB - 1) / kNB;
  const int64_t max_jt = (std::min(n, kNB) + kNR - 1) / kNR;
  const int64_t max_it = (std::min(m, kMB) + kMR - 1) / kMR;
  const int64_t max_kc = std::min(k, kKC);
  // Whole blocks are the unit of parallel work, so the result is
  // independent of how ParallelFor chunks the block grid.
  ParallelFor(
      0, mb_count * nb_count, 1, [&](int64_t blk0, int64_t blk1) {
        // Per-worker packing buffers (arena leases): B as
        // [j_tile][kk][kNR] contiguous lines, A as [i_tile][kk][kMR]
        // broadcast groups. Without packing the micro-kernel re-walks
        // the ldb/lda-strided sources for every tile pair, which is
        // what capped throughput.
        ArenaBuffer apack(Arena::Global(), max_it * max_kc * kMR);
        ArenaBuffer bpack(Arena::Global(), max_jt * max_kc * kNR);
        for (int64_t blk = blk0; blk < blk1; ++blk) {
          const int64_t mb = blk / nb_count;
          const int64_t nb = blk % nb_count;
          const int64_t i_begin = mb * kMB;
          const int64_t i_end = std::min(m, i_begin + kMB);
          const int64_t j_begin = nb * kNB;
          const int64_t j_end = std::min(n, j_begin + kNB);
          const int64_t i_tiles = (i_end - i_begin + kMR - 1) / kMR;
          const int64_t j_tiles = (j_end - j_begin + kNR - 1) / kNR;
          for (int64_t kc0 = 0; kc0 < k; kc0 += kKC) {
            const int64_t kc = std::min(kKC, k - kc0);
            const bool first = (kc0 == 0) && !accumulate;
            // Pack loop is kk-major: each k step reads one contiguous
            // slice of the source row and fans it out to j_tiles
            // write cursors. The jt-major order would touch kc
            // distinct pages per tile (ldb-strided 64-byte reads),
            // which is TLB-bound.
            const int64_t full_jt = (j_end - j_begin) / kNR;
            for (int64_t kk = 0; kk < kc; ++kk) {
              const float* src = b + (kc0 + kk) * ldb + j_begin;
              float* dst = bpack.data() + kk * kNR;
              int64_t jt = 0;
              for (; jt < full_jt; ++jt) {
                std::memcpy(dst + jt * kc * kNR, src + jt * kNR,
                            kNR * sizeof(float));
              }
              if (jt < j_tiles) {
                const int64_t nr = j_end - j_begin - jt * kNR;
                float* tail = dst + jt * kc * kNR;
                const float* tsrc = src + jt * kNR;
                for (int64_t j = 0; j < nr; ++j) tail[j] = tsrc[j];
                for (int64_t j = nr; j < kNR; ++j) tail[j] = 0.0f;
              }
            }
            const float* btiles = bpack.data();
            for (int64_t it = 0; it < i_tiles; ++it) {
              const int64_t i0 = i_begin + it * kMR;
              const int64_t mr = std::min(kMR, i_end - i0);
              float* dst = apack.data() + it * kc * kMR;
              for (int64_t i = 0; i < mr; ++i) {
                const float* src = a + (i0 + i) * lda + kc0;
                for (int64_t kk = 0; kk < kc; ++kk) dst[kk * kMR + i] = src[kk];
              }
              for (int64_t i = mr; i < kMR; ++i) {
                for (int64_t kk = 0; kk < kc; ++kk) dst[kk * kMR + i] = 0.0f;
              }
            }
            // Tile loop order keeps the smaller operand's panels
            // hot: with few row tiles (e.g. a Cout=16 conv forward)
            // the jt-outer order reads each B tile once per block and
            // re-reads the small A pack from L1, instead of streaming
            // the whole B panel again for every row tile.
            const auto tile_at = [&](int64_t it, int64_t jt) {
              const int64_t i0 = i_begin + it * kMR;
              const int64_t mr = std::min(kMR, i_end - i0);
              const int64_t j0 = j_begin + jt * kNR;
              const int64_t nr = std::min(kNR, j_end - j0);
              const float* ablk = apack.data() + it * kc * kMR;
              const float* bblk = btiles + jt * kc * kNR;
              float* cblk = c + i0 * ldc + j0;
              if (nr == kNR) {
                micro.by_rows[mr](kc, ablk, bblk, cblk, ldc, first);
              } else {
                EdgeTile(mr, nr, kc, ablk, bblk, cblk, ldc, first);
              }
            };
            if (i_tiles <= j_tiles) {
              for (int64_t jt = 0; jt < j_tiles; ++jt) {
                for (int64_t it = 0; it < i_tiles; ++it) tile_at(it, jt);
              }
            } else {
              for (int64_t it = 0; it < i_tiles; ++it) {
                for (int64_t jt = 0; jt < j_tiles; ++jt) tile_at(it, jt);
              }
            }
          }
        }
      });
}

}  // namespace

void GemmRowMajor(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda,
                  const float* b, int64_t ldb, float* c, int64_t ldc,
                  bool accumulate) {
  GemmBlocked(m, n, k, a, lda, b, ldb, c, ldc, accumulate);
}

namespace {

// ---------------------------------------------------------------------------
// im2col / col2im for the unified geometry. Row r of the col matrix
// corresponds to patch entry (ci, kx, ky, kt); the "same" padding
// appears as zeroed borders. Rows are independent, so the loop
// parallelizes over r (owner-computes).
//
// The input is addressed through per-channel gather tables: channel
// ci of sample n lives at chan_base[ci] + n * chan_stride[ci]. A
// dense tensor is the trivial table; the fused concat fold points
// channels at separate source tensors. The emitted col values are
// identical either way, which is what makes the fold bitwise-neutral.

// Writes the p values of col row r (patch entry r) for sample n into
// `row`. Each cell is written exactly once: the pad borders get
// zeros, the interior gets the shifted input span. (A full memset
// followed by the copies would double the write traffic, which is
// most of im2col's cost.)
void Im2ColRow(const ConvGeom& g, int64_t r, const float* const* chan_base,
               const int64_t* chan_stride, int64_t n, float* row) {
  const int64_t p = SpatialVolume(g);
  const int64_t kvol = g.kw * g.kh * g.kt;
  const int64_t ci = r / kvol;
  const int64_t rem = r % kvol;
  const int64_t kx = rem / (g.kh * g.kt);
  const int64_t ky = (rem / g.kt) % g.kh;
  const int64_t kt = rem % g.kt;
  const int64_t dxo = kx - g.pw;
  const int64_t dyo = ky - g.ph;
  const int64_t dto = kt - g.pt;
  const int64_t x0 = std::max<int64_t>(0, -dxo);
  const int64_t x1 = std::min<int64_t>(g.w, g.w - dxo);
  const int64_t y0 = std::max<int64_t>(0, -dyo);
  const int64_t y1 = std::min<int64_t>(g.h, g.h - dyo);
  const int64_t t0 = std::max<int64_t>(0, -dto);
  const int64_t t1 = std::min<int64_t>(g.t, g.t - dto);
  if (x0 >= x1 || y0 >= y1 || t0 >= t1) {
    std::memset(row, 0, static_cast<size_t>(p) * sizeof(float));
    return;
  }
  const float* src = chan_base[ci] + n * chan_stride[ci];
  const size_t span = static_cast<size_t>(t1 - t0) * sizeof(float);
  const int64_t ht = g.h * g.t;
  std::memset(row, 0, static_cast<size_t>(x0 * ht) * sizeof(float));
  std::memset(row + x1 * ht, 0,
              static_cast<size_t>((g.w - x1) * ht) * sizeof(float));
  for (int64_t xx = x0; xx < x1; ++xx) {
    float* plane = row + xx * ht;
    std::memset(plane, 0, static_cast<size_t>(y0 * g.t) * sizeof(float));
    std::memset(plane + y1 * g.t, 0,
                static_cast<size_t>((g.h - y1) * g.t) * sizeof(float));
    for (int64_t yy = y0; yy < y1; ++yy) {
      float* line = plane + yy * g.t;
      for (int64_t tt = 0; tt < t0; ++tt) line[tt] = 0.0f;
      for (int64_t tt = t1; tt < g.t; ++tt) line[tt] = 0.0f;
      const int64_t src_off = ((xx + dxo) * g.h + (yy + dyo)) * g.t + t0 + dto;
      std::memcpy(line + t0, src + src_off, span);
    }
  }
}

void Im2Col(const ConvGeom& g, const float* const* chan_base,
            const int64_t* chan_stride, int64_t n, float* col) {
  const int64_t p = SpatialVolume(g);
  const int64_t rows = PatchSize(g);
  ParallelFor(0, rows, GrainForCost(p), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      Im2ColRow(g, r, chan_base, chan_stride, n, col + r * p);
    }
  });
}

// Fused im2col: emits row r straight into the packed-B image
// GemmBlocked consumes ([k_block][j_tile][kk][kNR]), so the forward
// conv writes its col matrix exactly once in kernel order instead of
// writing a row-major col and having the GEMM re-read it strided to
// pack. Same border/span walk as Im2Col, chunked at j-tile seams;
// the final tile's padding columns are zeroed so full-width loads in
// the micro-kernel are safe.
// Writes the [j0, j1) slice of col row r into `out` (out[0] is column
// j0). Same zero-border / shifted-span structure as Im2ColRow,
// clipped to the window; the fused conv forward stages one cache
// block's worth of each row at a time with this.
void Im2ColRowSlice(const ConvGeom& g, int64_t r,
                    const float* const* chan_base, const int64_t* chan_stride,
                    int64_t n, int64_t j0, int64_t j1, float* out) {
  const int64_t kvol = g.kw * g.kh * g.kt;
  const int64_t ci = r / kvol;
  const int64_t rem = r % kvol;
  const int64_t kx = rem / (g.kh * g.kt);
  const int64_t ky = (rem / g.kt) % g.kh;
  const int64_t kt = rem % g.kt;
  const int64_t dxo = kx - g.pw;
  const int64_t dyo = ky - g.ph;
  const int64_t dto = kt - g.pt;
  const int64_t t0 = std::max<int64_t>(0, -dto);
  const int64_t t1 = std::min<int64_t>(g.t, g.t - dto);
  const float* src = chan_base[ci] + n * chan_stride[ci];
  // Walk the window as t-line segments; coordinates advance
  // incrementally after the initial decode of j0.
  int64_t xx = j0 / (g.h * g.t);
  int64_t yy = (j0 - xx * g.h * g.t) / g.t;
  int64_t tt = j0 - (xx * g.h + yy) * g.t;
  for (int64_t j = j0; j < j1;) {
    const int64_t seg = std::min(g.t - tt, j1 - j);
    float* d = out + (j - j0) - tt;  // d[q] is column j - tt + q
    const int64_t sx = xx + dxo;
    const int64_t sy = yy + dyo;
    if (sx < 0 || sx >= g.w || sy < 0 || sy >= g.h) {
      std::memset(d + tt, 0, static_cast<size_t>(seg) * sizeof(float));
    } else {
      const int64_t lo = std::clamp(t0, tt, tt + seg);
      const int64_t hi = std::clamp(t1, lo, tt + seg);
      for (int64_t q = tt; q < lo; ++q) d[q] = 0.0f;
      if (hi > lo) {
        std::memcpy(d + lo, src + (sx * g.h + sy) * g.t + dto + lo,
                    static_cast<size_t>(hi - lo) * sizeof(float));
      }
      for (int64_t q = hi; q < tt + seg; ++q) d[q] = 0.0f;
    }
    j += seg;
    tt += seg;
    if (tt == g.t) {
      tt = 0;
      if (++yy == g.h) {
        yy = 0;
        ++xx;
      }
    }
  }
}


// Scatter-add of gcol back onto the input gradient. Each ci owns its
// gx plane (addressed through the gather tables, so a folded concat
// scatters straight into the per-part gradients); the k offsets are
// applied in a fixed order inside the owner, so the accumulation is
// deterministic for any thread count. Null channel entries (a part
// that doesn't need its gradient) are skipped.
void Col2Im(const ConvGeom& g, const float* gcol, float* const* gx_base,
            const int64_t* gx_stride, int64_t n) {
  const int64_t p = SpatialVolume(g);
  const int64_t kvol = g.kw * g.kh * g.kt;
  ParallelFor(0, g.cin, GrainForCost(kvol * p), [&](int64_t c0, int64_t c1) {
    for (int64_t ci = c0; ci < c1; ++ci) {
      if (gx_base[ci] == nullptr) continue;
      float* gplane = gx_base[ci] + n * gx_stride[ci];
      for (int64_t kx = 0; kx < g.kw; ++kx) {
        const int64_t dxo = kx - g.pw;
        const int64_t x0 = std::max<int64_t>(0, -dxo);
        const int64_t x1 = std::min<int64_t>(g.w, g.w - dxo);
        for (int64_t ky = 0; ky < g.kh; ++ky) {
          const int64_t dyo = ky - g.ph;
          const int64_t y0 = std::max<int64_t>(0, -dyo);
          const int64_t y1 = std::min<int64_t>(g.h, g.h - dyo);
          for (int64_t kt = 0; kt < g.kt; ++kt) {
            const int64_t dto = kt - g.pt;
            const int64_t t0 = std::max<int64_t>(0, -dto);
            const int64_t t1 = std::min<int64_t>(g.t, g.t - dto);
            if (x0 >= x1 || y0 >= y1 || t0 >= t1) continue;
            const int64_t r = ((ci * g.kw + kx) * g.kh + ky) * g.kt + kt;
            const float* row = gcol + r * p;
            for (int64_t xx = x0; xx < x1; ++xx) {
              for (int64_t yy = y0; yy < y1; ++yy) {
                float* gdst =
                    gplane + ((xx + dxo) * g.h + (yy + dyo)) * g.t + dto;
                const float* gsrc = row + (xx * g.h + yy) * g.t;
                for (int64_t tt = t0; tt < t1; ++tt) gdst[tt] += gsrc[tt];
              }
            }
          }
        }
      }
    }
  });
}

// Transpose pack: src [rows x cols] row-major -> dst [cols x rows].
void PackTranspose(const float* src, int64_t rows, int64_t cols, float* dst) {
  ParallelFor(0, cols, GrainForCost(rows), [&](int64_t c0, int64_t c1) {
    for (int64_t cc = c0; cc < c1; ++cc) {
      float* drow = dst + cc * rows;
      for (int64_t rr = 0; rr < rows; ++rr) drow[rr] = src[rr * cols + cc];
    }
  });
}

}  // namespace

// ---------------------------------------------------------------------------
// Convolution drivers.

// Fused forward: never materializes the full col matrix. For each
// (sample, column block) the B panel is staged straight from the
// input — Im2ColRowSlice into an L1 row buffer, fanned out to the
// packed [j_tile][kk][kNR] tiles of a ~200 KB recycled scratch — and
// consumed by the micro-kernels while still cache-warm. A full-width
// col would round-trip 2-3 MB per sample through RAM three times
// (write, strided re-read, pack), which dominated the unfused
// profile. W is packed once per call; the jt-outer tile order then
// reads each B tile exactly once per block.
void SimdConvForwardGather(const SimdConvGeom& g, const float* const* chan_base,
                           const int64_t* chan_stride, const float* w,
                           float* out) {
  const int64_t p = SpatialVolume(g);
  const int64_t ck = PatchSize(g);
  const int64_t m = g.cout;
  const MicroKernelTable& micro = MicroKernels();
  const int64_t i_tiles = (m + kMR - 1) / kMR;
  const int64_t nb_count = (p + kNB - 1) / kNB;
  const int64_t max_kc = std::min(ck, kKC);
  const int64_t max_jt = (std::min(p, kNB) + kNR - 1) / kNR;
  // Pack W once: [k_block][i_tile][kk][kMR], shared by every block.
  ArenaBuffer apack(Arena::Global(), i_tiles * ck * kMR);
  for (int64_t kc0 = 0; kc0 < ck; kc0 += kKC) {
    const int64_t kc = std::min(kKC, ck - kc0);
    for (int64_t it = 0; it < i_tiles; ++it) {
      const int64_t i0 = it * kMR;
      const int64_t mr = std::min(kMR, m - i0);
      float* dst = apack.data() + kc0 * i_tiles * kMR + it * kc * kMR;
      for (int64_t i = 0; i < mr; ++i) {
        const float* srow = w + (i0 + i) * ck + kc0;
        for (int64_t kk = 0; kk < kc; ++kk) dst[kk * kMR + i] = srow[kk];
      }
      for (int64_t i = mr; i < kMR; ++i) {
        for (int64_t kk = 0; kk < kc; ++kk) dst[kk * kMR + i] = 0.0f;
      }
    }
  }
  // One work item per (sample, column block); owners write disjoint
  // output blocks in a fixed k order, so any thread count produces
  // bitwise-identical results.
  ParallelFor(
      0, g.batch * nb_count, 1, [&](int64_t blk0, int64_t blk1) {
        ArenaBuffer bscratch(Arena::Global(), max_jt * max_kc * kNR);
        ArenaBuffer rowslice(Arena::Global(), max_jt * kNR);
        for (int64_t blk = blk0; blk < blk1; ++blk) {
          const int64_t n = blk / nb_count;
          const int64_t nb = blk % nb_count;
          float* cn = out + n * m * p;
          const int64_t j_begin = nb * kNB;
          const int64_t j_end = std::min(p, j_begin + kNB);
          const int64_t width = j_end - j_begin;
          const int64_t j_tiles = (width + kNR - 1) / kNR;
          // Zero the staging pad once; rows only rewrite [0, width).
          for (int64_t q = width; q < j_tiles * kNR; ++q) {
            rowslice.data()[q] = 0.0f;
          }
          for (int64_t kc0 = 0; kc0 < ck; kc0 += kKC) {
            const int64_t kc = std::min(kKC, ck - kc0);
            const bool first = (kc0 == 0);
            // The rowslice bounce looks redundant (each value is
            // written twice) but is load-bearing: it decouples the
            // strided input reads from the tile-strided packed
            // stores. Fusing them — writing im2col output straight
            // into the packed tiles — measures 4x slower on this
            // loop: the interleaved load/store streams collide in
            // the memory-disambiguation predictor (4K aliasing) and
            // each chunk pays a machine-clear-sized penalty.
            for (int64_t kk = 0; kk < kc; ++kk) {
              Im2ColRowSlice(g, kc0 + kk, chan_base, chan_stride, n, j_begin,
                             j_end, rowslice.data());
              float* dst = bscratch.data() + kk * kNR;
              for (int64_t jt = 0; jt < j_tiles; ++jt) {
                std::memcpy(dst + jt * kc * kNR, rowslice.data() + jt * kNR,
                            kNR * sizeof(float));
              }
            }
            for (int64_t jt = 0; jt < j_tiles; ++jt) {
              const int64_t j0 = j_begin + jt * kNR;
              const int64_t nr = std::min(kNR, j_end - j0);
              const float* bblk = bscratch.data() + jt * kc * kNR;
              for (int64_t it = 0; it < i_tiles; ++it) {
                const int64_t i0 = it * kMR;
                const int64_t mr = std::min(kMR, m - i0);
                const float* ablk =
                    apack.data() + kc0 * i_tiles * kMR + it * kc * kMR;
                float* cblk = cn + i0 * p + j0;
                if (nr == kNR) {
                  micro.by_rows[mr](kc, ablk, bblk, cblk, p, first);
                } else {
                  EdgeTile(mr, nr, kc, ablk, bblk, cblk, p, first);
                }
              }
            }
          }
        }
      });
}

void SimdConvBackwardGather(const SimdConvGeom& g,
                            const float* const* chan_base,
                            const int64_t* chan_stride, const float* w,
                            const float* gout, float* const* gx_base,
                            const int64_t* gx_stride, float* gw) {
  const int64_t p = SpatialVolume(g);
  const int64_t ck = PatchSize(g);
  if (gx_base) {
    // gcol = Wᵀ · gY, then scatter back onto the input grid. Wᵀ is
    // packed contiguous once per call so the GEMM runs unit-stride.
    ArenaBuffer wt(Arena::Global(), ck * g.cout);
    PackTranspose(w, g.cout, ck, wt.data());
    ArenaBuffer gcol(Arena::Global(), ck * p);
    for (int64_t n = 0; n < g.batch; ++n) {
      GemmRowMajor(ck, p, g.cout, wt.data(), g.cout, gout + n * g.cout * p, p,
                   gcol.data(), p,
                   /*accumulate=*/false);
      Col2Im(g, gcol.data(), gx_base, gx_stride, n);
    }
  }
  if (gw) {
    // gWᵀ += col · gYᵀ, accumulated over the batch in sample order,
    // transposed onto gw at the end. Computing the transposed product
    // keeps both GEMM operands unit-stride (col rows and packed gYᵀ
    // rows) instead of gathering strided columns.
    ArenaBuffer col(Arena::Global(), ck * p);
    ArenaBuffer gyt(Arena::Global(), p * g.cout);
    ArenaBuffer gwt(Arena::Global(), ck * g.cout);
    std::memset(gwt.data(), 0,
                static_cast<size_t>(ck * g.cout) * sizeof(float));
    for (int64_t n = 0; n < g.batch; ++n) {
      Im2Col(g, chan_base, chan_stride, n, col.data());
      PackTranspose(gout + n * g.cout * p, g.cout, p, gyt.data());
      GemmRowMajor(ck, g.cout, p, col.data(), p, gyt.data(), g.cout,
                   gwt.data(), g.cout, /*accumulate=*/true);
    }
    const float* gwt_data = gwt.data();
    for (int64_t co = 0; co < g.cout; ++co) {
      for (int64_t r = 0; r < ck; ++r) {
        gw[co * ck + r] += gwt_data[r * g.cout + co];
      }
    }
  }
}

namespace {

// Dense-tensor wrappers: one gather table per call (cin pointer
// entries — ordinary small vectors, not arena leases).
void DenseChanTable(const Tensor& x, int64_t cin, int64_t p,
                    std::vector<const float*>* base,
                    std::vector<int64_t>* stride) {
  base->resize(cin);
  stride->assign(cin, cin * p);
  for (int64_t ci = 0; ci < cin; ++ci) (*base)[ci] = x.data() + ci * p;
}

void SimdConvForward(const ConvGeom& g, const Tensor& x, const Tensor& w,
                     Tensor* out) {
  const int64_t p = SpatialVolume(g);
  std::vector<const float*> base;
  std::vector<int64_t> stride;
  DenseChanTable(x, g.cin, p, &base, &stride);
  SimdConvForwardGather(g, base.data(), stride.data(), w.data(), out->data());
}

void SimdConvBackward(const ConvGeom& g, const Tensor& x, const Tensor& w,
                      const Tensor& gout, Tensor* gx, Tensor* gw) {
  const int64_t p = SpatialVolume(g);
  std::vector<const float*> base;
  std::vector<int64_t> stride;
  DenseChanTable(x, g.cin, p, &base, &stride);
  std::vector<float*> gx_base;
  std::vector<int64_t> gx_stride;
  if (gx) {
    gx_base.resize(g.cin);
    gx_stride.assign(g.cin, g.cin * p);
    for (int64_t ci = 0; ci < g.cin; ++ci) gx_base[ci] = gx->data() + ci * p;
  }
  SimdConvBackwardGather(g, base.data(), stride.data(), w.data(), gout.data(),
                         gx ? gx_base.data() : nullptr,
                         gx ? gx_stride.data() : nullptr,
                         gw ? gw->data() : nullptr);
}

ConvGeom GeomFrom(const Conv1dDims& d) {
  return {d.batch, d.cin, d.cout, 1, 1, d.t, 1, 1, d.k, 0, 0, d.pad};
}
ConvGeom GeomFrom(const Conv2dDims& d) {
  return {d.batch, d.cin, d.cout, d.w, d.h, 1, d.k, d.k, 1, d.pad, d.pad, 0};
}
ConvGeom GeomFrom(const Conv3dDims& d) {
  return {d.batch, d.cin,  d.cout, d.w,   d.h,   d.t,
          d.k,     d.k,    d.k,    d.pad, d.pad, d.pad};
}

// Registered entry points: backend-tagged span + dispatch counter,
// then the shared driver.

void SimdConv1dFwd(const Conv1dDims& d, const Tensor& x, const Tensor& w,
                   Tensor* out) {
  ET_TRACE_SPAN("conv1d.fwd.simd");
  ET_METRIC_COUNTER_ADD("kernel.conv1d_fwd.simd", 1);
  SimdConvForward(GeomFrom(d), x, w, out);
}
void SimdConv1dBwd(const Conv1dDims& d, const Tensor& x, const Tensor& w,
                   const Tensor& gout, Tensor* gx, Tensor* gw) {
  ET_TRACE_SPAN("conv1d.bwd.simd");
  ET_METRIC_COUNTER_ADD("kernel.conv1d_bwd.simd", 1);
  SimdConvBackward(GeomFrom(d), x, w, gout, gx, gw);
}
void SimdConv2dFwd(const Conv2dDims& d, const Tensor& x, const Tensor& w,
                   Tensor* out) {
  ET_TRACE_SPAN("conv2d.fwd.simd");
  ET_METRIC_COUNTER_ADD("kernel.conv2d_fwd.simd", 1);
  SimdConvForward(GeomFrom(d), x, w, out);
}
void SimdConv2dBwd(const Conv2dDims& d, const Tensor& x, const Tensor& w,
                   const Tensor& gout, Tensor* gx, Tensor* gw) {
  ET_TRACE_SPAN("conv2d.bwd.simd");
  ET_METRIC_COUNTER_ADD("kernel.conv2d_bwd.simd", 1);
  SimdConvBackward(GeomFrom(d), x, w, gout, gx, gw);
}
void SimdConv3dFwd(const Conv3dDims& d, const Tensor& x, const Tensor& w,
                   Tensor* out) {
  ET_TRACE_SPAN("conv3d.fwd.simd");
  ET_METRIC_COUNTER_ADD("kernel.conv3d_fwd.simd", 1);
  SimdConvForward(GeomFrom(d), x, w, out);
}
void SimdConv3dBwd(const Conv3dDims& d, const Tensor& x, const Tensor& w,
                   const Tensor& gout, Tensor* gx, Tensor* gw) {
  ET_TRACE_SPAN("conv3d.bwd.simd");
  ET_METRIC_COUNTER_ADD("kernel.conv3d_bwd.simd", 1);
  SimdConvBackward(GeomFrom(d), x, w, gout, gx, gw);
}

void SimdMatMul(const MatMulSpec& s, const float* a, const float* b, float* c) {
  ET_TRACE_SPAN("matmul.simd");
  ET_METRIC_COUNTER_ADD("kernel.matmul.simd", 1);
  // Transposed operands are packed contiguous (arena scratch) so the
  // blocked kernel always runs on unit-stride rows.
  ArenaBuffer apack, bpack;
  const float* aeff = a;
  const float* beff = b;
  if (s.trans_a) {
    apack = ArenaBuffer(Arena::Global(), s.m * s.k);
    PackTranspose(a, s.k, s.m, apack.data());
    aeff = apack.data();
  }
  if (s.trans_b) {
    bpack = ArenaBuffer(Arena::Global(), s.k * s.n);
    PackTranspose(b, s.n, s.k, bpack.data());
    beff = bpack.data();
  }
  GemmRowMajor(s.m, s.n, s.k, aeff, s.k, beff, s.n, c, s.n, s.accumulate);
}

}  // namespace

bool SimdKernelsUseAvx2() { return MicroKernels().avx2; }

void RegisterSimdKernels() {
  static const bool registered = [] {
    RegisterKernelFn<Conv1dFwdFn>("conv1d_fwd", "simd", SimdConv1dFwd);
    RegisterKernelFn<Conv1dBwdFn>("conv1d_bwd", "simd", SimdConv1dBwd);
    RegisterKernelFn<Conv2dFwdFn>("conv2d_fwd", "simd", SimdConv2dFwd);
    RegisterKernelFn<Conv2dBwdFn>("conv2d_bwd", "simd", SimdConv2dBwd);
    RegisterKernelFn<Conv3dFwdFn>("conv3d_fwd", "simd", SimdConv3dFwd);
    RegisterKernelFn<Conv3dBwdFn>("conv3d_bwd", "simd", SimdConv3dBwd);
    RegisterKernelFn<MatMulFn>("matmul", "simd", SimdMatMul);
    ET_METRIC_GAUGE_SET("backend.simd.avx2", SimdKernelsUseAvx2() ? 1.0 : 0.0);
    return true;
  }();
  (void)registered;
}

}  // namespace backend
}  // namespace equitensor
