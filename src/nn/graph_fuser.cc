#include "nn/graph_fuser.h"

#include <unordered_set>

#include "util/check.h"

namespace equitensor {
namespace nn {
namespace {

// Consumer counts per node id (output marks are not uses — they are
// checked separately, because an output must stay materialized).
std::vector<int> UseCounts(const std::vector<IrNode>& nodes) {
  std::vector<int> uses(nodes.size(), 0);
  for (const IrNode& n : nodes) {
    for (int in : n.inputs) ++uses[in];
  }
  return uses;
}

}  // namespace

FusionStats FuseGraph(std::vector<IrNode>* nodes,
                      const std::vector<int>& outputs) {
  FusionStats stats;
  stats.nodes_before = static_cast<int>(nodes->size());
  std::unordered_set<int> is_output(outputs.begin(), outputs.end());
  auto fusable = [&](int id, const std::vector<int>& uses) {
    return uses[id] == 1 && is_output.count(id) == 0;
  };

  // Rule 1: collapse conv → bias (→ act). The terminal node (act, or
  // bias when no activation follows) is rewritten in place so every
  // downstream edge stays valid; interior nodes orphan.
  {
    const std::vector<int> uses = UseCounts(*nodes);
    // Bias nodes consumed by an act-terminated fusion must not match
    // the bias-terminated rule afterwards.
    std::unordered_set<int> absorbed;
    for (size_t i = 0; i < nodes->size(); ++i) {
      IrNode& act_node = (*nodes)[i];
      if (act_node.op != IrOp::kAct) continue;
      const int bias_id = act_node.inputs[0];
      const IrNode& bias_node = (*nodes)[bias_id];
      if (bias_node.op != IrOp::kBias || !fusable(bias_id, uses)) continue;
      const int conv_id = bias_node.inputs[0];
      const IrNode& conv_node = (*nodes)[conv_id];
      if (conv_node.op != IrOp::kConv || !fusable(conv_id, uses)) continue;
      act_node.op = IrOp::kFusedConvBiasAct;
      act_node.inputs = conv_node.inputs;
      act_node.spatial_rank = conv_node.spatial_rank;
      act_node.weight = conv_node.weight;
      act_node.bias = bias_node.bias;
      // Detach the orphans so later passes' use counts see the real
      // consumer set (the orphaned conv would otherwise keep its
      // producer — e.g. a concat — looking multi-use).
      (*nodes)[bias_id].inputs.clear();
      (*nodes)[conv_id].inputs.clear();
      absorbed.insert(bias_id);
      ++stats.conv_bias_act;
    }
    for (size_t i = 0; i < nodes->size(); ++i) {
      IrNode& bias_node = (*nodes)[i];
      if (bias_node.op != IrOp::kBias || absorbed.count(static_cast<int>(i))) {
        continue;
      }
      const int conv_id = bias_node.inputs[0];
      const IrNode& conv_node = (*nodes)[conv_id];
      if (conv_node.op != IrOp::kConv || !fusable(conv_id, uses)) continue;
      bias_node.op = IrOp::kFusedConvBiasAct;
      bias_node.inputs = conv_node.inputs;
      bias_node.spatial_rank = conv_node.spatial_rank;
      bias_node.weight = conv_node.weight;
      bias_node.act = Activation::kLinear;
      (*nodes)[conv_id].inputs.clear();
      ++stats.conv_bias_act;
    }
  }

  // Rule 2: fold a single-consumer concat into its fused consumer's
  // input gather. Rank 3 only — that is the shape the gather kernel
  // implements, and the models' encoder concats are all rank 3.
  {
    const std::vector<int> uses = UseCounts(*nodes);
    for (IrNode& fused : *nodes) {
      if (fused.op != IrOp::kFusedConvBiasAct || fused.spatial_rank != 3) {
        continue;
      }
      const int concat_id = fused.inputs[0];
      const IrNode& concat = (*nodes)[concat_id];
      if (concat.op != IrOp::kConcat || !fusable(concat_id, uses)) continue;
      fused.op = IrOp::kFusedConcatConvBiasAct;
      fused.inputs = concat.inputs;
      ++stats.concat_folds;
    }
  }

  return stats;
}

}  // namespace nn
}  // namespace equitensor
