#ifndef EQUITENSOR_NN_INIT_H_
#define EQUITENSOR_NN_INIT_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace equitensor {
namespace nn {

/// Glorot/Xavier uniform initialization: U(-limit, limit) with
/// limit = sqrt(6 / (fan_in + fan_out)).
Tensor GlorotUniform(std::vector<int64_t> shape, int64_t fan_in,
                     int64_t fan_out, Rng& rng);

/// Orthogonal-ish recurrent init: scaled normal (used for LSTM weights).
Tensor ScaledNormal(std::vector<int64_t> shape, double stddev, Rng& rng);

}  // namespace nn
}  // namespace equitensor

#endif  // EQUITENSOR_NN_INIT_H_
