#include "nn/serialize.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <unordered_map>
#include <unordered_set>

#include "util/check.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace equitensor {
namespace nn {
namespace {

constexpr char kMagic[4] = {'E', 'T', 'C', 'K'};
constexpr char kFooterTag[4] = {'K', 'C', 'T', 'E'};
constexpr uint32_t kVersionV1 = 1;
constexpr uint32_t kVersionV2 = 2;
constexpr uint32_t kEndianMarker = 0x01020304u;

constexpr uint64_t kMaxNameLen = 1u << 20;
constexpr uint32_t kMaxRank = 16;
constexpr uint64_t kMaxDim = 1ull << 40;
// Total-element cap: combined with the remaining-bytes check below it
// bounds allocations by the actual file size, so a crafted header can
// neither overflow the volume computation nor trigger a huge alloc.
constexpr int64_t kMaxElements = int64_t{1} << 40;

void AppendRaw(std::string* out, const void* data, size_t size) {
  if (size == 0) return;  // data may be null for empty vectors
  out->append(static_cast<const char*>(data), size);
}

void AppendU32(std::string* out, uint32_t value) {
  AppendRaw(out, &value, sizeof(value));
}

void AppendU64(std::string* out, uint64_t value) {
  AppendRaw(out, &value, sizeof(value));
}

/// Bounds-checked forward reader over an in-memory byte buffer.
class Cursor {
 public:
  Cursor(const char* data, size_t size) : data_(data), size_(size) {}

  size_t remaining() const { return size_ - pos_; }
  size_t pos() const { return pos_; }

  bool ReadRaw(void* out, size_t size) {
    if (remaining() < size) return false;
    if (size > 0) std::memcpy(out, data_ + pos_, size);
    pos_ += size;
    return true;
  }

  bool ReadU32(uint32_t* value) { return ReadRaw(value, sizeof(*value)); }
  bool ReadU64(uint64_t* value) { return ReadRaw(value, sizeof(*value)); }

  bool ReadString(uint64_t max_len, std::string* out) {
    uint64_t len = 0;
    if (!ReadU64(&len) || len > max_len || remaining() < len) return false;
    out->assign(data_ + pos_, len);
    pos_ += len;
    return true;
  }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

void AppendTensorRecord(std::string* out, const std::string& name,
                        const Tensor& tensor) {
  AppendU64(out, name.size());
  AppendRaw(out, name.data(), name.size());
  AppendU32(out, static_cast<uint32_t>(tensor.rank()));
  for (int d = 0; d < tensor.rank(); ++d) {
    AppendU64(out, static_cast<uint64_t>(tensor.dim(d)));
  }
  AppendRaw(out, tensor.data(),
            static_cast<size_t>(tensor.size()) * sizeof(float));
}

bool ReadTensorRecord(Cursor* cursor, std::string* name, Tensor* tensor) {
  if (!cursor->ReadString(kMaxNameLen, name)) return false;
  uint32_t rank = 0;
  if (!cursor->ReadU32(&rank) || rank > kMaxRank) return false;
  std::vector<int64_t> shape;
  shape.reserve(rank);
  int64_t volume = 1;
  for (uint32_t d = 0; d < rank; ++d) {
    uint64_t dim = 0;
    if (!cursor->ReadU64(&dim) || dim == 0 || dim > kMaxDim) return false;
    shape.push_back(static_cast<int64_t>(dim));
    // Overflow-checked accumulation: rank-16 headers with 2^40 dims
    // must be rejected, not wrapped into a small bogus volume.
    if (__builtin_mul_overflow(volume, static_cast<int64_t>(dim), &volume) ||
        volume > kMaxElements) {
      return false;
    }
  }
  const uint64_t payload_bytes = static_cast<uint64_t>(volume) * sizeof(float);
  if (cursor->remaining() < payload_bytes) return false;
  std::vector<float> data(static_cast<size_t>(volume));
  if (!cursor->ReadRaw(data.data(), payload_bytes)) return false;
  *tensor = Tensor::FromData(std::move(shape), std::move(data));
  return true;
}

bool ReadFileBytes(const std::string& path, std::string* out) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file) return false;
  const std::streamsize size = file.tellg();
  if (size < 0) return false;
  out->resize(static_cast<size_t>(size));
  file.seekg(0);
  file.read(out->data(), size);
  return static_cast<bool>(file);
}

int64_t g_write_failure_after_bytes = -1;

/// Writes `bytes` to a temp file next to `path`, fsyncs, and renames
/// it over `path`. Any failure removes the temp file and leaves the
/// previous `path` contents (if any) intact.
bool WriteFileAtomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) {
    ET_LOG(Warning) << "checkpoint: cannot create " << tmp << ": "
                    << std::strerror(errno);
    return false;
  }
  size_t limit = bytes.size();
  bool injected_failure = false;
  if (g_write_failure_after_bytes >= 0 &&
      static_cast<uint64_t>(g_write_failure_after_bytes) < limit) {
    limit = static_cast<size_t>(g_write_failure_after_bytes);
    injected_failure = true;
  }
  bool ok = true;
  size_t offset = 0;
  while (offset < limit) {
    const ssize_t n = ::write(fd, bytes.data() + offset, limit - offset);
    if (n < 0) {
      if (errno == EINTR) continue;
      ET_LOG(Warning) << "checkpoint: write to " << tmp << " failed: "
                      << std::strerror(errno);
      ok = false;
      break;
    }
    offset += static_cast<size_t>(n);
  }
  if (injected_failure) ok = false;
  if (ok && ::fsync(fd) != 0) ok = false;
  if (::close(fd) != 0) ok = false;
  if (!ok) {
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ET_LOG(Warning) << "checkpoint: rename " << tmp << " -> " << path
                    << " failed: " << std::strerror(errno);
    ::unlink(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace

namespace internal {
void SetWriteFailureAfterBytesForTesting(int64_t bytes) {
  g_write_failure_after_bytes = bytes;
}
}  // namespace internal

const Tensor* Checkpoint::FindTensor(const std::string& name) const {
  for (const auto& [n, t] : tensors) {
    if (n == name) return &t;
  }
  return nullptr;
}

const std::string* Checkpoint::FindMetadata(const std::string& key) const {
  for (const auto& [k, v] : metadata) {
    if (k == key) return &v;
  }
  return nullptr;
}

uint32_t Crc32(const void* data, size_t size, uint32_t crc) {
  static const auto table = [] {
    std::vector<uint32_t> t(256);
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  const auto* bytes = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

std::string EncodeCheckpoint(const Checkpoint& checkpoint) {
  std::string out;
  AppendRaw(&out, kMagic, sizeof(kMagic));
  AppendU32(&out, kVersionV2);
  AppendU32(&out, kEndianMarker);
  AppendU64(&out, checkpoint.tensors.size());
  for (const auto& [name, tensor] : checkpoint.tensors) {
    AppendTensorRecord(&out, name, tensor);
  }
  AppendU64(&out, checkpoint.metadata.size());
  for (const auto& [key, value] : checkpoint.metadata) {
    AppendU64(&out, key.size());
    AppendRaw(&out, key.data(), key.size());
    AppendU64(&out, value.size());
    AppendRaw(&out, value.data(), value.size());
  }
  AppendRaw(&out, kFooterTag, sizeof(kFooterTag));
  AppendU32(&out, Crc32(out.data(), out.size()));
  return out;
}

bool DecodeCheckpoint(const std::string& bytes, Checkpoint* checkpoint) {
  checkpoint->tensors.clear();
  checkpoint->metadata.clear();

  Cursor cursor(bytes.data(), bytes.size());
  char magic[4];
  if (!cursor.ReadRaw(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    ET_LOG(Warning) << "checkpoint: bad magic";
    return false;
  }
  uint32_t version = 0;
  if (!cursor.ReadU32(&version)) return false;

  size_t body_end = bytes.size();
  if (version == kVersionV2) {
    uint32_t endian = 0;
    if (!cursor.ReadU32(&endian) || endian != kEndianMarker) {
      ET_LOG(Warning) << "checkpoint: endianness marker mismatch "
                      << "(file written on an incompatible host?)";
      return false;
    }
    // Verify the integrity footer before trusting any record header.
    const size_t footer = sizeof(kFooterTag) + sizeof(uint32_t);
    if (bytes.size() < cursor.pos() + footer) {
      ET_LOG(Warning) << "checkpoint: truncated (no footer)";
      return false;
    }
    body_end = bytes.size() - footer;
    if (std::memcmp(bytes.data() + body_end, kFooterTag,
                    sizeof(kFooterTag)) != 0) {
      ET_LOG(Warning) << "checkpoint: missing footer tag (truncated write?)";
      return false;
    }
    uint32_t stored_crc = 0;
    std::memcpy(&stored_crc, bytes.data() + body_end + sizeof(kFooterTag),
                sizeof(stored_crc));
    const uint32_t actual_crc =
        Crc32(bytes.data(), body_end + sizeof(kFooterTag));
    if (stored_crc != actual_crc) {
      ET_LOG(Warning) << "checkpoint: CRC mismatch (corrupt file)";
      return false;
    }
  } else if (version != kVersionV1) {
    ET_LOG(Warning) << "checkpoint: unsupported version " << version;
    return false;
  }

  Cursor body(bytes.data(), body_end);
  ET_CHECK(body.ReadRaw(magic, sizeof(magic)));  // re-skip the header
  ET_CHECK(body.ReadU32(&version));
  if (version == kVersionV2) {
    uint32_t endian = 0;
    ET_CHECK(body.ReadU32(&endian));
  }

  uint64_t tensor_count = 0;
  if (!body.ReadU64(&tensor_count)) return false;
  for (uint64_t i = 0; i < tensor_count; ++i) {
    std::string name;
    Tensor tensor;
    if (!ReadTensorRecord(&body, &name, &tensor)) {
      ET_LOG(Warning) << "checkpoint: malformed tensor record " << i;
      checkpoint->tensors.clear();
      return false;
    }
    checkpoint->tensors.emplace_back(std::move(name), std::move(tensor));
  }
  if (version == kVersionV2) {
    uint64_t meta_count = 0;
    if (!body.ReadU64(&meta_count)) return false;
    for (uint64_t i = 0; i < meta_count; ++i) {
      std::string key, value;
      if (!body.ReadString(kMaxNameLen, &key) ||
          !body.ReadString(kMaxNameLen * 16, &value)) {
        ET_LOG(Warning) << "checkpoint: malformed metadata record " << i;
        checkpoint->tensors.clear();
        checkpoint->metadata.clear();
        return false;
      }
      checkpoint->metadata.emplace_back(std::move(key), std::move(value));
    }
  }
  if (body.remaining() != 0) {
    ET_LOG(Warning) << "checkpoint: " << body.remaining()
                    << " trailing bytes after last record";
    checkpoint->tensors.clear();
    checkpoint->metadata.clear();
    return false;
  }
  return true;
}

bool SaveCheckpoint(const std::string& path, const Checkpoint& checkpoint) {
  ET_TRACE_SPAN("checkpoint.save");
  const std::string bytes = EncodeCheckpoint(checkpoint);
  if (!WriteFileAtomic(path, bytes)) return false;
  ET_METRIC_COUNTER_ADD("checkpoint.saves", 1);
  ET_METRIC_COUNTER_ADD("checkpoint.bytes_written", bytes.size());
  return true;
}

bool LoadCheckpoint(const std::string& path, Checkpoint* checkpoint) {
  ET_TRACE_SPAN("checkpoint.load");
  std::string bytes;
  if (!ReadFileBytes(path, &bytes)) {
    ET_LOG(Warning) << "checkpoint: cannot read " << path;
    return false;
  }
  if (!DecodeCheckpoint(bytes, checkpoint)) {
    ET_METRIC_COUNTER_ADD("checkpoint.rejects", 1);
    ET_LOG(Warning) << "checkpoint: rejected " << path;
    return false;
  }
  ET_METRIC_COUNTER_ADD("checkpoint.loads", 1);
  ET_METRIC_COUNTER_ADD("checkpoint.bytes_read", bytes.size());
  return true;
}

std::string EncodeDoubles(const std::vector<double>& values) {
  std::string out;
  AppendRaw(&out, values.data(), values.size() * sizeof(double));
  return out;
}

bool DecodeDoubles(const std::string& bytes, std::vector<double>* values) {
  if (bytes.size() % sizeof(double) != 0) return false;
  values->resize(bytes.size() / sizeof(double));
  if (!bytes.empty()) std::memcpy(values->data(), bytes.data(), bytes.size());
  return true;
}

std::string EncodeU64s(const std::vector<uint64_t>& values) {
  std::string out;
  AppendRaw(&out, values.data(), values.size() * sizeof(uint64_t));
  return out;
}

bool DecodeU64s(const std::string& bytes, std::vector<uint64_t>* values) {
  if (bytes.size() % sizeof(uint64_t) != 0) return false;
  values->resize(bytes.size() / sizeof(uint64_t));
  if (!bytes.empty()) std::memcpy(values->data(), bytes.data(), bytes.size());
  return true;
}

std::string EncodeI64(int64_t value) {
  std::string out;
  AppendRaw(&out, &value, sizeof(value));
  return out;
}

bool DecodeI64(const std::string& bytes, int64_t* value) {
  if (bytes.size() != sizeof(*value)) return false;
  std::memcpy(value, bytes.data(), sizeof(*value));
  return true;
}

bool SaveTensors(const std::string& path,
                 const std::vector<std::pair<std::string, Tensor>>& tensors) {
  Checkpoint checkpoint;
  checkpoint.tensors = tensors;
  return SaveCheckpoint(path, checkpoint);
}

bool LoadTensors(const std::string& path,
                 std::vector<std::pair<std::string, Tensor>>* tensors) {
  Checkpoint checkpoint;
  if (!LoadCheckpoint(path, &checkpoint)) return false;
  *tensors = std::move(checkpoint.tensors);
  return true;
}

bool SaveModule(const std::string& path, const Module& module) {
  Checkpoint checkpoint;
  for (auto& [name, param] : module.NamedParameters()) {
    checkpoint.tensors.emplace_back(name, param.value());
  }
  return SaveCheckpoint(path, checkpoint);
}

bool RestoreModuleFromCheckpoint(const Checkpoint& checkpoint,
                                 const std::string& prefix, Module* module) {
  auto named = module->NamedParameters();

  // Index the checkpoint entries under `prefix` by their bare name.
  std::unordered_map<std::string, const Tensor*> by_name;
  std::vector<std::string> ckpt_names;
  for (const auto& [full_name, tensor] : checkpoint.tensors) {
    if (full_name.size() < prefix.size() ||
        full_name.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    std::string bare = full_name.substr(prefix.size());
    by_name[bare] = &tensor;
    ckpt_names.push_back(std::move(bare));
  }

  // Pass 1: resolve every module parameter to a checkpoint tensor
  // (by name, or positionally for v1 "param_<i>" files), validating
  // shapes. Nothing is assigned until everything checks out, so a bad
  // checkpoint never leaves the module half-mutated.
  std::vector<const Tensor*> resolved(named.size(), nullptr);
  bool ok = true;
  std::unordered_set<std::string> used;
  for (size_t i = 0; i < named.size(); ++i) {
    const auto it = by_name.find(named[i].name);
    if (it == by_name.end()) {
      ok = false;
      continue;
    }
    resolved[i] = it->second;
    used.insert(named[i].name);
  }

  if (!ok && ckpt_names.size() == named.size()) {
    // v1 fallback: index-named entries map positionally.
    bool all_indexed = true;
    for (size_t i = 0; i < ckpt_names.size(); ++i) {
      if (ckpt_names[i] != "param_" + std::to_string(i)) {
        all_indexed = false;
        break;
      }
    }
    if (all_indexed) {
      ET_LOG(Info) << "checkpoint: index-named v1 entries, matching "
                   << named.size() << " parameters positionally";
      for (size_t i = 0; i < named.size(); ++i) {
        resolved[i] = by_name.at(ckpt_names[i]);
        used.insert(ckpt_names[i]);
      }
      ok = true;
    }
  }

  if (!ok) {
    for (size_t i = 0; i < named.size(); ++i) {
      if (resolved[i] == nullptr) {
        ET_LOG(Warning) << "checkpoint: missing parameter '" << prefix
                        << named[i].name << "'";
      }
    }
  }
  for (const std::string& name : ckpt_names) {
    if (!used.count(name)) {
      ET_LOG(Warning) << "checkpoint: extra entry '" << prefix << name
                      << "' not present in the module";
      ok = false;
    }
  }
  if (!ok) return false;

  for (size_t i = 0; i < named.size(); ++i) {
    if (!resolved[i]->SameShape(named[i].param.value())) {
      ET_LOG(Warning) << "checkpoint: parameter '" << prefix << named[i].name
                      << "' shape mismatch: checkpoint "
                      << resolved[i]->ShapeString() << " vs module "
                      << named[i].param.value().ShapeString();
      ok = false;
    }
  }
  if (!ok) return false;

  // Pass 2: everything validated; assign.
  for (size_t i = 0; i < named.size(); ++i) {
    named[i].param.mutable_value() = *resolved[i];
  }
  return true;
}

bool LoadModule(const std::string& path, Module* module) {
  Checkpoint checkpoint;
  if (!LoadCheckpoint(path, &checkpoint)) return false;
  return RestoreModuleFromCheckpoint(checkpoint, "", module);
}

bool SaveTensor(const std::string& path, const Tensor& tensor) {
  return SaveTensors(path, {{"tensor", tensor}});
}

bool LoadTensor(const std::string& path, Tensor* tensor) {
  std::vector<std::pair<std::string, Tensor>> tensors;
  if (!LoadTensors(path, &tensors) || tensors.size() != 1) return false;
  *tensor = std::move(tensors[0].second);
  return true;
}

}  // namespace nn
}  // namespace equitensor
