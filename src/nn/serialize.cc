#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "util/check.h"
#include "util/logging.h"

namespace equitensor {
namespace nn {
namespace {

constexpr char kMagic[4] = {'E', 'T', 'C', 'K'};
constexpr uint32_t kVersion = 1;

void WriteU32(std::ostream& os, uint32_t value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

void WriteU64(std::ostream& os, uint64_t value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

bool ReadU32(std::istream& is, uint32_t* value) {
  is.read(reinterpret_cast<char*>(value), sizeof(*value));
  return static_cast<bool>(is);
}

bool ReadU64(std::istream& is, uint64_t* value) {
  is.read(reinterpret_cast<char*>(value), sizeof(*value));
  return static_cast<bool>(is);
}

}  // namespace

bool SaveTensors(const std::string& path,
                 const std::vector<std::pair<std::string, Tensor>>& tensors) {
  std::ofstream file(path, std::ios::binary);
  if (!file) return false;
  file.write(kMagic, sizeof(kMagic));
  WriteU32(file, kVersion);
  WriteU64(file, tensors.size());
  for (const auto& [name, tensor] : tensors) {
    WriteU64(file, name.size());
    file.write(name.data(), static_cast<std::streamsize>(name.size()));
    WriteU32(file, static_cast<uint32_t>(tensor.rank()));
    for (int d = 0; d < tensor.rank(); ++d) {
      WriteU64(file, static_cast<uint64_t>(tensor.dim(d)));
    }
    file.write(reinterpret_cast<const char*>(tensor.data()),
               static_cast<std::streamsize>(tensor.size() * sizeof(float)));
  }
  return static_cast<bool>(file);
}

bool LoadTensors(const std::string& path,
                 std::vector<std::pair<std::string, Tensor>>* tensors) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return false;
  char magic[4];
  file.read(magic, sizeof(magic));
  if (!file || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    ET_LOG(Warning) << "bad checkpoint magic in " << path;
    return false;
  }
  uint32_t version = 0;
  if (!ReadU32(file, &version) || version != kVersion) {
    ET_LOG(Warning) << "unsupported checkpoint version in " << path;
    return false;
  }
  uint64_t count = 0;
  if (!ReadU64(file, &count)) return false;
  tensors->clear();
  tensors->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t name_len = 0;
    if (!ReadU64(file, &name_len) || name_len > (1u << 20)) return false;
    std::string name(name_len, '\0');
    file.read(name.data(), static_cast<std::streamsize>(name_len));
    uint32_t rank = 0;
    if (!ReadU32(file, &rank) || rank > 16) return false;
    std::vector<int64_t> shape;
    int64_t volume = 1;
    for (uint32_t d = 0; d < rank; ++d) {
      uint64_t dim = 0;
      if (!ReadU64(file, &dim) || dim == 0 || dim > (1ull << 40)) return false;
      shape.push_back(static_cast<int64_t>(dim));
      volume *= static_cast<int64_t>(dim);
    }
    std::vector<float> data(static_cast<size_t>(volume));
    file.read(reinterpret_cast<char*>(data.data()),
              static_cast<std::streamsize>(data.size() * sizeof(float)));
    if (!file) return false;
    tensors->emplace_back(std::move(name),
                          Tensor::FromData(std::move(shape), std::move(data)));
  }
  return true;
}

bool SaveModule(const std::string& path, const Module& module) {
  std::vector<std::pair<std::string, Tensor>> tensors;
  const auto params = module.Parameters();
  tensors.reserve(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    tensors.emplace_back("param_" + std::to_string(i), params[i].value());
  }
  return SaveTensors(path, tensors);
}

bool LoadModule(const std::string& path, Module* module) {
  std::vector<std::pair<std::string, Tensor>> tensors;
  if (!LoadTensors(path, &tensors)) return false;
  auto params = module->Parameters();
  if (tensors.size() != params.size()) {
    ET_LOG(Warning) << "checkpoint has " << tensors.size()
                    << " tensors but module expects " << params.size();
    return false;
  }
  for (size_t i = 0; i < params.size(); ++i) {
    if (!tensors[i].second.SameShape(params[i].value())) {
      ET_LOG(Warning) << "parameter " << i << " shape mismatch: checkpoint "
                      << tensors[i].second.ShapeString() << " vs module "
                      << params[i].value().ShapeString();
      return false;
    }
  }
  for (size_t i = 0; i < params.size(); ++i) {
    params[i].mutable_value() = std::move(tensors[i].second);
  }
  return true;
}

bool SaveTensor(const std::string& path, const Tensor& tensor) {
  return SaveTensors(path, {{"tensor", tensor}});
}

bool LoadTensor(const std::string& path, Tensor* tensor) {
  std::vector<std::pair<std::string, Tensor>> tensors;
  if (!LoadTensors(path, &tensors) || tensors.size() != 1) return false;
  *tensor = std::move(tensors[0].second);
  return true;
}

}  // namespace nn
}  // namespace equitensor
