#ifndef EQUITENSOR_NN_GRAPH_H_
#define EQUITENSOR_NN_GRAPH_H_

#include <memory>
#include <vector>

#include "nn/layers.h"
#include "tensor/tensor.h"

namespace equitensor {
namespace nn {

/// Graph-convolution support — the paper's §6 future-work direction
/// ("handling sparse datasets using graph convolutional networks").
/// Cells become graph nodes; spatial convolutions are replaced by
/// propagation over a weighted adjacency, which respects the street
/// network instead of the raster neighborhood.

/// Symmetrically normalized propagation matrix of Kipf & Welling:
/// Â = D^(-1/2) (A + I) D^(-1/2), with A a dense non-negative
/// adjacency [N, N] (self-loops added here).
Tensor NormalizeAdjacency(const Tensor& adjacency);

/// One graph-convolution layer: X' = act(Â X W + b) with node features
/// X [N_nodes, F_in] (or batched [B, N_nodes, F_in] applied per item).
class GraphConv : public Module {
 public:
  /// `normalized_adjacency` is Â from NormalizeAdjacency; copied in.
  GraphConv(Tensor normalized_adjacency, int64_t in_features,
            int64_t out_features, Rng& rng,
            Activation act = Activation::kRelu);

  /// x: [N_nodes, F_in] -> [N_nodes, F_out].
  Variable Forward(const Variable& x) const;

  std::vector<Variable> Parameters() const override {
    return {weight_, bias_};
  }
  int64_t node_count() const { return adjacency_.dim(0); }

 private:
  Tensor adjacency_;  // Â, constant
  Variable weight_;   // [F_in, F_out]
  Variable bias_;     // [F_out]
  Activation act_;
};

/// Two-layer GCN encoder (the standard Kipf & Welling stack) mapping
/// node features to node embeddings over a fixed graph.
class GcnEncoder : public Module {
 public:
  GcnEncoder(const Tensor& adjacency, int64_t in_features, int64_t hidden,
             int64_t out_features, Rng& rng);

  Variable Forward(const Variable& x) const;
  std::vector<Variable> Parameters() const override;

 private:
  std::unique_ptr<GraphConv> layer1_;
  std::unique_ptr<GraphConv> layer2_;
};

}  // namespace nn
}  // namespace equitensor

#endif  // EQUITENSOR_NN_GRAPH_H_
