#include "nn/kernels_naive.h"

#include <algorithm>

#include "nn/backend_registry.h"
#include "util/arena.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace equitensor {
namespace backend {
namespace {

// The original eager conv kernels (moved here from autograd/conv_ops.cc
// verbatim), templated over an executor so the same loop bodies serve
// two backends: `reference` runs each index space inline on the
// calling thread, `parallel` partitions it over the global pool. Both
// follow the owner-computes scheme of DESIGN.md §8 — every output
// element is reduced in serial order inside its owning chunk — so the
// two backends are bitwise-identical to each other at any thread
// count.

struct SerialExec {
  template <typename Body>
  void operator()(int64_t begin, int64_t end, int64_t /*grain*/,
                  const Body& body) const {
    if (begin < end) body(begin, end);
  }
};

struct ParallelExec {
  template <typename Body>
  void operator()(int64_t begin, int64_t end, int64_t grain,
                  const Body& body) const {
    ParallelFor(begin, end, grain, body);
  }
};

template <typename Exec>
void Conv1dFwdImpl(const Conv1dDims& d, const Tensor& x, const Tensor& w,
                   Tensor* out) {
  Exec exec;
  exec(0, d.batch * d.cout, GrainForCost(d.cin * d.k * d.t),
       [&](int64_t i0, int64_t i1) {
         for (int64_t i = i0; i < i1; ++i) {
           const int64_t n = i / d.cout;
           const int64_t co = i % d.cout;
           float* dst = out->data() + (n * d.cout + co) * d.t;
           for (int64_t ci = 0; ci < d.cin; ++ci) {
             const float* src = x.data() + (n * d.cin + ci) * d.t;
             const float* wrow = w.data() + (co * d.cin + ci) * d.k;
             for (int64_t kk = 0; kk < d.k; ++kk) {
               const float wv = wrow[kk];
               const int64_t dt = kk - d.pad;
               const int64_t t0 = std::max<int64_t>(0, -dt);
               const int64_t t1 = std::min<int64_t>(d.t, d.t - dt);
               for (int64_t t = t0; t < t1; ++t) dst[t] += wv * src[t + dt];
             }
           }
         }
       });
}

template <typename Exec>
void Conv1dBwdImpl(const Conv1dDims& d, const Tensor& x, const Tensor& w,
                   const Tensor& gout, Tensor* gx, Tensor* gw) {
  Exec exec;
  if (gx) {
    exec(0, d.batch * d.cin, GrainForCost(d.cout * d.k * d.t),
         [&](int64_t i0, int64_t i1) {
           for (int64_t i = i0; i < i1; ++i) {
             const int64_t n = i / d.cin;
             const int64_t ci = i % d.cin;
             float* gsrc = gx->data() + (n * d.cin + ci) * d.t;
             for (int64_t co = 0; co < d.cout; ++co) {
               const float* g = gout.data() + (n * d.cout + co) * d.t;
               const float* wrow = w.data() + (co * d.cin + ci) * d.k;
               for (int64_t kk = 0; kk < d.k; ++kk) {
                 const float wv = wrow[kk];
                 const int64_t dt = kk - d.pad;
                 const int64_t t0 = std::max<int64_t>(0, -dt);
                 const int64_t t1 = std::min<int64_t>(d.t, d.t - dt);
                 for (int64_t t = t0; t < t1; ++t) gsrc[t + dt] += wv * g[t];
               }
             }
           }
         });
  }
  if (gw) {
    exec(0, d.cout * d.cin, GrainForCost(d.batch * d.k * d.t),
         [&](int64_t i0, int64_t i1) {
           for (int64_t i = i0; i < i1; ++i) {
             const int64_t co = i / d.cin;
             const int64_t ci = i % d.cin;
             float* gwrow = gw->data() + (co * d.cin + ci) * d.k;
             for (int64_t n = 0; n < d.batch; ++n) {
               const float* g = gout.data() + (n * d.cout + co) * d.t;
               const float* src = x.data() + (n * d.cin + ci) * d.t;
               for (int64_t kk = 0; kk < d.k; ++kk) {
                 const int64_t dt = kk - d.pad;
                 const int64_t t0 = std::max<int64_t>(0, -dt);
                 const int64_t t1 = std::min<int64_t>(d.t, d.t - dt);
                 double acc = 0.0;
                 for (int64_t t = t0; t < t1; ++t) acc += g[t] * src[t + dt];
                 gwrow[kk] += static_cast<float>(acc);
               }
             }
           }
         });
  }
}

template <typename Exec>
void Conv2dFwdImpl(const Conv2dDims& d, const Tensor& x, const Tensor& wt,
                   Tensor* out) {
  Exec exec;
  const int64_t plane = d.w * d.h;
  exec(0, d.batch * d.cout, GrainForCost(d.cin * d.k * d.k * plane),
       [&](int64_t i0, int64_t i1) {
         for (int64_t i = i0; i < i1; ++i) {
           const int64_t n = i / d.cout;
           const int64_t co = i % d.cout;
           float* dst = out->data() + (n * d.cout + co) * plane;
           for (int64_t ci = 0; ci < d.cin; ++ci) {
             const float* src = x.data() + (n * d.cin + ci) * plane;
             const float* wmat = wt.data() + (co * d.cin + ci) * d.k * d.k;
             for (int64_t kx = 0; kx < d.k; ++kx) {
               const int64_t dxo = kx - d.pad;
               const int64_t x0 = std::max<int64_t>(0, -dxo);
               const int64_t x1 = std::min<int64_t>(d.w, d.w - dxo);
               for (int64_t ky = 0; ky < d.k; ++ky) {
                 const float wv = wmat[kx * d.k + ky];
                 const int64_t dyo = ky - d.pad;
                 const int64_t y0 = std::max<int64_t>(0, -dyo);
                 const int64_t y1 = std::min<int64_t>(d.h, d.h - dyo);
                 for (int64_t xx = x0; xx < x1; ++xx) {
                   const float* srow = src + (xx + dxo) * d.h + dyo;
                   float* drow = dst + xx * d.h;
                   for (int64_t yy = y0; yy < y1; ++yy) {
                     drow[yy] += wv * srow[yy];
                   }
                 }
               }
             }
           }
         }
       });
}

template <typename Exec>
void Conv2dBwdImpl(const Conv2dDims& d, const Tensor& x, const Tensor& wt,
                   const Tensor& gout, Tensor* gx, Tensor* gw) {
  Exec exec;
  const int64_t plane = d.w * d.h;
  if (gx) {
    exec(0, d.batch * d.cin, GrainForCost(d.cout * d.k * d.k * plane),
         [&](int64_t i0, int64_t i1) {
           for (int64_t i = i0; i < i1; ++i) {
             const int64_t n = i / d.cin;
             const int64_t ci = i % d.cin;
             float* gsrc = gx->data() + (n * d.cin + ci) * plane;
             for (int64_t co = 0; co < d.cout; ++co) {
               const float* g = gout.data() + (n * d.cout + co) * plane;
               const float* wmat = wt.data() + (co * d.cin + ci) * d.k * d.k;
               for (int64_t kx = 0; kx < d.k; ++kx) {
                 const int64_t dxo = kx - d.pad;
                 const int64_t x0 = std::max<int64_t>(0, -dxo);
                 const int64_t x1 = std::min<int64_t>(d.w, d.w - dxo);
                 for (int64_t ky = 0; ky < d.k; ++ky) {
                   const int64_t dyo = ky - d.pad;
                   const int64_t y0 = std::max<int64_t>(0, -dyo);
                   const int64_t y1 = std::min<int64_t>(d.h, d.h - dyo);
                   const float wv = wmat[kx * d.k + ky];
                   for (int64_t xx = x0; xx < x1; ++xx) {
                     const float* grow = g + xx * d.h;
                     float* gsrow = gsrc + (xx + dxo) * d.h + dyo;
                     for (int64_t yy = y0; yy < y1; ++yy) {
                       gsrow[yy] += wv * grow[yy];
                     }
                   }
                 }
               }
             }
           }
         });
  }
  if (gw) {
    exec(0, d.cout * d.cin, GrainForCost(d.batch * d.k * d.k * plane),
         [&](int64_t i0, int64_t i1) {
           for (int64_t i = i0; i < i1; ++i) {
             const int64_t co = i / d.cin;
             const int64_t ci = i % d.cin;
             float* gwmat = gw->data() + (co * d.cin + ci) * d.k * d.k;
             for (int64_t n = 0; n < d.batch; ++n) {
               const float* g = gout.data() + (n * d.cout + co) * plane;
               const float* src = x.data() + (n * d.cin + ci) * plane;
               for (int64_t kx = 0; kx < d.k; ++kx) {
                 const int64_t dxo = kx - d.pad;
                 const int64_t x0 = std::max<int64_t>(0, -dxo);
                 const int64_t x1 = std::min<int64_t>(d.w, d.w - dxo);
                 for (int64_t ky = 0; ky < d.k; ++ky) {
                   const int64_t dyo = ky - d.pad;
                   const int64_t y0 = std::max<int64_t>(0, -dyo);
                   const int64_t y1 = std::min<int64_t>(d.h, d.h - dyo);
                   double acc = 0.0;
                   for (int64_t xx = x0; xx < x1; ++xx) {
                     const float* grow = g + xx * d.h;
                     const float* srow = src + (xx + dxo) * d.h + dyo;
                     for (int64_t yy = y0; yy < y1; ++yy) {
                       acc += grow[yy] * srow[yy];
                     }
                   }
                   gwmat[kx * d.k + ky] += static_cast<float>(acc);
                 }
               }
             }
           }
         });
  }
}

template <typename Exec>
void Conv3dFwdImpl(const Conv3dDims& d, const Tensor& x, const Tensor& wt,
                   Tensor* out) {
  Exec exec;
  const int64_t vol = d.w * d.h * d.t;
  const int64_t k3 = d.k * d.k * d.k;
  exec(0, d.batch * d.cout, GrainForCost(d.cin * k3 * vol),
       [&](int64_t i0, int64_t i1) {
         for (int64_t i = i0; i < i1; ++i) {
           const int64_t n = i / d.cout;
           const int64_t co = i % d.cout;
           float* dst = out->data() + (n * d.cout + co) * vol;
           for (int64_t ci = 0; ci < d.cin; ++ci) {
             const float* src = x.data() + (n * d.cin + ci) * vol;
             const float* wcube = wt.data() + (co * d.cin + ci) * k3;
             for (int64_t kx = 0; kx < d.k; ++kx) {
               const int64_t dxo = kx - d.pad;
               const int64_t x0 = std::max<int64_t>(0, -dxo);
               const int64_t x1 = std::min<int64_t>(d.w, d.w - dxo);
               for (int64_t ky = 0; ky < d.k; ++ky) {
                 const int64_t dyo = ky - d.pad;
                 const int64_t y0 = std::max<int64_t>(0, -dyo);
                 const int64_t y1 = std::min<int64_t>(d.h, d.h - dyo);
                 for (int64_t kt = 0; kt < d.k; ++kt) {
                   const float wv = wcube[(kx * d.k + ky) * d.k + kt];
                   const int64_t dto = kt - d.pad;
                   const int64_t t0 = std::max<int64_t>(0, -dto);
                   const int64_t t1 = std::min<int64_t>(d.t, d.t - dto);
                   for (int64_t xx = x0; xx < x1; ++xx) {
                     for (int64_t yy = y0; yy < y1; ++yy) {
                       const float* srow =
                           src + ((xx + dxo) * d.h + (yy + dyo)) * d.t + dto;
                       float* drow = dst + (xx * d.h + yy) * d.t;
                       for (int64_t tt = t0; tt < t1; ++tt) {
                         drow[tt] += wv * srow[tt];
                       }
                     }
                   }
                 }
               }
             }
           }
         }
       });
}

template <typename Exec>
void Conv3dBwdImpl(const Conv3dDims& d, const Tensor& x, const Tensor& wt,
                   const Tensor& gout, Tensor* gx, Tensor* gw) {
  Exec exec;
  const int64_t vol = d.w * d.h * d.t;
  const int64_t k3 = d.k * d.k * d.k;
  if (gx) {
    exec(0, d.batch * d.cin, GrainForCost(d.cout * k3 * vol),
         [&](int64_t i0, int64_t i1) {
           for (int64_t i = i0; i < i1; ++i) {
             const int64_t n = i / d.cin;
             const int64_t ci = i % d.cin;
             float* gsrc = gx->data() + (n * d.cin + ci) * vol;
             for (int64_t co = 0; co < d.cout; ++co) {
               const float* g = gout.data() + (n * d.cout + co) * vol;
               const float* wcube = wt.data() + (co * d.cin + ci) * k3;
               for (int64_t kx = 0; kx < d.k; ++kx) {
                 const int64_t dxo = kx - d.pad;
                 const int64_t x0 = std::max<int64_t>(0, -dxo);
                 const int64_t x1 = std::min<int64_t>(d.w, d.w - dxo);
                 for (int64_t ky = 0; ky < d.k; ++ky) {
                   const int64_t dyo = ky - d.pad;
                   const int64_t y0 = std::max<int64_t>(0, -dyo);
                   const int64_t y1 = std::min<int64_t>(d.h, d.h - dyo);
                   for (int64_t kt = 0; kt < d.k; ++kt) {
                     const int64_t dto = kt - d.pad;
                     const int64_t t0 = std::max<int64_t>(0, -dto);
                     const int64_t t1 = std::min<int64_t>(d.t, d.t - dto);
                     const float wv = wcube[(kx * d.k + ky) * d.k + kt];
                     for (int64_t xx = x0; xx < x1; ++xx) {
                       for (int64_t yy = y0; yy < y1; ++yy) {
                         float* gsrow =
                             gsrc + ((xx + dxo) * d.h + (yy + dyo)) * d.t + dto;
                         const float* grow = g + (xx * d.h + yy) * d.t;
                         for (int64_t tt = t0; tt < t1; ++tt) {
                           gsrow[tt] += wv * grow[tt];
                         }
                       }
                     }
                   }
                 }
               }
             }
           }
         });
  }
  if (gw) {
    exec(0, d.cout * d.cin, GrainForCost(d.batch * k3 * vol),
         [&](int64_t i0, int64_t i1) {
           for (int64_t i = i0; i < i1; ++i) {
             const int64_t co = i / d.cin;
             const int64_t ci = i % d.cin;
             float* gwcube = gw->data() + (co * d.cin + ci) * k3;
             for (int64_t n = 0; n < d.batch; ++n) {
               const float* g = gout.data() + (n * d.cout + co) * vol;
               const float* src = x.data() + (n * d.cin + ci) * vol;
               for (int64_t kx = 0; kx < d.k; ++kx) {
                 const int64_t dxo = kx - d.pad;
                 const int64_t x0 = std::max<int64_t>(0, -dxo);
                 const int64_t x1 = std::min<int64_t>(d.w, d.w - dxo);
                 for (int64_t ky = 0; ky < d.k; ++ky) {
                   const int64_t dyo = ky - d.pad;
                   const int64_t y0 = std::max<int64_t>(0, -dyo);
                   const int64_t y1 = std::min<int64_t>(d.h, d.h - dyo);
                   for (int64_t kt = 0; kt < d.k; ++kt) {
                     const int64_t dto = kt - d.pad;
                     const int64_t t0 = std::max<int64_t>(0, -dto);
                     const int64_t t1 = std::min<int64_t>(d.t, d.t - dto);
                     double acc = 0.0;
                     for (int64_t xx = x0; xx < x1; ++xx) {
                       for (int64_t yy = y0; yy < y1; ++yy) {
                         const float* srow =
                             src + ((xx + dxo) * d.h + (yy + dyo)) * d.t + dto;
                         const float* grow = g + (xx * d.h + yy) * d.t;
                         for (int64_t tt = t0; tt < t1; ++tt) {
                           acc += grow[tt] * srow[tt];
                         }
                       }
                     }
                     gwcube[(kx * d.k + ky) * d.k + kt] +=
                         static_cast<float>(acc);
                   }
                 }
               }
             }
           }
         });
  }
}

// Row-parallel triple loop (moved from tensor/tensor_ops.cc) extended
// with transpose flags and accumulate. Transposed operands are packed
// contiguous through the arena — the same memory walk the old
// Transpose2d-then-MatMul hot path performed (so `parallel` results
// stay bitwise identical to it), minus its per-call allocations. Each
// output row is owned by one chunk and its k-loop runs in serial order.
template <typename Exec>
void MatMulImpl(const MatMulSpec& s, const float* a, const float* b, float* c) {
  Exec exec;
  ArenaBuffer apack, bpack;
  if (s.trans_a) {
    apack = ArenaBuffer(Arena::Global(), s.m * s.k);
    float* dst = apack.data();
    for (int64_t kk = 0; kk < s.k; ++kk) {
      for (int64_t i = 0; i < s.m; ++i) dst[i * s.k + kk] = a[kk * s.m + i];
    }
    a = dst;
  }
  if (s.trans_b) {
    bpack = ArenaBuffer(Arena::Global(), s.k * s.n);
    float* dst = bpack.data();
    for (int64_t j = 0; j < s.n; ++j) {
      for (int64_t kk = 0; kk < s.k; ++kk) dst[kk * s.n + j] = b[j * s.k + kk];
    }
    b = dst;
  }
  if (!s.accumulate) std::fill(c, c + s.m * s.n, 0.0f);
  exec(0, s.m, GrainForCost(s.k * s.n), [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      float* crow = c + i * s.n;
      for (int64_t kk = 0; kk < s.k; ++kk) {
        const float av = a[i * s.k + kk];
        if (av == 0.0f) continue;
        const float* brow = b + kk * s.n;
        for (int64_t j = 0; j < s.n; ++j) crow[j] += av * brow[j];
      }
    }
  });
}

// Per-backend entry wrappers: the trace span and dispatch counter live
// with the kernel so /metrics and chrome-trace are backend-tagged.

void RefConv1dFwd(const Conv1dDims& d, const Tensor& x, const Tensor& w,
                  Tensor* out) {
  ET_TRACE_SPAN("conv1d.fwd.ref");
  ET_METRIC_COUNTER_ADD("kernel.conv1d_fwd.reference", 1);
  Conv1dFwdImpl<SerialExec>(d, x, w, out);
}
void RefConv1dBwd(const Conv1dDims& d, const Tensor& x, const Tensor& w,
                  const Tensor& gout, Tensor* gx, Tensor* gw) {
  ET_TRACE_SPAN("conv1d.bwd.ref");
  ET_METRIC_COUNTER_ADD("kernel.conv1d_bwd.reference", 1);
  Conv1dBwdImpl<SerialExec>(d, x, w, gout, gx, gw);
}
void RefConv2dFwd(const Conv2dDims& d, const Tensor& x, const Tensor& w,
                  Tensor* out) {
  ET_TRACE_SPAN("conv2d.fwd.ref");
  ET_METRIC_COUNTER_ADD("kernel.conv2d_fwd.reference", 1);
  Conv2dFwdImpl<SerialExec>(d, x, w, out);
}
void RefConv2dBwd(const Conv2dDims& d, const Tensor& x, const Tensor& w,
                  const Tensor& gout, Tensor* gx, Tensor* gw) {
  ET_TRACE_SPAN("conv2d.bwd.ref");
  ET_METRIC_COUNTER_ADD("kernel.conv2d_bwd.reference", 1);
  Conv2dBwdImpl<SerialExec>(d, x, w, gout, gx, gw);
}
void RefConv3dFwd(const Conv3dDims& d, const Tensor& x, const Tensor& w,
                  Tensor* out) {
  ET_TRACE_SPAN("conv3d.fwd.ref");
  ET_METRIC_COUNTER_ADD("kernel.conv3d_fwd.reference", 1);
  Conv3dFwdImpl<SerialExec>(d, x, w, out);
}
void RefConv3dBwd(const Conv3dDims& d, const Tensor& x, const Tensor& w,
                  const Tensor& gout, Tensor* gx, Tensor* gw) {
  ET_TRACE_SPAN("conv3d.bwd.ref");
  ET_METRIC_COUNTER_ADD("kernel.conv3d_bwd.reference", 1);
  Conv3dBwdImpl<SerialExec>(d, x, w, gout, gx, gw);
}
void RefMatMul(const MatMulSpec& s, const float* a, const float* b, float* c) {
  ET_TRACE_SPAN("matmul.ref");
  ET_METRIC_COUNTER_ADD("kernel.matmul.reference", 1);
  MatMulImpl<SerialExec>(s, a, b, c);
}

// The parallel spans keep the pre-registry names ("conv3d.fwd", ...)
// so existing trace/telemetry trajectories stay comparable across PRs.
void ParConv1dFwd(const Conv1dDims& d, const Tensor& x, const Tensor& w,
                  Tensor* out) {
  ET_TRACE_SPAN("conv1d.fwd");
  ET_METRIC_COUNTER_ADD("kernel.conv1d_fwd.parallel", 1);
  Conv1dFwdImpl<ParallelExec>(d, x, w, out);
}
void ParConv1dBwd(const Conv1dDims& d, const Tensor& x, const Tensor& w,
                  const Tensor& gout, Tensor* gx, Tensor* gw) {
  ET_TRACE_SPAN("conv1d.bwd");
  ET_METRIC_COUNTER_ADD("kernel.conv1d_bwd.parallel", 1);
  Conv1dBwdImpl<ParallelExec>(d, x, w, gout, gx, gw);
}
void ParConv2dFwd(const Conv2dDims& d, const Tensor& x, const Tensor& w,
                  Tensor* out) {
  ET_TRACE_SPAN("conv2d.fwd");
  ET_METRIC_COUNTER_ADD("kernel.conv2d_fwd.parallel", 1);
  Conv2dFwdImpl<ParallelExec>(d, x, w, out);
}
void ParConv2dBwd(const Conv2dDims& d, const Tensor& x, const Tensor& w,
                  const Tensor& gout, Tensor* gx, Tensor* gw) {
  ET_TRACE_SPAN("conv2d.bwd");
  ET_METRIC_COUNTER_ADD("kernel.conv2d_bwd.parallel", 1);
  Conv2dBwdImpl<ParallelExec>(d, x, w, gout, gx, gw);
}
void ParConv3dFwd(const Conv3dDims& d, const Tensor& x, const Tensor& w,
                  Tensor* out) {
  ET_TRACE_SPAN("conv3d.fwd");
  ET_METRIC_COUNTER_ADD("kernel.conv3d_fwd.parallel", 1);
  Conv3dFwdImpl<ParallelExec>(d, x, w, out);
}
void ParConv3dBwd(const Conv3dDims& d, const Tensor& x, const Tensor& w,
                  const Tensor& gout, Tensor* gx, Tensor* gw) {
  ET_TRACE_SPAN("conv3d.bwd");
  ET_METRIC_COUNTER_ADD("kernel.conv3d_bwd.parallel", 1);
  Conv3dBwdImpl<ParallelExec>(d, x, w, gout, gx, gw);
}
void ParMatMul(const MatMulSpec& s, const float* a, const float* b, float* c) {
  ET_TRACE_SPAN("matmul");
  ET_METRIC_COUNTER_ADD("kernel.matmul.parallel", 1);
  MatMulImpl<ParallelExec>(s, a, b, c);
}

}  // namespace

void RegisterNaiveKernels() {
  static const bool registered = [] {
    RegisterKernelFn<Conv1dFwdFn>("conv1d_fwd", "reference", RefConv1dFwd);
    RegisterKernelFn<Conv1dBwdFn>("conv1d_bwd", "reference", RefConv1dBwd);
    RegisterKernelFn<Conv2dFwdFn>("conv2d_fwd", "reference", RefConv2dFwd);
    RegisterKernelFn<Conv2dBwdFn>("conv2d_bwd", "reference", RefConv2dBwd);
    RegisterKernelFn<Conv3dFwdFn>("conv3d_fwd", "reference", RefConv3dFwd);
    RegisterKernelFn<Conv3dBwdFn>("conv3d_bwd", "reference", RefConv3dBwd);
    RegisterKernelFn<MatMulFn>("matmul", "reference", RefMatMul);

    RegisterKernelFn<Conv1dFwdFn>("conv1d_fwd", "parallel", ParConv1dFwd);
    RegisterKernelFn<Conv1dBwdFn>("conv1d_bwd", "parallel", ParConv1dBwd);
    RegisterKernelFn<Conv2dFwdFn>("conv2d_fwd", "parallel", ParConv2dFwd);
    RegisterKernelFn<Conv2dBwdFn>("conv2d_bwd", "parallel", ParConv2dBwd);
    RegisterKernelFn<Conv3dFwdFn>("conv3d_fwd", "parallel", ParConv3dFwd);
    RegisterKernelFn<Conv3dBwdFn>("conv3d_bwd", "parallel", ParConv3dBwd);
    RegisterKernelFn<MatMulFn>("matmul", "parallel", ParMatMul);
    return true;
  }();
  (void)registered;
}

}  // namespace backend
}  // namespace equitensor
