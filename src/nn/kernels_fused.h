#ifndef EQUITENSOR_NN_KERNELS_FUSED_H_
#define EQUITENSOR_NN_KERNELS_FUSED_H_

#include <cstdint>

namespace equitensor {
namespace backend {

enum class Act : int32_t;

/// Registers the `fused` kernel set (DESIGN.md §15):
///  - conv_bias_act_{fwd,bwd}: one dispatch for conv → +bias →
///    activation. Forward drives the simd conv lowering and applies
///    the bias/activation as an in-place epilogue on the conv output,
///    so the pre-activation tensor is never materialized; backward
///    forms g_pre = gout · act'(y) once in arena scratch and feeds the
///    simd conv backward directly.
///  - concat_conv_bias_act_{fwd,bwd}: the same kernel reading its
///    input through per-channel gather tables that point straight at
///    the concatenated source parts, so the concat intermediate (and
///    its gradient) never exist.
///  - base ops (conv1d/2d/3d, matmul) delegate to the `simd` kernels —
///    resolved per call so test shims keep working — which makes
///    `fused` a complete backend.
///
/// Bitwise story: the fused conv IS the simd conv (identical im2col
/// values, identical blocked GEMM), and the epilogues replicate the
/// eager ops' float expressions element for element, so a fused-graph
/// trajectory is bitwise equal to the simd backend's eager trajectory
/// at any thread count. Idempotent; called by the registry.
void RegisterFusedKernels();

/// Elementwise pieces of the fusion, exposed so the registry's
/// decomposed dispatch path (non-fused backends and the check-mode
/// reference) replays the exact same float expressions:
///  - epilogue: y[i] = act(y[i] + bias[channel]), in place — eager
///    AddBias followed by Activate, element for element;
///  - grad-pre: gpre[i] = gout[i] * act'(y[i]) — the eager activation
///    backward (derivative from the OUTPUT value);
///  - bias grad: gb[c] += per-(channel, sample) double-accumulated
///    sums of gpre — the eager AddBias backward association.
void FusedBiasActEpilogue(Act act, int64_t batch, int64_t channels,
                          int64_t inner, const float* bias, float* y);
void FusedGradPreAct(Act act, const float* gout, const float* y, int64_t size,
                     float* gpre);
void FusedAccumulateBiasGrad(int64_t batch, int64_t channels, int64_t inner,
                             const float* gpre, float* gb);

}  // namespace backend
}  // namespace equitensor

#endif  // EQUITENSOR_NN_KERNELS_FUSED_H_
