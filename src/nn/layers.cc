#include "nn/layers.h"

#include <cmath>

#include "nn/backend_registry.h"
#include "nn/graph_ir.h"
#include "nn/init.h"
#include "util/check.h"

namespace equitensor {
namespace nn {

Variable Activate(const Variable& x, Activation act) {
  switch (act) {
    case Activation::kLinear:
      return x;
    case Activation::kRelu:
      return ag::Relu(x);
    case Activation::kSigmoid:
      return ag::Sigmoid(x);
    case Activation::kTanh:
      return ag::Tanh(x);
  }
  ET_CHECK(false) << "unknown activation";
  return x;
}

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng,
               Activation act)
    : weight_(GlorotUniform({in_features, out_features}, in_features,
                            out_features, rng),
              /*requires_grad=*/true),
      bias_(Tensor({out_features}), /*requires_grad=*/true),
      act_(act) {}

Variable Linear::Forward(const Variable& x) const {
  Variable y = ag::MatMul(x, weight_);
  y = ag::AddBias(y, bias_, /*channel_axis=*/1);
  y = Activate(y, act_);
  if (!observe_name_.empty() && ag::HooksActive()) {
    y = ag::Observe(observe_name_, y);
  }
  return y;
}

Conv::Conv(int spatial_rank, int64_t in_channels, int64_t out_channels,
           int64_t kernel, Rng& rng, Activation act)
    : spatial_rank_(spatial_rank),
      in_channels_(in_channels),
      out_channels_(out_channels),
      act_(act) {
  ET_CHECK(spatial_rank >= 1 && spatial_rank <= 3);
  ET_CHECK_EQ(kernel % 2, 1) << "same padding requires odd kernels";
  std::vector<int64_t> w_shape = {out_channels, in_channels};
  int64_t kernel_volume = 1;
  for (int d = 0; d < spatial_rank; ++d) {
    w_shape.push_back(kernel);
    kernel_volume *= kernel;
  }
  weight_ = Variable(GlorotUniform(std::move(w_shape),
                                   in_channels * kernel_volume,
                                   out_channels * kernel_volume, rng),
                     /*requires_grad=*/true);
  bias_ = Variable(Tensor({out_channels}), /*requires_grad=*/true);
}

Variable Conv::Forward(const Variable& x) const {
  Variable y;
  switch (spatial_rank_) {
    case 1:
      y = ag::Conv1d(x, weight_);
      break;
    case 2:
      y = ag::Conv2d(x, weight_);
      break;
    case 3:
      y = ag::Conv3d(x, weight_);
      break;
    default:
      ET_CHECK(false);
  }
  y = ag::AddBias(y, bias_, /*channel_axis=*/1);
  return Activate(y, act_);
}

ConvStack::ConvStack(int spatial_rank, int64_t in_channels,
                     std::vector<int64_t> filters, int64_t kernel, Rng& rng,
                     Activation final_act) {
  ET_CHECK(!filters.empty());
  int64_t channels = in_channels;
  for (size_t i = 0; i < filters.size(); ++i) {
    const Activation act =
        (i + 1 == filters.size()) ? final_act : Activation::kRelu;
    layers_.push_back(
        std::make_unique<Conv>(spatial_rank, channels, filters[i], kernel,
                               rng, act));
    channels = filters[i];
  }
  ir_ = std::make_unique<GraphIr>();
  const int input = ir_->AddInput(in_channels);
  ir_->MarkOutput(AppendToIr(ir_.get(), input));
  ir_->Seal();
}

ConvStack::~ConvStack() = default;

int ConvStack::AppendToIr(GraphIr* ir, int input) const {
  int id = input;
  for (const auto& layer : layers_) {
    id = ir->AddConv(id, layer->spatial_rank(), layer->weight());
    id = ir->AddBias(id, layer->bias());
    id = ir->AddAct(id, layer->activation());
  }
  return id;
}

Variable ConvStack::Forward(const Variable& x) const {
  // The observation check is hoisted out of the layer loop: with no
  // hooks registered a forward pass costs one relaxed atomic load.
  const bool observing = !observe_name_.empty() && ag::HooksActive();
  // Fused-graph backends execute the sealed schedule — unless hooks
  // need the eager chain's intermediates.
  if (!observing && backend::FusedGraphActive()) return ir_->Run1(x);
  Variable y = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    y = layers_[i]->Forward(y);
    if (observing) {
      y = ag::Observe(observe_name_ + ".conv" + std::to_string(i), y);
    }
  }
  return y;
}

std::vector<Variable> ConvStack::Parameters() const {
  std::vector<Variable> params;
  for (const auto& layer : layers_) {
    for (const Variable& p : layer->Parameters()) params.push_back(p);
  }
  return params;
}

std::vector<NamedParameter> ConvStack::NamedParameters() const {
  std::vector<NamedParameter> named;
  for (size_t i = 0; i < layers_.size(); ++i) {
    AppendNamedParameters("conv" + std::to_string(i) + ".", *layers_[i],
                          &named);
  }
  return named;
}

}  // namespace nn
}  // namespace equitensor
