#ifndef EQUITENSOR_NN_OPTIMIZER_H_
#define EQUITENSOR_NN_OPTIMIZER_H_

#include <string>
#include <vector>

#include "autograd/variable.h"
#include "tensor/tensor.h"

namespace equitensor {
namespace nn {

struct Checkpoint;  // nn/serialize.h

/// Configuration for Adam with exponential learning-rate decay, the
/// optimizer the paper uses (§4.4: "Adam optimizers using an
/// exponential learning rate decay strategy").
struct AdamOptions {
  double learning_rate = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  /// lr(step) = learning_rate * decay_rate^(step / decay_steps).
  double decay_rate = 0.96;
  int64_t decay_steps = 1000;
  /// Optional global-norm gradient clipping; <= 0 disables.
  double clip_norm = 0.0;
};

/// Adam optimizer over a fixed set of parameter handles.
class Adam {
 public:
  Adam(std::vector<Variable> params, AdamOptions options = {});

  /// Applies one update from the parameters' accumulated gradients and
  /// clears them. Parameters whose gradient never materialized (e.g. a
  /// frozen branch) are skipped.
  void Step();

  /// Clears all parameter gradients without updating.
  void ZeroGrad();

  /// Current decayed learning rate.
  double CurrentLearningRate() const;

  int64_t step_count() const { return step_; }

  /// Serializes the full optimizer state — both moment vectors and the
  /// step count — into `checkpoint` as "<prefix>.m<k>" / "<prefix>.v<k>"
  /// tensors plus a "<prefix>.step" metadata record, so a resumed run
  /// updates parameters bitwise-identically.
  void AppendState(const std::string& prefix, Checkpoint* checkpoint) const;

  /// Restores state written by AppendState against the parameter set
  /// this optimizer was built over. Validates presence and shapes of
  /// every slot before mutating anything; returns false on mismatch.
  bool RestoreState(const std::string& prefix, const Checkpoint& checkpoint);

  /// When enabled, Step() additionally records the L2 norm of the
  /// update it applied to each parameter (0 for parameters it skipped)
  /// — the numerator of the update/weight ratio the per-layer training
  /// stats stream (DESIGN.md §11). Off by default; the tracked Step is
  /// otherwise bitwise-identical to the untracked one.
  void EnableUpdateNormTracking(bool enabled);

  /// Per-parameter update norms of the most recent tracked Step(), in
  /// parameter order. Empty until a tracked step has run.
  const std::vector<double>& last_update_norms() const {
    return last_update_norms_;
  }

 private:
  std::vector<Variable> params_;
  AdamOptions options_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  int64_t step_ = 0;
  bool track_update_norms_ = false;
  std::vector<double> last_update_norms_;
};

/// Plain SGD, used by tests as a reference optimizer.
class Sgd {
 public:
  Sgd(std::vector<Variable> params, double learning_rate);

  void Step();
  void ZeroGrad();

 private:
  std::vector<Variable> params_;
  double learning_rate_;
};

}  // namespace nn
}  // namespace equitensor

#endif  // EQUITENSOR_NN_OPTIMIZER_H_
