#ifndef EQUITENSOR_NN_LSTM_H_
#define EQUITENSOR_NN_LSTM_H_

#include <string>
#include <utility>
#include <vector>

#include "nn/module.h"
#include "util/rng.h"

namespace equitensor {
namespace nn {

/// Hidden and cell state of an LSTM, each [N, hidden].
struct LstmState {
  Variable h;
  Variable c;
};

/// Single LSTM cell with fused gate weights, used by the seq-to-seq
/// bike-count baseline ([48] in the paper). Gate order: input, forget,
/// cell, output. The forget-gate bias is initialized to 1.
class LstmCell : public Module {
 public:
  LstmCell(int64_t input_size, int64_t hidden_size, Rng& rng);

  /// Zero-filled initial state for a batch of `n`.
  LstmState InitialState(int64_t n) const;

  /// One timestep: consumes x [N, input] and the previous state,
  /// returns the next state.
  LstmState Step(const Variable& x, const LstmState& state) const;

  std::vector<Variable> Parameters() const override { return {weight_, bias_}; }
  std::vector<NamedParameter> NamedParameters() const override {
    return {{"weight", weight_}, {"bias", bias_}};
  }

  int64_t input_size() const { return input_size_; }
  int64_t hidden_size() const { return hidden_size_; }

  /// Names the cell's per-step outputs as hook observation points
  /// "<name>.gates" / "<name>.h" / "<name>.c" (autograd/hooks.h);
  /// empty (the default) disables observation.
  void SetObserveName(std::string name) { observe_name_ = std::move(name); }

 private:
  int64_t input_size_;
  int64_t hidden_size_;
  Variable weight_;  // [input+hidden, 4*hidden]
  Variable bias_;    // [4*hidden]
  std::string observe_name_;
};

}  // namespace nn
}  // namespace equitensor

#endif  // EQUITENSOR_NN_LSTM_H_
