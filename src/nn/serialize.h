#ifndef EQUITENSOR_NN_SERIALIZE_H_
#define EQUITENSOR_NN_SERIALIZE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "nn/module.h"
#include "tensor/tensor.h"

namespace equitensor {
namespace nn {

/// Binary checkpoint format ("ETCK" magic). Version 2 holds named
/// tensors plus opaque metadata records, an endianness marker, and a
/// CRC32 integrity footer; files are written atomically (temp file +
/// rename) so a crash or full disk never leaves a torn checkpoint
/// behind. Version 1 files (ordered tensors, no footer) written by
/// earlier builds still load. Used to persist trained EquiTensor
/// models, materialized representations, and full training state so
/// long runs survive interruption — the paper's reuse story
/// (Figure 1B) plus the resumable training the production roadmap
/// requires.
///
/// v2 on-disk layout (all integers native-endian, guarded by the
/// marker):
///
///   "ETCK" | u32 version=2 | u32 endian=0x01020304
///   u64 tensor_count
///     per tensor: u64 name_len | name | u32 rank | u64 dim[rank]
///                 | f32 payload[volume]
///   u64 metadata_count
///     per record: u64 key_len | key | u64 value_len | value
///   "KCTE" | u32 crc32(all preceding bytes)

/// A checkpoint in memory: named tensors plus opaque metadata records
/// (both keep insertion order; lookups are by exact name).
struct Checkpoint {
  std::vector<std::pair<std::string, Tensor>> tensors;
  std::vector<std::pair<std::string, std::string>> metadata;

  const Tensor* FindTensor(const std::string& name) const;
  const std::string* FindMetadata(const std::string& key) const;
};

/// Atomically writes `checkpoint` to `path` in v2 format: the bytes go
/// to a temp file in the same directory which is renamed over `path`
/// only after a successful write + fsync. On any failure the temp file
/// is removed and `path` is left untouched. Returns false on failure.
bool SaveCheckpoint(const std::string& path, const Checkpoint& checkpoint);

/// Reads a v1 or v2 checkpoint. Returns false (without modifying
/// `checkpoint` beyond clearing it) on I/O failure, wrong
/// magic/version/endianness, truncation, CRC mismatch, or a malformed
/// header (oversized names, ranks, dims, or element counts).
bool LoadCheckpoint(const std::string& path, Checkpoint* checkpoint);

/// In-memory encode/decode of the v2 byte stream. Decode applies the
/// same validation as LoadCheckpoint; the fault-injection tests build
/// on these.
std::string EncodeCheckpoint(const Checkpoint& checkpoint);
bool DecodeCheckpoint(const std::string& bytes, Checkpoint* checkpoint);

/// CRC32 (IEEE 802.3, reflected). `crc` chains partial computations.
uint32_t Crc32(const void* data, size_t size, uint32_t crc = 0);

/// Raw-byte metadata codecs for numeric state (exact round trips;
/// byte order is covered by the file's endianness marker).
std::string EncodeDoubles(const std::vector<double>& values);
bool DecodeDoubles(const std::string& bytes, std::vector<double>* values);
std::string EncodeU64s(const std::vector<uint64_t>& values);
bool DecodeU64s(const std::string& bytes, std::vector<uint64_t>* values);
std::string EncodeI64(int64_t value);
bool DecodeI64(const std::string& bytes, int64_t* value);

/// Writes named tensors to `path` (v2, atomic). Returns false on
/// failure.
bool SaveTensors(const std::string& path,
                 const std::vector<std::pair<std::string, Tensor>>& tensors);

/// Reads the tensor list of a v1 or v2 checkpoint.
bool LoadTensors(const std::string& path,
                 std::vector<std::pair<std::string, Tensor>>* tensors);

/// Saves a module's parameters under their module-assigned names
/// (Module::NamedParameters).
bool SaveModule(const std::string& path, const Module& module);

/// Restores a module's parameters in place, matching checkpoint
/// entries to the module by name. Every module parameter must be
/// present with a matching shape; missing, extra, or shape-mismatched
/// entries are logged by name and fail the load without mutating the
/// module. v1 checkpoints (index-named "param_<i>" entries) are
/// matched positionally.
bool LoadModule(const std::string& path, Module* module);

/// Matches `checkpoint` tensors prefixed with `prefix` against
/// `module`'s named parameters and assigns them all-or-nothing.
/// LoadModule and the trainer's full-state restore build on this.
bool RestoreModuleFromCheckpoint(const Checkpoint& checkpoint,
                                 const std::string& prefix, Module* module);

/// Convenience wrappers for a single tensor (e.g. a materialized
/// EquiTensor).
bool SaveTensor(const std::string& path, const Tensor& tensor);
bool LoadTensor(const std::string& path, Tensor* tensor);

namespace internal {
/// Testing hook simulating disk-full: the next atomic writes fail
/// after `bytes` payload bytes (negative disables). Used to verify
/// that failed saves never expose a torn checkpoint.
void SetWriteFailureAfterBytesForTesting(int64_t bytes);
}  // namespace internal

}  // namespace nn
}  // namespace equitensor

#endif  // EQUITENSOR_NN_SERIALIZE_H_
