#ifndef EQUITENSOR_NN_SERIALIZE_H_
#define EQUITENSOR_NN_SERIALIZE_H_

#include <string>
#include <utility>
#include <vector>

#include "nn/module.h"
#include "tensor/tensor.h"

namespace equitensor {
namespace nn {

/// Simple binary checkpoint format ("ETCK" magic, version 1,
/// little-endian) holding an ordered list of named tensors. Used to
/// persist trained EquiTensor models and materialized representations
/// so downstream applications can reuse them without retraining —
/// the paper's core reuse story (Figure 1B).

/// Writes named tensors to `path`. Returns false on I/O failure.
bool SaveTensors(const std::string& path,
                 const std::vector<std::pair<std::string, Tensor>>& tensors);

/// Reads a checkpoint written by SaveTensors. Returns false on I/O
/// failure or format mismatch (wrong magic/version, truncation).
bool LoadTensors(const std::string& path,
                 std::vector<std::pair<std::string, Tensor>>* tensors);

/// Saves a module's parameters in Parameters() order.
bool SaveModule(const std::string& path, const Module& module);

/// Restores a module's parameters in place. The checkpoint must hold
/// exactly the module's parameter count with matching shapes (order
/// defines identity); returns false otherwise.
bool LoadModule(const std::string& path, Module* module);

/// Convenience wrappers for a single tensor (e.g. a materialized
/// EquiTensor).
bool SaveTensor(const std::string& path, const Tensor& tensor);
bool LoadTensor(const std::string& path, Tensor* tensor);

}  // namespace nn
}  // namespace equitensor

#endif  // EQUITENSOR_NN_SERIALIZE_H_
