#include "util/perf_counters.h"

#include <atomic>
#include <cstring>
#include <mutex>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#endif

namespace equitensor {
namespace {

std::atomic<bool> g_enabled{false};

// 0 = not probed yet, 1 = available, -1 = unavailable (latched by the
// first group open that fails).
std::atomic<int> g_available{0};

std::mutex g_status_mu;
std::string g_status_reason;  // guarded by g_status_mu

void LatchUnavailable(const std::string& reason) {
  int expected = 0;
  if (g_available.compare_exchange_strong(expected, -1,
                                          std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(g_status_mu);
    g_status_reason = reason;
  }
}

// Bumped by ResetPerfCountersForTesting so threads that latched a
// failed open retry instead of staying dead for the process lifetime.
std::atomic<uint64_t> g_generation{0};

#if defined(__linux__)

// Counter definitions in PerfCounter order: perf_event type + config.
struct EventSpec {
  uint32_t type;
  uint64_t config;
};

const EventSpec kEventSpecs[kNumPerfCounters] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HW_CACHE,
     PERF_COUNT_HW_CACHE_L1D | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
         (PERF_COUNT_HW_CACHE_RESULT_MISS << 16)},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
};

constexpr uint64_t kReadFormat = PERF_FORMAT_GROUP |
                                 PERF_FORMAT_TOTAL_TIME_ENABLED |
                                 PERF_FORMAT_TOTAL_TIME_RUNNING;

int OpenEvent(const EventSpec& spec, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = spec.type;
  attr.config = spec.config;
  attr.read_format = kReadFormat;
  attr.disabled = 0;
  attr.exclude_kernel = 1;  // user-space attribution; also needs less
  attr.exclude_hv = 1;      // privilege under perf_event_paranoid
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, 0, -1, group_fd, 0));
}

// Per-thread counter group. Opened lazily on the thread's first read
// after counters were enabled; closed when the thread exits. Members
// after a failed open: leader == -1 and generation records which
// process generation the failure belongs to.
struct ThreadGroup {
  int fds[kNumPerfCounters] = {-1, -1, -1, -1, -1};
  // Maps read-buffer position -> counter index (events that failed to
  // open individually, e.g. an unsupported cache event on some PMU,
  // are simply absent from the group and report 0).
  int slot_of_counter[kNumPerfCounters] = {-1, -1, -1, -1, -1};
  int opened = 0;
  bool attempted = false;
  uint64_t generation = 0;

  ~ThreadGroup() { Close(); }

  void Close() {
    for (int& fd : fds) {
      if (fd >= 0) close(fd);
      fd = -1;
    }
    for (int& s : slot_of_counter) s = -1;
    opened = 0;
    attempted = false;
  }

  bool Open() {
    attempted = true;
    generation = g_generation.load(std::memory_order_relaxed);
    const int leader = OpenEvent(kEventSpecs[0], -1);
    if (leader < 0) {
      LatchUnavailable(std::string("perf_event_open failed: ") +
                       std::strerror(errno));
      return false;
    }
    fds[0] = leader;
    slot_of_counter[0] = 0;
    opened = 1;
    for (int i = 1; i < kNumPerfCounters; ++i) {
      const int fd = OpenEvent(kEventSpecs[i], leader);
      if (fd < 0) continue;  // partial group: this counter reads as 0
      fds[i] = fd;
      slot_of_counter[i] = opened;
      ++opened;
    }
    g_available.store(1, std::memory_order_relaxed);
    return true;
  }

  bool Read(PerfCounterSample* out) {
    // Layout for PERF_FORMAT_GROUP | TIME_ENABLED | TIME_RUNNING:
    //   u64 nr; u64 time_enabled; u64 time_running; u64 value[nr];
    uint64_t buf[3 + kNumPerfCounters];
    const ssize_t want =
        static_cast<ssize_t>((3 + opened) * sizeof(uint64_t));
    if (read(fds[0], buf, sizeof(buf)) < want) return false;
    const uint64_t enabled = buf[1];
    const uint64_t running = buf[2];
    for (int i = 0; i < kNumPerfCounters; ++i) {
      const int slot = slot_of_counter[i];
      if (slot < 0) {
        out->values[i] = 0;
        continue;
      }
      uint64_t value = buf[3 + slot];
      // Multiplexing correction: when more groups than PMU slots are
      // scheduled, the kernel rotates them; scale by enabled/running
      // to estimate the full-period count.
      if (running > 0 && running < enabled) {
        value = static_cast<uint64_t>(
            static_cast<double>(value) *
            (static_cast<double>(enabled) / static_cast<double>(running)));
      }
      out->values[i] = value;
    }
    out->valid = true;
    return true;
  }
};

thread_local ThreadGroup tls_group;

#endif  // defined(__linux__)

}  // namespace

const char* PerfCounterName(int index) {
  switch (index) {
    case 0:
      return "cycles";
    case 1:
      return "instructions";
    case 2:
      return "l1d_misses";
    case 3:
      return "llc_misses";
    case 4:
      return "branch_misses";
    default:
      return "unknown";
  }
}

void SetPerfCountersEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool PerfCountersEnabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

bool ReadPerfCounters(PerfCounterSample* out) {
  out->valid = false;
  if (!g_enabled.load(std::memory_order_relaxed)) return false;
#if defined(__linux__)
  if (g_available.load(std::memory_order_relaxed) < 0) return false;
  ThreadGroup& group = tls_group;
  if (group.attempted &&
      group.generation != g_generation.load(std::memory_order_relaxed)) {
    group.Close();
  }
  if (!group.attempted && !group.Open()) return false;
  if (group.fds[0] < 0) return false;
  return group.Read(out);
#else
  LatchUnavailable("not built for linux");
  return false;
#endif
}

bool PerfCountersAvailable() {
  const int state = g_available.load(std::memory_order_relaxed);
  if (state != 0) return state > 0;
#if defined(__linux__)
  // Probe with a throwaway group on this thread (tls_group stays
  // untouched so the probe works even while counters are disabled).
  ThreadGroup probe;
  const bool ok = probe.Open();
  return ok;
#else
  LatchUnavailable("not built for linux");
  return false;
#endif
}

std::string PerfCountersStatus() {
  if (g_available.load(std::memory_order_relaxed) == 0) {
    PerfCountersAvailable();  // force the probe so the answer is real
  }
  if (g_available.load(std::memory_order_relaxed) > 0) return "ok";
  std::lock_guard<std::mutex> lock(g_status_mu);
  return g_status_reason.empty() ? "unavailable"
                                 : "unavailable: " + g_status_reason;
}

PerfCounterSample PerfCounterDelta(const PerfCounterSample& start,
                                   const PerfCounterSample& end) {
  PerfCounterSample delta;
  if (!start.valid || !end.valid) return delta;
  for (int i = 0; i < kNumPerfCounters; ++i) {
    delta.values[i] =
        end.values[i] > start.values[i] ? end.values[i] - start.values[i] : 0;
  }
  delta.valid = true;
  return delta;
}

void ResetPerfCountersForTesting() {
  g_available.store(0, std::memory_order_relaxed);
  g_generation.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(g_status_mu);
  g_status_reason.clear();
}

}  // namespace equitensor
