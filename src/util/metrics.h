#ifndef EQUITENSOR_UTIL_METRICS_H_
#define EQUITENSOR_UTIL_METRICS_H_

#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "util/json.h"

namespace equitensor {

/// Process-wide metrics layer (DESIGN.md §10).
///
/// Writes take a lock-free fast path: every metric owns a fixed array
/// of cache-line-padded slots and each thread updates the slot picked
/// by its thread-local index (assigned on first use, wrapping when
/// more threads than slots exist — updates stay correct because every
/// cell is atomic). Readers merge the slots on scrape, so scrapes are
/// O(slots) and never block writers. Metric objects are registered
/// once by name in the global registry and are never destroyed, so a
/// call site may cache the pointer (the `ET_METRIC_*` macros below do
/// exactly that with a function-local static).

namespace metrics_internal {

/// Slot count per metric. Matches the thread pool's practical
/// parallelism; more threads than slots share cells atomically.
constexpr int kSlots = 64;

/// Index of the calling thread's slot (stable for the thread's life).
int ThreadSlot();

struct alignas(64) CounterCell {
  std::atomic<uint64_t> value{0};
};

struct alignas(64) SumCell {
  std::atomic<uint64_t> bits{0};  // double stored as bits, CAS-added
};

/// Atomically adds `delta` to the double stored in `bits`.
void AtomicAddDouble(std::atomic<uint64_t>* bits, double delta);
double LoadDouble(const std::atomic<uint64_t>& bits);

/// Bumps the "metrics_nonfinite_dropped" counter: a NaN/Inf reached a
/// gauge or histogram and was dropped instead of poisoning it. One NaN
/// in a histogram sum would otherwise wipe out every other observation
/// at scrape time.
void NoteNonfiniteDropped();

}  // namespace metrics_internal

/// Monotonically increasing event count.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    cells_[metrics_internal::ThreadSlot()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  /// Sum over all thread slots.
  uint64_t Value() const;

  /// Zeroes every slot (tests only; racing writers may survive).
  void Reset();

 private:
  metrics_internal::CounterCell cells_[metrics_internal::kSlots];
};

/// Last-written instantaneous value (single cell: gauges record state,
/// not per-thread contributions).
class Gauge {
 public:
  /// Non-finite values are dropped (and counted) rather than stored —
  /// a gauge that reads NaN tells a dashboard nothing.
  void Set(double value) {
    if (!std::isfinite(value)) {
      metrics_internal::NoteNonfiniteDropped();
      return;
    }
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    __builtin_memcpy(&bits, &value, sizeof(bits));
    bits_.store(bits, std::memory_order_relaxed);
  }
  double Value() const { return metrics_internal::LoadDouble(bits_); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<uint64_t> bits_{0};
};

/// Fixed-layout histogram: `bounds` are inclusive upper edges of the
/// first N buckets, plus an implicit +inf overflow bucket. The layout
/// is frozen at registration so merged scrapes line up across threads
/// and across runs.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  /// Non-finite values are dropped (and counted via the
  /// "metrics_nonfinite_dropped" counter): one NaN folded into the
  /// running sum would poison Sum()/Mean() for the whole run.
  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts (size = bounds().size() + 1), merged over slots.
  std::vector<uint64_t> BucketCounts() const;
  uint64_t Count() const;
  double Sum() const;
  double Mean() const { return Count() == 0 ? 0.0 : Sum() / Count(); }
  void Reset();

  /// Power-of-`growth` layout from `start` with `count` finite edges —
  /// the default layout for latency-style metrics.
  static std::vector<double> ExponentialBounds(double start, double growth,
                                               int count);

 private:
  struct alignas(64) Slot {
    std::vector<std::atomic<uint64_t>> buckets;
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum_bits{0};
  };

  std::vector<double> bounds_;
  std::vector<Slot> slots_;
};

/// One scraped metric set; names sort lexicographically.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    uint64_t value;
  };
  struct GaugeValue {
    std::string name;
    double value;
  };
  struct HistogramValue {
    std::string name;
    std::vector<double> bounds;
    std::vector<uint64_t> buckets;  // bounds.size() + 1 entries
    uint64_t count;
    double sum;
  };
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;
};

/// Name-keyed owner of every metric in the process. Registration is
/// mutex-protected (slow path, once per call site); updates through
/// the returned pointers are lock-free.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// Returns the uniquely-named metric, creating it on first use. The
  /// pointer stays valid for the process lifetime. A histogram's
  /// bucket layout is fixed by the first registration; later calls
  /// with different bounds get the existing instance.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds = {});

  /// Merges every metric's thread slots into one consistent-enough
  /// snapshot (concurrent writers may land before or after).
  MetricsSnapshot Snapshot() const;

  /// Zeroes all values. Registered metrics (and cached pointers)
  /// survive. Tests only.
  void ResetForTesting();

 private:
  MetricsRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

/// Snapshot -> JSON object {"counters": {...}, "gauges": {...},
/// "histograms": {name: {"bounds": [...], "buckets": [...], "count": n,
/// "sum": s}}}. Part of the JSONL schema contract (DESIGN.md §10).
JsonValue MetricsToJson(const MetricsSnapshot& snapshot);

/// Cached-pointer helpers for hot call sites: the registry lookup
/// happens once per site, then updates are a single atomic op.
#define ET_METRIC_COUNTER_ADD(name, delta)                                 \
  do {                                                                     \
    static ::equitensor::Counter* et_metric_counter =                      \
        ::equitensor::MetricsRegistry::Global().GetCounter(name);          \
    et_metric_counter->Add(delta);                                         \
  } while (0)

#define ET_METRIC_GAUGE_SET(name, value)                                   \
  do {                                                                     \
    static ::equitensor::Gauge* et_metric_gauge =                          \
        ::equitensor::MetricsRegistry::Global().GetGauge(name);            \
    et_metric_gauge->Set(value);                                           \
  } while (0)

}  // namespace equitensor

#endif  // EQUITENSOR_UTIL_METRICS_H_
