#ifndef EQUITENSOR_UTIL_PERF_COUNTERS_H_
#define EQUITENSOR_UTIL_PERF_COUNTERS_H_

#include <cstdint>
#include <string>

namespace equitensor {

/// Hardware performance counters for kernel attribution (DESIGN.md
/// §17). A per-thread `perf_event_open(2)` group — cycles (leader),
/// instructions, L1D read misses, LLC misses, branch misses — read as
/// one snapshot before and after every trace span, so /metrics and
/// /debug/counters can report IPC and miss rates per kernel alongside
/// wall time.
///
/// Degradation contract: the syscall is frequently unavailable
/// (containers without CAP_PERFMON, kernel.perf_event_paranoid >= 3,
/// non-Linux builds). The first failed group open latches a process-
/// wide "unavailable" state; every later read is a cheap no-op that
/// returns an invalid sample, and the serving/telemetry endpoints
/// report the reason string instead of numbers. Nothing else changes:
/// training and serving behave identically with or without counters.
///
/// Overhead contract: disabled (the default) costs one relaxed atomic
/// load per span. Enabled costs two read(2) calls per span — only pay
/// that when attributing, never by default.

/// The fixed counter set, in group/read order.
enum class PerfCounter {
  kCycles = 0,
  kInstructions = 1,
  kL1dMisses = 2,
  kLlcMisses = 3,
  kBranchMisses = 4,
};
constexpr int kNumPerfCounters = 5;

/// Stable lowercase names ("cycles", "instructions", "l1d_misses",
/// "llc_misses", "branch_misses") for metrics and JSON keys.
const char* PerfCounterName(int index);

/// One multiplexing-corrected snapshot of the calling thread's group.
struct PerfCounterSample {
  uint64_t values[kNumPerfCounters] = {0};
  bool valid = false;
};

/// Master runtime switch (default off). Enabling does not itself open
/// any fds; each thread opens its group lazily on its first read.
void SetPerfCountersEnabled(bool enabled);
bool PerfCountersEnabled();

/// Whether the syscall works in this process. Probes by opening a
/// group on the calling thread the first time it is asked (or the
/// first time a read runs); the answer is then latched process-wide.
bool PerfCountersAvailable();

/// Human-readable availability: "ok", or "unavailable: <reason>"
/// (errno text from the first failed open, or "not built for linux").
std::string PerfCountersStatus();

/// Reads the calling thread's counter group. Returns false (and an
/// invalid sample) when counters are disabled or unavailable. Safe to
/// call from any thread; never throws, never blocks on a lock.
bool ReadPerfCounters(PerfCounterSample* out);

/// end - start, per counter, clamped at 0 (multiplexing scaling can
/// make a counter appear to step backwards by a rounding hair).
/// Invalid if either input is invalid.
PerfCounterSample PerfCounterDelta(const PerfCounterSample& start,
                                   const PerfCounterSample& end);

/// Test hook: forget the latched availability and per-thread groups'
/// error state so a test can exercise the probe path again.
void ResetPerfCountersForTesting();

}  // namespace equitensor

#endif  // EQUITENSOR_UTIL_PERF_COUNTERS_H_
