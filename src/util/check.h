#ifndef EQUITENSOR_UTIL_CHECK_H_
#define EQUITENSOR_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace equitensor {

/// Internal helper that prints a fatal-check failure and aborts.
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* condition,
                                     const std::string& message) {
  std::fprintf(stderr, "ET_CHECK failed at %s:%d: %s%s%s\n", file, line,
               condition, message.empty() ? "" : " — ", message.c_str());
  std::abort();
}

namespace internal_check {

/// Stream sink that collects an optional message for a failing check.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* condition)
      : file_(file), line_(line), condition_(condition) {}

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  [[noreturn]] ~CheckMessageBuilder() {
    CheckFailed(file_, line_, condition_, stream_.str());
  }

 private:
  const char* file_;
  int line_;
  const char* condition_;
  std::ostringstream stream_;
};

}  // namespace internal_check
}  // namespace equitensor

/// Fatal assertion for programmer errors (shape mismatches, contract
/// violations). Always enabled, including in release builds; failures
/// indicate bugs, not recoverable conditions. Supports streaming extra
/// context: `ET_CHECK(a == b) << "while merging " << name;`
#define ET_CHECK(condition)                                              \
  if (condition) {                                                       \
  } else                                                                 \
    ::equitensor::internal_check::CheckMessageBuilder(__FILE__, __LINE__, \
                                                      #condition)

/// Convenience binary comparisons that print both operands on failure.
#define ET_CHECK_EQ(a, b) ET_CHECK((a) == (b)) << "lhs=" << (a) << " rhs=" << (b)
#define ET_CHECK_NE(a, b) ET_CHECK((a) != (b)) << "lhs=" << (a) << " rhs=" << (b)
#define ET_CHECK_LT(a, b) ET_CHECK((a) < (b)) << "lhs=" << (a) << " rhs=" << (b)
#define ET_CHECK_LE(a, b) ET_CHECK((a) <= (b)) << "lhs=" << (a) << " rhs=" << (b)
#define ET_CHECK_GT(a, b) ET_CHECK((a) > (b)) << "lhs=" << (a) << " rhs=" << (b)
#define ET_CHECK_GE(a, b) ET_CHECK((a) >= (b)) << "lhs=" << (a) << " rhs=" << (b)

#endif  // EQUITENSOR_UTIL_CHECK_H_
