#ifndef EQUITENSOR_UTIL_JSON_H_
#define EQUITENSOR_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace equitensor {

/// Minimal JSON document model used by the telemetry layer: the
/// trainer's `--metrics_jsonl` sink dumps one object per line, and the
/// tests/tools parse those lines back. Objects preserve insertion
/// order so emitted records are stable and diffable. Numbers are
/// doubles (ints round-trip exactly up to 2^53, ample for epoch
/// counters and byte totals).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool value);
  static JsonValue Number(double value);
  static JsonValue Int(int64_t value) {
    return Number(static_cast<double>(value));
  }
  static JsonValue Str(std::string value);
  static JsonValue Array();
  static JsonValue Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool bool_value() const { return bool_; }
  double number() const { return number_; }
  /// number() rounded to the nearest integer (JSON has no int type).
  int64_t int_value() const;
  const std::string& str() const { return string_; }

  /// Array elements (empty unless type is kArray).
  const std::vector<JsonValue>& items() const { return items_; }
  /// Object members in insertion order (empty unless type is kObject).
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }
  size_t size() const {
    return type_ == Type::kObject ? members_.size() : items_.size();
  }

  /// Appends to an array (aborts if this is not an array).
  void Append(JsonValue value);
  /// Sets an object member, replacing an existing key in place
  /// (aborts if this is not an object).
  void Set(const std::string& key, JsonValue value);

  /// Looks up an object member; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Compact single-line serialization (the JSONL form).
  std::string Dump() const;

  /// Parses a complete JSON document. On failure returns false and
  /// (optionally) describes the first error with its byte offset.
  /// Trailing non-whitespace after the document is an error.
  static bool Parse(const std::string& text, JsonValue* out,
                    std::string* error = nullptr);

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace equitensor

#endif  // EQUITENSOR_UTIL_JSON_H_
