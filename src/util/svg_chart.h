#ifndef EQUITENSOR_UTIL_SVG_CHART_H_
#define EQUITENSOR_UTIL_SVG_CHART_H_

#include <string>
#include <vector>

namespace equitensor {

/// Dependency-free SVG line-chart writer used to turn bench CSVs into
/// the paper's figures (Figure 4/5/6 style). One chart holds several
/// named series over a shared x axis.
class SvgChart {
 public:
  SvgChart(std::string title, std::string x_label, std::string y_label);

  /// Adds one series; x and y must be equal length.
  void AddSeries(const std::string& name, std::vector<double> x,
                 std::vector<double> y);

  /// Adds a horizontal reference line (e.g. a noise ceiling).
  void AddHorizontalLine(const std::string& name, double y);

  /// Renders the complete SVG document.
  std::string Render(int width = 640, int height = 400) const;

  /// Renders to a file. Returns false on I/O failure.
  bool WriteFile(const std::string& path, int width = 640,
                 int height = 400) const;

 private:
  struct Series {
    std::string name;
    std::vector<double> x;
    std::vector<double> y;
    bool horizontal = false;  // y[0] used as reference level
  };
  std::string title_;
  std::string x_label_;
  std::string y_label_;
  std::vector<Series> series_;
};

}  // namespace equitensor

#endif  // EQUITENSOR_UTIL_SVG_CHART_H_
