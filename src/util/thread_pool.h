#ifndef EQUITENSOR_UTIL_THREAD_POOL_H_
#define EQUITENSOR_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace equitensor {

/// Parallel execution layer: a lazily-initialized global worker pool
/// with a chunked parallel-for entry point. This is the substrate the
/// hot kernels (conv forward/backward, matmul, large elementwise loops)
/// are routed through.
///
/// Determinism contract: `ParallelFor` only partitions the *index
/// space*; it never changes what is computed for a given index. Every
/// kernel built on top assigns each output element to exactly one index
/// (owner-computes) and performs any reduction for that element inside
/// the owning chunk, iterating in the same order as the serial code.
/// Results are therefore bitwise-identical for 1, 2, or N threads and
/// identical to the serial reference — gradients included. See
/// DESIGN.md §8.
///
/// Thread-count selection, in priority order:
///   1. `SetNumThreads(n)` (e.g. from the `--threads` CLI flag);
///   2. the `ET_THREADS` environment variable, read once at startup;
///   3. `std::thread::hardware_concurrency()`.
/// `n <= 1` selects the serial fallback: `ParallelFor` runs the body
/// inline on the calling thread and the pool is never materialized.
/// `SetNumThreads(0)` restores automatic selection (env var / cores).

/// Sets the number of threads parallel regions may use (including the
/// calling thread, which always participates). 0 = automatic.
void SetNumThreads(int n);

/// Effective thread count the next parallel region will use (>= 1).
int NumThreads();

/// Runs `fn(chunk_begin, chunk_end)` over a partition of [begin, end)
/// into contiguous chunks of at least `grain` indices (grain < 1 is
/// treated as 1). Chunks execute concurrently on the global pool; the
/// calling thread participates. Falls back to a single inline
/// `fn(begin, end)` call when the range is at most one grain, the
/// effective thread count is 1, or the caller is already inside a
/// parallel region (nested parallelism runs serially).
///
/// The body must treat chunks as independent: it may write only to
/// locations owned by indices in its chunk. An exception thrown by the
/// body is captured and rethrown on the calling thread after all chunks
/// finish; the pool remains usable afterwards.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

/// Small bounded task pool for background work that may *block* (the
/// telemetry server's socket I/O, log shipping). Deliberately separate
/// from the global compute pool above: a handler stuck in a slow
/// `write(2)` must never stall a ParallelFor worker mid-kernel. The
/// queue is bounded so a flood of work degrades by rejection
/// (TrySubmit returns false) instead of by unbounded memory growth —
/// the HTTP layer turns a rejection into `503 Service Unavailable`.
class TaskPool {
 public:
  /// Starts `threads` workers (min 1) with room for `queue_capacity`
  /// pending tasks beyond the ones currently executing.
  TaskPool(int threads, size_t queue_capacity);

  /// Drains nothing: pending tasks not yet started are dropped, the
  /// workers finish their current task and exit.
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Enqueues `task` unless the queue is full or the pool is shutting
  /// down; returns whether the task was accepted.
  bool TrySubmit(std::function<void()> task);

  /// Stops accepting work, waits for started *and queued* tasks to
  /// complete, joins the workers. Idempotent.
  void Shutdown();

  size_t queue_capacity() const { return capacity_; }

 private:
  void WorkerLoop();

  const size_t capacity_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool shutdown_ = false;
};

/// Suggested `grain` for a loop whose per-index cost is roughly
/// `cost_per_item` scalar operations: enough indices per chunk that a
/// chunk amortizes scheduling overhead (~`target_cost` ops). Small
/// problems therefore stay on the serial fast path automatically.
inline int64_t GrainForCost(int64_t cost_per_item,
                            int64_t target_cost = 32768) {
  if (cost_per_item < 1) cost_per_item = 1;
  const int64_t grain = target_cost / cost_per_item;
  return grain < 1 ? 1 : grain;
}

}  // namespace equitensor

#endif  // EQUITENSOR_UTIL_THREAD_POOL_H_
