#include "util/thread_pool.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/trace.h"

namespace equitensor {
namespace {

// One parallel region. Shared (via shared_ptr) between the submitting
// thread and every worker that touches it, so the region outlives any
// straggler still holding a reference after the last chunk completes.
struct ParallelJob {
  const std::function<void(int64_t, int64_t)>* body = nullptr;
  int64_t begin = 0;
  int64_t end = 0;
  int64_t chunk = 1;
  int64_t num_chunks = 0;
  std::atomic<int64_t> next{0};       // Next chunk index to claim.
  std::atomic<int64_t> completed{0};  // Chunks fully processed.
  std::mutex error_mu;
  std::exception_ptr error;  // First exception thrown by the body.
};

// Set while a thread (worker or submitter) executes inside a parallel
// region; nested ParallelFor calls from such a thread run serially.
thread_local bool tls_in_parallel_region = false;

class Pool {
 public:
  ~Pool() { Stop(); }

  // Claims and runs chunks of `job` until none remain.
  static void Work(ParallelJob* job) {
    tls_in_parallel_region = true;
    for (;;) {
      const int64_t c = job->next.fetch_add(1, std::memory_order_relaxed);
      if (c >= job->num_chunks) break;
      const int64_t b = job->begin + c * job->chunk;
      const int64_t e = std::min(job->end, b + job->chunk);
      try {
        (*job->body)(b, e);
      } catch (...) {
        std::lock_guard<std::mutex> guard(job->error_mu);
        if (!job->error) job->error = std::current_exception();
      }
      job->completed.fetch_add(1, std::memory_order_acq_rel);
    }
    tls_in_parallel_region = false;
  }

  // Runs `job` with up to `workers` helper threads plus the caller.
  // Only one region runs at a time (mu_ is held by the submitter).
  void Run(const std::shared_ptr<ParallelJob>& job, int workers) {
    Resize(workers);
    {
      std::lock_guard<std::mutex> lock(job_mu_);
      job_ = job;
      ++generation_;
    }
    wake_cv_.notify_all();
    Work(job.get());
    {
      std::unique_lock<std::mutex> lock(job_mu_);
      done_cv_.wait(lock, [&] {
        return job->completed.load(std::memory_order_acquire) ==
               job->num_chunks;
      });
      job_.reset();
    }
  }

  std::mutex mu_;  // Serializes submitters; held across Run().

 private:
  void Resize(int workers) {
    if (static_cast<int>(threads_.size()) == workers) return;
    Stop();
    stop_ = false;
    threads_.reserve(static_cast<size_t>(workers));
    for (int i = 0; i < workers; ++i) {
      threads_.emplace_back([this, i] {
        SetTraceThreadName("pool.worker" + std::to_string(i));
        WorkerLoop();
      });
    }
  }

  void Stop() {
    {
      std::lock_guard<std::mutex> lock(job_mu_);
      stop_ = true;
      ++generation_;
    }
    wake_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
    threads_.clear();
  }

  void WorkerLoop() {
    uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<ParallelJob> job;
      {
        std::unique_lock<std::mutex> lock(job_mu_);
        wake_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        job = job_;
      }
      if (!job) continue;
      Work(job.get());
      // Waking the submitter needs the lock so the notify cannot slip
      // between its predicate check and its wait.
      if (job->completed.load(std::memory_order_acquire) == job->num_chunks) {
        std::lock_guard<std::mutex> lock(job_mu_);
        done_cv_.notify_all();
      }
    }
  }

  std::mutex job_mu_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<ParallelJob> job_;
  uint64_t generation_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

Pool& GlobalPool() {
  static Pool* pool = new Pool();  // Leaked: workers may outlive main.
  return *pool;
}

int DefaultNumThreads() {
  if (const char* env = std::getenv("ET_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

// 0 = automatic (ET_THREADS env var, then hardware concurrency).
std::atomic<int> g_requested_threads{0};

constexpr int kMaxThreads = 256;

}  // namespace

void SetNumThreads(int n) {
  if (n < 0) n = 0;
  g_requested_threads.store(n, std::memory_order_relaxed);
}

int NumThreads() {
  int n = g_requested_threads.load(std::memory_order_relaxed);
  if (n == 0) {
    static const int auto_threads = DefaultNumThreads();
    n = auto_threads;
  }
  return n > kMaxThreads ? kMaxThreads : n;
}

TaskPool::TaskPool(int threads, size_t queue_capacity)
    : capacity_(queue_capacity) {
  if (threads < 1) threads = 1;
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] {
      SetTraceThreadName("task.worker" + std::to_string(i));
      WorkerLoop();
    });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    queue_.clear();  // Unstarted tasks are dropped on destruction.
  }
  cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

bool TaskPool::TrySubmit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_ || queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return true;
}

void TaskPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;  // Queued tasks still run; WorkerLoop drains.
  }
  cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void TaskPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // Exceptions are the task's own problem: handlers catch.
  }
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  if (end <= begin) return;
  if (grain < 1) grain = 1;
  const int64_t range = end - begin;
  const int threads = NumThreads();
  if (threads <= 1 || range <= grain || tls_in_parallel_region) {
    fn(begin, end);
    return;
  }
  Pool& pool = GlobalPool();
  // A second thread submitting concurrently just runs its region
  // inline; the pool is a throughput optimization, not a scheduler.
  std::unique_lock<std::mutex> submit(pool.mu_, std::try_to_lock);
  if (!submit.owns_lock()) {
    fn(begin, end);
    return;
  }
  auto job = std::make_shared<ParallelJob>();
  job->body = &fn;
  job->begin = begin;
  job->end = end;
  // Oversubscribe chunks 4x relative to threads for load balance, but
  // never below the requested grain. Chunk geometry affects only the
  // schedule, never the per-index arithmetic (see header contract).
  const int64_t target_chunks = static_cast<int64_t>(threads) * 4;
  int64_t chunk = (range + target_chunks - 1) / target_chunks;
  if (chunk < grain) chunk = grain;
  job->chunk = chunk;
  job->num_chunks = (range + chunk - 1) / chunk;
  if (job->num_chunks <= 1) {
    submit.unlock();
    fn(begin, end);
    return;
  }
  pool.Run(job, threads - 1);
  submit.unlock();
  if (job->error) std::rethrow_exception(job->error);
}

}  // namespace equitensor
