#include "util/trace.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <mutex>

#include "util/logging.h"
#include "util/metrics.h"
#include "util/table.h"

namespace equitensor {
namespace trace_internal {

std::atomic<bool> g_enabled{false};

namespace {

// Global list of every SpanSite ever constructed. Sites are
// function-local statics, so registration happens once per call site;
// the list is only walked on scrape.
struct SiteList {
  std::mutex mu;
  std::vector<SpanSite*> sites;
};

SiteList& Sites() {
  static SiteList* list = new SiteList();  // leaked: sites outlive main
  return *list;
}

thread_local TraceSpan* tls_current_span = nullptr;
thread_local int tls_depth = 0;

// Shared bucket layout for every span site's latency histogram.
// Mutated only by ConfigureTraceHistogram, which the contract requires
// to run before spans record (tools parse flags before enabling
// tracing), so Record() reads it without synchronization.
struct HistogramLayout {
  int count = 0;
  uint64_t edges_ns[kMaxTraceHistogramBuckets] = {};
};

HistogramLayout& Layout() {
  static HistogramLayout* layout = [] {
    auto* l = new HistogramLayout();  // leaked: read by spans at exit
    l->count = kMaxTraceHistogramBuckets;
    uint64_t edge = 1000;  // 1 µs
    for (int i = 0; i < l->count; ++i) {
      l->edges_ns[i] = edge;
      edge *= 4;
    }
    return l;
  }();
  return *layout;
}

// --- Per-event recording (Chrome-trace export) ---------------------
//
// Each thread owns one bounded EventBuffer, registered in a leaked
// global list and reached through a thread_local pointer. The buffer
// mutex is effectively uncontended: the owning thread appends, and the
// drain in StopTraceEventRecording only runs after recording stopped.

constexpr size_t kMaxEventsPerThread = 1 << 16;

struct EventBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  uint32_t thread_id = 0;
  std::string thread_name;
};

struct EventBufferList {
  std::mutex mu;
  std::vector<EventBuffer*> buffers;
};

EventBufferList& EventBuffers() {
  static EventBufferList* list = new EventBufferList();  // leaked
  return *list;
}

std::atomic<bool> g_recording{false};
std::atomic<uint64_t> g_dropped_events{0};

thread_local EventBuffer* tls_event_buffer = nullptr;

EventBuffer& ThreadEventBuffer() {
  if (tls_event_buffer == nullptr) {
    auto* buffer = new EventBuffer();  // leaked: outlives the thread
    EventBufferList& list = EventBuffers();
    std::lock_guard<std::mutex> lock(list.mu);
    buffer->thread_id = static_cast<uint32_t>(list.buffers.size());
    list.buffers.push_back(buffer);
    tls_event_buffer = buffer;
  }
  return *tls_event_buffer;
}

void RecordTraceEvent(const char* name, uint64_t start_ns,
                      uint64_t duration_ns) {
  EventBuffer& buffer = ThreadEventBuffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  if (buffer.events.size() >= kMaxEventsPerThread) {
    g_dropped_events.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buffer.events.push_back({name, start_ns, duration_ns, buffer.thread_id});
}

}  // namespace

uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

SpanSite::SpanSite(const char* name) : name_(name) {
  SiteList& list = Sites();
  std::lock_guard<std::mutex> lock(list.mu);
  list.sites.push_back(this);
}

void SpanSite::Record(uint64_t elapsed_ns, uint64_t child_ns) {
  SiteSlot& slot = slots_[metrics_internal::ThreadSlot()];
  slot.count.fetch_add(1, std::memory_order_relaxed);
  slot.total_ns.fetch_add(elapsed_ns, std::memory_order_relaxed);
  slot.child_ns.fetch_add(child_ns, std::memory_order_relaxed);
  uint64_t observed = slot.max_ns.load(std::memory_order_relaxed);
  while (elapsed_ns > observed &&
         !slot.max_ns.compare_exchange_weak(observed, elapsed_ns,
                                            std::memory_order_relaxed)) {
  }
  const HistogramLayout& layout = Layout();
  int bucket = layout.count;  // overflow unless an edge catches it
  for (int i = 0; i < layout.count; ++i) {
    if (elapsed_ns <= layout.edges_ns[i]) {
      bucket = i;
      break;
    }
  }
  slot.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
}

void SpanSite::RecordCounters(const PerfCounterSample& delta) {
  if (!delta.valid) return;
  SiteSlot& slot = slots_[metrics_internal::ThreadSlot()];
  slot.counter_samples.fetch_add(1, std::memory_order_relaxed);
  for (int i = 0; i < kNumPerfCounters; ++i) {
    slot.counters[i].fetch_add(delta.values[i], std::memory_order_relaxed);
  }
}

uint64_t SpanSite::Count() const {
  uint64_t total = 0;
  for (const auto& s : slots_) total += s.count.load(std::memory_order_relaxed);
  return total;
}

uint64_t SpanSite::TotalNs() const {
  uint64_t total = 0;
  for (const auto& s : slots_) {
    total += s.total_ns.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t SpanSite::ChildNs() const {
  uint64_t total = 0;
  for (const auto& s : slots_) {
    total += s.child_ns.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t SpanSite::MaxNs() const {
  uint64_t max_ns = 0;
  for (const auto& s : slots_) {
    max_ns = std::max(max_ns, s.max_ns.load(std::memory_order_relaxed));
  }
  return max_ns;
}

std::vector<uint64_t> SpanSite::BucketCounts() const {
  const int finite = Layout().count;
  std::vector<uint64_t> counts(static_cast<size_t>(finite) + 1, 0);
  for (const auto& s : slots_) {
    for (int i = 0; i <= kMaxTraceHistogramBuckets; ++i) {
      // Edges past the configured count stayed empty; fold them into
      // the overflow cell anyway in case the layout shrank mid-run.
      const size_t target =
          static_cast<size_t>(std::min(i, finite));
      counts[target] += s.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return counts;
}

uint64_t SpanSite::CounterSamples() const {
  uint64_t total = 0;
  for (const auto& s : slots_) {
    total += s.counter_samples.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t SpanSite::CounterTotal(int counter) const {
  uint64_t total = 0;
  for (const auto& s : slots_) {
    total += s.counters[counter].load(std::memory_order_relaxed);
  }
  return total;
}

void SpanSite::RescaleBuckets(const uint64_t* old_edges_ns, int old_count) {
  const HistogramLayout& layout = Layout();
  for (auto& s : slots_) {
    uint64_t moved[kMaxTraceHistogramBuckets + 1] = {};
    bool any = false;
    for (int i = 0; i <= kMaxTraceHistogramBuckets; ++i) {
      const uint64_t count = s.buckets[i].exchange(0,
                                                   std::memory_order_relaxed);
      if (count == 0) continue;
      any = true;
      int target = layout.count;  // old overflow stays overflow
      if (i < old_count) {
        // Midpoint of the old bucket's [lower, upper) span stands in
        // for every duration it counted.
        const uint64_t lower = i == 0 ? 0 : old_edges_ns[i - 1];
        const uint64_t mid = lower + (old_edges_ns[i] - lower) / 2;
        for (int b = 0; b < layout.count; ++b) {
          if (mid <= layout.edges_ns[b]) {
            target = b;
            break;
          }
        }
      }
      moved[target] += count;
    }
    if (!any) continue;
    for (int i = 0; i <= kMaxTraceHistogramBuckets; ++i) {
      if (moved[i] != 0) {
        s.buckets[i].fetch_add(moved[i], std::memory_order_relaxed);
      }
    }
  }
}

void SpanSite::Reset() {
  for (auto& s : slots_) {
    s.count.store(0, std::memory_order_relaxed);
    s.total_ns.store(0, std::memory_order_relaxed);
    s.child_ns.store(0, std::memory_order_relaxed);
    s.max_ns.store(0, std::memory_order_relaxed);
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.counter_samples.store(0, std::memory_order_relaxed);
    for (auto& c : s.counters) c.store(0, std::memory_order_relaxed);
  }
}

}  // namespace trace_internal

void ConfigureTraceHistogram(double start_seconds, double growth, int count) {
  if (!(start_seconds > 0.0)) start_seconds = 1e-6;
  if (!(growth > 1.0)) growth = 4.0;
  count = std::max(1, std::min(count, kMaxTraceHistogramBuckets));
  trace_internal::HistogramLayout& layout = trace_internal::Layout();

  // The contract wants this called before any span records. If samples
  // already exist, mixing them with new edges would silently render
  // old counts against the wrong bounds — instead, warn once and remap
  // everything recorded so far onto the new layout (satellite of
  // DESIGN.md §17). The site lock keeps the remap consistent against
  // concurrent scrapes; concurrent *recording* threads may land one
  // sample in either layout, which configuration-at-startup makes moot.
  auto& list = trace_internal::Sites();
  std::lock_guard<std::mutex> lock(list.mu);
  uint64_t recorded = 0;
  for (const trace_internal::SpanSite* site : list.sites) {
    recorded += site->Count();
  }
  uint64_t old_edges[kMaxTraceHistogramBuckets];
  const int old_count = layout.count;
  for (int i = 0; i < old_count; ++i) old_edges[i] = layout.edges_ns[i];

  layout.count = count;
  double edge = start_seconds * 1e9;
  for (int i = 0; i < count; ++i) {
    layout.edges_ns[i] = static_cast<uint64_t>(edge);
    edge *= growth;
  }

  if (recorded > 0) {
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true, std::memory_order_relaxed)) {
      ET_LOG(Warning) << "ConfigureTraceHistogram called after " << recorded
                      << " spans recorded; rescaling existing histogram "
                         "buckets onto the new layout (midpoint remap — "
                         "configure the layout before tracing starts to "
                         "avoid the approximation)";
    }
    bool changed = old_count != count;
    for (int i = 0; !changed && i < count; ++i) {
      changed = old_edges[i] != layout.edges_ns[i];
    }
    if (changed) {
      for (trace_internal::SpanSite* site : list.sites) {
        site->RescaleBuckets(old_edges, old_count);
      }
    }
  }
}

std::vector<double> TraceHistogramBounds() {
  const trace_internal::HistogramLayout& layout = trace_internal::Layout();
  std::vector<double> bounds(static_cast<size_t>(layout.count));
  for (int i = 0; i < layout.count; ++i) {
    bounds[static_cast<size_t>(i)] =
        static_cast<double>(layout.edges_ns[i]) * 1e-9;
  }
  return bounds;
}

void SetTracingEnabled(bool enabled) {
  trace_internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

bool TracingEnabled() {
  return trace_internal::g_enabled.load(std::memory_order_relaxed);
}

int CurrentTraceDepth() { return trace_internal::tls_depth; }

TraceSpan::TraceSpan(trace_internal::SpanSite& site)
    : site_(nullptr), parent_(nullptr) {
  if (!trace_internal::g_enabled.load(std::memory_order_relaxed)) return;
  site_ = &site;
  parent_ = trace_internal::tls_current_span;
  trace_internal::tls_current_span = this;
  ++trace_internal::tls_depth;
  // One relaxed load when counters are off (the common case); two
  // read(2) calls when on. Snapshot before the clock so counter time
  // brackets the timed region.
  if (PerfCountersEnabled()) ReadPerfCounters(&counters_start_);
  start_ns_ = trace_internal::MonotonicNowNs();
}

TraceSpan::~TraceSpan() {
  if (site_ == nullptr) return;
  const uint64_t elapsed = trace_internal::MonotonicNowNs() - start_ns_;
  site_->Record(elapsed, child_ns_);
  if (counters_start_.valid) {
    PerfCounterSample end;
    if (ReadPerfCounters(&end)) {
      site_->RecordCounters(PerfCounterDelta(counters_start_, end));
    }
  }
  if (trace_internal::g_recording.load(std::memory_order_relaxed)) {
    trace_internal::RecordTraceEvent(site_->name(), start_ns_, elapsed);
  }
  trace_internal::tls_current_span = parent_;
  --trace_internal::tls_depth;
  // The parent's self time excludes this span's full wall time (which
  // already contains any grandchildren).
  if (parent_ != nullptr) parent_->child_ns_ += elapsed;
}

double TraceStats::Ipc() const {
  const uint64_t cycles = counters[static_cast<int>(PerfCounter::kCycles)];
  if (cycles == 0) return 0.0;
  return static_cast<double>(
             counters[static_cast<int>(PerfCounter::kInstructions)]) /
         static_cast<double>(cycles);
}

double TraceStats::Mpki(PerfCounter counter) const {
  const uint64_t instructions =
      counters[static_cast<int>(PerfCounter::kInstructions)];
  if (instructions == 0) return 0.0;
  return 1000.0 * static_cast<double>(counters[static_cast<int>(counter)]) /
         static_cast<double>(instructions);
}

std::vector<TraceStats> CollectTraceStats() {
  struct Merged {
    uint64_t count = 0;
    uint64_t total_ns = 0;
    uint64_t child_ns = 0;
    uint64_t max_ns = 0;
    std::vector<uint64_t> buckets;
    uint64_t counter_samples = 0;
    uint64_t counters[kNumPerfCounters] = {0};
  };
  const std::vector<double> bounds = TraceHistogramBounds();
  std::map<std::string, Merged> by_name;
  {
    auto& list = trace_internal::Sites();
    std::lock_guard<std::mutex> lock(list.mu);
    for (const trace_internal::SpanSite* site : list.sites) {
      Merged& m = by_name[site->name()];
      m.count += site->Count();
      m.total_ns += site->TotalNs();
      m.child_ns += site->ChildNs();
      m.max_ns = std::max(m.max_ns, site->MaxNs());
      m.counter_samples += site->CounterSamples();
      for (int i = 0; i < kNumPerfCounters; ++i) {
        m.counters[i] += site->CounterTotal(i);
      }
      const std::vector<uint64_t> buckets = site->BucketCounts();
      if (m.buckets.empty()) m.buckets.assign(buckets.size(), 0);
      for (size_t i = 0; i < buckets.size() && i < m.buckets.size(); ++i) {
        m.buckets[i] += buckets[i];
      }
    }
  }
  std::vector<TraceStats> stats;
  stats.reserve(by_name.size());
  for (auto& [name, m] : by_name) {
    if (m.count == 0) continue;
    TraceStats s;
    s.name = name;
    s.count = m.count;
    s.total_seconds = static_cast<double>(m.total_ns) * 1e-9;
    s.self_seconds =
        static_cast<double>(m.total_ns - std::min(m.child_ns, m.total_ns)) *
        1e-9;
    s.max_seconds = static_cast<double>(m.max_ns) * 1e-9;
    s.bucket_bounds = bounds;
    s.bucket_counts = std::move(m.buckets);
    s.counter_samples = m.counter_samples;
    for (int i = 0; i < kNumPerfCounters; ++i) s.counters[i] = m.counters[i];
    // A scrape racing active spans can see count moved past the bucket
    // adds; reconcile into the overflow cell so that the exported
    // buckets always sum to the count (+Inf == _count).
    uint64_t in_buckets = 0;
    for (uint64_t b : s.bucket_counts) in_buckets += b;
    if (in_buckets < s.count && !s.bucket_counts.empty()) {
      s.bucket_counts.back() += s.count - in_buckets;
    } else if (in_buckets > s.count) {
      s.count = in_buckets;
    }
    stats.push_back(std::move(s));
  }
  std::sort(stats.begin(), stats.end(),
            [](const TraceStats& a, const TraceStats& b) {
              return a.total_seconds > b.total_seconds;
            });
  return stats;
}

std::string TraceReportTable() {
  const std::vector<TraceStats> stats = CollectTraceStats();
  if (stats.empty()) return "";
  bool have_counters = false;
  for (const TraceStats& s : stats) {
    have_counters = have_counters || s.counter_samples > 0;
  }
  std::vector<std::string> header = {"span",    "count",   "total_ms",
                                     "self_ms", "mean_us", "max_ms"};
  if (have_counters) {
    header.push_back("ipc");
    header.push_back("l1d_mpki");
    header.push_back("llc_mpki");
    header.push_back("br_mpki");
  }
  TextTable table(header);
  for (const TraceStats& s : stats) {
    std::vector<std::string> row = {
        s.name,
        std::to_string(s.count),
        TextTable::Num(s.total_seconds * 1e3, 3),
        TextTable::Num(s.self_seconds * 1e3, 3),
        TextTable::Num(s.total_seconds * 1e6 / static_cast<double>(s.count),
                       1),
        TextTable::Num(s.max_seconds * 1e3, 3)};
    if (have_counters) {
      if (s.counter_samples > 0) {
        row.push_back(TextTable::Num(s.Ipc(), 2));
        row.push_back(TextTable::Num(s.Mpki(PerfCounter::kL1dMisses), 2));
        row.push_back(TextTable::Num(s.Mpki(PerfCounter::kLlcMisses), 2));
        row.push_back(TextTable::Num(s.Mpki(PerfCounter::kBranchMisses), 2));
      } else {
        row.insert(row.end(), {"-", "-", "-", "-"});
      }
    }
    table.AddRow(row);
  }
  return table.ToString();
}

void ResetTraceStatsForTesting() {
  auto& list = trace_internal::Sites();
  std::lock_guard<std::mutex> lock(list.mu);
  for (trace_internal::SpanSite* site : list.sites) site->Reset();
}

void StartTraceEventRecording() {
  auto& list = trace_internal::EventBuffers();
  {
    std::lock_guard<std::mutex> lock(list.mu);
    for (trace_internal::EventBuffer* buffer : list.buffers) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      buffer->events.clear();
    }
  }
  trace_internal::g_dropped_events.store(0, std::memory_order_relaxed);
  trace_internal::g_recording.store(true, std::memory_order_relaxed);
}

std::vector<TraceEvent> StopTraceEventRecording() {
  trace_internal::g_recording.store(false, std::memory_order_relaxed);
  std::vector<TraceEvent> events;
  auto& list = trace_internal::EventBuffers();
  std::lock_guard<std::mutex> lock(list.mu);
  for (trace_internal::EventBuffer* buffer : list.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    events.insert(events.end(), buffer->events.begin(), buffer->events.end());
    buffer->events.clear();
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_ns < b.start_ns;
            });
  return events;
}

bool TraceEventRecordingActive() {
  return trace_internal::g_recording.load(std::memory_order_relaxed);
}

uint64_t DroppedTraceEventCount() {
  return trace_internal::g_dropped_events.load(std::memory_order_relaxed);
}

void SetTraceThreadName(const std::string& name) {
  trace_internal::EventBuffer& buffer = trace_internal::ThreadEventBuffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.thread_name = name;
}

std::vector<std::pair<uint32_t, std::string>> TraceThreadNames() {
  std::vector<std::pair<uint32_t, std::string>> names;
  auto& list = trace_internal::EventBuffers();
  std::lock_guard<std::mutex> lock(list.mu);
  for (trace_internal::EventBuffer* buffer : list.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    const std::string name = buffer->thread_name.empty()
                                 ? "thread" + std::to_string(buffer->thread_id)
                                 : buffer->thread_name;
    names.emplace_back(buffer->thread_id, name);
  }
  return names;
}

}  // namespace equitensor
