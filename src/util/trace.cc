#include "util/trace.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <mutex>

#include "util/metrics.h"
#include "util/table.h"

namespace equitensor {
namespace trace_internal {

std::atomic<bool> g_enabled{false};

namespace {

// Global list of every SpanSite ever constructed. Sites are
// function-local statics, so registration happens once per call site;
// the list is only walked on scrape.
struct SiteList {
  std::mutex mu;
  std::vector<SpanSite*> sites;
};

SiteList& Sites() {
  static SiteList* list = new SiteList();  // leaked: sites outlive main
  return *list;
}

thread_local TraceSpan* tls_current_span = nullptr;
thread_local int tls_depth = 0;

}  // namespace

uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

SpanSite::SpanSite(const char* name) : name_(name) {
  SiteList& list = Sites();
  std::lock_guard<std::mutex> lock(list.mu);
  list.sites.push_back(this);
}

void SpanSite::Record(uint64_t elapsed_ns, uint64_t child_ns) {
  SiteSlot& slot = slots_[metrics_internal::ThreadSlot()];
  slot.count.fetch_add(1, std::memory_order_relaxed);
  slot.total_ns.fetch_add(elapsed_ns, std::memory_order_relaxed);
  slot.child_ns.fetch_add(child_ns, std::memory_order_relaxed);
  uint64_t observed = slot.max_ns.load(std::memory_order_relaxed);
  while (elapsed_ns > observed &&
         !slot.max_ns.compare_exchange_weak(observed, elapsed_ns,
                                            std::memory_order_relaxed)) {
  }
}

uint64_t SpanSite::Count() const {
  uint64_t total = 0;
  for (const auto& s : slots_) total += s.count.load(std::memory_order_relaxed);
  return total;
}

uint64_t SpanSite::TotalNs() const {
  uint64_t total = 0;
  for (const auto& s : slots_) {
    total += s.total_ns.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t SpanSite::ChildNs() const {
  uint64_t total = 0;
  for (const auto& s : slots_) {
    total += s.child_ns.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t SpanSite::MaxNs() const {
  uint64_t max_ns = 0;
  for (const auto& s : slots_) {
    max_ns = std::max(max_ns, s.max_ns.load(std::memory_order_relaxed));
  }
  return max_ns;
}

void SpanSite::Reset() {
  for (auto& s : slots_) {
    s.count.store(0, std::memory_order_relaxed);
    s.total_ns.store(0, std::memory_order_relaxed);
    s.child_ns.store(0, std::memory_order_relaxed);
    s.max_ns.store(0, std::memory_order_relaxed);
  }
}

}  // namespace trace_internal

void SetTracingEnabled(bool enabled) {
  trace_internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

bool TracingEnabled() {
  return trace_internal::g_enabled.load(std::memory_order_relaxed);
}

int CurrentTraceDepth() { return trace_internal::tls_depth; }

TraceSpan::TraceSpan(trace_internal::SpanSite& site)
    : site_(nullptr), parent_(nullptr) {
  if (!trace_internal::g_enabled.load(std::memory_order_relaxed)) return;
  site_ = &site;
  parent_ = trace_internal::tls_current_span;
  trace_internal::tls_current_span = this;
  ++trace_internal::tls_depth;
  start_ns_ = trace_internal::MonotonicNowNs();
}

TraceSpan::~TraceSpan() {
  if (site_ == nullptr) return;
  const uint64_t elapsed = trace_internal::MonotonicNowNs() - start_ns_;
  site_->Record(elapsed, child_ns_);
  trace_internal::tls_current_span = parent_;
  --trace_internal::tls_depth;
  // The parent's self time excludes this span's full wall time (which
  // already contains any grandchildren).
  if (parent_ != nullptr) parent_->child_ns_ += elapsed;
}

std::vector<TraceStats> CollectTraceStats() {
  struct Merged {
    uint64_t count = 0;
    uint64_t total_ns = 0;
    uint64_t child_ns = 0;
    uint64_t max_ns = 0;
  };
  std::map<std::string, Merged> by_name;
  {
    auto& list = trace_internal::Sites();
    std::lock_guard<std::mutex> lock(list.mu);
    for (const trace_internal::SpanSite* site : list.sites) {
      Merged& m = by_name[site->name()];
      m.count += site->Count();
      m.total_ns += site->TotalNs();
      m.child_ns += site->ChildNs();
      m.max_ns = std::max(m.max_ns, site->MaxNs());
    }
  }
  std::vector<TraceStats> stats;
  stats.reserve(by_name.size());
  for (const auto& [name, m] : by_name) {
    if (m.count == 0) continue;
    TraceStats s;
    s.name = name;
    s.count = m.count;
    s.total_seconds = static_cast<double>(m.total_ns) * 1e-9;
    s.self_seconds =
        static_cast<double>(m.total_ns - std::min(m.child_ns, m.total_ns)) *
        1e-9;
    s.max_seconds = static_cast<double>(m.max_ns) * 1e-9;
    stats.push_back(std::move(s));
  }
  std::sort(stats.begin(), stats.end(),
            [](const TraceStats& a, const TraceStats& b) {
              return a.total_seconds > b.total_seconds;
            });
  return stats;
}

std::string TraceReportTable() {
  const std::vector<TraceStats> stats = CollectTraceStats();
  if (stats.empty()) return "";
  TextTable table({"span", "count", "total_ms", "self_ms", "mean_us",
                   "max_ms"});
  for (const TraceStats& s : stats) {
    table.AddRow({s.name, std::to_string(s.count),
                  TextTable::Num(s.total_seconds * 1e3, 3),
                  TextTable::Num(s.self_seconds * 1e3, 3),
                  TextTable::Num(s.total_seconds * 1e6 /
                                     static_cast<double>(s.count),
                                 1),
                  TextTable::Num(s.max_seconds * 1e3, 3)});
  }
  return table.ToString();
}

void ResetTraceStatsForTesting() {
  auto& list = trace_internal::Sites();
  std::lock_guard<std::mutex> lock(list.mu);
  for (trace_internal::SpanSite* site : list.sites) site->Reset();
}

}  // namespace equitensor
