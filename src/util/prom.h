#ifndef EQUITENSOR_UTIL_PROM_H_
#define EQUITENSOR_UTIL_PROM_H_

#include <string>
#include <vector>

#include "util/metrics.h"
#include "util/trace.h"

namespace equitensor {

/// Prometheus text exposition (version 0.0.4) rendering of the metrics
/// registry, served by core/telemetry_server on `/metrics`
/// (DESIGN.md §12). Mapping:
///   Counter   -> `et_<name>_total` (counter)
///   Gauge     -> `et_<name>` (gauge)
///   Histogram -> `et_<name>` (histogram: cumulative `_bucket{le=...}`
///                including `+Inf`, plus `_sum` and `_count`)
/// Registry names use dots ("train.total_loss"); every character that
/// is not [a-zA-Z0-9_:] becomes '_'.

/// Registry name -> valid Prometheus metric name (no `et_` prefix).
std::string PromSanitizeName(const std::string& name);

/// Escapes a label value for `{name="value"}` position: backslash,
/// double quote, and newline get backslash escapes.
std::string PromEscapeLabelValue(const std::string& value);

/// Renders the full exposition: every registry metric, plus one
/// histogram series per kernel-timing span (`et_kernel_seconds` with a
/// `kernel` label, real log-spaced buckets from the trace layer's
/// shared layout, and max as the companion gauge
/// `et_kernel_max_seconds`). Ends with a trailing newline as the
/// format requires.
std::string RenderPrometheusText(const MetricsSnapshot& snapshot,
                                 const std::vector<TraceStats>& kernels);

/// Minimal structural checker for the text exposition format, used by
/// the scrape smoke test (scripts/check.sh) and the prom tests:
///  - every line is a comment (`# ...`) or `name{labels} value`;
///  - metric and label names match the spec charset, label values are
///    properly quoted/escaped, values parse as floats (NaN/±Inf ok);
///  - `# TYPE` lines are well-formed and precede their samples;
///  - for each TYPE'd histogram: `_bucket` counts are cumulative
///    (non-decreasing with le), the le edges strictly increase, an
///    `le="+Inf"` bucket exists and equals `_count`, and a `_sum`
///    series is present (non-negative whenever the count is).
/// Returns false and fills `*error` with "line N: reason" on the
/// first violation.
bool ValidatePrometheusText(const std::string& text, std::string* error);

}  // namespace equitensor

#endif  // EQUITENSOR_UTIL_PROM_H_
