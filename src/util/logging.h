#ifndef EQUITENSOR_UTIL_LOGGING_H_
#define EQUITENSOR_UTIL_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace equitensor {

/// Severity levels for the lightweight logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Returns the process-wide minimum level that will be emitted.
LogLevel GetLogLevel();

/// Sets the process-wide minimum level (default: kInfo).
void SetLogLevel(LogLevel level);

namespace internal_logging {

/// Collects one log line and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace equitensor

#define ET_LOG(severity)                                      \
  ::equitensor::internal_logging::LogMessage(                 \
      ::equitensor::LogLevel::k##severity, __FILE__, __LINE__)

#endif  // EQUITENSOR_UTIL_LOGGING_H_
