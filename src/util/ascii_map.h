#ifndef EQUITENSOR_UTIL_ASCII_MAP_H_
#define EQUITENSOR_UTIL_ASCII_MAP_H_

#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace equitensor {

/// Terminal visualization helpers. The paper notes that keeping Z's
/// spatial/temporal dimensions "allows direct visualization of the
/// learned features" (§3.2) — these render [W, H] fields and time
/// series without leaving the terminal.

/// Renders a [W, H] field as an ASCII heat map, north (large y) up.
/// Values are min-max normalized into the density ramp " .:-=+*#%@".
/// Each cell prints `cell_width` copies of its character.
std::string RenderAsciiMap(const Tensor& field, int cell_width = 2);

/// Renders a 1-D series as a single-line sparkline over 8 levels.
std::string RenderSparkline(const Tensor& series);

/// Side-by-side rendering of several same-shape fields with titles
/// (e.g. race map vs. a latent channel).
std::string RenderAsciiMaps(const std::vector<Tensor>& fields,
                            const std::vector<std::string>& titles,
                            int cell_width = 2);

}  // namespace equitensor

#endif  // EQUITENSOR_UTIL_ASCII_MAP_H_
