#include "util/rng.h"

#include <bit>
#include <cmath>

#include "util/check.h"

namespace equitensor {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 top bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  ET_CHECK_LE(lo, hi);
  return lo + (hi - lo) * Uniform();
}

uint64_t Rng::UniformInt(uint64_t n) {
  ET_CHECK_GT(n, 0u);
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return radius * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

int Rng::Poisson(double lambda) {
  ET_CHECK_GE(lambda, 0.0);
  if (lambda == 0.0) return 0;
  if (lambda < 30.0) {
    const double limit = std::exp(-lambda);
    double product = Uniform();
    int count = 0;
    while (product > limit) {
      product *= Uniform();
      ++count;
    }
    return count;
  }
  // Normal approximation with continuity correction for large rates.
  const double sample = Normal(lambda, std::sqrt(lambda));
  return sample < 0.0 ? 0 : static_cast<int>(sample + 0.5);
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

Rng Rng::Split() { return Rng(NextU64()); }

std::vector<uint64_t> Rng::SerializeState() const {
  return {state_[0],
          state_[1],
          state_[2],
          state_[3],
          has_cached_normal_ ? uint64_t{1} : uint64_t{0},
          std::bit_cast<uint64_t>(cached_normal_)};
}

bool Rng::DeserializeState(const std::vector<uint64_t>& words) {
  if (words.size() != 6 || words[4] > 1) return false;
  // All-zero xoshiro state is a fixed point; reject it.
  if ((words[0] | words[1] | words[2] | words[3]) == 0) return false;
  for (int i = 0; i < 4; ++i) state_[i] = words[static_cast<size_t>(i)];
  has_cached_normal_ = words[4] == 1;
  cached_normal_ = std::bit_cast<double>(words[5]);
  return true;
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  for (size_t i = n; i > 1; --i) {
    const size_t j = static_cast<size_t>(UniformInt(i));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

}  // namespace equitensor
