#ifndef EQUITENSOR_UTIL_STATS_H_
#define EQUITENSOR_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace equitensor {

/// Streaming mean/variance accumulator (Welford's algorithm). Used for
/// repeated-run experiment statistics (Table 5 mean/std columns).
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double value);

  /// Number of observations added so far.
  size_t count() const { return count_; }

  /// Sample mean; 0 when empty.
  double Mean() const;

  /// Unbiased sample variance; 0 with fewer than two observations.
  double Variance() const;

  /// Square root of Variance().
  double StdDev() const;

  /// Smallest observation; +inf when empty.
  double Min() const { return min_; }

  /// Largest observation; -inf when empty.
  double Max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 1e300;
  double max_ = -1e300;
};

/// Mean of a vector; 0 when empty.
double Mean(const std::vector<double>& values);

/// Unbiased standard deviation; 0 with fewer than two values.
double StdDev(const std::vector<double>& values);

/// Pearson correlation coefficient of two equally sized vectors.
/// Returns 0 when either side has zero variance.
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

}  // namespace equitensor

#endif  // EQUITENSOR_UTIL_STATS_H_
