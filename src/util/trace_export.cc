#include "util/trace_export.h"

#include <algorithm>
#include <fstream>

#include "util/logging.h"

namespace equitensor {

JsonValue ChromeTraceToJson(
    const std::vector<TraceEvent>& events,
    const std::vector<std::pair<uint32_t, std::string>>& thread_names) {
  JsonValue trace_events = JsonValue::Array();

  // Timestamps are exported relative to the earliest event so the
  // microsecond values stay far below the 2^53 double-exact range.
  uint64_t t0 = 0;
  bool have_t0 = false;
  for (const TraceEvent& event : events) {
    if (!have_t0 || event.start_ns < t0) {
      t0 = event.start_ns;
      have_t0 = true;
    }
  }

  // Metadata first: one thread_name record per track that appears in
  // the event stream (plus any explicitly named idle threads).
  std::vector<uint32_t> seen_threads;
  for (const TraceEvent& event : events) {
    if (std::find(seen_threads.begin(), seen_threads.end(),
                  event.thread_id) == seen_threads.end()) {
      seen_threads.push_back(event.thread_id);
    }
  }
  for (const auto& [tid, name] : thread_names) {
    if (std::find(seen_threads.begin(), seen_threads.end(), tid) ==
        seen_threads.end()) {
      continue;
    }
    JsonValue meta = JsonValue::Object();
    meta.Set("ph", JsonValue::Str("M"));
    meta.Set("name", JsonValue::Str("thread_name"));
    meta.Set("pid", JsonValue::Int(1));
    meta.Set("tid", JsonValue::Int(static_cast<int64_t>(tid)));
    JsonValue args = JsonValue::Object();
    args.Set("name", JsonValue::Str(name));
    meta.Set("args", std::move(args));
    trace_events.Append(std::move(meta));
  }

  for (const TraceEvent& event : events) {
    JsonValue entry = JsonValue::Object();
    entry.Set("ph", JsonValue::Str("X"));
    entry.Set("name", JsonValue::Str(event.name));
    entry.Set("ts",
              JsonValue::Number(static_cast<double>(event.start_ns - t0) /
                                1e3));
    entry.Set("dur",
              JsonValue::Number(static_cast<double>(event.duration_ns) / 1e3));
    entry.Set("pid", JsonValue::Int(1));
    entry.Set("tid", JsonValue::Int(static_cast<int64_t>(event.thread_id)));
    trace_events.Append(std::move(entry));
  }

  JsonValue document = JsonValue::Object();
  document.Set("traceEvents", std::move(trace_events));
  document.Set("displayTimeUnit", JsonValue::Str("ms"));
  return document;
}

bool WriteChromeTrace(
    const std::string& path, const std::vector<TraceEvent>& events,
    const std::vector<std::pair<uint32_t, std::string>>& thread_names) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out.is_open()) {
    ET_LOG(Warning) << "cannot open chrome trace file " << path;
    return false;
  }
  out << ChromeTraceToJson(events, thread_names).Dump() << "\n";
  out.flush();
  return out.good();
}

}  // namespace equitensor
