#include "util/request_trace.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>

namespace equitensor {
namespace {

/// Default latency layout: 10 µs growing ×√2, 40 edges (~7.4 s max).
/// The √2 growth keeps bucket-interpolation error on quantile
/// estimates near ±10%, so the server-side p50/p99 in the loadgen
/// reconciliation land close to the client's exact percentiles; ×2
/// buckets put a whole unimodal latency population inside one bucket
/// and skewed the estimate by half a bucket width.
std::vector<double> DefaultLatencyBounds() {
  return Histogram::ExponentialBounds(1e-5, std::sqrt(2.0), 40);
}

void CopyTruncated(char* dst, size_t cap, const std::string& src) {
  const size_t n = std::min(src.size(), cap - 1);
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

double UnixNowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// Registry-name-safe endpoint token: "/debug/requests" ->
/// "debug_requests". The metric layer re-sanitizes for Prometheus, so
/// this only needs to be stable and readable.
std::string SanitizeEndpoint(const std::string& path) {
  std::string out;
  out.reserve(path.size());
  for (char c : path) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    if (ok) {
      out += c;
    } else if (!out.empty() && out.back() != '_') {
      out += '_';
    }
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  return out.empty() ? "root" : out;
}

JsonValue MsNumber(double seconds) { return JsonValue::Number(seconds * 1e3); }

}  // namespace

const char* RequestStageName(RequestStage stage) {
  switch (stage) {
    case RequestStage::kParse: return "parse";
    case RequestStage::kQueueWait: return "queue_wait";
    case RequestStage::kBatchWait: return "batch_wait";
    case RequestStage::kCacheLookup: return "cache_lookup";
    case RequestStage::kForward: return "forward";
    case RequestStage::kSerialize: return "serialize";
  }
  return "unknown";
}

void RequestTimeline::set_method(const std::string& m) {
  CopyTruncated(method, sizeof(method), m);
}

void RequestTimeline::set_path(const std::string& p) {
  CopyTruncated(path, sizeof(path), p);
}

double RequestTimeline::StagesTotal() const {
  double total = 0.0;
  for (double s : stage_seconds) total += s;
  return total;
}

RequestRing::RequestRing(size_t capacity)
    : slots_(std::max<size_t>(1, capacity)) {}

void RequestRing::Push(const RequestTimeline& timeline) {
  const uint64_t ticket = cursor_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket % slots_.size()];
  // Odd sequence marks the slot as mid-write; readers skip it. Two
  // writers lapping each other on the same slot (ring smaller than the
  // in-flight request count) interleave their bumps, which at worst
  // leaves readers skipping that slot until the next push — never a
  // torn read surfacing, which is the contract that matters.
  slot.seq.fetch_add(1, std::memory_order_acq_rel);
  slot.data = timeline;
  slot.seq.fetch_add(1, std::memory_order_release);
}

std::vector<RequestTimeline> RequestRing::Snapshot() const {
  std::vector<RequestTimeline> out;
  out.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    for (int attempt = 0; attempt < 4; ++attempt) {
      const uint64_t before = slot.seq.load(std::memory_order_acquire);
      if (before == 0 || (before & 1) != 0) break;  // empty or mid-write
      RequestTimeline copy = slot.data;
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_acquire) == before) {
        out.push_back(copy);
        break;
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const RequestTimeline& a, const RequestTimeline& b) {
              return a.id < b.id;
            });
  return out;
}

RequestObservability::RequestObservability(Options options)
    : options_(std::move(options)), ring_(options_.ring_capacity) {
  if (options_.latency_bounds.empty()) {
    options_.latency_bounds = DefaultLatencyBounds();
  }
  if (options_.slow_capacity < 1) options_.slow_capacity = 1;
  if (options_.sample_every < 0) options_.sample_every = 0;
  // Resolve the per-stage histograms once: registry pointers are
  // stable for the process lifetime, and Observe must not take the
  // registry's name-lookup mutex on every completion.
  MetricsRegistry& registry = MetricsRegistry::Global();
  for (int s = 0; s < kNumRequestStages; ++s) {
    stage_histograms_[s] = registry.GetHistogram(
        options_.metric_prefix + ".stage_seconds." +
            RequestStageName(static_cast<RequestStage>(s)),
        options_.latency_bounds);
  }
}

RequestObservability::~RequestObservability() {
  if (log_fd_ >= 0) ::close(log_fd_);
}

bool RequestObservability::OpenAccessLog(std::string* error) {
  if (options_.access_log_path.empty()) return true;
  log_fd_ = ::open(options_.access_log_path.c_str(),
                   O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (log_fd_ < 0) {
    if (error != nullptr) {
      *error = "cannot open access log " + options_.access_log_path + ": " +
               std::strerror(errno);
    }
    return false;
  }
  return true;
}

std::string RequestObservability::EndpointName(
    const RequestTimeline& timeline) const {
  // Unrouted paths collapse into one bucket so a 404 scan cannot mint
  // unbounded metric names.
  if (!timeline.routed) return "other";
  return SanitizeEndpoint(timeline.path);
}

Histogram* RequestObservability::EndpointHistogram(
    const std::string& endpoint) {
  {
    std::lock_guard<std::mutex> lock(endpoint_mu_);
    auto it = endpoint_histograms_.find(endpoint);
    if (it != endpoint_histograms_.end()) return it->second;
  }
  // Miss: resolve through the registry (its own mutex), then publish.
  Histogram* histogram = MetricsRegistry::Global().GetHistogram(
      options_.metric_prefix + ".request_seconds." + endpoint,
      options_.latency_bounds);
  std::lock_guard<std::mutex> lock(endpoint_mu_);
  endpoint_histograms_.emplace(endpoint, histogram);
  return histogram;
}

void RequestObservability::Observe(const RequestTimeline& timeline) {
  const uint64_t seen = observed_.fetch_add(1, std::memory_order_relaxed) + 1;

  // Histograms: one per endpoint for the total, one per stage — all
  // pre-resolved pointers (ctor / EndpointHistogram's small cache), so
  // the hot path never touches the registry's name-lookup mutex.
  EndpointHistogram(EndpointName(timeline))
      ->Observe(timeline.total_seconds);
  for (int s = 0; s < kNumRequestStages; ++s) {
    const double seconds = timeline.stage_seconds[s];
    if (seconds <= 0.0) continue;
    stage_histograms_[s]->Observe(seconds);
  }

  ring_.Push(timeline);

  const bool slow =
      timeline.total_seconds * 1e3 >= options_.slow_threshold_ms;
  if (slow) {
    std::lock_guard<std::mutex> lock(slow_mu_);
    // Tiny K: linear insert keeps the table sorted slowest-first.
    auto it = std::upper_bound(
        slow_.begin(), slow_.end(), timeline,
        [](const RequestTimeline& a, const RequestTimeline& b) {
          return a.total_seconds > b.total_seconds;
        });
    if (it != slow_.end() || slow_.size() < options_.slow_capacity) {
      slow_.insert(it, timeline);
      if (slow_.size() > options_.slow_capacity) slow_.pop_back();
    }
  }

  if (log_fd_ >= 0) {
    const bool sampled =
        options_.sample_every > 0 &&
        (seen - 1) % static_cast<uint64_t>(options_.sample_every) == 0;
    if (sampled || slow) WriteAccessLine(timeline);
  }
}

void RequestObservability::WriteAccessLine(const RequestTimeline& timeline) {
  const std::string line = TimelineToJson(timeline).Dump() + "\n";
  // One write(2) under the lock per line: lines are atomic on disk, so
  // a concurrent reader (or a crash) never sees interleaved halves.
  std::lock_guard<std::mutex> lock(log_mu_);
  size_t done = 0;
  while (done < line.size()) {
    const ssize_t n = ::write(log_fd_, line.data() + done, line.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // disk full / closed: drop the line, keep serving
    }
    done += static_cast<size_t>(n);
  }
  access_lines_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<RequestTimeline> RequestObservability::RecentRequests() const {
  return ring_.Snapshot();
}

std::vector<RequestTimeline> RequestObservability::SlowRequests() const {
  std::lock_guard<std::mutex> lock(slow_mu_);
  return slow_;
}

JsonValue RequestObservability::TimelineToJson(
    const RequestTimeline& timeline) {
  JsonValue doc = JsonValue::Object();
  doc.Set("type", JsonValue::Str("request"));
  doc.Set("id", JsonValue::Int(static_cast<int64_t>(timeline.id)));
  doc.Set("method", JsonValue::Str(timeline.method));
  doc.Set("path", JsonValue::Str(timeline.path));
  doc.Set("status", JsonValue::Int(timeline.status));
  if (timeline.generation > 0) {
    doc.Set("generation", JsonValue::Int(timeline.generation));
  }
  doc.Set("unix_seconds", JsonValue::Number(timeline.unix_seconds));
  doc.Set("total_ms", MsNumber(timeline.total_seconds));
  JsonValue stages = JsonValue::Object();
  for (int s = 0; s < kNumRequestStages; ++s) {
    if (timeline.stage_seconds[s] <= 0.0) continue;
    stages.Set(RequestStageName(static_cast<RequestStage>(s)),
               MsNumber(timeline.stage_seconds[s]));
  }
  doc.Set("stages_ms", std::move(stages));
  return doc;
}

namespace {

JsonValue TimelinesJson(const char* type,
                        const std::vector<RequestTimeline>& timelines) {
  JsonValue doc = JsonValue::Object();
  doc.Set("type", JsonValue::Str(type));
  doc.Set("count", JsonValue::Int(static_cast<int64_t>(timelines.size())));
  JsonValue array = JsonValue::Array();
  for (const RequestTimeline& t : timelines) {
    array.Append(RequestObservability::TimelineToJson(t));
  }
  doc.Set("requests", std::move(array));
  return doc;
}

}  // namespace

JsonValue RequestObservability::RequestsJson() const {
  return TimelinesJson("debug_requests", RecentRequests());
}

JsonValue RequestObservability::SlowJson() const {
  return TimelinesJson("debug_slow", SlowRequests());
}

JsonValue RequestObservability::StagesJson() const {
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  const std::string stage_prefix = options_.metric_prefix + ".stage_seconds.";
  const std::string endpoint_prefix =
      options_.metric_prefix + ".request_seconds.";
  JsonValue doc = JsonValue::Object();
  doc.Set("type", JsonValue::Str("serving_stages"));
  doc.Set("requests_observed",
          JsonValue::Int(static_cast<int64_t>(observed())));
  const auto render = [](const MetricsSnapshot::HistogramValue& h) {
    JsonValue entry = JsonValue::Object();
    entry.Set("count", JsonValue::Int(static_cast<int64_t>(h.count)));
    entry.Set("mean_ms",
              MsNumber(h.count == 0 ? 0.0
                                    : h.sum / static_cast<double>(h.count)));
    entry.Set("p50_ms",
              MsNumber(HistogramQuantile(h.bounds, h.buckets, 0.50)));
    entry.Set("p99_ms",
              MsNumber(HistogramQuantile(h.bounds, h.buckets, 0.99)));
    return entry;
  };
  JsonValue stages = JsonValue::Object();
  JsonValue endpoints = JsonValue::Object();
  for (const auto& h : snapshot.histograms) {
    if (h.name.compare(0, stage_prefix.size(), stage_prefix) == 0) {
      stages.Set(h.name.substr(stage_prefix.size()), render(h));
    } else if (h.name.compare(0, endpoint_prefix.size(), endpoint_prefix) ==
               0) {
      endpoints.Set(h.name.substr(endpoint_prefix.size()), render(h));
    }
  }
  doc.Set("stages", std::move(stages));
  doc.Set("endpoints", std::move(endpoints));
  return doc;
}

double HistogramQuantile(const std::vector<double>& bounds,
                         const std::vector<uint64_t>& buckets, double q) {
  uint64_t total = 0;
  for (uint64_t b : buckets) total += b;
  if (total == 0 || bounds.empty()) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    const double next = cumulative + static_cast<double>(buckets[i]);
    if (next >= rank && buckets[i] > 0) {
      if (i >= bounds.size()) return bounds.back();  // overflow: clamp
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      const double hi = bounds[i];
      const double frac =
          (rank - cumulative) / static_cast<double>(buckets[i]);
      return lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
    }
    cumulative = next;
  }
  return bounds.back();
}

double RequestUnixSeconds() { return UnixNowSeconds(); }

}  // namespace equitensor
