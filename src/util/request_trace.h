#ifndef EQUITENSOR_UTIL_REQUEST_TRACE_H_
#define EQUITENSOR_UTIL_REQUEST_TRACE_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "util/json.h"
#include "util/metrics.h"
#include "util/stopwatch.h"

namespace equitensor {

/// Per-request observability for the serving stack (DESIGN.md §16).
///
/// util/http_server creates one RequestContext per parsed request
/// (monotonic id, start time) and attaches it to the HttpRequest; the
/// serving layers downstream — ServingService handlers, the
/// PredictBatcher, the EmbeddingCache, the backend forward — record
/// the wall time each *stage* of the request consumed. When the
/// response has been written, the server hands the finished
/// RequestTimeline to a RequestObservability sink, which fans it out
/// three ways:
///   - multi-bucket latency histograms per endpoint and per stage in
///     the global metrics registry (scraped via /metrics),
///   - a lock-free seqlock ring of the last K timelines plus a top-K
///     slow table (served live via /debug/requests and /debug/slow),
///   - a sampled JSONL access log (every Nth request, plus every
///     request slower than a threshold).

/// The stage taxonomy. Stages are disjoint wall-time intervals of one
/// request; their sum is ≤ the request total (the gap is uninstrumented
/// handler overhead, which tests bound by a tolerance).
enum class RequestStage {
  kParse = 0,        // bytes on the socket -> parsed request (head+body)
  kQueueWait = 1,    // enqueue in the batcher -> batcher thread wakes
  kBatchWait = 2,    // batcher awake -> batch sealed (window fill time)
  kCacheLookup = 3,  // embedding LRU probe (hit or miss)
  kForward = 4,      // batched model forward pass
  kSerialize = 5,    // response rendering + socket write
};
constexpr int kNumRequestStages = 6;

/// Stable lowercase stage names ("parse", "queue_wait", ...), used for
/// metric names, JSON keys, and docs.
const char* RequestStageName(RequestStage stage);

/// One finished request, as recorded by the server and the layers the
/// request passed through. Trivially copyable by design: timelines
/// move through a seqlock ring, which needs memcpy-able slots.
struct RequestTimeline {
  uint64_t id = 0;          // strictly monotonic per server
  char method[8] = {0};     // "GET" | "HEAD" | "POST"
  char path[56] = {0};      // truncated to fit; enough for every route
  bool routed = false;      // matched a registered route (else 404/405)
  int status = 0;           // HTTP status written
  int64_t generation = 0;   // serving model generation (0 = n/a)
  double start_seconds = 0.0;  // steady-clock seconds (ordering only)
  double unix_seconds = 0.0;   // wall clock, for the access log
  double total_seconds = 0.0;  // first byte -> response written
  double stage_seconds[kNumRequestStages] = {0};

  void set_method(const std::string& m);
  void set_path(const std::string& p);
  /// Sum over stage_seconds.
  double StagesTotal() const;
};
static_assert(std::is_trivially_copyable<RequestTimeline>::value,
              "timelines travel through a seqlock ring");

/// Mutable per-request recording handle. Created by the HTTP server,
/// pointed to from HttpRequest::context, written by whichever layer
/// currently owns the request. Not thread-safe per se, but the serving
/// stack's ownership hand-off is strictly sequential: the HTTP worker
/// blocks while the batcher thread records queue/batch/forward stages,
/// then resumes — no two threads touch the context concurrently.
class RequestContext {
 public:
  RequestTimeline& timeline() { return timeline_; }
  const RequestTimeline& timeline() const { return timeline_; }

  /// Accumulates `seconds` into the stage (stages touched twice — e.g.
  /// serialize covering both JSON render and socket write — add up).
  void AddStage(RequestStage stage, double seconds) {
    if (seconds > 0.0) {
      timeline_.stage_seconds[static_cast<int>(stage)] += seconds;
    }
  }

 private:
  RequestTimeline timeline_;
};

/// RAII stage timer that tolerates a null context, so instrumented
/// code reads the same whether observability is attached or not:
///   StageScope scope(request.context, RequestStage::kSerialize);
class StageScope {
 public:
  StageScope(RequestContext* context, RequestStage stage)
      : context_(context), stage_(stage) {}
  ~StageScope() {
    if (context_ != nullptr) {
      context_->AddStage(stage_, watch_.ElapsedSeconds());
    }
  }
  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

 private:
  RequestContext* context_;
  RequestStage stage_;
  Stopwatch watch_;
};

/// Lock-free ring of the last K timelines. Multi-writer: a writer
/// claims a slot with one fetch_add on the cursor, then publishes
/// through that slot's seqlock (odd while writing). Readers copy
/// optimistically and skip slots that move underneath them — the same
/// seqlock discipline as core/telemetry_server's SnapshotCell, per
/// slot instead of double-buffered, so scraping /debug/requests never
/// blocks a request completion.
class RequestRing {
 public:
  explicit RequestRing(size_t capacity);

  void Push(const RequestTimeline& timeline);

  /// Most-recent-last snapshot of every published slot. Slots being
  /// rewritten during the copy are skipped, never torn.
  std::vector<RequestTimeline> Snapshot() const;

  size_t capacity() const { return slots_.size(); }
  uint64_t pushed() const { return cursor_.load(std::memory_order_relaxed); }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> seq{0};  // odd while a writer is inside
    RequestTimeline data;
  };

  std::vector<Slot> slots_;
  std::atomic<uint64_t> cursor_{0};
};

/// The completion sink. Thread-safe; Observe is called by HTTP worker
/// threads on every finished request.
class RequestObservability {
 public:
  struct Options {
    /// Prefix for registry metric names: `<prefix>.request_seconds.
    /// <endpoint>` and `<prefix>.stage_seconds.<stage>`.
    std::string metric_prefix = "serving";
    /// Ring size behind /debug/requests.
    size_t ring_capacity = 64;
    /// Top-K slow table behind /debug/slow.
    size_t slow_capacity = 8;
    /// Requests with total latency over this always hit the access
    /// log, regardless of sampling.
    double slow_threshold_ms = 250.0;
    /// Log every Nth request (1 = all, 0 = only slow ones).
    int64_t sample_every = 1;
    /// JSONL access log path ("" = no access log).
    std::string access_log_path;
    /// Histogram bucket upper edges in seconds; empty = log-spaced
    /// default (10 µs growing ×√2 up to ~7 s).
    std::vector<double> latency_bounds;
  };

  explicit RequestObservability(Options options);
  ~RequestObservability();

  RequestObservability(const RequestObservability&) = delete;
  RequestObservability& operator=(const RequestObservability&) = delete;

  /// Opens the access log (no-op without a path). False + reason on
  /// I/O failure.
  bool OpenAccessLog(std::string* error);

  /// Records one finished request: histograms, ring, slow table,
  /// access log sampling. Safe from any thread.
  void Observe(const RequestTimeline& timeline);

  /// Ring snapshot, oldest first.
  std::vector<RequestTimeline> RecentRequests() const;
  /// Slow table, slowest first.
  std::vector<RequestTimeline> SlowRequests() const;

  /// {"type":"debug_requests","requests":[...]} for /debug/requests.
  JsonValue RequestsJson() const;
  /// {"type":"debug_slow","requests":[...]} for /debug/slow.
  JsonValue SlowJson() const;
  /// Per-stage and per-endpoint latency percentiles estimated from the
  /// registry histograms: the server-side breakdown loadgen folds into
  /// BENCH_serving.json.
  JsonValue StagesJson() const;

  uint64_t observed() const {
    return observed_.load(std::memory_order_relaxed);
  }
  uint64_t access_log_lines() const {
    return access_lines_.load(std::memory_order_relaxed);
  }
  const Options& options() const { return options_; }

  /// One access-log JSONL record (also used by tests to assert the
  /// round-trip through the strict parser).
  static JsonValue TimelineToJson(const RequestTimeline& timeline);

 private:
  std::string EndpointName(const RequestTimeline& timeline) const;
  Histogram* EndpointHistogram(const std::string& endpoint);
  void WriteAccessLine(const RequestTimeline& timeline);

  Options options_;
  RequestRing ring_;
  /// Pre-resolved registry pointers: Observe runs on every request
  /// completion, so it must not pay the registry's name-keyed mutex
  /// lookup per call. Stages are fixed; endpoints are a small bounded
  /// set (routed paths + "other") cached under their own mutex.
  Histogram* stage_histograms_[kNumRequestStages] = {nullptr};
  mutable std::mutex endpoint_mu_;
  std::unordered_map<std::string, Histogram*> endpoint_histograms_;
  std::atomic<uint64_t> observed_{0};
  std::atomic<uint64_t> access_lines_{0};

  mutable std::mutex slow_mu_;
  std::vector<RequestTimeline> slow_;  // sorted, slowest first

  std::mutex log_mu_;
  int log_fd_ = -1;
};

/// Quantile estimate from a fixed-bucket histogram (bounds = inclusive
/// upper edges, buckets = per-bucket counts with one extra overflow
/// cell). Linear interpolation inside the chosen bucket; the overflow
/// bucket clamps to the last finite edge. Returns 0 when empty.
double HistogramQuantile(const std::vector<double>& bounds,
                         const std::vector<uint64_t>& buckets, double q);

/// Wall-clock seconds since the Unix epoch (access-log timestamps).
double RequestUnixSeconds();

}  // namespace equitensor

#endif  // EQUITENSOR_UTIL_REQUEST_TRACE_H_
