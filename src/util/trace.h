#ifndef EQUITENSOR_UTIL_TRACE_H_
#define EQUITENSOR_UTIL_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/perf_counters.h"

namespace equitensor {

/// RAII trace spans over the hot kernels (DESIGN.md §10).
///
///   void Conv3dForward(...) {
///     ET_TRACE_SPAN("conv3d.fwd");
///     ...
///   }
///
/// Spans nest (a span started while another is open on the same
/// thread becomes its child, and the parent's *self* time excludes
/// the child's wall time), record wall time on the monotonic clock,
/// and aggregate per call-site into lock-free per-thread slots merged
/// on scrape — the same slot scheme as util/metrics.
///
/// Overhead contract:
///  - Compiled out entirely when the CMake option `EQUITENSOR_TRACE`
///    is OFF (`ET_TRACE_SPAN` expands to a no-op statement).
///  - Compiled in but runtime-disabled (the default): one relaxed
///    atomic load and a branch per span — no clock reads, no stores.
///  - Enabled: two clock reads plus a handful of relaxed atomic adds
///    per span. Spans wrap whole kernel invocations, never inner
///    loops, so even the enabled cost is noise against a conv pass.

#ifndef EQUITENSOR_TRACE_ENABLED
#define EQUITENSOR_TRACE_ENABLED 1
#endif

/// Master runtime switch; spans opened while disabled record nothing
/// (default: disabled — opt in via --trace or tests).
void SetTracingEnabled(bool enabled);
bool TracingEnabled();

/// Whether ET_TRACE_SPAN compiles to a real span in this build
/// (EQUITENSOR_TRACE=ON). When false, --trace/--chrome_trace can only
/// produce empty output — callers should warn loudly.
constexpr bool TraceCompiledIn() { return EQUITENSOR_TRACE_ENABLED != 0; }

/// One completed span occurrence captured for the Chrome-trace
/// exporter (util/trace_export.h).
struct TraceEvent {
  const char* name = nullptr;  // span-site literal, never freed
  uint64_t start_ns = 0;       // monotonic clock
  uint64_t duration_ns = 0;
  uint32_t thread_id = 0;  // dense per-thread track id (0 = first seen)
};

/// Starts buffering one TraceEvent per completed span, in addition to
/// the aggregate stats. Requires tracing to also be enabled. Buffers
/// are bounded per thread; overflow drops events and counts the drops.
/// Clears any events and drop counts from a previous recording.
void StartTraceEventRecording();

/// Stops buffering and drains every thread's events, sorted by start
/// time. Safe to call when recording never started (returns empty).
std::vector<TraceEvent> StopTraceEventRecording();

bool TraceEventRecordingActive();

/// Events discarded because a per-thread buffer filled up during the
/// current/last recording.
uint64_t DroppedTraceEventCount();

/// Names the calling thread's track in Chrome-trace exports ("main",
/// "pool.worker3", ...). Unnamed threads fall back to "thread<N>".
void SetTraceThreadName(const std::string& name);

/// (thread_id, name) pairs for every thread that recorded events or
/// named itself, in thread_id order.
std::vector<std::pair<uint32_t, std::string>> TraceThreadNames();

/// Nesting depth of open spans on the calling thread (0 = none).
int CurrentTraceDepth();

/// Per-span latency histograms (DESIGN.md §16): every SpanSite also
/// counts durations into a shared log-spaced bucket layout, so
/// /metrics can expose real multi-bucket `et_kernel_seconds`
/// histograms instead of the count/sum-only shape PR 5 shipped.
/// Finite bucket upper edges, max kMaxTraceHistogramBuckets.
constexpr int kMaxTraceHistogramBuckets = 16;

/// Replaces the layout: `count` edges from `start_seconds` growing by
/// ×`growth` (defaults: 1 µs ×4, 16 edges ≈ up to 1.1 s). Meant to be
/// called before any spans record (tools parse flags before enabling
/// tracing). If samples were already counted, this warns once and
/// rescales every site's recorded buckets onto the new edges (each old
/// bucket's count moves to the new bucket containing its midpoint) —
/// approximate, but never the silent old-counts-against-new-edges mix.
/// Values are clamped to sane ranges; `count` to
/// [1, kMaxTraceHistogramBuckets].
void ConfigureTraceHistogram(double start_seconds, double growth, int count);

/// The current finite bucket edges, in seconds, ascending.
std::vector<double> TraceHistogramBounds();

namespace trace_internal {

extern std::atomic<bool> g_enabled;

struct alignas(64) SiteSlot {
  std::atomic<uint64_t> count{0};
  std::atomic<uint64_t> total_ns{0};
  std::atomic<uint64_t> child_ns{0};
  std::atomic<uint64_t> max_ns{0};
  // One counter per finite edge plus the +Inf overflow cell.
  std::atomic<uint64_t> buckets[kMaxTraceHistogramBuckets + 1] = {};
  // Hardware-counter deltas (util/perf_counters), inclusive of child
  // spans like total_ns. counter_samples counts the spans that
  // contributed, so rates stay honest when counters were enabled for
  // only part of the run.
  std::atomic<uint64_t> counter_samples{0};
  std::atomic<uint64_t> counters[kNumPerfCounters] = {};
};

/// One ET_TRACE_SPAN call site: a function-local static that
/// registers itself in the global site list on first execution and
/// owns the per-thread aggregation slots. Never destroyed.
class SpanSite {
 public:
  explicit SpanSite(const char* name);

  void Record(uint64_t elapsed_ns, uint64_t child_ns);
  /// Folds one span's hardware-counter delta into the calling
  /// thread's slot (invalid deltas are ignored).
  void RecordCounters(const PerfCounterSample& delta);

  const char* name() const { return name_; }
  uint64_t Count() const;
  uint64_t TotalNs() const;
  uint64_t ChildNs() const;
  uint64_t MaxNs() const;
  /// Per-bucket counts merged over slots; size = current finite edge
  /// count + 1 (overflow last).
  std::vector<uint64_t> BucketCounts() const;
  uint64_t CounterSamples() const;
  uint64_t CounterTotal(int counter) const;
  /// Remaps every slot's recorded bucket counts from the `old_count`
  /// edges in `old_edges_ns` onto the current layout (each bucket's
  /// midpoint decides its new home). Used by ConfigureTraceHistogram
  /// when the layout changes after samples were recorded.
  void RescaleBuckets(const uint64_t* old_edges_ns, int old_count);
  void Reset();

 private:
  const char* name_;
  SiteSlot slots_[64];
};

uint64_t MonotonicNowNs();

}  // namespace trace_internal

/// Scoped timer bound to a SpanSite. Construct via ET_TRACE_SPAN.
class TraceSpan {
 public:
  explicit TraceSpan(trace_internal::SpanSite& site);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  trace_internal::SpanSite* site_;  // null when tracing was disabled
  TraceSpan* parent_;
  uint64_t start_ns_ = 0;
  uint64_t child_ns_ = 0;
  // Hardware-counter snapshot at span entry; invalid (and untouched
  // at exit) unless perf counters are enabled and readable.
  PerfCounterSample counters_start_;
};

/// Aggregated statistics for one span name, merged across every call
/// site with that name and every thread.
struct TraceStats {
  std::string name;
  uint64_t count = 0;
  double total_seconds = 0.0;  // wall time, children included
  double self_seconds = 0.0;   // wall time minus child spans
  double max_seconds = 0.0;    // longest single span
  /// Latency histogram: finite upper edges in seconds (ascending) and
  /// per-bucket counts with one extra overflow cell. The counts sum to
  /// `count`, which keeps the Prometheus +Inf == _count invariant.
  std::vector<double> bucket_bounds;
  std::vector<uint64_t> bucket_counts;
  /// Hardware-counter totals (PerfCounter order), summed over the
  /// `counter_samples` spans that ran with counters enabled and
  /// readable. All zero when counters never ran.
  uint64_t counter_samples = 0;
  uint64_t counters[kNumPerfCounters] = {0};

  /// Instructions per cycle over the counted spans (0 when no data).
  double Ipc() const;
  /// Misses per 1000 instructions for kL1dMisses / kLlcMisses /
  /// kBranchMisses (0 when no data).
  double Mpki(PerfCounter counter) const;
};

/// Scrapes all sites, merged by name and sorted by total time
/// descending. Cheap enough to call per epoch.
std::vector<TraceStats> CollectTraceStats();

/// Human-readable table of CollectTraceStats() (empty string when
/// nothing was recorded).
std::string TraceReportTable();

/// Zeroes every site's accumulators; sites stay registered.
void ResetTraceStatsForTesting();

#if EQUITENSOR_TRACE_ENABLED

#define ET_TRACE_CONCAT_INNER(a, b) a##b
#define ET_TRACE_CONCAT(a, b) ET_TRACE_CONCAT_INNER(a, b)

/// Opens a span covering the rest of the enclosing scope. `name` must
/// be a string literal (it is stored by pointer).
#define ET_TRACE_SPAN(name)                                             \
  static ::equitensor::trace_internal::SpanSite ET_TRACE_CONCAT(        \
      et_trace_site_, __LINE__){name};                                  \
  ::equitensor::TraceSpan ET_TRACE_CONCAT(et_trace_span_, __LINE__)(    \
      ET_TRACE_CONCAT(et_trace_site_, __LINE__))

#else

#define ET_TRACE_SPAN(name) \
  do {                      \
  } while (0)

#endif  // EQUITENSOR_TRACE_ENABLED

}  // namespace equitensor

#endif  // EQUITENSOR_UTIL_TRACE_H_
