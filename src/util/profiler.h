#ifndef EQUITENSOR_UTIL_PROFILER_H_
#define EQUITENSOR_UTIL_PROFILER_H_

#include <cstdint>
#include <string>

namespace equitensor {

/// On-demand sampling CPU profiler (DESIGN.md §17).
///
/// StartCpuProfile arms a POSIX profiling timer (`setitimer` with
/// ITIMER_PROF); the kernel delivers SIGPROF to whichever thread is
/// burning CPU, and the signal handler walks that thread's stack via
/// frame pointers (the build compiles with -fno-omit-frame-pointer
/// for exactly this) into a preallocated lock-free per-thread ring.
/// StopCpuProfile disarms the timer, symbolizes the collected program
/// counters offline — `dladdr` first (the build links with
/// CMAKE_ENABLE_EXPORTS so external functions are in the dynamic
/// symbol table), then the module's on-disk `.symtab` for the local
/// symbols dladdr cannot see (anonymous-namespace kernels, ParallelFor
/// lambdas, static helpers — i.e. the hot frames) — and aggregates the
/// samples into folded-stack lines —
/// `frameA;frameB;frameC 42` — consumable by any flamegraph renderer
/// and by tools/profile_report.
///
/// Signal-safety contract (the handler may interrupt ANY code,
/// including malloc holding its lock):
///   - all sample memory is allocated in StartCpuProfile, before the
///     timer is armed; the handler only writes into that memory,
///   - the handler touches nothing but lock-free atomics, the
///     thread-local ring index, and raw stack reads bounds-checked
///     against the interrupted stack pointer,
///   - ring slots are published by a release store on the write index
///     after the sample is fully written, so the (post-quiesce)
///     reader can never observe a torn sample.
///
/// Overhead contract: when no capture is active there is no handler,
/// no timer, and zero cost anywhere. Active capture costs one signal
/// delivery + a bounded stack walk per sample per busy thread
/// (~1–2 µs at the default 97 Hz: well under the 2% budget the bench
/// probe enforces).

struct CpuProfileOptions {
  /// Samples per second of *CPU time* per busy thread. 97 (prime) by
  /// default so sampling cannot phase-lock with periodic work.
  int hz = 97;
  /// Deepest stack recorded per sample; deeper frames are dropped
  /// from the root end and counted in truncated_frames.
  int max_depth = 48;
  /// Per-thread ring capacity in uint64 slots — each sample consumes
  /// 1 + depth slots, so the default holds ~1 500 typical stacks
  /// (~15 s of one busy thread at 97 Hz). A full ring drops further
  /// samples on that thread (counted, never blocking); long captures
  /// should scale this with hz × seconds.
  int ring_capacity = 1 << 14;
  /// Threads profiled concurrently; later threads' samples are
  /// dropped and counted.
  int max_threads = 64;
};

/// The result of one capture, already symbolized and aggregated.
struct CpuProfile {
  uint64_t samples = 0;            // stacks recorded
  uint64_t dropped_samples = 0;    // ring/thread-pool overflow
  uint64_t total_frames = 0;       // frames across all samples
  uint64_t symbolized_frames = 0;  // frames dladdr could name
  double seconds = 0.0;            // wall time the capture ran
  int hz = 0;
  /// "frame;frame;frame count\n" per unique stack, root first,
  /// sorted by count descending. Empty when nothing was sampled.
  std::string folded;
};

/// Arms the profiler. Fails (false + reason) if a capture is already
/// active or the timer/handler cannot be installed. Not signal-safe
/// itself — call from normal code only.
bool StartCpuProfile(const CpuProfileOptions& options, std::string* error);

/// Disarms, symbolizes, aggregates. Fails if no capture is active.
bool StopCpuProfile(CpuProfile* profile, std::string* error);

/// True between a successful Start and its Stop.
bool CpuProfileActive();

/// Start + sleep(seconds) + Stop, for the /debug/profile endpoint and
/// --profile flag. The calling thread sleeps; other threads keep
/// running (and being sampled).
bool CaptureCpuProfile(double seconds, const CpuProfileOptions& options,
                       CpuProfile* profile, std::string* error);

/// Renders folded-stack text into a self/total attribution table:
/// per frame, `self` counts samples where it was the leaf and `total`
/// counts samples it appeared anywhere in, sorted by self descending,
/// top `top_n` rows (0 = all). Returns "" for empty/unparseable input.
std::string ProfileReportTable(const std::string& folded, int top_n);

/// Fraction of total_frames that symbolized (1.0 when no frames).
double ProfileSymbolizedFraction(const CpuProfile& profile);

}  // namespace equitensor

#endif  // EQUITENSOR_UTIL_PROFILER_H_
