#ifndef EQUITENSOR_UTIL_ARENA_H_
#define EQUITENSOR_UTIL_ARENA_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace equitensor {

/// Reusable scratch-buffer arena for the kernel hot paths (DESIGN.md
/// §13). im2col lowering and GEMM packing need large per-call scratch
/// whose size depends only on the op's shapes; shapes repeat every
/// training step, so the arena plans each size once and then recycles:
/// steady-state conv/GEMM execution performs zero heap allocations.
///
/// Model: buffers are keyed by their element count rounded up to a
/// size class (powers of two above a small floor). `Acquire` pops a
/// recycled buffer of the right class or mallocs a fresh one;
/// releasing (via ArenaBuffer's destructor) pushes it back on the
/// class free list. Contents are NOT cleared on either side — callers
/// that need zeroed scratch must clear the span they use.
///
/// Thread safety: all operations take the arena mutex. Kernels
/// acquire scratch once per op invocation (never inside ParallelFor
/// bodies), so the lock is far off the inner-loop path.
///
/// Alignment: every buffer starts on a 64-byte (cache line) boundary,
/// so vector kernels may use aligned and non-temporal stores on any
/// offset that is a multiple of 16 floats.
///
/// Observability: fresh mallocs and recycled hits are counted; the
/// allocation-count probe (tests/arena_test.cc, ctest label `unit`)
/// asserts the steady-state training loop stops allocating after
/// warm-up, and the counters are exported through util/metrics as
/// `arena.allocations` / `arena.reuses` / `arena.bytes_reserved`.
class Arena {
 public:
  Arena() = default;
  ~Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Process-wide arena used by the kernel backends.
  static Arena& Global();

  struct Stats {
    uint64_t allocations = 0;    // fresh heap allocations
    uint64_t reuses = 0;         // acquires served from a free list
    uint64_t bytes_reserved = 0; // total bytes ever allocated and kept
    uint64_t outstanding = 0;    // buffers currently acquired
  };

  Stats stats() const;

  /// Heat stats for one size class (DESIGN.md §17): how hot each
  /// scratch shape runs, how well recycling works for it, and the
  /// most buffers of that class ever leased at once (the class's
  /// steady-state memory footprint).
  struct ClassStats {
    int64_t size_class = 0;       // element count of this class
    uint64_t refills = 0;         // fresh mallocs (free list was empty)
    uint64_t reuses = 0;          // acquires served from the free list
    uint64_t outstanding = 0;     // currently leased
    uint64_t high_watermark = 0;  // max simultaneously leased
    uint64_t bytes_reserved = 0;  // refills * class bytes

    /// Fraction of acquires served without a malloc (0 when unused).
    double ReuseRate() const {
      const uint64_t acquires = refills + reuses;
      return acquires == 0
                 ? 0.0
                 : static_cast<double>(reuses) / static_cast<double>(acquires);
    }
  };

  /// Per-class snapshot, sorted by size_class ascending.
  std::vector<ClassStats> class_stats() const;

  /// Drops every cached buffer (outstanding ones are unaffected and
  /// still return to the — now empty — free lists) and zeroes the
  /// counters. Test hook; never called on the training path.
  void ResetForTesting();

  /// Deleter for the aligned allocations backing arena buffers.
  struct AlignedFree {
    void operator()(float* p) const;
  };
  using Buf = std::unique_ptr<float[], AlignedFree>;

 private:
  friend class ArenaBuffer;

  Buf AcquireRaw(int64_t count, int64_t* size_class);
  void Release(Buf buf, int64_t size_class);

  mutable std::mutex mu_;
  // size class (element count) -> idle buffers of exactly that class.
  // The leased buffer itself travels inside ArenaBuffer, so acquire
  // and release are free-list pops/pushes with no bookkeeping allocs.
  std::unordered_map<int64_t, std::vector<Buf>> free_;
  Stats stats_;
  // Per-class accounting, updated under mu_ on the same acquire/release
  // edges as stats_ (one map probe per op — off the inner-loop path,
  // see the thread-safety note above).
  std::unordered_map<int64_t, ClassStats> class_stats_;
};

/// RAII lease of arena scratch: acquires `count` floats on
/// construction, returns them to the free list on destruction.
/// Movable, not copyable. The span is uninitialized.
class ArenaBuffer {
 public:
  ArenaBuffer() = default;
  ArenaBuffer(Arena& arena, int64_t count);
  ~ArenaBuffer();
  ArenaBuffer(ArenaBuffer&& other) noexcept;
  ArenaBuffer& operator=(ArenaBuffer&& other) noexcept;
  ArenaBuffer(const ArenaBuffer&) = delete;
  ArenaBuffer& operator=(const ArenaBuffer&) = delete;

  float* data() { return buf_.get(); }
  const float* data() const { return buf_.get(); }
  int64_t count() const { return count_; }

  /// Sets the leased span (not the whole size class) to zero.
  void Zero();

 private:
  Arena* arena_ = nullptr;
  Arena::Buf buf_;
  int64_t count_ = 0;
  int64_t size_class_ = 0;
};

}  // namespace equitensor

#endif  // EQUITENSOR_UTIL_ARENA_H_
