#include "util/arena.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "util/check.h"
#include "util/metrics.h"

namespace equitensor {
namespace {

// Smallest size class: below this every request shares one class so a
// spray of tiny scratch requests cannot fragment the free lists.
constexpr int64_t kMinClass = 256;

int64_t SizeClassFor(int64_t count) {
  int64_t c = kMinClass;
  while (c < count) c <<= 1;
  return c;
}

}  // namespace

Arena& Arena::Global() {
  static Arena* arena = new Arena();  // never destroyed
  return *arena;
}

void Arena::AlignedFree::operator()(float* p) const { std::free(p); }

Arena::Buf Arena::AcquireRaw(int64_t count, int64_t* size_class) {
  ET_CHECK_GT(count, 0) << "arena acquire of empty buffer";
  const int64_t cls = SizeClassFor(count);
  *size_class = cls;
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.outstanding;
  ClassStats& heat = class_stats_[cls];
  heat.size_class = cls;
  ++heat.outstanding;
  heat.high_watermark = std::max(heat.high_watermark, heat.outstanding);
  auto it = free_.find(cls);
  if (it != free_.end() && !it->second.empty()) {
    Buf buf = std::move(it->second.back());
    it->second.pop_back();
    ++stats_.reuses;
    ++heat.reuses;
    ET_METRIC_COUNTER_ADD("arena.reuses", 1);
    return buf;
  }
  ++stats_.allocations;
  stats_.bytes_reserved += static_cast<uint64_t>(cls) * sizeof(float);
  ++heat.refills;
  heat.bytes_reserved += static_cast<uint64_t>(cls) * sizeof(float);
  ET_METRIC_COUNTER_ADD("arena.allocations", 1);
  ET_METRIC_GAUGE_SET("arena.bytes_reserved",
                      static_cast<double>(stats_.bytes_reserved));
  // Size classes are powers of two >= 256 floats, so the byte count is
  // a multiple of the 64-byte alignment as aligned_alloc requires.
  float* raw = static_cast<float*>(
      std::aligned_alloc(64, static_cast<size_t>(cls) * sizeof(float)));
  ET_CHECK(raw != nullptr) << "arena allocation failed";
  return Buf(raw);
}

void Arena::Release(Buf buf, int64_t size_class) {
  std::lock_guard<std::mutex> lock(mu_);
  // The free-list vector keeps its capacity across pop/push, so a
  // steady-state release is pointer moves only — no heap traffic.
  free_[size_class].push_back(std::move(buf));
  ET_CHECK_GT(stats_.outstanding, 0u);
  --stats_.outstanding;
  ClassStats& heat = class_stats_[size_class];
  if (heat.outstanding > 0) --heat.outstanding;
}

Arena::Stats Arena::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<Arena::ClassStats> Arena::class_stats() const {
  std::vector<ClassStats> classes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    classes.reserve(class_stats_.size());
    for (const auto& [cls, heat] : class_stats_) {
      (void)cls;
      classes.push_back(heat);
    }
  }
  std::sort(classes.begin(), classes.end(),
            [](const ClassStats& a, const ClassStats& b) {
              return a.size_class < b.size_class;
            });
  return classes;
}

void Arena::ResetForTesting() {
  std::lock_guard<std::mutex> lock(mu_);
  free_.clear();
  const uint64_t outstanding = stats_.outstanding;
  stats_ = Stats{};
  stats_.outstanding = outstanding;
  class_stats_.clear();
}

ArenaBuffer::ArenaBuffer(Arena& arena, int64_t count)
    : arena_(&arena), count_(count) {
  buf_ = arena.AcquireRaw(count, &size_class_);
}

ArenaBuffer::~ArenaBuffer() {
  if (arena_ != nullptr && buf_ != nullptr) {
    arena_->Release(std::move(buf_), size_class_);
  }
}

ArenaBuffer::ArenaBuffer(ArenaBuffer&& other) noexcept
    : arena_(other.arena_),
      buf_(std::move(other.buf_)),
      count_(other.count_),
      size_class_(other.size_class_) {
  other.arena_ = nullptr;
  other.count_ = 0;
  other.size_class_ = 0;
}

ArenaBuffer& ArenaBuffer::operator=(ArenaBuffer&& other) noexcept {
  if (this != &other) {
    if (arena_ != nullptr && buf_ != nullptr) {
      arena_->Release(std::move(buf_), size_class_);
    }
    arena_ = other.arena_;
    buf_ = std::move(other.buf_);
    count_ = other.count_;
    size_class_ = other.size_class_;
    other.arena_ = nullptr;
    other.count_ = 0;
    other.size_class_ = 0;
  }
  return *this;
}

void ArenaBuffer::Zero() {
  if (buf_ != nullptr) {
    std::memset(buf_.get(), 0, static_cast<size_t>(count_) * sizeof(float));
  }
}

}  // namespace equitensor
