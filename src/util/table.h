#ifndef EQUITENSOR_UTIL_TABLE_H_
#define EQUITENSOR_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace equitensor {

/// Aligned text table builder used by the experiment benches to print
/// paper-style result tables, and to dump the same rows as CSV.
class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends one row; must have exactly as many cells as headers.
  void AddRow(std::vector<std::string> row);

  /// Formats a double with the given number of decimals.
  static std::string Num(double value, int decimals = 3);

  /// Formats "mean (std)" as used in Table 5 of the paper.
  static std::string MeanStd(double mean, double std, int decimals = 3);

  /// Renders an aligned, boxed text table.
  std::string ToString() const;

  /// Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
  std::string ToCsv() const;

  /// Writes ToCsv() to a file path. Returns false on I/O failure.
  bool WriteCsv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Streams TextTable::ToString().
std::ostream& operator<<(std::ostream& os, const TextTable& table);

}  // namespace equitensor

#endif  // EQUITENSOR_UTIL_TABLE_H_
