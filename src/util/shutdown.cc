#include "util/shutdown.h"

#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>

namespace equitensor {
namespace {

std::atomic<bool> g_shutdown_requested{false};
std::atomic<uint64_t> g_reload_requests{0};

// Fixed-size fd table so the signal handler never allocates. -1 marks
// a free slot. Writes happen on normal threads; the handler only
// reads/exchanges, all through atomics.
constexpr int kMaxShutdownFds = 8;
std::atomic<int> g_fds[kMaxShutdownFds] = {
    {-1}, {-1}, {-1}, {-1}, {-1}, {-1}, {-1}, {-1}};

void ShutdownSignalHandler(int signum) {
  g_shutdown_requested.store(true, std::memory_order_release);
  for (std::atomic<int>& slot : g_fds) {
    const int fd = slot.exchange(-1, std::memory_order_acq_rel);
    if (fd >= 0) {
      // shutdown(2) before close(2): on Linux, closing a listening
      // socket does NOT wake a thread blocked in accept(2) — only
      // shutdown does (accept returns EINVAL). Both calls are
      // async-signal-safe.
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
    }
  }
  // Second signal: default disposition (terminate). Re-install lazily
  // here instead of using SA_RESETHAND so SIGINT and SIGTERM reset
  // each other too.
  struct sigaction dfl = {};
  dfl.sa_handler = SIG_DFL;
  ::sigaction(SIGINT, &dfl, nullptr);
  ::sigaction(SIGTERM, &dfl, nullptr);
  (void)signum;
}

}  // namespace

namespace {
void ReloadSignalHandler(int signum) {
  g_reload_requests.fetch_add(1, std::memory_order_acq_rel);
  (void)signum;
}
}  // namespace

void InstallReloadSignalHandler() {
  struct sigaction sa = {};
  sa.sa_handler = ReloadSignalHandler;
  ::sigemptyset(&sa.sa_mask);
  // SA_RESTART: a reload must not disturb in-flight socket reads; the
  // serving loop polls ReloadRequestCount at its own pace.
  sa.sa_flags = SA_RESTART;
  ::sigaction(SIGHUP, &sa, nullptr);
}

uint64_t ReloadRequestCount() {
  return g_reload_requests.load(std::memory_order_acquire);
}

void RequestReloadForTesting() {
  g_reload_requests.fetch_add(1, std::memory_order_acq_rel);
}

void InstallShutdownSignalHandlers() {
  struct sigaction sa = {};
  sa.sa_handler = ShutdownSignalHandler;
  ::sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // No SA_RESTART: blocked accept(2) returns EINTR.
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

bool ShutdownRequested() {
  return g_shutdown_requested.load(std::memory_order_acquire);
}

void RequestShutdown() {
  g_shutdown_requested.store(true, std::memory_order_release);
}

bool RegisterShutdownFd(int fd) {
  if (fd < 0) return false;
  for (std::atomic<int>& slot : g_fds) {
    int expected = -1;
    if (slot.compare_exchange_strong(expected, fd,
                                     std::memory_order_acq_rel)) {
      return true;
    }
  }
  return false;
}

bool UnregisterShutdownFd(int fd) {
  if (fd < 0) return false;
  for (std::atomic<int>& slot : g_fds) {
    int expected = fd;
    if (slot.compare_exchange_strong(expected, -1,
                                     std::memory_order_acq_rel)) {
      return true;
    }
  }
  return false;
}

void ResetShutdownForTesting() {
  g_shutdown_requested.store(false, std::memory_order_release);
}

}  // namespace equitensor
