#ifndef EQUITENSOR_UTIL_RNG_H_
#define EQUITENSOR_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace equitensor {

/// Deterministic pseudo-random number generator used throughout the
/// library. Wraps a SplitMix64-seeded xoshiro256** core so that every
/// experiment is reproducible from a single seed, and child generators
/// can be forked (`Split`) without correlating streams.
class Rng {
 public:
  /// Creates a generator from a 64-bit seed. Equal seeds produce equal
  /// streams on every platform.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Returns the next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal sample (Box–Muller, cached pair).
  double Normal();

  /// Normal sample with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Poisson sample with the given rate (Knuth for small lambda,
  /// normal approximation for large lambda).
  int Poisson(double lambda);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Forks an independent child generator. The parent stream advances,
  /// so repeated Split() calls yield distinct children.
  Rng Split();

  /// Fisher–Yates shuffles indices [0, n) and returns the permutation.
  std::vector<size_t> Permutation(size_t n);

  /// Raw generator state for checkpointing: the 4 xoshiro words, the
  /// Box–Muller cache flag, and the cached sample's bit pattern (6
  /// words). Restoring it resumes the stream bitwise-identically.
  std::vector<uint64_t> SerializeState() const;

  /// Restores state captured by SerializeState. Returns false (state
  /// unchanged) if `words` is malformed.
  bool DeserializeState(const std::vector<uint64_t>& words);

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace equitensor

#endif  // EQUITENSOR_UTIL_RNG_H_
