#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/check.h"

namespace equitensor {
namespace {

// Nesting cap: telemetry documents are ~3 levels deep; the cap only
// guards the recursive parser against adversarial inputs.
constexpr int kMaxDepth = 100;

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", u);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(std::string* out, double value) {
  if (!std::isfinite(value)) {
    // JSON has no inf/nan; null is the conventional stand-in.
    *out += "null";
    return;
  }
  // %.17g round-trips every double; shorten when a cheaper form does.
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.15g", value);
  if (std::strtod(buf, nullptr) != value) {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
  }
  *out += buf;
}

/// Recursive-descent JSON parser over an in-memory buffer.
class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool Run(JsonValue* out) {
    SkipWhitespace();
    if (!ParseValue(out, 0)) return false;
    SkipWhitespace();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return true;
  }

 private:
  bool Fail(const char* message) {
    if (error_ != nullptr) {
      *error_ = std::string(message) + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(const char* word, size_t len) {
    if (text_.compare(pos_, len, word) != 0) return Fail("invalid literal");
    pos_ += len;
    return true;
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Fail("unterminated string");
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      if (pos_ + 1 >= text_.size()) return Fail("dangling escape");
      const char esc = text_[pos_ + 1];
      pos_ += 2;
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + static_cast<size_t>(i)];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("invalid \\u escape");
            }
          }
          pos_ += 4;
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // combined; telemetry strings are ASCII in practice).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
  }

  bool ParseNumber(JsonValue* out) {
    // Strict JSON grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
    // — strtod alone is too permissive ("+1", "01", "0x2", "inf").
    const size_t start = pos_;
    auto digit = [&] {
      return pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]));
    };
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (!digit()) return Fail("invalid number");
    if (text_[pos_] == '0') {
      ++pos_;  // a leading zero cannot be followed by more digits
    } else {
      while (digit()) ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digit()) return Fail("invalid number");
      while (digit()) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!digit()) return Fail("invalid number");
      while (digit()) ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    *out = JsonValue::Number(std::strtod(token.c_str(), nullptr));
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case 'n':
        if (!Literal("null", 4)) return false;
        *out = JsonValue::Null();
        return true;
      case 't':
        if (!Literal("true", 4)) return false;
        *out = JsonValue::Bool(true);
        return true;
      case 'f':
        if (!Literal("false", 5)) return false;
        *out = JsonValue::Bool(false);
        return true;
      case '"': {
        std::string s;
        if (!ParseString(&s)) return false;
        *out = JsonValue::Str(std::move(s));
        return true;
      }
      case '[': {
        ++pos_;
        *out = JsonValue::Array();
        SkipWhitespace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        while (true) {
          JsonValue element;
          SkipWhitespace();
          if (!ParseValue(&element, depth + 1)) return false;
          out->Append(std::move(element));
          SkipWhitespace();
          if (pos_ >= text_.size()) return Fail("unterminated array");
          if (text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (text_[pos_] == ']') {
            ++pos_;
            return true;
          }
          return Fail("expected ',' or ']'");
        }
      }
      case '{': {
        ++pos_;
        *out = JsonValue::Object();
        SkipWhitespace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        while (true) {
          SkipWhitespace();
          if (pos_ >= text_.size() || text_[pos_] != '"') {
            return Fail("expected object key");
          }
          std::string key;
          if (!ParseString(&key)) return false;
          SkipWhitespace();
          if (pos_ >= text_.size() || text_[pos_] != ':') {
            return Fail("expected ':'");
          }
          ++pos_;
          SkipWhitespace();
          JsonValue value;
          if (!ParseValue(&value, depth + 1)) return false;
          out->Set(key, std::move(value));
          SkipWhitespace();
          if (pos_ >= text_.size()) return Fail("unterminated object");
          if (text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (text_[pos_] == '}') {
            ++pos_;
            return true;
          }
          return Fail("expected ',' or '}'");
        }
      }
      default:
        return ParseNumber(out);
    }
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::Bool(bool value) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::Number(double value) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::Str(std::string value) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

int64_t JsonValue::int_value() const {
  return static_cast<int64_t>(std::llround(number_));
}

void JsonValue::Append(JsonValue value) {
  ET_CHECK(type_ == Type::kArray) << "Append on non-array JsonValue";
  items_.push_back(std::move(value));
}

void JsonValue::Set(const std::string& key, JsonValue value) {
  ET_CHECK(type_ == Type::kObject) << "Set on non-object JsonValue";
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  members_.emplace_back(key, std::move(value));
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string JsonValue::Dump() const {
  std::string out;
  switch (type_) {
    case Type::kNull:
      out = "null";
      break;
    case Type::kBool:
      out = bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      AppendNumber(&out, number_);
      break;
    case Type::kString:
      AppendEscaped(&out, string_);
      break;
    case Type::kArray: {
      out.push_back('[');
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out.push_back(',');
        out += items_[i].Dump();
      }
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      out.push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out.push_back(',');
        AppendEscaped(&out, members_[i].first);
        out.push_back(':');
        out += members_[i].second.Dump();
      }
      out.push_back('}');
      break;
    }
  }
  return out;
}

bool JsonValue::Parse(const std::string& text, JsonValue* out,
                      std::string* error) {
  Parser parser(text, error);
  if (parser.Run(out)) return true;
  *out = JsonValue::Null();
  return false;
}

}  // namespace equitensor
