#include "util/ascii_map.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace equitensor {
namespace {

constexpr char kRamp[] = " .:-=+*#%@";
constexpr int kRampSize = 10;

char RampChar(float value, float min_v, float max_v) {
  if (max_v <= min_v) return kRamp[0];
  const float t = (value - min_v) / (max_v - min_v);
  int idx = static_cast<int>(t * kRampSize);
  idx = std::max(0, std::min(kRampSize - 1, idx));
  return kRamp[idx];
}

}  // namespace

std::string RenderAsciiMap(const Tensor& field, int cell_width) {
  ET_CHECK_EQ(field.rank(), 2);
  ET_CHECK_GE(cell_width, 1);
  const int64_t w = field.dim(0), h = field.dim(1);
  const float min_v = field.Min();
  const float max_v = field.Max();
  std::ostringstream os;
  for (int64_t y = h - 1; y >= 0; --y) {  // North up.
    for (int64_t x = 0; x < w; ++x) {
      const char c = RampChar(field[x * h + y], min_v, max_v);
      for (int r = 0; r < cell_width; ++r) os << c;
    }
    os << "\n";
  }
  return os.str();
}

std::string RenderSparkline(const Tensor& series) {
  ET_CHECK_EQ(series.rank(), 1);
  static const char* kLevels[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  const float min_v = series.Min();
  const float max_v = series.Max();
  std::string out;
  for (int64_t i = 0; i < series.dim(0); ++i) {
    int level = 0;
    if (max_v > min_v) {
      level = static_cast<int>((series[i] - min_v) / (max_v - min_v) * 8.0f);
      level = std::max(0, std::min(7, level));
    }
    out += kLevels[level];
  }
  return out;
}

std::string RenderAsciiMaps(const std::vector<Tensor>& fields,
                            const std::vector<std::string>& titles,
                            int cell_width) {
  ET_CHECK_EQ(fields.size(), titles.size());
  ET_CHECK(!fields.empty());
  const int64_t h = fields[0].dim(1);
  // Render each map, split into lines.
  std::vector<std::vector<std::string>> columns;
  std::vector<size_t> widths;
  for (size_t c = 0; c < fields.size(); ++c) {
    const Tensor& field = fields[c];
    ET_CHECK_EQ(field.dim(1), h) << "maps must share height";
    const std::string rendered = RenderAsciiMap(field, cell_width);
    std::vector<std::string> lines;
    std::istringstream is(rendered);
    std::string line;
    while (std::getline(is, line)) lines.push_back(line);
    size_t width = titles[c].size();  // Titles are never truncated.
    for (const auto& l : lines) width = std::max(width, l.size());
    columns.push_back(std::move(lines));
    widths.push_back(width);
  }
  std::ostringstream os;
  for (size_t c = 0; c < titles.size(); ++c) {
    os << titles[c] << std::string(widths[c] - titles[c].size(), ' ');
    if (c + 1 < titles.size()) os << "   ";
  }
  os << "\n";
  for (int64_t row = 0; row < h; ++row) {
    for (size_t c = 0; c < columns.size(); ++c) {
      const std::string& line = columns[c][static_cast<size_t>(row)];
      os << line << std::string(widths[c] - line.size(), ' ');
      if (c + 1 < columns.size()) os << "   ";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace equitensor
