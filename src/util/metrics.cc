#include "util/metrics.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>

#include "util/check.h"

namespace equitensor {
namespace metrics_internal {

int ThreadSlot() {
  static std::atomic<int> next{0};
  thread_local const int slot =
      next.fetch_add(1, std::memory_order_relaxed) % kSlots;
  return slot;
}

void AtomicAddDouble(std::atomic<uint64_t>* bits, double delta) {
  uint64_t observed = bits->load(std::memory_order_relaxed);
  for (;;) {
    double current;
    std::memcpy(&current, &observed, sizeof(current));
    const double updated = current + delta;
    uint64_t updated_bits;
    std::memcpy(&updated_bits, &updated, sizeof(updated_bits));
    if (bits->compare_exchange_weak(observed, updated_bits,
                                    std::memory_order_relaxed)) {
      return;
    }
  }
}

double LoadDouble(const std::atomic<uint64_t>& bits) {
  const uint64_t raw = bits.load(std::memory_order_relaxed);
  double value;
  std::memcpy(&value, &raw, sizeof(value));
  return value;
}

void NoteNonfiniteDropped() {
  // Cached like the ET_METRIC_* macros; counters only ever add finite
  // integers, so this cannot recurse.
  static Counter* counter =
      MetricsRegistry::Global().GetCounter("metrics_nonfinite_dropped");
  counter->Add(1);
}

}  // namespace metrics_internal

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const auto& cell : cells_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (auto& cell : cells_) cell.value.store(0, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      slots_(static_cast<size_t>(metrics_internal::kSlots)) {
  ET_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bucket bounds must be sorted";
  for (auto& slot : slots_) {
    slot.buckets = std::vector<std::atomic<uint64_t>>(bounds_.size() + 1);
  }
}

void Histogram::Observe(double value) {
  if (!std::isfinite(value)) {
    metrics_internal::NoteNonfiniteDropped();
    return;
  }
  Slot& slot = slots_[static_cast<size_t>(metrics_internal::ThreadSlot())];
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  slot.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  slot.count.fetch_add(1, std::memory_order_relaxed);
  metrics_internal::AtomicAddDouble(&slot.sum_bits, value);
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> merged(bounds_.size() + 1, 0);
  for (const Slot& slot : slots_) {
    for (size_t b = 0; b < merged.size(); ++b) {
      merged[b] += slot.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return merged;
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const Slot& slot : slots_) {
    total += slot.count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Sum() const {
  double total = 0.0;
  for (const Slot& slot : slots_) {
    total += metrics_internal::LoadDouble(slot.sum_bits);
  }
  return total;
}

void Histogram::Reset() {
  for (Slot& slot : slots_) {
    for (auto& bucket : slot.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
    slot.count.store(0, std::memory_order_relaxed);
    slot.sum_bits.store(0, std::memory_order_relaxed);
  }
}

std::vector<double> Histogram::ExponentialBounds(double start, double growth,
                                                 int count) {
  ET_CHECK(start > 0.0 && growth > 1.0 && count > 0);
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(count));
  double edge = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(edge);
    edge *= growth;
  }
  return bounds;
}

struct MetricsRegistry::Impl {
  mutable std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  // Leaked: metric pointers cached in function-local statics must stay
  // valid through process teardown (worker threads may outlive main).
  static Impl* impl = new Impl();
  return *impl;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  auto& slot = state.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  auto& slot = state.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  auto& slot = state.histograms[name];
  if (!slot) {
    if (bounds.empty()) {
      // Latency-flavored default: 1 µs .. ~65 s in powers of 4.
      bounds = Histogram::ExponentialBounds(1e-6, 4.0, 13);
    }
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : state.counters) {
    snapshot.counters.push_back({name, counter->Value()});
  }
  for (const auto& [name, gauge] : state.gauges) {
    snapshot.gauges.push_back({name, gauge->Value()});
  }
  for (const auto& [name, histogram] : state.histograms) {
    snapshot.histograms.push_back({name, histogram->bounds(),
                                   histogram->BucketCounts(),
                                   histogram->Count(), histogram->Sum()});
  }
  return snapshot;
}

void MetricsRegistry::ResetForTesting() {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mu);
  for (auto& [name, counter] : state.counters) counter->Reset();
  for (auto& [name, gauge] : state.gauges) gauge->Reset();
  for (auto& [name, histogram] : state.histograms) histogram->Reset();
}

JsonValue MetricsToJson(const MetricsSnapshot& snapshot) {
  JsonValue root = JsonValue::Object();
  JsonValue counters = JsonValue::Object();
  for (const auto& c : snapshot.counters) {
    counters.Set(c.name, JsonValue::Number(static_cast<double>(c.value)));
  }
  root.Set("counters", std::move(counters));
  JsonValue gauges = JsonValue::Object();
  for (const auto& g : snapshot.gauges) {
    gauges.Set(g.name, JsonValue::Number(g.value));
  }
  root.Set("gauges", std::move(gauges));
  JsonValue histograms = JsonValue::Object();
  for (const auto& h : snapshot.histograms) {
    JsonValue entry = JsonValue::Object();
    JsonValue bounds = JsonValue::Array();
    for (const double b : h.bounds) bounds.Append(JsonValue::Number(b));
    entry.Set("bounds", std::move(bounds));
    JsonValue buckets = JsonValue::Array();
    for (const uint64_t b : h.buckets) {
      buckets.Append(JsonValue::Number(static_cast<double>(b)));
    }
    entry.Set("buckets", std::move(buckets));
    entry.Set("count", JsonValue::Number(static_cast<double>(h.count)));
    entry.Set("sum", JsonValue::Number(h.sum));
    histograms.Set(h.name, std::move(entry));
  }
  root.Set("histograms", std::move(histograms));
  return root;
}

}  // namespace equitensor
