#ifndef EQUITENSOR_UTIL_SHUTDOWN_H_
#define EQUITENSOR_UTIL_SHUTDOWN_H_

#include <cstdint>

namespace equitensor {

/// Cooperative shutdown for long-running tools (DESIGN.md §12).
///
/// The first SIGINT/SIGTERM sets a process-wide flag and shuts down
/// (then closes) every registered file descriptor (the telemetry
/// server's listen socket), using only async-signal-safe calls; long
/// loops poll
/// ShutdownRequested() and wind down at the next safe point — the
/// trainer finishes the current epoch, flushes its run summary, and
/// exits 0. A second signal restores the default disposition and
/// re-raises, so a wedged process can still be killed.

/// Installs the SIGINT/SIGTERM handler described above. Idempotent.
void InstallShutdownSignalHandlers();

/// Whether a shutdown signal has been received (or RequestShutdown
/// was called). Cheap enough to poll per training step.
bool ShutdownRequested();

/// Sets the flag programmatically (tests, fatal-error paths).
void RequestShutdown();

/// Registers a file descriptor to be shutdown(2)-then-close(2)d from
/// the signal handler — shutdown is what actually unblocks a thread
/// parked in accept(2) (close alone leaves it blocked) so it can
/// observe the flag. At most a small fixed number of fds are tracked;
/// returns false when the table is full or fd is negative.
bool RegisterShutdownFd(int fd);

/// Removes a previously registered fd. Returns true when the fd was
/// still registered — i.e. the signal handler has NOT fired and the
/// caller still owns the descriptor and must close it. False means
/// the handler already shut it down and closed it (or it was never
/// registered); the fd number may have been reused, so do not touch
/// it.
bool UnregisterShutdownFd(int fd);

/// Hot-reload signalling (DESIGN.md §14): SIGHUP bumps a process-wide
/// counter instead of terminating. A serving loop remembers the last
/// count it acted on and reloads when the counter moves — signals that
/// arrive mid-reload coalesce into one more reload instead of queuing.
/// Idempotent; independent of the SIGINT/SIGTERM handler above.
void InstallReloadSignalHandler();

/// Number of SIGHUPs received since InstallReloadSignalHandler (or
/// ForTesting bumps). Monotonic.
uint64_t ReloadRequestCount();

/// Test hook: bumps the reload counter without raising a signal.
void RequestReloadForTesting();

/// Test hook: clears the flag (signal handlers stay installed).
void ResetShutdownForTesting();

}  // namespace equitensor

#endif  // EQUITENSOR_UTIL_SHUTDOWN_H_
