#include "util/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "util/check.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/shutdown.h"

namespace equitensor {
namespace {

const char* StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 431: return "Request Header Fields Too Large";
    case 503: return "Service Unavailable";
    default:  return "Unknown";
  }
}

void SetSocketTimeouts(int fd, int timeout_ms) {
  struct timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Writes all of `data`, tolerating short writes and EINTR. Returns
/// false on error/timeout (the peer gets a truncated response; there
/// is nothing better to do on a scrape path).
bool WriteAll(int fd, const char* data, size_t len) {
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::send(fd, data + done, len - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

void WriteResponse(int fd, const std::string& method,
                   const HttpResponse& response) {
  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     StatusText(response.status) + "\r\n";
  head += "Content-Type: " + response.content_type + "\r\n";
  head += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  head += "Connection: close\r\n\r\n";
  if (!WriteAll(fd, head.data(), head.size())) return;
  if (method != "HEAD") WriteAll(fd, response.body.data(), response.body.size());
}

void WriteErrorAndClose(int fd, int status) {
  HttpResponse response;
  response.status = status;
  response.body = std::string(StatusText(status)) + "\n";
  WriteResponse(fd, "GET", response);
  ::close(fd);
}

/// Reads until the end of the request head ("\r\n\r\n") or `cap`
/// bytes. Returns false on timeout/EOF-before-head/oversize (status
/// code to send back in *fail_status).
bool ReadRequestHead(int fd, size_t cap, std::string* head,
                     int* fail_status) {
  char buf[2048];
  while (head->find("\r\n\r\n") == std::string::npos) {
    if (head->size() > cap) {
      *fail_status = 431;
      return false;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      *fail_status = 408;  // timeout or premature close
      return false;
    }
    head->append(buf, static_cast<size_t>(n));
  }
  return true;
}

/// Parses "GET /path?query HTTP/1.1" out of the head's first line.
bool ParseRequestLine(const std::string& head, HttpRequest* request) {
  const size_t eol = head.find("\r\n");
  if (eol == std::string::npos) return false;
  const std::string line = head.substr(0, eol);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) return false;
  request->method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (line.compare(sp2 + 1, 7, "HTTP/1.") != 0) return false;
  if (target.empty() || target[0] != '/') return false;
  const size_t qmark = target.find('?');
  if (qmark == std::string::npos) {
    request->path = std::move(target);
  } else {
    request->path = target.substr(0, qmark);
    request->query = target.substr(qmark + 1);
  }
  return true;
}

}  // namespace

HttpServer::HttpServer(Options options) : options_(options) {
  if (options_.worker_threads < 1) options_.worker_threads = 1;
  if (options_.queue_capacity < 1) options_.queue_capacity = 1;
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Handle(const std::string& path, HttpHandler handler) {
  ET_CHECK(!running()) << "Handle() must precede Start()";
  ET_CHECK(!path.empty() && path[0] == '/') << "route must start with /";
  routes_.emplace_back(path, std::move(handler));
}

bool HttpServer::Start(int port, std::string* error) {
  const auto fail = [&](const std::string& reason) {
    if (error != nullptr) *error = reason + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };
  if (running()) {
    if (error != nullptr) *error = "server already running on port " +
                                   std::to_string(port_);
    return false;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return fail("bind to port " + std::to_string(port));
  }
  if (::listen(listen_fd_, 16) != 0) return fail("listen");

  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                    &len) != 0) {
    return fail("getsockname");
  }
  port_ = static_cast<int>(ntohs(addr.sin_port));

  workers_ = std::make_unique<TaskPool>(options_.worker_threads,
                                        options_.queue_capacity);
  running_.store(true, std::memory_order_release);
  // A shutdown signal closes the listen fd, kicking accept(2) out of
  // its block so the loop can observe ShutdownRequested().
  RegisterShutdownFd(listen_fd_);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void HttpServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (!running_.load(std::memory_order_acquire) || ShutdownRequested()) {
      if (fd >= 0) ::close(fd);
      return;
    }
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listen socket closed (Stop) or unrecoverable
    }
    SetSocketTimeouts(fd, options_.io_timeout_ms);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (!workers_->TrySubmit([this, fd] { ServeConnection(fd); })) {
      // Queue full: shed load from the accept thread. A tiny blocking
      // write, but bounded by the socket timeout.
      requests_shed_.fetch_add(1, std::memory_order_relaxed);
      ET_METRIC_COUNTER_ADD("http.requests_shed", 1);
      WriteErrorAndClose(fd, 503);
    }
  }
}

void HttpServer::ServeConnection(int fd) {
  std::string head;
  int fail_status = 400;
  if (!ReadRequestHead(fd, options_.max_request_bytes, &head, &fail_status)) {
    WriteErrorAndClose(fd, fail_status);
    return;
  }
  HttpRequest request;
  if (!ParseRequestLine(head, &request)) {
    WriteErrorAndClose(fd, 400);
    return;
  }
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  ET_METRIC_COUNTER_ADD("http.requests", 1);
  if (request.method != "GET" && request.method != "HEAD") {
    WriteErrorAndClose(fd, 405);
    return;
  }
  const HttpHandler* handler = nullptr;
  for (const auto& [path, h] : routes_) {
    if (path == request.path) {
      handler = &h;
      break;
    }
  }
  HttpResponse response;
  if (handler == nullptr) {
    response.status = 404;
    response.body = "not found\n";
  } else {
    try {
      response = (*handler)(request);
    } catch (const std::exception& e) {
      ET_LOG(Warning) << "http handler for " << request.path
                      << " threw: " << e.what();
      response = HttpResponse();
      response.status = 503;
      response.body = "handler error\n";
    }
  }
  WriteResponse(fd, request.method, response);
  ::close(fd);
}

void HttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // shutdown(2) is what unblocks a thread parked in accept(2) (close
  // alone leaves it blocked forever on Linux); the loop then sees
  // running_ == false and exits. When UnregisterShutdownFd returns
  // false the signal handler already shut the socket down and closed
  // it — the fd number may have been reused, so leave it alone.
  if (UnregisterShutdownFd(listen_fd_)) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_ = -1;
  port_ = 0;
  if (workers_) {
    workers_->Shutdown();  // In-flight responses complete.
    workers_.reset();
  }
}

bool HttpGet(int port, const std::string& path, int* status,
             std::string* body, std::string* error, int timeout_ms) {
  const auto fail = [&](const std::string& reason) {
    if (error != nullptr) *error = reason + ": " + std::strerror(errno);
    return false;
  };
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return fail("socket");
  SetSocketTimeouts(fd, timeout_ms);
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return fail("connect to 127.0.0.1:" + std::to_string(port));
  }
  const std::string request = "GET " + path +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                              "Connection: close\r\n\r\n";
  if (!WriteAll(fd, request.data(), request.size())) {
    ::close(fd);
    return fail("send");
  }
  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      ::close(fd);
      return fail("recv");
    }
    if (n == 0) break;
    raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos || raw.compare(0, 5, "HTTP/") != 0) {
    if (error != nullptr) *error = "malformed response";
    return false;
  }
  const size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 4 > head_end) {
    if (error != nullptr) *error = "malformed status line";
    return false;
  }
  *status = std::atoi(raw.c_str() + sp + 1);
  *body = raw.substr(head_end + 4);
  return true;
}

}  // namespace equitensor
