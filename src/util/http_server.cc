#include "util/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "util/check.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/shutdown.h"
#include "util/stopwatch.h"

namespace equitensor {
namespace {

const char* StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 503: return "Service Unavailable";
    default:  return "Unknown";
  }
}

void SetSocketTimeouts(int fd, int timeout_ms) {
  struct timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Writes all of `data`, tolerating short writes and EINTR. Returns
/// false on error/timeout (the peer gets a truncated response; there
/// is nothing better to do on this path).
bool WriteAll(int fd, const char* data, size_t len) {
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::send(fd, data + done, len - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

/// Writes one response. `keep_alive` selects the Connection header;
/// returns false when the write failed (the connection is dead).
bool WriteResponse(int fd, const std::string& method,
                   const HttpResponse& response, bool keep_alive) {
  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     StatusText(response.status) + "\r\n";
  head += "Content-Type: " + response.content_type + "\r\n";
  head += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  head += keep_alive ? "Connection: keep-alive\r\n\r\n"
                     : "Connection: close\r\n\r\n";
  if (!WriteAll(fd, head.data(), head.size())) return false;
  if (method == "HEAD") return true;
  return WriteAll(fd, response.body.data(), response.body.size());
}

void WriteError(int fd, int status) {
  HttpResponse response;
  response.status = status;
  response.body = std::string(StatusText(status)) + "\n";
  WriteResponse(fd, "GET", response, /*keep_alive=*/false);
}

bool AsciiCaseEq(const std::string& a, const char* b) {
  const size_t bn = std::strlen(b);
  if (a.size() != bn) return false;
  for (size_t i = 0; i < bn; ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string Trimmed(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return s.substr(b, e - b);
}

/// Everything parsed out of one request head.
struct RequestHead {
  HttpRequest request;
  bool has_content_length = false;
  size_t content_length = 0;
  bool keep_alive = true;  // HTTP/1.1 default
};

/// Parses "METHOD /path?query HTTP/1.x" — strictly. The line must be
/// exactly three space-separated non-empty tokens: an empty method, a
/// doubled space, or a target with an embedded unencoded space (e.g.
/// "GET /a b HTTP/1.1") is a 400, never a silently bogus path.
bool ParseRequestLine(const std::string& line, RequestHead* head) {
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos || sp1 == 0) return false;  // empty method
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos || sp2 == sp1 + 1) return false;
  // Any further space means an unencoded space inside the target or
  // version — reject instead of misparsing.
  if (line.find(' ', sp2 + 1) != std::string::npos) return false;
  head->request.method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = line.substr(sp2 + 1);
  if (version.compare(0, 7, "HTTP/1.") != 0 || version.size() != 8 ||
      (version[7] != '0' && version[7] != '1')) {
    return false;
  }
  if (target.empty() || target[0] != '/') return false;
  head->keep_alive = version[7] == '1';  // HTTP/1.0 defaults to close
  const size_t qmark = target.find('?');
  if (qmark == std::string::npos) {
    head->request.path = std::move(target);
  } else {
    head->request.path = target.substr(0, qmark);
    head->request.query = target.substr(qmark + 1);
  }
  return true;
}

/// Parses the head block (request line + header fields, without the
/// trailing blank line). Returns false on any malformed line.
bool ParseHead(const std::string& text, RequestHead* head) {
  size_t pos = text.find("\r\n");
  if (pos == std::string::npos) return false;
  if (!ParseRequestLine(text.substr(0, pos), head)) return false;
  pos += 2;
  while (pos < text.size()) {
    const size_t eol = text.find("\r\n", pos);
    const std::string line =
        text.substr(pos, eol == std::string::npos ? std::string::npos
                                                  : eol - pos);
    pos = eol == std::string::npos ? text.size() : eol + 2;
    if (line.empty()) continue;
    const size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0) return false;
    const std::string name = line.substr(0, colon);
    const std::string value = Trimmed(line.substr(colon + 1));
    if (AsciiCaseEq(name, "content-length")) {
      if (value.empty() ||
          value.find_first_not_of("0123456789") != std::string::npos) {
        return false;
      }
      errno = 0;
      const unsigned long long parsed = std::strtoull(value.c_str(), nullptr, 10);
      if (errno != 0) return false;
      head->has_content_length = true;
      head->content_length = static_cast<size_t>(parsed);
    } else if (AsciiCaseEq(name, "connection")) {
      if (AsciiCaseEq(value, "close")) head->keep_alive = false;
      if (AsciiCaseEq(value, "keep-alive")) head->keep_alive = true;
    }
  }
  return true;
}

/// Case-insensitive header lookup inside a raw response head block.
/// Returns false when absent.
bool FindHeaderValue(const std::string& head, const char* name,
                     std::string* value) {
  size_t pos = head.find("\r\n");
  while (pos != std::string::npos && pos + 2 < head.size()) {
    pos += 2;
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) eol = head.size();
    const std::string line = head.substr(pos, eol - pos);
    const size_t colon = line.find(':');
    if (colon != std::string::npos && AsciiCaseEq(line.substr(0, colon), name)) {
      *value = Trimmed(line.substr(colon + 1));
      return true;
    }
    pos = eol;
  }
  return false;
}

}  // namespace

HttpServer::HttpServer(Options options) : options_(options) {
  if (options_.worker_threads < 1) options_.worker_threads = 1;
  if (options_.queue_capacity < 1) options_.queue_capacity = 1;
  if (options_.max_requests_per_connection < 1) {
    options_.max_requests_per_connection = 1;
  }
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Handle(const std::string& path, HttpHandler handler) {
  Handle(path, {"GET", "HEAD"}, std::move(handler));
}

void HttpServer::Handle(const std::string& path,
                        std::vector<std::string> methods,
                        HttpHandler handler) {
  ET_CHECK(!running()) << "Handle() must precede Start()";
  ET_CHECK(!path.empty() && path[0] == '/') << "route must start with /";
  ET_CHECK(!methods.empty()) << "route needs at least one method";
  routes_.push_back(Route{path, std::move(methods), std::move(handler)});
}

void HttpServer::set_observer(
    std::function<void(const RequestTimeline&)> observer) {
  ET_CHECK(!running()) << "set_observer() must precede Start()";
  observer_ = std::move(observer);
}

bool HttpServer::Start(int port, std::string* error) {
  const auto fail = [&](const std::string& reason) {
    if (error != nullptr) *error = reason + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };
  if (running()) {
    if (error != nullptr) *error = "server already running on port " +
                                   std::to_string(port_);
    return false;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return fail("bind to port " + std::to_string(port));
  }
  if (::listen(listen_fd_, 64) != 0) return fail("listen");

  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                    &len) != 0) {
    return fail("getsockname");
  }
  port_ = static_cast<int>(ntohs(addr.sin_port));

  workers_ = std::make_unique<TaskPool>(options_.worker_threads,
                                        options_.queue_capacity);
  running_.store(true, std::memory_order_release);
  // A shutdown signal closes the listen fd, kicking accept(2) out of
  // its block so the loop can observe ShutdownRequested().
  RegisterShutdownFd(listen_fd_);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void HttpServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (!running_.load(std::memory_order_acquire) || ShutdownRequested()) {
      if (fd >= 0) ::close(fd);
      return;
    }
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listen socket closed (Stop) or unrecoverable
    }
    SetSocketTimeouts(fd, options_.io_timeout_ms);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (!workers_->TrySubmit([this, fd] { ServeConnection(fd); })) {
      // Queue full: shed load from the accept thread. A tiny blocking
      // write, but bounded by the socket timeout.
      requests_shed_.fetch_add(1, std::memory_order_relaxed);
      ET_METRIC_COUNTER_ADD("http.requests_shed", 1);
      // Say so in the log, at most about once a second: a silent 503
      // storm looks like a client bug until someone scrapes metrics.
      static std::atomic<int64_t> last_warn_s{-1};
      const int64_t now_s = std::chrono::duration_cast<std::chrono::seconds>(
                                std::chrono::steady_clock::now()
                                    .time_since_epoch())
                                .count();
      int64_t prev = last_warn_s.load(std::memory_order_relaxed);
      if (prev != now_s &&
          last_warn_s.compare_exchange_strong(prev, now_s,
                                              std::memory_order_relaxed)) {
        ET_LOG(Warning) << "http worker queue saturated; shedding with 503 ("
                        << requests_shed_.load(std::memory_order_relaxed)
                        << " shed total)";
      }
      WriteError(fd, 503);
      ::close(fd);
    }
  }
}

void HttpServer::TrackConnection(int fd) {
  std::lock_guard<std::mutex> lock(conn_mu_);
  open_conns_.insert(fd);
}

void HttpServer::UntrackAndClose(int fd) {
  std::lock_guard<std::mutex> lock(conn_mu_);
  open_conns_.erase(fd);
  ::close(fd);
}

void HttpServer::ServeConnection(int fd) {
  TrackConnection(fd);
  std::string buffer;  // unconsumed bytes: head-in-progress, body, next request
  char chunk[4096];
  uint64_t served_here = 0;
  const size_t head_cap = options_.max_request_bytes;
  const bool observed = static_cast<bool>(observer_);

  for (;;) {
    // Request timing starts at the first byte of this request:
    // pipelined leftovers count from here, otherwise the clock starts
    // after the first successful recv — keep-alive idle time between
    // requests is not parse time.
    Stopwatch request_watch;
    bool timing_started = observed && !buffer.empty();

    // --- Read until one full head is buffered. The cap is enforced
    // after every append: the head region can never overshoot
    // max_request_bytes before the 431 fires (it previously could, by
    // up to one read chunk).
    size_t head_end;
    for (;;) {
      head_end = buffer.find("\r\n\r\n");
      if (head_end != std::string::npos) break;
      if (buffer.size() > head_cap) {
        WriteError(fd, 431);
        UntrackAndClose(fd);
        return;
      }
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        // Idle keep-alive close (or a peer that never spoke): close
        // quietly. Anything mid-request gets the 408.
        if (!buffer.empty()) WriteError(fd, 408);
        UntrackAndClose(fd);
        return;
      }
      buffer.append(chunk, static_cast<size_t>(n));
      if (observed && !timing_started) {
        timing_started = true;
        request_watch.Restart();
      }
    }
    if (head_end + 4 > head_cap) {
      WriteError(fd, 431);
      UntrackAndClose(fd);
      return;
    }

    RequestHead head;
    if (!ParseHead(buffer.substr(0, head_end + 2), &head)) {
      WriteError(fd, 400);
      UntrackAndClose(fd);
      return;
    }
    buffer.erase(0, head_end + 4);

    HttpRequest& request = head.request;
    const bool method_known = request.method == "GET" ||
                              request.method == "HEAD" ||
                              request.method == "POST";
    if (!method_known) {
      WriteError(fd, 405);
      UntrackAndClose(fd);
      return;
    }

    // --- Body (framed by Content-Length; we do not speak chunked).
    if (head.has_content_length && head.content_length > 0) {
      if (head.content_length > options_.max_body_bytes) {
        WriteError(fd, 413);
        UntrackAndClose(fd);
        return;
      }
      while (buffer.size() < head.content_length) {
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) {
          WriteError(fd, 408);
          UntrackAndClose(fd);
          return;
        }
        buffer.append(chunk, static_cast<size_t>(n));
      }
      request.body = buffer.substr(0, head.content_length);
      buffer.erase(0, head.content_length);
    }

    requests_served_.fetch_add(1, std::memory_order_relaxed);
    ET_METRIC_COUNTER_ADD("http.requests", 1);
    ++served_here;

    // --- Observability context, living on this worker's stack for
    // exactly one request. Parse covers first byte -> head+body ready.
    RequestContext context;
    if (observed) {
      RequestTimeline& timeline = context.timeline();
      timeline.id = next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
      timeline.set_method(request.method);
      timeline.set_path(request.path);
      timeline.start_seconds =
          std::chrono::duration<double>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count();
      timeline.unix_seconds = RequestUnixSeconds();
      context.AddStage(RequestStage::kParse, request_watch.ElapsedSeconds());
      request.context = &context;
    }

    // --- Route.
    const Route* route = nullptr;
    for (const Route& r : routes_) {
      if (r.path == request.path) {
        route = &r;
        break;
      }
    }
    HttpResponse response;
    bool method_allowed = true;
    if (route == nullptr) {
      response.status = 404;
      response.body = "not found\n";
    } else {
      // HEAD rides on any GET route.
      const std::string& probe =
          request.method == "HEAD" ? std::string("GET") : request.method;
      method_allowed =
          std::find(route->methods.begin(), route->methods.end(), probe) !=
              route->methods.end() ||
          std::find(route->methods.begin(), route->methods.end(),
                    request.method) != route->methods.end();
      if (!method_allowed) {
        response.status = 405;
        response.body = "method not allowed\n";
      } else {
        try {
          response = route->handler(request);
        } catch (const std::exception& e) {
          ET_LOG(Warning) << "http handler for " << request.path
                          << " threw: " << e.what();
          response = HttpResponse();
          response.status = 503;
          response.body = "handler error\n";
        }
      }
    }

    const bool keep_alive =
        head.keep_alive && method_allowed &&
        served_here < options_.max_requests_per_connection &&
        running_.load(std::memory_order_acquire);
    bool write_ok;
    if (observed) {
      Stopwatch write_watch;
      write_ok = WriteResponse(fd, request.method, response, keep_alive);
      // Serialize = handler-side JSON render (already recorded via
      // StageScope) + the socket write added here.
      context.AddStage(RequestStage::kSerialize, write_watch.ElapsedSeconds());
      RequestTimeline& timeline = context.timeline();
      timeline.routed = route != nullptr && method_allowed;
      timeline.status = response.status;
      timeline.total_seconds = request_watch.ElapsedSeconds();
      observer_(timeline);
    } else {
      write_ok = WriteResponse(fd, request.method, response, keep_alive);
    }
    if (!write_ok || !keep_alive) {
      UntrackAndClose(fd);
      return;
    }
  }
}

void HttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // shutdown(2) is what unblocks a thread parked in accept(2) (close
  // alone leaves it blocked forever on Linux); the loop then sees
  // running_ == false and exits. When UnregisterShutdownFd returns
  // false the signal handler already shut the socket down and closed
  // it — the fd number may have been reused, so leave it alone.
  if (UnregisterShutdownFd(listen_fd_)) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_ = -1;
  port_ = 0;
  // Kick workers parked in recv(2) on idle keep-alive connections:
  // shutdown wakes the read with EOF, the loop sees running_ == false
  // (or the peer gone) and finishes. The fds stay open — their owning
  // worker closes them — so the numbers cannot be reused under us.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : open_conns_) ::shutdown(fd, SHUT_RD);
  }
  if (workers_) {
    workers_->Shutdown();  // In-flight responses complete.
    workers_.reset();
  }
}

// ---------------------------------------------------------------------------
// Client half.

bool HttpClient::Connect(int port, std::string* error, int timeout_ms) {
  Close();
  const auto fail = [&](const std::string& reason) {
    if (error != nullptr) *error = reason + ": " + std::strerror(errno);
    return false;
  };
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return fail("socket");
  SetSocketTimeouts(fd_, timeout_ms);
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd_, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    Close();
    return fail("connect to 127.0.0.1:" + std::to_string(port));
  }
  port_ = port;
  return true;
}

void HttpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool HttpClient::Get(const std::string& path, int* status, std::string* body,
                     std::string* error) {
  const std::string request = "GET " + path +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                              "Connection: keep-alive\r\n\r\n";
  return RoundTrip(request, status, body, error);
}

bool HttpClient::Post(const std::string& path, const std::string& request_body,
                      const std::string& content_type, int* status,
                      std::string* body, std::string* error) {
  const std::string request =
      "POST " + path + " HTTP/1.1\r\nHost: 127.0.0.1\r\n" +
      "Content-Type: " + content_type + "\r\n" +
      "Content-Length: " + std::to_string(request_body.size()) +
      "\r\nConnection: keep-alive\r\n\r\n" + request_body;
  return RoundTrip(request, status, body, error);
}

bool HttpClient::RoundTrip(const std::string& request, int* status,
                           std::string* body, std::string* error) {
  const auto fail = [&](const std::string& reason) {
    if (error != nullptr) *error = reason;
    Close();
    return false;
  };
  if (fd_ < 0) return fail("not connected");
  if (!WriteAll(fd_, request.data(), request.size())) {
    return fail(std::string("send: ") + std::strerror(errno));
  }
  std::string raw;
  char chunk[4096];
  size_t head_end;
  while ((head_end = raw.find("\r\n\r\n")) == std::string::npos) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return fail("connection closed before response head");
    raw.append(chunk, static_cast<size_t>(n));
  }
  const std::string head = raw.substr(0, head_end + 2);
  if (head.compare(0, 5, "HTTP/") != 0) return fail("malformed response");
  const size_t sp = head.find(' ');
  if (sp == std::string::npos) return fail("malformed status line");
  *status = std::atoi(head.c_str() + sp + 1);

  std::string length_text;
  if (!FindHeaderValue(head, "content-length", &length_text)) {
    return fail("response without Content-Length on a keep-alive connection");
  }
  const size_t content_length =
      static_cast<size_t>(std::strtoull(length_text.c_str(), nullptr, 10));
  std::string rest = raw.substr(head_end + 4);
  while (rest.size() < content_length) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return fail("truncated body");
    rest.append(chunk, static_cast<size_t>(n));
  }
  *body = rest.substr(0, content_length);

  std::string connection;
  if (FindHeaderValue(head, "connection", &connection) &&
      AsciiCaseEq(connection, "close")) {
    Close();
  }
  return true;
}

bool HttpGet(int port, const std::string& path, int* status,
             std::string* body, std::string* error, int timeout_ms) {
  const auto fail = [&](const std::string& reason) {
    if (error != nullptr) *error = reason + ": " + std::strerror(errno);
    return false;
  };
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return fail("socket");
  SetSocketTimeouts(fd, timeout_ms);
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return fail("connect to 127.0.0.1:" + std::to_string(port));
  }
  const std::string request = "GET " + path +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                              "Connection: close\r\n\r\n";
  if (!WriteAll(fd, request.data(), request.size())) {
    ::close(fd);
    return fail("send");
  }
  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      ::close(fd);
      return fail("recv");
    }
    if (n == 0) break;
    raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos || raw.compare(0, 5, "HTTP/") != 0) {
    if (error != nullptr) *error = "malformed response";
    return false;
  }
  const std::string head = raw.substr(0, head_end + 2);
  const size_t sp = head.find(' ');
  if (sp == std::string::npos || sp + 4 > head_end) {
    if (error != nullptr) *error = "malformed status line";
    return false;
  }
  *status = std::atoi(head.c_str() + sp + 1);
  std::string rest = raw.substr(head_end + 4);
  // Honor Content-Length when the peer declares one: a read-to-EOF on
  // a `Connection: close` stream can end early (peer died mid-write)
  // or late (a keep-alive server that ignored our close and answered a
  // pipelined follow-up) — both silently corrupted the body before.
  std::string length_text;
  if (FindHeaderValue(head, "content-length", &length_text)) {
    const size_t content_length =
        static_cast<size_t>(std::strtoull(length_text.c_str(), nullptr, 10));
    if (rest.size() < content_length) {
      if (error != nullptr) {
        *error = "truncated body: got " + std::to_string(rest.size()) +
                 " of " + length_text + " bytes";
      }
      return false;
    }
    rest.resize(content_length);
  }
  *body = std::move(rest);
  return true;
}

bool HttpPost(int port, const std::string& path,
              const std::string& request_body, const std::string& content_type,
              int* status, std::string* body, std::string* error,
              int timeout_ms) {
  HttpClient client;
  if (!client.Connect(port, error, timeout_ms)) return false;
  return client.Post(path, request_body, content_type, status, body, error);
}

}  // namespace equitensor
