#include "util/prom.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>

namespace equitensor {
namespace {

/// Shortest round-trip decimal form (falls back to %.17g).
std::string FormatDouble(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec == std::errc()) return std::string(buf, ptr);
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

bool IsNameStartChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}

bool IsNameChar(char c) { return IsNameStartChar(c) || (c >= '0' && c <= '9'); }

void AppendSample(std::string* out, const std::string& name,
                  const std::string& labels, const std::string& value) {
  *out += name;
  if (!labels.empty()) {
    *out += '{';
    *out += labels;
    *out += '}';
  }
  *out += ' ';
  *out += value;
  *out += '\n';
}

void AppendHistogram(std::string* out, const std::string& name,
                     const std::string& extra_labels,
                     const std::vector<double>& bounds,
                     const std::vector<uint64_t>& buckets, uint64_t count,
                     double sum) {
  uint64_t cumulative = 0;
  const std::string sep = extra_labels.empty() ? "" : extra_labels + ",";
  for (size_t i = 0; i < bounds.size(); ++i) {
    cumulative += i < buckets.size() ? buckets[i] : 0;
    AppendSample(out, name + "_bucket",
                 sep + "le=\"" + FormatDouble(bounds[i]) + "\"",
                 std::to_string(cumulative));
  }
  AppendSample(out, name + "_bucket", sep + "le=\"+Inf\"",
               std::to_string(count));
  AppendSample(out, name + "_sum", extra_labels, FormatDouble(sum));
  AppendSample(out, name + "_count", extra_labels, std::to_string(count));
}

}  // namespace

std::string PromSanitizeName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool ok = i == 0 ? IsNameStartChar(c) : IsNameChar(c);
    out += ok ? c : '_';
  }
  if (out.empty()) out = "_";
  return out;
}

std::string PromEscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"':  out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default:   out += c;
    }
  }
  return out;
}

std::string RenderPrometheusText(const MetricsSnapshot& snapshot,
                                 const std::vector<TraceStats>& kernels) {
  std::string out;
  out.reserve(4096);
  for (const auto& counter : snapshot.counters) {
    std::string name = "et_" + PromSanitizeName(counter.name);
    // Prometheus convention: counters end in _total.
    if (name.size() < 6 || name.compare(name.size() - 6, 6, "_total") != 0) {
      name += "_total";
    }
    out += "# TYPE " + name + " counter\n";
    AppendSample(&out, name, "", std::to_string(counter.value));
  }
  for (const auto& gauge : snapshot.gauges) {
    const std::string name = "et_" + PromSanitizeName(gauge.name);
    out += "# TYPE " + name + " gauge\n";
    AppendSample(&out, name, "", FormatDouble(gauge.value));
  }
  for (const auto& histogram : snapshot.histograms) {
    const std::string name = "et_" + PromSanitizeName(histogram.name);
    out += "# TYPE " + name + " histogram\n";
    AppendHistogram(&out, name, "", histogram.bounds, histogram.buckets,
                    histogram.count, histogram.sum);
  }
  if (!kernels.empty()) {
    // Real multi-bucket exposition: each span site counts durations
    // into the shared log-spaced layout (util/trace), so percentile
    // queries (`histogram_quantile`) work per kernel. The bucket
    // counts sum to the span count, keeping +Inf == _count.
    out += "# HELP et_kernel_seconds wall time of instrumented kernels\n";
    out += "# TYPE et_kernel_seconds histogram\n";
    for (const TraceStats& k : kernels) {
      const std::string label =
          "kernel=\"" + PromEscapeLabelValue(k.name) + "\"";
      AppendHistogram(&out, "et_kernel_seconds", label, k.bucket_bounds,
                      k.bucket_counts, k.count, k.total_seconds);
    }
    out += "# TYPE et_kernel_self_seconds_total counter\n";
    for (const TraceStats& k : kernels) {
      AppendSample(&out, "et_kernel_self_seconds_total",
                   "kernel=\"" + PromEscapeLabelValue(k.name) + "\"",
                   FormatDouble(k.self_seconds));
    }
    out += "# TYPE et_kernel_max_seconds gauge\n";
    for (const TraceStats& k : kernels) {
      AppendSample(&out, "et_kernel_max_seconds",
                   "kernel=\"" + PromEscapeLabelValue(k.name) + "\"",
                   FormatDouble(k.max_seconds));
    }
    // Hardware-counter attribution (util/perf_counters, DESIGN.md
    // §17): raw per-kernel totals plus the derived ratios dashboards
    // actually plot. Only kernels that recorded with counters enabled
    // and available emit these series — a scrape on a machine without
    // perf_event_open just has no et_kernel_cycles_total family.
    bool have_counters = false;
    for (const TraceStats& k : kernels) {
      have_counters = have_counters || k.counter_samples > 0;
    }
    if (have_counters) {
      for (int c = 0; c < kNumPerfCounters; ++c) {
        const std::string family =
            std::string("et_kernel_") + PerfCounterName(c) + "_total";
        out += "# TYPE " + family + " counter\n";
        for (const TraceStats& k : kernels) {
          if (k.counter_samples == 0) continue;
          AppendSample(&out, family,
                       "kernel=\"" + PromEscapeLabelValue(k.name) + "\"",
                       std::to_string(k.counters[c]));
        }
      }
      out += "# TYPE et_kernel_counter_samples_total counter\n";
      for (const TraceStats& k : kernels) {
        if (k.counter_samples == 0) continue;
        AppendSample(&out, "et_kernel_counter_samples_total",
                     "kernel=\"" + PromEscapeLabelValue(k.name) + "\"",
                     std::to_string(k.counter_samples));
      }
      const struct {
        const char* family;
        PerfCounter counter;
      } mpki_series[] = {
          {"et_kernel_l1d_mpki", PerfCounter::kL1dMisses},
          {"et_kernel_llc_mpki", PerfCounter::kLlcMisses},
          {"et_kernel_branch_mpki", PerfCounter::kBranchMisses},
      };
      out += "# TYPE et_kernel_ipc gauge\n";
      for (const TraceStats& k : kernels) {
        if (k.counter_samples == 0) continue;
        AppendSample(&out, "et_kernel_ipc",
                     "kernel=\"" + PromEscapeLabelValue(k.name) + "\"",
                     FormatDouble(k.Ipc()));
      }
      for (const auto& series : mpki_series) {
        out += std::string("# TYPE ") + series.family + " gauge\n";
        for (const TraceStats& k : kernels) {
          if (k.counter_samples == 0) continue;
          AppendSample(&out, series.family,
                       "kernel=\"" + PromEscapeLabelValue(k.name) + "\"",
                       FormatDouble(k.Mpki(series.counter)));
        }
      }
    }
  }
  return out;
}

namespace {

/// One parsed sample line.
struct Sample {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;  // decoded values
  double value = 0.0;
};

bool ParseMetricName(const std::string& line, size_t* pos, std::string* name) {
  const size_t start = *pos;
  if (start >= line.size() || !IsNameStartChar(line[start])) return false;
  size_t end = start + 1;
  while (end < line.size() && IsNameChar(line[end])) ++end;
  *name = line.substr(start, end - start);
  *pos = end;
  return true;
}

bool ParseLabels(const std::string& line, size_t* pos, Sample* sample,
                 std::string* reason) {
  size_t i = *pos + 1;  // past '{'
  for (;;) {
    while (i < line.size() && line[i] == ' ') ++i;
    if (i < line.size() && line[i] == '}') break;  // trailing comma case
    std::string label;
    if (!ParseMetricName(line, &i, &label) || label.find(':') !=
        std::string::npos) {
      *reason = "bad label name";
      return false;
    }
    if (i >= line.size() || line[i] != '=') {
      *reason = "expected '=' after label name";
      return false;
    }
    ++i;
    if (i >= line.size() || line[i] != '"') {
      *reason = "label value must be quoted";
      return false;
    }
    ++i;
    std::string value;
    while (i < line.size() && line[i] != '"') {
      if (line[i] == '\\') {
        ++i;
        if (i >= line.size()) break;
        switch (line[i]) {
          case '\\': value += '\\'; break;
          case '"':  value += '"'; break;
          case 'n':  value += '\n'; break;
          default:
            *reason = "bad escape in label value";
            return false;
        }
        ++i;
      } else {
        value += line[i++];
      }
    }
    if (i >= line.size()) {
      *reason = "unterminated label value";
      return false;
    }
    ++i;  // closing quote
    sample->labels.emplace_back(std::move(label), std::move(value));
    if (i < line.size() && line[i] == ',') {
      ++i;
      continue;
    }
    break;
  }
  if (i >= line.size() || line[i] != '}') {
    *reason = "expected '}'";
    return false;
  }
  *pos = i + 1;
  return true;
}

bool ParseValue(const std::string& text, double* out) {
  if (text == "NaN") {
    *out = std::nan("");
    return true;
  }
  if (text == "+Inf" || text == "Inf") {
    *out = HUGE_VAL;
    return true;
  }
  if (text == "-Inf") {
    *out = -HUGE_VAL;
    return true;
  }
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return !text.empty() && end == text.c_str() + text.size();
}

/// Strips an `le` label and renders the rest as a stable grouping key.
std::string LabelKeyWithoutLe(const Sample& sample, std::string* le) {
  std::string key;
  for (const auto& [name, value] : sample.labels) {
    if (name == "le") {
      *le = value;
      continue;
    }
    key += name + "=" + value + ";";
  }
  return key;
}

}  // namespace

bool ValidatePrometheusText(const std::string& text, std::string* error) {
  const auto fail = [&](int line_no, const std::string& reason) {
    if (error != nullptr) {
      *error = line_no > 0
                   ? "line " + std::to_string(line_no) + ": " + reason
                   : reason;
    }
    return false;
  };
  if (!text.empty() && text.back() != '\n') {
    return fail(1, "exposition must end with a newline");
  }

  std::map<std::string, std::string> types;           // family -> type
  std::set<std::string> sampled;                      // names seen as samples
  // histogram family -> label-key -> ordered (le, cumulative count)
  std::map<std::string, std::map<std::string,
                                 std::vector<std::pair<double, double>>>>
      hist_buckets;
  std::map<std::string, std::map<std::string, double>> hist_counts;
  std::map<std::string, std::map<std::string, double>> hist_sums;

  size_t pos = 0;
  int line_no = 0;
  while (pos < text.size()) {
    ++line_no;
    const size_t eol = text.find('\n', pos);
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // `# TYPE <name> <type>` — anything else after '#' is a comment.
      if (line.compare(0, 7, "# TYPE ") == 0) {
        size_t i = 7;
        std::string name;
        if (!ParseMetricName(line, &i, &name) || i >= line.size() ||
            line[i] != ' ') {
          return fail(line_no, "malformed TYPE line");
        }
        const std::string type = line.substr(i + 1);
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped") {
          return fail(line_no, "unknown metric type '" + type + "'");
        }
        if (types.count(name) != 0) {
          return fail(line_no, "duplicate TYPE for " + name);
        }
        if (sampled.count(name) != 0) {
          return fail(line_no, "TYPE after samples for " + name);
        }
        types[name] = type;
      }
      continue;
    }

    Sample sample;
    size_t i = 0;
    std::string reason;
    if (!ParseMetricName(line, &i, &sample.name)) {
      return fail(line_no, "bad metric name");
    }
    if (i < line.size() && line[i] == '{' &&
        !ParseLabels(line, &i, &sample, &reason)) {
      return fail(line_no, reason);
    }
    if (i >= line.size() || line[i] != ' ') {
      return fail(line_no, "expected space before value");
    }
    while (i < line.size() && line[i] == ' ') ++i;
    // Optional trailing timestamp: value [timestamp]
    std::string value_text = line.substr(i);
    const size_t space = value_text.find(' ');
    std::string ts_text;
    if (space != std::string::npos) {
      ts_text = value_text.substr(space + 1);
      value_text = value_text.substr(0, space);
      double ts = 0;
      if (!ParseValue(ts_text, &ts)) {
        return fail(line_no, "bad timestamp");
      }
    }
    if (!ParseValue(value_text, &sample.value)) {
      return fail(line_no, "bad sample value '" + value_text + "'");
    }
    sampled.insert(sample.name);

    // Histogram bookkeeping: map _bucket/_sum/_count back to the
    // family name the TYPE line declared.
    for (const char* suffix : {"_bucket", "_count", "_sum"}) {
      const size_t len = std::string(suffix).size();
      if (sample.name.size() <= len ||
          sample.name.compare(sample.name.size() - len, len, suffix) != 0) {
        continue;
      }
      const std::string family = sample.name.substr(0, sample.name.size() - len);
      const auto it = types.find(family);
      if (it == types.end() || it->second != "histogram") continue;
      std::string le;
      const std::string key = LabelKeyWithoutLe(sample, &le);
      if (std::string(suffix) == "_bucket") {
        if (le.empty()) {
          return fail(line_no, "histogram bucket without le label");
        }
        double edge = 0;
        if (!ParseValue(le, &edge)) {
          return fail(line_no, "unparsable le value '" + le + "'");
        }
        hist_buckets[family][key].emplace_back(edge, sample.value);
      } else if (std::string(suffix) == "_count") {
        hist_counts[family][key] = sample.value;
      } else {
        hist_sums[family][key] = sample.value;
      }
    }
  }

  for (const auto& [family, groups] : hist_buckets) {
    for (const auto& [key, buckets] : groups) {
      double prev_edge = -HUGE_VAL;
      double prev_count = -1.0;
      bool has_inf = false;
      for (const auto& [edge, count] : buckets) {
        if (edge <= prev_edge) {
          return fail(0, family + ": bucket le values not increasing");
        }
        if (count < prev_count) {
          return fail(0, family + ": bucket counts not cumulative");
        }
        prev_edge = edge;
        prev_count = count;
        if (std::isinf(edge) && edge > 0) has_inf = true;
      }
      if (!has_inf) {
        return fail(0, family + ": missing le=\"+Inf\" bucket");
      }
      const auto counts_it = hist_counts.find(family);
      if (counts_it == hist_counts.end() ||
          counts_it->second.count(key) == 0) {
        return fail(0, family + ": missing _count series");
      }
      if (counts_it->second.at(key) != buckets.back().second) {
        return fail(0, family + ": _count disagrees with +Inf bucket");
      }
      // A histogram without _sum breaks `rate(_sum)/rate(_count)`
      // mean-latency queries; require the full triplet.
      const auto sums_it = hist_sums.find(family);
      if (sums_it == hist_sums.end() || sums_it->second.count(key) == 0) {
        return fail(0, family + ": missing _sum series");
      }
      const double sum = sums_it->second.at(key);
      if (std::isnan(sum) || (buckets.back().second > 0 && sum < 0)) {
        return fail(0, family + ": _sum is not a valid duration total");
      }
    }
  }
  return true;
}

}  // namespace equitensor
