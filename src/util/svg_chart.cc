#include "util/svg_chart.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "util/check.h"

namespace equitensor {
namespace {

constexpr const char* kPalette[] = {"#1f77b4", "#ff7f0e", "#2ca02c",
                                    "#d62728", "#9467bd", "#8c564b",
                                    "#e377c2", "#7f7f7f"};
constexpr int kPaletteSize = 8;

std::string EscapeXml(const std::string& text) {
  std::string out;
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string FormatTick(double value) {
  std::ostringstream os;
  os.precision(4);
  os << value;
  return os.str();
}

}  // namespace

SvgChart::SvgChart(std::string title, std::string x_label, std::string y_label)
    : title_(std::move(title)),
      x_label_(std::move(x_label)),
      y_label_(std::move(y_label)) {}

void SvgChart::AddSeries(const std::string& name, std::vector<double> x,
                         std::vector<double> y) {
  ET_CHECK_EQ(x.size(), y.size());
  ET_CHECK(!x.empty());
  series_.push_back({name, std::move(x), std::move(y), false});
}

void SvgChart::AddHorizontalLine(const std::string& name, double y) {
  series_.push_back({name, {}, {y}, true});
}

std::string SvgChart::Render(int width, int height) const {
  ET_CHECK(!series_.empty()) << "chart needs at least one series";
  const double margin_left = 64, margin_right = 16;
  const double margin_top = 36, margin_bottom = 48;
  const double plot_w = width - margin_left - margin_right;
  const double plot_h = height - margin_top - margin_bottom;

  // Data ranges over all non-horizontal series (+ horizontal levels).
  double min_x = 1e300, max_x = -1e300, min_y = 1e300, max_y = -1e300;
  for (const Series& s : series_) {
    if (s.horizontal) {
      min_y = std::min(min_y, s.y[0]);
      max_y = std::max(max_y, s.y[0]);
      continue;
    }
    for (double v : s.x) {
      min_x = std::min(min_x, v);
      max_x = std::max(max_x, v);
    }
    for (double v : s.y) {
      min_y = std::min(min_y, v);
      max_y = std::max(max_y, v);
    }
  }
  if (min_x > max_x) {
    min_x = 0.0;
    max_x = 1.0;
  }
  if (max_x - min_x < 1e-12) max_x = min_x + 1.0;
  if (max_y - min_y < 1e-12) max_y = min_y + 1.0;
  // 5% padding on y.
  const double pad = 0.05 * (max_y - min_y);
  min_y -= pad;
  max_y += pad;

  auto sx = [&](double v) {
    return margin_left + (v - min_x) / (max_x - min_x) * plot_w;
  };
  auto sy = [&](double v) {
    return margin_top + (1.0 - (v - min_y) / (max_y - min_y)) * plot_h;
  };

  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width
     << "\" height=\"" << height << "\" font-family=\"sans-serif\">\n";
  os << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  os << "<text x=\"" << width / 2 << "\" y=\"20\" text-anchor=\"middle\" "
     << "font-size=\"14\">" << EscapeXml(title_) << "</text>\n";

  // Axes.
  os << "<line x1=\"" << margin_left << "\" y1=\"" << margin_top + plot_h
     << "\" x2=\"" << margin_left + plot_w << "\" y2=\"" << margin_top + plot_h
     << "\" stroke=\"black\"/>\n";
  os << "<line x1=\"" << margin_left << "\" y1=\"" << margin_top << "\" x2=\""
     << margin_left << "\" y2=\"" << margin_top + plot_h
     << "\" stroke=\"black\"/>\n";
  // Ticks (5 per axis) + labels.
  for (int i = 0; i <= 4; ++i) {
    const double fx = min_x + (max_x - min_x) * i / 4.0;
    const double fy = min_y + (max_y - min_y) * i / 4.0;
    os << "<text x=\"" << sx(fx) << "\" y=\"" << margin_top + plot_h + 16
       << "\" text-anchor=\"middle\" font-size=\"10\">" << FormatTick(fx)
       << "</text>\n";
    os << "<text x=\"" << margin_left - 6 << "\" y=\"" << sy(fy) + 3
       << "\" text-anchor=\"end\" font-size=\"10\">" << FormatTick(fy)
       << "</text>\n";
    os << "<line x1=\"" << margin_left << "\" y1=\"" << sy(fy) << "\" x2=\""
       << margin_left + plot_w << "\" y2=\"" << sy(fy)
       << "\" stroke=\"#eeeeee\"/>\n";
  }
  os << "<text x=\"" << margin_left + plot_w / 2 << "\" y=\"" << height - 8
     << "\" text-anchor=\"middle\" font-size=\"12\">" << EscapeXml(x_label_)
     << "</text>\n";
  os << "<text x=\"14\" y=\"" << margin_top + plot_h / 2
     << "\" text-anchor=\"middle\" font-size=\"12\" transform=\"rotate(-90 14 "
     << margin_top + plot_h / 2 << ")\">" << EscapeXml(y_label_)
     << "</text>\n";

  // Series.
  int color = 0;
  double legend_y = margin_top + 6;
  for (const Series& s : series_) {
    const char* stroke = kPalette[color % kPaletteSize];
    ++color;
    if (s.horizontal) {
      os << "<line x1=\"" << margin_left << "\" y1=\"" << sy(s.y[0])
         << "\" x2=\"" << margin_left + plot_w << "\" y2=\"" << sy(s.y[0])
         << "\" stroke=\"" << stroke << "\" stroke-dasharray=\"6 3\"/>\n";
    } else {
      os << "<polyline fill=\"none\" stroke=\"" << stroke
         << "\" stroke-width=\"1.5\" points=\"";
      for (size_t i = 0; i < s.x.size(); ++i) {
        os << sx(s.x[i]) << "," << sy(s.y[i]) << " ";
      }
      os << "\"/>\n";
      for (size_t i = 0; i < s.x.size(); ++i) {
        os << "<circle cx=\"" << sx(s.x[i]) << "\" cy=\"" << sy(s.y[i])
           << "\" r=\"2.5\" fill=\"" << stroke << "\"/>\n";
      }
    }
    // Legend entry.
    os << "<rect x=\"" << margin_left + plot_w - 150 << "\" y=\""
       << legend_y - 8 << "\" width=\"10\" height=\"10\" fill=\"" << stroke
       << "\"/>\n";
    os << "<text x=\"" << margin_left + plot_w - 136 << "\" y=\"" << legend_y
       << "\" font-size=\"11\">" << EscapeXml(s.name) << "</text>\n";
    legend_y += 16;
  }
  os << "</svg>\n";
  return os.str();
}

bool SvgChart::WriteFile(const std::string& path, int width,
                         int height) const {
  std::ofstream file(path);
  if (!file) return false;
  file << Render(width, height);
  return static_cast<bool>(file);
}

}  // namespace equitensor
