#include "util/flags.h"

#include <cstdlib>
#include <sstream>

#include "util/check.h"

namespace equitensor {
namespace {

const char* TypeName(int type) {
  switch (type) {
    case 0:
      return "string";
    case 1:
      return "int";
    case 2:
      return "double";
    case 3:
      return "bool";
  }
  return "?";
}

}  // namespace

void FlagParser::DefineString(const std::string& name,
                              const std::string& default_value,
                              const std::string& help) {
  ET_CHECK(!flags_.count(name)) << "duplicate flag " << name;
  flags_[name] = {Type::kString, default_value, default_value, help};
  order_.push_back(name);
}

void FlagParser::DefineInt(const std::string& name, int64_t default_value,
                           const std::string& help) {
  ET_CHECK(!flags_.count(name)) << "duplicate flag " << name;
  const std::string s = std::to_string(default_value);
  flags_[name] = {Type::kInt, s, s, help};
  order_.push_back(name);
}

void FlagParser::DefineDouble(const std::string& name, double default_value,
                              const std::string& help) {
  ET_CHECK(!flags_.count(name)) << "duplicate flag " << name;
  std::ostringstream os;
  os << default_value;
  flags_[name] = {Type::kDouble, os.str(), os.str(), help};
  order_.push_back(name);
}

void FlagParser::DefineBool(const std::string& name, bool default_value,
                            const std::string& help) {
  ET_CHECK(!flags_.count(name)) << "duplicate flag " << name;
  const std::string s = default_value ? "true" : "false";
  flags_[name] = {Type::kBool, s, s, help};
  order_.push_back(name);
}

bool FlagParser::SetValue(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    error_ = "unknown flag --" + name;
    return false;
  }
  // Validate parse per type.
  const char* start = value.c_str();
  char* end = nullptr;
  switch (it->second.type) {
    case Type::kString:
      break;
    case Type::kInt:
      std::strtoll(start, &end, 10);
      if (end != start + value.size() || value.empty()) {
        error_ = "flag --" + name + " expects an int, got '" + value + "'";
        return false;
      }
      break;
    case Type::kDouble:
      std::strtod(start, &end);
      if (end != start + value.size() || value.empty()) {
        error_ = "flag --" + name + " expects a double, got '" + value + "'";
        return false;
      }
      break;
    case Type::kBool:
      if (value != "true" && value != "false" && value != "1" &&
          value != "0") {
        error_ = "flag --" + name + " expects a bool, got '" + value + "'";
        return false;
      }
      break;
  }
  it->second.value = value;
  return true;
}

bool FlagParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      if (!SetValue(arg.substr(0, eq), arg.substr(eq + 1))) return false;
      continue;
    }
    // `--name value` or bare boolean `--name`.
    auto it = flags_.find(arg);
    if (it == flags_.end()) {
      error_ = "unknown flag --" + arg;
      return false;
    }
    if (it->second.type == Type::kBool) {
      it->second.value = "true";
      continue;
    }
    if (i + 1 >= argc) {
      error_ = "flag --" + arg + " is missing a value";
      return false;
    }
    if (!SetValue(arg, argv[++i])) return false;
  }
  return true;
}

const FlagParser::Flag& FlagParser::Lookup(const std::string& name,
                                           Type type) const {
  auto it = flags_.find(name);
  ET_CHECK(it != flags_.end()) << "undefined flag " << name;
  ET_CHECK(it->second.type == type)
      << "flag " << name << " is not a " << TypeName(static_cast<int>(type));
  return it->second;
}

const std::string& FlagParser::GetString(const std::string& name) const {
  return Lookup(name, Type::kString).value;
}

int64_t FlagParser::GetInt(const std::string& name) const {
  return std::strtoll(Lookup(name, Type::kInt).value.c_str(), nullptr, 10);
}

double FlagParser::GetDouble(const std::string& name) const {
  return std::strtod(Lookup(name, Type::kDouble).value.c_str(), nullptr);
}

bool FlagParser::GetBool(const std::string& name) const {
  const std::string& v = Lookup(name, Type::kBool).value;
  return v == "true" || v == "1";
}

std::string FlagParser::HelpText(
    const std::string& program_description) const {
  std::ostringstream os;
  os << program_description << "\n\nFlags:\n";
  for (const std::string& name : order_) {
    const Flag& flag = flags_.at(name);
    os << "  --" << name << " (" << TypeName(static_cast<int>(flag.type))
       << ", default " << flag.default_value << ")\n      " << flag.help
       << "\n";
  }
  return os.str();
}

}  // namespace equitensor
