#ifndef EQUITENSOR_UTIL_FLAGS_H_
#define EQUITENSOR_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace equitensor {

/// Minimal command-line flag parser for the tools/ binaries.
/// Accepts `--name=value`, `--name value`, and bare `--name` (boolean
/// true). Positional arguments are collected separately. Unknown flags
/// are an error so typos fail loudly.
class FlagParser {
 public:
  /// Registers a flag with a default value and help text. Call all
  /// Define* before Parse().
  void DefineString(const std::string& name, const std::string& default_value,
                    const std::string& help);
  void DefineInt(const std::string& name, int64_t default_value,
                 const std::string& help);
  void DefineDouble(const std::string& name, double default_value,
                    const std::string& help);
  void DefineBool(const std::string& name, bool default_value,
                  const std::string& help);

  /// Parses argv. Returns false (and fills error()) on unknown flags or
  /// unparsable values. `--help` sets help_requested().
  bool Parse(int argc, const char* const* argv);

  /// Typed accessors (abort on unknown name — programmer error).
  const std::string& GetString(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& error() const { return error_; }
  bool help_requested() const { return help_requested_; }

  /// Formatted flag reference for --help output.
  std::string HelpText(const std::string& program_description) const;

 private:
  enum class Type { kString, kInt, kDouble, kBool };
  struct Flag {
    Type type;
    std::string value;  // Canonical string form.
    std::string default_value;
    std::string help;
  };
  bool SetValue(const std::string& name, const std::string& value);
  const Flag& Lookup(const std::string& name, Type type) const;

  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
  std::vector<std::string> positional_;
  std::string error_;
  bool help_requested_ = false;
};

}  // namespace equitensor

#endif  // EQUITENSOR_UTIL_FLAGS_H_
