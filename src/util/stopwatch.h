#ifndef EQUITENSOR_UTIL_STOPWATCH_H_
#define EQUITENSOR_UTIL_STOPWATCH_H_

#include <chrono>

namespace equitensor {

/// Simple wall-clock stopwatch for progress reporting in benches.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start time to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace equitensor

#endif  // EQUITENSOR_UTIL_STOPWATCH_H_
