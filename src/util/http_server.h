#ifndef EQUITENSOR_UTIL_HTTP_SERVER_H_
#define EQUITENSOR_UTIL_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/request_trace.h"
#include "util/thread_pool.h"

namespace equitensor {

/// Dependency-free HTTP/1.1 server. Originally the telemetry scrape
/// port (DESIGN.md §12), now also the serving frontend behind
/// `equitensor_serve` (DESIGN.md §14): GET/HEAD/POST, request bodies
/// framed by `Content-Length`, persistent (keep-alive) connections
/// with per-socket timeouts, bounded request head and body sizes.
///
/// Threading: a dedicated accept thread parks in accept(2); each
/// accepted connection is handed to a bounded TaskPool
/// (util/thread_pool) so a slow reader cannot stall the accept loop,
/// and a full queue degrades to `503` written from the accept thread.
/// A worker owns its connection for the connection's lifetime (a
/// keep-alive peer occupies one worker), so size `worker_threads` to
/// the expected concurrent-connection count, not the request rate.
/// Handlers run on pool workers and must be thread-safe.

/// One parsed request.
struct HttpRequest {
  std::string method;  // "GET" | "HEAD" | "POST" (anything else: 405)
  std::string path;    // decoded-free path, e.g. "/metrics"
  std::string query;   // raw text after '?', "" when absent
  std::string body;    // POST payload ("" for GET/HEAD)
  /// Per-request observability handle, set by the server when a
  /// request observer is attached (null otherwise). Handlers and the
  /// layers below them record stage durations into it via StageScope;
  /// it lives on the worker's stack for exactly this request.
  RequestContext* context = nullptr;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

class HttpServer {
 public:
  struct Options {
    /// Workers handling connections; a keep-alive connection holds its
    /// worker until the peer closes or times out.
    int worker_threads = 2;
    /// Accepted-but-unstarted connections before 503 shedding.
    size_t queue_capacity = 16;
    /// Per-socket read/write timeout. Also the keep-alive idle
    /// timeout: a connection with no next request in this window is
    /// closed.
    int io_timeout_ms = 5000;
    /// Cap on the request head (request line + headers, including the
    /// terminating blank line). Enforced after every read: the head
    /// can never buffer past this size before the 431 fires.
    size_t max_request_bytes = 16 * 1024;
    /// Cap on a request body (`Content-Length`); larger gets 413.
    size_t max_body_bytes = 1 * 1024 * 1024;
    /// Requests served on one connection before the server closes it
    /// (bounds how long a chatty peer can pin a worker).
    uint64_t max_requests_per_connection = 1024;
  };

  HttpServer() : HttpServer(Options{}) {}
  explicit HttpServer(Options options);

  /// Stops the server if still running.
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers `handler` for an exact path, accepting GET and HEAD.
  /// Must be called before Start(); later calls abort (handlers are
  /// read lock-free while serving). Unmatched paths get 404; a
  /// request whose method is not accepted by the route gets 405.
  void Handle(const std::string& path, HttpHandler handler);

  /// Same, with an explicit method whitelist (e.g. {"GET", "POST"}).
  void Handle(const std::string& path, std::vector<std::string> methods,
              HttpHandler handler);

  /// Attaches a completion observer: called once per finished request
  /// (after the response bytes are written) with the final
  /// RequestTimeline — monotonic id, parse/serialize timings recorded
  /// by the server, plus whatever stages the handler layers added.
  /// While no observer is attached the server allocates no context and
  /// records nothing, so the uninstrumented path stays at its old
  /// cost. Must be called before Start(); runs on worker threads and
  /// must be thread-safe.
  void set_observer(std::function<void(const RequestTimeline&)> observer);

  /// Binds 0.0.0.0:`port` (0 = ephemeral) and starts the accept loop.
  /// Returns false with a reason in `*error` when the bind fails (port
  /// in use, permissions) or the server is already running — the
  /// double-bind guard the trainer relies on.
  bool Start(int port, std::string* error);

  /// The bound port (resolved after Start with port 0); 0 when not
  /// running.
  int port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Closes the listen socket, shuts down idle keep-alive connections,
  /// joins the accept thread, drains the worker pool. In-flight
  /// responses complete. Idempotent, safe to call from any
  /// (non-signal) thread.
  void Stop();

  /// Total requests accepted and handled (including 404s), and
  /// connections shed with 503. For tests and the run summary.
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }
  uint64_t requests_shed() const {
    return requests_shed_.load(std::memory_order_relaxed);
  }

 private:
  struct Route {
    std::string path;
    std::vector<std::string> methods;
    HttpHandler handler;
  };

  void AcceptLoop();
  void ServeConnection(int fd);
  void TrackConnection(int fd);
  void UntrackAndClose(int fd);

  Options options_;
  std::vector<Route> routes_;
  std::function<void(const RequestTimeline&)> observer_;
  std::atomic<uint64_t> next_request_id_{0};
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  std::unique_ptr<TaskPool> workers_;
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> requests_shed_{0};
  /// Open connection sockets, so Stop() can shutdown(2) a worker
  /// parked in recv(2) on a keep-alive connection instead of waiting
  /// out the idle timeout.
  std::mutex conn_mu_;
  std::set<int> open_conns_;
};

/// Minimal blocking HTTP/1.1 client against 127.0.0.1 with keep-alive
/// support — the client half used by tests, tools/scrape_check, and
/// tools/loadgen (no external curl dependency). One request at a time
/// per instance; not thread-safe.
class HttpClient {
 public:
  HttpClient() = default;
  ~HttpClient() { Close(); }

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// Connects to 127.0.0.1:`port`. Closes any previous connection.
  bool Connect(int port, std::string* error = nullptr,
               int timeout_ms = 5000);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Issues one request on the persistent connection. The response
  /// body is framed by `Content-Length` (required from the peer);
  /// a short read fails with "truncated body" and closes. When the
  /// server answers `Connection: close`, the socket is closed after
  /// the response; call Connect() again to continue.
  bool Get(const std::string& path, int* status, std::string* body,
           std::string* error = nullptr);
  bool Post(const std::string& path, const std::string& request_body,
            const std::string& content_type, int* status, std::string* body,
            std::string* error = nullptr);

 private:
  bool RoundTrip(const std::string& request, int* status, std::string* body,
                 std::string* error);

  int fd_ = -1;
  int port_ = 0;
};

/// One-shot blocking HTTP/1.1 GET against 127.0.0.1:`port`
/// (`Connection: close`). Returns false on connect/parse failure;
/// otherwise fills the status code and body. When the response
/// carries `Content-Length`, the body is validated against it — a
/// truncated body fails instead of being returned short.
bool HttpGet(int port, const std::string& path, int* status,
             std::string* body, std::string* error = nullptr,
             int timeout_ms = 5000);

/// One-shot blocking POST; same framing rules as HttpGet.
bool HttpPost(int port, const std::string& path,
              const std::string& request_body,
              const std::string& content_type, int* status,
              std::string* body, std::string* error = nullptr,
              int timeout_ms = 5000);

}  // namespace equitensor

#endif  // EQUITENSOR_UTIL_HTTP_SERVER_H_
