#ifndef EQUITENSOR_UTIL_HTTP_SERVER_H_
#define EQUITENSOR_UTIL_HTTP_SERVER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/thread_pool.h"

namespace equitensor {

/// Dependency-free HTTP/1.1 server for the telemetry endpoints
/// (DESIGN.md §12). Scope is deliberately narrow: GET/HEAD requests on
/// the loopback-or-LAN scrape path, one response per connection
/// (`Connection: close`), bounded request size, per-socket timeouts.
/// It is an observability port, not a traffic-serving frontend.
///
/// Threading: a dedicated accept thread parks in accept(2); each
/// accepted connection is handed to a bounded TaskPool
/// (util/thread_pool) so a slow reader cannot stall the accept loop,
/// and a full queue degrades to `503` written from the accept thread.
/// Handlers run on pool workers and must be thread-safe.

/// One parsed request. Only the parts the telemetry endpoints need.
struct HttpRequest {
  std::string method;  // "GET" | "HEAD" (anything else is rejected)
  std::string path;    // decoded-free path, e.g. "/metrics"
  std::string query;   // raw text after '?', "" when absent
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

class HttpServer {
 public:
  struct Options {
    /// Workers handling requests; capped small — scrapes are tiny.
    int worker_threads = 2;
    /// Accepted-but-unstarted connections before 503 shedding.
    size_t queue_capacity = 16;
    /// Per-socket read/write timeout.
    int io_timeout_ms = 5000;
    /// Cap on request head (request line + headers).
    size_t max_request_bytes = 16 * 1024;
  };

  HttpServer() : HttpServer(Options{}) {}
  explicit HttpServer(Options options);

  /// Stops the server if still running.
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers `handler` for an exact path. Must be called before
  /// Start(); later calls abort (handlers are read lock-free while
  /// serving). Unmatched paths get 404.
  void Handle(const std::string& path, HttpHandler handler);

  /// Binds 0.0.0.0:`port` (0 = ephemeral) and starts the accept loop.
  /// Returns false with a reason in `*error` when the bind fails (port
  /// in use, permissions) or the server is already running — the
  /// double-bind guard the trainer relies on.
  bool Start(int port, std::string* error);

  /// The bound port (resolved after Start with port 0); 0 when not
  /// running.
  int port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Closes the listen socket, joins the accept thread, drains the
  /// worker pool. In-flight responses complete; idle sockets are
  /// closed. Idempotent, safe to call from any (non-signal) thread.
  void Stop();

  /// Total requests accepted and handled (including 404s), and
  /// connections shed with 503. For tests and the run summary.
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }
  uint64_t requests_shed() const {
    return requests_shed_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  Options options_;
  std::vector<std::pair<std::string, HttpHandler>> routes_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  std::unique_ptr<TaskPool> workers_;
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> requests_shed_{0};
};

/// Minimal blocking HTTP/1.1 GET against 127.0.0.1:`port` — the client
/// half used by tests and the scrape_check tool (no external curl
/// dependency in the test path). Returns false on connect/parse
/// failure; otherwise fills the status code and body.
bool HttpGet(int port, const std::string& path, int* status,
             std::string* body, std::string* error = nullptr,
             int timeout_ms = 5000);

}  // namespace equitensor

#endif  // EQUITENSOR_UTIL_HTTP_SERVER_H_
