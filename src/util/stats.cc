#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace equitensor {

void RunningStats::Add(double value) {
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

double RunningStats::Mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::Variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double m2 = 0.0;
  for (double v : values) m2 += (v - mean) * (v - mean);
  return std::sqrt(m2 / static_cast<double>(values.size() - 1));
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  ET_CHECK_EQ(a.size(), b.size());
  if (a.empty()) return 0.0;
  const double mean_a = Mean(a);
  const double mean_b = Mean(b);
  double cov = 0.0, var_a = 0.0, var_b = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - mean_a;
    const double db = b[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a <= 0.0 || var_b <= 0.0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

}  // namespace equitensor
