#ifndef EQUITENSOR_UTIL_SYSTEM_INFO_H_
#define EQUITENSOR_UTIL_SYSTEM_INFO_H_

#include <cstdint>
#include <string>

namespace equitensor {

/// Peak resident set size of this process in bytes (0 when the
/// platform cannot report it). Monotonic over the process lifetime.
int64_t PeakRssBytes();

/// `git describe --always --dirty` of the working directory, for
/// stamping telemetry with the code revision. Returns "unknown" when
/// git or a repository is unavailable. Computed once and cached.
const std::string& GitDescribe();

}  // namespace equitensor

#endif  // EQUITENSOR_UTIL_SYSTEM_INFO_H_
