#ifndef EQUITENSOR_UTIL_SYSTEM_INFO_H_
#define EQUITENSOR_UTIL_SYSTEM_INFO_H_

#include <cstdint>
#include <string>

namespace equitensor {

/// Peak resident set size of this process in bytes (0 when the
/// platform cannot report it). Monotonic over the process lifetime.
int64_t PeakRssBytes();

/// `git describe --always --dirty` of the working directory, for
/// stamping telemetry with the code revision. Returns "unknown" when
/// git or a repository is unavailable. Computed once and cached.
const std::string& GitDescribe();

/// Uncached variant anchored at `dir` (empty = current directory) —
/// the building block behind GitDescribe, exposed so tests can cover
/// the outside-a-repository fallback without forking a relocated
/// binary. Returns "unknown" when `dir` is not inside a git tree.
std::string GitDescribeForDir(const std::string& dir);

}  // namespace equitensor

#endif  // EQUITENSOR_UTIL_SYSTEM_INFO_H_
