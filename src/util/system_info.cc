#include "util/system_info.h"

#include <sys/resource.h>
#include <unistd.h>

#include <cstdio>

namespace equitensor {
namespace {

/// Directory holding the running executable ("" when unresolvable).
/// Anchoring `git -C` here keeps GitDescribe working when a tool is
/// launched from outside the repository tree.
std::string ExecutableDir() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  std::string path(buf);
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? "" : path.substr(0, slash);
}

}  // namespace

int64_t PeakRssBytes() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#ifdef __APPLE__
  return static_cast<int64_t>(usage.ru_maxrss);  // already bytes
#else
  return static_cast<int64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
}

std::string GitDescribeForDir(const std::string& dir) {
  std::string result;
  std::string command = "git describe --always --dirty 2>/dev/null";
  if (!dir.empty() && dir.find('\'') == std::string::npos) {
    command = "git -C '" + dir + "' describe --always --dirty 2>/dev/null";
  }
  FILE* pipe = ::popen(command.c_str(), "r");
  if (pipe != nullptr) {
    char buffer[256];
    while (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) {
      result += buffer;
    }
    ::pclose(pipe);
  }
  while (!result.empty() && (result.back() == '\n' || result.back() == '\r')) {
    result.pop_back();
  }
  return result.empty() ? std::string("unknown") : result;
}

const std::string& GitDescribe() {
  static const std::string describe = GitDescribeForDir(ExecutableDir());
  return describe;
}

}  // namespace equitensor
