#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/check.h"

namespace equitensor {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  ET_CHECK(!headers_.empty());
}

void TextTable::AddRow(std::vector<std::string> row) {
  ET_CHECK_EQ(row.size(), headers_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::Num(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string TextTable::MeanStd(double mean, double std, int decimals) {
  return Num(mean, decimals) + " (" + Num(std, decimals) + ")";
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto rule = [&] {
    std::string s = "+";
    for (size_t w : widths) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (size_t c = 0; c < cells.size(); ++c) {
      s += " " + cells[c] + std::string(widths[c] - cells[c].size(), ' ') + " |";
    }
    return s + "\n";
  };
  std::string out = rule() + line(headers_) + rule();
  for (const auto& row : rows_) out += line(row);
  out += rule();
  return out;
}

std::string TextTable::ToCsv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string escaped = "\"";
    for (char ch : cell) {
      if (ch == '"') escaped += '"';
      escaped += ch;
    }
    return escaped + "\"";
  };
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ",";
      os << escape(cells[c]);
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

bool TextTable::WriteCsv(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return false;
  file << ToCsv();
  return static_cast<bool>(file);
}

std::ostream& operator<<(std::ostream& os, const TextTable& table) {
  return os << table.ToString();
}

}  // namespace equitensor
