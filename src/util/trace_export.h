#ifndef EQUITENSOR_UTIL_TRACE_EXPORT_H_
#define EQUITENSOR_UTIL_TRACE_EXPORT_H_

#include <string>
#include <utility>
#include <vector>

#include "util/json.h"
#include "util/trace.h"

namespace equitensor {

/// Chrome trace-event export (DESIGN.md §11): serializes the span
/// events buffered by Start/StopTraceEventRecording into the JSON
/// object format that chrome://tracing and Perfetto load directly —
/// one complete ("ph":"X") event per span with microsecond timestamps
/// relative to the first event, one track per recording thread, and a
/// thread_name metadata ("ph":"M") record per track so pool workers
/// show up by name.

/// Builds the {"traceEvents":[...]} document. `thread_names` maps
/// TraceEvent::thread_id to track names (TraceThreadNames()); threads
/// without an entry fall back to "thread<N>".
JsonValue ChromeTraceToJson(
    const std::vector<TraceEvent>& events,
    const std::vector<std::pair<uint32_t, std::string>>& thread_names);

/// Writes ChromeTraceToJson to `path`. Returns false on I/O failure.
bool WriteChromeTrace(
    const std::string& path, const std::vector<TraceEvent>& events,
    const std::vector<std::pair<uint32_t, std::string>>& thread_names);

}  // namespace equitensor

#endif  // EQUITENSOR_UTIL_TRACE_EXPORT_H_
