#include "util/profiler.h"

#if defined(__linux__) || defined(__APPLE__)
#define EQUITENSOR_PROFILER_POSIX 1
#else
#define EQUITENSOR_PROFILER_POSIX 0
#endif

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <vector>

#if EQUITENSOR_PROFILER_POSIX
#include <cxxabi.h>
#include <dlfcn.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/time.h>
#include <ucontext.h>
#include <unistd.h>

#include <cerrno>
#endif

#if defined(__linux__)
#include <elf.h>

#include <fstream>
#endif

#include "util/table.h"

namespace equitensor {
namespace {

#if EQUITENSOR_PROFILER_POSIX

// --- Capture state shared with the signal handler -------------------
//
// Everything the handler touches is set up (and allocated) before the
// timer is armed and torn down only after it is disarmed. The handler
// itself performs no allocation, takes no lock, and calls no function
// that could: it claims a per-thread ring once via one fetch_add,
// walks the interrupted stack with bounds-checked raw reads, and
// publishes each sample with a release store on the ring's write
// index. Readers (StopCpuProfile, after disarming) acquire-load the
// index, so a sample mid-write is simply not yet visible — never torn.

// One per-thread sample ring. Entries are packed records:
//   [depth, pc0(leaf), pc1, ..., pc_{depth-1}(root-most)]
struct SampleRing {
  uint64_t* data = nullptr;            // capacity entries, preallocated
  std::atomic<uint64_t> write{0};      // entries published
  std::atomic<uint64_t> samples{0};    // records published
};

std::atomic<bool> g_active{false};    // handler gate (release/acquire)
std::atomic<bool> g_session{false};   // Start..Stop mutual exclusion
std::atomic<uint64_t> g_capture_gen{0};
std::atomic<int> g_next_ring{0};
std::atomic<uint64_t> g_dropped{0};

SampleRing* g_rings = nullptr;  // [g_num_rings], owned by the session
int g_num_rings = 0;
int g_ring_capacity = 0;
int g_max_depth = 0;

struct sigaction g_old_sigaction;
std::chrono::steady_clock::time_point g_start_time;
int g_hz = 0;

thread_local int tls_ring = -1;
thread_local uint64_t tls_ring_gen = 0;

// The walk trusts frame pointers only inside a window above the
// interrupted stack pointer; anything else ends the walk.
constexpr uint64_t kMaxStackScanBytes = 8ull << 20;

// True when the 16 bytes at `addr` (one frame record: saved fp +
// return address) are readable. msync is a syscall — async-signal-safe
// — and reports ENOMEM for unmapped pages; this is what keeps a
// garbage frame pointer (e.g. libc leaf code that repurposes rbp) from
// faulting inside the handler.
bool FrameRecordReadable(uint64_t addr, long page_size) {
  const uint64_t mask = static_cast<uint64_t>(page_size) - 1;
  uint64_t page = addr & ~mask;
  const uint64_t last_page = (addr + 15) & ~mask;
  for (; page <= last_page; page += static_cast<uint64_t>(page_size)) {
    if (msync(reinterpret_cast<void*>(page),
              static_cast<size_t>(page_size), MS_ASYNC) != 0) {
      return false;
    }
  }
  return true;
}

// Fills out[0..max_depth) leaf-first from the interrupted context.
// Async-signal-safe: raw reads only, every dereference pre-validated.
int WalkStack(void* ucontext_raw, uint64_t* out, int max_depth,
              long page_size) {
  auto* uc = static_cast<ucontext_t*>(ucontext_raw);
  uint64_t pc = 0, fp = 0, sp = 0;
#if defined(__x86_64__)
  pc = static_cast<uint64_t>(uc->uc_mcontext.gregs[REG_RIP]);
  fp = static_cast<uint64_t>(uc->uc_mcontext.gregs[REG_RBP]);
  sp = static_cast<uint64_t>(uc->uc_mcontext.gregs[REG_RSP]);
#elif defined(__aarch64__)
  pc = static_cast<uint64_t>(uc->uc_mcontext.pc);
  fp = static_cast<uint64_t>(uc->uc_mcontext.regs[29]);
  sp = static_cast<uint64_t>(uc->uc_mcontext.sp);
#else
  (void)uc;
  (void)page_size;
#endif
  if (pc == 0) return 0;
  int depth = 0;
  out[depth++] = pc;
#if defined(__x86_64__) || defined(__aarch64__)
  const uint64_t limit = sp + kMaxStackScanBytes;
  while (depth < max_depth) {
    if (fp == 0 || fp < sp || fp >= limit || (fp & 7) != 0) break;
    if (!FrameRecordReadable(fp, page_size)) break;
    const uint64_t next_fp = *reinterpret_cast<const uint64_t*>(fp);
    const uint64_t ret = *reinterpret_cast<const uint64_t*>(fp + 8);
    if (ret < 4096) break;  // null / junk return address ends the walk
    out[depth++] = ret;
    if (next_fp <= fp) break;  // frame chains must move up the stack
    fp = next_fp;
  }
#endif
  return depth;
}

void ProfilerSignalHandler(int /*signum*/, siginfo_t* /*info*/,
                           void* ucontext_raw) {
  const int saved_errno = errno;
  if (g_active.load(std::memory_order_acquire)) {
    const uint64_t gen = g_capture_gen.load(std::memory_order_relaxed);
    if (tls_ring_gen != gen) {
      const int idx = g_next_ring.fetch_add(1, std::memory_order_relaxed);
      tls_ring = idx < g_num_rings ? idx : -1;
      tls_ring_gen = gen;
    }
    if (tls_ring < 0) {
      g_dropped.fetch_add(1, std::memory_order_relaxed);
    } else {
      SampleRing& ring = g_rings[tls_ring];
      const uint64_t w = ring.write.load(std::memory_order_relaxed);
      if (w + 1 + static_cast<uint64_t>(g_max_depth) >
          static_cast<uint64_t>(g_ring_capacity)) {
        g_dropped.fetch_add(1, std::memory_order_relaxed);
      } else {
        static const long page_size = sysconf(_SC_PAGESIZE);
        const int depth =
            WalkStack(ucontext_raw, ring.data + w + 1, g_max_depth,
                      page_size);
        if (depth > 0) {
          ring.data[w] = static_cast<uint64_t>(depth);
          ring.samples.fetch_add(1, std::memory_order_relaxed);
          ring.write.store(w + 1 + static_cast<uint64_t>(depth),
                           std::memory_order_release);
        }
      }
    }
  }
  errno = saved_errno;
}

// --- Offline symbolization (Stop path, normal code) -----------------

std::string DemangledName(const char* mangled) {
  int status = 0;
  char* demangled =
      abi::__cxa_demangle(mangled, nullptr, nullptr, &status);
  std::string name =
      (status == 0 && demangled != nullptr) ? demangled : mangled;
  std::free(demangled);
  // ';' delimits frames in the folded format; keep names one token.
  for (char& c : name) {
    if (c == ';' || c == '\n') c = ':';
  }
  return name;
}

struct SymbolizedFrame {
  std::string name;
  bool symbolized = false;
};

#if defined(__linux__)

// --- .symtab fallback ------------------------------------------------
//
// dladdr resolves through .dynsym only, and the hottest frames in this
// codebase — anonymous-namespace kernel inner loops, the lambdas
// handed to ParallelFor, file-static helpers — are local symbols that
// never appear there. They do appear in .symtab, which the runtime
// loader ignores but the on-disk ELF keeps (unless stripped). The Stop
// path reads each module's .symtab once and serves lookups from a
// sorted table; stripped system libraries simply yield an empty table
// and fall through to the "[basename]" rendering.

struct SymtabFunc {
  uint64_t addr = 0;  // runtime address (load bias applied)
  uint64_t size = 0;  // 0 for sizeless asm stubs: bounded by next entry
  std::string name;   // mangled, as stored
};

struct ModuleSymtab {
  std::vector<SymtabFunc> funcs;  // sorted by addr
};

// Reads `size` bytes at `offset` into `out` (resized); false on any
// seek/read failure.
bool ReadAt(std::ifstream* file, uint64_t offset, uint64_t size,
            std::vector<char>* out) {
  out->resize(static_cast<size_t>(size));
  file->clear();
  file->seekg(static_cast<std::streamoff>(offset));
  file->read(out->data(), static_cast<std::streamsize>(size));
  return file->good() ||
         (file->eof() &&
          static_cast<uint64_t>(file->gcount()) == size);
}

// Reads STT_FUNC entries of .symtab from the ELF at `path`. st_value
// is file-relative for ET_DYN (PIE executables, shared objects) and
// absolute for ET_EXEC, so `bias` (the module's runtime base) is
// applied only in the former case. Only the ELF header, section table,
// and .symtab/.strtab sections are read — sanitizer and debug builds
// are hundreds of MB and slurping them whole stalls the Stop path past
// HTTP client timeouts. Every offset is bounds-checked against the
// file size — a truncated or hostile file yields false, never a bad
// read.
bool LoadModuleSymtab(const char* path, uint64_t bias, ModuleSymtab* out) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return false;
  file.seekg(0, std::ios::end);
  const uint64_t file_size = static_cast<uint64_t>(file.tellg());
  if (file_size < sizeof(Elf64_Ehdr)) return false;

  std::vector<char> bytes;
  if (!ReadAt(&file, 0, sizeof(Elf64_Ehdr), &bytes)) return false;
  Elf64_Ehdr ehdr;
  std::memcpy(&ehdr, bytes.data(), sizeof(ehdr));
  if (std::memcmp(ehdr.e_ident, ELFMAG, SELFMAG) != 0) return false;
  if (ehdr.e_ident[EI_CLASS] != ELFCLASS64) return false;
  if (ehdr.e_shentsize != sizeof(Elf64_Shdr)) return false;
  const uint64_t apply_bias = ehdr.e_type == ET_DYN ? bias : 0;
  const uint64_t shnum = ehdr.e_shnum;
  if (ehdr.e_shoff > file_size ||
      shnum * sizeof(Elf64_Shdr) > file_size - ehdr.e_shoff) {
    return false;
  }
  if (!ReadAt(&file, ehdr.e_shoff, shnum * sizeof(Elf64_Shdr), &bytes)) {
    return false;
  }
  std::vector<Elf64_Shdr> shdrs(shnum);
  std::memcpy(shdrs.data(), bytes.data(), shnum * sizeof(Elf64_Shdr));
  const auto section_ok = [file_size](const Elf64_Shdr& s) {
    return s.sh_offset <= file_size && s.sh_size <= file_size - s.sh_offset;
  };
  for (const Elf64_Shdr& shdr : shdrs) {
    if (shdr.sh_type != SHT_SYMTAB) continue;
    if (!section_ok(shdr) || shdr.sh_link >= shnum) continue;
    const Elf64_Shdr& strtab = shdrs[shdr.sh_link];
    if (strtab.sh_type != SHT_STRTAB || !section_ok(strtab)) continue;
    std::vector<char> syms;
    std::vector<char> strings;
    if (!ReadAt(&file, shdr.sh_offset, shdr.sh_size, &syms) ||
        !ReadAt(&file, strtab.sh_offset, strtab.sh_size, &strings)) {
      continue;
    }
    const uint64_t nsyms = shdr.sh_size / sizeof(Elf64_Sym);
    for (uint64_t i = 0; i < nsyms; ++i) {
      Elf64_Sym sym;
      std::memcpy(&sym, syms.data() + i * sizeof(sym), sizeof(sym));
      if (ELF64_ST_TYPE(sym.st_info) != STT_FUNC) continue;
      if (sym.st_value == 0 || sym.st_name >= strtab.sh_size) continue;
      const char* name = strings.data() + sym.st_name;
      // The name must NUL-terminate inside the string section.
      if (std::memchr(name, '\0', strtab.sh_size - sym.st_name) == nullptr) {
        continue;
      }
      if (name[0] == '\0') continue;
      out->funcs.push_back(
          SymtabFunc{apply_bias + sym.st_value, sym.st_size, name});
    }
  }
  std::sort(out->funcs.begin(), out->funcs.end(),
            [](const SymtabFunc& a, const SymtabFunc& b) {
              return a.addr < b.addr;
            });
  return !out->funcs.empty();
}

const SymtabFunc* SymtabLookup(const ModuleSymtab& table, uint64_t pc) {
  const auto& funcs = table.funcs;
  auto it = std::upper_bound(
      funcs.begin(), funcs.end(), pc,
      [](uint64_t value, const SymtabFunc& f) { return value < f.addr; });
  if (it == funcs.begin()) return nullptr;
  --it;
  const uint64_t end = it->size > 0
                           ? it->addr + it->size
                           : (std::next(it) != funcs.end()
                                  ? std::next(it)->addr
                                  : it->addr + 4096);
  return pc < end ? &*it : nullptr;
}

#endif  // defined(__linux__)

// pc -> frame name: dladdr first, then the module's .symtab for local
// symbols dladdr cannot see. Return addresses point one past the call,
// so callers pass pc-1 for non-leaf frames to land inside it. Offline
// use only (Stop path): dladdr, file reads, and allocation throughout.
class OfflineSymbolizer {
 public:
  SymbolizedFrame Symbolize(uint64_t pc) {
    SymbolizedFrame frame;
    Dl_info info;
    std::memset(&info, 0, sizeof(info));
    const bool mapped =
        dladdr(reinterpret_cast<void*>(static_cast<uintptr_t>(pc)), &info) !=
        0;
    if (mapped && info.dli_sname != nullptr) {
      frame.name = DemangledName(info.dli_sname);
      frame.symbolized = true;
      return frame;
    }
#if defined(__linux__)
    if (mapped && info.dli_fname != nullptr && info.dli_fbase != nullptr) {
      const SymtabFunc* func = SymtabLookup(ModuleFor(info), pc);
      if (func != nullptr) {
        frame.name = DemangledName(func->name.c_str());
        frame.symbolized = true;
        return frame;
      }
    }
#endif
    char buf[64];
    if (mapped && info.dli_fname != nullptr) {
      const char* base = std::strrchr(info.dli_fname, '/');
      base = base != nullptr ? base + 1 : info.dli_fname;
      std::snprintf(buf, sizeof(buf), "[%s]", base);
    } else {
      std::snprintf(buf, sizeof(buf), "[0x%llx]",
                    static_cast<unsigned long long>(pc));
    }
    frame.name = buf;
    return frame;
  }

 private:
#if defined(__linux__)
  const ModuleSymtab& ModuleFor(const Dl_info& info) {
    const uint64_t key = reinterpret_cast<uint64_t>(info.dli_fbase);
    auto it = modules_.find(key);
    if (it != modules_.end()) return it->second;
    ModuleSymtab table;
    const uint64_t bias = reinterpret_cast<uint64_t>(info.dli_fbase);
    if (!LoadModuleSymtab(info.dli_fname, bias, &table)) {
      // The main executable's recorded path can be relative to a cwd
      // long gone; /proc/self/exe always names it. Only safe when this
      // module IS the main executable — our own code (static-linked
      // into it) shares its base.
      Dl_info self;
      std::memset(&self, 0, sizeof(self));
      if (dladdr(reinterpret_cast<void*>(&StartCpuProfile), &self) != 0 &&
          self.dli_fbase == info.dli_fbase) {
        LoadModuleSymtab("/proc/self/exe", bias, &table);
      }
    }
    return modules_.emplace(key, std::move(table)).first->second;
  }

  std::unordered_map<uint64_t, ModuleSymtab> modules_;
#endif
};

void FreeRings() {
  if (g_rings != nullptr) {
    for (int i = 0; i < g_num_rings; ++i) delete[] g_rings[i].data;
    delete[] g_rings;
    g_rings = nullptr;
  }
  g_num_rings = 0;
}

#endif  // EQUITENSOR_PROFILER_POSIX

}  // namespace

bool StartCpuProfile(const CpuProfileOptions& options, std::string* error) {
#if !EQUITENSOR_PROFILER_POSIX
  (void)options;
  if (error != nullptr) *error = "profiler requires a POSIX platform";
  return false;
#else
  bool expected = false;
  if (!g_session.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    if (error != nullptr) *error = "a CPU profile capture is already active";
    return false;
  }
  const int hz = std::max(1, std::min(options.hz, 1000));
  const int max_depth = std::max(2, std::min(options.max_depth, 256));
  const int ring_capacity =
      std::max(max_depth + 1, std::min(options.ring_capacity, 1 << 22));
  const int max_threads = std::max(1, std::min(options.max_threads, 1024));

  g_num_rings = max_threads;
  g_ring_capacity = ring_capacity;
  g_max_depth = max_depth;
  g_rings = new SampleRing[static_cast<size_t>(max_threads)];
  for (int i = 0; i < max_threads; ++i) {
    g_rings[i].data = new uint64_t[static_cast<size_t>(ring_capacity)];
  }
  g_next_ring.store(0, std::memory_order_relaxed);
  g_dropped.store(0, std::memory_order_relaxed);
  g_capture_gen.fetch_add(1, std::memory_order_relaxed);
  g_hz = hz;
  g_start_time = std::chrono::steady_clock::now();

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_sigaction = &ProfilerSignalHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_SIGINFO | SA_RESTART;
  if (sigaction(SIGPROF, &action, &g_old_sigaction) != 0) {
    FreeRings();
    g_session.store(false, std::memory_order_release);
    if (error != nullptr) {
      *error = std::string("sigaction(SIGPROF) failed: ") +
               std::strerror(errno);
    }
    return false;
  }

  // Publish the capture state before the first signal can fire.
  g_active.store(true, std::memory_order_release);

  itimerval timer;
  std::memset(&timer, 0, sizeof(timer));
  // hz is clamped to [1, 1000]; tv_usec must stay < 1e6 (EINVAL
  // otherwise), so the 1 Hz case is 1 s + 0 µs, not 1e6 µs.
  const long interval_usec = 1000000L / hz;
  timer.it_interval.tv_sec = interval_usec / 1000000L;
  timer.it_interval.tv_usec =
      static_cast<suseconds_t>(interval_usec % 1000000L);
  if (timer.it_interval.tv_sec == 0 && timer.it_interval.tv_usec == 0) {
    timer.it_interval.tv_usec = 1;
  }
  timer.it_value = timer.it_interval;
  if (setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
    g_active.store(false, std::memory_order_release);
    sigaction(SIGPROF, &g_old_sigaction, nullptr);
    FreeRings();
    g_session.store(false, std::memory_order_release);
    if (error != nullptr) {
      *error = std::string("setitimer(ITIMER_PROF) failed: ") +
               std::strerror(errno);
    }
    return false;
  }
  return true;
#endif
}

bool StopCpuProfile(CpuProfile* profile, std::string* error) {
#if !EQUITENSOR_PROFILER_POSIX
  (void)profile;
  if (error != nullptr) *error = "profiler requires a POSIX platform";
  return false;
#else
  if (!g_session.load(std::memory_order_acquire)) {
    if (error != nullptr) *error = "no CPU profile capture is active";
    return false;
  }
  itimerval timer;
  std::memset(&timer, 0, sizeof(timer));
  setitimer(ITIMER_PROF, &timer, nullptr);
  g_active.store(false, std::memory_order_release);
  // Let any handler already past the g_active gate finish its bounded
  // write; unpublished samples are invisible to the reads below either
  // way, this just keeps the ring teardown out of their write window.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  sigaction(SIGPROF, &g_old_sigaction, nullptr);

  CpuProfile result;
  result.hz = g_hz;
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - g_start_time)
                       .count();
  result.dropped_samples = g_dropped.load(std::memory_order_relaxed);

  OfflineSymbolizer symbolizer;
  std::unordered_map<uint64_t, SymbolizedFrame> symbol_cache;
  const auto symbolize = [&symbol_cache,
                          &symbolizer](uint64_t pc) -> SymbolizedFrame& {
    auto it = symbol_cache.find(pc);
    if (it == symbol_cache.end()) {
      it = symbol_cache.emplace(pc, symbolizer.Symbolize(pc)).first;
    }
    return it->second;
  };

  std::map<std::string, uint64_t> folded_counts;
  for (int r = 0; r < g_num_rings; ++r) {
    SampleRing& ring = g_rings[r];
    const uint64_t used = ring.write.load(std::memory_order_acquire);
    uint64_t pos = 0;
    while (pos < used) {
      const uint64_t depth = ring.data[pos];
      if (depth == 0 || pos + 1 + depth > used) break;
      const uint64_t* pcs = ring.data + pos + 1;
      ++result.samples;
      std::string line;
      // Stored leaf-first; folded format wants root first.
      for (uint64_t i = depth; i-- > 0;) {
        // Non-leaf entries are return addresses: step back one byte
        // to symbolize inside the call instruction.
        const uint64_t pc = (i == 0) ? pcs[i] : pcs[i] - 1;
        const SymbolizedFrame& frame = symbolize(pc);
        ++result.total_frames;
        if (frame.symbolized) ++result.symbolized_frames;
        if (!line.empty()) line += ';';
        line += frame.name;
      }
      ++folded_counts[line];
      pos += 1 + depth;
    }
  }

  std::vector<std::pair<std::string, uint64_t>> sorted(
      folded_counts.begin(), folded_counts.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) {
              return a.second != b.second ? a.second > b.second
                                          : a.first < b.first;
            });
  std::ostringstream out;
  for (const auto& [stack, count] : sorted) {
    out << stack << ' ' << count << '\n';
  }
  result.folded = out.str();

  FreeRings();
  g_session.store(false, std::memory_order_release);
  if (profile != nullptr) *profile = std::move(result);
  return true;
#endif
}

bool CpuProfileActive() {
#if !EQUITENSOR_PROFILER_POSIX
  return false;
#else
  return g_session.load(std::memory_order_acquire);
#endif
}

bool CaptureCpuProfile(double seconds, const CpuProfileOptions& options,
                       CpuProfile* profile, std::string* error) {
  if (!StartCpuProfile(options, error)) return false;
  seconds = std::max(0.05, std::min(seconds, 300.0));
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  return StopCpuProfile(profile, error);
}

std::string ProfileReportTable(const std::string& folded, int top_n) {
  struct FrameAgg {
    uint64_t self = 0;
    uint64_t total = 0;
  };
  std::map<std::string, FrameAgg> frames;
  uint64_t total_samples = 0;
  std::istringstream in(folded);
  std::string line;
  std::vector<std::string> stack;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const size_t last_space = line.find_last_of(' ');
    if (last_space == std::string::npos || last_space + 1 >= line.size()) {
      return "";
    }
    char* end = nullptr;
    const unsigned long long count =
        std::strtoull(line.c_str() + last_space + 1, &end, 10);
    if (end == nullptr || *end != '\0' || count == 0) return "";
    total_samples += count;
    stack.clear();
    size_t pos = 0;
    const std::string frames_text = line.substr(0, last_space);
    while (pos <= frames_text.size()) {
      const size_t sep = frames_text.find(';', pos);
      const std::string frame = frames_text.substr(
          pos, sep == std::string::npos ? std::string::npos : sep - pos);
      if (!frame.empty()) stack.push_back(frame);
      if (sep == std::string::npos) break;
      pos = sep + 1;
    }
    if (stack.empty()) return "";
    frames[stack.back()].self += count;
    // `total` counts each stack once per frame, even if the frame
    // recurses within it.
    std::vector<std::string> unique(stack);
    std::sort(unique.begin(), unique.end());
    unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
    for (const std::string& frame : unique) frames[frame].total += count;
  }
  if (total_samples == 0) return "";

  std::vector<std::pair<std::string, FrameAgg>> sorted(frames.begin(),
                                                       frames.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second.self != b.second.self) return a.second.self > b.second.self;
    if (a.second.total != b.second.total) {
      return a.second.total > b.second.total;
    }
    return a.first < b.first;
  });
  if (top_n > 0 && sorted.size() > static_cast<size_t>(top_n)) {
    sorted.resize(static_cast<size_t>(top_n));
  }
  TextTable table({"frame", "self", "self%", "total", "total%"});
  const double denom = static_cast<double>(total_samples);
  for (const auto& [name, agg] : sorted) {
    table.AddRow({name, std::to_string(agg.self),
                  TextTable::Num(100.0 * static_cast<double>(agg.self) / denom,
                                 1),
                  std::to_string(agg.total),
                  TextTable::Num(
                      100.0 * static_cast<double>(agg.total) / denom, 1)});
  }
  std::ostringstream out;
  out << table.ToString() << "samples: " << total_samples << "\n";
  return out.str();
}

double ProfileSymbolizedFraction(const CpuProfile& profile) {
  if (profile.total_frames == 0) return 1.0;
  return static_cast<double>(profile.symbolized_frames) /
         static_cast<double>(profile.total_frames);
}

}  // namespace equitensor
