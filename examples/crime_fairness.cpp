// Crime-prediction fairness walkthrough: shows that (a) a probe can
// recover the racial composition of a neighborhood from an ordinary
// integrated representation, (b) adversarial training with the
// disentangling decoder removes most of that signal, and (c) the
// fairness metrics of downstream crime predictions improve when the
// fair representation is used.

#include <iostream>

#include "core/downstream.h"
#include "core/equitensor.h"
#include "core/probe.h"
#include "data/generators.h"
#include "tensor/tensor_ops.h"
#include "util/ascii_map.h"

using namespace equitensor;

int main() {
  data::CityConfig city;
  city.width = 10;
  city.height = 8;
  city.hours = 24 * 30;
  city.seed = 9;
  std::cout << "Building the city (reported crime reflects biased policing\n"
               "by construction: intensity rises with non-white share)...\n";
  const data::UrbanDataBundle bundle = data::BuildSeattleAnalog(city);

  core::EquiTensorConfig base;
  base.cdae.grid_w = city.width;
  base.cdae.grid_h = city.height;
  base.cdae.window = 24;
  base.cdae.latent_channels = 4;
  base.cdae.encoder_filters = {6, 12, 1};
  base.cdae.shared_filters = {8};
  base.cdae.decoder_filters = {8};
  base.epochs = 4;
  base.steps_per_epoch = 10;
  base.batch_size = 4;

  // 1. Fairness-oblivious core model.
  std::cout << "\n[1/3] Training the fairness-oblivious core model...\n";
  core::EquiTensorTrainer core_trainer(base, &bundle.datasets, nullptr);
  core_trainer.Train();
  const Tensor z_core = core_trainer.Materialize();

  // 2. Race-fair EquiTensor (adversary + disentangling decoder).
  std::cout << "[2/3] Training the race-fair EquiTensor (lambda = 2)...\n";
  core::EquiTensorConfig fair = base;
  fair.fairness = core::FairnessMode::kAdversarial;
  fair.cdae.disentangle = true;
  fair.lambda = 2.0;
  core::EquiTensorTrainer fair_trainer(fair, &bundle.datasets,
                                       &bundle.race_map);
  fair_trainer.Train();
  const Tensor z_fair = fair_trainer.Materialize();

  // 3. Probe both with a freshly trained adversary (§3.5) and compare
  //    against the Gaussian-noise ceiling.
  std::cout << "[3/3] Probing both representations for racial signal...\n";
  core::ProbeConfig probe;
  probe.window = 24;
  probe.epochs = 3;
  probe.steps_per_epoch = 10;
  probe.batch_size = 4;
  const double core_leak =
      core::ProbeSensitiveLeakage(z_core, bundle.race_map, probe);
  const double fair_leak =
      core::ProbeSensitiveLeakage(z_fair, bundle.race_map, probe);
  const Tensor noise = core::GaussianNoiseRepresentation(
      4, city.width, city.height, z_core.dim(3), 777);
  const double ceiling =
      core::ProbeSensitiveLeakage(noise, bundle.race_map, probe);

  std::cout << "\nProbe MAE recovering the race map (higher = fairer):\n"
            << "  core representation : " << core_leak << "\n"
            << "  fair EquiTensor     : " << fair_leak << "\n"
            << "  Gaussian noise      : " << ceiling << " (ceiling)\n";

  // Visual check (§3.2: Z's spatial layout permits direct inspection):
  // the time-averaged latent channel next to the race map. A channel
  // of the *core* model often mirrors the demographic gradient; the
  // fair model's channels should not.
  const Tensor core_ch = MeanAxis(
      Slice(z_core, {0, 0, 0, 0}, {1, city.width, city.height, z_core.dim(3)})
          .Reshape({city.width, city.height, z_core.dim(3)}),
      2);
  const Tensor fair_ch = MeanAxis(
      Slice(z_fair, {0, 0, 0, 0}, {1, city.width, city.height, z_fair.dim(3)})
          .Reshape({city.width, city.height, z_fair.dim(3)}),
      2);
  std::cout << "\n"
            << RenderAsciiMaps({bundle.race_map, core_ch, fair_ch},
                               {"race map (white %)", "core Z ch.0",
                                "fair Z ch.0"});

  // Downstream crime prediction with each representation.
  core::GridTaskConfig task;
  task.history = 24;
  task.horizon = 3;
  task.epochs = 10;
  task.steps_per_epoch = 20;
  task.batch_size = 4;
  task.eval_stride = 4;
  task.predictor.history = 24;
  task.predictor.history_filters = {6, 12};
  task.predictor.exo_filters = {6};
  task.predictor.head_filters = {12, 1};

  const core::RepresentationExoProvider core_exo(&z_core);
  const core::RepresentationExoProvider fair_exo(&z_fair);
  std::cout << "\nDownstream 3-hour crime prediction (race fairness):\n";
  auto run = [&](const std::string& label, const core::ExoProvider* exo) {
    const core::GridTaskResult result = core::RunGridTask(
        bundle.crime, bundle.crime_scale, bundle.race_map, exo, task);
    std::cout << "  " << label << ": MAE " << result.mae << ", RD "
              << result.fairness.rd << ", PRD " << result.fairness.prd
              << "\n";
  };
  run("history only      ", nullptr);
  run("core features     ", &core_exo);
  run("fair EquiTensor   ", &fair_exo);
  std::cout << "\nPRD < 0 means crime is over-predicted in non-white\n"
               "neighborhoods relative to white ones — the feedback loop\n"
               "the EquiTensor intervention is designed to dampen.\n";
  return 0;
}
