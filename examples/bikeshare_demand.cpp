// The paper's §1 motivating example: dockless bikeshare demand
// prediction. Compares three feature regimes on next-hour demand —
// history only, hand-picked oracle features (weather + slope +
// bikelanes), and an income-fair EquiTensor — and reports both
// accuracy (MAE) and equity (RD / NRD with income as the sensitive
// attribute). Underestimating demand in underserved neighborhoods
// (negative NRD) is the harm this intervention targets.

#include <iostream>

#include "core/downstream.h"
#include "core/equitensor.h"
#include "data/generators.h"
#include "util/table.h"

using namespace equitensor;

int main() {
  data::CityConfig city;
  city.width = 10;
  city.height = 8;
  city.hours = 24 * 30;
  city.seed = 5;
  std::cout << "Building the city (30 days, 23 datasets)...\n";
  const data::UrbanDataBundle bundle = data::BuildSeattleAnalog(city);

  // Train an income-fair EquiTensor over all 23 inputs.
  core::EquiTensorConfig config;
  config.cdae.grid_w = city.width;
  config.cdae.grid_h = city.height;
  config.cdae.window = 24;
  config.cdae.latent_channels = 4;
  config.cdae.encoder_filters = {6, 12, 1};
  config.cdae.shared_filters = {8};
  config.cdae.decoder_filters = {8};
  config.cdae.disentangle = true;
  config.fairness = core::FairnessMode::kAdversarial;
  config.lambda = 2.0;
  config.epochs = 4;
  config.steps_per_epoch = 10;
  config.batch_size = 4;
  std::cout << "Training an income-fair EquiTensor (lambda = "
            << config.lambda << ")...\n";
  core::EquiTensorTrainer trainer(config, &bundle.datasets,
                                  &bundle.income_map);
  trainer.Train();
  const Tensor equitensor = trainer.Materialize();

  // Downstream: next-hour bikeshare demand.
  core::GridTaskConfig task;
  task.history = 24;
  task.horizon = 1;
  task.epochs = 10;
  task.steps_per_epoch = 20;
  task.batch_size = 4;
  task.eval_stride = 4;
  task.predictor.history = 24;
  task.predictor.history_filters = {6, 12};
  task.predictor.exo_filters = {6};
  task.predictor.head_filters = {12, 1};

  const core::OracleExoProvider oracle(&bundle, data::Task::kBikeshare);
  const core::RepresentationExoProvider fair(&equitensor);

  TextTable table({"Features", "MAE (scaled)", "RD", "NRD"});
  auto run = [&](const std::string& label, const core::ExoProvider* exo) {
    const core::GridTaskResult result =
        core::RunGridTask(bundle.bikeshare, bundle.bikeshare_scale,
                          bundle.income_map, exo, task);
    table.AddRow({label, TextTable::Num(result.mae, 3),
                  TextTable::Num(result.fairness.rd, 1),
                  TextTable::Num(result.fairness.nrd, 1)});
    std::cout << "  " << label << ": MAE " << result.mae << ", RD "
              << result.fairness.rd << ", NRD " << result.fairness.nrd
              << " (" << result.eval_samples << " eval windows)\n";
  };
  std::cout << "Training downstream predictors...\n";
  run("History only", nullptr);
  run("Oracle (weather+slope+lanes)", &oracle);
  run("EquiTensor (income-fair)", &fair);

  std::cout << "\n" << table;
  std::cout << "Reading the table: RD/NRD of 0 is perfectly equitable; a\n"
               "negative NRD means demand in low-income cells is\n"
               "under-predicted more than in high-income cells, starving\n"
               "those neighborhoods of rebalanced bikes.\n";
  return 0;
}
