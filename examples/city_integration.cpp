// Data-integration walkthrough (§3.1): builds the full 23-dataset
// inventory of Table 2 from the synthetic city, prints the alignment
// result for each (kind, shape, scale, imputation), demonstrates the
// three rasterizers, and shows the 24-hour window sampler output that
// feeds the CDAE.

#include <iomanip>
#include <iostream>

#include "data/generators.h"
#include "data/preprocess.h"
#include "data/windows.h"
#include "geo/rasterize.h"

using namespace equitensor;

int main() {
  data::CityConfig city;
  city.width = 12;
  city.height = 10;
  city.hours = 24 * 20;
  city.seed = 3;

  std::cout << "=== 1. Rasterization primitives ===\n";
  const geo::GridSpec grid{city.width, city.height, 0.0, 0.0, city.cell_km};
  {
    // Points: count events per cell.
    const std::vector<geo::Point> pois = {{0.5, 0.5}, {0.7, 0.2}, {11.5, 9.5}};
    const Tensor counts = geo::RasterizePoints(pois, grid);
    std::cout << "points   -> cell(0,0)=" << counts.at({0, 0})
              << " cell(11,9)=" << counts.at({11, 9}) << "\n";
    // Lines: count segments per traversed cell.
    const std::vector<geo::Polyline> street = {{{0.2, 5.5}, {11.8, 5.5}}};
    const Tensor segs = geo::RasterizeLines(street, grid);
    std::cout << "lines    -> row 5 coverage = " << segs.Sum()
              << " cells touched\n";
    // Regions: proportional-area allocation.
    const geo::ValuedRegion block = {
        {{1.5, 1.5}, {3.5, 1.5}, {3.5, 2.5}, {1.5, 2.5}}, 100.0};
    const Tensor alloc = geo::RasterizeRegions({block}, grid);
    std::cout << "regions  -> value mass preserved: " << alloc.Sum()
              << " of 100\n";
  }

  std::cout << "\n=== 2. The 23-dataset inventory (Table 2) ===\n";
  const data::UrbanDataBundle bundle = data::BuildSeattleAnalog(city);
  std::cout << std::left << std::setw(22) << "dataset" << std::setw(17)
            << "kind" << std::setw(18) << "aligned shape" << "max-abs scale\n";
  for (const auto& ds : bundle.datasets) {
    std::cout << std::left << std::setw(22) << ds.name << std::setw(17)
              << data::DatasetKindName(ds.kind) << std::setw(18)
              << ds.tensor.ShapeString() << ds.scale << "\n";
  }

  std::cout << "\n=== 3. Sensitive attributes (block groups -> grid) ===\n";
  std::cout << "race map: mean white fraction "
            << bundle.race_map.Mean() << " (min " << bundle.race_map.Min()
            << ", max " << bundle.race_map.Max() << ")\n";
  std::cout << "income map: mean high-income fraction "
            << bundle.income_map.Mean() << "\n";

  std::cout << "\n=== 4. Training windows (overlapping 24 h samples) ===\n";
  data::WindowSampler sampler(&bundle.datasets, 24);
  std::cout << "horizon " << sampler.hours() << " h -> "
            << sampler.NumWindows() << " overlapping samples, "
            << sampler.NonOverlappingStarts().size()
            << " non-overlapping (for materialization)\n";
  const auto batch = sampler.MakeBatch({0, 1});
  std::cout << "a 2-sample batch carries " << batch.size()
            << " tensors, e.g. " << bundle.datasets[0].name << " -> "
            << batch[0].ShapeString() << ", "
            << bundle.datasets.back().name << " -> "
            << batch.back().ShapeString() << "\n";

  std::cout << "\n=== 5. Denoising corruption (15% of cells -> -1) ===\n";
  Rng rng(1);
  const Tensor corrupted = data::Corrupt(batch[0], 0.15, rng);
  int64_t corrupted_count = 0;
  for (int64_t i = 0; i < corrupted.size(); ++i) {
    if (corrupted[i] == -1.0f) ++corrupted_count;
  }
  std::cout << corrupted_count << " of " << corrupted.size()
            << " cells corrupted\n";
  return 0;
}
