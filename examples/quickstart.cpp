// Quickstart: build a small synthetic city, align a handful of
// heterogeneous urban datasets to the common grid, train a tiny
// EquiTensor, and materialize the integrated representation.
//
//   $ ./examples/quickstart
//
// This walks the full public API surface in under a minute of CPU.

#include <iostream>

#include "core/equitensor.h"
#include "data/generators.h"

using namespace equitensor;

int main() {
  // 1. A synthetic city standing in for the paper's Seattle study
  //    area: 8x6 km grid, two weeks of hourly data.
  data::CityConfig city;
  city.width = 8;
  city.height = 6;
  city.hours = 24 * 14;
  city.seed = 42;
  std::cout << "Building synthetic city and the 23-dataset inventory...\n";
  const data::UrbanDataBundle bundle = data::BuildSeattleAnalog(city);

  // 2. Pick a few heterogeneous inputs: 1D weather, 2D infrastructure,
  //    3D event streams. (Production use: pass all of bundle.datasets.)
  std::vector<data::AlignedDataset> inputs;
  for (const char* name : {"temperature", "precipitation", "house_price",
                           "seattle_streets", "traffic_collisions",
                           "seattle_911_calls"}) {
    inputs.push_back(bundle.datasets[static_cast<size_t>(bundle.IndexOf(name))]);
    const auto& ds = inputs.back();
    std::cout << "  aligned " << ds.name << " ("
              << data::DatasetKindName(ds.kind) << ", shape "
              << ds.tensor.ShapeString() << ", max-abs scale " << ds.scale
              << ")\n";
  }

  // 3. Configure and train the core integrative model (§3.2): each
  //    dataset gets its own conv encoder; a shared 3D-conv encoder
  //    produces the latent Z; per-dataset decoders reconstruct the
  //    corrupted inputs.
  core::EquiTensorConfig config;
  config.cdae.grid_w = city.width;
  config.cdae.grid_h = city.height;
  config.cdae.window = 24;
  config.cdae.latent_channels = 3;
  config.cdae.encoder_filters = {8, 16, 1};
  config.cdae.shared_filters = {8};
  config.cdae.decoder_filters = {8};
  config.epochs = 4;
  config.steps_per_epoch = 10;
  config.batch_size = 4;
  config.seed = 1;

  core::EquiTensorTrainer trainer(config, &inputs, nullptr);
  std::cout << "\nTraining the core integrative model ("
            << trainer.model().ParameterCount() << " parameters)...\n";
  trainer.Train();
  for (const core::EpochLog& epoch : trainer.log()) {
    std::cout << "  epoch " << epoch.epoch
              << ": total reconstruction MAE = " << epoch.total_loss << "\n";
  }

  // 4. Materialize the integrated representation over the full horizon
  //    and show how a downstream task would consume it.
  const Tensor z = trainer.Materialize();
  std::cout << "\nMaterialized representation Z: " << z.ShapeString()
            << " (K x W x H x T)\n";
  std::cout << "Reconstruction error on held-out corrupted batches: "
            << trainer.EvaluateReconstructionError() << "\n";
  std::cout << "\nDone. See examples/bikeshare_demand and "
               "examples/crime_fairness for end-to-end applications.\n";
  return 0;
}
