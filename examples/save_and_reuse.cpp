// Persistence and external-data walkthrough: train once, checkpoint
// the model and the materialized EquiTensor, reload both in a "second
// application" context (Figure 1B's reuse story), and ingest an
// external CSV event feed through the alignment pipeline.

#include <cstdio>
#include <fstream>
#include <iostream>

#include "core/equitensor.h"
#include "data/csv_loader.h"
#include "data/generators.h"
#include "data/preprocess.h"
#include "data/windows.h"
#include "models/cdae.h"
#include "nn/serialize.h"
#include "tensor/tensor_ops.h"

using namespace equitensor;

int main() {
  data::CityConfig city;
  city.width = 8;
  city.height = 6;
  city.hours = 24 * 10;
  city.seed = 12;
  const data::UrbanDataBundle bundle = data::BuildSeattleAnalog(city);

  // Keep a small inventory for speed.
  std::vector<data::AlignedDataset> inputs;
  for (const char* name :
       {"temperature", "seattle_streets", "seattle_911_calls"}) {
    inputs.push_back(bundle.datasets[static_cast<size_t>(bundle.IndexOf(name))]);
  }

  core::EquiTensorConfig config;
  config.cdae.grid_w = city.width;
  config.cdae.grid_h = city.height;
  config.cdae.window = 24;
  config.cdae.latent_channels = 2;
  config.cdae.encoder_filters = {4, 1};
  config.cdae.shared_filters = {6};
  config.cdae.decoder_filters = {6};
  config.epochs = 3;
  config.steps_per_epoch = 8;
  config.batch_size = 2;

  std::cout << "[1] Training and checkpointing...\n";
  core::EquiTensorTrainer trainer(config, &inputs, nullptr);
  trainer.Train();
  const Tensor z = trainer.Materialize();
  const std::string model_path = "equitensor_model.etck";
  const std::string z_path = "equitensor_z.etck";
  if (!nn::SaveModule(model_path,
                      const_cast<models::CoreCdae&>(trainer.model())) ||
      !nn::SaveTensor(z_path, z)) {
    std::cerr << "checkpointing failed\n";
    return 1;
  }
  std::cout << "    model -> " << model_path << " ("
            << trainer.model().ParameterCount() << " params), Z -> "
            << z_path << " " << z.ShapeString() << "\n";

  std::cout << "[2] A second application reloads without retraining...\n";
  Tensor z_reloaded;
  if (!nn::LoadTensor(z_path, &z_reloaded)) return 1;
  std::cout << "    reloaded Z matches: "
            << (AllClose(z, z_reloaded, 0.0f) ? "yes" : "NO") << "\n";

  // Rebuild the architecture and restore weights into it.
  Rng fresh_rng(999);
  models::CoreCdae restored(config.cdae,
                            core::EquiTensorTrainer::MakeSpecs(inputs),
                            fresh_rng);
  if (!nn::LoadModule(model_path, &restored)) return 1;
  // Same inputs -> same latent, proving the checkpoint round-trip.
  data::WindowSampler sampler(&inputs, 24);
  const auto batch = sampler.MakeBatch({0});
  std::vector<Variable> vars;
  for (const Tensor& t : batch) vars.emplace_back(t, false);
  const Tensor z_restored = restored.Encode(vars).value();
  const auto z_direct = [&] {
    std::vector<Variable> vars2;
    for (const Tensor& t : batch) vars2.emplace_back(t, false);
    return trainer.model().Encode(vars2).value();
  }();
  std::cout << "    restored encoder reproduces Z: "
            << (AllClose(z_restored, z_direct, 1e-6f) ? "yes" : "NO") << "\n";

  std::cout << "[3] Ingesting an external CSV event feed...\n";
  const std::string csv_path = "external_incidents.csv";
  {
    std::ofstream csv(csv_path);
    csv << "x_km,y_km,hour\n";
    Rng rng(5);
    for (int i = 0; i < 500; ++i) {
      csv << rng.Uniform(0.0, 8.0) << "," << rng.Uniform(0.0, 6.0) << ","
          << rng.UniformInt(240) << "\n";
    }
  }
  std::vector<data::Event> events;
  int64_t skipped = 0;
  if (!data::LoadEventsCsv(csv_path, 0, 1, 2, &events, &skipped)) return 1;
  const Tensor grid3d =
      data::EventsToGrid(events, bundle.city->grid(), city.hours);
  data::AlignedDataset external;
  external.name = "external_incidents";
  external.kind = data::DatasetKind::kSpatioTemporal;
  external.tensor =
      grid3d.Reshape({1, city.width, city.height, city.hours});
  data::FinalizeDataset(&external);
  std::cout << "    " << events.size() << " events loaded (" << skipped
            << " skipped), aligned to " << external.tensor.ShapeString()
            << ", scale " << external.scale << "\n"
            << "    -> append to the dataset vector and retrain to "
               "integrate a brand-new source.\n";
  std::remove(model_path.c_str());
  std::remove(z_path.c_str());
  std::remove(csv_path.c_str());
  return 0;
}
