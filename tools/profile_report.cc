// Renders folded flamegraph stacks (from `/debug/profile`,
// `equitensor_train --profile`, or `equitensor_serve --profile`) as a
// sorted self/total attribution table — the same view StopCpuProfile
// prints at shutdown, available offline (DESIGN.md §17).
//
//   profile_report --file=serve.folded --top=20
//   curl -s localhost:8080/debug/profile?seconds=5 | profile_report
//
// "self" counts samples whose leaf is the frame (time spent *in* it);
// "total" counts samples with the frame anywhere on the stack (time
// spent in it or anything it called).

#include <fstream>
#include <iostream>
#include <sstream>

#include "util/flags.h"
#include "util/profiler.h"

using namespace equitensor;

int main(int argc, char** argv) {
  FlagParser flags;
  flags.DefineString("file", "-",
                     "folded-stacks input ('-' = stdin)");
  flags.DefineInt("top", 20, "rows to show (0 = all frames)");

  if (!flags.Parse(argc, argv)) {
    std::cerr << flags.error() << "\n";
    return 2;
  }
  if (flags.help_requested()) {
    std::cout << flags.HelpText(
        "Render folded CPU-profile stacks as a self/total table.");
    return 0;
  }

  std::string folded;
  const std::string file = flags.GetString("file");
  if (file.empty() || file == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    folded = buffer.str();
  } else {
    std::ifstream in(file, std::ios::binary);
    if (!in.is_open()) {
      std::cerr << "cannot open " << file << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    folded = buffer.str();
  }

  const int top = static_cast<int>(flags.GetInt("top"));
  const std::string table = ProfileReportTable(folded, top <= 0 ? 0 : top);
  if (table.empty()) {
    std::cerr << "input is not folded stacks (want \"frame;frame count\" "
                 "lines) or holds no samples\n";
    return 1;
  }
  std::cout << table;
  return 0;
}
