// Renders a bench CSV (as written next to every experiment binary)
// into an SVG line chart — regenerates the paper's figure panels from
// the reproduced series.
//
//   plot_csv --input=fig4_alpha_sweep.csv --x=0 --output=fig4.svg
//
// Column 0 is the x axis by default; every other numeric column
// becomes a series named by its header.

#include <fstream>
#include <iostream>

#include "data/csv_loader.h"
#include "util/flags.h"
#include "util/svg_chart.h"

using namespace equitensor;

int main(int argc, char** argv) {
  FlagParser flags;
  flags.DefineString("input", "", "CSV file produced by a bench binary");
  flags.DefineInt("x", 0, "index of the x-axis column");
  flags.DefineString("output", "chart.svg", "SVG output path");
  flags.DefineString("title", "", "chart title (defaults to the file name)");
  flags.DefineString("x_label", "", "x-axis label (defaults to x header)");
  flags.DefineString("y_label", "value", "y-axis label");
  flags.DefineInt("width", 720, "SVG width");
  flags.DefineInt("height", 440, "SVG height");

  if (!flags.Parse(argc, argv)) {
    std::cerr << flags.error() << "\n";
    return 2;
  }
  if (flags.help_requested() || flags.GetString("input").empty()) {
    std::cout << flags.HelpText("Render a bench CSV as an SVG line chart.");
    return flags.help_requested() ? 0 : 2;
  }

  std::ifstream file(flags.GetString("input"));
  if (!file) {
    std::cerr << "cannot open " << flags.GetString("input") << "\n";
    return 1;
  }
  // Read the header row ourselves, then the data rows.
  std::string header_line;
  std::getline(file, header_line);
  std::vector<std::string> headers;
  if (!data::ParseCsvLine(header_line, ',', &headers)) {
    std::cerr << "malformed header\n";
    return 1;
  }
  data::CsvOptions options;
  options.has_header = false;
  std::vector<std::vector<std::string>> rows;
  if (!data::ParseCsv(file, options, &rows) || rows.empty()) {
    std::cerr << "no data rows\n";
    return 1;
  }

  const size_t x_col = static_cast<size_t>(flags.GetInt("x"));
  if (x_col >= headers.size()) {
    std::cerr << "x column out of range\n";
    return 1;
  }
  auto parse = [](const std::string& s, double* out) {
    char* end = nullptr;
    *out = std::strtod(s.c_str(), &end);
    return !s.empty() && end == s.c_str() + s.size();
  };

  std::vector<double> xs;
  std::vector<std::vector<double>> ys(headers.size());
  std::vector<bool> numeric(headers.size(), true);
  for (const auto& row : rows) {
    double x = 0.0;
    if (row.size() != headers.size() || !parse(row[x_col], &x)) continue;
    xs.push_back(x);
    for (size_t c = 0; c < headers.size(); ++c) {
      double v = 0.0;
      if (c == x_col) continue;
      if (parse(row[c], &v)) {
        ys[c].push_back(v);
      } else {
        numeric[c] = false;
      }
    }
  }
  if (xs.empty()) {
    std::cerr << "no numeric rows\n";
    return 1;
  }

  const std::string title = flags.GetString("title").empty()
                                ? flags.GetString("input")
                                : flags.GetString("title");
  const std::string x_label = flags.GetString("x_label").empty()
                                  ? headers[x_col]
                                  : flags.GetString("x_label");
  SvgChart chart(title, x_label, flags.GetString("y_label"));
  int series_count = 0;
  for (size_t c = 0; c < headers.size(); ++c) {
    if (c == x_col || !numeric[c] || ys[c].size() != xs.size()) continue;
    chart.AddSeries(headers[c], xs, ys[c]);
    ++series_count;
  }
  if (series_count == 0) {
    std::cerr << "no numeric series found\n";
    return 1;
  }
  if (!chart.WriteFile(flags.GetString("output"),
                       static_cast<int>(flags.GetInt("width")),
                       static_cast<int>(flags.GetInt("height")))) {
    std::cerr << "failed to write " << flags.GetString("output") << "\n";
    return 1;
  }
  std::cout << "wrote " << flags.GetString("output") << " (" << series_count
            << " series, " << xs.size() << " points)\n";
  return 0;
}
