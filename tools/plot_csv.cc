// Renders a bench CSV (as written next to every experiment binary)
// into an SVG line chart — regenerates the paper's figure panels from
// the reproduced series.
//
//   plot_csv --input=fig4_alpha_sweep.csv --x=0 --output=fig4.svg
//
// Column 0 is the x axis by default; every other numeric column
// becomes a series named by its header.
//
// Alternatively renders an equitensor_train telemetry stream
// (DESIGN.md §10) as loss/weight curves over epochs:
//
//   plot_csv --jsonl=run.jsonl --output=run.svg
//
// A --jsonl file with `type:"request"` records (an equitensor_serve
// access log — DESIGN.md §16) and no epoch records is charted as
// per-request latency instead: total_ms plus one series per stage,
// over the request id.

#include <fstream>
#include <iostream>

#include "data/csv_loader.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/svg_chart.h"

using namespace equitensor;

namespace {

// Builds one series per scalar/array field of the epoch records:
// total_loss, adversary_loss, fairness_correlation, parity_gap,
// dataset_loss[i], weights[i] vs epoch.
int PlotJsonl(const FlagParser& flags) {
  std::ifstream file(flags.GetString("jsonl"));
  if (!file) {
    std::cerr << "cannot open " << flags.GetString("jsonl") << "\n";
    return 1;
  }
  std::vector<double> xs;
  std::vector<std::string> names;
  std::vector<std::vector<double>> series;
  auto channel = [&](const std::string& name) -> std::vector<double>& {
    for (size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) return series[i];
    }
    names.push_back(name);
    series.emplace_back();
    return series.back();
  };
  // Access-log (`type:"request"`) channels: padded with 0 where a
  // record did not report a stage, since the log omits zero stages.
  std::vector<double> req_xs;
  std::vector<std::string> req_names;
  std::vector<std::vector<double>> req_series;
  auto req_channel = [&](const std::string& name) -> std::vector<double>& {
    for (size_t i = 0; i < req_names.size(); ++i) {
      if (req_names[i] == name) return req_series[i];
    }
    req_names.push_back(name);
    req_series.emplace_back(req_xs.size(), 0.0);  // back-fill zeros
    return req_series.back();
  };
  std::string line;
  int line_no = 0;
  while (std::getline(file, line)) {
    ++line_no;
    if (line.empty()) continue;
    JsonValue record;
    std::string error;
    if (!JsonValue::Parse(line, &record, &error)) {
      std::cerr << "line " << line_no << ": bad JSON (" << error << ")\n";
      return 1;
    }
    const JsonValue* type = record.Find("type");
    if (type == nullptr) continue;
    if (type->str() == "request") {
      const JsonValue* total = record.Find("total_ms");
      if (total == nullptr) continue;
      req_channel("total_ms").push_back(total->number());
      if (const JsonValue* record_stages = record.Find("stages_ms")) {
        for (const auto& [stage, ms] : record_stages->members()) {
          req_channel(stage + "_ms").push_back(ms.number());
        }
      }
      const JsonValue* id = record.Find("id");
      req_xs.push_back(id != nullptr
                           ? id->number()
                           : static_cast<double>(req_xs.size() + 1));
      // Pad every channel this record did not mention.
      for (std::vector<double>& channel_values : req_series) {
        if (channel_values.size() < req_xs.size()) {
          channel_values.push_back(0.0);
        }
      }
      continue;
    }
    if (type->str() != "epoch") continue;
    const JsonValue* epoch = record.Find("epoch");
    if (epoch == nullptr) continue;
    xs.push_back(epoch->number());
    if (const JsonValue* v = record.Find("total_loss")) {
      channel("total_loss").push_back(v->number());
    }
    if (const JsonValue* v = record.Find("adversary_loss")) {
      channel("adversary_loss").push_back(v->number());
    }
    // Live fairness audit (schema v2 additive fields): only present on
    // audited epochs; the partial-channel guard below drops them when
    // the run mixed audited and unaudited epochs.
    if (const JsonValue* v = record.Find("fairness_correlation")) {
      channel("fairness_correlation").push_back(v->number());
    }
    if (const JsonValue* v = record.Find("parity_gap")) {
      channel("parity_gap").push_back(v->number());
    }
    for (const char* field : {"dataset_loss", "weights"}) {
      const JsonValue* array = record.Find(field);
      if (array == nullptr || array->type() != JsonValue::Type::kArray) {
        continue;
      }
      for (size_t i = 0; i < array->size(); ++i) {
        channel(std::string(field) + "[" + std::to_string(i) + "]")
            .push_back(array->items()[i].number());
      }
    }
  }
  // Epoch records take precedence; a pure access log falls back to
  // the per-request latency channels.
  std::string x_label = "epoch";
  if (xs.empty() && !req_xs.empty()) {
    xs = std::move(req_xs);
    names = std::move(req_names);
    series = std::move(req_series);
    x_label = "request";
  }
  if (xs.empty()) {
    std::cerr << "no epoch or request records in " << flags.GetString("jsonl")
              << "\n";
    return 1;
  }
  const std::string title = flags.GetString("title").empty()
                                ? flags.GetString("jsonl")
                                : flags.GetString("title");
  SvgChart chart(title, x_label, flags.GetString("y_label"));
  int count = 0;
  for (size_t i = 0; i < names.size(); ++i) {
    if (series[i].size() != xs.size()) continue;  // partial channel
    chart.AddSeries(names[i], xs, series[i]);
    ++count;
  }
  if (count == 0 ||
      !chart.WriteFile(flags.GetString("output"),
                       static_cast<int>(flags.GetInt("width")),
                       static_cast<int>(flags.GetInt("height")))) {
    std::cerr << "failed to write " << flags.GetString("output") << "\n";
    return 1;
  }
  std::cout << "wrote " << flags.GetString("output") << " (" << count
            << " series, " << xs.size() << " " << x_label << " records)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.DefineString("input", "", "CSV file produced by a bench binary");
  flags.DefineString("jsonl", "",
                     "equitensor_train --metrics_jsonl telemetry stream "
                     "(plots epoch records; overrides --input)");
  flags.DefineInt("x", 0, "index of the x-axis column");
  flags.DefineString("output", "chart.svg", "SVG output path");
  flags.DefineString("title", "", "chart title (defaults to the file name)");
  flags.DefineString("x_label", "", "x-axis label (defaults to x header)");
  flags.DefineString("y_label", "value", "y-axis label");
  flags.DefineInt("width", 720, "SVG width");
  flags.DefineInt("height", 440, "SVG height");

  if (!flags.Parse(argc, argv)) {
    std::cerr << flags.error() << "\n";
    return 2;
  }
  if (flags.help_requested() ||
      (flags.GetString("input").empty() && flags.GetString("jsonl").empty())) {
    std::cout << flags.HelpText(
        "Render a bench CSV or a telemetry JSONL stream as an SVG chart.");
    return flags.help_requested() ? 0 : 2;
  }
  if (!flags.GetString("jsonl").empty()) return PlotJsonl(flags);

  std::ifstream file(flags.GetString("input"));
  if (!file) {
    std::cerr << "cannot open " << flags.GetString("input") << "\n";
    return 1;
  }
  // Read the header row ourselves, then the data rows.
  std::string header_line;
  std::getline(file, header_line);
  std::vector<std::string> headers;
  if (!data::ParseCsvLine(header_line, ',', &headers)) {
    std::cerr << "malformed header\n";
    return 1;
  }
  data::CsvOptions options;
  options.has_header = false;
  std::vector<std::vector<std::string>> rows;
  if (!data::ParseCsv(file, options, &rows) || rows.empty()) {
    std::cerr << "no data rows\n";
    return 1;
  }

  const size_t x_col = static_cast<size_t>(flags.GetInt("x"));
  if (x_col >= headers.size()) {
    std::cerr << "x column out of range\n";
    return 1;
  }
  auto parse = [](const std::string& s, double* out) {
    char* end = nullptr;
    *out = std::strtod(s.c_str(), &end);
    return !s.empty() && end == s.c_str() + s.size();
  };

  std::vector<double> xs;
  std::vector<std::vector<double>> ys(headers.size());
  std::vector<bool> numeric(headers.size(), true);
  for (const auto& row : rows) {
    double x = 0.0;
    if (row.size() != headers.size() || !parse(row[x_col], &x)) continue;
    xs.push_back(x);
    for (size_t c = 0; c < headers.size(); ++c) {
      double v = 0.0;
      if (c == x_col) continue;
      if (parse(row[c], &v)) {
        ys[c].push_back(v);
      } else {
        numeric[c] = false;
      }
    }
  }
  if (xs.empty()) {
    std::cerr << "no numeric rows\n";
    return 1;
  }

  const std::string title = flags.GetString("title").empty()
                                ? flags.GetString("input")
                                : flags.GetString("title");
  const std::string x_label = flags.GetString("x_label").empty()
                                  ? headers[x_col]
                                  : flags.GetString("x_label");
  SvgChart chart(title, x_label, flags.GetString("y_label"));
  int series_count = 0;
  for (size_t c = 0; c < headers.size(); ++c) {
    if (c == x_col || !numeric[c] || ys[c].size() != xs.size()) continue;
    chart.AddSeries(headers[c], xs, ys[c]);
    ++series_count;
  }
  if (series_count == 0) {
    std::cerr << "no numeric series found\n";
    return 1;
  }
  if (!chart.WriteFile(flags.GetString("output"),
                       static_cast<int>(flags.GetInt("width")),
                       static_cast<int>(flags.GetInt("height")))) {
    std::cerr << "failed to write " << flags.GetString("output") << "\n";
    return 1;
  }
  std::cout << "wrote " << flags.GetString("output") << " (" << series_count
            << " series, " << xs.size() << " points)\n";
  return 0;
}
