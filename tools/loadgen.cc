// Closed-loop load generator for equitensor_serve: N client threads,
// each with one keep-alive connection, issue /predict (and optionally
// /embed) requests back-to-back and record per-request latency. The
// summary (p50/p90/p99 latency, QPS, server-side cache/batch counters
// scraped from /status) is written as JSON — scripts/check.sh points
// it at BENCH_serving.json.
//
//   loadgen --port=8080 --threads=4 --requests=200 --out=BENCH_serving.json
//
// With --dump=FILE every /predict response body is written as one
// line, in deterministic (thread, request) order. Two servers that
// serve bitwise-identical predictions produce byte-identical dumps —
// the serving e2e test compares a --max_batch=8 server against a
// --max_batch=1 server this way.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/flags.h"
#include "util/http_server.h"
#include "util/json.h"
#include "util/stopwatch.h"

using namespace equitensor;

namespace {

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size());
  size_t index = static_cast<size_t>(rank);
  if (index >= sorted.size()) index = sorted.size() - 1;
  return sorted[index];
}

struct WorkerResult {
  std::vector<double> latencies_ms;
  std::vector<std::string> bodies;  // only filled with --dump
  uint64_t failures = 0;
  std::string first_error;
};

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.DefineInt("port", 8080, "equitensor_serve port");
  flags.DefineInt("threads", 4, "concurrent client connections");
  flags.DefineInt("requests", 100, "requests per thread");
  flags.DefineBool("post", false,
                   "use POST {\"t\":N} bodies instead of GET /predict?t=N");
  flags.DefineInt("embed_every", 0,
                  "also GET /embed every Nth request (0 = never); repeats "
                  "a small key set so the LRU cache gets hits");
  flags.DefineString("out", "",
                     "write the JSON summary here (e.g. BENCH_serving.json); "
                     "empty prints to stdout only");
  flags.DefineString("dump", "",
                     "write every /predict response body as one line, in "
                     "(thread, request) order, for bitwise comparison");
  flags.DefineString("baseline", "",
                     "JSON summary from a --observe=false run of the same "
                     "workload; adds observability overhead_pct (QPS loss "
                     "relative to the baseline) to the summary");
  if (!flags.Parse(argc, argv)) {
    std::cerr << flags.error() << "\n";
    return 2;
  }
  if (flags.help_requested()) {
    std::cout << flags.HelpText("Closed-loop load generator for "
                                "equitensor_serve.");
    return 0;
  }

  const int port = static_cast<int>(flags.GetInt("port"));
  const int64_t thread_count = std::max<int64_t>(1, flags.GetInt("threads"));
  const int64_t per_thread = std::max<int64_t>(1, flags.GetInt("requests"));
  const bool use_post = flags.GetBool("post");
  const int64_t embed_every = std::max<int64_t>(0, flags.GetInt("embed_every"));
  const bool dumping = !flags.GetString("dump").empty();

  // The valid hour range and grid come from the server itself.
  int status = 0;
  std::string body, error;
  if (!HttpGet(port, "/status", &status, &body, &error) || status != 200) {
    std::cerr << "cannot read /status from port " << port << ": "
              << (error.empty() ? "HTTP " + std::to_string(status) : error)
              << "\n";
    return 1;
  }
  JsonValue status_doc;
  if (!JsonValue::Parse(body, &status_doc, &error)) {
    std::cerr << "/status is not JSON: " << error << "\n";
    return 1;
  }
  const JsonValue* t_min_v = status_doc.Find("predict_t_min");
  const JsonValue* t_max_v = status_doc.Find("predict_t_max");
  const JsonValue* w_v = status_doc.Find("w");
  const JsonValue* h_v = status_doc.Find("h");
  const JsonValue* z_hours_v = status_doc.Find("z_hours");
  if (t_min_v == nullptr || t_max_v == nullptr || w_v == nullptr ||
      h_v == nullptr || z_hours_v == nullptr) {
    std::cerr << "/status has no model (is the daemon loaded?)\n";
    return 1;
  }
  const int64_t t_min = t_min_v->int_value();
  const int64_t t_max = t_max_v->int_value();
  const int64_t t_span = t_max - t_min + 1;
  const int64_t grid_w = w_v->int_value();
  const int64_t grid_h = h_v->int_value();
  const int64_t z_hours = z_hours_v->int_value();
  if (t_span <= 0) {
    std::cerr << "server reports an empty predict range\n";
    return 1;
  }

  std::cout << "Driving port " << port << ": " << thread_count << " threads x "
            << per_thread << " requests, t in [" << t_min << ", " << t_max
            << "]" << (use_post ? ", POST" : ", GET") << "\n";

  std::vector<WorkerResult> results(static_cast<size_t>(thread_count));
  std::vector<std::thread> workers;
  Stopwatch wall;
  for (int64_t worker_id = 0; worker_id < thread_count; ++worker_id) {
    workers.emplace_back([&, worker_id] {
      WorkerResult& result = results[static_cast<size_t>(worker_id)];
      result.latencies_ms.reserve(static_cast<size_t>(per_thread));
      HttpClient client;
      std::string client_error;
      if (!client.Connect(port, &client_error)) {
        result.failures = static_cast<uint64_t>(per_thread);
        result.first_error = "connect: " + client_error;
        return;
      }
      for (int64_t i = 0; i < per_thread; ++i) {
        const int64_t sequence = worker_id * per_thread + i;
        const int64_t t = t_min + sequence % t_span;
        int request_status = 0;
        std::string request_body, request_error;
        Stopwatch latency;
        bool ok;
        if (use_post) {
          ok = client.Post("/predict", "{\"t\": " + std::to_string(t) + "}",
                           "application/json", &request_status, &request_body,
                           &request_error);
        } else {
          ok = client.Get("/predict?t=" + std::to_string(t), &request_status,
                          &request_body, &request_error);
        }
        const double elapsed_ms = latency.ElapsedSeconds() * 1e3;
        if (!ok && !client.connected()) {
          // Keep-alive limit or server restart: reconnect once.
          ok = client.Connect(port, &request_error) &&
               (use_post
                    ? client.Post("/predict",
                                  "{\"t\": " + std::to_string(t) + "}",
                                  "application/json", &request_status,
                                  &request_body, &request_error)
                    : client.Get("/predict?t=" + std::to_string(t),
                                 &request_status, &request_body,
                                 &request_error));
        }
        if (!ok || request_status != 200) {
          ++result.failures;
          if (result.first_error.empty()) {
            result.first_error =
                ok ? "HTTP " + std::to_string(request_status) + ": " +
                         request_body
                   : request_error;
          }
          continue;
        }
        result.latencies_ms.push_back(elapsed_ms);
        if (dumping) result.bodies.push_back(request_body);
        if (embed_every > 0 && sequence % embed_every == 0) {
          const int64_t cx = sequence % grid_w;
          const int64_t cy = (sequence / grid_w) % grid_h;
          const int64_t te = t_min % z_hours;
          client.Get("/embed?cx=" + std::to_string(cx) +
                         "&cy=" + std::to_string(cy) +
                         "&t=" + std::to_string(te),
                     &request_status, &request_body, &request_error);
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double wall_seconds = wall.ElapsedSeconds();

  std::vector<double> latencies;
  uint64_t failures = 0;
  std::string first_error;
  for (const WorkerResult& result : results) {
    latencies.insert(latencies.end(), result.latencies_ms.begin(),
                     result.latencies_ms.end());
    failures += result.failures;
    if (first_error.empty()) first_error = result.first_error;
  }
  std::sort(latencies.begin(), latencies.end());
  const uint64_t succeeded = latencies.size();
  double mean_ms = 0.0;
  for (double ms : latencies) mean_ms += ms;
  if (succeeded > 0) mean_ms /= static_cast<double>(succeeded);
  const double qps =
      wall_seconds > 0.0 ? static_cast<double>(succeeded) / wall_seconds : 0.0;

  if (dumping) {
    std::ofstream dump(flags.GetString("dump"), std::ios::trunc);
    for (const WorkerResult& result : results) {
      for (const std::string& line : result.bodies) {
        dump << line;  // server bodies already end in '\n'
        if (line.empty() || line.back() != '\n') dump << '\n';
      }
    }
    if (!dump) {
      std::cerr << "failed to write --dump " << flags.GetString("dump")
                << "\n";
      return 1;
    }
  }

  // Post-run server counters: cache hit rate and realized batch sizes.
  JsonValue after = JsonValue::Null();
  if (HttpGet(port, "/status", &status, &body, &error) && status == 200) {
    JsonValue parsed;
    if (JsonValue::Parse(body, &parsed, nullptr)) after = parsed;
  }

  // Server-side stage breakdown (DESIGN.md §16): absent (404) when the
  // daemon runs with --observe=false, which is fine — the summary just
  // skips the server_stages / reconciliation blocks.
  JsonValue stages = JsonValue::Null();
  if (HttpGet(port, "/debug/stages", &status, &body, &error) &&
      status == 200) {
    JsonValue parsed;
    if (JsonValue::Parse(body, &parsed, nullptr)) stages = parsed;
  }

  JsonValue summary = JsonValue::Object();
  summary.Set("type", JsonValue::Str("bench_serving"));
  summary.Set("threads", JsonValue::Int(thread_count));
  summary.Set("requests", JsonValue::Int(thread_count * per_thread));
  summary.Set("succeeded", JsonValue::Int(static_cast<int64_t>(succeeded)));
  summary.Set("failed", JsonValue::Int(static_cast<int64_t>(failures)));
  summary.Set("wall_seconds", JsonValue::Number(wall_seconds));
  summary.Set("qps", JsonValue::Number(qps));
  JsonValue latency = JsonValue::Object();
  latency.Set("mean_ms", JsonValue::Number(mean_ms));
  latency.Set("p50_ms", JsonValue::Number(Percentile(latencies, 0.50)));
  latency.Set("p90_ms", JsonValue::Number(Percentile(latencies, 0.90)));
  latency.Set("p99_ms", JsonValue::Number(Percentile(latencies, 0.99)));
  latency.Set("max_ms",
              JsonValue::Number(latencies.empty() ? 0.0 : latencies.back()));
  summary.Set("latency", std::move(latency));
  if (!after.is_null()) {
    if (const JsonValue* cache = after.Find("cache")) {
      JsonValue copy = *cache;
      const JsonValue* hits = cache->Find("hits");
      const JsonValue* misses = cache->Find("misses");
      if (hits != nullptr && misses != nullptr) {
        const double total = hits->number() + misses->number();
        copy.Set("hit_rate", JsonValue::Number(
                                 total > 0.0 ? hits->number() / total : 0.0));
      }
      summary.Set("cache", std::move(copy));
    }
    if (const JsonValue* batch = after.Find("batch")) {
      summary.Set("batch", *batch);
    }
    if (const JsonValue* generation = after.Find("generation")) {
      summary.Set("generation", *generation);
    }
  }
  if (!stages.is_null()) {
    if (const JsonValue* breakdown = stages.Find("stages")) {
      JsonValue server_stages = JsonValue::Object();
      if (const JsonValue* observed = stages.Find("requests_observed")) {
        server_stages.Set("requests_observed", *observed);
      }
      server_stages.Set("stages", *breakdown);
      summary.Set("server_stages", std::move(server_stages));
    }
    // Client-vs-server reconciliation for /predict: the client number
    // includes the network round trip and client-side overhead, so the
    // delta should be small and positive on loopback.
    const JsonValue* endpoints = stages.Find("endpoints");
    const JsonValue* predict =
        endpoints != nullptr ? endpoints->Find("predict") : nullptr;
    if (predict != nullptr) {
      const JsonValue* server_p50 = predict->Find("p50_ms");
      const JsonValue* server_p99 = predict->Find("p99_ms");
      if (server_p50 != nullptr && server_p99 != nullptr) {
        const double client_p50 = Percentile(latencies, 0.50);
        const double client_p99 = Percentile(latencies, 0.99);
        JsonValue reconciliation = JsonValue::Object();
        reconciliation.Set("client_p50_ms", JsonValue::Number(client_p50));
        reconciliation.Set("server_p50_ms", *server_p50);
        reconciliation.Set("delta_p50_ms",
                           JsonValue::Number(client_p50 - server_p50->number()));
        reconciliation.Set("client_p99_ms", JsonValue::Number(client_p99));
        reconciliation.Set("server_p99_ms", *server_p99);
        reconciliation.Set("delta_p99_ms",
                           JsonValue::Number(client_p99 - server_p99->number()));
        summary.Set("reconciliation", std::move(reconciliation));
      }
    }
  }
  if (const std::string baseline_path = flags.GetString("baseline");
      !baseline_path.empty()) {
    std::ifstream in(baseline_path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    JsonValue baseline_doc;
    std::string parse_error;
    const JsonValue* baseline_qps = nullptr;
    if (in.is_open() &&
        JsonValue::Parse(buffer.str(), &baseline_doc, &parse_error)) {
      baseline_qps = baseline_doc.Find("qps");
    }
    if (baseline_qps == nullptr || baseline_qps->number() <= 0.0) {
      std::cerr << "--baseline " << baseline_path
                << " has no usable qps field; skipping overhead\n";
    } else {
      const double base = baseline_qps->number();
      JsonValue overhead = JsonValue::Object();
      overhead.Set("baseline_qps", JsonValue::Number(base));
      overhead.Set("observed_qps", JsonValue::Number(qps));
      overhead.Set("overhead_pct",
                   JsonValue::Number((base - qps) / base * 100.0));
      summary.Set("observability_overhead", std::move(overhead));
    }
  }

  const std::string rendered = summary.Dump();
  std::cout << rendered << "\n";
  if (!flags.GetString("out").empty()) {
    std::ofstream out(flags.GetString("out"), std::ios::trunc);
    out << rendered << "\n";
    if (!out) {
      std::cerr << "failed to write --out " << flags.GetString("out") << "\n";
      return 1;
    }
    std::cout << "Wrote summary -> " << flags.GetString("out") << "\n";
  }
  if (failures > 0) {
    std::cerr << failures << " requests failed (first: " << first_error
              << ")\n";
    return 1;
  }
  return 0;
}
