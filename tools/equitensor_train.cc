// Command-line EquiTensor trainer: build (or load) a city, train any
// of the model variants, and write the materialized representation and
// model checkpoint to disk. The operational entry point a downstream
// team would script against.
//
//   equitensor_train --city_seed=2026 --epochs=6 \
//       --fairness=adversarial --sensitive=race --lambda=2 \
//       --output_z=z.etck --output_model=model.etck

#include <chrono>
#include <fstream>
#include <iostream>
#include <thread>

#include "core/equitensor.h"
#include "core/serving.h"
#include "core/telemetry.h"
#include "core/telemetry_server.h"
#include "data/generators.h"
#include "nn/backend_registry.h"
#include "nn/serialize.h"
#include "util/ascii_map.h"
#include "util/flags.h"
#include "util/perf_counters.h"
#include "util/profiler.h"
#include "util/shutdown.h"
#include "util/stopwatch.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/trace.h"
#include "util/trace_export.h"

using namespace equitensor;

int main(int argc, char** argv) {
  FlagParser flags;
  flags.DefineInt("width", 12, "grid cells along x");
  flags.DefineInt("height", 10, "grid cells along y");
  flags.DefineInt("days", 30, "simulated horizon in days");
  flags.DefineInt("city_seed", 2026, "synthetic-city seed");
  flags.DefineDouble("bias", 1.0, "injected discriminatory-coupling strength");
  flags.DefineInt("latent", 5, "EquiTensor channels K");
  flags.DefineInt("epochs", 5, "training epochs");
  flags.DefineInt("steps", 12, "steps per epoch");
  flags.DefineInt("batch", 4, "minibatch size");
  flags.DefineString("weighting", "none",
                     "loss weighting: none | ours | dwa | uncertainty");
  flags.DefineDouble("alpha", 3.0, "adaptive-weighting temperature (Eq. 2)");
  flags.DefineString("fairness", "none",
                     "fairness mode: none | adversarial | grad_reversal");
  flags.DefineString("sensitive", "race", "sensitive attribute: race | income");
  flags.DefineDouble("lambda", 1.0, "fairness tradeoff (Eq. 5)");
  flags.DefineBool("disentangle", true,
                   "pass S to the decoder (disentangling module)");
  flags.DefineString("output_z", "equitensor_z.etck",
                     "path for the materialized representation");
  flags.DefineString("output_model", "", "optional model checkpoint path");
  flags.DefineString("output_serving", "",
                     "optional serving bundle for equitensor_serve: Z, the "
                     "--sensitive map, the bikeshare target, and the trained "
                     "encoder in one ETCK checkpoint (DESIGN.md §14)");
  flags.DefineInt("checkpoint_every", 0,
                  "write the full training state every N epochs (0 = off)");
  flags.DefineString("checkpoint_path", "train_state.etck",
                     "where --checkpoint_every writes the training state");
  flags.DefineString("resume", "",
                     "resume from a training-state checkpoint written by "
                     "--checkpoint_every (flags must match the original run)");
  flags.DefineBool("show_maps", false,
                   "print ASCII maps of the sensitive attribute and Z");
  flags.DefineString("metrics_jsonl", "",
                     "stream one JSON object per epoch (plus a final run "
                     "summary) to this path — DESIGN.md §10 schema");
  flags.DefineBool("progress", false,
                   "print a live per-epoch progress table");
  flags.DefineBool("trace", false,
                   "time the hot kernels with ET_TRACE_SPAN and report "
                   "per-span totals (small runtime overhead)");
  flags.DefineString("chrome_trace", "",
                     "record every span and write a chrome://tracing / "
                     "Perfetto JSON trace to this path (implies --trace)");
  flags.DefineString("profile", "",
                     "run the sampling CPU profiler for the whole run and "
                     "write folded stacks (flamegraph.pl input / "
                     "tools/profile_report) to this path; a top-N self/total "
                     "table prints at exit (DESIGN.md §17)");
  flags.DefineInt("profile_hz", 97,
                  "--profile sampling frequency in CPU-time samples per "
                  "second per busy thread");
  flags.DefineBool("counters", false,
                   "read hardware perf counters (cycles, instructions, "
                   "cache/branch misses) around every trace span and report "
                   "per-kernel IPC and miss rates (implies --trace; no-op "
                   "when perf_event_open is unavailable)");
  flags.DefineString("nan_check", "off",
                     "numerics sentinel: off | epoch | step — on the first "
                     "NaN/Inf, write a diagnostic bundle and abort with the "
                     "offending layer (DESIGN.md §11)");
  flags.DefineString("nan_bundle", "numerics_diagnostic.etck",
                     "where --nan_check writes its post-mortem bundle");
  flags.DefineBool("layer_stats", false,
                   "stream per-parameter grad/weight/update stats into the "
                   "--metrics_jsonl epoch records");
  flags.DefineInt("serve", -1,
                  "expose live telemetry over HTTP on this port while "
                  "training (-1 = off, 0 = pick an ephemeral port): "
                  "/metrics (Prometheus), /healthz, /status, /fairness");
  flags.DefineInt("serve_linger", 0,
                  "with --serve: keep the telemetry server up this many "
                  "seconds after training finishes (Ctrl-C ends early)");
  flags.DefineInt("train_seed", 7, "training seed");
  flags.DefineInt("threads", 0,
                  "worker threads for the parallel kernels "
                  "(0 = ET_THREADS env var, then all cores; 1 = serial)");
  flags.DefineString("backend", "",
                     "kernel backend: reference | parallel | simd | fused | check "
                     "(empty = ET_BACKEND env var, then parallel; fused runs "
                     "the static-graph fused schedule; check self-verifies "
                     "every dispatch against reference)");

  if (!flags.Parse(argc, argv)) {
    std::cerr << flags.error() << "\n";
    return 2;
  }
  if (flags.help_requested()) {
    std::cout << flags.HelpText(
        "Train an EquiTensor over the synthetic-city inventory and save it.");
    return 0;
  }

  // Ctrl-C/SIGTERM stop training at the next epoch boundary (and cut a
  // telemetry linger short) instead of killing the process mid-write.
  InstallShutdownSignalHandlers();

  SetNumThreads(static_cast<int>(flags.GetInt("threads")));
  if (const std::string backend_name = flags.GetString("backend");
      !backend_name.empty()) {
    backend::Backend be;
    if (!backend::ParseBackend(backend_name, &be)) {
      std::cerr << "--backend=" << backend_name
                << " is not a backend (reference | parallel | simd | fused | check)\n";
      return 2;
    }
    backend::SetBackend(be);
  }
  std::cout << "kernel backend: " << backend::BackendName(backend::CurrentBackend())
            << (backend::SimdAcceleratorActive() ? " (avx2/fma)" : " (portable)")
            << "\n";
  const std::string chrome_trace_path = flags.GetString("chrome_trace");
  const bool want_counters = flags.GetBool("counters");
  const bool want_tracing =
      flags.GetBool("trace") || !chrome_trace_path.empty() || want_counters;
  SetTracingEnabled(want_tracing);
  if (want_counters) {
    SetPerfCountersEnabled(true);
    const std::string status = PerfCountersStatus();
    if (status != "ok") {
      std::cerr << "WARNING: --counters requested but hardware counters are "
                << status << "; spans will carry wall time only.\n";
    }
  }
  const std::string profile_path = flags.GetString("profile");
  if (!profile_path.empty()) {
    CpuProfileOptions profile_options;
    profile_options.hz = static_cast<int>(flags.GetInt("profile_hz"));
    // Whole-run captures outlive the default ring (~15 s of one busy
    // thread at 97 Hz): 1 Mi slots per ring covers ~10 min of busy
    // samples, 16 rings × 8 MiB caps the preallocation at 128 MiB.
    profile_options.ring_capacity = 1 << 20;
    profile_options.max_threads = 16;
    std::string error;
    if (!StartCpuProfile(profile_options, &error)) {
      std::cerr << "failed to start --profile capture: " << error << "\n";
      return 1;
    }
    std::cout << "CPU profiler sampling at " << profile_options.hz
              << " Hz -> " << profile_path << "\n";
  }
  if (want_tracing && !TraceCompiledIn()) {
    // Spans expand to no-ops in this build: honoring the flag silently
    // would hand the user an empty trace.
    std::cerr << "WARNING: --trace/--chrome_trace requested but this binary "
                 "was built with EQUITENSOR_TRACE=OFF; spans are compiled "
                 "out and no timings will be recorded. Rebuild with "
                 "-DEQUITENSOR_TRACE=ON.\n";
  }
  if (!chrome_trace_path.empty()) {
    SetTraceThreadName("main");
    StartTraceEventRecording();
  }
  core::NanCheckMode nan_mode = core::NanCheckMode::kOff;
  if (!core::ParseNanCheckMode(flags.GetString("nan_check"), &nan_mode)) {
    std::cerr << "unknown --nan_check " << flags.GetString("nan_check")
              << " (want off | epoch | step)\n";
    return 2;
  }

  data::CityConfig city;
  city.width = flags.GetInt("width");
  city.height = flags.GetInt("height");
  city.hours = 24 * flags.GetInt("days");
  city.seed = static_cast<uint64_t>(flags.GetInt("city_seed"));
  city.bias_strength = flags.GetDouble("bias");
  Stopwatch sw;
  std::cout << "Building city (" << city.width << "x" << city.height << ", "
            << city.hours << " h)...\n";
  const data::UrbanDataBundle bundle = data::BuildSeattleAnalog(city);
  std::cout << "  23 datasets aligned in " << sw.ElapsedSeconds() << " s\n";

  core::EquiTensorConfig config;
  config.cdae.grid_w = city.width;
  config.cdae.grid_h = city.height;
  config.cdae.latent_channels = flags.GetInt("latent");
  config.cdae.encoder_filters = {8, 16, 1};
  config.cdae.shared_filters = {8, 16};
  config.cdae.decoder_filters = {8, 16};
  config.epochs = flags.GetInt("epochs");
  config.steps_per_epoch = flags.GetInt("steps");
  config.batch_size = flags.GetInt("batch");
  config.alpha = flags.GetDouble("alpha");
  config.lambda = flags.GetDouble("lambda");
  config.seed = static_cast<uint64_t>(flags.GetInt("train_seed"));

  const std::string weighting = flags.GetString("weighting");
  if (weighting == "ours") {
    config.weighting = core::WeightingMode::kOurs;
  } else if (weighting == "dwa") {
    config.weighting = core::WeightingMode::kDwa;
  } else if (weighting == "uncertainty") {
    config.weighting = core::WeightingMode::kUncertainty;
  } else if (weighting != "none") {
    std::cerr << "unknown --weighting " << weighting << "\n";
    return 2;
  }
  const std::string fairness = flags.GetString("fairness");
  const Tensor* sensitive = nullptr;
  if (fairness != "none") {
    config.fairness = fairness == "adversarial"
                          ? core::FairnessMode::kAdversarial
                          : core::FairnessMode::kGradReversal;
    if (fairness != "adversarial" && fairness != "grad_reversal") {
      std::cerr << "unknown --fairness " << fairness << "\n";
      return 2;
    }
    config.cdae.disentangle = flags.GetBool("disentangle") &&
                              config.fairness == core::FairnessMode::kAdversarial;
    const std::string attr = flags.GetString("sensitive");
    if (attr == "race") {
      sensitive = &bundle.race_map;
    } else if (attr == "income") {
      sensitive = &bundle.income_map;
    } else {
      std::cerr << "unknown --sensitive " << attr << "\n";
      return 2;
    }
  }

  core::EquiTensorTrainer trainer(config, &bundle.datasets, sensitive);
  if (!flags.GetString("resume").empty()) {
    if (!trainer.LoadTrainingState(flags.GetString("resume"))) {
      std::cerr << "failed to resume from " << flags.GetString("resume")
                << " (see log for the mismatch)\n";
      return 1;
    }
    std::cout << "Resumed from " << flags.GetString("resume") << " at epoch "
              << trainer.completed_epochs() << "/" << config.epochs << "\n";
  }
  if (flags.GetInt("checkpoint_every") > 0) {
    trainer.SetCheckpointing(flags.GetString("checkpoint_path"),
                             flags.GetInt("checkpoint_every"));
  }
  core::TrainTelemetry telemetry;
  const std::string jsonl_path = flags.GetString("metrics_jsonl");
  if (!jsonl_path.empty() && !telemetry.OpenJsonl(jsonl_path)) {
    std::cerr << "failed to open --metrics_jsonl " << jsonl_path << "\n";
    return 1;
  }
  if (flags.GetBool("progress")) telemetry.EnableProgress(&std::cout);
  core::TelemetryServer server;
  if (flags.GetInt("serve") >= 0) {
    std::string error;
    if (!server.Start(static_cast<int>(flags.GetInt("serve")), &error)) {
      std::cerr << "failed to start telemetry server: " << error << "\n";
      return 1;
    }
    // The port line is machine-read (scripts/check.sh smoke test greps
    // it to find an ephemeral --serve=0 port); keep the format stable.
    std::cout << "Telemetry server listening on port " << server.port()
              << "\n";
    std::cout.flush();
    telemetry.AttachServer(&server);
  }
  trainer.SetTelemetry(&telemetry);
  trainer.SetLayerStatsEnabled(flags.GetBool("layer_stats"));
  trainer.SetNumericsChecking(nan_mode, flags.GetString("nan_bundle"));
  if (nan_mode != core::NanCheckMode::kOff) {
    std::cout << "Numerics sentinel armed (--nan_check="
              << core::NanCheckModeName(nan_mode) << ", bundle -> "
              << flags.GetString("nan_bundle") << ")\n";
  }

  std::cout << "Training " << core::FairnessModeName(config.fairness) << "/"
            << core::WeightingModeName(config.weighting) << " model ("
            << trainer.model().ParameterCount() << " parameters, "
            << NumThreads() << " thread(s))...\n";
  sw.Restart();
  trainer.Train();
  telemetry.Finish(sw.ElapsedSeconds(), trainer.completed_epochs());
  if (ShutdownRequested() && trainer.completed_epochs() < config.epochs) {
    std::cout << "Interrupted: completed " << trainer.completed_epochs()
              << "/" << config.epochs << " epochs\n";
  }
  if (!flags.GetBool("progress")) {
    for (const core::EpochLog& epoch : trainer.log()) {
      std::cout << "  epoch " << epoch.epoch << ": recon "
                << TextTable::Num(epoch.total_loss, 4);
      if (config.fairness != core::FairnessMode::kNone) {
        std::cout << ", adversary " << TextTable::Num(epoch.adversary_loss, 4);
      }
      std::cout << "\n";
    }
  }
  std::cout << "Trained in " << sw.ElapsedSeconds() << " s\n";
  if (!jsonl_path.empty()) {
    std::cout << "Wrote telemetry -> " << jsonl_path << "\n";
  }
  if (flags.GetBool("trace") && !flags.GetBool("progress")) {
    std::cout << TraceReportTable();
  }
  if (!chrome_trace_path.empty()) {
    const std::vector<TraceEvent> events = StopTraceEventRecording();
    if (!WriteChromeTrace(chrome_trace_path, events, TraceThreadNames())) {
      std::cerr << "failed to write --chrome_trace " << chrome_trace_path
                << "\n";
      return 1;
    }
    std::cout << "Wrote chrome trace (" << events.size() << " events";
    if (DroppedTraceEventCount() > 0) {
      std::cout << ", " << DroppedTraceEventCount() << " dropped";
    }
    std::cout << ") -> " << chrome_trace_path << "\n";
  }

  const Tensor z = trainer.Materialize();
  if (!nn::SaveTensor(flags.GetString("output_z"), z)) {
    std::cerr << "failed to write " << flags.GetString("output_z") << "\n";
    return 1;
  }
  std::cout << "Wrote Z " << z.ShapeString() << " -> "
            << flags.GetString("output_z") << "\n";
  if (!flags.GetString("output_model").empty()) {
    if (!nn::SaveModule(flags.GetString("output_model"), trainer.model())) {
      std::cerr << "failed to write model checkpoint\n";
      return 1;
    }
    std::cout << "Wrote model -> " << flags.GetString("output_model") << "\n";
  }
  if (!flags.GetString("output_serving").empty()) {
    core::ServingArtifacts artifacts;
    artifacts.z = z;
    // The serving fairness audit uses the --sensitive attribute even
    // when training ran without a fairness mode.
    artifacts.sensitive_map = flags.GetString("sensitive") == "income"
                                  ? bundle.income_map
                                  : bundle.race_map;
    artifacts.target = bundle.bikeshare;
    artifacts.target_scale = bundle.bikeshare_scale;
    artifacts.task_name = "bikeshare";
    artifacts.encoder = &trainer.model();
    if (!core::SaveServingCheckpoint(flags.GetString("output_serving"),
                                     artifacts)) {
      std::cerr << "failed to write --output_serving "
                << flags.GetString("output_serving") << "\n";
      return 1;
    }
    std::cout << "Wrote serving bundle -> " << flags.GetString("output_serving")
              << "\n";
  }

  if (server.running() && flags.GetInt("serve_linger") > 0) {
    const int64_t linger = flags.GetInt("serve_linger");
    std::cout << "Serving telemetry for up to " << linger
              << " s (Ctrl-C to stop)...\n";
    std::cout.flush();
    Stopwatch linger_watch;
    while (!ShutdownRequested() &&
           linger_watch.ElapsedSeconds() < static_cast<double>(linger)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  // Explicit stop (the destructor would too): closes the listen socket
  // and joins every server thread, so no socket outlives main.
  server.Stop();

  if (!profile_path.empty() && CpuProfileActive()) {
    CpuProfile profile;
    std::string error;
    if (!StopCpuProfile(&profile, &error)) {
      std::cerr << "failed to stop --profile capture: " << error << "\n";
      return 1;
    }
    std::ofstream out(profile_path, std::ios::binary);
    out << profile.folded;
    if (!out.good()) {
      std::cerr << "failed to write --profile " << profile_path << "\n";
      return 1;
    }
    out.close();
    std::cout << "Wrote CPU profile (" << profile.samples << " samples, "
              << TextTable::Num(100.0 * ProfileSymbolizedFraction(profile), 1)
              << "% symbolized";
    if (profile.dropped_samples > 0) {
      std::cout << ", " << profile.dropped_samples << " dropped";
    }
    std::cout << ") -> " << profile_path << "\n";
    const std::string report = ProfileReportTable(profile.folded, 12);
    if (!report.empty()) std::cout << report;
  }

  if (flags.GetBool("show_maps") && sensitive != nullptr) {
    Tensor z_mean({city.width, city.height});
    const int64_t t_total = z.dim(3);
    for (int64_t i = 0; i < city.width * city.height; ++i) {
      double sum = 0.0;
      for (int64_t t = 0; t < t_total; ++t) sum += z[i * t_total + t];
      z_mean[i] = static_cast<float>(sum / static_cast<double>(t_total));
    }
    std::cout << "\n"
              << RenderAsciiMaps({*sensitive, z_mean},
                                 {"sensitive attribute", "Z channel 0 (mean)"});
  }
  return 0;
}
