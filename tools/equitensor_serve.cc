// Batched, hot-reloadable inference daemon over a trained EquiTensor
// (DESIGN.md §14). Loads a serving bundle written by
// `equitensor_train --output_serving`, fits the downstream head
// deterministically, and answers /embed, /predict, /fairness,
// /status, /healthz, and /metrics over HTTP until SIGINT/SIGTERM.
// SIGHUP re-reads the checkpoint and atomically swaps the model;
// in-flight requests finish on the generation they started with.
//
//   equitensor_serve --checkpoint=serving.etck --port=8080

#include <chrono>
#include <iostream>
#include <thread>

#include "core/serving.h"
#include "nn/backend_registry.h"
#include "util/flags.h"
#include "util/shutdown.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

using namespace equitensor;

int main(int argc, char** argv) {
  FlagParser flags;
  flags.DefineString("checkpoint", "serving.etck",
                     "serving bundle written by equitensor_train "
                     "--output_serving");
  flags.DefineInt("port", 8080, "HTTP port (0 = pick an ephemeral port)");
  flags.DefineInt("max_batch", 8,
                  "coalesce up to this many queued /predict requests into "
                  "one batched forward (1 = no batching; responses are "
                  "bitwise identical either way)");
  flags.DefineInt("batch_window_ms", 2,
                  "how long the batcher waits for the batch to fill");
  flags.DefineInt("cache_capacity", 4096,
                  "LRU capacity of the /embed response cache (0 = off)");
  flags.DefineInt("workers", 8,
                  "HTTP worker threads (one keep-alive connection each)");
  flags.DefineInt("history", 24, "target history hours fed to the predictor");
  flags.DefineInt("task_epochs", 4, "epochs for the predictor-head fit");
  flags.DefineInt("task_steps", 20, "steps per epoch for the head fit");
  flags.DefineInt("task_batch", 8, "minibatch size for the head fit");
  flags.DefineInt("task_seed", 123,
                  "head-fit seed; two daemons with equal flags and "
                  "checkpoint serve bitwise-identical predictions");
  flags.DefineInt("threads", 0,
                  "worker threads for the parallel kernels "
                  "(0 = ET_THREADS env var, then all cores; 1 = serial)");
  flags.DefineString("backend", "",
                     "kernel backend: reference | parallel | simd | check "
                     "(empty = ET_BACKEND env var, then parallel)");

  if (!flags.Parse(argc, argv)) {
    std::cerr << flags.error() << "\n";
    return 2;
  }
  if (flags.help_requested()) {
    std::cout << flags.HelpText(
        "Serve a trained EquiTensor over HTTP (batched, hot-reloadable).");
    return 0;
  }

  SetNumThreads(static_cast<int>(flags.GetInt("threads")));
  if (const std::string backend_name = flags.GetString("backend");
      !backend_name.empty()) {
    backend::Backend be;
    if (!backend::ParseBackend(backend_name, &be)) {
      std::cerr << "--backend=" << backend_name
                << " is not a backend (reference | parallel | simd | check)\n";
      return 2;
    }
    backend::SetBackend(be);
  }

  core::ServingService::Options options;
  options.checkpoint_path = flags.GetString("checkpoint");
  options.task.history = flags.GetInt("history");
  options.task.predictor.history = options.task.history;
  options.task.epochs = flags.GetInt("task_epochs");
  options.task.steps_per_epoch = flags.GetInt("task_steps");
  options.task.batch_size = flags.GetInt("task_batch");
  options.task.seed = static_cast<uint64_t>(flags.GetInt("task_seed"));
  options.batch.max_batch = flags.GetInt("max_batch");
  options.batch.window_ms = flags.GetInt("batch_window_ms");
  options.cache_capacity =
      static_cast<size_t>(std::max<int64_t>(0, flags.GetInt("cache_capacity")));
  options.http.worker_threads = static_cast<int>(flags.GetInt("workers"));

  core::ServingService service(options);
  Stopwatch sw;
  std::cout << "Loading " << options.checkpoint_path
            << " (fitting predictor head)...\n";
  std::string error;
  if (!service.LoadInitial(&error)) {
    std::cerr << "failed to load serving checkpoint: " << error << "\n";
    return 1;
  }
  {
    const auto model = service.model();
    std::cout << "  generation 1: Z " << model->z().ShapeString() << ", "
              << model->parameter_count() << " parameters, predict t in ["
              << model->predict_t_min() << ", " << model->predict_t_max()
              << "], corr(Z,S) " << model->base_audit().correlation
              << " (loaded in " << sw.ElapsedSeconds() << " s)\n";
  }

  // SIGINT/SIGTERM wind the daemon down; SIGHUP bumps the reload
  // counter which the poll loop below turns into Reload().
  InstallShutdownSignalHandlers();
  InstallReloadSignalHandler();

  if (!service.Start(static_cast<int>(flags.GetInt("port")), &error)) {
    std::cerr << "failed to start server: " << error << "\n";
    return 1;
  }
  // Machine-read line (tests and scripts/check.sh grep it to find an
  // ephemeral --port=0 port); keep the format stable.
  std::cout << "Serving on port " << service.port() << "\n";
  std::cout.flush();

  uint64_t acted_reloads = ReloadRequestCount();
  while (!ShutdownRequested()) {
    const uint64_t pending = ReloadRequestCount();
    if (pending != acted_reloads) {
      // Coalesce: one reload covers every SIGHUP that arrived so far.
      acted_reloads = pending;
      sw.Restart();
      std::string why;
      if (service.Reload(&why)) {
        const auto model = service.model();
        std::cout << "Reloaded generation " << service.generation() << " in "
                  << sw.ElapsedSeconds() << " s (Z "
                  << model->z().ShapeString() << ")\n";
      } else {
        std::cout << "Reload failed, keeping generation "
                  << service.generation() << ": " << why << "\n";
      }
      std::cout.flush();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::cout << "Shutting down (served " << service.http().requests_served()
            << " requests, " << service.reloads() << " reloads)\n";
  service.Stop();
  return 0;
}
