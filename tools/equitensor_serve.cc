// Batched, hot-reloadable inference daemon over a trained EquiTensor
// (DESIGN.md §14). Loads a serving bundle written by
// `equitensor_train --output_serving`, fits the downstream head
// deterministically, and answers /embed, /predict, /fairness,
// /status, /healthz, and /metrics over HTTP until SIGINT/SIGTERM.
// SIGHUP re-reads the checkpoint and atomically swaps the model;
// in-flight requests finish on the generation they started with.
//
// Request observability (DESIGN.md §16): per-stage latency histograms
// on /metrics, live /debug/requests | /debug/slow | /debug/stages,
// a sampled JSONL access log (--access_log), and a chrome-trace dump
// of serving spans (--serve_chrome_trace).
//
//   equitensor_serve --checkpoint=serving.etck --port=8080
//       --access_log=access.jsonl --slow_ms=100

#include <cstdio>
#include <chrono>
#include <fstream>
#include <iostream>
#include <thread>

#include "core/serving.h"
#include "nn/backend_registry.h"
#include "util/flags.h"
#include "util/perf_counters.h"
#include "util/profiler.h"
#include "util/shutdown.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"
#include "util/trace.h"
#include "util/trace_export.h"

using namespace equitensor;

int main(int argc, char** argv) {
  FlagParser flags;
  flags.DefineString("checkpoint", "serving.etck",
                     "serving bundle written by equitensor_train "
                     "--output_serving");
  flags.DefineInt("port", 8080, "HTTP port (0 = pick an ephemeral port)");
  flags.DefineInt("max_batch", 8,
                  "coalesce up to this many queued /predict requests into "
                  "one batched forward (1 = no batching; responses are "
                  "bitwise identical either way)");
  flags.DefineInt("batch_window_ms", 2,
                  "how long the batcher waits for the batch to fill");
  flags.DefineInt("cache_capacity", 4096,
                  "LRU capacity of the /embed response cache (0 = off)");
  flags.DefineInt("workers", 8,
                  "HTTP worker threads (one keep-alive connection each)");
  flags.DefineInt("history", 24, "target history hours fed to the predictor");
  flags.DefineInt("task_epochs", 4, "epochs for the predictor-head fit");
  flags.DefineInt("task_steps", 20, "steps per epoch for the head fit");
  flags.DefineInt("task_batch", 8, "minibatch size for the head fit");
  flags.DefineInt("task_seed", 123,
                  "head-fit seed; two daemons with equal flags and "
                  "checkpoint serve bitwise-identical predictions");
  flags.DefineInt("threads", 0,
                  "worker threads for the parallel kernels "
                  "(0 = ET_THREADS env var, then all cores; 1 = serial)");
  flags.DefineString("backend", "",
                     "kernel backend: reference | parallel | simd | check "
                     "(empty = ET_BACKEND env var, then parallel)");
  flags.DefineBool("observe", true,
                   "record per-request stage timelines (histograms, "
                   "/debug endpoints, access log); false = bare-metal "
                   "baseline for overhead measurement");
  flags.DefineString("access_log", "",
                     "append sampled request timelines as JSONL here");
  flags.DefineInt("access_log_every", 1,
                  "log every Nth request (1 = all, 0 = only slow ones; "
                  "slow requests always log)");
  flags.DefineDouble("slow_ms", 250.0,
                     "requests slower than this always hit the access "
                     "log and the /debug/slow table");
  flags.DefineInt("debug_ring", 64,
                  "how many recent request timelines /debug/requests "
                  "keeps");
  flags.DefineString("latency_buckets", "",
                     "request-histogram layout start_us:growth:count "
                     "(e.g. 10:2:20 = 10 us x2 for 20 edges; empty = "
                     "that default)");
  flags.DefineString("serve_chrome_trace", "",
                     "write serving spans as a chrome://tracing JSON "
                     "file at shutdown");
  flags.DefineString("profile", "",
                     "sample the daemon's CPU for its whole lifetime and "
                     "write folded stacks here at shutdown; live captures "
                     "are also available any time via GET "
                     "/debug/profile?seconds=N (DESIGN.md §17)");
  flags.DefineInt("profile_hz", 97,
                  "--profile sampling frequency in CPU-time samples per "
                  "second per busy thread");
  flags.DefineBool("counters", false,
                   "read hardware perf counters around every trace span and "
                   "expose per-kernel IPC/miss rates on /metrics and "
                   "/debug/counters (implies tracing; no-op when "
                   "perf_event_open is unavailable)");

  if (!flags.Parse(argc, argv)) {
    std::cerr << flags.error() << "\n";
    return 2;
  }
  if (flags.help_requested()) {
    std::cout << flags.HelpText(
        "Serve a trained EquiTensor over HTTP (batched, hot-reloadable).");
    return 0;
  }

  SetNumThreads(static_cast<int>(flags.GetInt("threads")));
  if (const std::string backend_name = flags.GetString("backend");
      !backend_name.empty()) {
    backend::Backend be;
    if (!backend::ParseBackend(backend_name, &be)) {
      std::cerr << "--backend=" << backend_name
                << " is not a backend (reference | parallel | simd | check)\n";
      return 2;
    }
    backend::SetBackend(be);
  }

  core::ServingService::Options options;
  options.checkpoint_path = flags.GetString("checkpoint");
  options.task.history = flags.GetInt("history");
  options.task.predictor.history = options.task.history;
  options.task.epochs = flags.GetInt("task_epochs");
  options.task.steps_per_epoch = flags.GetInt("task_steps");
  options.task.batch_size = flags.GetInt("task_batch");
  options.task.seed = static_cast<uint64_t>(flags.GetInt("task_seed"));
  options.batch.max_batch = flags.GetInt("max_batch");
  options.batch.window_ms = flags.GetInt("batch_window_ms");
  options.cache_capacity =
      static_cast<size_t>(std::max<int64_t>(0, flags.GetInt("cache_capacity")));
  options.http.worker_threads = static_cast<int>(flags.GetInt("workers"));
  options.observe = flags.GetBool("observe");
  options.observability.access_log_path = flags.GetString("access_log");
  options.observability.sample_every =
      static_cast<int>(std::max<int64_t>(0, flags.GetInt("access_log_every")));
  options.observability.slow_threshold_ms = flags.GetDouble("slow_ms");
  options.observability.ring_capacity = static_cast<size_t>(
      std::max<int64_t>(1, flags.GetInt("debug_ring")));
  if (const std::string layout = flags.GetString("latency_buckets");
      !layout.empty()) {
    double start_us = 0.0;
    double growth = 0.0;
    int count = 0;
    if (std::sscanf(layout.c_str(), "%lf:%lf:%d", &start_us, &growth,
                    &count) != 3 ||
        start_us <= 0.0 || growth <= 1.0 || count < 1) {
      std::cerr << "--latency_buckets=" << layout
                << " is not start_us:growth:count (e.g. 10:2:20)\n";
      return 2;
    }
    options.observability.latency_bounds =
        Histogram::ExponentialBounds(start_us * 1e-6, growth, count);
    // Keep the per-span kernel histograms on the same grid so /metrics
    // reads consistently (capped at the trace layer's 16 edges).
    ConfigureTraceHistogram(start_us * 1e-6, growth, count);
  }

  if (flags.GetBool("counters")) {
    SetTracingEnabled(true);
    SetPerfCountersEnabled(true);
    const std::string status = PerfCountersStatus();
    if (status != "ok") {
      std::cerr << "warning: --counters requested but hardware counters are "
                << status << "; spans will carry wall time only\n";
    }
  }
  const std::string profile_path = flags.GetString("profile");
  if (!profile_path.empty()) {
    CpuProfileOptions profile_options;
    profile_options.hz = static_cast<int>(flags.GetInt("profile_hz"));
    // Whole-run captures outlive the default ring (~15 s of one busy
    // thread at 97 Hz): 1 Mi slots per ring covers ~10 min of busy
    // samples, 16 rings × 8 MiB caps the preallocation at 128 MiB.
    profile_options.ring_capacity = 1 << 20;
    profile_options.max_threads = 16;
    std::string profile_error;
    if (!StartCpuProfile(profile_options, &profile_error)) {
      std::cerr << "failed to start --profile capture: " << profile_error
                << "\n";
      return 1;
    }
    std::cout << "CPU profiler sampling at " << profile_options.hz
              << " Hz -> " << profile_path << "\n";
  }

  const std::string chrome_trace = flags.GetString("serve_chrome_trace");
  if (!chrome_trace.empty()) {
    if (!TraceCompiledIn()) {
      std::cerr << "warning: --serve_chrome_trace requested but tracing is "
                   "compiled out (ET_DISABLE_TRACING); no trace will be "
                   "written\n";
    } else {
      SetTracingEnabled(true);
      StartTraceEventRecording();
    }
  }

  core::ServingService service(options);
  Stopwatch sw;
  std::cout << "Loading " << options.checkpoint_path
            << " (fitting predictor head)...\n";
  std::string error;
  if (!service.LoadInitial(&error)) {
    std::cerr << "failed to load serving checkpoint: " << error << "\n";
    return 1;
  }
  {
    const auto model = service.model();
    std::cout << "  generation 1: Z " << model->z().ShapeString() << ", "
              << model->parameter_count() << " parameters, predict t in ["
              << model->predict_t_min() << ", " << model->predict_t_max()
              << "], corr(Z,S) " << model->base_audit().correlation
              << " (loaded in " << sw.ElapsedSeconds() << " s)\n";
  }

  // SIGINT/SIGTERM wind the daemon down; SIGHUP bumps the reload
  // counter which the poll loop below turns into Reload().
  InstallShutdownSignalHandlers();
  InstallReloadSignalHandler();

  if (!service.Start(static_cast<int>(flags.GetInt("port")), &error)) {
    std::cerr << "failed to start server: " << error << "\n";
    return 1;
  }
  // Machine-read line (tests and scripts/check.sh grep it to find an
  // ephemeral --port=0 port); keep the format stable.
  std::cout << "Serving on port " << service.port() << "\n";
  std::cout.flush();

  uint64_t acted_reloads = ReloadRequestCount();
  while (!ShutdownRequested()) {
    const uint64_t pending = ReloadRequestCount();
    if (pending != acted_reloads) {
      // Coalesce: one reload covers every SIGHUP that arrived so far.
      acted_reloads = pending;
      sw.Restart();
      std::string why;
      if (service.Reload(&why)) {
        const auto model = service.model();
        std::cout << "Reloaded generation " << service.generation() << " in "
                  << sw.ElapsedSeconds() << " s (Z "
                  << model->z().ShapeString() << ")\n";
      } else {
        std::cout << "Reload failed, keeping generation "
                  << service.generation() << ": " << why << "\n";
      }
      std::cout.flush();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::cout << "Shutting down (served " << service.http().requests_served()
            << " requests, " << service.reloads() << " reloads)\n";
  service.Stop();

  if (!chrome_trace.empty() && TraceCompiledIn()) {
    const std::vector<TraceEvent> events = StopTraceEventRecording();
    if (WriteChromeTrace(chrome_trace, events, TraceThreadNames())) {
      std::cout << "Wrote " << events.size() << " trace events to "
                << chrome_trace << "\n";
    } else {
      std::cerr << "failed to write chrome trace: " << chrome_trace << "\n";
    }
  }

  if (!profile_path.empty()) {
    CpuProfile profile;
    std::string profile_error;
    if (!StopCpuProfile(&profile, &profile_error)) {
      std::cerr << "failed to stop --profile capture: " << profile_error
                << "\n";
    } else {
      std::ofstream out(profile_path,
                        std::ios::out | std::ios::trunc | std::ios::binary);
      out << profile.folded;
      if (!out) {
        std::cerr << "failed to write CPU profile to " << profile_path
                  << "\n";
      } else {
        std::cout << "Wrote CPU profile (" << profile.samples << " samples, "
                  << static_cast<int>(ProfileSymbolizedFraction(profile) *
                                      100.0)
                  << "% symbolized";
        if (profile.dropped_samples > 0) {
          std::cout << ", " << profile.dropped_samples << " dropped";
        }
        std::cout << ") -> " << profile_path << "\n";
        const std::string table = ProfileReportTable(profile.folded, 12);
        if (!table.empty()) std::cout << table;
      }
    }
  }
  return 0;
}
