// Scrape validator for the live telemetry endpoints (DESIGN.md §12):
// fetches a document over HTTP (or reads it from a file / stdin) and
// checks that it is well-formed — Prometheus text exposition for
// --format=prom, strict JSON for --format=json. scripts/check.sh uses
// it to smoke-test a --serve run without any external tooling.
//
//   scrape_check --port=9909 --path=/metrics --format=prom
//   scrape_check --file=status.json --format=json
//   some_producer | scrape_check --format=json

#include <fstream>
#include <iostream>
#include <sstream>

#include "util/flags.h"
#include "util/http_server.h"
#include "util/json.h"
#include "util/prom.h"

using namespace equitensor;

int main(int argc, char** argv) {
  FlagParser flags;
  flags.DefineInt("port", 0, "scrape 127.0.0.1:<port> (requires --path)");
  flags.DefineString("path", "/metrics", "HTTP path to scrape");
  flags.DefineString("file", "",
                     "validate this file instead of scraping ('-' = stdin; "
                     "stdin is also the default when --port is 0)");
  flags.DefineString("format", "prom",
                     "expected format: prom | json | text (text only "
                     "checks the HTTP status)");
  flags.DefineInt("expect_status", 200,
                  "required HTTP status when scraping (0 = any)");
  flags.DefineBool("print", false, "echo the validated document to stdout");

  if (!flags.Parse(argc, argv)) {
    std::cerr << flags.error() << "\n";
    return 2;
  }
  if (flags.help_requested()) {
    std::cout << flags.HelpText(
        "Fetch a telemetry document and validate its format.");
    return 0;
  }
  const std::string format = flags.GetString("format");
  if (format != "prom" && format != "json" && format != "text") {
    std::cerr << "unknown --format " << format
              << " (want prom | json | text)\n";
    return 2;
  }

  std::string body;
  const int port = static_cast<int>(flags.GetInt("port"));
  const std::string file = flags.GetString("file");
  if (port > 0) {
    int status = 0;
    std::string error;
    if (!HttpGet(port, flags.GetString("path"), &status, &body, &error)) {
      std::cerr << "scrape failed: " << error << "\n";
      return 1;
    }
    const int expect = static_cast<int>(flags.GetInt("expect_status"));
    if (expect != 0 && status != expect) {
      std::cerr << "unexpected HTTP status " << status << " (want " << expect
                << ") for " << flags.GetString("path") << "\n";
      return 1;
    }
  } else if (!file.empty() && file != "-") {
    std::ifstream in(file, std::ios::binary);
    if (!in.is_open()) {
      std::cerr << "cannot open " << file << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    body = buffer.str();
  } else {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    body = buffer.str();
  }

  std::string error;
  if (format == "prom") {
    if (!ValidatePrometheusText(body, &error)) {
      std::cerr << "invalid Prometheus exposition: " << error << "\n";
      return 1;
    }
  } else if (format == "json") {
    JsonValue doc;
    if (!JsonValue::Parse(body, &doc, &error)) {
      std::cerr << "invalid JSON: " << error << "\n";
      return 1;
    }
  }  // "text": the status check above is the whole assertion.
  if (flags.GetBool("print")) std::cout << body;
  std::cerr << "ok: " << body.size() << " bytes of valid " << format << "\n";
  return 0;
}
