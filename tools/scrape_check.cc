// Scrape validator for the live telemetry endpoints (DESIGN.md §12):
// fetches a document over HTTP (or reads it from a file / stdin) and
// checks that it is well-formed — Prometheus text exposition for
// --format=prom, strict JSON for --format=json, one strict-JSON
// record per line for --format=jsonl (access logs — DESIGN.md §16).
// scripts/check.sh uses it to smoke-test a --serve run without any
// external tooling.
//
//   scrape_check --port=9909 --path=/metrics --format=prom
//   scrape_check --port=9909 --path=/metrics --format=prom
//       --require_histogram=et_serving_stage_seconds_forward
//   scrape_check --file=status.json --format=json
//   scrape_check --file=access.jsonl --format=jsonl
//   some_producer | scrape_check --format=json

#include <cstdint>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>

#include "util/flags.h"
#include "util/http_server.h"
#include "util/json.h"
#include "util/prom.h"

using namespace equitensor;

int main(int argc, char** argv) {
  FlagParser flags;
  flags.DefineInt("port", 0, "scrape 127.0.0.1:<port> (requires --path)");
  flags.DefineString("path", "/metrics", "HTTP path to scrape");
  flags.DefineString("file", "",
                     "validate this file instead of scraping ('-' = stdin; "
                     "stdin is also the default when --port is 0)");
  flags.DefineString("format", "prom",
                     "expected format: prom | json | jsonl | folded | text "
                     "(folded = flamegraph stacks from /debug/profile; text "
                     "only checks the HTTP status)");
  flags.DefineInt("expect_status", 200,
                  "required HTTP status when scraping (0 = any)");
  flags.DefineString("require_histogram", "",
                     "with --format=prom: fail unless this family is a "
                     "TYPE'd histogram with at least 2 finite le edges");
  flags.DefineBool("print", false, "echo the validated document to stdout");

  if (!flags.Parse(argc, argv)) {
    std::cerr << flags.error() << "\n";
    return 2;
  }
  if (flags.help_requested()) {
    std::cout << flags.HelpText(
        "Fetch a telemetry document and validate its format.");
    return 0;
  }
  const std::string format = flags.GetString("format");
  if (format != "prom" && format != "json" && format != "jsonl" &&
      format != "folded" && format != "text") {
    std::cerr << "unknown --format " << format
              << " (want prom | json | jsonl | folded | text)\n";
    return 2;
  }

  std::string body;
  const int port = static_cast<int>(flags.GetInt("port"));
  const std::string file = flags.GetString("file");
  if (port > 0) {
    int status = 0;
    std::string error;
    if (!HttpGet(port, flags.GetString("path"), &status, &body, &error)) {
      std::cerr << "scrape failed: " << error << "\n";
      return 1;
    }
    const int expect = static_cast<int>(flags.GetInt("expect_status"));
    if (expect != 0 && status != expect) {
      std::cerr << "unexpected HTTP status " << status << " (want " << expect
                << ") for " << flags.GetString("path") << "\n";
      return 1;
    }
  } else if (!file.empty() && file != "-") {
    std::ifstream in(file, std::ios::binary);
    if (!in.is_open()) {
      std::cerr << "cannot open " << file << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    body = buffer.str();
  } else {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    body = buffer.str();
  }

  std::string error;
  if (format == "prom") {
    if (!ValidatePrometheusText(body, &error)) {
      std::cerr << "invalid Prometheus exposition: " << error << "\n";
      return 1;
    }
    const std::string family = flags.GetString("require_histogram");
    if (!family.empty()) {
      // The validator already enforced structure; here we only assert
      // that the requested family exists as a real multi-bucket
      // histogram (≥ 2 finite le edges, i.e. not the count/sum-only
      // single-+Inf shape).
      bool typed_histogram = false;
      std::set<std::string> finite_edges;
      size_t pos = 0;
      while (pos < body.size()) {
        const size_t eol = body.find('\n', pos);
        const std::string line = body.substr(pos, eol - pos);
        pos = eol == std::string::npos ? body.size() : eol + 1;
        if (line == "# TYPE " + family + " histogram") {
          typed_histogram = true;
          continue;
        }
        if (line.compare(0, family.size() + 8, family + "_bucket{") != 0) {
          continue;
        }
        const size_t le = line.find("le=\"");
        if (le == std::string::npos) continue;
        const size_t end = line.find('"', le + 4);
        if (end == std::string::npos) continue;
        const std::string edge = line.substr(le + 4, end - le - 4);
        if (edge != "+Inf") finite_edges.insert(edge);
      }
      if (!typed_histogram) {
        std::cerr << "required histogram " << family
                  << " missing or not TYPE'd histogram\n";
        return 1;
      }
      if (finite_edges.size() < 2) {
        std::cerr << "required histogram " << family << " has "
                  << finite_edges.size()
                  << " finite buckets (want >= 2; single-+Inf shape?)\n";
        return 1;
      }
    }
  } else if (format == "json") {
    JsonValue doc;
    if (!JsonValue::Parse(body, &doc, &error)) {
      std::cerr << "invalid JSON: " << error << "\n";
      return 1;
    }
  } else if (format == "jsonl") {
    size_t pos = 0;
    int line_no = 0;
    int records = 0;
    while (pos < body.size()) {
      ++line_no;
      const size_t eol = body.find('\n', pos);
      if (eol == std::string::npos) {
        std::cerr << "line " << line_no
                  << ": unterminated JSONL record (no trailing newline)\n";
        return 1;
      }
      const std::string line = body.substr(pos, eol - pos);
      pos = eol + 1;
      if (line.empty()) continue;
      JsonValue doc;
      if (!JsonValue::Parse(line, &doc, &error)) {
        std::cerr << "line " << line_no << ": invalid JSON: " << error
                  << "\n";
        return 1;
      }
      ++records;
    }
    if (records == 0) {
      std::cerr << "jsonl input has no records\n";
      return 1;
    }
  } else if (format == "folded") {
    // Folded flamegraph stacks (/debug/profile, --profile files):
    // every non-empty line is "frame;frame;...;frame count" with a
    // positive integer count and no empty frame names. At least one
    // stack must be present — an idle capture that sampled nothing is
    // a validation failure, not an empty-but-valid document.
    size_t pos = 0;
    int line_no = 0;
    int stacks = 0;
    while (pos < body.size()) {
      ++line_no;
      const size_t eol = body.find('\n', pos);
      const std::string line =
          body.substr(pos, eol == std::string::npos ? std::string::npos
                                                    : eol - pos);
      pos = eol == std::string::npos ? body.size() : eol + 1;
      if (line.empty()) continue;
      const size_t space = line.rfind(' ');
      if (space == std::string::npos || space == 0 ||
          space + 1 >= line.size()) {
        std::cerr << "line " << line_no
                  << ": not \"stack count\" folded form\n";
        return 1;
      }
      const std::string count = line.substr(space + 1);
      uint64_t parsed = 0;
      for (char c : count) {
        if (c < '0' || c > '9') {
          std::cerr << "line " << line_no << ": sample count \"" << count
                    << "\" is not a positive integer\n";
          return 1;
        }
        parsed = parsed * 10 + static_cast<uint64_t>(c - '0');
      }
      if (parsed == 0) {
        std::cerr << "line " << line_no << ": zero sample count\n";
        return 1;
      }
      const std::string stack = line.substr(0, space);
      size_t frame_start = 0;
      while (true) {
        const size_t semi = stack.find(';', frame_start);
        const size_t frame_len =
            (semi == std::string::npos ? stack.size() : semi) - frame_start;
        if (frame_len == 0) {
          std::cerr << "line " << line_no << ": empty frame name\n";
          return 1;
        }
        if (semi == std::string::npos) break;
        frame_start = semi + 1;
      }
      ++stacks;
    }
    if (stacks == 0) {
      std::cerr << "folded input has no stacks\n";
      return 1;
    }
  }  // "text": the status check above is the whole assertion.
  if (flags.GetBool("print")) std::cout << body;
  std::cerr << "ok: " << body.size() << " bytes of valid " << format << "\n";
  return 0;
}
