#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "nn/layers.h"
#include "nn/serialize.h"

namespace equitensor {
namespace nn {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream(path, std::ios::binary).write(bytes.data(),
                                              static_cast<std::streamsize>(
                                                  bytes.size()));
}

// Replicates the v1 on-disk layout (magic, u32 version=1, u64 count,
// then name/rank/dims/payload records — no endian marker, metadata, or
// CRC footer) exactly as the seed serializer wrote it, for
// backward-compat coverage.
std::string EncodeV1(
    const std::vector<std::pair<std::string, Tensor>>& tensors) {
  std::string out;
  const auto append = [&out](const void* p, size_t n) {
    out.append(static_cast<const char*>(p), n);
  };
  const auto append_u32 = [&](uint32_t v) { append(&v, sizeof(v)); };
  const auto append_u64 = [&](uint64_t v) { append(&v, sizeof(v)); };
  append("ETCK", 4);
  append_u32(1);
  append_u64(tensors.size());
  for (const auto& [name, tensor] : tensors) {
    append_u64(name.size());
    append(name.data(), name.size());
    append_u32(static_cast<uint32_t>(tensor.rank()));
    for (int d = 0; d < tensor.rank(); ++d) {
      append_u64(static_cast<uint64_t>(tensor.dim(d)));
    }
    append(tensor.data(), static_cast<size_t>(tensor.size()) * sizeof(float));
  }
  return out;
}

TEST(SerializeTest, TensorRoundTrip) {
  Rng rng(1);
  const Tensor original = Tensor::RandomUniform({3, 4, 5}, rng, -2.0f, 2.0f);
  const std::string path = TempPath("tensor_roundtrip.etck");
  ASSERT_TRUE(SaveTensor(path, original));
  Tensor loaded;
  ASSERT_TRUE(LoadTensor(path, &loaded));
  EXPECT_TRUE(AllClose(original, loaded, 0.0f));
  std::remove(path.c_str());
}

TEST(SerializeTest, NamedTensorsPreserveOrderAndNames) {
  Rng rng(2);
  std::vector<std::pair<std::string, Tensor>> tensors = {
      {"alpha", Tensor::RandomUniform({2}, rng)},
      {"beta", Tensor::RandomUniform({3, 3}, rng)},
      {"gamma", Tensor::Scalar(7.0f)},
  };
  const std::string path = TempPath("named.etck");
  ASSERT_TRUE(SaveTensors(path, tensors));
  std::vector<std::pair<std::string, Tensor>> loaded;
  ASSERT_TRUE(LoadTensors(path, &loaded));
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded[0].first, "alpha");
  EXPECT_EQ(loaded[1].first, "beta");
  EXPECT_EQ(loaded[2].first, "gamma");
  EXPECT_TRUE(AllClose(loaded[1].second, tensors[1].second, 0.0f));
  EXPECT_EQ(loaded[2].second.rank(), 0);
  std::remove(path.c_str());
}

TEST(SerializeTest, MetadataRoundTripAndLookup) {
  Rng rng(21);
  Checkpoint ckpt;
  ckpt.tensors.emplace_back("weights", Tensor::RandomUniform({4, 2}, rng));
  ckpt.metadata.emplace_back("epoch", EncodeI64(17));
  ckpt.metadata.emplace_back("note", std::string("free\0form", 9));
  const std::string path = TempPath("meta.etck");
  ASSERT_TRUE(SaveCheckpoint(path, ckpt));
  Checkpoint loaded;
  ASSERT_TRUE(LoadCheckpoint(path, &loaded));
  ASSERT_NE(loaded.FindTensor("weights"), nullptr);
  EXPECT_EQ(loaded.FindTensor("missing"), nullptr);
  ASSERT_NE(loaded.FindMetadata("epoch"), nullptr);
  int64_t epoch = 0;
  ASSERT_TRUE(DecodeI64(*loaded.FindMetadata("epoch"), &epoch));
  EXPECT_EQ(epoch, 17);
  ASSERT_NE(loaded.FindMetadata("note"), nullptr);
  EXPECT_EQ(loaded.FindMetadata("note")->size(), 9u);
  std::remove(path.c_str());
}

TEST(SerializeTest, NumericCodecsRoundTripExactly) {
  const std::vector<double> doubles = {0.1, -3.5e300, 1e-300, 0.0};
  std::vector<double> doubles_back;
  ASSERT_TRUE(DecodeDoubles(EncodeDoubles(doubles), &doubles_back));
  ASSERT_EQ(doubles_back.size(), doubles.size());
  for (size_t i = 0; i < doubles.size(); ++i) {
    EXPECT_EQ(doubles_back[i], doubles[i]);
  }
  const std::vector<uint64_t> words = {0, ~uint64_t{0}, 42};
  std::vector<uint64_t> words_back;
  ASSERT_TRUE(DecodeU64s(EncodeU64s(words), &words_back));
  EXPECT_EQ(words_back, words);
  // Empty lists (e.g. a fresh weighter's loss history) round-trip too.
  ASSERT_TRUE(DecodeDoubles(EncodeDoubles({}), &doubles_back));
  EXPECT_TRUE(doubles_back.empty());
  ASSERT_TRUE(DecodeU64s(EncodeU64s({}), &words_back));
  EXPECT_TRUE(words_back.empty());
  EXPECT_FALSE(DecodeDoubles("12345", &doubles_back));  // not 8-aligned
  int64_t v = 0;
  EXPECT_FALSE(DecodeI64("123", &v));
}

TEST(SerializeTest, ModuleRoundTripRestoresForward) {
  Rng rng(3);
  ConvStack original(2, 2, {4, 1}, 3, rng);
  const std::string path = TempPath("module.etck");
  ASSERT_TRUE(SaveModule(path, original));

  Rng other_rng(99);  // Different init.
  ConvStack restored(2, 2, {4, 1}, 3, other_rng);
  Variable x(Tensor::RandomUniform({1, 2, 4, 4}, rng), false);
  const Tensor before = restored.Forward(x).value();
  ASSERT_TRUE(LoadModule(path, &restored));
  const Tensor after = restored.Forward(x).value();
  const Tensor expected = original.Forward(x).value();
  EXPECT_FALSE(AllClose(before, expected));
  EXPECT_TRUE(AllClose(after, expected, 0.0f));
  std::remove(path.c_str());
}

TEST(SerializeTest, SaveModuleWritesRealNames) {
  Rng rng(31);
  ConvStack stack(2, 2, {4, 1}, 3, rng);
  const std::string path = TempPath("module_names.etck");
  ASSERT_TRUE(SaveModule(path, stack));
  std::vector<std::pair<std::string, Tensor>> tensors;
  ASSERT_TRUE(LoadTensors(path, &tensors));
  ASSERT_EQ(tensors.size(), 4u);
  EXPECT_EQ(tensors[0].first, "conv0.weight");
  EXPECT_EQ(tensors[1].first, "conv0.bias");
  EXPECT_EQ(tensors[2].first, "conv1.weight");
  EXPECT_EQ(tensors[3].first, "conv1.bias");
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadModuleRejectsWrongArchitecture) {
  Rng rng(4);
  ConvStack original(2, 2, {4, 1}, 3, rng);
  const std::string path = TempPath("module_mismatch.etck");
  ASSERT_TRUE(SaveModule(path, original));
  ConvStack wider(2, 2, {8, 1}, 3, rng);  // Same names, different shapes.
  EXPECT_FALSE(LoadModule(path, &wider));
  ConvStack deeper(2, 2, {4, 4, 1}, 3, rng);  // Extra layer: missing names.
  EXPECT_FALSE(LoadModule(path, &deeper));
  Linear different(4, 4, rng);  // Disjoint names.
  EXPECT_FALSE(LoadModule(path, &different));
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadModuleReadsV1IndexNamedCheckpoints) {
  Rng rng(5);
  ConvStack original(2, 2, {4, 1}, 3, rng);
  // A v1 module file: index-synthesized names in Parameters() order.
  std::vector<std::pair<std::string, Tensor>> tensors;
  const auto params = original.Parameters();
  for (size_t i = 0; i < params.size(); ++i) {
    tensors.emplace_back("param_" + std::to_string(i), params[i].value());
  }
  const std::string path = TempPath("module_v1.etck");
  WriteBytes(path, EncodeV1(tensors));

  Rng other_rng(100);
  ConvStack restored(2, 2, {4, 1}, 3, other_rng);
  ASSERT_TRUE(LoadModule(path, &restored));
  Variable x(Tensor::RandomUniform({1, 2, 4, 4}, rng), false);
  EXPECT_TRUE(AllClose(restored.Forward(x).value(),
                       original.Forward(x).value(), 0.0f));
  std::remove(path.c_str());
}

TEST(SerializeTest, V1TensorFilesStillLoad) {
  Rng rng(6);
  std::vector<std::pair<std::string, Tensor>> tensors = {
      {"a", Tensor::RandomUniform({2, 3}, rng)},
      {"b", Tensor::RandomUniform({5}, rng)},
  };
  const std::string path = TempPath("v1_tensors.etck");
  WriteBytes(path, EncodeV1(tensors));
  std::vector<std::pair<std::string, Tensor>> loaded;
  ASSERT_TRUE(LoadTensors(path, &loaded));
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].first, "a");
  EXPECT_TRUE(AllClose(loaded[1].second, tensors[1].second, 0.0f));
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileFails) {
  Tensor t;
  EXPECT_FALSE(LoadTensor(TempPath("does_not_exist.etck"), &t));
}

TEST(SerializeTest, CorruptMagicFails) {
  const std::string path = TempPath("bad_magic.etck");
  std::ofstream(path) << "NOTACHECKPOINT";
  Tensor t;
  EXPECT_FALSE(LoadTensor(path, &t));
  std::remove(path.c_str());
}

TEST(SerializeTest, TruncatedFileFails) {
  Rng rng(5);
  const std::string path = TempPath("truncated.etck");
  ASSERT_TRUE(SaveTensor(path, Tensor::RandomUniform({100}, rng)));
  const std::string contents = ReadBytes(path);
  WriteBytes(path, contents.substr(0, contents.size() / 2));
  Tensor t;
  EXPECT_FALSE(LoadTensor(path, &t));
  std::remove(path.c_str());
}

TEST(SerializeTest, CrcDetectsPayloadBitFlip) {
  Rng rng(7);
  const std::string path = TempPath("bitflip.etck");
  ASSERT_TRUE(SaveTensor(path, Tensor::RandomUniform({64}, rng)));
  std::string contents = ReadBytes(path);
  // Flip one bit in the middle of the float payload — structurally the
  // file still parses, so only the CRC footer can catch it.
  contents[contents.size() / 2] ^= 0x10;
  WriteBytes(path, contents);
  Tensor t;
  EXPECT_FALSE(LoadTensor(path, &t));
  std::remove(path.c_str());
}

TEST(SerializeTest, ForeignEndiannessRejected) {
  Rng rng(8);
  const std::string path = TempPath("endian.etck");
  ASSERT_TRUE(SaveTensor(path, Tensor::RandomUniform({4}, rng)));
  std::string contents = ReadBytes(path);
  // Byte-swap the endianness marker at offset 8 as a foreign-endian
  // writer would have laid it down, and re-stamp the CRC so only the
  // marker check can reject it.
  std::swap(contents[8], contents[11]);
  std::swap(contents[9], contents[10]);
  const uint32_t crc =
      Crc32(contents.data(), contents.size() - sizeof(uint32_t));
  std::memcpy(contents.data() + contents.size() - sizeof(uint32_t), &crc,
              sizeof(crc));
  WriteBytes(path, contents);
  Tensor t;
  EXPECT_FALSE(LoadTensor(path, &t));
  std::remove(path.c_str());
}

TEST(SerializeTest, OverflowingVolumeHeaderRejected) {
  // Regression: a crafted rank-16 header with 2^40-sized dims used to
  // overflow the int64 volume product before the allocation. The
  // loader must reject it outright (v1 path shown; v2 shares the
  // record reader).
  std::string bytes;
  const auto append = [&bytes](const void* p, size_t n) {
    bytes.append(static_cast<const char*>(p), n);
  };
  const auto append_u32 = [&](uint32_t v) { append(&v, sizeof(v)); };
  const auto append_u64 = [&](uint64_t v) { append(&v, sizeof(v)); };
  append("ETCK", 4);
  append_u32(1);           // version 1 (no CRC to forge)
  append_u64(1);           // one tensor
  append_u64(3);           // name length
  append("evil", 3);
  append_u32(16);          // rank 16
  for (int d = 0; d < 16; ++d) append_u64(uint64_t{1} << 40);
  const std::string path = TempPath("overflow.etck");
  WriteBytes(path, bytes);
  std::vector<std::pair<std::string, Tensor>> loaded;
  EXPECT_FALSE(LoadTensors(path, &loaded));
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

TEST(SerializeTest, HugeVolumeBoundedByFileSizeRejected) {
  // A header whose volume fits int64 but dwarfs the actual payload
  // must be rejected before any allocation happens.
  std::string bytes;
  const auto append = [&bytes](const void* p, size_t n) {
    bytes.append(static_cast<const char*>(p), n);
  };
  const auto append_u32 = [&](uint32_t v) { append(&v, sizeof(v)); };
  const auto append_u64 = [&](uint64_t v) { append(&v, sizeof(v)); };
  append("ETCK", 4);
  append_u32(1);
  append_u64(1);
  append_u64(1);
  append("x", 1);
  append_u32(2);
  append_u64(uint64_t{1} << 20);
  append_u64(uint64_t{1} << 20);  // claims 4 TiB of floats
  const std::string path = TempPath("huge.etck");
  WriteBytes(path, bytes);
  std::vector<std::pair<std::string, Tensor>> loaded;
  EXPECT_FALSE(LoadTensors(path, &loaded));
  std::remove(path.c_str());
}

TEST(SerializeTest, FailedSavePreservesExistingCheckpoint) {
  Rng rng(9);
  const Tensor original = Tensor::RandomUniform({32}, rng);
  const std::string path = TempPath("atomic.etck");
  ASSERT_TRUE(SaveTensor(path, original));

  // Simulated disk-full partway through the replacement write: the
  // save must fail, the old checkpoint must survive untouched, and no
  // temp file may linger.
  internal::SetWriteFailureAfterBytesForTesting(10);
  EXPECT_FALSE(SaveTensor(path, Tensor::RandomUniform({32}, rng)));
  internal::SetWriteFailureAfterBytesForTesting(-1);

  Tensor reloaded;
  ASSERT_TRUE(LoadTensor(path, &reloaded));
  EXPECT_TRUE(AllClose(reloaded, original, 0.0f));
  for (const auto& entry :
       std::filesystem::directory_iterator(::testing::TempDir())) {
    EXPECT_EQ(entry.path().string().find(".tmp."), std::string::npos)
        << "stray temp file " << entry.path();
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, FailedSaveLeavesNoFileBehind) {
  const std::string path = TempPath("fresh.etck");
  internal::SetWriteFailureAfterBytesForTesting(0);
  Rng rng(10);
  EXPECT_FALSE(SaveTensor(path, Tensor::RandomUniform({8}, rng)));
  internal::SetWriteFailureAfterBytesForTesting(-1);
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(SerializeTest, SaveIntoMissingDirectoryFails) {
  Rng rng(11);
  EXPECT_FALSE(SaveTensor(TempPath("no_such_dir/x.etck"),
                          Tensor::RandomUniform({4}, rng)));
}

}  // namespace
}  // namespace nn
}  // namespace equitensor
