#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "nn/layers.h"
#include "nn/serialize.h"

namespace equitensor {
namespace nn {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(SerializeTest, TensorRoundTrip) {
  Rng rng(1);
  const Tensor original = Tensor::RandomUniform({3, 4, 5}, rng, -2.0f, 2.0f);
  const std::string path = TempPath("tensor_roundtrip.etck");
  ASSERT_TRUE(SaveTensor(path, original));
  Tensor loaded;
  ASSERT_TRUE(LoadTensor(path, &loaded));
  EXPECT_TRUE(AllClose(original, loaded, 0.0f));
  std::remove(path.c_str());
}

TEST(SerializeTest, NamedTensorsPreserveOrderAndNames) {
  Rng rng(2);
  std::vector<std::pair<std::string, Tensor>> tensors = {
      {"alpha", Tensor::RandomUniform({2}, rng)},
      {"beta", Tensor::RandomUniform({3, 3}, rng)},
      {"gamma", Tensor::Scalar(7.0f)},
  };
  const std::string path = TempPath("named.etck");
  ASSERT_TRUE(SaveTensors(path, tensors));
  std::vector<std::pair<std::string, Tensor>> loaded;
  ASSERT_TRUE(LoadTensors(path, &loaded));
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded[0].first, "alpha");
  EXPECT_EQ(loaded[1].first, "beta");
  EXPECT_EQ(loaded[2].first, "gamma");
  EXPECT_TRUE(AllClose(loaded[1].second, tensors[1].second, 0.0f));
  EXPECT_EQ(loaded[2].second.rank(), 0);
  std::remove(path.c_str());
}

TEST(SerializeTest, ModuleRoundTripRestoresForward) {
  Rng rng(3);
  ConvStack original(2, 2, {4, 1}, 3, rng);
  const std::string path = TempPath("module.etck");
  ASSERT_TRUE(SaveModule(path, original));

  Rng other_rng(99);  // Different init.
  ConvStack restored(2, 2, {4, 1}, 3, other_rng);
  Variable x(Tensor::RandomUniform({1, 2, 4, 4}, rng), false);
  const Tensor before = restored.Forward(x).value();
  ASSERT_TRUE(LoadModule(path, &restored));
  const Tensor after = restored.Forward(x).value();
  const Tensor expected = original.Forward(x).value();
  EXPECT_FALSE(AllClose(before, expected));
  EXPECT_TRUE(AllClose(after, expected, 0.0f));
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadModuleRejectsWrongArchitecture) {
  Rng rng(4);
  ConvStack original(2, 2, {4, 1}, 3, rng);
  const std::string path = TempPath("module_mismatch.etck");
  ASSERT_TRUE(SaveModule(path, original));
  ConvStack wider(2, 2, {8, 1}, 3, rng);  // Different shapes.
  EXPECT_FALSE(LoadModule(path, &wider));
  Linear different(4, 4, rng);  // Different parameter count.
  EXPECT_FALSE(LoadModule(path, &different));
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileFails) {
  Tensor t;
  EXPECT_FALSE(LoadTensor(TempPath("does_not_exist.etck"), &t));
}

TEST(SerializeTest, CorruptMagicFails) {
  const std::string path = TempPath("bad_magic.etck");
  std::ofstream(path) << "NOTACHECKPOINT";
  Tensor t;
  EXPECT_FALSE(LoadTensor(path, &t));
  std::remove(path.c_str());
}

TEST(SerializeTest, TruncatedFileFails) {
  Rng rng(5);
  const std::string path = TempPath("truncated.etck");
  ASSERT_TRUE(SaveTensor(path, Tensor::RandomUniform({100}, rng)));
  // Truncate to half.
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  std::ofstream(path, std::ios::binary)
      << contents.substr(0, contents.size() / 2);
  Tensor t;
  EXPECT_FALSE(LoadTensor(path, &t));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nn
}  // namespace equitensor
