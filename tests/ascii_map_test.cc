#include <gtest/gtest.h>

#include "util/ascii_map.h"

namespace equitensor {
namespace {

TEST(AsciiMapTest, DimensionsMatchField) {
  Tensor field({4, 3});
  const std::string rendered = RenderAsciiMap(field, 2);
  // 3 rows (height), each 4 cells * 2 chars + newline.
  int lines = 0;
  size_t pos = 0;
  while ((pos = rendered.find('\n', pos)) != std::string::npos) {
    ++lines;
    ++pos;
  }
  EXPECT_EQ(lines, 3);
  EXPECT_EQ(rendered.find('\n'), 8u);
}

TEST(AsciiMapTest, ExtremesUseRampEnds) {
  Tensor field = Tensor::FromData({2, 1}, {0.0f, 1.0f});
  const std::string rendered = RenderAsciiMap(field, 1);
  EXPECT_EQ(rendered[0], ' ');  // min
  EXPECT_EQ(rendered[1], '@');  // max
}

TEST(AsciiMapTest, ConstantFieldIsUniform) {
  Tensor field({3, 2}, 5.0f);
  const std::string rendered = RenderAsciiMap(field, 1);
  for (char c : rendered) {
    if (c != '\n') EXPECT_EQ(c, ' ');
  }
}

TEST(AsciiMapTest, NorthIsUp) {
  // Cell (0, h-1) (north-west) must appear on the *first* line.
  Tensor field({1, 2});
  field.at({0, 1}) = 1.0f;  // north cell hot
  const std::string rendered = RenderAsciiMap(field, 1);
  EXPECT_EQ(rendered[0], '@');
  EXPECT_EQ(rendered[2], ' ');
}

TEST(SparklineTest, LengthMatchesSeries) {
  Tensor series = Tensor::FromData({4}, {0, 1, 2, 3});
  const std::string line = RenderSparkline(series);
  // Each glyph is a 3-byte UTF-8 block character.
  EXPECT_EQ(line.size(), 12u);
}

TEST(SparklineTest, MonotoneSeriesStartsLowEndsHigh) {
  Tensor series = Tensor::FromData({3}, {0, 5, 10});
  const std::string line = RenderSparkline(series);
  EXPECT_EQ(line.substr(0, 3), "▁");   // lowest block
  EXPECT_EQ(line.substr(6, 3), "█");   // full block
}

TEST(AsciiMapsTest, SideBySideHasTitles) {
  Tensor a({2, 2}, 0.0f);
  Tensor b({2, 2}, 1.0f);
  const std::string rendered = RenderAsciiMaps({a, b}, {"left", "right"}, 2);
  EXPECT_NE(rendered.find("left"), std::string::npos);
  EXPECT_NE(rendered.find("right"), std::string::npos);
}

TEST(AsciiMapsDeathTest, MismatchedHeightsAbort) {
  Tensor a({2, 2});
  Tensor b({2, 3});
  EXPECT_DEATH(RenderAsciiMaps({a, b}, {"a", "b"}), "share height");
}

}  // namespace
}  // namespace equitensor
